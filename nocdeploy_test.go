package nocdeploy_test

import (
	"testing"

	"nocdeploy"
)

// The doc-comment quick start must work exactly as written.
func TestQuickStart(t *testing.T) {
	plat := nocdeploy.DefaultPlatform(16)
	mesh := nocdeploy.DefaultMesh(4, 4)
	g := nocdeploy.NewTaskGraph()
	src := g.AddTask("sense", 1.2e6, 0.004)
	dst := g.AddTask("act", 0.8e6, 0.004)
	g.AddEdge(src, dst, 4096)
	rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
	h, err := nocdeploy.Horizon(plat, mesh, g, rel, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := nocdeploy.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		t.Fatal(err)
	}
	d, info, err := nocdeploy.Heuristic(sys, nocdeploy.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("two-task quick start should be feasible")
	}
	metrics, err := nocdeploy.Validate(sys, d)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MaxEnergy <= 0 {
		t.Errorf("max energy %g", metrics.MaxEnergy)
	}
}

// End-to-end through the facade: generate, solve, validate, replay,
// inject faults, and push the traffic through the flit simulator.
func TestFacadeEndToEnd(t *testing.T) {
	plat := nocdeploy.DefaultPlatform(16)
	mesh := nocdeploy.DefaultMesh(4, 4)
	g, err := nocdeploy.LayeredGraph(nocdeploy.DefaultGenParams(15, 3), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
	h, err := nocdeploy.Horizon(plat, mesh, g, rel, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := nocdeploy.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		t.Fatal(err)
	}
	d, info, err := nocdeploy.Heuristic(sys, nocdeploy.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Skip("instance infeasible at this horizon")
	}
	if _, err := nocdeploy.Validate(sys, d); err != nil {
		t.Fatal(err)
	}
	res, err := nocdeploy.Execute(sys, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.Makespan > sys.H+1e-9 {
		t.Errorf("replay makespan %g vs horizon %g", res.Makespan, sys.H)
	}
	stats, err := nocdeploy.InjectFaults(sys, d, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SystemRate() <= 0.5 {
		t.Errorf("system survival %g suspiciously low", stats.SystemRate())
	}
	pkts := nocdeploy.NetworkTraffic(sys, d)
	if len(pkts) > 0 {
		if _, err := nocdeploy.SimulateNoC(mesh, pkts, nocdeploy.NoCSimConfig{}); err != nil {
			t.Fatal(err)
		}
	}
}
