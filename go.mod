module nocdeploy

go 1.22
