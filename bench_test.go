package nocdeploy_test

import (
	"io"
	"testing"
	"time"

	"nocdeploy"
	"nocdeploy/internal/core"
	"nocdeploy/internal/exp"
	"nocdeploy/internal/lp"
	"nocdeploy/internal/milp"
	"nocdeploy/internal/nocsim"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/sim"
)

// ---------------------------------------------------------------------
// Figure reproductions: one benchmark per paper figure. Each iteration
// regenerates the figure's table at reduced (Quick) scale; run
// cmd/experiments without -quick for the full-fidelity tables.
// ---------------------------------------------------------------------

func benchFigure(b *testing.B, run func(exp.Config) (*exp.Table, error)) {
	b.Helper()
	cfg := exp.Config{Seed: 1, Quick: true, TimeLimit: 3 * time.Second}
	for i := 0; i < b.N; i++ {
		tbl, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2a(b *testing.B) { benchFigure(b, exp.RunFig2a) }
func BenchmarkFig2b(b *testing.B) { benchFigure(b, exp.RunFig2b) }
func BenchmarkFig2c(b *testing.B) { benchFigure(b, exp.RunFig2c) }
func BenchmarkFig2d(b *testing.B) { benchFigure(b, exp.RunFig2d) }
func BenchmarkFig2e(b *testing.B) { benchFigure(b, exp.RunFig2e) }
func BenchmarkFig2f(b *testing.B) { benchFigure(b, exp.RunFig2f) }
func BenchmarkFig2g(b *testing.B) { benchFigure(b, exp.RunFig2g) }
func BenchmarkFig2h(b *testing.B) { benchFigure(b, exp.RunFig2h) }

// benchFigSuite runs every figure runner back to back at a fixed,
// MaxNodes-bounded configuration, so the serial and parallel variants do
// byte-identical work and their ns/op ratio in BENCH_PR2.json is the
// recorded wall-clock speedup of the experiment engine's fan-out. A nil
// tr benchmarks the untraced path (every emission site reduced to one
// nil check); a live tr measures the enabled-tracer overhead.
func benchFigSuite(b *testing.B, parallel int, tr *obs.Trace) {
	b.Helper()
	cfg := exp.Config{Seed: 1, Quick: true, TimeLimit: time.Minute, MaxNodes: 50, Parallel: parallel, Trace: tr}
	for i := 0; i < b.N; i++ {
		for _, r := range exp.Runners() {
			tbl, err := r.Run(cfg)
			if err != nil {
				b.Fatalf("figure %s: %v", r.Name, err)
			}
			if len(tbl.Rows) == 0 {
				b.Fatalf("figure %s: empty table", r.Name)
			}
		}
	}
}

// BenchmarkFigSuiteSerial is the Parallel=1 baseline for the speedup
// record; compare against BenchmarkFigSuiteParallel. It is also the
// nil-tracer baseline for BenchmarkFigSuiteSerialTraced: the delta
// between the two is the full cost of observability, and must stay
// within noise when tracing is off.
func BenchmarkFigSuiteSerial(b *testing.B) { benchFigSuite(b, 1, nil) }

// BenchmarkFigSuiteParallel fans instances out over all cores
// (Parallel=0); its tables are byte-identical to the serial run's.
func BenchmarkFigSuiteParallel(b *testing.B) { benchFigSuite(b, 0, nil) }

// BenchmarkFigSuiteSerialTraced is BenchmarkFigSuiteSerial with a live
// JSONL trace draining to io.Discard — the enabled-tracer overhead on
// real solver workloads. See BenchmarkEmitNil in internal/obs for the
// per-site disabled cost.
func BenchmarkFigSuiteSerialTraced(b *testing.B) {
	tr := obs.New(obs.NewJSONLSink(io.Discard))
	benchFigSuite(b, 1, tr)
	b.StopTimer()
	if err := tr.Close(); err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Component benchmarks.
// ---------------------------------------------------------------------

func paperScaleSystem(b *testing.B, m int) *nocdeploy.System {
	b.Helper()
	plat := nocdeploy.DefaultPlatform(16)
	mesh := nocdeploy.DefaultMesh(4, 4)
	g, err := nocdeploy.LayeredGraph(nocdeploy.DefaultGenParams(m, 1), 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
	h, err := nocdeploy.Horizon(plat, mesh, g, rel, 1.3)
	if err != nil {
		b.Fatal(err)
	}
	s, err := nocdeploy.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkHeuristicM20 is the paper-scale heuristic solve (N=16, M=20,
// L=6) whose "negligible computation time" Fig. 2(f) reports.
func BenchmarkHeuristicM20(b *testing.B) {
	s := paperScaleSystem(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nocdeploy.Heuristic(s, nocdeploy.Options{}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristicM60(b *testing.B) {
	s := paperScaleSystem(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nocdeploy.Heuristic(s, nocdeploy.Options{}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalM3 times the exact branch & bound on the reduced-scale
// instance class used by the figure sweeps.
func BenchmarkOptimalM3(b *testing.B) {
	s, err := exp.Build(exp.InstanceParams{MeshW: 2, MeshH: 2, M: 3, L: 3, Alpha: 1.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hd, hinfo, err := core.Heuristic(s, core.Options{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		oo := core.OptimalOptions{TimeLimit: 30 * time.Second, RelGap: 0.02}
		if hinfo.Feasible {
			oo.WarmDeployment = hd
		}
		if _, _, err := core.Optimal(s, core.Options{}, oo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimal4x4 runs the node-budgeted exact sweep at the paper's
// full 4×4 scale (internal/exp "ext-opt4x4"). The dense solver core could
// not complete this inside any benchmark budget; it exists to keep the
// paper-scale exact configuration inside the CI bench envelope now that
// the sparse warm-started core has unlocked it.
func BenchmarkOptimal4x4(b *testing.B) {
	// Node LPs at this scale run seconds each; a handful of nodes per
	// instance keeps the three Quick reps near twenty seconds total.
	cfg := exp.Config{Seed: 1, Quick: true, TimeLimit: 5 * time.Second, MaxNodes: 4}
	for i := 0; i < b.N; i++ {
		tbl, err := exp.RunOptimal4x4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkMILPRootRelaxation times one LP solve of the full P1 model —
// the unit of work branch & bound repeats per node.
func BenchmarkMILPRootRelaxation(b *testing.B) {
	s, err := exp.Build(exp.InstanceParams{MeshW: 2, MeshH: 2, M: 4, L: 3, Alpha: 1.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	f := core.BuildFormulation(s, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.Model.Solve(milp.SolveOptions{MaxNodes: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkLPSimplexMedium(b *testing.B) {
	// A dense-ish random feasible LP with 120 columns and 80 rows.
	p := lp.NewProblem(120)
	for j := 0; j < 120; j++ {
		p.SetBounds(j, 0, 10)
		p.Cost[j] = float64((j*7)%13) - 6
	}
	for r := 0; r < 80; r++ {
		var idx []int
		var val []float64
		for j := r % 4; j < 120; j += 4 {
			idx = append(idx, j)
			val = append(val, float64((r+j)%9)-4)
		}
		p.AddConstraint(idx, val, lp.LE, float64(50+r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(p, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoCSim1000Packets(b *testing.B) {
	mesh := nocdeploy.DefaultMesh(8, 8)
	var pkts []nocsim.Packet
	for i := 0; i < 1000; i++ {
		src := (i * 17) % 64
		dst := (i*31 + 5) % 64
		if src == dst {
			dst = (dst + 1) % 64
		}
		pkts = append(pkts, nocsim.Packet{
			ID:     i,
			Bytes:  4096,
			Route:  mesh.PathOf(src, dst, i%2).Nodes,
			Inject: float64(i) * 50e-9,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nocsim.Simulate(mesh, pkts, nocsim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultInjection(b *testing.B) {
	s := paperScaleSystem(b, 20)
	d, info, err := nocdeploy.Heuristic(s, nocdeploy.Options{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	if !info.Feasible {
		b.Skip("instance infeasible")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.InjectFaults(s, d, 10000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeshConstruction8x8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = nocdeploy.DefaultMesh(8, 8)
	}
}

func BenchmarkExecuteReplay(b *testing.B) {
	s := paperScaleSystem(b, 20)
	d, _, err := nocdeploy.Heuristic(s, nocdeploy.Options{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute(s, d); err != nil {
			b.Fatal(err)
		}
	}
}
