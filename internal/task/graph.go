// Package task models the periodic task set of the paper: a DAG of M tasks
// released at time zero sharing a scheduling horizon H. Each task carries a
// worst-case execution cycle count (WCEC), a relative deadline, and weighted
// dependency edges whose weight is the number of bytes the predecessor sends
// to the successor.
//
// The package also implements the paper's duplication expansion: for a task
// set of size M, tasks i and i+M denote the original and its copy; copies
// inherit every dependency of the original, so an edge i→j induces edges
// i→j, i+M→j, i→j+M and i+M→j+M among whichever copies exist.
package task

import (
	"fmt"
	"sort"
)

// Task is a single node of the task graph.
type Task struct {
	ID       int
	Name     string
	WCEC     float64 // worst-case execution cycles
	Deadline float64 // relative deadline in seconds (on execution time, per constraint (8))
}

// Edge is a data dependency: From must finish and ship Bytes to To before
// To may start.
type Edge struct {
	From, To int
	Bytes    float64
}

// Graph is an immutable-after-Validate task DAG.
type Graph struct {
	Tasks []Task
	Edges []Edge

	succ [][]int // successor task ids per task
	pred [][]int // predecessor task ids per task
	data map[[2]int]float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{data: map[[2]int]float64{}}
}

// AddTask appends a task and returns its id.
func (g *Graph) AddTask(name string, wcec, deadline float64) int {
	id := len(g.Tasks)
	g.Tasks = append(g.Tasks, Task{ID: id, Name: name, WCEC: wcec, Deadline: deadline})
	return id
}

// AddEdge records a dependency from→to carrying bytes of data.
func (g *Graph) AddEdge(from, to int, bytes float64) {
	g.Edges = append(g.Edges, Edge{From: from, To: to, Bytes: bytes})
}

// M returns the number of tasks.
func (g *Graph) M() int { return len(g.Tasks) }

// Validate checks ids, positivity and acyclicity, and builds the adjacency
// indexes. It must be called (directly or via a constructor helper) before
// the traversal methods.
func (g *Graph) Validate() error {
	m := g.M()
	if m == 0 {
		return fmt.Errorf("task: graph has no tasks")
	}
	for i, t := range g.Tasks {
		if t.ID != i {
			return fmt.Errorf("task: task %d has inconsistent id %d", i, t.ID)
		}
		if t.WCEC <= 0 {
			return fmt.Errorf("task: task %d has non-positive WCEC %g", i, t.WCEC)
		}
		if t.Deadline <= 0 {
			return fmt.Errorf("task: task %d has non-positive deadline %g", i, t.Deadline)
		}
	}
	g.succ = make([][]int, m)
	g.pred = make([][]int, m)
	g.data = map[[2]int]float64{}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= m || e.To < 0 || e.To >= m {
			return fmt.Errorf("task: edge %d→%d out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("task: self edge on task %d", e.From)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("task: edge %d→%d has negative data size", e.From, e.To)
		}
		key := [2]int{e.From, e.To}
		if _, dup := g.data[key]; dup {
			return fmt.Errorf("task: duplicate edge %d→%d", e.From, e.To)
		}
		g.data[key] = e.Bytes
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Succ returns the successor ids of task i.
func (g *Graph) Succ(i int) []int { return g.succ[i] }

// Pred returns the predecessor ids of task i.
func (g *Graph) Pred(i int) []int { return g.pred[i] }

// HasEdge reports whether the dependency from→to exists (the paper's p_ij).
func (g *Graph) HasEdge(from, to int) bool {
	_, ok := g.data[[2]int{from, to}]
	return ok
}

// Data returns s_ij, the bytes shipped from→to, zero if no edge.
func (g *Graph) Data(from, to int) float64 { return g.data[[2]int{from, to}] }

// TopoOrder returns a topological order of the task ids, or an error if the
// graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	m := g.M()
	indeg := make([]int, m)
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	var queue []int
	for i := 0; i < m; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, m)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != m {
		return nil, fmt.Errorf("task: dependency graph has a cycle")
	}
	return order, nil
}

// Layers partitions tasks into levels by longest path from any source: a
// task's layer is 1 + max over predecessors. This is the in/out-degree
// layering used by Algorithm 2. It panics on a cyclic graph; library code
// that cannot guarantee a validated DAG must use LayersErr.
func (g *Graph) Layers() [][]int {
	layers, err := g.LayersErr()
	if err != nil {
		//lint:allow nopanic — convenience wrapper; LayersErr is the library path
		panic("task: " + err.Error())
	}
	return layers
}

// LayersErr is the non-panicking variant of Layers: it reports the cycle
// as an error instead of aborting, so long-running callers can refuse the
// graph gracefully.
func (g *Graph) LayersErr() ([][]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("task: Layers on cyclic graph: %w", err)
	}
	level := make([]int, g.M())
	deepest := 0
	for _, v := range order {
		for _, p := range g.pred[v] {
			if level[p]+1 > level[v] {
				level[v] = level[p] + 1
			}
		}
		if level[v] > deepest {
			deepest = level[v]
		}
	}
	layers := make([][]int, deepest+1)
	for i := 0; i < g.M(); i++ {
		layers[level[i]] = append(layers[level[i]], i)
	}
	return layers, nil
}

// CriticalPath returns the task ids of a path maximizing the summed node
// weight, where weight(i) is supplied by the caller (e.g. average execution
// plus communication time); this is the set C in the paper's horizon rule.
// It panics on a cyclic graph; library code must use CriticalPathErr.
func (g *Graph) CriticalPath(weight func(i int) float64) []int {
	path, err := g.CriticalPathErr(weight)
	if err != nil {
		//lint:allow nopanic — convenience wrapper; CriticalPathErr is the library path
		panic("task: " + err.Error())
	}
	return path
}

// CriticalPathErr is the non-panicking variant of CriticalPath.
func (g *Graph) CriticalPathErr(weight func(i int) float64) ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("task: CriticalPath on cyclic graph: %w", err)
	}
	best := make([]float64, g.M())
	from := make([]int, g.M())
	for i := range from {
		from[i] = -1
	}
	endTask, endVal := -1, -1.0
	for _, v := range order {
		best[v] = weight(v)
		for _, p := range g.pred[v] {
			if best[p]+weight(v) > best[v] {
				best[v] = best[p] + weight(v)
				from[v] = p
			}
		}
		if best[v] > endVal {
			endTask, endVal = v, best[v]
		}
	}
	var rev []int
	for v := endTask; v != -1; v = from[v] {
		rev = append(rev, v)
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, nil
}

// Sources returns tasks with no predecessors, sorted by id.
func (g *Graph) Sources() []int {
	var out []int
	for i := 0; i < g.M(); i++ {
		if len(g.pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Sinks returns tasks with no successors, sorted by id.
func (g *Graph) Sinks() []int {
	var out []int
	for i := 0; i < g.M(); i++ {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of g (validated if g was).
func (g *Graph) Clone() *Graph {
	c := New()
	c.Tasks = append([]Task(nil), g.Tasks...)
	c.Edges = append([]Edge(nil), g.Edges...)
	if g.succ != nil {
		if err := c.Validate(); err != nil {
			//lint:allow nopanic — invariant: re-validating an already-validated graph cannot fail
			panic("task: clone of valid graph failed: " + err.Error())
		}
	}
	return c
}

// Expanded is the duplication-expanded view of a graph: 2M potential tasks
// where slot i+M is the copy of task i. Which copies exist is a decision
// (the paper's h variable), so Expanded only fixes structure: WCEC,
// deadlines and the dependency pattern p over 2M×2M.
type Expanded struct {
	Base *Graph
	M    int // original task count; expanded size is 2M

	// depEdges caches the sorted expanded dependency pairs. The structure
	// is immutable after Expand, and DepEdges sits on the hot path of
	// every deployment evaluation, so it is computed once here rather
	// than rebuilt and re-sorted per call.
	depEdges [][2]int
}

// Expand builds the 2M-slot expanded view.
func Expand(g *Graph) *Expanded {
	e := &Expanded{Base: g, M: g.M()}
	e.depEdges = make([][2]int, 0, 4*len(g.Edges))
	for _, ed := range g.Edges {
		e.depEdges = append(e.depEdges,
			[2]int{ed.From, ed.To},
			[2]int{ed.From + e.M, ed.To},
			[2]int{ed.From, ed.To + e.M},
			[2]int{ed.From + e.M, ed.To + e.M},
		)
	}
	sort.Slice(e.depEdges, func(i, j int) bool {
		if e.depEdges[i][0] != e.depEdges[j][0] {
			return e.depEdges[i][0] < e.depEdges[j][0]
		}
		return e.depEdges[i][1] < e.depEdges[j][1]
	})
	return e
}

// Size returns 2M, the paper's M'.
func (e *Expanded) Size() int { return 2 * e.M }

// Orig maps an expanded slot to its original task id.
func (e *Expanded) Orig(i int) int {
	if i >= e.M {
		return i - e.M
	}
	return i
}

// IsCopy reports whether slot i is a duplicate slot.
func (e *Expanded) IsCopy(i int) bool { return i >= e.M }

// WCEC returns the cycle count of slot i (copies share the original's).
func (e *Expanded) WCEC(i int) float64 { return e.Base.Tasks[e.Orig(i)].WCEC }

// Deadline returns the relative deadline of slot i.
func (e *Expanded) Deadline(i int) float64 { return e.Base.Tasks[e.Orig(i)].Deadline }

// Dep reports p_ij over the expanded slots: slot a depends on slot b's data
// iff the originals are connected.
func (e *Expanded) Dep(from, to int) bool {
	return e.Base.HasEdge(e.Orig(from), e.Orig(to))
}

// Data returns s_ij over expanded slots.
func (e *Expanded) Data(from, to int) float64 {
	return e.Base.Data(e.Orig(from), e.Orig(to))
}

// DepEdges lists every expanded dependency pair (from, to) with from ≠ to,
// i.e. all (a,b) with p_ab = 1, sorted by (from, to). Pairs between the
// two copies of the same task are excluded (a task does not feed its own
// duplicate). The returned slice is cached and shared: callers must treat
// it as read-only.
func (e *Expanded) DepEdges() [][2]int { return e.depEdges }

// ExistingGraph materializes the subgraph of slots with exists[i] == true as
// a standalone Graph (ids renumbered compactly) and returns the slot id for
// each new task. It is used by the heuristic's layering step and by the
// discrete-event simulator.
func (e *Expanded) ExistingGraph(exists []bool) (*Graph, []int) {
	if len(exists) != e.Size() {
		//lint:allow nopanic — programmer error: the exists mask must match the expanded size
		panic(fmt.Sprintf("task: exists length %d, want %d", len(exists), e.Size()))
	}
	idOf := make([]int, e.Size())
	for i := range idOf {
		idOf[i] = -1
	}
	g := New()
	var slots []int
	for i := 0; i < e.Size(); i++ {
		if !exists[i] {
			continue
		}
		name := e.Base.Tasks[e.Orig(i)].Name
		if e.IsCopy(i) {
			name += "'"
		}
		idOf[i] = g.AddTask(name, e.WCEC(i), e.Deadline(i))
		slots = append(slots, i)
	}
	for _, pair := range e.DepEdges() {
		a, b := pair[0], pair[1]
		if idOf[a] >= 0 && idOf[b] >= 0 {
			g.AddEdge(idOf[a], idOf[b], e.Data(a, b))
		}
	}
	if err := g.Validate(); err != nil {
		//lint:allow nopanic — invariant: a subgraph of a validated DAG is a valid DAG
		panic("task: expanded subgraph invalid: " + err.Error())
	}
	return g, slots
}
