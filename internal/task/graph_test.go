package task

import (
	"reflect"
	"testing"
)

// chain builds t0 → t1 → ... → t_{n-1}, validated.
func chain(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		g.AddTask("", 1e6, 1.0)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1024)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"empty", func() *Graph { return New() }},
		{"zero wcec", func() *Graph {
			g := New()
			g.AddTask("", 0, 1)
			return g
		}},
		{"zero deadline", func() *Graph {
			g := New()
			g.AddTask("", 1, 0)
			return g
		}},
		{"edge out of range", func() *Graph {
			g := New()
			g.AddTask("", 1, 1)
			g.AddEdge(0, 3, 1)
			return g
		}},
		{"self edge", func() *Graph {
			g := New()
			g.AddTask("", 1, 1)
			g.AddEdge(0, 0, 1)
			return g
		}},
		{"negative data", func() *Graph {
			g := New()
			g.AddTask("", 1, 1)
			g.AddTask("", 1, 1)
			g.AddEdge(0, 1, -5)
			return g
		}},
		{"duplicate edge", func() *Graph {
			g := New()
			g.AddTask("", 1, 1)
			g.AddTask("", 1, 1)
			g.AddEdge(0, 1, 1)
			g.AddEdge(0, 1, 2)
			return g
		}},
		{"cycle", func() *Graph {
			g := New()
			g.AddTask("", 1, 1)
			g.AddTask("", 1, 1)
			g.AddEdge(0, 1, 1)
			g.AddEdge(1, 0, 1)
			return g
		}},
	}
	for _, c := range cases {
		if err := c.build().Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := New()
	for i := 0; i < 6; i++ {
		g.AddTask("", 1e6, 1)
	}
	edges := [][2]int{{0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1], 10)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.M())
	for p, v := range order {
		pos[v] = p
	}
	for _, e := range edges {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %d→%d violated in order %v", e[0], e[1], order)
		}
	}
}

func TestLayersOfDiamond(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddTask("", 1e6, 1)
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	layers := g.Layers()
	want := [][]int{{0}, {1, 2}, {3}}
	if !reflect.DeepEqual(layers, want) {
		t.Errorf("layers = %v, want %v", layers, want)
	}
}

func TestCriticalPathPicksHeavierBranch(t *testing.T) {
	g := New()
	// 0 → {1 (heavy), 2 (light)} → 3
	g.AddTask("", 1e6, 1)
	g.AddTask("", 9e6, 1)
	g.AddTask("", 1e6, 1)
	g.AddTask("", 1e6, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	got := g.CriticalPath(func(i int) float64 { return g.Tasks[i].WCEC })
	want := []int{0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("critical path = %v, want %v", got, want)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := chain(t, 4)
	if got := g.Sources(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("sinks = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := chain(t, 3)
	c := g.Clone()
	c.Tasks[0].WCEC = 42
	if g.Tasks[0].WCEC == 42 {
		t.Error("clone shares task storage with original")
	}
	if c.M() != g.M() || len(c.Edges) != len(g.Edges) {
		t.Error("clone structure differs")
	}
}

func TestExpandedMapping(t *testing.T) {
	g := chain(t, 3)
	e := Expand(g)
	if e.Size() != 6 {
		t.Fatalf("Size = %d", e.Size())
	}
	for i := 0; i < 3; i++ {
		if e.IsCopy(i) || !e.IsCopy(i+3) {
			t.Errorf("IsCopy wrong at %d", i)
		}
		if e.Orig(i) != i || e.Orig(i+3) != i {
			t.Errorf("Orig wrong at %d", i)
		}
		if e.WCEC(i) != e.WCEC(i+3) {
			t.Errorf("copy WCEC differs at %d", i)
		}
	}
}

// The paper's Fig. 1(c): chain τ1→τ2→τ3 duplicated as τ4,τ5,τ6. The copy of
// a predecessor feeds both the original and the copy of its successor.
func TestExpandedDepEdges(t *testing.T) {
	g := chain(t, 2) // 0→1, copies are 2,3
	e := Expand(g)
	want := map[[2]int]bool{
		{0, 1}: true, {2, 1}: true, {0, 3}: true, {2, 3}: true,
	}
	got := e.DepEdges()
	if len(got) != len(want) {
		t.Fatalf("DepEdges = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected expanded edge %v", p)
		}
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if e.Dep(a, b) != want[[2]int{a, b}] {
				t.Errorf("Dep(%d,%d) = %v", a, b, e.Dep(a, b))
			}
		}
	}
	// Data sizes inherited from the base edge.
	if e.Data(2, 3) != g.Data(0, 1) {
		t.Errorf("copy edge data %g != base %g", e.Data(2, 3), g.Data(0, 1))
	}
}

func TestExistingGraphSubset(t *testing.T) {
	g := chain(t, 3)
	e := Expand(g)
	exists := []bool{true, true, true, true, false, false} // only τ1 duplicated
	sub, slots := e.ExistingGraph(exists)
	if sub.M() != 4 {
		t.Fatalf("existing graph has %d tasks, want 4", sub.M())
	}
	if !reflect.DeepEqual(slots, []int{0, 1, 2, 3}) {
		t.Fatalf("slots = %v", slots)
	}
	// Edges: 0→1, 1→2, 3→1 (copy of τ1 feeds τ2).
	if len(sub.Edges) != 3 {
		t.Fatalf("existing graph has %d edges, want 3: %v", len(sub.Edges), sub.Edges)
	}
	if !sub.HasEdge(3, 1) {
		t.Error("copy slot 3 should feed task 1")
	}
	// Layering groups each copy with its original, as in Fig. 1(c).
	layers := sub.Layers()
	if len(layers) != 3 {
		t.Fatalf("layers = %v", layers)
	}
	if !reflect.DeepEqual(layers[0], []int{0, 3}) {
		t.Errorf("layer 0 = %v, want [0 3]", layers[0])
	}
}

func TestExistingGraphPanicsOnBadLength(t *testing.T) {
	g := chain(t, 2)
	e := Expand(g)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong exists length")
		}
	}()
	e.ExistingGraph([]bool{true})
}
