package task

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAG builds a random forward-edge DAG (test-local, independent of
// package taskgen so the two implementations cross-check each other).
func randomDAG(seed int64, m int, p float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < m; i++ {
		g.AddTask("", 1+rng.Float64()*1e6, 1e-3+rng.Float64())
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j, 1+rng.Float64()*1e4)
			}
		}
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// Property: every edge crosses to a strictly deeper layer, and layer 0
// contains exactly the sources.
func TestLayersProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8, pRaw uint8) bool {
		m := 2 + int(mRaw%15)
		p := float64(pRaw%80) / 100
		g := randomDAG(seed, m, p)
		layers := g.Layers()
		level := make([]int, m)
		for li, layer := range layers {
			for _, v := range layer {
				level[v] = li
			}
		}
		for _, e := range g.Edges {
			if level[e.From] >= level[e.To] {
				return false
			}
		}
		for _, v := range layers[0] {
			if len(g.Pred(v)) != 0 {
				return false
			}
		}
		// Every task appears exactly once across layers.
		seen := map[int]int{}
		for _, layer := range layers {
			for _, v := range layer {
				seen[v]++
			}
		}
		if len(seen) != m {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CriticalPath returns a real path whose weight matches an
// independent DP over all paths.
func TestCriticalPathProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := 2 + int(mRaw%12)
		g := randomDAG(seed, m, 0.3)
		weight := func(i int) float64 { return g.Tasks[i].WCEC }
		path := g.CriticalPath(weight)
		if len(path) == 0 {
			return false
		}
		// Path is connected.
		for i := 0; i+1 < len(path); i++ {
			if !g.HasEdge(path[i], path[i+1]) {
				return false
			}
		}
		var pw float64
		for _, v := range path {
			pw += weight(v)
		}
		// Independent longest-path DP.
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		best := make([]float64, m)
		maxW := 0.0
		for _, v := range order {
			best[v] = weight(v)
			for _, p := range g.Pred(v) {
				if best[p]+weight(v) > best[v] {
					best[v] = best[p] + weight(v)
				}
			}
			if best[v] > maxW {
				maxW = best[v]
			}
		}
		return pw >= maxW-1e-9 && pw <= maxW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the duplication expansion is structure-preserving — DepEdges
// has exactly 4 entries per base edge, Dep is consistent with DepEdges,
// and ExistingGraph with all-true selects all 2M slots with 4·E edges.
func TestExpandProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := 2 + int(mRaw%10)
		g := randomDAG(seed, m, 0.25)
		e := Expand(g)
		edges := e.DepEdges()
		if len(edges) != 4*len(g.Edges) {
			return false
		}
		seen := map[[2]int]bool{}
		for _, pr := range edges {
			if !e.Dep(pr[0], pr[1]) {
				return false
			}
			seen[pr] = true
		}
		// No duplicates.
		if len(seen) != len(edges) {
			return false
		}
		all := make([]bool, e.Size())
		for i := range all {
			all[i] = true
		}
		sub, slots := e.ExistingGraph(all)
		return sub.M() == 2*m && len(sub.Edges) == 4*len(g.Edges) && len(slots) == 2*m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
