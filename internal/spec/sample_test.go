package spec

import (
	"path/filepath"
	"testing"

	"nocdeploy/internal/core"
)

// The sample instance shipped in testdata must build, solve and validate —
// it is the instance the README's CLI walkthrough uses.
func TestShippedSampleInstance(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "sample_instance.json")
	inst, err := ReadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := inst.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph.M() != 12 || s.Mesh.N() != 16 {
		t.Errorf("sample dims: M=%d N=%d", s.Graph.M(), s.Mesh.N())
	}
	d, info, err := core.HeuristicWithRepair(s, core.Options{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("shipped sample must be solvable")
	}
	if _, err := core.Validate(s, d); err != nil {
		t.Fatal(err)
	}
}
