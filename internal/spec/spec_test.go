package spec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nocdeploy/internal/core"
	"nocdeploy/internal/taskgen"
)

func sampleInstance() Instance {
	return Instance{
		Mesh: Mesh{W: 2, H: 2},
		Graph: Graph{
			Tasks: []Task{
				{Name: "a", WCEC: 1e6, Deadline: 0.01},
				{Name: "b", WCEC: 2e6, Deadline: 0.01},
			},
			Edges: []Edge{{From: 0, To: 1, Bytes: 2048}},
		},
		Alpha: 1.5,
	}
}

func TestInstanceBuild(t *testing.T) {
	s, err := sampleInstance().Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Mesh.N() != 4 || s.Graph.M() != 2 {
		t.Errorf("built system dims wrong: N=%d M=%d", s.Mesh.N(), s.Graph.M())
	}
	if s.H <= 0 {
		t.Errorf("horizon %g", s.H)
	}
}

func TestInstanceBuildErrors(t *testing.T) {
	in := sampleInstance()
	in.Mesh.W = 0
	if _, err := in.Build(); err == nil {
		t.Error("expected error for zero mesh width")
	}
	in = sampleInstance()
	in.Alpha = 0
	if _, err := in.Build(); err == nil {
		t.Error("expected error with neither horizon nor alpha")
	}
	in = sampleInstance()
	in.Graph.Edges[0].To = 9
	if _, err := in.Build(); err == nil {
		t.Error("expected error for bad edge")
	}
}

func TestInstanceOverrides(t *testing.T) {
	in := sampleInstance()
	in.Horizon = 0.5
	in.Reliability = Reliability{Rth: 0.99, LambdaMax: 1e-4, D: 4}
	in.Platform.Levels = []VFLevel{{Voltage: 0.9, Freq: 0.6e9}, {Voltage: 1.1, Freq: 1.0e9}}
	s, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.H != 0.5 {
		t.Errorf("horizon %g, want 0.5", s.H)
	}
	if s.Plat.L() != 2 {
		t.Errorf("levels %d, want 2", s.Plat.L())
	}
	if s.Rel.Rth != 0.99 || s.Rel.LambdaMax != 1e-4 {
		t.Errorf("reliability not overridden: %+v", s.Rel)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := sampleInstance()
	dir := t.TempDir()
	path := filepath.Join(dir, "instance.json")
	if err := WriteJSON(path, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", in, back)
	}
}

func TestDeploymentRoundTrip(t *testing.T) {
	s, err := sampleInstance().Build()
	if err != nil {
		t.Fatal(err)
	}
	d, info, err := core.Heuristic(s, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.ComputeMetrics(s, d)
	if err != nil {
		t.Fatal(err)
	}
	sd := FromDeployment(d, m, info)
	data, err := json.Marshal(sd)
	if err != nil {
		t.Fatal(err)
	}
	var back Deployment
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	d2 := back.ToDeployment()
	if !reflect.DeepEqual(d, d2) {
		t.Errorf("deployment round trip mismatch")
	}
	// The round-tripped deployment must still validate.
	if _, err := core.ComputeMetrics(s, d2); err != nil {
		t.Errorf("round-tripped deployment invalid: %v", err)
	}
}

func TestFromGraph(t *testing.T) {
	g, err := taskgen.Layered(taskgen.DefaultParams(6, 1), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	gs := FromGraph(g)
	if len(gs.Tasks) != 6 || len(gs.Edges) != len(g.Edges) {
		t.Errorf("FromGraph sizes wrong")
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := ReadInstance(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadInstance(bad); err == nil {
		t.Error("expected error for malformed JSON")
	}
	if _, err := ReadDeployment(bad); err == nil {
		t.Error("expected error for malformed deployment JSON")
	}
}
