package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

// Two spellings of the same instance: field order shuffled at every level,
// whitespace entirely different, numbers in equivalent-but-different
// notations (0.25 vs 2.5e-1, 3 vs 3.0 would differ as JSON — kept equal
// semantically after parsing).
const canonA = `{
  "mesh": {"w": 3, "h": 2, "jitter": 0.25, "seed": 7},
  "platform": {},
  "graph": {
    "tasks": [
      {"name": "a", "wcec": 1000000, "deadline": 0.002},
      {"name": "b", "wcec": 2000000, "deadline": 0.004}
    ],
    "edges": [{"from": 0, "to": 1, "bytes": 4096.5}]
  },
  "reliability": {"rth": 0.999},
  "alpha": 1.3
}`

const canonB = `{"alpha":1.3,"reliability":{"rth":0.999},"graph":{"edges":[{"bytes":4096.5,"to":1,"from":0}],"tasks":[{"deadline":0.002,"wcec":1e6,"name":"a"},{"wcec":2e6,"deadline":4e-3,"name":"b"}]},"platform":{},"mesh":{"seed":7,"jitter":2.5e-1,"h":2,"w":3}}`

func parseInstance(t *testing.T, s string) Instance {
	t.Helper()
	var in Instance
	if err := json.Unmarshal([]byte(s), &in); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return in
}

func TestCanonicalHashInvariantToFormatting(t *testing.T) {
	a := parseInstance(t, canonA)
	b := parseInstance(t, canonB)
	ha, err := a.CanonicalHash()
	if err != nil {
		t.Fatalf("hash a: %v", err)
	}
	hb, err := b.CanonicalHash()
	if err != nil {
		t.Fatalf("hash b: %v", err)
	}
	if ha != hb {
		t.Fatalf("same instance, different hashes:\n a: %s\n b: %s", ha, hb)
	}
	if len(ha) != 64 || strings.ToLower(ha) != ha {
		t.Fatalf("hash %q is not lowercase hex SHA-256", ha)
	}
}

func TestCanonicalHashSensitiveToContent(t *testing.T) {
	base := parseInstance(t, canonA)
	hBase, err := base.CanonicalHash()
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	mutations := map[string]func(*Instance){
		"mesh width":    func(in *Instance) { in.Mesh.W++ },
		"mesh seed":     func(in *Instance) { in.Mesh.Seed = 8 },
		"task wcec":     func(in *Instance) { in.Graph.Tasks[0].WCEC *= 1.000001 },
		"task name":     func(in *Instance) { in.Graph.Tasks[0].Name = "a2" },
		"edge bytes":    func(in *Instance) { in.Graph.Edges[0].Bytes += 1 },
		"alpha":         func(in *Instance) { in.Alpha = 1.4 },
		"reliability":   func(in *Instance) { in.Reliability.Rth = 0.9999 },
		"extra task":    func(in *Instance) { in.Graph.Tasks = append(in.Graph.Tasks, Task{WCEC: 1, Deadline: 1}) },
		"drop horizon":  func(in *Instance) { in.Alpha = 0; in.Horizon = 0.01 },
		"level table":   func(in *Instance) { in.Platform.Levels = []VFLevel{{Voltage: 1, Freq: 1e9}} },
		"jitter change": func(in *Instance) { in.Mesh.Jitter = 0.5 },
	}
	for name, mutate := range mutations {
		in := parseInstance(t, canonA)
		mutate(&in)
		h, err := in.CanonicalHash()
		if err != nil {
			t.Fatalf("%s: hash: %v", name, err)
		}
		if h == hBase {
			t.Errorf("%s: mutation did not change the hash", name)
		}
	}
}

func TestCanonicalBytesDeterministic(t *testing.T) {
	in := parseInstance(t, canonA)
	first, err := in.CanonicalBytes()
	if err != nil {
		t.Fatalf("canonical bytes: %v", err)
	}
	for i := 0; i < 10; i++ {
		again, err := in.CanonicalBytes()
		if err != nil {
			t.Fatalf("canonical bytes: %v", err)
		}
		if string(again) != string(first) {
			t.Fatalf("canonical bytes differ between calls:\n%s\n%s", first, again)
		}
	}
	// Canonical form has no insignificant whitespace and sorted keys.
	s := string(first)
	if strings.ContainsAny(s, " \n\t") {
		t.Errorf("canonical bytes contain whitespace: %s", s)
	}
	if !strings.HasPrefix(s, `{"alpha":`) {
		t.Errorf("canonical bytes do not start with the lexically first key: %s", s)
	}
}
