// Package spec defines the JSON interchange format for problem instances
// and deployments, used by the command-line tools. A complete instance
// bundles the platform, mesh, task graph, reliability model and horizon
// rule; a deployment records every decision plus its metrics.
package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"nocdeploy/internal/core"
	"nocdeploy/internal/noc"
	"nocdeploy/internal/numeric"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/task"
)

// VFLevel mirrors platform.VFLevel.
type VFLevel struct {
	Voltage float64 `json:"voltage"`
	Freq    float64 `json:"freq"`
}

// Platform describes the processor array.
type Platform struct {
	Levels []VFLevel `json:"levels,omitempty"` // empty means the default table
}

// Mesh describes the NoC.
type Mesh struct {
	W      int     `json:"w"`
	H      int     `json:"h"`
	Jitter float64 `json:"jitter,omitempty"` // default 0.25
	Seed   int64   `json:"seed,omitempty"`
}

// Task is one node of the task graph.
type Task struct {
	Name     string  `json:"name,omitempty"`
	WCEC     float64 `json:"wcec"`
	Deadline float64 `json:"deadline"`
}

// Edge is one dependency.
type Edge struct {
	From  int     `json:"from"`
	To    int     `json:"to"`
	Bytes float64 `json:"bytes"`
}

// Graph is the application DAG.
type Graph struct {
	Tasks []Task `json:"tasks"`
	Edges []Edge `json:"edges"`
}

// Reliability holds the fault-model constants; zero values pick defaults.
type Reliability struct {
	LambdaMax float64 `json:"lambdaMax,omitempty"`
	D         float64 `json:"d,omitempty"`
	Rth       float64 `json:"rth,omitempty"`
}

// Instance is a full problem instance. Exactly one of Horizon or Alpha
// must be positive: Horizon is absolute seconds; Alpha applies the paper's
// critical-path horizon rule.
type Instance struct {
	Platform    Platform    `json:"platform"`
	Mesh        Mesh        `json:"mesh"`
	Graph       Graph       `json:"graph"`
	Reliability Reliability `json:"reliability"`
	Horizon     float64     `json:"horizon,omitempty"`
	Alpha       float64     `json:"alpha,omitempty"`
}

// Build materializes the instance into a solvable system.
func (in Instance) Build() (*core.System, error) {
	if in.Mesh.W <= 0 || in.Mesh.H <= 0 {
		return nil, fmt.Errorf("spec: mesh %dx%d invalid", in.Mesh.W, in.Mesh.H)
	}
	levels := platform.DefaultLevels()
	if len(in.Platform.Levels) > 0 {
		levels = nil
		for _, l := range in.Platform.Levels {
			levels = append(levels, platform.VFLevel{Voltage: l.Voltage, Freq: l.Freq})
		}
	}
	plat, err := platform.New(in.Mesh.W*in.Mesh.H, levels, platform.DefaultPowerParams())
	if err != nil {
		return nil, err
	}
	jitter := in.Mesh.Jitter
	if numeric.IsZero(jitter) {
		jitter = 0.25
	}
	seed := in.Mesh.Seed
	if seed == 0 {
		seed = 1
	}
	mesh, err := noc.NewMesh(noc.Config{
		W: in.Mesh.W, H: in.Mesh.H,
		Link: noc.DefaultLinkParams(), Jitter: jitter, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	g := task.New()
	for _, t := range in.Graph.Tasks {
		g.AddTask(t.Name, t.WCEC, t.Deadline)
	}
	for _, e := range in.Graph.Edges {
		g.AddEdge(e.From, e.To, e.Bytes)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	if in.Reliability.LambdaMax > 0 {
		rel.LambdaMax = in.Reliability.LambdaMax
	}
	if in.Reliability.D > 0 {
		rel.D = in.Reliability.D
	}
	if in.Reliability.Rth > 0 {
		rel.Rth = in.Reliability.Rth
	}
	h := in.Horizon
	if h <= 0 {
		if in.Alpha <= 0 {
			return nil, fmt.Errorf("spec: either horizon or alpha must be positive")
		}
		h, err = core.Horizon(plat, mesh, g, rel, in.Alpha)
		if err != nil {
			return nil, err
		}
	}
	return core.NewSystem(plat, mesh, g, rel, h)
}

// FromGraph converts a task graph into its spec form.
func FromGraph(g *task.Graph) Graph {
	var out Graph
	for _, t := range g.Tasks {
		out.Tasks = append(out.Tasks, Task{Name: t.Name, WCEC: t.WCEC, Deadline: t.Deadline})
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, Edge{From: e.From, To: e.To, Bytes: e.Bytes})
	}
	return out
}

// Deployment is the serialized result of a solve.
type Deployment struct {
	Exists  []bool    `json:"exists"`
	Level   []int     `json:"level"`
	Proc    []int     `json:"proc"`
	Start   []float64 `json:"start"`
	PathSel [][]int   `json:"pathSel"`

	Feasible  bool    `json:"feasible"`
	Objective float64 `json:"objective"`
	MaxEnergy float64 `json:"maxEnergy"`
	SumEnergy float64 `json:"sumEnergy"`
	Phi       float64 `json:"phi"`
	Dups      int     `json:"dups"`
	Makespan  float64 `json:"makespan"`
}

// FromDeployment serializes a deployment with its metrics.
func FromDeployment(d *core.Deployment, m *core.Metrics, info *core.SolveInfo) Deployment {
	out := Deployment{
		Exists:  d.Exists,
		Level:   d.Level,
		Proc:    d.Proc,
		Start:   d.Start,
		PathSel: d.PathSel,
	}
	if info != nil {
		out.Feasible = info.Feasible
		out.Objective = info.Objective
	}
	if m != nil {
		out.MaxEnergy = m.MaxEnergy
		out.SumEnergy = m.SumEnergy
		out.Phi = m.Phi
		out.Dups = m.Dups
		out.Makespan = m.Makespan
	}
	return out
}

// ToDeployment rebuilds the core deployment (metrics fields are ignored).
func (d Deployment) ToDeployment() *core.Deployment {
	return &core.Deployment{
		Exists:  d.Exists,
		Level:   d.Level,
		Proc:    d.Proc,
		Start:   d.Start,
		PathSel: d.PathSel,
	}
}

// ReadInstance loads an instance from a JSON file ("-" means stdin).
func ReadInstance(path string) (Instance, error) {
	var in Instance
	data, err := readAll(path)
	if err != nil {
		return in, err
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return in, fmt.Errorf("spec: parsing %s: %w", path, err)
	}
	return in, nil
}

// ReadDeployment loads a deployment from a JSON file ("-" means stdin).
func ReadDeployment(path string) (Deployment, error) {
	var d Deployment
	data, err := readAll(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("spec: parsing %s: %w", path, err)
	}
	return d, nil
}

// WriteJSON writes v as indented JSON to path ("-" means stdout).
func WriteJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" || path == "" {
		_, err = os.Stdout.Write(data) //lint:allow rawlog — "-" means stdout by CLI contract
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func readAll(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
