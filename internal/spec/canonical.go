package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// CanonicalBytes returns a canonical, deterministic encoding of the
// instance, suitable for content addressing: the instance's JSON form
// re-serialized with object keys sorted, numbers in their shortest
// round-trip form, and no insignificant whitespace. Two instances that are
// semantically identical — regardless of the field order or whitespace of
// the JSON they were parsed from — encode to the same bytes.
func (in Instance) CanonicalBytes() ([]byte, error) {
	raw, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("spec: canonical encoding: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v interface{}
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("spec: canonical encoding: %w", err)
	}
	var buf bytes.Buffer
	if err := canonicalAppend(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CanonicalHash returns the hex SHA-256 of CanonicalBytes. It is the
// content address of the instance: stable across processes and releases of
// the same encoding, invariant to the formatting of the source JSON, and
// different whenever any semantic field differs.
func (in Instance) CanonicalHash() (string, error) {
	data, err := in.CanonicalBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalAppend writes one decoded JSON value in canonical form: object
// keys sorted lexicographically, numbers via canonicalNumber, strings
// re-marshaled with encoding/json (fixed escaping).
func canonicalAppend(buf *bytes.Buffer, v interface{}) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		s, err := canonicalNumber(x)
		if err != nil {
			return err
		}
		buf.WriteString(s)
	case string:
		data, err := json.Marshal(x)
		if err != nil {
			return fmt.Errorf("spec: canonical encoding: %w", err)
		}
		buf.Write(data)
	case []interface{}:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := canonicalAppend(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]interface{}:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kdata, err := json.Marshal(k)
			if err != nil {
				return fmt.Errorf("spec: canonical encoding: %w", err)
			}
			buf.Write(kdata)
			buf.WriteByte(':')
			if err := canonicalAppend(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("spec: canonical encoding: unsupported value %T", v)
	}
	return nil
}

// canonicalNumber renders a JSON number canonically: integers that fit an
// int64 keep their exact decimal form ("7", not "7.0"); everything else is
// the shortest decimal string that round-trips through float64, so "0.25",
// "0.250" and "2.5e-1" all collapse to one spelling.
func canonicalNumber(n json.Number) (string, error) {
	if i, err := strconv.ParseInt(n.String(), 10, 64); err == nil {
		return strconv.FormatInt(i, 10), nil
	}
	f, err := n.Float64()
	if err != nil {
		return "", fmt.Errorf("spec: canonical encoding: number %q: %w", n, err)
	}
	return strconv.FormatFloat(f, 'g', -1, 64), nil
}
