package spec

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseSpec feeds arbitrary bytes through the Instance JSON codec and
// checks the round-trip contract: any JSON that decodes must re-encode to a
// stable form (marshal → unmarshal → marshal is a fixed point), and
// building the decoded instance must fail with an error, never a panic.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"mesh":{"w":2,"h":2},"graph":{"tasks":[{"wcec":1e6,"deadline":1}],"edges":[]},"alpha":1.5}`))
	f.Add([]byte(`{"mesh":{"w":1,"h":1,"jitter":0.1,"seed":7},"graph":{"tasks":[],"edges":[]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var in Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return // invalid JSON is rejected, nothing more to check
		}
		first, err := json.Marshal(in)
		if err != nil {
			// Fuzzer-supplied NaN/Inf cannot appear: JSON has no literal for
			// them, so a decoded Instance always re-encodes.
			t.Fatalf("re-encoding decoded instance failed: %v", err)
		}
		var again Instance
		if err := json.Unmarshal(first, &again); err != nil {
			t.Fatalf("decoding our own encoding failed: %v\njson: %s", err, first)
		}
		second, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round-trip is not a fixed point:\nfirst:  %s\nsecond: %s", first, second)
		}

		// Build must validate, not crash. Cap the dimensions so adversarial
		// inputs cannot allocate unbounded systems.
		if in.Mesh.W > 4 || in.Mesh.H > 4 || len(in.Graph.Tasks) > 16 || len(in.Graph.Edges) > 64 {
			return
		}
		if _, err := in.Build(); err != nil {
			return // structured rejection is the expected path for junk input
		}
	})
}
