package archive

import (
	"fmt"
	"testing"

	"nocdeploy/internal/obs"
)

func TestCollectorFold(t *testing.T) {
	c := NewCollector(0, 0)
	c.Write(obs.Event{Kind: obs.BBIncumbent, Req: "r1", T: 0.1, Obj: 20})
	c.Write(obs.Event{Kind: obs.EngineIter, Req: "r1", T: 0.2, Obj: 18})
	c.Write(obs.Event{Kind: obs.BBIncumbent, Req: "r2", T: 0.1, Obj: 7}) // other request
	c.Write(obs.Event{Kind: obs.BBIncumbent, T: 0.3, Obj: 1})            // no request ID: ignored
	c.Write(obs.Event{Kind: obs.EngineOpApply, Req: "r1", Label: "repair", Phase: "improved", Dur: 0.05})
	c.Write(obs.Event{Kind: obs.EngineOpApply, Req: "r1", Label: "repair", Phase: "feasible", Dur: 0.03})
	c.Write(obs.Event{Kind: obs.EngineOpApply, Req: "r1", Label: "anneal", Phase: "improved", Dur: 0.01})

	traj, ops := c.Take("r1")
	if len(traj) != 2 || traj[0].Obj != 20 || traj[1].Obj != 18 {
		t.Fatalf("trajectory = %+v", traj)
	}
	if ops["repair"].Applies != 2 || ops["repair"].Improvements != 1 {
		t.Fatalf("repair op stats = %+v", ops["repair"])
	}
	if ops["anneal"].Improvements != 1 {
		t.Fatalf("anneal op stats = %+v", ops["anneal"])
	}
	// Take removes: a second Take is empty.
	if traj, ops := c.Take("r1"); traj != nil || ops != nil {
		t.Fatal("Take did not remove the request")
	}
	// The other request was untouched.
	if traj, _ := c.Take("r2"); len(traj) != 1 || traj[0].Obj != 7 {
		t.Fatalf("r2 trajectory = %+v", traj)
	}
}

func TestCollectorDecimation(t *testing.T) {
	const maxPoints = 16
	c := NewCollector(0, maxPoints)
	const n = 1000
	for i := 0; i < n; i++ {
		c.Write(obs.Event{Kind: obs.BBIncumbent, Req: "r", T: float64(i), Obj: float64(n - i)})
	}
	traj, _ := c.Take("r")
	if len(traj) == 0 || len(traj) > maxPoints {
		t.Fatalf("decimated trajectory has %d points, want 1..%d", len(traj), maxPoints)
	}
	if traj[0].T != 0 {
		t.Fatalf("first point = %+v, want the solve's start", traj[0])
	}
	for i := 1; i < len(traj); i++ {
		if traj[i].T <= traj[i-1].T {
			t.Fatalf("trajectory not monotone at %d: %+v", i, traj[i-1:i+1])
		}
	}
}

func TestCollectorBoundedRequests(t *testing.T) {
	c := NewCollector(4, 0)
	for i := 0; i < 10; i++ {
		c.Write(obs.Event{Kind: obs.BBIncumbent, Req: fmt.Sprintf("r%d", i), Obj: 1})
	}
	// Oldest evicted: an evicted request folds to empty, never errors.
	if traj, _ := c.Take("r0"); traj != nil {
		t.Fatal("evicted request still tracked")
	}
	if traj, _ := c.Take("r9"); len(traj) != 1 {
		t.Fatal("latest request lost")
	}
	// Nil-safety mirrors the rest of the observability plumbing.
	var nilC *Collector
	if traj, ops := nilC.Take("r"); traj != nil || ops != nil {
		t.Fatal("nil collector Take not empty")
	}
}
