package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nocdeploy/internal/obs"
)

// Options configures a Store. The zero value is a bounded in-memory
// archive (no Dir): full records are retained up to MemoryRecords — the
// mode tests and the ext-advisor experiment use. With Dir set, records
// persist as segmented JSONL under Dir and only compact Summaries stay
// resident.
type Options struct {
	// Dir is the segment directory; empty means memory-only.
	Dir string

	// MaxSegmentBytes seals the active segment once it grows past this
	// size; 0 means 4 MiB. Retention works at segment granularity, so
	// smaller segments bound disk usage more tightly.
	MaxSegmentBytes int64
	// MaxBytes bounds total on-disk size: once exceeded, whole oldest
	// sealed segments are deleted. 0 means 256 MiB; negative disables.
	MaxBytes int64
	// MaxAge expires records: segments whose newest record is older are
	// deleted, and the oldest surviving segment is compacted (rewritten
	// via temp+rename) to shed expired records. 0 disables.
	MaxAge time.Duration

	// QueueDepth bounds the async writer's queue; 0 means 256. Append
	// never blocks: when the queue is full the record is counted as
	// dropped instead — mirroring the BroadcastSink backpressure
	// contract, a slow disk can never delay a solve.
	QueueDepth int

	// MemoryRecords caps retained full records in memory-only mode;
	// 0 means 4096.
	MemoryRecords int

	// Clock stamps Record.Time for records appended without one; nil
	// means the wall clock. Tests inject a fake clock, under which the
	// archived bytes are a pure function of the appended content.
	Clock obs.Clock
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 256 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.MemoryRecords <= 0 {
		o.MemoryRecords = 4096
	}
	return o
}

// segInfo is the writer's accounting for one sealed segment.
type segInfo struct {
	ord    int64 // segment ordinal; the file is seg-<ord>.jsonl
	bytes  int64
	oldest time.Time // oldest record time in the segment
	newest time.Time
}

// Store is the solve archive. Open creates one; Append is safe from any
// goroutine and never blocks (see Options.QueueDepth); queries (List,
// Get, Stats, Advise) are safe concurrent with appends; Close drains the
// writer queue so every accepted record is durable on return.
type Store struct {
	opts Options
	dir  string

	mu      sync.Mutex
	closed  bool
	seq     int64
	index   []Summary          // append-ordered (chronological)
	byID    map[string]int     // record ID → index position
	pending map[string]*Record // accepted, not yet durable (disk mode)
	memory  map[string]*Record // full records (memory mode)

	ch   chan *Record  // nil in memory mode
	done chan struct{} // closed when the writer exits
	gate chan struct{} // test hook: writer blocks per record when non-nil

	// Writer-owned segment state (single goroutine; no locking).
	active      *os.File
	activeN     int64
	activeOld   time.Time
	activeNew   time.Time
	sealed      []segInfo // oldest first
	sealedBytes int64

	// curSeg is the ordinal of the active segment; sealed ordinals are
	// strictly below it. Atomic because Get resolves ordinals to file
	// names concurrently with rotation.
	curSeg atomic.Int64

	trace atomic.Pointer[obs.Trace]

	appends   atomic.Int64
	drops     atomic.Int64
	written   atomic.Int64
	diskBytes atomic.Int64
	segments  atomic.Int64
	werr      atomic.Pointer[string] // first writer error, sticky
}

// Open builds a Store. With Options.Dir set it recovers the in-memory
// index by scanning the existing segments oldest-first (a torn trailing
// line — a crashed writer — is truncated away, and everything before it
// survives) and starts the async writer.
func Open(o Options) (*Store, error) {
	s := &Store{
		opts:    o.withDefaults(),
		dir:     o.Dir,
		byID:    map[string]int{},
		pending: map[string]*Record{},
	}
	if s.dir == "" {
		s.memory = map[string]*Record{}
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.ch = make(chan *Record, s.opts.QueueDepth)
	s.done = make(chan struct{})
	go s.runWriter()
	return s, nil
}

// AttachTrace routes archive.record events into tr — called by the
// service once its trace exists (the store is constructed first, by
// whoever owns the directory). Safe concurrent with appends.
func (s *Store) AttachTrace(tr *obs.Trace) {
	if s == nil {
		return
	}
	s.trace.Store(tr)
}

func segFile(ord int64) string { return fmt.Sprintf("seg-%06d.jsonl", ord) }

const activeFile = "active.jsonl"

// recover scans Dir and rebuilds the index. Sealed segments are indexed
// as-is (a torn tail loses only the torn line); the active segment is
// additionally truncated to its intact prefix so subsequent appends can
// never merge into a torn line. Leftover compaction temp files (a crash
// between write and rename) are removed — the original segment is intact.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	var ords []int64
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("archive: %w", err)
			}
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".jsonl"):
			n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".jsonl"), 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("archive: unexpected segment name %q", name)
			}
			ords = append(ords, n)
		}
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
	maxOrd := int64(0)
	for _, ord := range ords {
		info, err := s.indexSegment(filepath.Join(s.dir, segFile(ord)), ord, false)
		if err != nil {
			return err
		}
		s.sealed = append(s.sealed, info)
		s.sealedBytes += info.bytes
		maxOrd = ord
	}
	s.curSeg.Store(maxOrd + 1)
	apath := filepath.Join(s.dir, activeFile)
	if _, err := os.Stat(apath); err == nil {
		info, err := s.indexSegment(apath, s.curSeg.Load(), true)
		if err != nil {
			return err
		}
		s.activeN = info.bytes
		s.activeOld, s.activeNew = info.oldest, info.newest
	}
	s.diskBytes.Store(s.sealedBytes + s.activeN)
	s.segments.Store(int64(len(s.sealed)) + boolInt(s.activeN > 0))
	return nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// indexSegment scans one segment file into the index, returning its
// accounting. With truncate set (the active segment), the file is cut
// back to the intact prefix.
func (s *Store) indexSegment(path string, ord int64, truncate bool) (segInfo, error) {
	info := segInfo{ord: ord}
	f, err := os.Open(path)
	if err != nil {
		return info, fmt.Errorf("archive: %w", err)
	}
	good := int64(0) // offset just past the last intact line
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break // EOF, or an unterminated (torn) trailing line
		}
		var rec Record
		if uerr := json.Unmarshal(bytes.TrimSpace(line), &rec); uerr != nil || rec.ID == "" {
			break // torn or corrupt: keep the intact prefix only
		}
		good += int64(len(line))
		sum := rec.summary()
		sum.seg = ord
		s.index = append(s.index, sum)
		s.byID[sum.ID] = len(s.index) - 1
		if n := idSeq(sum.ID); n > s.seq {
			s.seq = n
		}
		if info.oldest.IsZero() || rec.Time.Before(info.oldest) {
			info.oldest = rec.Time
		}
		if rec.Time.After(info.newest) {
			info.newest = rec.Time
		}
	}
	cerr := f.Close()
	if cerr != nil {
		return info, fmt.Errorf("archive: %w", cerr)
	}
	if truncate {
		if err := os.Truncate(path, good); err != nil {
			return info, fmt.Errorf("archive: %w", err)
		}
	}
	info.bytes = good
	return info, nil
}

// idSeq parses the numeric part of a record ID ("a17" → 17); 0 for
// anything else.
func idSeq(id string) int64 {
	if !strings.HasPrefix(id, "a") {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Append accepts one record: it is assigned an ID, stamped with the
// clock when it carries no time, indexed, and handed to the async writer.
// Append never blocks — a full writer queue drops the record (counted in
// StoreStats.Dropped) rather than delaying the caller. The Store takes
// ownership of rec; the caller must not retain or mutate it. Nil-safe,
// like every hot-path observability seam in this codebase.
func (s *Store) Append(rec *Record) {
	if s == nil || rec == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.seq++
	rec.ID = "a" + strconv.FormatInt(s.seq, 10)
	if rec.Time.IsZero() {
		rec.Time = s.opts.Clock.Now()
	}
	if rec.Outcome == "" {
		rec.Outcome = OutcomeOK
	}
	rec.Advised = rec.Advice != nil
	sum := rec.summary()
	if s.ch == nil { // memory mode
		s.index = append(s.index, sum)
		s.byID[rec.ID] = len(s.index) - 1
		s.memory[rec.ID] = rec
		if len(s.memory) > s.opts.MemoryRecords {
			// Evict the oldest full record and its index entry; the index
			// is append-ordered, so the oldest still-resident entry leads.
			for _, old := range s.index {
				if _, ok := s.memory[old.ID]; ok {
					delete(s.memory, old.ID)
					s.removeLocked(old.ID)
					break
				}
			}
		}
		s.appends.Add(1)
		s.mu.Unlock()
		s.emit(rec, 0, 0)
		return
	}
	s.index = append(s.index, sum)
	s.byID[rec.ID] = len(s.index) - 1
	s.pending[rec.ID] = rec
	select {
	case s.ch <- rec:
		s.appends.Add(1)
	default:
		// Queue full: the writer is stalled. Drop the record — it was
		// never durable and must not linger in memory unboundedly.
		delete(s.pending, rec.ID)
		s.removeLocked(rec.ID)
		s.drops.Add(1)
	}
	s.mu.Unlock()
}

// removeLocked deletes one record from the index. Caller holds mu.
func (s *Store) removeLocked(id string) {
	i, ok := s.byID[id]
	if !ok {
		return
	}
	s.index = append(s.index[:i], s.index[i+1:]...)
	delete(s.byID, id)
	for j := i; j < len(s.index); j++ {
		s.byID[s.index[j].ID] = j
	}
}

// emit reports one persisted record as an archive.record event.
func (s *Store) emit(rec *Record, size int, dur float64) {
	tr := s.trace.Load()
	if tr == nil || !tr.Enabled() {
		return
	}
	t := tr.WithRequest(rec.Request)
	t.Emit(obs.Event{
		Kind:  obs.ArchiveRecord,
		Label: rec.Solver,
		Phase: rec.Outcome,
		Node:  size,
		Dur:   dur,
	})
}

// runWriter is the async writer: it encodes, appends, rotates, and
// retains — all off the solve path.
func (s *Store) runWriter() {
	defer close(s.done)
	for rec := range s.ch {
		if s.gate != nil {
			<-s.gate
		}
		s.persist(rec)
	}
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			s.setErr(err)
		}
		if err := s.active.Close(); err != nil {
			s.setErr(err)
		}
		s.active = nil
	}
}

func (s *Store) setErr(err error) {
	if err == nil {
		return
	}
	msg := err.Error()
	s.werr.CompareAndSwap(nil, &msg)
}

// persist writes one record to the active segment, stamps its index
// entry with the segment ordinal, then applies rotation and retention.
func (s *Store) persist(rec *Record) {
	t0 := s.opts.Clock.Now()
	line, err := json.Marshal(rec)
	if err == nil {
		line = append(line, '\n')
		if s.active == nil {
			s.active, err = os.OpenFile(filepath.Join(s.dir, activeFile),
				os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
		if err == nil {
			_, err = s.active.Write(line)
		}
	}
	s.mu.Lock()
	delete(s.pending, rec.ID)
	if err != nil {
		// Never durable: drop from the index so queries reflect disk.
		s.removeLocked(rec.ID)
		s.mu.Unlock()
		s.drops.Add(1)
		s.setErr(err)
		return
	}
	if i, ok := s.byID[rec.ID]; ok {
		s.index[i].seg = s.curSeg.Load()
	}
	s.mu.Unlock()
	s.activeN += int64(len(line))
	if s.activeOld.IsZero() {
		s.activeOld = rec.Time
	}
	if rec.Time.After(s.activeNew) {
		s.activeNew = rec.Time
	}
	s.written.Add(1)
	s.emit(rec, len(line), s.opts.Clock.Now().Sub(t0).Seconds())
	if s.activeN >= s.opts.MaxSegmentBytes {
		s.rotate()
	}
	s.retain()
	s.diskBytes.Store(s.sealedBytes + s.activeN)
	s.segments.Store(int64(len(s.sealed)) + boolInt(s.activeN > 0))
}

// rotate seals the active segment: fsync, close, and an atomic rename to
// its ordinal name. A crash at any point leaves either the old active
// file or the sealed file — never both, never a partial rename.
func (s *Store) rotate() {
	if s.active == nil || s.activeN == 0 {
		return
	}
	if err := s.active.Sync(); err != nil {
		s.setErr(err)
	}
	if err := s.active.Close(); err != nil {
		s.setErr(err)
	}
	s.active = nil
	ord := s.curSeg.Load()
	if err := os.Rename(filepath.Join(s.dir, activeFile), filepath.Join(s.dir, segFile(ord))); err != nil {
		s.setErr(err)
		return
	}
	s.sealed = append(s.sealed, segInfo{ord: ord, bytes: s.activeN, oldest: s.activeOld, newest: s.activeNew})
	s.sealedBytes += s.activeN
	s.activeN = 0
	s.activeOld, s.activeNew = time.Time{}, time.Time{}
	// Publish the new active ordinal only after the rename: Get resolves
	// curSeg to active.jsonl, and until the rename lands that file still
	// holds the old ordinal's records.
	s.curSeg.Add(1)
}

// retain enforces the size and age bounds: whole expired or over-budget
// segments are deleted oldest-first, then the oldest survivor is
// compacted (temp+rename rewrite) if it still straddles the age cutoff.
// Only sealed segments are ever touched.
func (s *Store) retain() {
	if s.opts.MaxBytes > 0 {
		for len(s.sealed) > 0 && s.sealedBytes+s.activeN > s.opts.MaxBytes {
			s.dropSegment()
		}
	}
	if s.opts.MaxAge > 0 {
		cutoff := s.opts.Clock.Now().Add(-s.opts.MaxAge)
		for len(s.sealed) > 0 && s.sealed[0].newest.Before(cutoff) {
			s.dropSegment()
		}
		if len(s.sealed) > 0 && s.sealed[0].oldest.Before(cutoff) {
			s.compactSegment(cutoff)
		}
	}
}

// dropSegment deletes the oldest sealed segment and prunes its records
// from the index.
func (s *Store) dropSegment() {
	seg := s.sealed[0]
	if err := os.Remove(filepath.Join(s.dir, segFile(seg.ord))); err != nil {
		s.setErr(err)
		return
	}
	s.sealed = s.sealed[1:]
	s.sealedBytes -= seg.bytes
	s.pruneSeg(seg.ord, nil)
}

// pruneSeg removes index entries living in segment ord. With keep
// non-nil, entries whose ID is in keep survive (compaction).
func (s *Store) pruneSeg(ord int64, keep map[string]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.index[:0]
	for _, sum := range s.index {
		if sum.seg == ord && !keep[sum.ID] {
			delete(s.byID, sum.ID)
			continue
		}
		kept = append(kept, sum)
	}
	s.index = kept
	for i, sum := range s.index {
		s.byID[sum.ID] = i
	}
}

// compactSegment rewrites the oldest sealed segment keeping only records
// at or after cutoff, via a temp file renamed over the original — the
// crash-safe half of the retention contract: a crash leaves either the
// old segment or the fully-written replacement.
func (s *Store) compactSegment(cutoff time.Time) {
	seg := &s.sealed[0]
	path := filepath.Join(s.dir, segFile(seg.ord))
	in, err := os.Open(path)
	if err != nil {
		s.setErr(err)
		return
	}
	tmpPath := path + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		s.setErr(err)
		_ = in.Close()
		return
	}
	keep := map[string]bool{}
	out := segInfo{ord: seg.ord}
	br := bufio.NewReader(in)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil {
			break
		}
		var rec Record
		if uerr := json.Unmarshal(bytes.TrimSpace(line), &rec); uerr != nil || rec.ID == "" {
			break
		}
		if rec.Time.Before(cutoff) {
			continue
		}
		if _, werr := tmp.Write(line); werr != nil {
			err = werr
			break
		}
		keep[rec.ID] = true
		out.bytes += int64(len(line))
		if out.oldest.IsZero() || rec.Time.Before(out.oldest) {
			out.oldest = rec.Time
		}
		if rec.Time.After(out.newest) {
			out.newest = rec.Time
		}
	}
	_ = in.Close()
	if serr := tmp.Sync(); err == nil {
		err = serr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.setErr(err)
		_ = os.Remove(tmpPath)
		return
	}
	if err := os.Rename(tmpPath, path); err != nil {
		s.setErr(err)
		_ = os.Remove(tmpPath)
		return
	}
	s.sealedBytes += out.bytes - seg.bytes
	*seg = out
	s.pruneSeg(out.ord, keep)
	if out.bytes == 0 {
		// Everything expired: the (now empty) segment file can go too.
		s.dropSegment()
	}
}

// Get returns the full record for id: from the pending queue or the
// memory tier if still resident, otherwise read back from its segment.
func (s *Store) Get(id string) (*Record, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	if rec, ok := s.pending[id]; ok {
		cp := *rec
		s.mu.Unlock()
		return &cp, true
	}
	if rec, ok := s.memory[id]; ok {
		cp := *rec
		s.mu.Unlock()
		return &cp, true
	}
	i, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	ord := s.index[i].seg
	s.mu.Unlock()
	// Two attempts cover a rotation racing the lookup: the first open can
	// hit active.jsonl just as it is renamed to its sealed name.
	for attempt := 0; attempt < 2; attempt++ {
		name := segFile(ord)
		if ord == s.curSeg.Load() {
			name = activeFile
		}
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		rec, found := scanForID(f, id)
		if cerr := f.Close(); cerr != nil {
			s.setErr(cerr)
		}
		if found {
			return rec, true
		}
	}
	return nil, false
}

// scanForID reads a segment looking for one record.
func scanForID(r io.Reader, id string) (*Record, bool) {
	needle := []byte(`"id":"` + id + `"`)
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return nil, false
		}
		if !bytes.Contains(line, needle) {
			continue
		}
		var rec Record
		if json.Unmarshal(bytes.TrimSpace(line), &rec) == nil && rec.ID == id {
			return &rec, true
		}
	}
}

// Filter selects records for List and Stats. The zero value matches
// everything.
type Filter struct {
	Instance string    // canonical hash, or a hash prefix
	Solver   string    // exact solver name
	Outcome  string    // exact outcome
	Since    time.Time // inclusive lower bound on Record.Time
	Until    time.Time // exclusive upper bound
	Limit    int       // max results for List, newest first; 0 = all
}

func (f Filter) match(s Summary) bool {
	if f.Instance != "" && !strings.HasPrefix(s.Hash, f.Instance) {
		return false
	}
	if f.Solver != "" && s.Solver != f.Solver {
		return false
	}
	if f.Outcome != "" && s.Outcome != f.Outcome {
		return false
	}
	if !f.Since.IsZero() && s.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && !s.Time.Before(f.Until) {
		return false
	}
	return true
}

// List returns matching record summaries, newest first.
func (s *Store) List(f Filter) []Summary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	snap := make([]Summary, len(s.index))
	copy(snap, s.index)
	s.mu.Unlock()
	out := []Summary{}
	for i := len(snap) - 1; i >= 0; i-- {
		if !f.match(snap[i]) {
			continue
		}
		out = append(out, snap[i])
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// SolverStats aggregates one solver's archived outcomes.
type SolverStats struct {
	Count     int `json:"count"`
	OK        int `json:"ok"`
	Cancelled int `json:"cancelled,omitempty"`
	Errors    int `json:"errors,omitempty"`
	// Wins counts instances (by canonical hash) where this solver's best
	// feasible objective beat every other solver that also solved the
	// instance — only instances with ≥2 distinct solvers participate.
	Wins               int     `json:"wins"`
	MeanFinalObjective float64 `json:"meanFinalObjective,omitempty"`
	P50RuntimeSeconds  float64 `json:"p50RuntimeSeconds,omitempty"`
	P95RuntimeSeconds  float64 `json:"p95RuntimeSeconds,omitempty"`
}

// Stats is the per-solver aggregate view behind GET /v1/archive/stats.
type Stats struct {
	Records   int                     `json:"records"`
	Instances int                     `json:"instances"`
	Solvers   map[string]*SolverStats `json:"solvers"`
}

// Stats aggregates the matching records per solver.
func (s *Store) Stats(f Filter) Stats {
	f.Limit = 0
	recs := s.List(f)
	st := Stats{Records: len(recs), Solvers: map[string]*SolverStats{}}
	hashes := map[string]bool{}
	runtimes := map[string][]float64{}
	for _, r := range recs {
		hashes[r.Hash] = true
		ss := st.Solvers[r.Solver]
		if ss == nil {
			ss = &SolverStats{}
			st.Solvers[r.Solver] = ss
		}
		ss.Count++
		switch r.Outcome {
		case OutcomeOK:
			ss.OK++
		case OutcomeCancelled:
			ss.Cancelled++
		default:
			ss.Errors++
		}
		if r.Outcome == OutcomeOK && r.Feasible {
			ss.MeanFinalObjective += r.FinalObjective
		}
		runtimes[r.Solver] = append(runtimes[r.Solver], r.RuntimeSeconds)
	}
	st.Instances = len(hashes)
	for solver, ss := range st.Solvers {
		if ss.OK > 0 {
			n := 0
			for _, r := range recs {
				if r.Solver == solver && r.Outcome == OutcomeOK && r.Feasible {
					n++
				}
			}
			if n > 0 {
				ss.MeanFinalObjective /= float64(n)
			} else {
				ss.MeanFinalObjective = 0
			}
		}
		rt := runtimes[solver]
		sort.Float64s(rt)
		ss.P50RuntimeSeconds = quantile(rt, 0.50)
		ss.P95RuntimeSeconds = quantile(rt, 0.95)
	}
	for solver, n := range winCounts(recs) {
		if ss := st.Solvers[solver]; ss != nil {
			ss.Wins = n
		}
	}
	return st
}

// quantile reads the q-quantile of sorted (nearest-rank); 0 when empty.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// winCounts groups ok+feasible records by instance hash and, on each
// instance solved by ≥2 distinct solvers, credits the solver with the
// lowest best objective (ties to the lexically smaller solver name, for
// determinism).
func winCounts(recs []Summary) map[string]int {
	type best struct{ obj float64 }
	byHash := map[string]map[string]best{}
	for _, r := range recs {
		if r.Outcome != OutcomeOK || !r.Feasible {
			continue
		}
		m := byHash[r.Hash]
		if m == nil {
			m = map[string]best{}
			byHash[r.Hash] = m
		}
		if b, ok := m[r.Solver]; !ok || r.FinalObjective < b.obj {
			m[r.Solver] = best{obj: r.FinalObjective}
		}
	}
	wins := map[string]int{}
	for _, m := range byHash {
		if len(m) < 2 {
			continue
		}
		winner := ""
		winObj := 0.0
		solvers := make([]string, 0, len(m))
		for sv := range m {
			solvers = append(solvers, sv)
		}
		sort.Strings(solvers)
		for _, sv := range solvers {
			if winner == "" || m[sv].obj < winObj {
				winner, winObj = sv, m[sv].obj
			}
		}
		wins[winner]++
	}
	return wins
}

// StoreStats is the operational accounting behind the archive gauges.
type StoreStats struct {
	Records   int    `json:"records"` // indexed records (memory-resident summaries)
	Pending   int    `json:"pending"` // accepted, not yet durable
	Appends   int64  `json:"appends"`
	Dropped   int64  `json:"dropped"`
	Written   int64  `json:"written"`
	DiskBytes int64  `json:"diskBytes"`
	Segments  int64  `json:"segments"`
	Err       string `json:"err,omitempty"` // first writer error, sticky
}

// StoreStats snapshots the operational counters.
func (s *Store) StoreStats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	records, pending := len(s.index), len(s.pending)
	s.mu.Unlock()
	st := StoreStats{
		Records:   records,
		Pending:   pending,
		Appends:   s.appends.Load(),
		Dropped:   s.drops.Load(),
		Written:   s.written.Load(),
		DiskBytes: s.diskBytes.Load(),
		Segments:  s.segments.Load(),
	}
	if msg := s.werr.Load(); msg != nil {
		st.Err = *msg
	}
	return st
}

// Close stops accepting records, drains the writer queue (every accepted
// record is durable on return) and reports the first writer error, if
// any. Safe to call more than once.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	s.mu.Unlock()
	if s.ch != nil {
		if first {
			close(s.ch)
		}
		<-s.done
	}
	if msg := s.werr.Load(); msg != nil {
		return fmt.Errorf("archive: %s", *msg)
	}
	return nil
}
