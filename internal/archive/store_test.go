package archive

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"nocdeploy/internal/obs"
)

// testClock is a deterministic clock advancing one second per call.
func testClock() obs.Clock {
	tick := int64(0)
	return obs.Clock(func() time.Time {
		tick++
		return time.Unix(1_700_000_000+tick, 0)
	})
}

// at builds the deterministic record timestamp for index i.
func at(i int) time.Time { return time.Unix(1_700_000_000+int64(i), 0) }

// rec builds a minimal ok+feasible record.
func rec(hash, solver string, obj float64, t time.Time) *Record {
	return &Record{Summary: Summary{
		Hash:           hash,
		Tasks:          8,
		MeshW:          2,
		MeshH:          2,
		Solver:         solver,
		Objective:      "be",
		Outcome:        OutcomeOK,
		Feasible:       true,
		FinalObjective: obj,
		RuntimeSeconds: obj / 10,
		Time:           t,
	}}
}

func openTest(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	o.Dir = dir
	if o.Clock == nil {
		o.Clock = testClock()
	}
	s, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendListGetStats(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	s.Append(rec("hashA", "repair", 10, at(1)))
	s.Append(rec("hashA", "anneal", 9, at(2)))
	s.Append(rec("hashB", "repair", 20, at(3)))
	bad := rec("hashB", "anneal", 0, at(4))
	bad.Outcome = OutcomeError
	bad.Feasible = false
	bad.Error = "solver exploded"
	s.Append(bad)

	all := s.List(Filter{})
	if len(all) != 4 {
		t.Fatalf("List: %d records, want 4", len(all))
	}
	if all[0].ID != "a4" || all[3].ID != "a1" {
		t.Fatalf("List not newest-first: %s ... %s", all[0].ID, all[3].ID)
	}
	if got := s.List(Filter{Solver: "anneal"}); len(got) != 2 {
		t.Fatalf("solver filter: %d, want 2", len(got))
	}
	if got := s.List(Filter{Instance: "hashA"}); len(got) != 2 {
		t.Fatalf("instance filter: %d, want 2", len(got))
	}
	if got := s.List(Filter{Outcome: OutcomeError}); len(got) != 1 || got[0].ID != "a4" {
		t.Fatalf("outcome filter: %+v", got)
	}
	if got := s.List(Filter{Limit: 1}); len(got) != 1 || got[0].ID != "a4" {
		t.Fatalf("limit: %+v", got)
	}
	if got := s.List(Filter{Since: at(3)}); len(got) != 2 {
		t.Fatalf("since filter: %d, want 2", len(got))
	}
	if got := s.List(Filter{Until: at(3)}); len(got) != 2 {
		t.Fatalf("until filter: %d, want 2", len(got))
	}

	got, ok := s.Get("a4")
	if !ok {
		t.Fatal("Get a4 failed")
	}
	if got.Error != "solver exploded" || got.Outcome != OutcomeError {
		t.Fatalf("Get round-trip: %+v", got)
	}
	if _, ok := s.Get("a99"); ok {
		t.Fatal("Get of an unknown ID succeeded")
	}

	st := s.Stats(Filter{})
	if st.Records != 4 || st.Instances != 2 {
		t.Fatalf("Stats: records=%d instances=%d", st.Records, st.Instances)
	}
	// hashA was solved by both solvers; anneal's 9 beats repair's 10.
	if st.Solvers["anneal"].Wins != 1 || st.Solvers["repair"].Wins != 0 {
		t.Fatalf("wins: anneal=%d repair=%d", st.Solvers["anneal"].Wins, st.Solvers["repair"].Wins)
	}
	if st.Solvers["repair"].Count != 2 || st.Solvers["repair"].OK != 2 {
		t.Fatalf("repair stats: %+v", st.Solvers["repair"])
	}
	if st.Solvers["anneal"].Errors != 1 {
		t.Fatalf("anneal errors: %+v", st.Solvers["anneal"])
	}
	if m := st.Solvers["repair"].MeanFinalObjective; m != 15 {
		t.Fatalf("repair mean objective = %v, want 15", m)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{MaxSegmentBytes: 512})
	const n = 40
	for i := 1; i <= n; i++ {
		s.Append(rec("hash", "repair", float64(i), at(i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{MaxSegmentBytes: 512})
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	st := s2.StoreStats()
	if st.Records != n {
		t.Fatalf("recovered %d records, want %d", st.Records, n)
	}
	if st.Segments < 2 {
		t.Fatalf("want rotation to have sealed segments, got %d", st.Segments)
	}
	// Sealed and active records both resolve to full records.
	for _, id := range []string{"a1", "a20", "a40"} {
		got, ok := s2.Get(id)
		if !ok {
			t.Fatalf("Get %s after restart failed", id)
		}
		if got.ID != id {
			t.Fatalf("Get %s returned %s", id, got.ID)
		}
	}
	// New appends continue the ID sequence instead of colliding.
	s2.Append(rec("hash", "repair", 1, at(n+1)))
	if _, ok := s2.Get("a41"); !ok {
		t.Fatal("post-restart append did not continue the ID sequence")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	s.Append(rec("hash", "repair", 1, at(1)))
	s.Append(rec("hash", "repair", 2, at(2)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crashed writer: a torn half-record at the active tail.
	active := filepath.Join(dir, activeFile)
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"a3","time":"2023-`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tornSize := fileSize(t, active)

	s2 := openTest(t, dir, Options{})
	if got := s2.StoreStats().Records; got != 2 {
		t.Fatalf("recovered %d records, want 2 (torn line dropped)", got)
	}
	if now := fileSize(t, active); now >= tornSize {
		t.Fatalf("active not truncated: %d >= %d", now, tornSize)
	}
	// The truncated file accepts appends cleanly.
	s2.Append(rec("hash", "repair", 3, at(3)))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openTest(t, dir, Options{})
	if got := s3.StoreStats().Records; got != 3 {
		t.Fatalf("after torn-tail truncation + append: %d records, want 3", got)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRetentionBoundsDisk is the acceptance bound: 1000+ recorded solves
// against a small byte budget keep the directory (and the index) bounded,
// with the oldest records dropped.
func TestRetentionBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	const maxBytes = 16 << 10
	const n = 1200
	// Queue sized to the burst: this test measures retention, not
	// backpressure (TestAppendNeverBlocks covers drops).
	s := openTest(t, dir, Options{MaxSegmentBytes: 2 << 10, MaxBytes: maxBytes, QueueDepth: n})
	for i := 1; i <= n; i++ {
		s.Append(rec("hash", "repair", float64(i), at(i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.StoreStats(); st.Dropped != 0 {
		t.Fatalf("%d drops with a burst-sized queue", st.Dropped)
	}
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		total += fileSize(t, filepath.Join(dir, e.Name()))
	}
	if total > maxBytes {
		t.Fatalf("on-disk size %d exceeds the %d budget", total, maxBytes)
	}
	s2 := openTest(t, dir, Options{MaxSegmentBytes: 2 << 10, MaxBytes: maxBytes, QueueDepth: n})
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	st := s2.StoreStats()
	if st.Records >= n || st.Records == 0 {
		t.Fatalf("index records = %d, want 0 < records < %d (oldest dropped)", st.Records, n)
	}
	if _, ok := s2.Get("a1"); ok {
		t.Fatal("oldest record survived a full retention sweep")
	}
	if _, ok := s2.Get("a" + strconv.Itoa(n)); !ok {
		t.Fatal("newest record did not survive retention")
	}
}

func TestMaxAgeExpiry(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{MaxSegmentBytes: 1 << 10, MaxAge: 50 * time.Second})
	// The fake clock starts near tick 0; records at(1..10) are far older
	// than 50s by the time retention runs against later ticks — except
	// retention's cutoff comes from the same clock, so drive the spread
	// explicitly: old records first, then fresh ones at much later ticks.
	for i := 1; i <= 20; i++ {
		s.Append(rec("old", "repair", float64(i), at(i)))
	}
	for i := 1; i <= 20; i++ {
		s.Append(rec("new", "repair", float64(i), at(10_000+i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{MaxSegmentBytes: 1 << 10, MaxAge: 50 * time.Second})
	defer func() {
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := s2.List(Filter{Instance: "old"}); len(got) != 0 {
		t.Fatalf("%d expired records survived", len(got))
	}
	if got := s2.List(Filter{Instance: "new"}); len(got) == 0 {
		t.Fatal("fresh records did not survive age retention")
	}
}

// TestAppendNeverBlocks pins the write-only contract's latency half: a
// fully stalled writer (gated) and a full queue cost Append nothing but a
// drop counter — mirroring the BroadcastSink backpressure proof.
func TestAppendNeverBlocks(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{QueueDepth: 4})
	gate := make(chan struct{})
	s.gate = gate // writer blocks per record until the gate feeds it

	const n = 100
	start := time.Now()
	for i := 1; i <= n; i++ {
		s.Append(rec("hash", "repair", float64(i), at(i)))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("appends against a stalled writer took %v", elapsed)
	}
	st := s.StoreStats()
	if st.Dropped == 0 {
		t.Fatal("full queue recorded no drops")
	}
	if st.Appends+st.Dropped != n {
		t.Fatalf("appends %d + drops %d != %d", st.Appends, st.Dropped, n)
	}
	// Index only holds what will become durable.
	if int64(st.Records) != st.Appends {
		t.Fatalf("index records %d != accepted appends %d", st.Records, st.Appends)
	}
	close(gate) // un-stall the writer; Close drains the queue
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.StoreStats(); st.Written != st.Appends {
		t.Fatalf("written %d != accepted %d after Close", st.Written, st.Appends)
	}
}

// TestDeterministicSegments: with a fake clock and fixed content, the
// archived bytes are a pure function of the appended records.
func TestDeterministicSegments(t *testing.T) {
	write := func(dir string) {
		s := openTest(t, dir, Options{MaxSegmentBytes: 1 << 10})
		for i := 1; i <= 30; i++ {
			r := rec("hash", "repair", float64(i), at(i))
			r.Stages = map[string]float64{"solve": float64(i) / 100, "queue": 0.001}
			r.Trajectory = []TrajPoint{{T: 0.1, Obj: float64(i)}}
			s.Append(r)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	write(dirA)
	write(dirB)
	entsA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(entsA) < 2 {
		t.Fatalf("want multiple segment files, got %d", len(entsA))
	}
	for _, e := range entsA {
		a, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Fatalf("segment %s missing in the twin store: %v", e.Name(), err)
		}
		if string(a) != string(b) {
			t.Fatalf("segment %s differs between identical stores", e.Name())
		}
	}
}

func TestMemoryMode(t *testing.T) {
	s, err := Open(Options{MemoryRecords: 8, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		s.Append(rec("hash", "repair", float64(i), at(i)))
	}
	st := s.StoreStats()
	if st.Records != 8 {
		t.Fatalf("memory mode retained %d records, want 8", st.Records)
	}
	if _, ok := s.Get("a1"); ok {
		t.Fatal("oldest memory record survived eviction")
	}
	if _, ok := s.Get("a20"); !ok {
		t.Fatal("newest memory record missing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Append after Close is a silent no-op, not a panic.
	s.Append(rec("hash", "repair", 1, at(99)))
}
