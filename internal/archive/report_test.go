package archive

import (
	"strings"
	"testing"
	"time"
)

func sum(hash, solver string, obj float64, t time.Time) Summary {
	return Summary{
		Hash:           hash,
		Solver:         solver,
		Outcome:        OutcomeOK,
		Feasible:       true,
		FinalObjective: obj,
		RuntimeSeconds: 0.1,
		Time:           t,
	}
}

func TestBuildReportSolverMode(t *testing.T) {
	recs := []Summary{
		sum("instance-one", "repair", 10, at(1)),
		sum("instance-one", "anneal", 8, at(2)),
		sum("instance-two", "repair", 5, at(3)),
		sum("instance-two", "anneal", 6, at(4)),
		sum("instance-two", "anneal", 5.5, at(5)), // best-of folds repeats
		sum("only-repair", "repair", 1, at(6)),    // not shared: excluded
		sum("heuristic-noise", "heuristic", 1, at(7)),
	}
	md, err := BuildReport(recs, ReportOptions{SolverA: "repair", SolverB: "anneal"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Solve archive report",
		"cohort A: solver repair",
		"cohort B: solver anneal",
		"shared instances: 2",
		"| instance-one | 10 | 8 |",
		"| instance-two | 5 | 5.5 |",
		"wins: A 1, B 1, ties 0",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q:\n%s", want, md)
		}
	}
}

func TestBuildReportWindowMode(t *testing.T) {
	split := at(10)
	recs := []Summary{
		sum("h1", "repair", 10, at(1)), // before: cohort A
		sum("h1", "repair", 8, at(20)), // after: cohort B, improved
		sum("h2", "repair", 4, at(2)),
		sum("h2", "repair", 4, at(21)),
	}
	md, err := BuildReport(recs, ReportOptions{Split: split})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "wins: A 0, B 1, ties 1") {
		t.Fatalf("window report wins wrong:\n%s", md)
	}
	if !strings.Contains(md, "B wins the head-to-head") {
		t.Fatalf("verdict missing:\n%s", md)
	}
}

func TestBuildReportRowTruncation(t *testing.T) {
	var recs []Summary
	for i := 0; i < 30; i++ {
		h := "hash-" + string(rune('a'+i))
		recs = append(recs, sum(h, "repair", 10, at(i)), sum(h, "anneal", 9, at(i)))
	}
	md, err := BuildReport(recs, ReportOptions{SolverA: "repair", SolverB: "anneal", MaxRows: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "… and 25 more shared instances.") {
		t.Fatalf("truncation note missing:\n%s", md)
	}
	if got := strings.Count(md, "\n| hash-"); got != 5 {
		t.Fatalf("%d table rows, want 5", got)
	}
}

func TestBuildReportErrors(t *testing.T) {
	if _, err := BuildReport(nil, ReportOptions{}); err == nil {
		t.Fatal("no mode selected: want an error")
	}
	if _, err := BuildReport(nil, ReportOptions{SolverA: "repair"}); err == nil {
		t.Fatal("one solver only: want an error")
	}
	// No shared instances is a report, not an error.
	md, err := BuildReport([]Summary{sum("h1", "repair", 1, at(1))},
		ReportOptions{SolverA: "repair", SolverB: "anneal"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "No shared instances") {
		t.Fatalf("empty report body:\n%s", md)
	}
}
