package archive

import "sort"

// Signature is the instance identity the advisor matches on: the exact
// canonical hash, and the shape features (task count, mesh) that define
// an instance family when the exact hash has no history.
type Signature struct {
	Hash  string `json:"hash,omitempty"`
	Tasks int    `json:"tasks"`
	MeshW int    `json:"meshW"`
	MeshH int    `json:"meshH"`
}

// DefaultSolver is the advisor's no-history fallback: the repaired
// heuristic is cheap and reliably feasible across the paper's workload.
const DefaultSolver = "repair"

// Advise recommends a solver (and engine options, when the winning
// history is a portfolio configuration) for an instance. The policy
// escalates through three evidence tiers, recording which one decided in
// Decision.Basis:
//
//   - "instance": the exact hash has ok+feasible history — pick the
//     solver with the lowest mean final objective on this instance.
//   - "family": no exact history, but instances with the same mesh and a
//     task count within a factor of two exist — pick the solver with the
//     most per-instance wins inside the family.
//   - "global": no family either — most wins across the whole archive.
//   - "default": no usable history at all — DefaultSolver.
//
// All tie-breaks are lexicographic on the solver name, so the decision
// is a pure function of the archived summaries. Nil-safe: a nil Store
// returns the default decision.
func (s *Store) Advise(sig Signature) Decision {
	if s == nil {
		return Decision{Solver: DefaultSolver, Basis: "default"}
	}
	recs := s.List(Filter{Outcome: OutcomeOK})
	ok := recs[:0]
	for _, r := range recs {
		if r.Feasible {
			ok = append(ok, r)
		}
	}

	if sig.Hash != "" {
		exact := filterRecs(ok, func(r Summary) bool { return r.Hash == sig.Hash })
		if len(exact) > 0 {
			return decideByMeanObjective(exact, "instance")
		}
	}

	family := filterRecs(ok, func(r Summary) bool {
		if r.MeshW != sig.MeshW || r.MeshH != sig.MeshH {
			return false
		}
		return r.Tasks >= (sig.Tasks+1)/2 && r.Tasks <= sig.Tasks*2
	})
	if d, found := decideByWins(family, "family"); found {
		return d
	}
	if d, found := decideByWins(ok, "global"); found {
		return d
	}
	return Decision{Solver: DefaultSolver, Basis: "default"}
}

func filterRecs(recs []Summary, keep func(Summary) bool) []Summary {
	var out []Summary
	for _, r := range recs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// decideByMeanObjective picks the solver with the lowest mean final
// objective over recs, copying engine options from its best record.
func decideByMeanObjective(recs []Summary, basis string) Decision {
	sum := map[string]float64{}
	count := map[string]int{}
	for _, r := range recs {
		sum[r.Solver] += r.FinalObjective
		count[r.Solver]++
	}
	solvers := make([]string, 0, len(count))
	for sv := range count {
		solvers = append(solvers, sv)
	}
	sort.Strings(solvers)
	winner := ""
	winMean := 0.0
	for _, sv := range solvers {
		m := sum[sv] / float64(count[sv])
		if winner == "" || m < winMean {
			winner, winMean = sv, m
		}
	}
	d := Decision{Solver: winner, Basis: basis, Candidates: len(recs)}
	d.copyEngineOptions(recs)
	return d
}

// decideByWins picks the solver with the most per-instance wins over
// recs; found is false when no instance was solved by ≥2 solvers (win
// counts need competition to mean anything).
func decideByWins(recs []Summary, basis string) (Decision, bool) {
	wins := winCounts(recs)
	if len(wins) == 0 {
		return Decision{}, false
	}
	solvers := make([]string, 0, len(wins))
	for sv := range wins {
		solvers = append(solvers, sv)
	}
	sort.Strings(solvers)
	winner := solvers[0]
	for _, sv := range solvers[1:] {
		if wins[sv] > wins[winner] {
			winner = sv
		}
	}
	d := Decision{Solver: winner, Basis: basis, Candidates: len(recs)}
	d.copyEngineOptions(recs)
	return d, true
}

// copyEngineOptions fills the decision's engine options from the
// best-objective record of the chosen solver — only meaningful for
// portfolio picks, where the options select the search trajectory.
func (d *Decision) copyEngineOptions(recs []Summary) {
	if d.Solver != "portfolio" {
		return
	}
	var best *Summary
	for i := range recs {
		r := &recs[i]
		if r.Solver != d.Solver {
			continue
		}
		if best == nil || r.FinalObjective < best.FinalObjective {
			best = r
		}
	}
	if best != nil {
		d.EngineOps = append([]string(nil), best.EngineOps...)
		d.EngineRounds = best.EngineRounds
		d.EngineBudget = best.EngineBudget
	}
}
