package archive

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nocdeploy/internal/numeric"
)

// ReportOptions selects the two cohorts a regression report compares.
// Exactly one of the two modes applies:
//
//   - solver mode (SolverA/SolverB set): cohort A is SolverA's records,
//     cohort B is SolverB's — "did the portfolio beat repair where both
//     ran?".
//   - window mode (Split set): cohort A is records before Split, cohort B
//     records at/after it — "did this week regress against last week?".
type ReportOptions struct {
	SolverA, SolverB string
	Split            time.Time
	MaxRows          int // per-instance table rows; 0 means 20
}

// BuildReport renders a markdown regression report comparing two record
// cohorts on their shared instances (by canonical hash). Only ok+feasible
// records participate; each cohort's score on an instance is its best
// (lowest) final objective there. Output is deterministic: instances sort
// by hash, aggregates fold in sorted order.
func BuildReport(recs []Summary, o ReportOptions) (string, error) {
	solverMode := o.SolverA != "" || o.SolverB != ""
	if solverMode && (o.SolverA == "" || o.SolverB == "") {
		return "", fmt.Errorf("archive: report needs both solvers (got %q, %q)", o.SolverA, o.SolverB)
	}
	if !solverMode && o.Split.IsZero() {
		return "", fmt.Errorf("archive: report needs two solvers or a window split time")
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 20
	}
	var inA func(Summary) bool
	var labelA, labelB string
	if solverMode {
		inA = func(r Summary) bool { return r.Solver == o.SolverA }
		labelA, labelB = "solver "+o.SolverA, "solver "+o.SolverB
	} else {
		inA = func(r Summary) bool { return r.Time.Before(o.Split) }
		labelA = "before " + o.Split.UTC().Format(time.RFC3339)
		labelB = "since " + o.Split.UTC().Format(time.RFC3339)
	}

	type cohortBest struct {
		obj      float64
		runtimes []float64
		n        int
	}
	bestA, bestB := map[string]*cohortBest{}, map[string]*cohortBest{}
	nA, nB := 0, 0
	for _, r := range recs {
		if r.Outcome != OutcomeOK || !r.Feasible {
			continue
		}
		var m map[string]*cohortBest
		switch {
		case inA(r):
			m = bestA
			nA++
		case !solverMode || r.Solver == o.SolverB:
			m = bestB
			nB++
		default:
			continue // solver mode: neither cohort
		}
		cb := m[r.Hash]
		if cb == nil {
			cb = &cohortBest{obj: r.FinalObjective}
			m[r.Hash] = cb
		} else if r.FinalObjective < cb.obj {
			cb.obj = r.FinalObjective
		}
		cb.n++
		cb.runtimes = append(cb.runtimes, r.RuntimeSeconds)
	}

	var shared []string
	for h := range bestA {
		if bestB[h] != nil {
			shared = append(shared, h)
		}
	}
	sort.Strings(shared)

	var b strings.Builder
	fmt.Fprintf(&b, "# Solve archive report\n\n")
	fmt.Fprintf(&b, "- cohort A: %s (%d records)\n", labelA, nA)
	fmt.Fprintf(&b, "- cohort B: %s (%d records)\n", labelB, nB)
	fmt.Fprintf(&b, "- shared instances: %d\n\n", len(shared))
	if len(shared) == 0 {
		fmt.Fprintf(&b, "No shared instances — nothing to compare.\n")
		return b.String(), nil
	}

	fmt.Fprintf(&b, "## Per-instance best objective\n\n")
	fmt.Fprintf(&b, "| instance | E(A) | E(B) | delta | winner |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	winsA, winsB, ties := 0, 0, 0
	deltaSum := 0.0
	var rtA, rtB []float64
	for i, h := range shared {
		a, bb := bestA[h], bestB[h]
		rtA = append(rtA, a.runtimes...)
		rtB = append(rtB, bb.runtimes...)
		winner := "tie"
		switch {
		case bb.obj < a.obj:
			winner = "B"
			winsB++
		case a.obj < bb.obj:
			winner = "A"
			winsA++
		default:
			ties++
		}
		delta := 0.0
		if !numeric.IsZero(a.obj) {
			delta = (bb.obj - a.obj) / a.obj
		}
		deltaSum += delta
		if i < o.MaxRows {
			fmt.Fprintf(&b, "| %s | %.6g | %.6g | %+.2f%% | %s |\n", shortHash(h), a.obj, bb.obj, 100*delta, winner)
		}
	}
	if len(shared) > o.MaxRows {
		fmt.Fprintf(&b, "\n… and %d more shared instances.\n", len(shared)-o.MaxRows)
	}
	sort.Float64s(rtA)
	sort.Float64s(rtB)
	fmt.Fprintf(&b, "\n## Summary\n\n")
	fmt.Fprintf(&b, "- wins: A %d, B %d, ties %d\n", winsA, winsB, ties)
	fmt.Fprintf(&b, "- mean objective delta (B vs A): %+.2f%%\n", 100*deltaSum/float64(len(shared)))
	fmt.Fprintf(&b, "- p50 runtime: A %.4gs, B %.4gs\n", quantile(rtA, 0.5), quantile(rtB, 0.5))
	verdict := "B and A are tied on shared instances."
	switch {
	case winsB > winsA:
		verdict = "B wins the head-to-head on shared instances."
	case winsA > winsB:
		verdict = "A wins the head-to-head on shared instances."
	}
	fmt.Fprintf(&b, "- %s\n", verdict)
	return b.String(), nil
}

// shortHash abbreviates a canonical hash for table rows.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12] + "…"
	}
	return h
}
