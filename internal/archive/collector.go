package archive

import (
	"sync"

	"nocdeploy/internal/obs"
)

// Collector is an obs.Sink that folds the live request-tagged event
// stream into the per-solve data a Record archives: the incumbent
// trajectory (bb.incumbent / engine.iter events) and per-operator engine
// stats (engine.op.apply). The service registers one Collector among its
// trace sinks when archiving is on, and calls Take when a solve finishes.
//
// Memory is bounded regardless of traffic: at most maxRequests requests
// are tracked at once (oldest evicted first — an evicted request archives
// with an empty trajectory, never an error), and each trajectory holds at
// most maxPoints points, decimated by stride-doubling when it would
// overflow — long solves keep their shape, not every sample.
type Collector struct {
	mu          sync.Mutex
	maxRequests int
	maxPoints   int
	reqs        map[string]*foldState
	order       []string // insertion order, for eviction
}

type foldState struct {
	traj   []TrajPoint
	stride int // append every stride-th candidate point
	seen   int // candidate points offered so far
	ops    map[string]*OpStat
}

// NewCollector builds a Collector tracking at most maxRequests live
// requests (≤0 means 1024) with at most maxPoints trajectory points each
// (≤0 means 512).
func NewCollector(maxRequests, maxPoints int) *Collector {
	if maxRequests <= 0 {
		maxRequests = 1024
	}
	if maxPoints <= 0 {
		maxPoints = 512
	}
	return &Collector{
		maxRequests: maxRequests,
		maxPoints:   maxPoints,
		reqs:        map[string]*foldState{},
	}
}

// Write folds one event. Events without a request ID, and kinds the
// archive does not fold, are ignored. Runs under the Trace mutex like
// every sink, so no internal ordering races with Take (which locks).
func (c *Collector) Write(e obs.Event) {
	if e.Req == "" {
		return
	}
	switch e.Kind {
	case obs.BBIncumbent, obs.EngineIter:
		c.mu.Lock()
		c.state(e.Req).addPoint(TrajPoint{T: e.T, Obj: e.Obj}, c.maxPoints)
		c.mu.Unlock()
	case obs.EngineOpApply:
		c.mu.Lock()
		st := c.state(e.Req)
		if st.ops == nil {
			st.ops = map[string]*OpStat{}
		}
		op := st.ops[e.Label]
		if op == nil {
			op = &OpStat{}
			st.ops[e.Label] = op
		}
		op.Applies++
		op.Seconds += e.Dur
		if e.Phase == "improved" {
			op.Improvements++
		}
		c.mu.Unlock()
	}
}

// state returns (creating if needed) the fold for one request, evicting
// the oldest tracked request when the table is full. Caller holds mu.
func (c *Collector) state(req string) *foldState {
	st := c.reqs[req]
	if st != nil {
		return st
	}
	if len(c.order) >= c.maxRequests {
		delete(c.reqs, c.order[0])
		c.order = c.order[1:]
	}
	st = &foldState{stride: 1}
	c.reqs[req] = st
	c.order = append(c.order, req)
	return st
}

// addPoint appends a trajectory point under the decimation contract:
// when the trajectory would exceed maxPoints, every other retained point
// is discarded and the sampling stride doubles.
func (f *foldState) addPoint(p TrajPoint, maxPoints int) {
	f.seen++
	if (f.seen-1)%f.stride != 0 {
		return
	}
	if len(f.traj) >= maxPoints {
		kept := f.traj[:0]
		for i := 0; i < len(f.traj); i += 2 {
			kept = append(kept, f.traj[i])
		}
		f.traj = kept
		f.stride *= 2
	}
	f.traj = append(f.traj, p)
}

// Take removes and returns the folded trajectory and operator stats for
// one finished request; nil-safe, and an untracked request returns empty
// results. The Collector forgets the request, so tracked state never
// outlives its solve.
func (c *Collector) Take(req string) ([]TrajPoint, map[string]OpStat) {
	if c == nil || req == "" {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.reqs[req]
	if st == nil {
		return nil, nil
	}
	delete(c.reqs, req)
	for i, id := range c.order {
		if id == req {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	var ops map[string]OpStat
	if len(st.ops) > 0 {
		ops = make(map[string]OpStat, len(st.ops))
		for name, op := range st.ops {
			ops[name] = *op
		}
	}
	return st.traj, ops
}

// Close implements obs.Sink; nothing to flush.
func (c *Collector) Close() error { return nil }
