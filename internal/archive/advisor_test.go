package archive

import "testing"

// memStore builds a memory-mode store preloaded with summaries.
func memStore(t *testing.T, recs ...*Record) *Store {
	t.Helper()
	s, err := Open(Options{Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	for _, r := range recs {
		s.Append(r)
	}
	return s
}

func TestAdviseInstanceTier(t *testing.T) {
	s := memStore(t,
		rec("h1", "repair", 10, at(1)),
		rec("h1", "anneal", 8, at(2)),
		rec("h1", "anneal", 9, at(3)),
		rec("h2", "repair", 1, at(4)), // other instance: must not matter
	)
	d := s.Advise(Signature{Hash: "h1", Tasks: 8, MeshW: 2, MeshH: 2})
	if d.Solver != "anneal" || d.Basis != "instance" {
		t.Fatalf("decision = %+v, want anneal via instance tier", d)
	}
	if d.Candidates != 3 {
		t.Fatalf("candidates = %d, want 3", d.Candidates)
	}
}

func TestAdviseFamilyTier(t *testing.T) {
	// No history for the target hash; family = same mesh, task count
	// within 2x. Two instances where anneal beats repair head-to-head.
	s := memStore(t,
		rec("h1", "repair", 10, at(1)),
		rec("h1", "anneal", 8, at(2)),
		rec("h2", "repair", 12, at(3)),
		rec("h2", "anneal", 11, at(4)),
	)
	d := s.Advise(Signature{Hash: "h-unseen", Tasks: 10, MeshW: 2, MeshH: 2})
	if d.Solver != "anneal" || d.Basis != "family" {
		t.Fatalf("decision = %+v, want anneal via family tier", d)
	}

	// A different mesh breaks the family: falls through to global (same
	// records, so same winner, different basis).
	d = s.Advise(Signature{Hash: "h-unseen", Tasks: 10, MeshW: 4, MeshH: 4})
	if d.Solver != "anneal" || d.Basis != "global" {
		t.Fatalf("decision = %+v, want anneal via global tier", d)
	}
}

func TestAdviseDefaultTier(t *testing.T) {
	// Single-solver history has no head-to-head wins: win-based tiers
	// refuse to decide and the default solver comes back.
	s := memStore(t, rec("h1", "anneal", 8, at(1)))
	d := s.Advise(Signature{Hash: "h-unseen", Tasks: 8, MeshW: 2, MeshH: 2})
	if d.Solver != DefaultSolver || d.Basis != "default" {
		t.Fatalf("decision = %+v, want the default solver", d)
	}

	// Nil store: same degradation, so solver=auto works with the archive
	// disabled.
	var nilStore *Store
	d = nilStore.Advise(Signature{Tasks: 8})
	if d.Solver != DefaultSolver || d.Basis != "default" {
		t.Fatalf("nil-store decision = %+v", d)
	}
}

func TestAdvisePortfolioCarriesEngineOptions(t *testing.T) {
	p1 := rec("h1", "portfolio", 7, at(1))
	p1.EngineOps = []string{"ruin", "exact"}
	p1.EngineRounds = 3
	p1.EngineBudget = 16
	p2 := rec("h1", "portfolio", 9, at(2)) // worse: its options must lose
	p2.EngineOps = []string{"anneal"}
	s := memStore(t, p1, rec("h1", "repair", 10, at(3)), p2)
	d := s.Advise(Signature{Hash: "h1", Tasks: 8, MeshW: 2, MeshH: 2})
	if d.Solver != "portfolio" {
		t.Fatalf("decision = %+v", d)
	}
	if len(d.EngineOps) != 2 || d.EngineOps[0] != "ruin" || d.EngineRounds != 3 || d.EngineBudget != 16 {
		t.Fatalf("engine options not copied from the best record: %+v", d)
	}
}

func TestAdviseIgnoresInfeasibleAndFailed(t *testing.T) {
	bad := rec("h1", "anneal", 1, at(1))
	bad.Outcome = OutcomeError
	bad.Feasible = false
	infeasible := rec("h1", "heuristic", 0.5, at(2))
	infeasible.Feasible = false
	s := memStore(t, bad, infeasible, rec("h1", "repair", 10, at(3)))
	d := s.Advise(Signature{Hash: "h1", Tasks: 8, MeshW: 2, MeshH: 2})
	if d.Solver != "repair" || d.Basis != "instance" {
		t.Fatalf("decision = %+v: failed/infeasible records leaked into advice", d)
	}
}

func TestAdviseDeterministicTieBreak(t *testing.T) {
	// Identical objectives: the lexically smaller solver must win, every
	// time, regardless of append order.
	for range 5 {
		s := memStore(t,
			rec("h1", "zeta", 10, at(1)),
			rec("h1", "alpha", 10, at(2)),
		)
		d := s.Advise(Signature{Hash: "h1", Tasks: 8, MeshW: 2, MeshH: 2})
		if d.Solver != "alpha" {
			t.Fatalf("tie broke to %q, want alpha", d.Solver)
		}
	}
}
