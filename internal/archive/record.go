// Package archive is the embedded persistent solve archive: an
// append-only store of solve records behind the deployment service
// (internal/service), queryable by instance hash, solver, outcome and
// time, and the substrate of history-driven solver advice.
//
// The design splits cleanly into:
//
//   - Record / Summary (this file): what one archived solve looks like.
//     Records carry the full story — instance signature, options,
//     outcome, energy/makespan breakdown, per-stage latencies, the
//     incumbent trajectory and per-operator engine stats. Summaries are
//     the compact projection held in memory for every record on disk.
//   - Store (store.go): segmented JSONL persistence with an in-memory
//     index, crash-safe rotation, size/age retention with compaction,
//     and a bounded async writer that can never block a solve.
//   - Collector (collector.go): an obs.Sink folding the live event
//     stream into per-request trajectories and operator stats.
//   - Advisor (advisor.go): solver recommendation from instance-family
//     history, the engine behind solver=auto.
//   - Reports (report.go): markdown regression reports over two record
//     cohorts (two solvers, or two time windows).
package archive

import "time"

// Summary is the compact per-record projection the Store keeps in memory
// for every record on disk — small enough that the index stays bounded by
// the retention policy, complete enough to answer GET /v1/archive queries
// and advisor lookups without touching a segment.
type Summary struct {
	ID   string    `json:"id"`
	Time time.Time `json:"time"`

	// Instance signature: the canonical content hash plus the shape
	// features the advisor matches families on.
	Hash    string  `json:"instance"`
	Tasks   int     `json:"tasks"`
	Edges   int     `json:"edges"`
	MeshW   int     `json:"meshW"`
	MeshH   int     `json:"meshH"`
	Horizon float64 `json:"horizon,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`

	Solver    string `json:"solver"`
	Objective string `json:"objective"` // "be" or "me"

	// Portfolio engine options (solver=portfolio records only). Kept in
	// the summary so the advisor can recommend the full winning
	// configuration, not just a solver name.
	EngineOps    []string `json:"engineOps,omitempty"`
	EngineRounds int      `json:"engineRounds,omitempty"`
	EngineBudget int      `json:"engineBudget,omitempty"`

	Outcome        string  `json:"outcome"` // "ok", "cancelled", "error", "rejected"
	Feasible       bool    `json:"feasible"`
	FinalObjective float64 `json:"finalObjective,omitempty"`
	RuntimeSeconds float64 `json:"runtimeSeconds,omitempty"`
	Advised        bool    `json:"advised,omitempty"` // solver chosen by the advisor

	// seg is the ordinal of the segment holding the full record; zero
	// while the record is still pending in the writer queue. Internal to
	// the Store — deliberately unexported and absent from JSON.
	seg int64
}

// TrajPoint is one point of a solve's incumbent trajectory, folded from
// bb.incumbent / engine.iter events. T is seconds since the trace epoch.
type TrajPoint struct {
	T   float64 `json:"t"`
	Obj float64 `json:"obj"`
}

// OpStat aggregates one portfolio operator's work during a solve, folded
// from engine.op.apply events.
type OpStat struct {
	Applies      int     `json:"applies"`
	Improvements int     `json:"improvements,omitempty"`
	Seconds      float64 `json:"seconds,omitempty"`
}

// Decision is one advisor recommendation: the solver (and, for
// portfolio picks, engine options) to run, and how the advisor got there.
// Basis is "instance" (this exact hash has history), "family" (nearest
// instances by task-count/mesh signature), "global" (cross-instance win
// rates) or "default" (no usable history). Candidates counts the archived
// records consulted.
type Decision struct {
	Solver       string   `json:"solver"`
	EngineOps    []string `json:"engineOps,omitempty"`
	EngineRounds int      `json:"engineRounds,omitempty"`
	EngineBudget int      `json:"engineBudget,omitempty"`
	Basis        string   `json:"basis"`
	Candidates   int      `json:"candidates"`
}

// Record is one archived solve: the Summary projection plus everything
// that does not need to stay resident — seed, request identity,
// energy/makespan breakdown, per-stage latencies, the incumbent
// trajectory and per-operator stats. Records serialize as one JSON line
// per record in the Store's segments; encoding/json's deterministic field
// order and sorted map keys make the encoding a pure function of the
// content, which the fake-clock determinism test pins.
type Record struct {
	Summary

	Request   string `json:"request,omitempty"` // originating request ID
	Seed      int64  `json:"seed,omitempty"`
	Cancelled bool   `json:"cancelled,omitempty"`
	Error     string `json:"error,omitempty"` // outcome "error"/"rejected" detail

	// Energy/makespan breakdown of the returned deployment.
	MaxEnergy float64 `json:"maxEnergy,omitempty"`
	SumEnergy float64 `json:"sumEnergy,omitempty"`
	Makespan  float64 `json:"makespan,omitempty"`
	Dups      int     `json:"dups,omitempty"`

	// Per-stage serving latencies in seconds, keyed by stage name
	// ("cache", "queue", "solve", ...).
	Stages map[string]float64 `json:"stageSeconds,omitempty"`

	// Incumbent trajectory and per-operator engine stats, folded from the
	// request's event stream by a Collector.
	Trajectory []TrajPoint       `json:"trajectory,omitempty"`
	Ops        map[string]OpStat `json:"ops,omitempty"`

	// Advice records the advisor decision that picked this record's
	// solver (solver=auto requests only) — the decision is archived with
	// its outcome, closing the advisor's feedback loop.
	Advice *Decision `json:"advice,omitempty"`
}

// summary returns the index projection of r (seg unset; the Store stamps
// it when the writer lands the record in a segment).
func (r *Record) summary() Summary {
	s := r.Summary
	s.Advised = r.Advice != nil
	s.seg = 0
	return s
}

// Record outcomes. Mirrors the service's request-outcome vocabulary for
// the subset that reaches the archive (cache hits and coalesced waits are
// not separate solves and are not recorded).
const (
	OutcomeOK        = "ok"
	OutcomeCancelled = "cancelled"
	OutcomeError     = "error"
	OutcomeRejected  = "rejected"
)
