package numeric

import (
	"math"
	"testing"
)

func TestToleranceComparisons(t *testing.T) {
	cases := []struct {
		name string
		got  bool
		want bool
	}{
		{"EqTol within", EqTol(1.0, 1.0+1e-10, 1e-9), true},
		{"EqTol outside", EqTol(1.0, 1.0+1e-8, 1e-9), false},
		{"LeqTol slack", LeqTol(1.0+1e-10, 1.0, 1e-9), true},
		{"LeqTol violated", LeqTol(1.0+1e-8, 1.0, 1e-9), false},
		{"GeqTol slack", GeqTol(1.0-1e-10, 1.0, 1e-9), true},
		{"GeqTol violated", GeqTol(1.0-1e-8, 1.0, 1e-9), false},
		{"LtTol strict", LtTol(1.0, 1.0+1e-8, 1e-9), true},
		{"LtTol tie", LtTol(1.0, 1.0+1e-10, 1e-9), false},
		{"GtTol strict", GtTol(1.0+1e-8, 1.0, 1e-9), true},
		{"GtTol tie", GtTol(1.0+1e-10, 1.0, 1e-9), false},
		{"Eq default", Eq(2.0, 2.0+1e-10), true},
		{"Lt default", Lt(1.0, 2.0), true},
		{"Gt default", Gt(2.0, 1.0), true},
		{"Leq default", Leq(1.0, 1.0), true},
		{"Geq default", Geq(1.0, 1.0), true},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestIsZeroPreservesPhysicalCoefficients(t *testing.T) {
	// Sparsity guards must never swallow real model coefficients: the
	// smallest quantities in the deployment domain are pJ-scale energies.
	physical := []float64{6e-12, 4e-12, 0.25e-9, 3e-9, 1e-15}
	for _, v := range physical {
		if IsZero(v) {
			t.Errorf("IsZero(%g) = true; physical coefficient treated as zero", v)
		}
	}
	if !IsZero(0) {
		t.Error("IsZero(0) = false")
	}
	if !IsZero(1e-300) {
		t.Error("IsZero(1e-300) = false; underflow noise should be a structural zero")
	}
	if !IsZero(-1e-300) {
		t.Error("IsZero(-1e-300) = false")
	}
}

func TestIsZeroTol(t *testing.T) {
	if !IsZeroTol(5e-7, 1e-6) {
		t.Error("IsZeroTol(5e-7, 1e-6) = false")
	}
	if IsZeroTol(5e-6, 1e-6) {
		t.Error("IsZeroTol(5e-6, 1e-6) = true")
	}
}

func TestRelEq(t *testing.T) {
	if !RelEq(1e12, 1e12+1, 1e-9) {
		t.Error("RelEq should scale with magnitude")
	}
	if RelEq(1.0, 1.1, 1e-9) {
		t.Error("RelEq(1.0, 1.1) should be false")
	}
	// Absolute floor near zero.
	if !RelEq(0, 1e-10, 1e-9) {
		t.Error("RelEq should keep an absolute floor near zero")
	}
	if RelEq(math.Inf(1), 1, 1e-9) {
		t.Error("RelEq(+Inf, 1) should be false")
	}
}
