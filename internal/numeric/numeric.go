// Package numeric centralizes the floating-point comparison policy of the
// solver stack. Numerical code must not compare floats with == or != (the
// noclint floateq analyzer enforces this repo-wide); instead it routes
// comparisons through this package so every tolerance is explicit, named
// and auditable.
//
// Two kinds of predicate are provided:
//
//   - Tolerance comparisons (Eq, Leq, Lt, ... and their *Tol variants):
//     "equal/ordered up to a slack". Callers in the simplex, branch & bound
//     and heuristic layers pass domain tolerances explicitly (optimality
//     tolerance, integrality tolerance, energy tie-break, ...); the Eps
//     default covers generic O(1) quantities.
//
//   - Sparsity guards (IsZero): "is this coefficient a structural zero so
//     the work it drives can be skipped". The threshold ZeroTol is far
//     below any meaningful coefficient of the deployment domain (link
//     energies are ~1e-12 J/byte, latencies ~1e-9 s/byte), so skipping is
//     always a true no-op; at the same time it absorbs underflow noise
//     that an exact == 0 would miss.
package numeric

import "math"

const (
	// Eps is the solver-wide default tolerance for comparisons between
	// quantities of order one (normalized objectives, ratios, residuals).
	Eps = 1e-9

	// ZeroTol is the sparsity-guard threshold used by IsZero. It is chosen
	// orders of magnitude below the smallest physical coefficient in the
	// model (pJ-scale energies) so that treating |x| <= ZeroTol as zero
	// never discards real data.
	ZeroTol = 1e-30
)

// EqTol reports |a-b| <= tol.
func EqTol(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// LeqTol reports a <= b + tol ("a not greater than b beyond tolerance").
func LeqTol(a, b, tol float64) bool { return a <= b+tol }

// GeqTol reports a >= b - tol.
func GeqTol(a, b, tol float64) bool { return a >= b-tol }

// LtTol reports a < b - tol ("a strictly less than b beyond tolerance").
func LtTol(a, b, tol float64) bool { return a < b-tol }

// GtTol reports a > b + tol.
func GtTol(a, b, tol float64) bool { return a > b+tol }

// IsZeroTol reports |x| <= tol.
func IsZeroTol(x, tol float64) bool { return math.Abs(x) <= tol }

// Eq reports a ≈ b under the default Eps tolerance.
func Eq(a, b float64) bool { return EqTol(a, b, Eps) }

// Leq reports a ≤ b up to the default Eps tolerance.
func Leq(a, b float64) bool { return LeqTol(a, b, Eps) }

// Geq reports a ≥ b up to the default Eps tolerance.
func Geq(a, b float64) bool { return GeqTol(a, b, Eps) }

// Lt reports a < b beyond the default Eps tolerance.
func Lt(a, b float64) bool { return LtTol(a, b, Eps) }

// Gt reports a > b beyond the default Eps tolerance.
func Gt(a, b float64) bool { return GtTol(a, b, Eps) }

// IsZero reports whether x is a structural zero (|x| <= ZeroTol). Use it
// for sparsity short-circuits ("skip this row, the coefficient is zero"),
// not for feasibility or optimality decisions — those need a domain
// tolerance via IsZeroTol or the comparison helpers.
func IsZero(x float64) bool { return math.Abs(x) <= ZeroTol }

// RelEq reports |a-b| <= tol·max(1, |a|, |b|): equality under a relative
// tolerance with an absolute floor, suitable for comparing quantities whose
// scale is unknown. Infinities are equal only to themselves; NaN is equal
// to nothing.
func RelEq(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
