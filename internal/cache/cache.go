// Package cache provides a content-addressed in-memory LRU cache with
// singleflight coalescing, plus a directory-backed byte store for
// cross-process reuse. The deployment service keys both by the canonical
// hash of (instance, solver options) — see spec.Instance.CanonicalHash —
// so identical requests share one solve and then one cached solution.
package cache

import (
	"container/list"
	"context"
	"sync"
)

// Outcome classifies what Acquire found for a key.
type Outcome int

const (
	// Hit: the value was cached; Acquire returned it directly.
	Hit Outcome = iota
	// Miss: nothing cached or in flight. The caller is the flight leader
	// and must call Finish exactly once with the computed value.
	Miss
	// Coalesced: another caller is already computing this key. Wait on the
	// returned Flight for the leader's result.
	Coalesced
)

// String names the outcome the way the service reports it in headers and
// metrics.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// Flight is one in-progress computation of a key's value. The leader (the
// Acquire caller that got Miss) resolves it with Cache.Finish; every
// coalesced caller observes the same result via Wait.
type Flight[V any] struct {
	key  string
	done chan struct{}
	val  V
	err  error
}

// Wait blocks until the flight leader calls Finish or ctx is done,
// whichever comes first. A context abort returns ctx.Err(); the flight
// itself keeps flying for the remaining waiters.
func (f *Flight[V]) Wait(ctx context.Context) (V, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err()
	}
}

// Stats is a snapshot of cache accounting. Hits, Misses and Coalesced
// partition Acquire calls; Evictions counts LRU removals.
type Stats struct {
	Hits      int64
	Misses    int64
	Coalesced int64
	Evictions int64
	Entries   int
}

// HitRatio is the fraction of Acquire calls answered without a new
// computation (hits plus coalesced waiters). Zero when nothing was asked.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

type entry[V any] struct {
	key string
	val V
}

// Cache is a bounded LRU map with singleflight coalescing. All methods are
// safe for concurrent use.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	flights  map[string]*Flight[V]
	stats    Stats
}

// New returns a cache holding at most capacity entries (at least one).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
		flights:  map[string]*Flight[V]{},
	}
}

// Acquire looks up key and returns one of three shapes:
//
//   - (value, nil, Hit): the cached value.
//   - (zero, flight, Miss): the caller is the leader and MUST call Finish
//     on the flight exactly once, or every coalesced waiter blocks forever.
//   - (zero, flight, Coalesced): someone else is computing; Wait on it.
func (c *Cache[V]) Acquire(key string) (V, *Flight[V], Outcome) {
	var zero V
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[V]).val, nil, Hit
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Coalesced++
		return zero, f, Coalesced
	}
	c.stats.Misses++
	f := &Flight[V]{key: key, done: make(chan struct{})}
	c.flights[key] = f
	return zero, f, Miss
}

// Finish resolves a flight obtained from a Miss. The value is stored in
// the LRU only when err is nil and store is true — callers pass store=false
// for results that must not be reused (e.g. deadline-truncated solves).
// Finish must be called exactly once per Miss flight.
func (c *Cache[V]) Finish(f *Flight[V], v V, err error, store bool) {
	c.mu.Lock()
	delete(c.flights, f.key)
	if err == nil && store {
		c.put(f.key, v)
	}
	c.mu.Unlock()
	f.val, f.err = v, err
	close(f.done)
}

// Do is the common Acquire/Finish wrapping: hit returns the cached value,
// miss runs fn and caches its value (errors are never cached), coalesced
// waits for the leader under ctx.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func() (V, error)) (V, Outcome, error) {
	v, f, out := c.Acquire(key)
	switch out {
	case Hit:
		return v, Hit, nil
	case Coalesced:
		v, err := f.Wait(ctx)
		return v, Coalesced, err
	}
	v, err := fn()
	c.Finish(f, v, err, err == nil)
	return v, Miss, err
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	return s
}

// put inserts or refreshes key under c.mu.
func (c *Cache[V]) put(key string, v V) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry[V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry[V]{key: key, val: v})
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		e := back.Value.(*entry[V])
		delete(c.entries, e.key)
		c.order.Remove(back)
		c.stats.Evictions++
	}
}
