package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// DirStore is a content-addressed byte store on disk: one file per key,
// named by the SHA-256 of the key, written atomically (temp file + rename)
// so a crashed writer never leaves a torn entry. It backs the deploy CLI's
// -cache-dir flag, where cache entries must outlive the process.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// path maps a key to its file. Keys are hashed so arbitrary strings (even
// ones containing path separators) stay filename-safe.
func (s *DirStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the stored bytes for key, with ok=false (and no error) when
// the key has never been Put.
func (s *DirStore) Get(key string) ([]byte, bool, error) {
	b, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// Put stores data under key, replacing any previous value atomically.
func (s *DirStore) Put(key string, data []byte) error {
	dst := s.path(key)
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(name)
		return err
	}
	if err := os.Rename(name, dst); err != nil {
		_ = os.Remove(name)
		return err
	}
	return nil
}
