package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHitMissAccounting(t *testing.T) {
	c := New[int](4)
	_, leader, out := c.Acquire("a")
	if out != Miss {
		t.Fatalf("first acquire: %v, want miss", out)
	}
	if _, _, out := c.Acquire("a"); out != Coalesced {
		t.Fatalf("acquire during flight: %v, want coalesced", out)
	}
	c.Finish(leader, 1, nil, true)
	if v, _, out := c.Acquire("a"); out != Hit || v != 1 {
		t.Fatalf("acquire after finish: %v v=%d, want hit v=1", out, v)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss / 1 coalesced / 1 hit", s)
	}
}

func TestDoCachesValues(t *testing.T) {
	c := New[string](4)
	calls := 0
	fn := func() (string, error) { calls++; return "v", nil }
	v, out, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != "v" || out != Miss {
		t.Fatalf("first Do: %q %v %v", v, out, err)
	}
	v, out, err = c.Do(context.Background(), "k", fn)
	if err != nil || v != "v" || out != Hit {
		t.Fatalf("second Do: %q %v %v", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if r := c.Stats().HitRatio(); r < 0.49 || r > 0.51 {
		t.Fatalf("hit ratio %g, want 0.5", r)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](4)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, out, err := c.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || out != Miss || v != 7 {
		t.Fatalf("after error: %d %v %v, want fresh miss", v, out, err)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries %d, want 1 (error result must not be stored)", s.Entries)
	}
}

func TestFinishNoStore(t *testing.T) {
	c := New[int](4)
	_, f, out := c.Acquire("k")
	if out != Miss {
		t.Fatalf("acquire: %v", out)
	}
	c.Finish(f, 42, nil, false) // e.g. a cancelled solve: deliver but don't cache
	if v, err := f.Wait(context.Background()); err != nil || v != 42 {
		t.Fatalf("wait: %d %v", v, err)
	}
	if _, _, out := c.Acquire("k"); out != Miss {
		t.Fatalf("unstored result was cached: %v", out)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	put := func(k string, v int) {
		t.Helper()
		_, f, out := c.Acquire(k)
		if out != Miss {
			t.Fatalf("acquire %q: %v", k, out)
		}
		c.Finish(f, v, nil, true)
	}
	put("a", 1)
	put("b", 2)
	// Touch "a" so "b" is the LRU victim.
	if _, _, out := c.Acquire("a"); out != Hit {
		t.Fatalf("a not cached: %v", out)
	}
	put("c", 3)
	if _, _, out := c.Acquire("b"); out != Miss {
		t.Fatal("lru victim b survived eviction")
	}
	if v, _, out := c.Acquire("a"); out != Hit || v != 1 {
		t.Fatalf("recently-used a evicted (out %v, v %d)", out, v)
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Fatalf("entries %d, want 2", s.Entries)
	}
}

// TestConcurrentCoalescing is the contract the service's e2e test builds
// on: M concurrent identical requests run the underlying computation
// exactly once. Run under -race in CI.
func TestConcurrentCoalescing(t *testing.T) {
	c := New[int](4)
	const m = 64
	var calls atomic.Int64
	var wg sync.WaitGroup
	results := make([]int, m)
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				time.Sleep(10 * time.Millisecond) // hold the flight open so peers coalesce
				return 99, nil
			})
			results[i], errs[i] = v, err
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("computation ran %d times for %d concurrent requests, want 1", n, m)
	}
	for i := 0; i < m; i++ {
		if errs[i] != nil || results[i] != 99 {
			t.Fatalf("request %d: v=%d err=%v", i, results[i], errs[i])
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Coalesced != m-1 {
		t.Fatalf("stats %+v: want 1 miss and %d hits+coalesced", s, m-1)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	c := New[int](4)
	_, leader, out := c.Acquire("k")
	if out != Miss {
		t.Fatalf("acquire: %v", out)
	}
	_, follower, out := c.Acquire("k")
	if out != Coalesced {
		t.Fatalf("second acquire: %v", out)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := follower.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait on cancelled ctx: %v", err)
	}
	// The flight survives an abandoned waiter.
	c.Finish(leader, 5, nil, true)
	if v, err := follower.Wait(context.Background()); err != nil || v != 5 {
		t.Fatalf("wait after finish: %d %v", v, err)
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	s, err := NewDirStore(t.TempDir() + "/nested/cache")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("missing"); err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	if err := s.Put("k/with:odd chars", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	b, ok, err := s.Get("k/with:odd chars")
	if err != nil || !ok || string(b) != `{"x":1}` {
		t.Fatalf("get: %q ok=%v err=%v", b, ok, err)
	}
	// Overwrite replaces.
	if err := s.Put("k/with:odd chars", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if b, _, _ := s.Get("k/with:odd chars"); string(b) != "2" {
		t.Fatalf("overwrite: %q", b)
	}
	// Distinct keys don't collide.
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		b, ok, err := s.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || b[0] != byte('0'+i) {
			t.Fatalf("key-%d: %q ok=%v err=%v", i, b, ok, err)
		}
	}
}
