package obs_test

import (
	"strings"
	"testing"
	"time"

	"nocdeploy/internal/obs"
)

// TestWithRequestStampsID: request-scoped child traces share the root's
// sequence numbering and sinks but tag every event with their request
// ID, so interleaved requests slice cleanly out of one stream.
func TestWithRequestStampsID(t *testing.T) {
	sink := &collectSink{}
	root := obs.NewWithClock(fakeClock(time.Millisecond), sink)
	a := root.WithRequest("r1")
	b := root.WithRequest("r2")

	a.Emit(obs.Event{Kind: obs.ReqAdmit, Label: "heuristic"})
	b.Emit(obs.Event{Kind: obs.ReqAdmit, Label: "optimal"})
	a.Emit(obs.Event{Kind: obs.SolveStart, Label: "heuristic"})
	root.Emit(obs.Event{Kind: obs.PoolTaskStart, Node: 1})

	if err := a.Close(); err != nil {
		t.Fatalf("child Close: %v", err)
	}
	// Children closed; the root still works.
	b.Emit(obs.Event{Kind: obs.ReqDone, Phase: "ok"})
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}

	wantReq := []string{"r1", "r2", "r1", "", "r2"}
	if len(sink.events) != len(wantReq) {
		t.Fatalf("got %d events, want %d", len(sink.events), len(wantReq))
	}
	for i, e := range sink.events {
		if e.Req != wantReq[i] {
			t.Errorf("event %d: Req = %q, want %q", i, e.Req, wantReq[i])
		}
		if e.Seq != int64(i+1) {
			t.Errorf("event %d: Seq = %d, want shared numbering %d", i, e.Seq, i+1)
		}
	}

	// Re-parenting: a child of a child still reaches the root's sinks.
	grand := a.WithRequest("r3")
	grand.Emit(obs.Event{Kind: obs.ReqDone}) // root closed: sinks gone, must not panic
}

func TestWithRequestNilSafe(t *testing.T) {
	var tr *obs.Trace
	child := tr.WithRequest("r1")
	if child != nil {
		t.Fatal("nil trace produced a non-nil child")
	}
	if child.Enabled() {
		t.Fatal("nil child reports Enabled")
	}
	child.Emit(obs.Event{Kind: obs.ReqDone}) // must not panic
}

func TestRingSinkRetainsAndFilters(t *testing.T) {
	ring := obs.NewRingSink(4)
	tr := obs.NewWithClock(fakeClock(time.Millisecond), ring)
	r1 := tr.WithRequest("r1")
	r2 := tr.WithRequest("r2")
	r1.Emit(obs.Event{Kind: obs.ReqAdmit})
	r2.Emit(obs.Event{Kind: obs.ReqAdmit})
	r1.Emit(obs.Event{Kind: obs.ReqStage, Phase: "cache"})
	r1.Emit(obs.Event{Kind: obs.ReqDone, Phase: "ok"})

	if got := ring.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := len(ring.ForRequest("r1")); got != 3 {
		t.Fatalf("r1 slice has %d events, want 3", got)
	}
	if got := ring.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d before overflow", got)
	}

	// Overflow evicts oldest-first.
	r2.Emit(obs.Event{Kind: obs.ReqDone, Phase: "ok"})
	ev := ring.Events()
	if len(ev) != 4 {
		t.Fatalf("post-overflow Len = %d, want 4", len(ev))
	}
	if ev[0].Kind != obs.ReqAdmit || ev[0].Req != "r2" {
		t.Fatalf("oldest retained event %+v, want r2's admit", ev[0])
	}
	if got := ring.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	if got := len(ring.ForRequest("r1")); got != 2 {
		t.Fatalf("r1 slice after eviction has %d events, want 2", got)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("ring not oldest-first: %v", ev)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONLCorruptAndTruncated(t *testing.T) {
	valid := `{"seq":1,"t":0.001,"kind":"solve.start","req":"r1","label":"heuristic"}` + "\n" +
		`{"seq":2,"t":0.002,"kind":"lp.solve","iters":9}` + "\n"

	t.Run("clean", func(t *testing.T) {
		ev, err := obs.ReadJSONL(strings.NewReader(valid))
		if err != nil || len(ev) != 2 {
			t.Fatalf("ev=%d err=%v", len(ev), err)
		}
		if ev[0].Req != "r1" {
			t.Errorf("req field lost: %+v", ev[0])
		}
	})
	t.Run("blank lines skipped", func(t *testing.T) {
		ev, err := obs.ReadJSONL(strings.NewReader("\n" + valid + "\n\n"))
		if err != nil || len(ev) != 2 {
			t.Fatalf("ev=%d err=%v", len(ev), err)
		}
	})
	t.Run("corrupt middle line", func(t *testing.T) {
		in := `{"seq":1,"kind":"solve.start"}` + "\n" + `{"seq":2,"kind":` + "\n" + `{"seq":3,"kind":"solve.done"}` + "\n"
		ev, err := obs.ReadJSONL(strings.NewReader(in))
		if err == nil {
			t.Fatal("corrupt line accepted")
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("error %q does not name line 2", err)
		}
		if len(ev) != 1 || ev[0].Seq != 1 {
			t.Errorf("intact prefix not returned: %v", ev)
		}
	})
	t.Run("truncated final line", func(t *testing.T) {
		in := valid + `{"seq":3,"t":0.003,"kind":"solve.do`
		ev, err := obs.ReadJSONL(strings.NewReader(in))
		if err == nil {
			t.Fatal("truncated final line accepted")
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("error %q does not name line 3", err)
		}
		if len(ev) != 2 {
			t.Errorf("intact prefix has %d events, want 2", len(ev))
		}
	})
	t.Run("not json at all", func(t *testing.T) {
		ev, err := obs.ReadJSONL(strings.NewReader("hello world\n"))
		if err == nil || len(ev) != 0 {
			t.Fatalf("ev=%d err=%v", len(ev), err)
		}
	})
}
