package obs

import "math"

// MetricsSink aggregates the event stream into a Metrics registry — the
// canonical solver metrics: node throughput, incumbent trajectory, bound
// gap over time, simplex work, pool occupancy. It needs no locking of its
// own: Write runs under the Trace mutex, and the registry's own mutex
// covers concurrent Snapshot calls.
type MetricsSink struct {
	m *Metrics

	active    int // running pool tasks
	incumbent float64
	bound     float64
	haveInc   bool
	haveBound bool
}

// NewMetricsSink aggregates into m (which the caller typically snapshots
// after the run, or periodically during it).
func NewMetricsSink(m *Metrics) *MetricsSink {
	return &MetricsSink{m: m, incumbent: math.Inf(1), bound: math.Inf(-1)}
}

// Metrics returns the backing registry.
func (s *MetricsSink) Metrics() *Metrics { return s.m }

// Write folds one event into the registry.
func (s *MetricsSink) Write(e Event) {
	s.m.SetMax("trace.elapsed_seconds", e.T)
	switch e.Kind {
	case BBNode:
		s.m.Add("bb.nodes", 1)
		s.m.Observe("bb.node_depth", float64(e.Depth))
	case BBIncumbent:
		s.m.Add("bb.incumbents", 1)
		s.m.Set("bb.incumbent", e.Obj)
		s.m.Append("bb.incumbent", e.T, e.Obj)
		s.incumbent, s.haveInc = e.Obj, true
		s.gapPoint(e.T)
	case BBBound:
		s.m.Set("bb.bound", e.Bound)
		s.m.Append("bb.bound", e.T, e.Bound)
		s.bound, s.haveBound = e.Bound, true
		s.gapPoint(e.T)
	case BBPrune:
		s.m.Add("bb.pruned", 1)
	case LPSolve:
		s.m.Add("lp.solves", 1)
		s.m.Add("lp.iters", int64(e.Iters))
		s.m.Add("lp.iters_phase1", int64(e.ItersP1))
		s.m.Observe("lp.iters_per_solve", float64(e.Iters))
	case LPRefactor:
		s.m.Add("lp.refactors", 1)
	case LPWarmStart:
		s.m.Add("lp.warmstarts", 1)
		s.m.Add("lp.warmstart_dual_iters", int64(e.Iters))
		if e.Phase == "fallback" {
			s.m.Add("lp.warmstart_fallbacks", 1)
		}
	case HeurPhaseEnd:
		s.m.Observe("heur.phase_seconds", e.Dur)
	case HeurRepair:
		s.m.Add("heur.repair_rounds", 1)
	case AnnealAccept:
		s.m.Add("anneal.accepted", 1)
	case AnnealReject:
		s.m.Add("anneal.rejected", 1)
	case PoolTaskStart:
		s.m.Add("pool.tasks", 1)
		s.active++
		s.m.Set("pool.active", float64(s.active))
		s.m.SetMax("pool.active_max", float64(s.active))
	case PoolTaskDone:
		s.active--
		s.m.Set("pool.active", float64(s.active))
		s.m.Observe("pool.task_seconds", e.Dur)
		if e.Phase == "error" {
			s.m.Add("pool.errors", 1)
		}
	}
}

// gapPoint appends the relative optimality gap whenever both sides are
// known (matching milp.Result.Gap's definition).
func (s *MetricsSink) gapPoint(t float64) {
	if !s.haveInc || !s.haveBound {
		return
	}
	denom := math.Abs(s.incumbent)
	if denom < 1e-12 {
		denom = 1e-12
	}
	gap := (s.incumbent - s.bound) / denom
	if gap < 0 {
		gap = 0
	}
	s.m.Set("bb.gap", gap)
	s.m.Append("bb.gap", t, gap)
}

// Close is a no-op; the registry outlives the trace.
func (s *MetricsSink) Close() error { return nil }
