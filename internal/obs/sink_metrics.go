package obs

// MetricsSink aggregates the event stream into a Metrics registry — the
// canonical solver metrics: node throughput, incumbent trajectory, bound
// gap over time, simplex work, pool occupancy. It needs no locking of its
// own: Write runs under the Trace mutex, and the registry's own mutex
// covers concurrent Snapshot calls.
type MetricsSink struct {
	m *Metrics

	active int // running pool tasks
}

// NewMetricsSink aggregates into m (which the caller typically snapshots
// after the run, or periodically during it).
func NewMetricsSink(m *Metrics) *MetricsSink {
	return &MetricsSink{m: m}
}

// Metrics returns the backing registry.
func (s *MetricsSink) Metrics() *Metrics { return s.m }

// Write folds one event into the registry.
func (s *MetricsSink) Write(e Event) {
	s.m.SetMax("trace.elapsed_seconds", e.T)
	switch e.Kind {
	case BBNode:
		s.m.Add("bb.nodes", 1)
		s.m.Observe("bb.node_depth", float64(e.Depth))
	case BBIncumbent:
		s.m.Add("bb.incumbents", 1)
		s.m.Set("bb.incumbent", e.Obj)
		s.m.Append("bb.incumbent", e.T, e.Obj)
	case BBBound:
		s.m.Set("bb.bound", e.Bound)
		s.m.Append("bb.bound", e.T, e.Bound)
	case BBGap:
		// The solver emits the gap as a first-class event whenever
		// incumbent and bound are simultaneously known, so the sink no
		// longer reconstructs it from the two half-series.
		s.m.Set("bb.gap", e.Gap)
		s.m.Append("bb.gap", e.T, e.Gap)
	case BBPrune:
		s.m.Add("bb.pruned", 1)
	case LPSolve:
		s.m.Add("lp.solves", 1)
		s.m.Add("lp.iters", int64(e.Iters))
		s.m.Add("lp.iters_phase1", int64(e.ItersP1))
		s.m.Observe("lp.iters_per_solve", float64(e.Iters))
	case LPRefactor:
		s.m.Add("lp.refactors", 1)
	case LPWarmStart:
		s.m.Add("lp.warmstarts", 1)
		s.m.Add("lp.warmstart_dual_iters", int64(e.Iters))
		if e.Phase == "fallback" {
			s.m.Add("lp.warmstart_fallbacks", 1)
		}
	case HeurPhaseEnd:
		s.m.Observe("heur.phase_seconds", e.Dur)
	case HeurRepair:
		s.m.Add("heur.repair_rounds", 1)
	case AnnealAccept:
		s.m.Add("anneal.accepted", 1)
	case AnnealReject:
		s.m.Add("anneal.rejected", 1)
	case EngineIter:
		s.m.Add("engine.iters", 1)
		s.m.Set("engine.incumbent", e.Obj)
		s.m.Append("engine.incumbent", e.T, e.Obj)
	case EngineOpApply:
		s.m.Add(Key("engine.op.applies", "op", e.Label), 1)
		s.m.Observe(Key("engine.op.seconds", "op", e.Label), e.Dur)
		s.m.Set(Key("engine.op.score", "op", e.Label), e.Bound)
		if e.Phase == "improved" {
			s.m.Add(Key("engine.op.improvements", "op", e.Label), 1)
		}
	case ArchiveRecord:
		s.m.Add("archive.records", 1)
		s.m.Add("archive.bytes", int64(e.Node))
		s.m.Observe("archive.append_seconds", e.Dur)
	case ArchiveAdvise:
		s.m.Add(Key("advisor.decisions", "basis", e.Phase), 1)
		s.m.Add(Key("advisor.solver", "solver", e.Label), 1)
	case PoolTaskStart:
		s.m.Add("pool.tasks", 1)
		s.active++
		s.m.Set("pool.active", float64(s.active))
		s.m.SetMax("pool.active_max", float64(s.active))
	case PoolTaskDone:
		s.active--
		s.m.Set("pool.active", float64(s.active))
		s.m.Observe("pool.task_seconds", e.Dur)
		if e.Phase == "error" {
			s.m.Add("pool.errors", 1)
		}
	}
}

// Close is a no-op; the registry outlives the trace.
func (s *MetricsSink) Close() error { return nil }
