package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// histBounds is the shared decade ladder of every histogram: wide enough
// for sub-microsecond task times and 10⁵-iteration simplex solves alike,
// coarse enough that snapshots stay small. Values land in the first bucket
// whose upper bound is ≥ the observation; larger values go to +Inf.
var histBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
	1, 10, 100, 1e3, 1e4, 1e5, 1e6,
}

// hist is one histogram's state.
type hist struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets []int64 // len(histBounds)+1, last is the overflow bucket
}

// Metrics is a small counter/gauge/histogram/series registry. All methods
// are safe for concurrent use and nil-safe (a nil *Metrics discards
// updates), mirroring the nil-Trace convention.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist
	series   map[string][]Point
}

// Point is one sample of a time series: T seconds since the trace epoch.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*hist{},
		series:   map[string][]Point{},
	}
}

// Add increments counter name by delta.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Set records gauge name's latest value.
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// SetMax records gauge name's running maximum.
func (m *Metrics) SetMax(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if cur, ok := m.gauges[name]; !ok || v > cur {
		m.gauges[name] = v
	}
	m.mu.Unlock()
}

// Observe adds one sample to histogram name.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &hist{min: math.Inf(1), max: math.Inf(-1), buckets: make([]int64, len(histBounds)+1)}
		m.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	b := len(histBounds)
	for i, ub := range histBounds {
		if v <= ub {
			b = i
			break
		}
	}
	h.buckets[b]++
	m.mu.Unlock()
}

// Append adds one point to time series name.
func (m *Metrics) Append(name string, t, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.series[name] = append(m.series[name], Point{T: t, V: v})
	m.mu.Unlock()
}

// HistSnapshot is the frozen view of one histogram. Bounds are the shared
// bucket upper bounds; Buckets has one extra overflow cell.
type HistSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the bucket holding the target rank, the
// standard Prometheus-style histogram_quantile estimate. Exact at bucket
// boundaries: when the target rank lands on a bucket's cumulative count,
// the bucket's upper bound is returned. The recorded Min/Max tighten the
// outermost buckets when finite (a windowed delta from Sub has neither).
// An empty histogram returns NaN.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	cum := int64(0)
	for i, n := range h.Buckets {
		if n == 0 {
			cum += n
			continue
		}
		prev := cum
		cum += n
		if target > float64(cum) {
			continue
		}
		// The rank lands in this bucket: interpolate between its edges.
		lower, upper := bucketEdges(h, i)
		frac := (target - float64(prev)) / float64(n)
		if frac < 0 {
			frac = 0
		}
		v := lower + (upper-lower)*frac
		return clampToObserved(h, v)
	}
	// Only reachable when every bucket is empty but Count > 0 (corrupt
	// snapshot); fall back to the recorded extremes.
	return clampToObserved(h, h.Max)
}

// bucketEdges returns bucket i's value range. The first bucket extends
// down to Min (when finite) or zero; the overflow bucket extends up to
// Max (when finite) or the last bound.
func bucketEdges(h HistSnapshot, i int) (lower, upper float64) {
	switch {
	case i == 0:
		lower = 0
		if !math.IsInf(h.Min, 0) && h.Min < h.Bounds[0] {
			lower = h.Min
		}
	case i <= len(h.Bounds):
		lower = h.Bounds[i-1]
	}
	if i < len(h.Bounds) {
		upper = h.Bounds[i]
	} else {
		upper = h.Bounds[len(h.Bounds)-1]
		if !math.IsInf(h.Max, 0) && h.Max > upper {
			upper = h.Max
		}
	}
	return lower, upper
}

// clampToObserved bounds an estimate by the recorded extremes, when
// known.
func clampToObserved(h HistSnapshot, v float64) float64 {
	if !math.IsInf(h.Min, 0) && v < h.Min {
		v = h.Min
	}
	if !math.IsInf(h.Max, 0) && v > h.Max {
		v = h.Max
	}
	return v
}

// Sub returns the histogram of observations made after prev was taken —
// the per-window view a poller needs for live quantiles. Min/Max are
// unknown for the window and come back infinite. Snapshots with
// different bucket ladders (or an empty prev) return h unchanged.
func (h HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	if prev.Count == 0 || len(prev.Buckets) != len(h.Buckets) {
		return h
	}
	d := HistSnapshot{
		Count:   h.Count - prev.Count,
		Sum:     h.Sum - prev.Sum,
		Min:     math.Inf(1),
		Max:     math.Inf(-1),
		Bounds:  h.Bounds,
		Buckets: make([]int64, len(h.Buckets)),
	}
	if d.Count < 0 { // counter reset (e.g. daemon restart): window unknowable
		return h
	}
	for i := range h.Buckets {
		if n := h.Buckets[i] - prev.Buckets[i]; n > 0 {
			d.Buckets[i] = n
		}
	}
	return d
}

// DeltaFrom returns the registry change from prev to s: counters and
// histograms subtract (clamped at zero on resets), gauges and series
// keep s's current values. This is what a metrics poller shows per
// refresh interval.
func (s Snapshot) DeltaFrom(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters: map[string]int64{},
		Gauges:   s.Gauges,
		Hists:    map[string]HistSnapshot{},
		Series:   s.Series,
	}
	for k, v := range s.Counters {
		dv := v - prev.Counters[k]
		if dv < 0 {
			dv = v
		}
		d.Counters[k] = dv
	}
	for k, h := range s.Hists {
		d.Hists[k] = h.Sub(prev.Hists[k])
	}
	return d
}

// Snapshot is a frozen, JSON-stable view of the registry: encoding/json
// sorts map keys, so two snapshots of the same state marshal identically.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"histograms"`
	Series   map[string][]Point      `json:"series"`
}

// Snapshot copies the current state. Nil-safe: a nil registry snapshots
// empty.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistSnapshot{},
		Series:   map[string][]Point{},
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	for k, h := range m.hists {
		s.Hists[k] = HistSnapshot{
			Count:   h.count,
			Sum:     h.sum,
			Min:     h.min,
			Max:     h.max,
			Bounds:  histBounds,
			Buckets: append([]int64(nil), h.buckets...),
		}
	}
	for k, pts := range m.series {
		s.Series[k] = append([]Point(nil), pts...)
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}
