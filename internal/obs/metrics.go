package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// histBounds is the shared decade ladder of every histogram: wide enough
// for sub-microsecond task times and 10⁵-iteration simplex solves alike,
// coarse enough that snapshots stay small. Values land in the first bucket
// whose upper bound is ≥ the observation; larger values go to +Inf.
var histBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
	1, 10, 100, 1e3, 1e4, 1e5, 1e6,
}

// hist is one histogram's state.
type hist struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets []int64 // len(histBounds)+1, last is the overflow bucket
}

// Metrics is a small counter/gauge/histogram/series registry. All methods
// are safe for concurrent use and nil-safe (a nil *Metrics discards
// updates), mirroring the nil-Trace convention.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist
	series   map[string][]Point
}

// Point is one sample of a time series: T seconds since the trace epoch.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*hist{},
		series:   map[string][]Point{},
	}
}

// Add increments counter name by delta.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Set records gauge name's latest value.
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// SetMax records gauge name's running maximum.
func (m *Metrics) SetMax(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if cur, ok := m.gauges[name]; !ok || v > cur {
		m.gauges[name] = v
	}
	m.mu.Unlock()
}

// Observe adds one sample to histogram name.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &hist{min: math.Inf(1), max: math.Inf(-1), buckets: make([]int64, len(histBounds)+1)}
		m.hists[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	b := len(histBounds)
	for i, ub := range histBounds {
		if v <= ub {
			b = i
			break
		}
	}
	h.buckets[b]++
	m.mu.Unlock()
}

// Append adds one point to time series name.
func (m *Metrics) Append(name string, t, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.series[name] = append(m.series[name], Point{T: t, V: v})
	m.mu.Unlock()
}

// HistSnapshot is the frozen view of one histogram. Bounds are the shared
// bucket upper bounds; Buckets has one extra overflow cell.
type HistSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Snapshot is a frozen, JSON-stable view of the registry: encoding/json
// sorts map keys, so two snapshots of the same state marshal identically.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"histograms"`
	Series   map[string][]Point      `json:"series"`
}

// Snapshot copies the current state. Nil-safe: a nil registry snapshots
// empty.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistSnapshot{},
		Series:   map[string][]Point{},
	}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	for k, h := range m.hists {
		s.Hists[k] = HistSnapshot{
			Count:   h.count,
			Sum:     h.sum,
			Min:     h.min,
			Max:     h.max,
			Bounds:  histBounds,
			Buckets: append([]int64(nil), h.buckets...),
		}
	}
	for k, pts := range m.series {
		s.Series[k] = append([]Point(nil), pts...)
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}
