package obs

import "time"

// Clock is an injectable time source shared across the solver stack. The
// zero value (nil) means the wall clock; solver options embed a Clock so
// deadline logic and phase timing are testable with a fake clock, and so
// the wallclock analyzer (internal/lint) can mechanically verify that no
// solver package reads time.Now directly outside an approved seam.
//
// A fake clock for tests is just a closure over a mutable time.Time; it
// must be monotone non-decreasing, like the clock given to NewWithClock.
type Clock func() time.Time

// Now returns the current time from the clock; a nil Clock reads the wall
// clock. This is the canonical seam: packages under the wallclock analyzer
// call their options' clock instead of time.Now, and only the per-package
// default (annotated //lint:fact clockseam) touches the real clock.
func (c Clock) Now() time.Time {
	if c == nil {
		return time.Now()
	}
	return c()
}
