package obs

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
)

// BroadcastSink fans the event stream out to dynamically attached
// subscribers — the live half of the deployment service's streaming
// endpoints (the RingSink is the replay half). Its contract is shaped by
// the no-perturbation rule: Write is called under the owning Trace's
// mutex, on the solver's critical path, so it must never block no matter
// how slow a subscriber drains. Each subscription therefore owns a
// bounded ring; when a subscriber falls behind, the oldest undelivered
// events are dropped (never the writer delayed), the drop is counted, and
// the subscriber's next read is an in-band StreamGap marker carrying the
// count — a consumer always knows its view has a hole, and exactly how
// big.
//
// Subscriptions can filter by request ID and event kind, so an SSE
// handler streaming one request's solve does not pay for every other
// solve on the daemon.
type BroadcastSink struct {
	mu      sync.Mutex
	subs    []*Subscription // copy-on-write: Write iterates a snapshot
	closed  bool
	dropped atomic.Int64 // total events dropped across all subscribers
}

// NewBroadcastSink returns an empty fan-out; it is a valid Sink
// immediately (events with no subscribers are discarded).
func NewBroadcastSink() *BroadcastSink {
	return &BroadcastSink{}
}

// SubscribeOptions filter and size one subscription.
type SubscribeOptions struct {
	// Req, when non-empty, delivers only events carrying this request ID.
	Req string
	// Kinds, when non-empty, delivers only these event kinds.
	Kinds []Kind
	// Buffer is the subscription's ring capacity — the maximum number of
	// undelivered events held before drop-oldest kicks in. ≤0 means 256.
	Buffer int
}

// Subscribe attaches a new subscriber. On a closed sink the returned
// subscription is already closed (Next returns io.EOF).
func (b *BroadcastSink) Subscribe(opts SubscribeOptions) *Subscription {
	capacity := opts.Buffer
	if capacity <= 0 {
		capacity = 256
	}
	sub := &Subscription{
		b:      b,
		req:    opts.Req,
		buf:    make([]Event, capacity),
		notify: make(chan struct{}, 1),
	}
	if len(opts.Kinds) > 0 {
		sub.kinds = make(map[Kind]bool, len(opts.Kinds))
		for _, k := range opts.Kinds {
			sub.kinds[k] = true
		}
	}
	b.mu.Lock()
	if b.closed {
		sub.closed = true
	} else {
		subs := make([]*Subscription, len(b.subs)+1)
		copy(subs, b.subs)
		subs[len(b.subs)] = sub
		b.subs = subs
	}
	b.mu.Unlock()
	return sub
}

// remove detaches sub, rebuilding the subscriber slice so a concurrent
// Write iterating the old snapshot stays valid.
func (b *BroadcastSink) remove(sub *Subscription) {
	b.mu.Lock()
	for i, s := range b.subs {
		if s == sub {
			subs := make([]*Subscription, 0, len(b.subs)-1)
			subs = append(subs, b.subs[:i]...)
			subs = append(subs, b.subs[i+1:]...)
			b.subs = subs
			break
		}
	}
	b.mu.Unlock()
}

// Write offers e to every matching subscriber. Never blocks: a full
// subscription drops its oldest buffered event instead.
func (b *BroadcastSink) Write(e Event) {
	b.mu.Lock()
	subs := b.subs
	b.mu.Unlock()
	for _, sub := range subs {
		sub.offer(e)
	}
}

// Close detaches and closes every subscription (their Next drains the
// buffered remainder, then returns io.EOF). Idempotent and safe
// concurrent with Write.
func (b *BroadcastSink) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	subs := b.subs
	b.subs = nil
	b.mu.Unlock()
	for _, sub := range subs {
		sub.markClosed()
	}
	return nil
}

// Dropped reports the total events dropped across all subscriptions since
// construction, including already-closed ones — the stream.dropped
// metric.
func (b *BroadcastSink) Dropped() int64 { return b.dropped.Load() }

// Subscribers reports the currently attached subscription count.
func (b *BroadcastSink) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscription is one subscriber's bounded, drop-oldest view of the
// stream. Produced by BroadcastSink.Write (under the trace mutex),
// consumed by exactly one reader via Next.
type Subscription struct {
	b     *BroadcastSink
	req   string
	kinds map[Kind]bool

	mu      sync.Mutex
	buf     []Event // ring
	start   int
	n       int
	dropped int64 // lifetime drops, for accounting
	pending int64 // drops not yet surfaced as a StreamGap marker
	closed  bool

	notify chan struct{} // capacity 1: "buffer may be non-empty"
}

// offer appends e if it passes the filters, dropping the oldest buffered
// event when full. Never blocks.
func (sub *Subscription) offer(e Event) {
	if sub.req != "" && e.Req != sub.req {
		return
	}
	if sub.kinds != nil && !sub.kinds[e.Kind] {
		return
	}
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return
	}
	if sub.n == len(sub.buf) {
		sub.start = (sub.start + 1) % len(sub.buf)
		sub.n--
		sub.dropped++
		sub.pending++
		sub.b.dropped.Add(1)
	}
	sub.buf[(sub.start+sub.n)%len(sub.buf)] = e
	sub.n++
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// Next blocks until an event is available and returns it. When events
// were dropped since the last read, the first return is a synthesized
// StreamGap marker (Node = drop count) so the hole is visible in-band,
// before the events that survived it. Returns io.EOF once the
// subscription is closed and drained, or ctx.Err() on cancellation.
func (sub *Subscription) Next(ctx context.Context) (Event, error) {
	for {
		sub.mu.Lock()
		if sub.pending > 0 {
			gap := Event{Kind: StreamGap, Req: sub.req, Node: int(sub.pending)}
			sub.pending = 0
			sub.mu.Unlock()
			return gap, nil
		}
		if sub.n > 0 {
			e := sub.buf[sub.start]
			sub.start = (sub.start + 1) % len(sub.buf)
			sub.n--
			sub.mu.Unlock()
			return e, nil
		}
		closed := sub.closed
		sub.mu.Unlock()
		if closed {
			return Event{}, io.EOF
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-sub.notify:
		}
	}
}

// Dropped reports how many events this subscription has dropped.
func (sub *Subscription) Dropped() int64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.dropped
}

// Close detaches the subscription from the sink and wakes a blocked Next
// (which drains the buffered remainder before reporting io.EOF).
// Idempotent.
func (sub *Subscription) Close() {
	sub.b.remove(sub)
	sub.markClosed()
}

func (sub *Subscription) markClosed() {
	sub.mu.Lock()
	sub.closed = true
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}
