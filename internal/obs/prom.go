package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the metrics registry.
//
// The registry's flat keys optionally carry labels in the canonical form
// built by Key: `name{k="v",k2="v2"}`. The JSON snapshot keeps these as
// opaque keys; WritePrometheus splits them back into metric families so
// `requests{outcome="ok"}` and `requests{outcome="error"}` share one
// family with two labelled samples. Metric names are sanitized to the
// Prometheus charset (dots become underscores), counters gain the
// conventional `_total` suffix, and histograms expand into cumulative
// `_bucket{le=...}` samples plus `_sum` and `_count`. Time series have no
// exposition equivalent and are omitted — scrape intervals are the
// series. ParsePrometheus is the validating inverse used by tests and
// `deployctl metrics -format prom`.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Key builds a labelled registry key: Key("requests", "outcome", "ok")
// is `requests{outcome="ok"}`. Label pairs are sorted by label name so
// equal label sets always collapse onto one key; values are escaped.
// A trailing unpaired argument is ignored.
func Key(name string, labelPairs ...string) string {
	n := len(labelPairs) / 2
	if n == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, n)
	for i := 0; i+1 < len(labelPairs); i += 2 {
		pairs = append(pairs, kv{labelPairs[i], labelPairs[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// splitKey separates a registry key into its metric name and raw label
// body: `a{x="y"}` → ("a", `x="y"`); an unlabelled key returns ("a", "").
func splitKey(key string) (name, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return key, ""
	}
	return key[:i], key[i+1 : len(key)-1]
}

// sanitizeMetricName maps a registry name onto the Prometheus name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: every other rune becomes '_', and a
// leading digit gains a '_' prefix.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSample is one exposition line before formatting.
type promSample struct {
	labels string // raw label body, without braces
	value  string // preformatted value
}

// promFamily collects one metric family's samples.
type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes snapshot s in the text exposition format,
// deterministically ordered (families and samples sorted).
func WritePrometheus(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	family := func(name, typ string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}

	for key, v := range s.Counters {
		name, labels := splitKey(key)
		name = sanitizeMetricName(name)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		f := family(name, "counter")
		f.samples = append(f.samples, promSample{labels: labels, value: strconv.FormatInt(v, 10)})
	}
	for key, v := range s.Gauges {
		name, labels := splitKey(key)
		f := family(sanitizeMetricName(name), "gauge")
		f.samples = append(f.samples, promSample{labels: labels, value: formatPromValue(v)})
	}
	for key, h := range s.Hists {
		name, labels := splitKey(key)
		name = sanitizeMetricName(name)
		f := family(name, "histogram")
		joinLe := func(le string) string {
			if labels == "" {
				return `le="` + le + `"`
			}
			return labels + `,le="` + le + `"`
		}
		cum := int64(0)
		for i, ub := range h.Bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			f.samples = append(f.samples, promSample{labels: joinLe(formatPromValue(ub)), value: strconv.FormatInt(cum, 10)})
		}
		// Overflow bucket: everything above the last bound.
		if n := len(h.Bounds); n < len(h.Buckets) {
			cum += h.Buckets[n]
		}
		f.samples = append(f.samples, promSample{labels: joinLe("+Inf"), value: strconv.FormatInt(cum, 10)})
		f.name = name // bucket samples print under name_bucket; sum/count below
		fams[name] = f
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		if f.typ == "histogram" {
			for _, smp := range f.samples {
				if _, err := fmt.Fprintf(bw, "%s_bucket{%s} %s\n", f.name, smp.labels, smp.value); err != nil {
					return err
				}
			}
			// _sum and _count carry the original (non-le) labels.
			h := histFor(s, f.name)
			for _, key := range h {
				_, labels := splitKey(key)
				hs := s.Hists[key]
				if err := writeSample(bw, f.name+"_sum", labels, formatPromValue(hs.Sum)); err != nil {
					return err
				}
				if err := writeSample(bw, f.name+"_count", labels, strconv.FormatInt(hs.Count, 10)); err != nil {
					return err
				}
			}
			continue
		}
		for _, smp := range f.samples {
			if err := writeSample(bw, f.name, smp.labels, smp.value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// histFor returns the snapshot keys whose sanitized base name is name,
// sorted, so _sum/_count lines come out deterministically.
func histFor(s Snapshot, name string) []string {
	var keys []string
	for key := range s.Hists {
		base, _ := splitKey(key)
		if sanitizeMetricName(base) == name {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

func writeSample(w io.Writer, name, labels, value string) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	}
	return err
}

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family: the samples sharing a base
// name, under the type its `# TYPE` line declared.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// ParsePrometheus reads text exposition format and validates it: every
// sample line must parse, every sample must belong to a family declared
// by a preceding `# TYPE` line, and histogram bucket counts must be
// cumulative with the `+Inf` bucket equal to `_count`. It returns the
// families keyed by base name. This is the checker behind the CI metrics
// scrape and `deployctl metrics -format prom`.
func ParsePrometheus(r io.Reader) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("prom: line %d: duplicate TYPE for %q", lineNo, name)
				}
				fams[name] = &PromFamily{Name: name, Type: typ}
			}
			continue
		}
		smp, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		fam := familyOf(fams, smp.Name)
		if fam == nil {
			return nil, fmt.Errorf("prom: line %d: sample %q has no TYPE declaration", lineNo, smp.Name)
		}
		fam.Samples = append(fam.Samples, smp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prom: %w", err)
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyOf resolves a sample name to its declared family, mapping
// histogram sub-series (_bucket, _sum, _count) back to the base family.
func familyOf(fams map[string]*PromFamily, name string) *PromFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f, ok := fams[base]; ok && f.Type == "histogram" {
			return f
		}
	}
	return nil
}

// parsePromSample parses `name{k="v",...} value [timestamp]`.
func parsePromSample(line string) (PromSample, error) {
	smp := PromSample{Labels: map[string]string{}}
	rest := line
	// Metric name: up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return smp, fmt.Errorf("malformed sample %q", line)
	}
	smp.Name = rest[:end]
	if !validPromName(smp.Name) {
		return smp, fmt.Errorf("invalid metric name %q", smp.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return smp, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[1:end], smp.Labels); err != nil {
			return smp, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return smp, fmt.Errorf("expected value (and optional timestamp) in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return smp, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	smp.Value = v
	return smp, nil
}

func validPromName(name string) bool {
	for i, r := range name {
		switch {
		case r == '_' || r == ':':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return name != ""
}

// parsePromLabels parses `k="v",k2="v2"` into dst, unescaping values.
func parsePromLabels(body string, dst map[string]string) error {
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label in %q", body)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validPromName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(rest[i])
				default:
					return fmt.Errorf("bad escape in label value %q", body)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		dst[key] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return nil
}

// validateHistogram checks the bucket contract per label signature: le
// values parse, counts are cumulative (non-decreasing by ascending le),
// the +Inf bucket exists and equals the matching _count sample.
func validateHistogram(fam *PromFamily) error {
	type bucket struct {
		le float64
		n  float64
	}
	buckets := map[string][]bucket{}
	counts := map[string]float64{}
	haveCount := map[string]bool{}
	for _, smp := range fam.Samples {
		sig := labelSignature(smp.Labels, "le")
		switch {
		case smp.Name == fam.Name+"_bucket":
			le, ok := smp.Labels["le"]
			if !ok {
				return fmt.Errorf("prom: %s bucket without le label", fam.Name)
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("prom: %s bucket le=%q: %v", fam.Name, le, err)
			}
			buckets[sig] = append(buckets[sig], bucket{le: ub, n: smp.Value})
		case smp.Name == fam.Name+"_count":
			counts[sig] = smp.Value
			haveCount[sig] = true
		}
	}
	for sig, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		prev := 0.0
		for _, b := range bs {
			if b.n < prev {
				return fmt.Errorf("prom: %s{%s}: bucket counts not cumulative", fam.Name, sig)
			}
			prev = b.n
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("prom: %s{%s}: missing +Inf bucket", fam.Name, sig)
		}
		if haveCount[sig] && numericDiffers(last.n, counts[sig]) {
			return fmt.Errorf("prom: %s{%s}: +Inf bucket %v != count %v", fam.Name, sig, last.n, counts[sig])
		}
	}
	return nil
}

// numericDiffers compares two exposition counts, which are exact
// integers carried as float64.
func numericDiffers(a, b float64) bool {
	return math.Abs(a-b) > 0.5
}

// labelSignature serializes labels minus the excluded keys, for grouping
// histogram series that differ only in le.
func labelSignature(labels map[string]string, exclude ...string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		skip := false
		for _, ex := range exclude {
			if k == ex {
				skip = true
				break
			}
		}
		if !skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}
