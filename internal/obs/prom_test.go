package obs_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nocdeploy/internal/obs"
)

func TestKeyBuildsSortedLabels(t *testing.T) {
	got := obs.Key("requests", "solver", "optimal", "outcome", "ok")
	want := `requests{outcome="ok",solver="optimal"}`
	if got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	if got := obs.Key("plain"); got != "plain" {
		t.Errorf("unlabelled Key = %q", got)
	}
	if got := obs.Key("x", "k", `a"b\c`); got != `x{k="a\"b\\c"}` {
		t.Errorf("escaped Key = %q", got)
	}
}

// TestWritePrometheusRoundTrip encodes a representative registry and
// re-parses it with the validating parser: every family must come back
// with its declared type, labelled counters must stay separate samples
// of one family, and the histogram bucket contract must hold.
func TestWritePrometheusRoundTrip(t *testing.T) {
	m := obs.NewMetrics()
	m.Add("http.requests", 7)
	m.Add(obs.Key("requests", "outcome", "ok"), 5)
	m.Add(obs.Key("requests", "outcome", "error"), 2)
	m.Set("queue.depth", 3)
	m.Set("cache.hit_ratio", 0.75)
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.8, 12} {
		m.Observe("stage.solve_seconds", v)
	}

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected our own exposition: %v\n%s", err, text)
	}

	if f := fams["http_requests_total"]; f == nil || f.Type != "counter" {
		t.Fatalf("missing counter http_requests_total in:\n%s", text)
	}
	rf := fams["requests_total"]
	if rf == nil || rf.Type != "counter" {
		t.Fatalf("missing labelled counter family requests_total in:\n%s", text)
	}
	outcomes := map[string]float64{}
	for _, s := range rf.Samples {
		outcomes[s.Labels["outcome"]] = s.Value
	}
	if outcomes["ok"] < 4.5 || outcomes["error"] < 1.5 {
		t.Fatalf("outcome samples %v, want ok=5 error=2", outcomes)
	}
	if f := fams["queue_depth"]; f == nil || f.Type != "gauge" {
		t.Fatalf("missing gauge queue_depth in:\n%s", text)
	}
	hf := fams["stage_solve_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("missing histogram stage_solve_seconds in:\n%s", text)
	}
	var count, inf float64
	for _, s := range hf.Samples {
		if s.Name == "stage_solve_seconds_count" {
			count = s.Value
		}
		if s.Name == "stage_solve_seconds_bucket" && s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
	}
	if count < 4.5 || math.Abs(count-inf) > 0.5 {
		t.Fatalf("histogram count %v, +Inf bucket %v, want 5 and equal", count, inf)
	}

	// Deterministic: same registry, same bytes.
	var again bytes.Buffer
	if err := obs.WritePrometheus(&again, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Error("two expositions of the same registry differ")
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"sample without TYPE", "orphan_metric 1\n"},
		{"bad value", "# TYPE m gauge\nm not-a-number\n"},
		{"unterminated labels", "# TYPE m gauge\nm{a=\"b\" 1\n"},
		{"unknown type", "# TYPE m wibble\nm 1\n"},
		{"duplicate TYPE", "# TYPE m gauge\n# TYPE m gauge\nm 1\n"},
		{"bad metric name", "# TYPE m gauge\n0m 1\n"},
		{"non-cumulative histogram", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n"},
		{"missing +Inf bucket", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_count 5\nh_sum 1\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 7\nh_sum 1\n"},
	}
	for _, tc := range cases {
		if _, err := obs.ParsePrometheus(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: parser accepted invalid exposition:\n%s", tc.name, tc.text)
		}
	}
}

func TestParsePrometheusLabelUnescaping(t *testing.T) {
	text := "# TYPE m_total counter\nm_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"
	fams, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	f := fams["m_total"]
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("families %v", fams)
	}
	if got := f.Samples[0].Labels["path"]; got != "a\\b\"c\nd" {
		t.Errorf("unescaped label %q", got)
	}
}
