package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// ProgressSink is the human ticker behind `deploy -progress`: a throttled
// one-line-per-update view of the solve on a terminal. It prints
// immediately on milestones (incumbent improvements, heuristic phase
// starts, solve begin/end) and at most once per interval otherwise,
// throttled by event time so a fake-clock trace renders deterministically.
type ProgressSink struct {
	mu       sync.Mutex
	w        io.Writer
	interval float64 // seconds of event time between periodic lines

	nodes     int
	incumbent float64
	bound     float64
	lastPrint float64
	closed    bool
	err       error
}

// NewProgressSink writes progress lines to w (conventionally os.Stderr,
// passed in by the command — library code never touches the process
// streams itself). interval ≤ 0 defaults to 500ms.
func NewProgressSink(w io.Writer, interval time.Duration) *ProgressSink {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &ProgressSink{
		w:         w,
		interval:  interval.Seconds(),
		incumbent: math.Inf(1),
		bound:     math.Inf(-1),
		lastPrint: math.Inf(-1),
	}
}

func (s *ProgressSink) printf(format string, args ...any) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, format, args...)
}

func (s *ProgressSink) line(t float64) {
	s.lastPrint = t
	inc, gap := "-", "-"
	if !math.IsInf(s.incumbent, 1) {
		inc = fmt.Sprintf("%.6g", s.incumbent)
		if !math.IsInf(s.bound, -1) {
			denom := math.Max(math.Abs(s.incumbent), 1e-12)
			gap = fmt.Sprintf("%.1f%%", 100*math.Max(0, (s.incumbent-s.bound)/denom))
		}
	}
	s.printf("progress: t=%.2fs nodes=%d incumbent=%s gap=%s\n", t, s.nodes, inc, gap)
}

// Write updates the tracked state and decides whether a line is due.
// Writes after Close are discarded.
func (s *ProgressSink) Write(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	switch e.Kind {
	case SolveStart:
		s.printf("progress: %s started\n", e.Label)
		s.lastPrint = e.T
		return
	case SolveDone:
		s.printf("progress: %s done (%s) obj=%.6g t=%.2fs\n", e.Label, e.Phase, e.Obj, e.T)
		s.lastPrint = e.T
		return
	case HeurPhaseStart:
		s.printf("progress: phase %s t=%.2fs\n", e.Phase, e.T)
		s.lastPrint = e.T
		return
	case BBNode:
		s.nodes = e.Node
	case BBIncumbent:
		s.incumbent = e.Obj
		s.line(e.T)
		return
	case BBBound:
		s.bound = e.Bound
	default:
		return
	}
	if e.T-s.lastPrint >= s.interval {
		s.line(e.T)
	}
}

// Close prints a final summary line. Idempotent: the summary is printed
// at most once, and subsequent calls return the first call's result.
func (s *ProgressSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.nodes > 0 {
		s.line(math.Max(s.lastPrint, 0))
	}
	return s.err
}
