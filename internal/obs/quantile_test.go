package obs_test

import (
	"math"
	"testing"

	"nocdeploy/internal/obs"
)

func histOf(values ...float64) obs.HistSnapshot {
	m := obs.NewMetrics()
	for _, v := range values {
		m.Observe("h", v)
	}
	return m.Snapshot().Hists["h"]
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestQuantileEmptyIsNaN(t *testing.T) {
	var h obs.HistSnapshot
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile is not NaN")
	}
}

// TestQuantileAtBucketBoundaries pins the boundary contract: when every
// observation sits exactly on a bucket's upper bound, the top quantile
// returns that bound exactly, and mid-quantiles are clamped back onto
// the observed min/max rather than interpolated below them.
func TestQuantileAtBucketBoundaries(t *testing.T) {
	h := histOf(1e-3, 1e-3, 1e-3, 1e-3) // all on the 1e-3 bound
	approx(t, "q1.0", h.Quantile(1), 1e-3, 0)
	approx(t, "q0.5", h.Quantile(0.5), 1e-3, 0) // clamped to Min == Max
	approx(t, "q0.0", h.Quantile(0), 1e-3, 0)

	// Rank exactly on the boundary between two buckets: 4 obs ≤ 1e-3,
	// 4 obs in (1e-3, 1e-2]; q=0.5 lands on the first bucket's
	// cumulative edge and must return its upper bound.
	h2 := histOf(1e-3, 1e-3, 1e-3, 1e-3, 1e-2, 1e-2, 1e-2, 1e-2)
	approx(t, "edge q0.5", h2.Quantile(0.5), 1e-3, 1e-12)
	approx(t, "edge q1.0", h2.Quantile(1), 1e-2, 1e-12)
}

func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	// 10 observations spread inside (0.1, 1]: the estimator cannot see
	// their positions, so quantiles interpolate linearly across the
	// bucket — q0.5 lands mid-bucket.
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 0.2 + 0.06*float64(i)
	}
	h := histOf(vals...)
	q := h.Quantile(0.5)
	if q < 0.2 || q > 0.74 {
		t.Errorf("q0.5 = %v outside observed range [0.2, 0.74]", q)
	}
	// Monotone in q.
	prev := math.Inf(-1)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
		v := h.Quantile(p)
		if v < prev {
			t.Fatalf("quantile not monotone: q%v=%v < %v", p, v, prev)
		}
		prev = v
	}
	// Out-of-range q clamps.
	approx(t, "q<0", h.Quantile(-1), h.Quantile(0), 0)
	approx(t, "q>1", h.Quantile(2), h.Quantile(1), 0)
}

func TestQuantileOverflowBucketUsesMax(t *testing.T) {
	h := histOf(5e6, 7e6) // beyond the last bound: overflow bucket
	approx(t, "overflow q1", h.Quantile(1), 7e6, 0)
	if q := h.Quantile(0.1); q < 5e6 || q > 7e6 {
		t.Errorf("overflow q0.1 = %v outside [5e6, 7e6]", q)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	m := obs.NewMetrics()
	m.Observe("h", 0.002)
	m.Observe("h", 0.4)
	before := m.Snapshot().Hists["h"]
	m.Observe("h", 0.5)
	m.Observe("h", 0.6)
	after := m.Snapshot().Hists["h"]

	d := after.Sub(before)
	if d.Count != 2 {
		t.Fatalf("window Count = %d, want 2", d.Count)
	}
	approx(t, "window Sum", d.Sum, 1.1, 1e-9)
	q := d.Quantile(1)
	if q < 0.4 || q > 1.0 {
		t.Errorf("window q1 = %v, want within (0.4, 1]", q)
	}
	// Subtracting an empty or mismatched snapshot returns the current one.
	if got := after.Sub(obs.HistSnapshot{}); got.Count != after.Count {
		t.Error("Sub(empty) did not return the full histogram")
	}
	// A reset (current < previous) falls back to the current snapshot.
	if got := before.Sub(after); got.Count != before.Count {
		t.Error("Sub across a reset did not fall back")
	}
}

func TestSnapshotDeltaFrom(t *testing.T) {
	m := obs.NewMetrics()
	m.Add("req", 3)
	m.Set("g", 7)
	m.Observe("h", 0.1)
	before := m.Snapshot()
	m.Add("req", 2)
	m.Set("g", 9)
	m.Observe("h", 0.2)
	after := m.Snapshot()

	d := after.DeltaFrom(before)
	if d.Counters["req"] != 2 {
		t.Errorf("counter delta %d, want 2", d.Counters["req"])
	}
	approx(t, "gauge passthrough", d.Gauges["g"], 9, 0)
	if d.Hists["h"].Count != 1 {
		t.Errorf("hist window count %d, want 1", d.Hists["h"].Count)
	}
}
