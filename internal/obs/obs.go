// Package obs is the solver stack's dependency-free observability layer:
// typed event tracing, a small metrics registry, and pluggable sinks.
//
// The design center is the no-perturbation rule: tracing must never change
// solver results. Solver code only ever *writes* to a Trace — nothing in
// this package feeds information back into a solve — and a nil *Trace is
// the disabled state, costing a single pointer test per emission site (see
// BenchmarkEmitNil). The determinism contract of internal/exp (tables
// byte-identical at any parallelism) therefore holds with tracing on or
// off, which TestDeterminismTracingInvariance proves.
//
// Architecture:
//
//	solver code ──Emit(Event)──▶ Trace ──fan-out──▶ Sink(s)
//
// A Trace stamps each event with a sequence number and a timestamp from an
// injectable clock (deterministic tests use a fake clock), then fans it
// out to its sinks under one mutex, so sinks observe a totally ordered
// event stream even when parallel branch & bound workers emit
// concurrently. Built-in sinks:
//
//   - JSONLSink: one JSON object per line, the archival format
//     (round-trips through encoding/json);
//   - ChromeSink: Chrome trace_event JSON for chrome://tracing and
//     Perfetto flame views of parallel workers;
//   - ProgressSink: a throttled human ticker for stderr;
//   - MetricsSink: aggregates events into a Metrics registry
//     (nodes, incumbent trajectory, bound gap, pool occupancy).
//
// Event order across concurrent emitters depends on goroutine scheduling,
// so trace files — unlike result tables — are not byte-reproducible for
// parallel runs; serial runs are (golden_test.go pins one).
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Sink consumes a totally ordered stream of events. Write is always called
// under the owning Trace's mutex, so implementations need no locking of
// their own unless they are shared between traces.
type Sink interface {
	Write(e Event)
	// Close flushes and releases the sink. A Trace closes its sinks in
	// registration order; the first error wins.
	Close() error
}

// Trace is the event hub handed to solver code. The nil *Trace is the
// disabled tracer: every method is nil-safe and Emit on nil returns
// immediately, so hot paths pay only the receiver nil test.
//
// A Trace is either a root (owns clock, sequence and sinks) or a
// request-scoped child made by WithRequest, which shares everything with
// its root but stamps a request ID onto every event it emits.
type Trace struct {
	mu    sync.Mutex
	now   func() time.Time
	start time.Time
	seq   int64
	sinks []Sink

	// Child traces delegate emission to root and tag events with req;
	// both are immutable after construction, so children need no locking
	// of their own.
	root *Trace
	req  string
}

// New returns a trace fanning events out to the given sinks, stamped with
// wall-clock time relative to the call.
func New(sinks ...Sink) *Trace {
	return NewWithClock(time.Now, sinks...)
}

// NewWithClock is New with an injectable clock, used by deterministic
// tests (golden fixtures) to pin event timestamps. now must be monotone
// non-decreasing; it is called once at construction (the trace epoch) and
// once per emitted event.
func NewWithClock(now func() time.Time, sinks ...Sink) *Trace {
	return &Trace{now: now, start: now(), sinks: sinks}
}

// Enabled reports whether events will be recorded. Emission sites inside
// tight loops should guard event construction with it.
func (t *Trace) Enabled() bool { return t != nil }

// WithRequest returns a request-scoped view of the trace: it shares the
// root's clock, sequence numbering and sinks, but every event emitted
// through it carries id in Event.Req. The deployment service mints one
// per admitted request and hands it to the solver, so a request's events
// can be sliced back out of the shared stream. Children of children
// re-parent onto the root. Nil-safe: a nil trace returns nil, keeping
// the disabled path free.
func (t *Trace) WithRequest(id string) *Trace {
	if t == nil {
		return nil
	}
	root := t
	if t.root != nil {
		root = t.root
	}
	return &Trace{root: root, req: id}
}

// Emit stamps e with the trace-relative timestamp and the next sequence
// number and hands it to every sink. Safe for concurrent use; a nil
// receiver discards the event. On a request-scoped trace the event is
// additionally stamped with the request ID before delegation to the
// root's sinks.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	if t.root != nil {
		e.Req = t.req
		t = t.root
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	e.T = t.now().Sub(t.start).Seconds()
	for _, s := range t.sinks {
		s.Write(e)
	}
	t.mu.Unlock()
}

// Close closes every sink in registration order and returns the first
// error. Nil-safe; closing a request-scoped child is a no-op — the root
// owns the sinks.
func (t *Trace) Close() error {
	if t == nil || t.root != nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = fmt.Errorf("obs: closing sink: %w", err)
		}
	}
	t.sinks = nil
	return first
}
