package obs

// Kind identifies what happened. Kinds are dotted strings, stable across
// releases: they are the vocabulary of archived JSONL traces.
type Kind string

// Event kinds, grouped by emitting subsystem.
const (
	// SolveStart/SolveDone bracket one top-level solve. Label names the
	// solver ("heuristic", "repair", "anneal", "optimal"); SolveDone
	// carries the objective in Obj and the outcome in Phase
	// ("feasible" / "infeasible" / a milp.Status string).
	SolveStart Kind = "solve.start"
	SolveDone  Kind = "solve.done"

	// BBNode: one branch & bound subproblem's LP relaxation was solved.
	// Node is the running node count, Depth the tree depth, Bound the
	// node's LP bound (model scale), Worker the solver worker.
	BBNode Kind = "bb.node"
	// BBIncumbent: a better integral solution was accepted. Obj is its
	// objective (model scale), Node the node count at acceptance.
	BBIncumbent Kind = "bb.incumbent"
	// BBBound: the global dual bound tightened (serial search only, where
	// the frontier minimum is cheap to observe). Bound is model-scale.
	BBBound Kind = "bb.bound"
	// BBPrune: a subproblem was discarded against the incumbent before or
	// after its LP solve. Depth/Bound describe the pruned node.
	BBPrune Kind = "bb.prune"
	// BBGap: the convergence state changed — a new incumbent was accepted
	// or the global dual bound tightened while an incumbent exists. Obj is
	// the incumbent objective, Bound the best proven bound (both model
	// scale) and Gap the relative optimality gap, all at the same instant,
	// so the event stream carries the convergence trajectory as a
	// first-class series (the substrate of live solve streaming: a client
	// can decide "good enough" from any single bb.gap event).
	BBGap Kind = "bb.gap"

	// LPSolve: one simplex solve finished. Iters is the total iteration
	// count, ItersP1 the phase-1 share, Phase the lp.Status string.
	LPSolve Kind = "lp.solve"
	// LPRefactor: the simplex refreshed its sparse basis factorization
	// mid-solve (periodic cadence or a stability trigger). Iters is the
	// number of eta-updated pivots the discarded factorization served.
	LPRefactor Kind = "lp.refactor"
	// LPWarmStart: a solve was seeded from Options.WarmBasis. Phase is
	// "ok" when the warm basis held or "fallback" when the solver reverted
	// to a cold start; Iters is the dual simplex pivot count.
	LPWarmStart Kind = "lp.warmstart"

	// HeurPhaseStart/HeurPhaseEnd bracket one phase of the three-phase
	// heuristic; Phase is "P1" (frequency & duplication), "P2"
	// (allocation) or "P3" (path selection). End events carry the phase
	// wall time in Dur.
	HeurPhaseStart Kind = "heur.phase.start"
	HeurPhaseEnd   Kind = "heur.phase.end"
	// HeurRepair: one repair round re-deployed after raising a level.
	// Node is the round number, Label the adjusted slot.
	HeurRepair Kind = "heur.repair"

	// AnnealAccept/AnnealReject: one Metropolis decision. Node is the
	// iteration, Obj the candidate's scalar energy (accept only).
	AnnealAccept Kind = "anneal.accept"
	AnnealReject Kind = "anneal.reject"

	// PoolTaskStart/PoolTaskDone bracket one work item on the experiment
	// runner pool. Node is the item index, Worker the pool worker; done
	// events carry the item wall time in Dur and "error" in Phase when
	// the item failed.
	PoolTaskStart Kind = "pool.task.start"
	PoolTaskDone  Kind = "pool.task.done"

	// ReqAdmit: the deployment service admitted one request. Label names
	// the requested solver; Phase is "sync" or "async". Always carries the
	// request ID in Req (as does every event of the solve it triggers —
	// see Trace.WithRequest).
	ReqAdmit Kind = "req.admit"
	// ReqStage: one serving stage of a request finished. Phase is the
	// stage name ("admission", "cache", "queue", "solve"), Dur the stage
	// wall time in seconds.
	ReqStage Kind = "req.stage"
	// ReqDone: the request finished. Phase is the outcome ("ok", "cached",
	// "coalesced", "cancelled", "rejected", "error"), Dur the end-to-end
	// service time in seconds.
	ReqDone Kind = "req.done"

	// EngineIter: the portfolio engine finished one round of operator
	// applications. Node is the round number, Obj the incumbent objective
	// after the round's reductions, Iters the total operator applications
	// so far. Emitted serially by the engine coordinator, so the engine
	// event stream is byte-identical at any worker count.
	EngineIter Kind = "engine.iter"
	// EngineOpApply: one solve operator finished one application. Label is
	// the operator name, Node the global application index, Obj the
	// candidate objective (the incumbent objective for a no-op), Bound the
	// operator's adaptive score after the reward update, Dur the
	// application wall time in seconds, and Phase the outcome:
	// "improved" (new incumbent), "feasible" (valid but not better),
	// "infeasible" (candidate failed validation) or "noop" (the operator
	// produced nothing).
	EngineOpApply Kind = "engine.op.apply"
	// EngineWeights: the engine's adaptive operator weights after one
	// round. Node is the round number; Label renders the weights
	// compactly as "op=score,op=score,…" in operator order.
	EngineWeights Kind = "engine.weights"

	// ArchiveRecord: the solve archive persisted one solve record
	// (internal/archive). Label names the solver, Phase the recorded
	// outcome, Node the encoded record size in bytes and Dur the append
	// wall time in seconds — the write happened on the archive's async
	// writer, never on the solve path.
	ArchiveRecord Kind = "archive.record"
	// ArchiveAdvise: the history-driven advisor resolved a solver=auto
	// request. Label is the recommended solver, Phase the decision basis
	// ("instance", "family", "global" or "default") and Node the number of
	// archived records consulted.
	ArchiveAdvise Kind = "archive.advise"

	// StreamGap: an in-band drop marker synthesized by a BroadcastSink
	// subscription, never emitted through a Trace. A slow subscriber whose
	// bounded buffer overflowed sees exactly one StreamGap in place of the
	// evicted events; Node is how many events were dropped since the
	// previous marker. Seq is zero — the marker is not part of the trace's
	// total order, it documents a hole in this subscriber's view of it.
	StreamGap Kind = "stream.gap"
)

// Event is one observation. The zero value of every optional field is
// omitted from JSON, so archived JSONL stays compact; which fields are
// meaningful per kind is documented on the Kind constants.
//
// Seq and T are stamped by Trace.Emit: Seq is the 1-based total order of
// the event stream, T the time in seconds since the trace epoch.
type Event struct {
	Seq     int64   `json:"seq"`
	T       float64 `json:"t"`
	Kind    Kind    `json:"kind"`
	Req     string  `json:"req,omitempty"` // originating request ID (service solves)
	Worker  int     `json:"worker,omitempty"`
	Node    int     `json:"node,omitempty"`
	Depth   int     `json:"depth,omitempty"`
	Obj     float64 `json:"obj,omitempty"`
	Bound   float64 `json:"bound,omitempty"`
	Gap     float64 `json:"gap,omitempty"` // relative optimality gap (bb.gap)
	Iters   int     `json:"iters,omitempty"`
	ItersP1 int     `json:"itersP1,omitempty"`
	Dur     float64 `json:"dur,omitempty"` // seconds
	Phase   string  `json:"phase,omitempty"`
	Label   string  `json:"label,omitempty"`
}
