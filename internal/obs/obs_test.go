package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"nocdeploy/internal/obs"
)

// fakeClock returns a deterministic clock advancing step per call. The
// first call (made by NewWithClock for the trace epoch) returns
// epoch+step, so the first emitted event lands at T = step seconds.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(1_000_000, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

// collectSink buffers events for assertions.
type collectSink struct{ events []obs.Event }

func (c *collectSink) Write(e obs.Event) { c.events = append(c.events, e) }
func (c *collectSink) Close() error      { return nil }

func TestNilTraceSafe(t *testing.T) {
	var tr *obs.Trace
	if tr.Enabled() {
		t.Error("nil trace reports Enabled")
	}
	tr.Emit(obs.Event{Kind: obs.BBNode, Node: 1}) // must not panic
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestEmitStampsSeqAndTime(t *testing.T) {
	sink := &collectSink{}
	tr := obs.NewWithClock(fakeClock(10*time.Millisecond), sink)
	if !tr.Enabled() {
		t.Fatal("constructed trace not enabled")
	}
	for i := 0; i < 3; i++ {
		tr.Emit(obs.Event{Kind: obs.BBNode, Node: i})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink.events) != 3 {
		t.Fatalf("got %d events, want 3", len(sink.events))
	}
	for i, e := range sink.events {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
		want := float64(i+1) * 0.01
		if diff := e.T - want; diff < -1e-12 || diff > 1e-12 {
			t.Errorf("event %d: T = %v, want %v", i, e.T, want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewWithClock(fakeClock(time.Millisecond), obs.NewJSONLSink(&buf))
	emitted := []obs.Event{
		{Kind: obs.SolveStart, Label: "heuristic"},
		{Kind: obs.BBNode, Node: 7, Depth: 2, Bound: -3.25, Worker: 1},
		{Kind: obs.BBIncumbent, Obj: -2.5, Node: 7},
		{Kind: obs.LPSolve, Iters: 12, ItersP1: 4, Phase: "optimal"},
		{Kind: obs.PoolTaskDone, Node: 3, Worker: 2, Dur: 0.125, Phase: "error"},
		{Kind: obs.SolveDone, Label: "heuristic", Obj: -2.5, Phase: "feasible"},
	}
	for _, e := range emitted {
		tr.Emit(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(emitted) {
		t.Fatalf("round-tripped %d events, want %d", len(got), len(emitted))
	}
	for i, e := range emitted {
		e.Seq = int64(i + 1)
		e.T = float64(i+1) * 0.001
		if got[i] != e {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], e)
		}
	}
}

func TestMetricsSnapshotStableJSON(t *testing.T) {
	m := obs.NewMetrics()
	m.Add("bb.nodes", 41)
	m.Add("lp.solves", 99)
	m.Set("bb.incumbent", -2.5)
	m.SetMax("pool.active_max", 4)
	m.Observe("lp.iters_per_solve", 12)
	m.Observe("lp.iters_per_solve", 30)
	m.Append("bb.gap", 0.5, 0.1)
	m.Append("bb.gap", 1.0, 0.0)

	var a, b bytes.Buffer
	if err := m.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two snapshots of the same registry differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	var decoded map[string]any
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "series"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot missing %q section:\n%s", key, a.String())
		}
	}
}

// TestChromeSinkFormat validates the Chrome trace against the trace_event
// JSON-array contract: the file parses as one array, every entry carries
// ph/pid/name, and duration begins and ends pair up.
func TestChromeSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewWithClock(fakeClock(time.Millisecond), obs.NewChromeSink(&buf))
	tr.Emit(obs.Event{Kind: obs.SolveStart, Label: "optimal"})
	tr.Emit(obs.Event{Kind: obs.HeurPhaseStart, Phase: "P1"})
	tr.Emit(obs.Event{Kind: obs.HeurPhaseEnd, Phase: "P1", Dur: 0.001})
	tr.Emit(obs.Event{Kind: obs.BBNode, Node: 1, Depth: 0, Bound: -3.25})
	tr.Emit(obs.Event{Kind: obs.BBIncumbent, Obj: -2.5, Node: 1})
	tr.Emit(obs.Event{Kind: obs.BBBound, Bound: -3.0, Node: 1})
	tr.Emit(obs.Event{Kind: obs.PoolTaskStart, Node: 0, Worker: 1})
	tr.Emit(obs.Event{Kind: obs.PoolTaskDone, Node: 0, Worker: 1, Dur: 0.01})
	tr.Emit(obs.Event{Kind: obs.SolveDone, Label: "optimal", Obj: -2.5, Phase: "feasible"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var entries []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(entries) == 0 {
		t.Fatal("chrome trace is empty")
	}
	begins, ends := 0, 0
	for i, e := range entries {
		for _, key := range []string{"ph", "pid", "name"} {
			if _, ok := e[key]; !ok {
				t.Errorf("entry %d missing %q: %v", i, key, e)
			}
		}
		switch e["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		case "i", "C", "M":
		default:
			t.Errorf("entry %d has unexpected phase %v", i, e["ph"])
		}
	}
	if begins != ends {
		t.Errorf("unbalanced duration events: %d B vs %d E", begins, ends)
	}
}

func TestProgressSinkDeterministic(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewWithClock(fakeClock(time.Second), obs.NewProgressSink(&buf, 500*time.Millisecond))
	tr.Emit(obs.Event{Kind: obs.SolveStart, Label: "optimal"})
	tr.Emit(obs.Event{Kind: obs.BBNode, Node: 1})
	tr.Emit(obs.Event{Kind: obs.BBIncumbent, Obj: 1.5, Node: 1})
	tr.Emit(obs.Event{Kind: obs.BBBound, Bound: 1.0})
	tr.Emit(obs.Event{Kind: obs.BBNode, Node: 2})
	tr.Emit(obs.Event{Kind: obs.SolveDone, Label: "optimal", Obj: 1.5, Phase: "feasible"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for i, l := range lines {
		if !strings.HasPrefix(l, "progress: ") {
			t.Errorf("line %d lacks progress prefix: %q", i, l)
		}
	}
	for _, want := range []string{"optimal started", "incumbent=1.5", "gap=", "optimal done (feasible)"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	// Same fake clock, same events — output must be reproducible.
	var buf2 bytes.Buffer
	tr2 := obs.NewWithClock(fakeClock(time.Second), obs.NewProgressSink(&buf2, 500*time.Millisecond))
	for _, e := range []obs.Event{
		{Kind: obs.SolveStart, Label: "optimal"},
		{Kind: obs.BBNode, Node: 1},
		{Kind: obs.BBIncumbent, Obj: 1.5, Node: 1},
		{Kind: obs.BBBound, Bound: 1.0},
		{Kind: obs.BBNode, Node: 2},
		{Kind: obs.SolveDone, Label: "optimal", Obj: 1.5, Phase: "feasible"},
	} {
		tr2.Emit(e)
	}
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Errorf("progress output not deterministic:\n%s\nvs\n%s", out, buf2.String())
	}
}

// BenchmarkEmitNil measures the disabled-tracer cost paid by every
// emission site: one nil receiver test. This is the overhead tracing adds
// to an untraced solve.
func BenchmarkEmitNil(b *testing.B) {
	var tr *obs.Trace
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.BBNode, Node: i})
		}
	}
}

// BenchmarkEmitJSONL measures the enabled cost of one event through the
// mutex, the encoder and a discarded destination.
func BenchmarkEmitJSONL(b *testing.B) {
	tr := obs.New(obs.NewJSONLSink(io.Discard))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(obs.Event{Kind: obs.BBNode, Node: i, Depth: 3, Bound: -1.5})
	}
	b.StopTimer()
	if err := tr.Close(); err != nil {
		b.Fatal(err)
	}
}
