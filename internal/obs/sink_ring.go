package obs

import "sync"

// RingSink keeps the most recent events in a fixed-size ring buffer, the
// retention layer behind the deployment service's per-request trace
// endpoint: the full stream flows through, the last capacity events stay
// addressable by request ID. Unlike the write-only sinks it is also read
// concurrently (HTTP handlers snapshot it while solves emit), so it
// carries its own mutex.
type RingSink struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // events currently held
	dropped int64
}

// NewRingSink returns a ring holding at most capacity events (at least
// one).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Write appends e, evicting the oldest event when full.
func (s *RingSink) Write(e Event) {
	s.mu.Lock()
	if s.n < len(s.buf) {
		s.buf[(s.start+s.n)%len(s.buf)] = e
		s.n++
	} else {
		s.buf[s.start] = e
		s.start = (s.start + 1) % len(s.buf)
		s.dropped++
	}
	s.mu.Unlock()
}

// Close is a no-op; the ring stays readable after the trace closes.
func (s *RingSink) Close() error { return nil }

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(s.start+i)%len(s.buf)])
	}
	return out
}

// ForRequest returns the retained events carrying request ID id, oldest
// first — the per-request trace slice. Empty when the request emitted
// nothing or its events have already been evicted.
func (s *RingSink) ForRequest(id string) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for i := 0; i < s.n; i++ {
		if e := s.buf[(s.start+i)%len(s.buf)]; e.Req == id {
			out = append(out, e)
		}
	}
	return out
}

// Dropped reports how many events have been evicted since construction —
// a retention-pressure gauge.
func (s *RingSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len reports how many events are currently retained.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
