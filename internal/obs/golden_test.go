package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nocdeploy/internal/lp"
	"nocdeploy/internal/milp"
	"nocdeploy/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace fixtures")

// tinyKnapsack is a 3-item knapsack (max 3x+4y+5z s.t. 2x+3y+4z ≤ 4,
// binaries) whose LP relaxation is fractional, so the serial branch &
// bound branches, improves the incumbent and prunes — exercising every
// bb.* and lp.* event kind on a solve small enough to pin byte-for-byte.
func tinyKnapsack() *milp.Model {
	m := milp.NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	z := m.AddBinary("z")
	m.SetObjective(milp.NewExpr(0).Add(x, -3).Add(y, -4).Add(z, -5))
	m.AddConstr(milp.NewExpr(0).Add(x, 2).Add(y, 3).Add(z, 4), lp.LE, 4)
	return m
}

// TestGoldenTraceJSONL solves a fixed model under an injected clock and
// compares the JSONL event stream byte-for-byte against
// testdata/golden.jsonl. Run with -update to regenerate after a
// deliberate event-schema or search-order change. A drift here means the
// trace format or the serial search order changed — both are contracts.
func TestGoldenTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewWithClock(fakeClock(time.Millisecond), obs.NewJSONLSink(&buf))
	res, err := tinyKnapsack().Solve(milp.SolveOptions{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.Optimal {
		t.Fatalf("solve status = %v, want Optimal", res.Status)
	}
	if res.Obj != -5 { //lint:allow floateq — exact integral optimum of an integer model
		t.Fatalf("objective = %v, want -5", res.Obj)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "golden.jsonl")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (run `go test ./internal/obs -run Golden -update` to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace drifted from golden fixture.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}

	// The stream must round-trip through encoding/json and contain the
	// expected event mix.
	events, err := obs.ReadJSONL(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden fixture does not round-trip: %v", err)
	}
	counts := map[obs.Kind]int{}
	var lastSeq int64
	for _, e := range events {
		counts[e.Kind]++
		if e.Seq <= lastSeq {
			t.Errorf("Seq not strictly increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	for _, k := range []obs.Kind{obs.BBNode, obs.BBIncumbent, obs.BBBound, obs.LPSolve} {
		if counts[k] == 0 {
			t.Errorf("golden trace has no %s events; model no longer exercises the search", k)
		}
	}
	if counts[obs.LPSolve] != counts[obs.BBNode] {
		t.Errorf("lp.solve count %d != bb.node count %d; every evaluated node solves one LP",
			counts[obs.LPSolve], counts[obs.BBNode])
	}

	// Incumbent trajectory in Result mirrors the bb.incumbent events.
	if len(res.Incumbents) != counts[obs.BBIncumbent] {
		t.Errorf("Result.Incumbents has %d entries, trace has %d bb.incumbent events",
			len(res.Incumbents), counts[obs.BBIncumbent])
	}
	if n := len(res.Incumbents); n == 0 || res.Incumbents[n-1].Obj != -5 { //lint:allow floateq — exact integral optimum
		t.Errorf("incumbent trajectory %+v does not end at the optimum", res.Incumbents)
	}
}

// TestTraceDoesNotPerturbSolve pins the no-perturbation rule at the milp
// level: the same model solved with and without a trace returns identical
// results.
func TestTraceDoesNotPerturbSolve(t *testing.T) {
	plain, err := tinyKnapsack().Solve(milp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.NewJSONLSink(&bytes.Buffer{}))
	traced, err := tinyKnapsack().Solve(milp.SolveOptions{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if plain.Status != traced.Status || plain.Obj != traced.Obj || plain.Nodes != traced.Nodes { //lint:allow floateq — identical code paths must produce identical bits
		t.Errorf("tracing perturbed the solve: plain {%v %v %d} vs traced {%v %v %d}",
			plain.Status, plain.Obj, plain.Nodes, traced.Status, traced.Obj, traced.Nodes)
	}
	for i := range plain.X {
		if plain.X[i] != traced.X[i] { //lint:allow floateq — identical code paths must produce identical bits
			t.Errorf("solution vector differs at %d: %v vs %v", i, plain.X[i], traced.X[i])
		}
	}
}
