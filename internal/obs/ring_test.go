package obs_test

import (
	"fmt"
	"testing"

	"nocdeploy/internal/obs"
)

// TestRingSinkOccupancyExact pins the occupancy accounting the service's
// trace.ring_events gauge copies out: exact at empty, partial, full, and
// steady-state overflow.
func TestRingSinkOccupancyExact(t *testing.T) {
	const capacity = 4
	ring := obs.NewRingSink(capacity)
	if got := ring.Len(); got != 0 {
		t.Fatalf("empty ring Len = %d, want 0", got)
	}
	if got := ring.Dropped(); got != 0 {
		t.Fatalf("empty ring Dropped = %d, want 0", got)
	}
	for i := 1; i <= capacity-1; i++ {
		ring.Write(obs.Event{Kind: obs.BBNode, Seq: int64(i)})
		if got := ring.Len(); got != i {
			t.Fatalf("after %d writes Len = %d, want %d", i, got, i)
		}
	}
	ring.Write(obs.Event{Kind: obs.BBNode, Seq: capacity})
	if got := ring.Len(); got != capacity {
		t.Fatalf("full ring Len = %d, want %d", got, capacity)
	}
	// Overflow: occupancy pins at capacity, drops count the rest exactly.
	for i := capacity + 1; i <= 3*capacity; i++ {
		ring.Write(obs.Event{Kind: obs.BBNode, Seq: int64(i)})
		if got := ring.Len(); got != capacity {
			t.Fatalf("after overflow write %d Len = %d, want %d", i, got, capacity)
		}
	}
	if got := ring.Dropped(); got != 2*capacity {
		t.Fatalf("Dropped = %d, want %d", got, 2*capacity)
	}
}

// TestRingSinkForRequestAcrossWraparound interleaves two requests through
// several full wraps of the ring and checks ForRequest returns exactly
// the retained slice of one request — oldest first, eviction respected,
// no leakage from the other request.
func TestRingSinkForRequestAcrossWraparound(t *testing.T) {
	const capacity, writes = 5, 23
	ring := obs.NewRingSink(capacity)
	req := func(i int) string { return fmt.Sprintf("r%d", i%2) }
	for i := 1; i <= writes; i++ {
		ring.Write(obs.Event{Kind: obs.BBNode, Seq: int64(i), Node: i, Req: req(i)})
	}
	// Retained window is the last `capacity` writes.
	first := writes - capacity + 1
	for _, id := range []string{"r0", "r1"} {
		var want []int
		for i := first; i <= writes; i++ {
			if req(i) == id {
				want = append(want, i)
			}
		}
		got := ring.ForRequest(id)
		if len(got) != len(want) {
			t.Fatalf("ForRequest(%s) returned %d events, want %d", id, len(got), len(want))
		}
		for j, e := range got {
			if e.Node != want[j] || e.Req != id {
				t.Errorf("ForRequest(%s)[%d] = Node %d Req %s, want Node %d", id, j, e.Node, e.Req, want[j])
			}
			if j > 0 && e.Seq <= got[j-1].Seq {
				t.Errorf("ForRequest(%s) not oldest-first at %d", id, j)
			}
		}
	}
	if got := ring.ForRequest("r9"); len(got) != 0 {
		t.Fatalf("unknown request returned %d events", len(got))
	}
	// A request whose events all predate the retained window slices empty.
	ring2 := obs.NewRingSink(2)
	ring2.Write(obs.Event{Seq: 1, Req: "old"})
	ring2.Write(obs.Event{Seq: 2, Req: "new"})
	ring2.Write(obs.Event{Seq: 3, Req: "new"})
	if got := ring2.ForRequest("old"); len(got) != 0 {
		t.Fatalf("evicted request still returned %d events", len(got))
	}
}
