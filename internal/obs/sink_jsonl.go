package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONLSink writes one JSON object per event, newline-delimited — the
// archival trace format. Every line round-trips through encoding/json back
// into an Event. Output is buffered; Close flushes and, when the
// destination is an io.Closer, closes it. Close is idempotent (it
// remembers its first result) and safe concurrent with Write: a write
// racing the close is either flushed or cleanly discarded, never torn.
type JSONLSink struct {
	mu     sync.Mutex
	w      io.Writer
	buf    *bufio.Writer
	enc    *json.Encoder
	err    error // first write error, surfaced by Close
	closed bool
}

// NewJSONLSink wraps w. The caller keeps ownership of w unless it
// implements io.Closer, in which case Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	buf := bufio.NewWriter(w)
	return &JSONLSink{w: w, buf: buf, enc: json.NewEncoder(buf)}
}

// Write encodes e as one line. Errors are sticky and reported by Close so
// emission sites stay error-free. Writes after Close are discarded.
func (s *JSONLSink) Write(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		return
	}
	s.err = s.enc.Encode(e)
}

// Close flushes the buffer and closes the destination if it is closable.
// Subsequent calls return the first call's result without re-closing the
// destination.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	flushErr := s.buf.Flush()
	if s.err == nil {
		s.err = flushErr
	}
	if c, ok := s.w.(io.Closer); ok {
		if err := c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ScanJSONL decodes a JSONL trace one event at a time, calling fn for
// each — the streaming inverse of JSONLSink, for consumers (archive
// trajectory folding, trace-slice validation) that must not materialize
// an O(file) slice. Decoding is line-oriented: blank lines are skipped,
// and a line that is not a valid event object (corrupt, or a final line
// truncated by a crashed writer) stops the scan with an error naming its
// 1-based line number; every event before the bad line has already been
// delivered, so a torn trace yields its intact prefix. A non-nil error
// from fn stops the scan and is returned verbatim.
func ScanJSONL(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("obs: jsonl line %d: %w", lineNo, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: jsonl line %d: %w", lineNo+1, err)
	}
	return nil
}

// ReadJSONL decodes a whole JSONL trace back into events — ScanJSONL
// materialized, used by tests and analysis tooling that want the slice.
// A decode error still returns every event before the bad line.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	err := ScanJSONL(r, func(e Event) error {
		out = append(out, e)
		return nil
	})
	return out, err
}
