package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// JSONLSink writes one JSON object per event, newline-delimited — the
// archival trace format. Every line round-trips through encoding/json back
// into an Event. Output is buffered; Close flushes and, when the
// destination is an io.Closer, closes it.
type JSONLSink struct {
	w   io.Writer
	buf *bufio.Writer
	enc *json.Encoder
	err error // first write error, surfaced by Close
}

// NewJSONLSink wraps w. The caller keeps ownership of w unless it
// implements io.Closer, in which case Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	buf := bufio.NewWriter(w)
	return &JSONLSink{w: w, buf: buf, enc: json.NewEncoder(buf)}
}

// Write encodes e as one line. Errors are sticky and reported by Close so
// emission sites stay error-free.
func (s *JSONLSink) Write(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Close flushes the buffer and closes the destination if it is closable.
func (s *JSONLSink) Close() error {
	flushErr := s.buf.Flush()
	if s.err == nil {
		s.err = flushErr
	}
	if c, ok := s.w.(io.Closer); ok {
		if err := c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ReadJSONL decodes a JSONL trace back into events — the inverse of
// JSONLSink, used by tests and analysis tooling.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
