package obs

import (
	"io"
	"os"
)

// CLISetup wires the standard command-line observability surface shared by
// cmd/deploy and cmd/experiments: a trace writing PREFIX.jsonl (the raw
// event stream) and PREFIX.trace.json (Chrome trace_event JSON for
// Perfetto / chrome://tracing), an optional metrics snapshot file, and an
// optional human progress ticker.
type CLISetup struct {
	// Trace is the configured trace, or nil when no sink was requested —
	// passing it straight to the solvers then costs nothing.
	Trace *Trace

	metrics     *Metrics
	metricsPath string
}

// NewCLISetup opens the requested sinks. An empty tracePrefix or
// metricsPath and a nil progress writer each disable the corresponding
// sink; when nothing is requested the returned setup carries a nil Trace.
func NewCLISetup(tracePrefix, metricsPath string, progress io.Writer) (*CLISetup, error) {
	s := &CLISetup{metricsPath: metricsPath}
	var sinks []Sink
	if tracePrefix != "" {
		jf, err := os.Create(tracePrefix + ".jsonl")
		if err != nil {
			return nil, err
		}
		cf, err := os.Create(tracePrefix + ".trace.json")
		if err != nil {
			jf.Close() //lint:allow errdrop — already failing; nothing was written to jf
			return nil, err
		}
		sinks = append(sinks, NewJSONLSink(jf), NewChromeSink(cf))
	}
	if metricsPath != "" {
		s.metrics = NewMetrics()
		sinks = append(sinks, NewMetricsSink(s.metrics))
	}
	if progress != nil {
		sinks = append(sinks, NewProgressSink(progress, 0))
	}
	if len(sinks) > 0 {
		s.Trace = New(sinks...)
	}
	return s, nil
}

// Close closes the trace (flushing every sink) and then writes the metrics
// snapshot, so the snapshot reflects the complete event stream. The first
// error wins.
func (s *CLISetup) Close() error {
	err := s.Trace.Close()
	if s.metrics != nil && s.metricsPath != "" {
		f, ferr := os.Create(s.metricsPath)
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			return err
		}
		if werr := s.metrics.WriteJSON(f); werr != nil && err == nil {
			err = werr
		}
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
