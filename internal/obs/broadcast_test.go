package obs

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// collect drains sub until io.EOF, returning everything read.
func collect(t *testing.T, sub *Subscription) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var got []Event
	for {
		e, err := sub.Next(ctx)
		if errors.Is(err, io.EOF) {
			return got
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, e)
	}
}

func TestBroadcastFanOut(t *testing.T) {
	b := NewBroadcastSink()
	all := b.Subscribe(SubscribeOptions{})
	only7 := b.Subscribe(SubscribeOptions{Req: "req-7"})
	incOnly := b.Subscribe(SubscribeOptions{Kinds: []Kind{BBIncumbent}})

	if got := b.Subscribers(); got != 3 {
		t.Fatalf("Subscribers() = %d, want 3", got)
	}
	b.Write(Event{Kind: BBNode, Req: "req-7", Node: 1})
	b.Write(Event{Kind: BBIncumbent, Req: "req-8", Obj: 5})
	b.Write(Event{Kind: BBIncumbent, Req: "req-7", Obj: 4})
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if got := collect(t, all); len(got) != 3 {
		t.Errorf("unfiltered subscriber got %d events, want 3", len(got))
	}
	got7 := collect(t, only7)
	if len(got7) != 2 {
		t.Fatalf("req-filtered subscriber got %d events, want 2", len(got7))
	}
	for _, e := range got7 {
		if e.Req != "req-7" {
			t.Errorf("req filter leaked event for %q", e.Req)
		}
	}
	gotInc := collect(t, incOnly)
	if len(gotInc) != 2 {
		t.Fatalf("kind-filtered subscriber got %d events, want 2", len(gotInc))
	}
	for _, e := range gotInc {
		if e.Kind != BBIncumbent {
			t.Errorf("kind filter leaked %q", e.Kind)
		}
	}
}

// TestBroadcastStalledSubscriberNeverBlocks is the backpressure contract:
// a subscriber that never reads must not delay Write. The writer pushes
// far more events than the buffer holds from the test goroutine — if any
// Write could block on the stalled subscriber, the test would deadlock
// and time out. Afterwards the drop accounting must be exact and the
// subscriber's first read must be the in-band gap marker.
func TestBroadcastStalledSubscriberNeverBlocks(t *testing.T) {
	const buffer, writes = 8, 1000
	b := NewBroadcastSink()
	sub := b.Subscribe(SubscribeOptions{Buffer: buffer})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writes; i++ {
			b.Write(Event{Kind: BBNode, Node: i, Seq: int64(i + 1)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("writer blocked on a stalled subscriber")
	}

	wantDropped := int64(writes - buffer)
	if got := sub.Dropped(); got != wantDropped {
		t.Errorf("sub.Dropped() = %d, want %d", got, wantDropped)
	}
	if got := b.Dropped(); got != wantDropped {
		t.Errorf("sink.Dropped() = %d, want %d", got, wantDropped)
	}

	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := collect(t, sub)
	if len(got) != buffer+1 {
		t.Fatalf("drained %d events, want %d (gap marker + buffer)", len(got), buffer+1)
	}
	gap := got[0]
	if gap.Kind != StreamGap || int64(gap.Node) != wantDropped {
		t.Fatalf("first read = %+v, want StreamGap with Node=%d", gap, wantDropped)
	}
	// Drop-oldest: the survivors are exactly the newest `buffer` events,
	// in order.
	for i, e := range got[1:] {
		if want := writes - buffer + i; e.Node != want {
			t.Errorf("survivor[%d].Node = %d, want %d", i, e.Node, want)
		}
	}
}

func TestBroadcastGapMarkerPrecedesSurvivors(t *testing.T) {
	b := NewBroadcastSink()
	sub := b.Subscribe(SubscribeOptions{Buffer: 2, Req: "r"})
	for i := 1; i <= 5; i++ {
		b.Write(Event{Kind: BBNode, Req: "r", Node: i})
	}
	ctx := context.Background()
	e, err := sub.Next(ctx)
	if err != nil || e.Kind != StreamGap || e.Node != 3 || e.Req != "r" {
		t.Fatalf("first read = %+v, %v; want StreamGap Node=3 Req=r", e, err)
	}
	for want := 4; want <= 5; want++ {
		e, err = sub.Next(ctx)
		if err != nil || e.Node != want {
			t.Fatalf("read = %+v, %v; want Node=%d", e, err, want)
		}
	}
	sub.Close()
	if _, err := sub.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}

func TestBroadcastSubscriptionClose(t *testing.T) {
	b := NewBroadcastSink()
	sub := b.Subscribe(SubscribeOptions{})
	b.Write(Event{Kind: BBNode, Node: 1})
	sub.Close()
	sub.Close() // idempotent
	if got := b.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() after sub.Close = %d, want 0", got)
	}
	// Buffered remainder still drains before EOF.
	if got := collect(t, sub); len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("drained %+v, want the one buffered event", got)
	}
	// Writes after detach are discarded, not delivered and not counted.
	b.Write(Event{Kind: BBNode, Node: 2})
	if got := b.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d, want 0", got)
	}
}

func TestBroadcastSubscribeAfterClose(t *testing.T) {
	b := NewBroadcastSink()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	sub := b.Subscribe(SubscribeOptions{})
	if _, err := sub.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Fatalf("Next on post-close subscription = %v, want io.EOF", err)
	}
}

func TestBroadcastNextContextCancel(t *testing.T) {
	b := NewBroadcastSink()
	sub := b.Subscribe(SubscribeOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Next(ctx)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not observe cancellation")
	}
}

// TestBroadcastConcurrentChurn exercises attach/detach/read racing a
// writer and a late sink Close — primarily a race-detector target.
func TestBroadcastConcurrentChurn(t *testing.T) {
	b := NewBroadcastSink()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				b.Write(Event{Kind: BBNode, Node: i})
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub := b.Subscribe(SubscribeOptions{Buffer: 4})
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				for {
					if _, err := sub.Next(ctx); err != nil {
						break
					}
				}
				cancel()
				sub.Close()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
