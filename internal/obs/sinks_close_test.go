package obs

import (
	"io"
	"sync"
	"testing"
)

// TestSinkCloseHygiene pins the lifecycle contract shared by every sink:
// Close is idempotent (second call returns the first call's result, with
// no double side effects) and safe to call concurrently with Write, and
// Write after Close is a discard, never a panic. Writes run from a single
// goroutine — mirroring the Trace mutex that serializes them in
// production — while Close races from another.
func TestSinkCloseHygiene(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Sink
	}{
		{"jsonl", func() Sink { return NewJSONLSink(io.Discard) }},
		{"chrome", func() Sink { return NewChromeSink(io.Discard) }},
		{"progress", func() Sink { return NewProgressSink(io.Discard, 0) }},
		{"metrics", func() Sink { return NewMetricsSink(NewMetrics()) }},
		{"ring", func() Sink { return NewRingSink(16) }},
		{"broadcast", func() Sink { return NewBroadcastSink() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			start := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 500; i++ {
					s.Write(Event{Kind: BBIncumbent, Seq: int64(i + 1), Obj: float64(i)})
				}
			}()
			var first, second error
			go func() {
				defer wg.Done()
				<-start
				first = s.Close()
				second = s.Close()
			}()
			close(start)
			wg.Wait()
			if first != second {
				t.Errorf("Close not idempotent: first=%v second=%v", first, second)
			}
			if err := s.Close(); err != first {
				t.Errorf("third Close = %v, want %v", err, first)
			}
			// Post-close writes must be discarded without panicking.
			s.Write(Event{Kind: BBBound, Bound: 1})
		})
	}
}
