package obs_test

import (
	"errors"
	"strings"
	"testing"

	"nocdeploy/internal/obs"
)

func TestScanJSONLStreams(t *testing.T) {
	in := `{"seq":1,"kind":"solve.start","label":"anneal"}
{"seq":2,"kind":"solve.done","label":"anneal"}
`
	var kinds []obs.Kind
	err := obs.ScanJSONL(strings.NewReader(in), func(e obs.Event) error {
		kinds = append(kinds, e.Kind)
		return nil
	})
	if err != nil {
		t.Fatalf("ScanJSONL: %v", err)
	}
	if len(kinds) != 2 || kinds[0] != obs.SolveStart || kinds[1] != obs.SolveDone {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestScanJSONLFnErrorReturnedVerbatim(t *testing.T) {
	in := `{"seq":1,"kind":"solve.start"}
{"seq":2,"kind":"solve.done"}
`
	sentinel := errors.New("stop here")
	calls := 0
	err := obs.ScanJSONL(strings.NewReader(in), func(obs.Event) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the fn error verbatim", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times after erroring, want 1", calls)
	}
}

func TestScanJSONLTornTailDeliversPrefix(t *testing.T) {
	in := `{"seq":1,"kind":"solve.start"}
{"seq":2,"kind":"solve.do` // torn mid-line by a crashed writer
	var seqs []int64
	err := obs.ScanJSONL(strings.NewReader(in), func(e obs.Event) error {
		seqs = append(seqs, e.Seq)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 decode error", err)
	}
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("intact prefix not delivered before the error: %v", seqs)
	}
}
