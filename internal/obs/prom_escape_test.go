package obs_test

import (
	"bytes"
	"testing"

	"nocdeploy/internal/obs"
)

// TestPrometheusLabelEscapingRoundTrip pins the exposition escaping
// contract for the three characters the format escapes in label values —
// backslash, newline, double-quote — by driving each through Key →
// WritePrometheus → ParsePrometheus and requiring the original value
// back.
func TestPrometheusLabelEscapingRoundTrip(t *testing.T) {
	values := []string{
		`back\slash`,
		"new\nline",
		`double"quote`,
		`all\of"them` + "\n" + `at\\once`,
	}
	m := obs.NewMetrics()
	for i, v := range values {
		m.Add(obs.Key("escape_events", "v", v), int64(i+1))
		m.Set(obs.Key("escape_level", "v", v), float64(i)+0.5)
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not re-parse: %v\n%s", err, buf.String())
	}

	check := func(famName string, want map[string]bool) {
		t.Helper()
		fam := fams[famName]
		if fam == nil {
			t.Fatalf("family %s missing:\n%s", famName, buf.String())
		}
		got := map[string]bool{}
		for _, smp := range fam.Samples {
			got[smp.Labels["v"]] = true
		}
		for v := range want {
			if !got[v] {
				t.Errorf("%s: label value %q did not round-trip (got %v)", famName, v, got)
			}
		}
	}
	want := map[string]bool{}
	for _, v := range values {
		want[v] = true
	}
	check("escape_events_total", want)
	check("escape_level", want)
}
