package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Chrome trace_event pids: solver events (branch & bound, heuristic
// phases, whole solves) versus experiment-pool events, so Perfetto groups
// them as two processes with one track per worker.
const (
	chromePidSolver = 1
	chromePidPool   = 2
)

// chromeEvent is one entry of the trace_event JSON array format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace epoch
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// ChromeSink renders events in the Chrome trace_event array format, for
// chrome://tracing and https://ui.perfetto.dev. Duration pairs (pool
// tasks, heuristic phases, whole solves) become B/E spans on the emitting
// worker's track; incumbent and bound updates become counter tracks;
// branch & bound nodes become thread-scoped instants, so a parallel solve
// reads as a flame view with one row per worker. Close terminates the
// array, making the file a complete, valid JSON document; it is
// idempotent (the array is only ever terminated once) and safe
// concurrent with Write.
type ChromeSink struct {
	mu     sync.Mutex
	w      io.Writer
	buf    *bufio.Writer
	wrote  bool
	closed bool
	err    error
}

// NewChromeSink wraps w and emits process-name metadata immediately. The
// destination is closed by Close when it implements io.Closer.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: w, buf: bufio.NewWriter(w)}
	_, s.err = s.buf.WriteString("[")
	s.meta(chromePidSolver, "solver")
	s.meta(chromePidPool, "experiment pool")
	return s
}

func (s *ChromeSink) meta(pid int, name string) {
	s.entry(chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
}

func (s *ChromeSink) entry(ce chromeEvent) {
	if s.err != nil {
		return
	}
	data, err := json.Marshal(ce)
	if err != nil {
		s.err = err
		return
	}
	if s.wrote {
		if _, s.err = s.buf.WriteString(",\n"); s.err != nil {
			return
		}
	}
	s.wrote = true
	_, s.err = s.buf.Write(data)
}

// Write translates one solver event into zero or more trace_event
// entries. Writes after Close are discarded.
func (s *ChromeSink) Write(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	ts := e.T * 1e6
	switch e.Kind {
	case SolveStart:
		s.entry(chromeEvent{Name: e.Label, Cat: "solve", Ph: "B", Ts: ts, Pid: chromePidSolver, Tid: e.Worker})
	case SolveDone:
		s.entry(chromeEvent{Name: e.Label, Cat: "solve", Ph: "E", Ts: ts, Pid: chromePidSolver, Tid: e.Worker,
			Args: map[string]any{"obj": e.Obj, "outcome": e.Phase}})
	case HeurPhaseStart:
		s.entry(chromeEvent{Name: e.Phase, Cat: "heur", Ph: "B", Ts: ts, Pid: chromePidSolver, Tid: e.Worker})
	case HeurPhaseEnd:
		s.entry(chromeEvent{Name: e.Phase, Cat: "heur", Ph: "E", Ts: ts, Pid: chromePidSolver, Tid: e.Worker})
	case BBNode:
		s.entry(chromeEvent{Name: "node", Cat: "bb", Ph: "i", Ts: ts, Pid: chromePidSolver, Tid: e.Worker, S: "t",
			Args: map[string]any{"depth": e.Depth, "bound": e.Bound}})
	case BBIncumbent:
		s.entry(chromeEvent{Name: "incumbent", Ph: "C", Ts: ts, Pid: chromePidSolver, Tid: 0,
			Args: map[string]any{"obj": e.Obj}})
	case BBBound:
		s.entry(chromeEvent{Name: "bound", Ph: "C", Ts: ts, Pid: chromePidSolver, Tid: 0,
			Args: map[string]any{"bound": e.Bound}})
	case PoolTaskStart:
		s.entry(chromeEvent{Name: fmt.Sprintf("task %d", e.Node), Cat: "pool", Ph: "B", Ts: ts,
			Pid: chromePidPool, Tid: e.Worker})
	case PoolTaskDone:
		args := map[string]any{}
		if e.Phase != "" {
			args["outcome"] = e.Phase
		}
		s.entry(chromeEvent{Name: fmt.Sprintf("task %d", e.Node), Cat: "pool", Ph: "E", Ts: ts,
			Pid: chromePidPool, Tid: e.Worker, Args: args})
	}
	// BBPrune, LPSolve, anneal and repair events are deliberately not
	// rendered: they are per-iteration noise at flame-view zoom and remain
	// available in the JSONL trace.
}

// Close terminates the JSON array, flushes, and closes a closable
// destination. Subsequent calls return the first call's result.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err == nil {
		_, s.err = s.buf.WriteString("]\n")
	}
	if err := s.buf.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if c, ok := s.w.(io.Closer); ok {
		if err := c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}
