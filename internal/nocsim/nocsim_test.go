package nocsim

import (
	"math"
	"testing"

	"nocdeploy/internal/noc"
)

// mesh44 is jitter-free so zero-load latencies are exactly predictable
// (0.25 ns/byte matches the default 4-bytes-per-cycle flit rate).
func mesh44() *noc.Mesh {
	m, err := noc.NewMesh(noc.Config{W: 4, H: 4, Link: noc.DefaultLinkParams()})
	if err != nil {
		panic(err)
	}
	return m
}

func TestValidation(t *testing.T) {
	m := mesh44()
	if _, err := Simulate(m, []Packet{{ID: 1, Bytes: 64}}, Config{}); err == nil {
		t.Error("expected error for empty route")
	}
	if _, err := Simulate(m, []Packet{{ID: 1, Bytes: 0, Route: []int{0, 1}}}, Config{}); err == nil {
		t.Error("expected error for zero bytes")
	}
	if _, err := Simulate(m, []Packet{{ID: 1, Bytes: 64, Route: []int{0, 5}}}, Config{}); err == nil {
		t.Error("expected error for non-adjacent hops")
	}
}

func TestSinglePacketZeroLoad(t *testing.T) {
	m := mesh44()
	cfg := Config{}
	route := m.PathOf(0, 3, noc.PathEnergy) // 3 hops along the top row
	p := Packet{ID: 1, Bytes: 256, Route: route.Nodes}
	st, err := Simulate(m, []Packet{p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != 1 {
		t.Fatalf("results: %d", len(st.Results))
	}
	want := ZeroLoadLatency(cfg, route.Hops(), 256)
	if math.Abs(st.Results[0].Latency-want) > 1e-15 {
		t.Errorf("latency %g, want %g", st.Results[0].Latency, want)
	}
	if st.Results[0].Hops != route.Hops() {
		t.Errorf("hops %d, want %d", st.Results[0].Hops, route.Hops())
	}
}

func TestLocalDelivery(t *testing.T) {
	m := mesh44()
	st, err := Simulate(m, []Packet{{ID: 7, Bytes: 64, Route: []int{5}, Inject: 1e-6}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Results[0].Latency != 0 || st.Results[0].Arrive != 1e-6 {
		t.Errorf("local packet: %+v", st.Results[0])
	}
}

// Two packets over the same route: the second head waits for the first
// train's serialization, so its latency grows by about one train.
func TestContentionDelaysSecondPacket(t *testing.T) {
	m := mesh44()
	cfg := Config{}.withDefaults()
	route := m.PathOf(0, 1, noc.PathEnergy).Nodes
	const bytes = 1024
	ps := []Packet{
		{ID: 1, Bytes: bytes, Route: route},
		{ID: 2, Bytes: bytes, Route: route},
	}
	st, err := Simulate(m, ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l1 := st.Results[0].Latency
	l2 := st.Results[1].Latency
	train := math.Ceil(bytes/cfg.FlitBytes) * cfg.CycleTime
	if l2 <= l1 {
		t.Errorf("second packet (%g) not delayed behind first (%g)", l2, l1)
	}
	if math.Abs((l2-l1)-train) > 5*cfg.CycleTime {
		t.Errorf("contention delay %g, want ≈ one train %g", l2-l1, train)
	}
}

// Packets on disjoint routes must not interfere.
func TestDisjointRoutesIndependent(t *testing.T) {
	m := mesh44()
	cfg := Config{}
	r1 := m.PathOf(m.ID(0, 0), m.ID(1, 0), noc.PathEnergy).Nodes
	r2 := m.PathOf(m.ID(0, 3), m.ID(1, 3), noc.PathEnergy).Nodes
	ps := []Packet{
		{ID: 1, Bytes: 512, Route: r1},
		{ID: 2, Bytes: 512, Route: r2},
	}
	st, err := Simulate(m, ps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ZeroLoadLatency(cfg, 1, 512)
	for _, r := range st.Results {
		if math.Abs(r.Latency-want) > 1e-15 {
			t.Errorf("packet %d latency %g, want zero-load %g", r.ID, r.Latency, want)
		}
	}
}

// Wormhole pipelining must never be slower than the store-and-forward
// analytic matrix used by the deployment formulation — this is the key
// cross-validation between nocsim and noc.
func TestPipelinedNeverSlowerThanAnalytic(t *testing.T) {
	m := noc.Default(4, 4) // jittered links, like the deployment experiments
	cfg := Config{}
	const bytes = 4096
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			if b == g {
				continue
			}
			for rho := 0; rho < noc.NumPaths; rho++ {
				route := m.PathOf(b, g, rho)
				st, err := Simulate(m, []Packet{{ID: 1, Bytes: bytes, Route: route.Nodes}}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				analytic := bytes * m.TimePerByte(b, g, rho)
				if st.Results[0].Latency > analytic*1.05 {
					t.Errorf("%d→%d ρ=%d: simulated %g exceeds analytic %g",
						b, g, rho, st.Results[0].Latency, analytic)
				}
			}
		}
	}
}

func TestInjectionTimeRespected(t *testing.T) {
	m := mesh44()
	cfg := Config{}
	route := m.PathOf(0, 1, noc.PathEnergy).Nodes
	st, err := Simulate(m, []Packet{{ID: 1, Bytes: 128, Route: route, Inject: 5e-6}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Results[0].Arrive < 5e-6 {
		t.Errorf("arrived %g before injection", st.Results[0].Arrive)
	}
}

func TestLinkUtilizationAccounting(t *testing.T) {
	m := mesh44()
	route := m.PathOf(0, 3, noc.PathEnergy).Nodes
	st, err := Simulate(m, []Packet{{ID: 1, Bytes: 2048, Route: route}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.LinkBusy) != len(route)-1 {
		t.Errorf("busy links %d, want %d", len(st.LinkBusy), len(route)-1)
	}
	u := st.MaxLinkUtilization()
	if u <= 0 || u > 1.01 {
		t.Errorf("max utilization %g out of range", u)
	}
}
