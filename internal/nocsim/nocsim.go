// Package nocsim is an event-driven wormhole network simulator for the 2D
// mesh of package noc. Packets are flit trains that pipeline across links
// (one flit per link per cycle) behind their head flit; links are granted
// in arrival order (FIFO, infinite buffers — a virtual-cut-through
// approximation of wormhole switching without credit backpressure).
//
// Its role in the reproduction is validation: the analytic time matrix
// t[β][γ][ρ] used by the deployment formulation is store-and-forward
// conservative (per-hop serialization), so the pipelined latencies observed
// here must never exceed it for the same route. Tests assert exactly that.
package nocsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"nocdeploy/internal/noc"
	"nocdeploy/internal/numeric"
)

// Config sets the microarchitectural constants of the simulation.
type Config struct {
	FlitBytes   float64 // bytes per flit; default 4
	CycleTime   float64 // seconds per cycle; default 1e-9 (1 GHz NoC)
	RouterDelay float64 // router pipeline cycles per hop; default 3
}

func (c Config) withDefaults() Config {
	if numeric.IsZero(c.FlitBytes) {
		c.FlitBytes = 4
	}
	if numeric.IsZero(c.CycleTime) {
		c.CycleTime = 1e-9
	}
	if numeric.IsZero(c.RouterDelay) {
		c.RouterDelay = 3
	}
	return c
}

// Packet is one message to transport.
type Packet struct {
	ID     int
	Bytes  float64
	Route  []int   // router sequence, source first (noc.Path.Nodes)
	Inject float64 // injection time in seconds
}

// PacketResult reports one packet's delivery.
type PacketResult struct {
	ID      int
	Arrive  float64 // seconds: last flit delivered at the destination
	Latency float64 // Arrive − Inject
	Hops    int
}

// Stats aggregates a simulation.
type Stats struct {
	Results []PacketResult
	// LinkBusy maps a directed link (from, to) to its busy time in seconds.
	LinkBusy map[[2]int]float64
	// Span is the simulated time from the first injection to the last
	// delivery.
	Span float64
}

// MaxLinkUtilization returns the highest busy fraction over all links.
func (st *Stats) MaxLinkUtilization() float64 {
	var hi float64
	for _, b := range st.LinkBusy {
		if u := b / st.Span; u > hi {
			hi = u
		}
	}
	return hi
}

// event is a packet head requesting its next link.
type event struct {
	at  float64 // cycles
	pkt int     // index into packets
	hop int     // link index along the route
	seq int     // tie-break: FIFO by event creation
}

type eventPQ []event

func (q eventPQ) Len() int { return len(q) }
func (q eventPQ) Less(i, j int) bool {
	if q[i].at != q[j].at { //lint:allow floateq — event-queue tie-break; tolerance would break heap ordering
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventPQ) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// Simulate transports the packets over the mesh and returns delivery
// statistics.
func Simulate(mesh *noc.Mesh, packets []Packet, cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	for _, p := range packets {
		if len(p.Route) == 0 {
			return nil, fmt.Errorf("nocsim: packet %d has an empty route", p.ID)
		}
		if p.Bytes <= 0 {
			return nil, fmt.Errorf("nocsim: packet %d has %g bytes", p.ID, p.Bytes)
		}
		for i := 0; i+1 < len(p.Route); i++ {
			if mesh.ManhattanDistance(p.Route[i], p.Route[i+1]) != 1 {
				return nil, fmt.Errorf("nocsim: packet %d route hops %d→%d are not adjacent",
					p.ID, p.Route[i], p.Route[i+1])
			}
		}
	}

	// Per-link serialization honors the mesh's (possibly jittered) link
	// rates; the default flit rate is the fallback for unknown links.
	serializeCycles := func(p Packet, a, b int) float64 {
		if lpb, ok := mesh.LinkLatencyPerByte(a, b); ok {
			return p.Bytes * lpb / cfg.CycleTime
		}
		return math.Ceil(p.Bytes / cfg.FlitBytes)
	}
	linkFree := map[[2]int]float64{} // cycles at which the link is free
	busy := map[[2]int]float64{}     // cumulative busy cycles

	st := &Stats{LinkBusy: map[[2]int]float64{}}
	pq := &eventPQ{}
	heap.Init(pq)
	seq := 0
	firstInject, lastArrive := math.Inf(1), 0.0
	for i, p := range packets {
		at := p.Inject / cfg.CycleTime
		if p.Inject < firstInject {
			firstInject = p.Inject
		}
		if len(p.Route) == 1 {
			// Local delivery: no network traversal.
			st.Results = append(st.Results, PacketResult{ID: p.ID, Arrive: p.Inject, Latency: 0})
			if p.Inject > lastArrive {
				lastArrive = p.Inject
			}
			continue
		}
		heap.Push(pq, event{at: at, pkt: i, hop: 0, seq: seq})
		seq++
	}

	// bottleneck[i] is the slowest serialization (cycles) seen so far along
	// packet i's route: the train can stream no faster than its slowest
	// upstream link (backpressure-limited wormhole).
	bottleneck := make([]float64, len(packets))
	for pq.Len() > 0 {
		ev := heap.Pop(pq).(event)
		p := packets[ev.pkt]
		link := [2]int{p.Route[ev.hop], p.Route[ev.hop+1]}
		start := math.Max(ev.at, linkFree[link])
		cross := start + cfg.RouterDelay // head flit through router + link
		f := serializeCycles(p, link[0], link[1])
		if f > bottleneck[ev.pkt] {
			bottleneck[ev.pkt] = f
		}
		f = bottleneck[ev.pkt]
		// The link serializes the whole train behind the head, at the
		// bottleneck-so-far rate.
		linkFree[link] = cross + f
		busy[link] += cfg.RouterDelay + f
		if ev.hop+2 < len(p.Route) {
			heap.Push(pq, event{at: cross, pkt: ev.pkt, hop: ev.hop + 1, seq: seq})
			seq++
			continue
		}
		// Head reached the destination; the tail arrives f cycles later.
		arrive := (cross + f) * cfg.CycleTime
		st.Results = append(st.Results, PacketResult{
			ID:      p.ID,
			Arrive:  arrive,
			Latency: arrive - p.Inject,
			Hops:    len(p.Route) - 1,
		})
		if arrive > lastArrive {
			lastArrive = arrive
		}
	}
	for l, b := range busy {
		st.LinkBusy[l] = b * cfg.CycleTime
	}
	if math.IsInf(firstInject, 1) {
		firstInject = 0
	}
	st.Span = lastArrive - firstInject
	if st.Span <= 0 {
		st.Span = cfg.CycleTime
	}
	sort.Slice(st.Results, func(i, j int) bool { return st.Results[i].ID < st.Results[j].ID })
	return st, nil
}

// ZeroLoadLatency returns the analytic unloaded latency for a route of h
// hops carrying the given bytes: h router traversals plus one train
// serialization.
func ZeroLoadLatency(cfg Config, hops int, bytes float64) float64 {
	cfg = cfg.withDefaults()
	return (float64(hops)*cfg.RouterDelay + math.Ceil(bytes/cfg.FlitBytes)) * cfg.CycleTime
}
