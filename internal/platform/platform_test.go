package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	params := DefaultPowerParams()
	if _, err := New(0, DefaultLevels(), params); err == nil {
		t.Error("expected error for zero processors")
	}
	if _, err := New(4, nil, params); err == nil {
		t.Error("expected error for empty level table")
	}
	if _, err := New(4, []VFLevel{{Voltage: 1, Freq: 0}}, params); err == nil {
		t.Error("expected error for zero frequency")
	}
	if _, err := New(4, []VFLevel{{Voltage: 0, Freq: 1e9}}, params); err == nil {
		t.Error("expected error for zero voltage")
	}
	if _, err := New(4, []VFLevel{{Voltage: 1, Freq: 1e9}, {Voltage: 1.1, Freq: 1e9}}, params); err == nil {
		t.Error("expected error for duplicate frequency")
	}
}

func TestLevelsSorted(t *testing.T) {
	levels := []VFLevel{
		{Voltage: 1.1, Freq: 1.0e9},
		{Voltage: 0.85, Freq: 0.5e9},
		{Voltage: 0.95, Freq: 0.7e9},
	}
	p, err := New(2, levels, DefaultPowerParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < p.L(); i++ {
		if p.Levels[i-1].Freq >= p.Levels[i].Freq {
			t.Fatalf("levels not sorted: %v", p.Levels)
		}
	}
	if p.Fmin() != 0.5e9 || p.Fmax() != 1.0e9 {
		t.Fatalf("Fmin/Fmax wrong: %g %g", p.Fmin(), p.Fmax())
	}
}

func TestPowerMonotoneInLevel(t *testing.T) {
	p := Default(4)
	for l := 1; l < p.L(); l++ {
		if p.Power(l) <= p.Power(l-1) {
			t.Errorf("power not increasing at level %d: %g <= %g", l, p.Power(l), p.Power(l-1))
		}
	}
}

func TestStaticShareReasonable(t *testing.T) {
	p := Default(4)
	for l := 0; l < p.L(); l++ {
		st := p.Params.Static(p.Levels[l].Voltage)
		tot := p.Power(l)
		share := st / tot
		if share <= 0.01 || share >= 0.6 {
			t.Errorf("level %d: static share %.3f outside plausible range (static %g, total %g)",
				l, share, st, tot)
		}
	}
}

func TestExecTimeEnergy(t *testing.T) {
	p := Default(4)
	const cycles = 1e6
	for l := 0; l < p.L(); l++ {
		wantT := cycles / p.Levels[l].Freq
		if got := p.ExecTime(cycles, l); math.Abs(got-wantT) > 1e-15 {
			t.Errorf("ExecTime(%d) = %g, want %g", l, got, wantT)
		}
		wantE := wantT * p.Power(l)
		if got := p.ExecEnergy(cycles, l); math.Abs(got-wantE)/wantE > 1e-12 {
			t.Errorf("ExecEnergy(%d) = %g, want %g", l, got, wantE)
		}
	}
}

// The paper's Fig. 2(c) regime requires that running faster costs more
// energy per cycle at the top of the table (convex energy), i.e. ε > 1.
func TestEpsilonAboveOne(t *testing.T) {
	p := Default(4)
	if eps := p.Epsilon(); eps <= 1.05 {
		t.Errorf("epsilon = %g, want a meaningful gap > 1.05", eps)
	}
}

func TestScaledLevelsStretchEpsilon(t *testing.T) {
	base := DefaultLevels()
	params := DefaultPowerParams()
	p1, err := New(4, ScaledLevels(base, 1.0), params)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(4, ScaledLevels(base, 1.8), params)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Epsilon() <= p1.Epsilon() {
		t.Errorf("gamma=1.8 epsilon %g not larger than gamma=1.0 epsilon %g",
			p2.Epsilon(), p1.Epsilon())
	}
}

func TestPowerComponentsPositiveProperty(t *testing.T) {
	params := DefaultPowerParams()
	f := func(vRaw, fRaw uint16) bool {
		v := 0.5 + float64(vRaw)/65535.0 // 0.5 .. 1.5 V
		fr := 1e8 + float64(fRaw)*1e5    // 0.1 .. ~6.6 GHz
		st := params.Static(v)
		dy := params.Dynamic(v, fr)
		return st > 0 && dy > 0 && !math.IsInf(st, 0) && !math.IsNaN(st)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDynamicQuadraticInVoltage(t *testing.T) {
	params := DefaultPowerParams()
	d1 := params.Dynamic(1.0, 1e9)
	d2 := params.Dynamic(2.0, 1e9)
	if math.Abs(d2/d1-4.0) > 1e-12 {
		t.Errorf("dynamic power not quadratic in v: ratio %g", d2/d1)
	}
}

func TestEnergyPerCycleMatchesDefinition(t *testing.T) {
	p := Default(4)
	for l := 0; l < p.L(); l++ {
		want := p.Power(l) / p.Levels[l].Freq
		if got := p.EnergyPerCycle(l); math.Abs(got-want) > 1e-18 {
			t.Errorf("EnergyPerCycle(%d) = %g, want %g", l, got, want)
		}
	}
}
