// Package platform models a homogeneous DVFS multicore platform: the set of
// voltage/frequency operating points shared by all processors and the
// static + dynamic power model the paper adopts from Han et al. and
// Abd Ishak et al.
//
// Power at level (v, f):
//
//	P = Ps + Pd
//	Ps = Lg * (v*K1*exp(K2*v)*exp(K3*Vb) + |Vb|*Ib)
//	Pd = Ce * v^2 * f
//
// All times are seconds, energies joules, frequencies hertz and voltages
// volts.
package platform

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nocdeploy/internal/numeric"
)

// VFLevel is a single voltage/frequency operating point.
type VFLevel struct {
	Voltage float64 // supply voltage in volts
	Freq    float64 // clock frequency in hertz
}

// PowerParams holds the constants of the processor power model.
type PowerParams struct {
	Ce float64 // average switched capacitance (farad)
	Lg float64 // number of logic gates
	K1 float64 // technology constant (ampere)
	K2 float64 // technology constant (1/volt)
	K3 float64 // technology constant (1/volt)
	Vb float64 // body-bias voltage (volt)
	Ib float64 // body junction leakage current (ampere)
}

// DefaultPowerParams returns constants calibrated so that, across the
// default level table, static power is a realistic 10-35% of total power
// and the energy-per-cycle gap index ε is ≈ 2-4, matching the regime the
// paper sweeps in Fig. 2(c).
func DefaultPowerParams() PowerParams {
	return PowerParams{
		Ce: 1.0e-9, // 1 nF effective switched capacitance
		Lg: 2.0e6,
		K1: 2.0e-10,
		K2: 5.0,
		K3: -1.5,
		Vb: -0.7,
		Ib: 1.0e-9,
	}
}

// Static returns the static (leakage) power drawn at supply voltage v.
func (p PowerParams) Static(v float64) float64 {
	return p.Lg * (v*p.K1*math.Exp(p.K2*v)*math.Exp(p.K3*p.Vb) + math.Abs(p.Vb)*p.Ib)
}

// Dynamic returns the dynamic (switching) power at operating point (v, f).
func (p PowerParams) Dynamic(v, f float64) float64 {
	return p.Ce * v * v * f
}

// Power returns total power Ps + Pd at level l.
func (p PowerParams) Power(l VFLevel) float64 {
	return p.Static(l.Voltage) + p.Dynamic(l.Voltage, l.Freq)
}

// Platform is a set of N identical DVFS processors connected by a NoC
// (the NoC itself lives in package noc).
type Platform struct {
	N      int       // number of processors
	Levels []VFLevel // available V/F levels, sorted by ascending frequency
	Params PowerParams

	power []float64 // cached per-level total power
}

// New builds a platform with n processors and the given levels.
// Levels are sorted by ascending frequency.
func New(n int, levels []VFLevel, params PowerParams) (*Platform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("platform: processor count %d must be positive", n)
	}
	if len(levels) == 0 {
		return nil, errors.New("platform: at least one V/F level is required")
	}
	ls := make([]VFLevel, len(levels))
	copy(ls, levels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Freq < ls[j].Freq })
	for i, l := range ls {
		if l.Freq <= 0 || l.Voltage <= 0 {
			return nil, fmt.Errorf("platform: level %d has non-positive voltage or frequency", i)
		}
		if i > 0 && numeric.RelEq(ls[i-1].Freq, l.Freq, numeric.Eps) {
			return nil, fmt.Errorf("platform: duplicate frequency %g Hz", l.Freq)
		}
	}
	p := &Platform{N: n, Levels: ls, Params: params}
	p.power = make([]float64, len(ls))
	for i, l := range ls {
		p.power[i] = params.Power(l)
	}
	return p, nil
}

// DefaultLevels returns the 6-level table used throughout the evaluation
// (0.5-1.0 GHz, near-linear voltage scaling), mirroring L = 6 in the paper.
func DefaultLevels() []VFLevel {
	return []VFLevel{
		{Voltage: 0.85, Freq: 0.50e9},
		{Voltage: 0.90, Freq: 0.60e9},
		{Voltage: 0.95, Freq: 0.70e9},
		{Voltage: 1.00, Freq: 0.80e9},
		{Voltage: 1.05, Freq: 0.90e9},
		{Voltage: 1.10, Freq: 1.00e9},
	}
}

// Default returns a platform with n processors, the default level table and
// default power constants.
func Default(n int) *Platform {
	p, err := New(n, DefaultLevels(), DefaultPowerParams())
	if err != nil {
		panic("platform: default construction failed: " + err.Error()) //lint:allow nopanic — Must-style constructor over known-good constants
	}
	return p
}

// L returns the number of V/F levels.
func (p *Platform) L() int { return len(p.Levels) }

// Power returns the total power at level l.
func (p *Platform) Power(l int) float64 { return p.power[l] }

// ExecTime returns the time to execute cycles worst-case execution cycles
// at level l: C / f_l.
func (p *Platform) ExecTime(cycles float64, l int) float64 {
	return cycles / p.Levels[l].Freq
}

// ExecEnergy returns the energy to execute cycles WCEC at level l:
// (C / f_l) * P_l.
func (p *Platform) ExecEnergy(cycles float64, l int) float64 {
	return p.ExecTime(cycles, l) * p.power[l]
}

// Fmax returns the maximum available frequency.
func (p *Platform) Fmax() float64 { return p.Levels[len(p.Levels)-1].Freq }

// Fmin returns the minimum available frequency.
func (p *Platform) Fmin() float64 { return p.Levels[0].Freq }

// EnergyPerCycle returns P_l / f_l, the energy spent per executed cycle at
// level l.
func (p *Platform) EnergyPerCycle(l int) float64 {
	return p.power[l] / p.Levels[l].Freq
}

// Epsilon returns the paper's ε index: max_l(P_l/f_l) / min_l(P_l/f_l),
// the gap between the most and least energy-hungry cycle.
func (p *Platform) Epsilon() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for l := range p.Levels {
		e := p.EnergyPerCycle(l)
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	return hi / lo
}

// MaxEnergyPerCycle returns the paper's e_k^comp parameter for a given
// cycle budget: max_l (C/f_l)*P_l evaluated with C = cycles.
func (p *Platform) MaxEnergyPerCycle() float64 {
	hi := math.Inf(-1)
	for l := range p.Levels {
		if e := p.EnergyPerCycle(l); e > hi {
			hi = e
		}
	}
	return hi
}

// ScaledLevels returns a copy of the default level table whose voltages are
// warped so the resulting ε index is approximately eps. It is used by the
// Fig. 2(c) sweep. gamma > 1 stretches high-frequency voltages upward.
func ScaledLevels(base []VFLevel, gamma float64) []VFLevel {
	out := make([]VFLevel, len(base))
	vmin := base[0].Voltage
	for i, l := range base {
		out[i] = VFLevel{
			Voltage: vmin + (l.Voltage-vmin)*gamma,
			Freq:    l.Freq,
		}
	}
	return out
}
