package engine_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"nocdeploy/internal/core"
	"nocdeploy/internal/engine"
	"nocdeploy/internal/exp"
	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
)

// figInstance is one panel entry of the acceptance criterion: a system
// plus the engine options sized to it.
type figInstance struct {
	sys *core.System
	eo  engine.Options
}

// figSuite is the instance panel of the acceptance criterion: the exact-
// sweep scale (2×2, L=3) across sizes plus one heuristic-scale instance
// (4×4, L=6). The small instances run the full portfolio with a tight
// exact budget; the 4×4 instance — where each exact node costs a large LP
// — runs the cheap operator subset so the suite stays in the unit-test
// envelope.
func figSuite(t *testing.T) []figInstance {
	t.Helper()
	build := func(p exp.InstanceParams) *core.System {
		s, err := exp.Build(p)
		if err != nil {
			t.Fatalf("Build(%+v): %v", p, err)
		}
		return s
	}
	cheap := engine.Options{Seed: 5, Rounds: 3, Workers: 2, NodeBudget: -1}
	var err error
	if cheap.Operators, err = engine.BuildOperators(
		[]string{"heuristic", "repair", "improve", "paths", "region", "subtree"}, cheap); err != nil {
		t.Fatal(err)
	}
	return []figInstance{
		{build(exp.InstanceParams{MeshW: 2, MeshH: 2, M: 6, L: 3, Alpha: 1.2, Seed: 1001}), quickOpts(5, 2)},
		{build(exp.InstanceParams{MeshW: 2, MeshH: 2, M: 8, L: 3, Alpha: 1.2, Seed: 1002}), quickOpts(5, 2)},
		{build(exp.InstanceParams{MeshW: 2, MeshH: 2, M: 10, L: 3, Alpha: 1.3, Seed: 1003}), quickOpts(5, 2)},
		{build(exp.InstanceParams{MeshW: 4, MeshH: 4, M: 12, L: 6, Alpha: 1.3, Seed: 1004}), cheap},
	}
}

// quickOpts keeps engine tests inside the unit-test envelope: few rounds,
// tight exact budgets.
func quickOpts(seed int64, workers int) engine.Options {
	return engine.Options{Seed: seed, Rounds: 3, Workers: workers, NodeBudget: 6, AnnealIters: 120}
}

// TestPortfolioNeverWorseThanRepair is the acceptance criterion's first
// half: on every fig-suite instance the portfolio incumbent's energy is
// ≤ the standalone heuristic+repair result.
func TestPortfolioNeverWorseThanRepair(t *testing.T) {
	for i, fi := range figSuite(t) {
		s := fi.sys
		rd, rinfo, err := core.HeuristicWithRepair(s, core.Options{}, fi.eo.Seed, 0)
		if err != nil {
			t.Fatalf("instance %d: repair: %v", i, err)
		}
		pd, pinfo, err := engine.Solve(s, core.Options{}, fi.eo)
		if err != nil {
			t.Fatalf("instance %d: portfolio: %v", i, err)
		}
		if pd == nil {
			t.Fatalf("instance %d: portfolio returned nil deployment", i)
		}
		if rinfo.Feasible && !pinfo.Feasible {
			t.Fatalf("instance %d: repair feasible but portfolio infeasible", i)
		}
		if numeric.GtTol(pinfo.Objective, rinfo.Objective, 1e-12) {
			t.Errorf("instance %d: portfolio %g worse than repair %g",
				i, pinfo.Objective, rinfo.Objective)
		}
		if m, verr := core.Validate(s, pd); verr != nil || m == nil {
			t.Errorf("instance %d: portfolio incumbent fails validation: %v", i, verr)
		}
		_ = rd
	}
}

// TestPortfolioCancelledReturnsValidated is the acceptance criterion's
// second half: a cancelled or deadline-expired portfolio solve always
// returns a validated feasible deployment — never an error.
func TestPortfolioCancelledReturnsValidated(t *testing.T) {
	s, err := exp.Build(exp.InstanceParams{MeshW: 2, MeshH: 2, M: 8, L: 3, Alpha: 1.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		d, info, err := engine.SolveCtx(ctx, s, core.Options{}, quickOpts(7, 4))
		if err != nil {
			t.Fatalf("cancelled solve errored: %v", err)
		}
		if d == nil {
			t.Fatal("cancelled solve returned nil deployment")
		}
		if !info.Cancelled {
			t.Error("info.Cancelled not set")
		}
		if !info.Feasible {
			t.Error("cancelled solve returned infeasible deployment")
		}
		if _, verr := core.Validate(s, d); verr != nil {
			t.Errorf("cancelled incumbent fails validation: %v", verr)
		}
	})

	t.Run("expired-deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		d, info, err := engine.SolveCtx(ctx, s, core.Options{}, quickOpts(7, 4))
		if err != nil {
			t.Fatalf("deadline-expired solve errored: %v", err)
		}
		if d == nil || !info.Feasible {
			t.Fatalf("deadline-expired solve must return a feasible deployment (d=%v feasible=%v)",
				d != nil, info.Feasible)
		}
		if _, verr := core.Validate(s, d); verr != nil {
			t.Errorf("incumbent fails validation: %v", verr)
		}
	})
}

// runTraced runs one portfolio solve under a fixed fake clock, capturing
// the JSONL event stream.
func runTraced(t *testing.T, s *core.System, seed int64, workers int) ([]byte, *core.Deployment, *core.SolveInfo) {
	t.Helper()
	var buf bytes.Buffer
	epoch := time.Unix(1700000000, 0)
	tr := obs.NewWithClock(func() time.Time { return epoch }, obs.NewJSONLSink(&buf))
	copts := core.Options{Trace: tr, Clock: func() time.Time { return epoch }}
	d, info, err := engine.SolveCtx(context.Background(), s, copts, quickOpts(seed, workers))
	if err != nil {
		t.Fatalf("portfolio solve (workers=%d): %v", workers, err)
	}
	if cerr := tr.Close(); cerr != nil {
		t.Fatalf("trace close: %v", cerr)
	}
	return buf.Bytes(), d, info
}

// TestPortfolioDeterministicAcrossWorkers is the engine's determinism
// contract: fixed seed + fixed fake clock → byte-identical operator
// schedule (the full JSONL trace) and identical final incumbent at
// Workers=1 vs Workers=8.
func TestPortfolioDeterministicAcrossWorkers(t *testing.T) {
	s, err := exp.Build(exp.InstanceParams{MeshW: 2, MeshH: 2, M: 6, L: 3, Alpha: 1.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	trace1, d1, info1 := runTraced(t, s, 3, 1)
	trace8, d8, info8 := runTraced(t, s, 3, 8)
	if !bytes.Equal(trace1, trace8) {
		t.Errorf("operator schedule differs between Workers=1 and Workers=8:\n--- w=1 ---\n%s\n--- w=8 ---\n%s",
			trace1, trace8)
	}
	if !reflect.DeepEqual(d1, d8) {
		t.Error("final incumbent deployments differ between Workers=1 and Workers=8")
	}
	if info1.Objective != info8.Objective { //lint:allow floateq — identical deterministic runs must agree exactly
		t.Errorf("objectives differ: %g vs %g", info1.Objective, info8.Objective)
	}
	if len(trace1) == 0 {
		t.Fatal("empty trace: engine emitted no events")
	}
	for _, want := range []string{`"kind":"engine.iter"`, `"kind":"engine.op.apply"`, `"kind":"engine.weights"`} {
		if !bytes.Contains(trace1, []byte(want)) {
			t.Errorf("trace missing %s events", want)
		}
	}
}

// TestBuildOperators covers the portfolio vocabulary: the full set by
// default, selection by name, and rejection of unknown names.
func TestBuildOperators(t *testing.T) {
	ops, err := engine.BuildOperators(nil, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != len(engine.OperatorNames()) {
		t.Fatalf("default portfolio has %d operators, want %d", len(ops), len(engine.OperatorNames()))
	}
	for i, name := range engine.OperatorNames() {
		if ops[i].Name() != name {
			t.Errorf("operator %d is %q, want %q", i, ops[i].Name(), name)
		}
		if ops[i].Params() == "" {
			t.Errorf("operator %q has empty parameter metadata", name)
		}
	}
	if _, err := engine.BuildOperators([]string{"repair", "warp"}, engine.Options{}); err == nil {
		t.Error("unknown operator name accepted")
	}
	if err := engine.ValidOperators([]string{"region", "subtree"}); err != nil {
		t.Errorf("ValidOperators rejected built-ins: %v", err)
	}
}
