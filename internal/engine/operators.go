package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nocdeploy/internal/core"
	"nocdeploy/internal/numeric"
)

// objTol is the absolute tie-break tolerance for objective comparisons,
// matching the greedy phases of the core heuristic: joule-scale energies
// separated from accumulated rounding noise.
const objTol = 1e-15

// State is the read-only snapshot one operator application works from. The
// engine clones the shared incumbent into Incumbent before Apply, so the
// operator may mutate it freely; everything else is shared and must not be
// written.
type State struct {
	Sys  *core.System
	Opts core.Options // objective and variant selection; Trace is always nil here
	// Incumbent is the operator's private clone of the engine incumbent at
	// round start, with Objective/Feasible describing it. An infeasible
	// incumbent (the repaired heuristic missed the horizon) still carries
	// the best-effort deployment.
	Incumbent *core.Deployment
	Objective float64
	Feasible  bool
	// Seed is this application's derived RNG seed: a pure function of the
	// engine seed and the global application index, so a run's operator
	// randomness is byte-replayable at any worker count.
	Seed int64
	// NodeBudget bounds the branch & bound nodes of exact repair solves;
	// ≤ 0 disables exact polishing inside destroy/repair operators.
	NodeBudget int
}

// Delta is one operator application's outcome: a candidate deployment and
// the operator's own assessment of it. The engine re-validates every
// candidate centrally before acceptance, so a buggy or optimistic operator
// can never corrupt the incumbent.
type Delta struct {
	Deployment *core.Deployment
	Objective  float64
	Feasible   bool
}

// SolveOperator is one pluggable move of the portfolio engine, the
// nextroute-style solve-operator contract: Apply transforms a state
// snapshot into a candidate delta (ok=false when the move was inapplicable
// or produced nothing), Name/Params are the operator's identity and
// parameter metadata for telemetry and the adaptive-weight table.
//
// Apply must be a pure function of (State, ctx): identical snapshots and
// seeds must yield identical deltas, because the engine's determinism
// contract — byte-identical runs at any worker count — reduces to operator
// purity once selection and reduction are serialized.
type SolveOperator interface {
	Name() string
	Params() string
	Apply(ctx context.Context, st *State) (Delta, bool)
}

// heuristicOp re-runs the constructive three-phase heuristic with the
// application seed: random tie-breaks in phase 2 make each application a
// cheap diversification restart.
type heuristicOp struct{ repair bool }

func (o heuristicOp) Name() string {
	if o.repair {
		return "repair"
	}
	return "heuristic"
}

func (o heuristicOp) Params() string {
	if o.repair {
		return "restart=seeded rounds=auto"
	}
	return "restart=seeded"
}

func (o heuristicOp) Apply(ctx context.Context, st *State) (Delta, bool) {
	var (
		d    *core.Deployment
		info *core.SolveInfo
		err  error
	)
	if o.repair {
		d, info, err = core.HeuristicWithRepairCtx(ctx, st.Sys, st.Opts, st.Seed, 0)
	} else {
		d, info, err = core.HeuristicCtx(ctx, st.Sys, st.Opts, st.Seed)
	}
	if err != nil || d == nil || info.Cancelled {
		return Delta{}, false
	}
	return Delta{Deployment: d, Objective: info.Objective, Feasible: info.Feasible}, true
}

// annealOp runs a short simulated-annealing burst from the repaired
// heuristic under the application seed.
type annealOp struct{ iters int }

func (o annealOp) Name() string   { return "anneal" }
func (o annealOp) Params() string { return fmt.Sprintf("iters=%d", o.iters) }

func (o annealOp) Apply(ctx context.Context, st *State) (Delta, bool) {
	d, info, err := core.AnnealCtx(ctx, st.Sys, st.Opts, core.AnnealOptions{Iters: o.iters, Seed: st.Seed})
	if err != nil || d == nil || info.Cancelled {
		return Delta{}, false
	}
	return Delta{Deployment: d, Objective: info.Objective, Feasible: info.Feasible}, true
}

// exactOp runs a node-budgeted branch & bound warm-started from the
// incumbent: the portfolio's intensification move. Workers is pinned to 1
// so the application stays a pure function of its snapshot.
type exactOp struct{ nodes int }

func (o exactOp) Name() string   { return "exact" }
func (o exactOp) Params() string { return fmt.Sprintf("nodes=%d warm=incumbent workers=1", o.nodes) }

func (o exactOp) Apply(ctx context.Context, st *State) (Delta, bool) {
	if o.nodes <= 0 {
		return Delta{}, false
	}
	oo := core.OptimalOptions{MaxNodes: o.nodes, RelGap: 0.01, Workers: 1}
	if st.Feasible {
		cutoff := st.Objective
		oo.WarmDeployment = st.Incumbent
		oo.WarmStart = &cutoff
	}
	d, info, err := core.OptimalCtx(ctx, st.Sys, st.Opts, oo)
	if err != nil || d == nil {
		return Delta{}, false
	}
	return Delta{Deployment: d, Objective: info.Objective, Feasible: info.Feasible}, true
}

// improveOp wraps the first-improvement local search (processor moves and
// path flips) with a small move budget.
type improveOp struct{ moves int }

func (o improveOp) Name() string   { return "improve" }
func (o improveOp) Params() string { return fmt.Sprintf("moves=%d", o.moves) }

func (o improveOp) Apply(ctx context.Context, st *State) (Delta, bool) {
	if ctx.Err() != nil {
		return Delta{}, false
	}
	d, obj, accepted := core.Improve(st.Sys, st.Incumbent, st.Opts, o.moves)
	if accepted == 0 {
		return Delta{}, false
	}
	return Delta{Deployment: d, Objective: obj, Feasible: true}, true
}

// pathsOp wraps the path-flip-only local search.
type pathsOp struct{}

func (pathsOp) Name() string   { return "paths" }
func (pathsOp) Params() string { return "flips=greedy" }

func (pathsOp) Apply(ctx context.Context, st *State) (Delta, bool) {
	if ctx.Err() != nil {
		return Delta{}, false
	}
	d, obj := core.ImprovePaths(st.Sys, st.Incumbent, st.Opts)
	if !numeric.LtTol(obj, st.Objective, objTol) {
		return Delta{}, false
	}
	return Delta{Deployment: d, Objective: obj, Feasible: true}, true
}

// regionOp is the mesh-region large-neighborhood move: unassign every slot
// placed on a random processor and its Manhattan-radius-1 neighbourhood,
// re-place them greedily by objective increase, then (budget permitting)
// polish with a warm-started node-budgeted exact solve.
type regionOp struct{ radius int }

func (o regionOp) Name() string { return "region" }
func (o regionOp) Params() string {
	return fmt.Sprintf("radius=%d repair=greedy+exact", o.radius)
}

func (o regionOp) Apply(ctx context.Context, st *State) (Delta, bool) {
	rng := rand.New(rand.NewSource(st.Seed))
	mesh := st.Sys.Mesh
	n := mesh.N()
	center := rng.Intn(n)
	inRegion := make([]bool, n)
	for k := 0; k < n; k++ {
		if mesh.ManhattanDistance(center, k) <= o.radius {
			inRegion[k] = true
		}
	}
	d := core.CloneDeployment(st.Incumbent)
	var destroyed []int
	total := 0
	for i := range d.Exists {
		if !d.Exists[i] {
			continue
		}
		total++
		if inRegion[d.Proc[i]] {
			destroyed = append(destroyed, i)
		}
	}
	// A region holding nothing — or everything — is not a neighbourhood
	// move; shrink to the center processor alone before giving up.
	if len(destroyed) == 0 || len(destroyed) == total {
		destroyed = destroyed[:0]
		for i := range d.Exists {
			if d.Exists[i] && d.Proc[i] == center {
				destroyed = append(destroyed, i)
			}
		}
	}
	if len(destroyed) == 0 || len(destroyed) == total {
		return Delta{}, false
	}
	return repairDestroyed(ctx, st, d, destroyed)
}

// subtreeOp is the DAG-subtree large-neighborhood move: unassign a random
// task's descendant closure (originals and their replicas), re-place
// greedily, then polish with a warm-started node-budgeted exact solve.
type subtreeOp struct{}

func (subtreeOp) Name() string   { return "subtree" }
func (subtreeOp) Params() string { return "closure=descendants repair=greedy+exact" }

func (subtreeOp) Apply(ctx context.Context, st *State) (Delta, bool) {
	rng := rand.New(rand.NewSource(st.Seed))
	g := st.Sys.Graph
	M := g.M()
	root := rng.Intn(M)
	// Breadth-first descendant closure, capped so the move stays a
	// neighbourhood and not a full restart.
	limit := M/3 + 2
	closure := []int{root}
	seen := map[int]bool{root: true}
	for qi := 0; qi < len(closure) && len(closure) < limit; qi++ {
		for _, s := range g.Succ(closure[qi]) {
			if !seen[s] && len(closure) < limit {
				seen[s] = true
				closure = append(closure, s)
			}
		}
	}
	d := core.CloneDeployment(st.Incumbent)
	var destroyed []int
	total := 0
	for i := range d.Exists {
		if d.Exists[i] {
			total++
		}
	}
	for _, t := range closure {
		if d.Exists[t] {
			destroyed = append(destroyed, t)
		}
		if dup := t + M; d.Exists[dup] {
			destroyed = append(destroyed, dup)
		}
	}
	if len(destroyed) == 0 || len(destroyed) == total {
		return Delta{}, false
	}
	return repairDestroyed(ctx, st, d, destroyed)
}

// repairDestroyed re-places the destroyed slots of d greedily — each slot,
// in incumbent schedule order, goes to the processor minimizing the
// objective among horizon-respecting placements — and then polishes the
// candidate with a warm-started node-budgeted exact solve when the state
// carries a node budget. The greedy completion alone already yields a
// structurally valid deployment, so a cancelled or fruitless polish still
// returns the repaired candidate.
func repairDestroyed(ctx context.Context, st *State, d *core.Deployment, destroyed []int) (Delta, bool) {
	// Schedule order of the incumbent: predecessors come no later than
	// successors in any valid schedule, so placing in (Start, id) order
	// prices communication against already-placed predecessors.
	sort.Slice(destroyed, func(a, b int) bool {
		ia, ib := destroyed[a], destroyed[b]
		if d.Start[ia] != d.Start[ib] { //lint:allow floateq — deterministic tie-break; tolerance would break transitivity
			return d.Start[ia] < d.Start[ib]
		}
		return ia < ib
	})
	n := st.Sys.Mesh.N()
	for _, slot := range destroyed {
		bestK, bestObj, bestFits := -1, math.Inf(1), false
		for k := 0; k < n; k++ {
			d.Proc[slot] = k
			mk, err := core.Reschedule(st.Sys, d)
			if err != nil {
				return Delta{}, false // broken existing subgraph; no placement can fix it
			}
			obj, err := core.DeploymentObjective(st.Sys, d, st.Opts)
			if err != nil {
				continue
			}
			fits := numeric.LeqTol(mk, st.Sys.H, 1e-9)
			// Horizon-respecting placements beat overruns; within a class
			// the smaller objective wins, ties to the lowest processor.
			switch {
			case fits && !bestFits,
				fits == bestFits && numeric.LtTol(obj, bestObj, objTol):
				bestK, bestObj, bestFits = k, obj, fits
			}
		}
		if bestK < 0 {
			return Delta{}, false
		}
		d.Proc[slot] = bestK
		if _, err := core.Reschedule(st.Sys, d); err != nil {
			return Delta{}, false
		}
	}
	obj, err := core.DeploymentObjective(st.Sys, d, st.Opts)
	if err != nil {
		return Delta{}, false
	}
	feasible := core.CheckConstraints(st.Sys, d) == nil
	if st.NodeBudget > 0 {
		d, obj, feasible = exactPolish(ctx, st, d, obj, feasible)
	}
	return Delta{Deployment: d, Objective: obj, Feasible: feasible}, true
}

// exactPolish re-places the repaired candidate optimally within a node
// budget: a serial branch & bound warm-started from the candidate (when it
// is feasible — pruning plus a cutoff). The candidate is returned unchanged
// when the budgeted solve finds nothing better or is cancelled.
func exactPolish(ctx context.Context, st *State, d *core.Deployment, obj float64, feasible bool) (*core.Deployment, float64, bool) {
	oo := core.OptimalOptions{MaxNodes: st.NodeBudget, RelGap: 0.01, Workers: 1}
	if feasible {
		cutoff := obj
		oo.WarmDeployment = d
		oo.WarmStart = &cutoff
	}
	pd, pinfo, err := core.OptimalCtx(ctx, st.Sys, st.Opts, oo)
	if err != nil || pd == nil || !pinfo.Feasible {
		return d, obj, feasible
	}
	if !feasible || numeric.LtTol(pinfo.Objective, obj, objTol) {
		return pd, pinfo.Objective, true
	}
	return d, obj, feasible
}

// OperatorNames lists the built-in operators in canonical order — the
// round-robin order of the engine's warmup phase and the vocabulary of the
// service's ops= selection.
func OperatorNames() []string {
	return []string{"heuristic", "repair", "improve", "paths", "anneal", "region", "subtree", "exact"}
}

// newOperator builds one built-in operator with the options' budgets.
func newOperator(name string, o Options) (SolveOperator, error) {
	switch name {
	case "heuristic":
		return heuristicOp{}, nil
	case "repair":
		return heuristicOp{repair: true}, nil
	case "improve":
		return improveOp{moves: 4}, nil
	case "paths":
		return pathsOp{}, nil
	case "anneal":
		return annealOp{iters: o.annealIters()}, nil
	case "region":
		return regionOp{radius: 1}, nil
	case "subtree":
		return subtreeOp{}, nil
	case "exact":
		return exactOp{nodes: o.nodeBudget()}, nil
	}
	return nil, fmt.Errorf("engine: unknown operator %q (known: %v)", name, OperatorNames())
}

// BuildOperators resolves operator names into operator instances configured
// with the options' budgets; nil or empty names select the full built-in
// portfolio in canonical order.
func BuildOperators(names []string, o Options) ([]SolveOperator, error) {
	if len(names) == 0 {
		names = OperatorNames()
	}
	ops := make([]SolveOperator, 0, len(names))
	for _, n := range names {
		op, err := newOperator(n, o)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// ValidOperators reports whether every name resolves to a built-in
// operator — the service's request-validation hook.
func ValidOperators(names []string) error {
	for _, n := range names {
		if _, err := newOperator(n, Options{}); err != nil {
			return err
		}
	}
	return nil
}
