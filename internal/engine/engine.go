// Package engine is the anytime ALNS portfolio engine: it races pluggable
// solve operators — adapters over the core heuristic / repair / anneal /
// budgeted-exact solvers plus large-neighborhood destroy & repair moves —
// against one shared incumbent, adapting operator selection to observed
// improvement, and returns the validated best-so-far whenever the deadline
// or context says stop.
//
// Determinism contract: a portfolio solve is a pure function of (system,
// options) — byte-identical traces and identical incumbents at any Workers
// value. The engine earns this with a batch-synchronous loop: a seeded
// coordinator serially draws a fixed-size batch of (operator, derived seed)
// applications, the batch executes concurrently on a runner.Pool, and the
// reduction — validation, acceptance, reward, telemetry — replays serially
// in submission order. Worker count changes only wall-clock, never the
// decision sequence, because every operator application is itself a pure
// function of its state snapshot and derived seed.
package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"nocdeploy/internal/core"
	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/runner"
)

// Defaults for zero-valued Options fields.
const (
	defaultRounds      = 12
	defaultWarmup      = 2
	defaultAlpha       = 0.3
	defaultNodeBudget  = 150
	defaultAnnealIters = 400
	// scoreFloor keeps every operator selectable under roulette: a move
	// that has not paid off recently still gets occasional applications,
	// so the portfolio never collapses onto one operator.
	scoreFloor = 0.05
)

// Options configures a portfolio solve. The zero value selects the full
// built-in operator portfolio with moderate budgets.
type Options struct {
	// Operators is the portfolio; nil selects BuildOperators(nil, o) — the
	// full built-in set in canonical order.
	Operators []SolveOperator
	// Seed drives every random decision: operator roulette, application
	// seeds, operator-internal randomness. Same seed, same run.
	Seed int64
	// Rounds bounds the improvement loop (0 → 12). Each round applies
	// Batch operators; the loop also stops on context cancellation.
	Rounds int
	// Batch is the number of operator applications per round (0 → number
	// of operators). Fixed per run and independent of Workers, so the
	// application schedule is worker-count-invariant.
	Batch int
	// Workers sizes the runner.Pool racing a batch (0 → GOMAXPROCS via
	// runner.Workers). Changes throughput only, never results.
	Workers int
	// Warmup is the number of initial round-robin rounds before selection
	// turns adaptive (0 → 2).
	Warmup int
	// Alpha is the exponential smoothing factor of the per-operator
	// improvement scores (0 → 0.3).
	Alpha float64
	// NodeBudget bounds each warm-started exact solve inside operators
	// (0 → 150; < 0 disables exact polishing).
	NodeBudget int
	// AnnealIters sizes the anneal operator's burst (0 → 400).
	AnnealIters int
}

func (o Options) rounds() int {
	if o.Rounds <= 0 {
		return defaultRounds
	}
	return o.Rounds
}

func (o Options) batch(nOps int) int {
	if o.Batch <= 0 {
		return nOps
	}
	return o.Batch
}

func (o Options) warmup() int {
	if o.Warmup <= 0 {
		return defaultWarmup
	}
	return o.Warmup
}

func (o Options) alpha() float64 {
	if o.Alpha <= 0 || o.Alpha > 1 {
		return defaultAlpha
	}
	return o.Alpha
}

func (o Options) nodeBudget() int {
	if o.NodeBudget < 0 {
		return 0
	}
	if o.NodeBudget == 0 {
		return defaultNodeBudget
	}
	return o.NodeBudget
}

func (o Options) annealIters() int {
	if o.AnnealIters <= 0 {
		return defaultAnnealIters
	}
	return o.AnnealIters
}

// Engine holds the shared solve state of one portfolio run. The incumbent
// lives under a mutex — operators race on pool workers against private
// clones, and only the serial reduction (plus concurrent Best observers,
// e.g. a deadline watchdog) touches the shared copy.
type Engine struct {
	mu       sync.Mutex
	best     *core.Deployment
	bestObj  float64
	feasible bool
}

// Best returns a clone of the current incumbent with its objective and
// feasibility. Safe to call concurrently with a running solve; the clone
// means callers can never alias engine-owned state.
func (e *Engine) Best() (*core.Deployment, float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return core.CloneDeployment(e.best), e.bestObj, e.feasible
}

func (e *Engine) setBest(d *core.Deployment, obj float64, feasible bool) {
	e.mu.Lock()
	e.best, e.bestObj, e.feasible = d, obj, feasible
	e.mu.Unlock()
}

func (e *Engine) snapshot() (*core.Deployment, float64, bool) {
	return e.Best()
}

// Solve runs a portfolio solve without external cancellation.
func Solve(s *core.System, copts core.Options, eo Options) (*core.Deployment, *core.SolveInfo, error) {
	return SolveCtx(context.Background(), s, copts, eo)
}

// SolveCtx runs the anytime portfolio solve. It constructs an initial
// incumbent with the repaired heuristic — deliberately ignoring ctx, so a
// cancelled or deadline-expired solve still returns a validated best-effort
// deployment rather than an error — then improves it in batch-synchronous
// rounds until Rounds are exhausted or ctx is done, and returns the
// re-validated best-so-far. The returned error is non-nil only for
// malformed inputs or an empty/unknown operator portfolio.
//
// copts carries the objective, the trace and the clock, exactly as for the
// standalone core solvers; engine events (engine.iter, engine.op.apply,
// engine.weights) are emitted serially by the coordinator, and operator-
// internal solves run untraced so the event stream stays worker-invariant.
func SolveCtx(ctx context.Context, s *core.System, copts core.Options, eo Options) (*core.Deployment, *core.SolveInfo, error) {
	tr := copts.Trace
	clock := copts.Clock
	start := clock.Now()

	ops := eo.Operators
	if len(ops) == 0 {
		var err error
		if ops, err = BuildOperators(nil, eo); err != nil {
			return nil, nil, err
		}
	}

	tr.Emit(obs.Event{Kind: obs.SolveStart, Label: "portfolio"})

	// Operator solves share the caller's options minus the trace: inner
	// events would interleave nondeterministically across pool workers.
	inner := copts
	inner.Trace = nil

	// Construct: the repaired heuristic under the engine seed seeds the
	// incumbent. Background context on purpose — the anytime contract
	// promises a deployment even when the caller's deadline has already
	// passed, and the constructive heuristic is the cheap part.
	d0, info0, err := core.HeuristicWithRepairCtx(context.Background(), s, inner, eo.Seed, 0)
	if err != nil {
		return nil, nil, err
	}
	constructDur := clock.Now().Sub(start)

	eng := &Engine{}
	eng.setBest(d0, info0.Objective, info0.Feasible)

	var incumbents []core.IncumbentPoint
	incumbents = append(incumbents, core.IncumbentPoint{T: constructDur, Obj: info0.Objective})

	rng := rand.New(rand.NewSource(eo.Seed))
	scores := make([]float64, len(ops))
	for i := range scores {
		scores[i] = 1
	}
	batch := eo.batch(len(ops))
	warmup := eo.warmup()
	alpha := eo.alpha()
	budget := eo.nodeBudget()

	pool := runner.NewPool(eo.Workers, batch, nil)
	defer pool.Close()

	type application struct {
		op   int
		seed int64
		st   *State
		out  Delta
		ok   bool
		dur  float64
		done <-chan error
	}

	apps := 0 // global application counter
	cancelled := false
	rounds := eo.rounds()
	for round := 0; round < rounds; round++ {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		curBest, curObj, curFeas := eng.snapshot()

		// Serial selection: warmup rounds sweep the portfolio round-robin
		// so every operator earns an observed score before the roulette
		// starts trusting the scores.
		batchApps := make([]*application, batch)
		for b := 0; b < batch; b++ {
			var op int
			if round < warmup {
				op = (round*batch + b) % len(ops)
			} else {
				op = roulette(rng, scores)
			}
			batchApps[b] = &application{
				op:   op,
				seed: deriveSeed(eo.Seed, apps+b),
			}
		}

		// Concurrent execution: each application gets a private clone of
		// the round-start incumbent and runs as a pure function of it.
		for _, a := range batchApps {
			a.st = &State{
				Sys:        s,
				Opts:       inner,
				Incumbent:  core.CloneDeployment(curBest),
				Objective:  curObj,
				Feasible:   curFeas,
				Seed:       a.seed,
				NodeBudget: budget,
			}
			a := a
			run := func() error {
				t0 := clock.Now()
				a.out, a.ok = ops[a.op].Apply(ctx, a.st)
				a.dur = clock.Now().Sub(t0).Seconds()
				return nil
			}
			if done, serr := pool.TrySubmit(run); serr == nil {
				a.done = done
			} else {
				// Bounded queue rejected the task (can only happen if the
				// queue is shared beyond this batch); run inline — the
				// reduction below is order-based, not placement-based.
				_ = run()
			}
		}
		for _, a := range batchApps {
			if a.done != nil {
				<-a.done
			}
		}

		// Serial reduction in submission order: validation, acceptance,
		// reward and telemetry replay identically at any worker count.
		for _, a := range batchApps {
			apps++
			name := ops[a.op].Name()
			phase := "noop"
			reward := 0.0
			evObj := curObj
			if a.ok && a.out.Deployment != nil {
				m, verr := core.Validate(s, a.out.Deployment)
				switch {
				case m == nil:
					// Structurally invalid candidate — operator bug;
					// rejected wholesale.
					phase = "infeasible"
				case verr != nil:
					phase = "infeasible"
					evObj = objectiveOf(m, inner)
				default:
					obj := objectiveOf(m, inner)
					evObj = obj
					if !curFeas || numeric.LtTol(obj, curObj, objTol) {
						phase = "improved"
						reward = 1
						curBest, curObj, curFeas = a.out.Deployment, obj, true
						eng.setBest(curBest, curObj, curFeas)
						incumbents = append(incumbents, core.IncumbentPoint{
							T:   clock.Now().Sub(start),
							Obj: obj,
						})
					} else {
						phase = "feasible"
						reward = 0.1
					}
				}
			}
			scores[a.op] = (1-alpha)*scores[a.op] + alpha*reward
			tr.Emit(obs.Event{
				Kind:  obs.EngineOpApply,
				Label: name,
				Node:  apps,
				Obj:   evObj,
				Bound: scores[a.op],
				Dur:   a.dur,
				Phase: phase,
			})
		}
		tr.Emit(obs.Event{Kind: obs.EngineIter, Node: round + 1, Obj: curObj, Iters: apps})
		tr.Emit(obs.Event{Kind: obs.EngineWeights, Node: round + 1, Label: weightsLabel(ops, scores)})
	}

	// Return the re-validated best-so-far: acceptance already validated
	// every improvement, but the final check is the engine's own proof
	// that no operator corrupted the shared incumbent.
	best, bestObj, bestFeas := eng.Best()
	m, verr := core.Validate(s, best)
	if m == nil {
		return nil, nil, fmt.Errorf("engine: incumbent failed validation: %w", verr)
	}
	bestObj = objectiveOf(m, inner)
	bestFeas = verr == nil
	elapsed := clock.Now().Sub(start)
	outcome := "feasible"
	if !bestFeas {
		outcome = "infeasible"
	}
	tr.Emit(obs.Event{Kind: obs.SolveDone, Label: "portfolio", Obj: bestObj, Phase: outcome})
	info := &core.SolveInfo{
		Runtime:   elapsed,
		Feasible:  bestFeas,
		Objective: bestObj,
		Cancelled: cancelled || ctx.Err() != nil,
		Iters:     apps,
		Phases: []core.PhaseTiming{
			{Name: "construct", D: constructDur},
			{Name: "improve", D: elapsed - constructDur},
		},
		Incumbents: incumbents,
	}
	return best, info, nil
}

// objectiveOf reads the configured objective off already-computed metrics.
func objectiveOf(m *core.Metrics, opts core.Options) float64 {
	if opts.Objective == core.MinimizeEnergy {
		return m.SumEnergy
	}
	return m.MaxEnergy
}

// roulette draws one operator index proportionally to its floored score —
// fitness-proportionate selection over the smoothed improvement scores.
func roulette(rng *rand.Rand, scores []float64) int {
	total := 0.0
	for _, s := range scores {
		total += math.Max(s, scoreFloor)
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, s := range scores {
		acc += math.Max(s, scoreFloor)
		if r < acc {
			return i
		}
	}
	return len(scores) - 1
}

// weightsLabel renders the score table as "op=score,op=score,…" in
// portfolio order, the payload of engine.weights events.
func weightsLabel(ops []SolveOperator, scores []float64) string {
	var b strings.Builder
	for i, op := range ops {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%.3f", op.Name(), scores[i])
	}
	return b.String()
}

// deriveSeed mixes the engine seed with a global application index
// (splitmix64 finalizer), so each operator application draws from its own
// well-separated stream regardless of scheduling.
func deriveSeed(seed int64, idx int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}
