package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func model() Model { return Default(0.5e9, 1.0e9) }

func TestValidate(t *testing.T) {
	good := model()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Model{
		{LambdaMax: 0, D: 3, Fmax: 1e9, Fmin: 5e8, Rth: 0.999},
		{LambdaMax: 1e-6, D: -1, Fmax: 1e9, Fmin: 5e8, Rth: 0.999},
		{LambdaMax: 1e-6, D: 3, Fmax: 5e8, Fmin: 5e8, Rth: 0.999},
		{LambdaMax: 1e-6, D: 3, Fmax: 1e9, Fmin: 5e8, Rth: 1.0},
		{LambdaMax: 1e-6, D: 3, Fmax: 1e9, Fmin: 5e8, Rth: 0},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRateEndpoints(t *testing.T) {
	m := model()
	if got := m.Rate(m.Fmax); math.Abs(got-m.LambdaMax)/m.LambdaMax > 1e-12 {
		t.Errorf("Rate(fmax) = %g, want λmax %g", got, m.LambdaMax)
	}
	want := m.LambdaMax * math.Pow(10, m.D)
	if got := m.Rate(m.Fmin); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Rate(fmin) = %g, want %g", got, want)
	}
}

// Lower frequency must mean strictly higher fault rate and, for fixed
// cycles, lower reliability (the DVFS-reliability tradeoff the paper exploits).
func TestReliabilityMonotoneInFrequency(t *testing.T) {
	m := model()
	const cycles = 2e6
	prevR := -1.0
	for f := m.Fmin; f <= m.Fmax+1; f += 1e8 {
		r := m.TaskReliability(cycles, f)
		if r <= prevR {
			t.Fatalf("reliability not increasing at f=%g: %g <= %g", f, r, prevR)
		}
		if r <= 0 || r >= 1 {
			t.Fatalf("reliability %g out of (0,1)", r)
		}
		prevR = r
	}
}

func TestReliabilityDecreasesWithCycles(t *testing.T) {
	m := model()
	r1 := m.TaskReliability(1e6, m.Fmin)
	r2 := m.TaskReliability(1e8, m.Fmin)
	if r2 >= r1 {
		t.Errorf("more cycles should be less reliable: %g >= %g", r2, r1)
	}
}

func TestCombined(t *testing.T) {
	if got := Combined(0.9, 0.9); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("Combined(0.9,0.9) = %g, want 0.99", got)
	}
	if got := Combined(1, 0); got != 1 {
		t.Errorf("Combined(1,0) = %g", got)
	}
	if got := Combined(0, 0); got != 0 {
		t.Errorf("Combined(0,0) = %g", got)
	}
}

// Duplication must help: r' ≥ max(r1, r2), with equality only at the
// degenerate endpoints.
func TestCombinedImprovesProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		r1 := float64(a) / 65535
		r2 := float64(b) / 65535
		c := Combined(r1, r2)
		return c >= r1-1e-15 && c >= r2-1e-15 && c <= 1+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// With the default constants there must exist workloads that pass at fmax
// but need duplication at fmin — otherwise Fig. 2(c) would be degenerate.
func TestDuplicationRegimeExists(t *testing.T) {
	m := model()
	const cycles = 2e6
	if m.NeedsDuplication(cycles, m.Fmax) {
		t.Errorf("typical task should meet Rth at fmax (r=%g)", m.TaskReliability(cycles, m.Fmax))
	}
	if !m.NeedsDuplication(cycles*50, m.Fmin) {
		t.Errorf("heavy task at fmin should need duplication (r=%g)", m.TaskReliability(cycles*50, m.Fmin))
	}
}

// A duplicated task at low frequency must be able to reach the threshold —
// this is the feasibility premise of Algorithm 1 step (c).
func TestDuplicationRecoversThreshold(t *testing.T) {
	m := model()
	const cycles = 4e6
	r := m.TaskReliability(cycles, m.Fmin)
	if r >= m.Rth {
		t.Skip("task already reliable; pick bigger cycles")
	}
	if c := Combined(r, r); c < m.Rth {
		t.Errorf("duplication not sufficient: r=%g, combined=%g < Rth=%g", r, c, m.Rth)
	}
}

func TestSigma(t *testing.T) {
	got := Sigma(0.5, []float64{0.2, 0.6, 0.5})
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Sigma = %g, want 0.1", got)
	}
	// All exactly at threshold → tiny positive fallback.
	if got := Sigma(0.5, []float64{0.5}); got <= 0 {
		t.Errorf("Sigma fallback = %g", got)
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r1, r2 := 0.95, 0.90
	want := Combined(r1, r2)
	got := MonteCarlo(rng, r1, true, r2, 200000)
	if math.Abs(got-want) > 0.005 {
		t.Errorf("MonteCarlo = %g, analytic %g", got, want)
	}
	single := MonteCarlo(rng, r1, false, 0, 200000)
	if math.Abs(single-r1) > 0.005 {
		t.Errorf("MonteCarlo single = %g, want %g", single, r1)
	}
}
