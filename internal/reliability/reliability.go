// Package reliability implements the paper's transient-fault model: faults
// arrive as a Poisson process whose rate grows exponentially as frequency
// drops (DVFS lowers voltage, shrinking critical charge):
//
//	λ(f)  = λmax · 10^( d · (fmax − f) / (fmax − fmin) )
//	r(C,f) = exp( −λ(f) · C / f )
//
// where C is the task's cycle count. When r falls below the threshold Rth
// the task is duplicated and the combined reliability becomes
// r' = 1 − (1 − r₁)(1 − r₂), assuming fault independence between copies.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
)

// Model holds the fault-model constants and frequency range.
type Model struct {
	LambdaMax float64 // fault rate at fmax (faults/second)
	D         float64 // sensitivity of the fault rate to frequency scaling
	Fmax      float64 // hertz
	Fmin      float64 // hertz
	Rth       float64 // per-task reliability threshold
}

// Default returns the constants used throughout the evaluation: a 5e-6 /s
// base rate, sensitivity d = 5 and a 99.99% threshold — values in the range
// used by the reliability-aware DVFS literature the paper builds on, and
// calibrated so that millisecond-scale tasks meet Rth at high frequencies
// but need duplication at the lowest ones (the regime Fig. 2(c) sweeps).
func Default(fmin, fmax float64) Model {
	return Model{LambdaMax: 5e-6, D: 5, Fmax: fmax, Fmin: fmin, Rth: 0.9999}
}

// Validate checks model consistency.
func (m Model) Validate() error {
	if m.LambdaMax <= 0 {
		return fmt.Errorf("reliability: lambda %g must be positive", m.LambdaMax)
	}
	if m.D < 0 {
		return fmt.Errorf("reliability: sensitivity d %g must be non-negative", m.D)
	}
	if m.Fmin <= 0 || m.Fmax <= m.Fmin {
		return fmt.Errorf("reliability: bad frequency range [%g, %g]", m.Fmin, m.Fmax)
	}
	if m.Rth <= 0 || m.Rth >= 1 {
		return fmt.Errorf("reliability: threshold %g must be in (0, 1)", m.Rth)
	}
	return nil
}

// Rate returns λ(f), the fault rate at frequency f.
func (m Model) Rate(f float64) float64 {
	return m.LambdaMax * math.Pow(10, m.D*(m.Fmax-f)/(m.Fmax-m.Fmin))
}

// TaskReliability returns r_il: the probability that a task of cycles WCEC
// executed at frequency f completes without a transient fault.
func (m Model) TaskReliability(cycles, f float64) float64 {
	return math.Exp(-m.Rate(f) * cycles / f)
}

// Combined returns r' = 1 − (1 − r1)(1 − r2), the reliability of a task
// with an independent duplicate.
func Combined(r1, r2 float64) float64 {
	return 1 - (1-r1)*(1-r2)
}

// NeedsDuplication reports whether a task run at frequency f violates the
// threshold and must be duplicated (the paper's h_{i+M} decision, eq. (4)).
func (m Model) NeedsDuplication(cycles, f float64) bool {
	return m.TaskReliability(cycles, f) < m.Rth
}

// Sigma returns the paper's σ: the smallest gap |r_il − Rth| over the given
// reliability values, used in the Lemma 2.1 linearization of eq. (4).
func Sigma(rth float64, r []float64) float64 {
	sigma := math.Inf(1)
	for _, v := range r {
		if g := math.Abs(v - rth); g < sigma && g > 0 {
			sigma = g
		}
	}
	if math.IsInf(sigma, 1) {
		sigma = 1e-12
	}
	return sigma
}

// Sample simulates one execution of a task with success probability r using
// rng, returning true on fault-free completion.
func Sample(rng *rand.Rand, r float64) bool {
	return rng.Float64() < r
}

// MonteCarlo estimates by simulation the success probability of a task
// (optionally duplicated) over runs trials and returns the observed ratio.
// A run succeeds if at least one copy completes fault-free.
func MonteCarlo(rng *rand.Rand, r1 float64, duplicated bool, r2 float64, runs int) float64 {
	ok := 0
	for i := 0; i < runs; i++ {
		s := Sample(rng, r1)
		if !s && duplicated {
			s = Sample(rng, r2)
		}
		if s {
			ok++
		}
	}
	return float64(ok) / float64(runs)
}
