// Package service exposes the solver stack as a long-running deployment
// service: a bounded job queue feeding a worker pool, fronted by a
// content-addressed solution cache with singleflight coalescing, behind a
// small HTTP API (see handlers.go).
//
// The three layers compose as queue → pool → cache → solver:
//
//   - admission control: the queue is bounded; a full queue rejects
//     immediately (HTTP 429) instead of building unbounded backlog;
//   - coalescing: identical requests — same canonical instance hash, same
//     solver options — share one solve in flight and then one cached
//     solution (spec.Instance.CanonicalHash is the key);
//   - cancellation: per-request deadlines flow as a context through
//     HeuristicCtx / AnnealCtx / OptimalCtx, so an expired request stops
//     branch & bound mid-tree and returns the best incumbent with the
//     Cancelled flag; cancelled (partial) results are never cached.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nocdeploy/internal/archive"
	"nocdeploy/internal/cache"
	"nocdeploy/internal/core"
	"nocdeploy/internal/engine"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/runner"
	"nocdeploy/internal/spec"
)

// Solver names accepted by the API, matching cmd/deploy's -method values.
const (
	SolverHeuristic = "heuristic"
	SolverRepair    = "repair"
	SolverAnneal    = "anneal"
	SolverOptimal   = "optimal"
	SolverPortfolio = "portfolio"

	// SolverAuto asks the archive advisor to pick the solver from this
	// instance's history (see resolveAuto). It is resolved to a concrete
	// solver before normalization, so it never reaches the cache key or
	// the solver switch.
	SolverAuto = "auto"
)

// ValidSolver reports whether name is an accepted solver selection.
func ValidSolver(name string) bool {
	switch name {
	case SolverHeuristic, SolverRepair, SolverAnneal, SolverOptimal, SolverPortfolio:
		return true
	}
	return false
}

// Service errors. ErrBadRequest wraps client mistakes (HTTP 400),
// ErrNoSolution reports a solver that finished without any deployment
// (HTTP 422), and runner.ErrQueueFull surfaces as HTTP 429.
var (
	ErrBadRequest = errors.New("bad request")
	ErrNoSolution = errors.New("no deployment found")
	ErrClosed     = errors.New("service closed")
)

// Config tunes a Service. The zero value is serviceable: all-core workers,
// a 64-deep queue, a 256-entry cache.
type Config struct {
	Workers    int // solver pool size; ≤0 means all cores
	QueueDepth int // queued (not yet executing) solves before 429
	CacheSize  int // LRU entries
	MaxJobs    int // live async jobs before 429
	// DefaultTimeout bounds solves that carry no explicit deadline;
	// 0 means no default. MaxTimeout clamps explicit deadlines (0 = 1h).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	Metrics        *obs.Metrics

	// TraceBuffer sizes the in-memory event ring that backs
	// GET /v1/requests/{id}/trace: 0 means the 4096-event default,
	// negative disables request tracing entirely (which also disables the
	// streaming endpoints and flight recorder — both ride the same trace).
	TraceBuffer int
	// StreamBuffer sizes each SSE subscriber's drop-oldest event buffer
	// (see obs.BroadcastSink); 0 means 256.
	StreamBuffer int
	// Heartbeat is the idle interval between SSE comment heartbeats that
	// keep intermediaries from timing out a quiet stream; 0 means 15s.
	Heartbeat time.Duration
	// FlightRecorder is how many trailing trace events are attached to a
	// failed or cancelled async job record; 0 means 64, negative disables.
	FlightRecorder int
	// TraceSinks are additional sinks (JSONL files, …) fanned the same
	// request-tagged event stream; closed by Service.Close.
	TraceSinks []obs.Sink
	// AccessLog, when non-nil, receives one structured JSON line per
	// HTTP request (id, route, status, stage timings).
	AccessLog io.Writer

	// Archive, when non-nil, records every non-cached solve into the
	// persistent solve archive and enables GET /v1/archive and
	// solver=auto (see internal/archive). The Service takes ownership:
	// Close drains and closes the store. Archiving is write-only — solver
	// output is byte-identical with and without it.
	Archive *archive.Store

	// Clock is the service's time source for uptime accounting; nil
	// means the wall clock. Injected so tests pin uptime_seconds.
	Clock obs.Clock
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Hour
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 256
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 15 * time.Second
	}
	if c.FlightRecorder == 0 {
		c.FlightRecorder = 64
	}
	return c
}

// SolveRequest is one fully-parsed solve order.
type SolveRequest struct {
	Instance  spec.Instance
	Solver    string        // one of the Solver* constants
	Objective string        // "be" (default) or "me"
	Seed      int64         // solver tie-break seed
	Timeout   time.Duration // 0 means Config.DefaultTimeout

	// Portfolio engine options (SolverPortfolio only; rejected otherwise).
	// EngineOps selects the operator portfolio by name; empty means the
	// full built-in set. EngineRounds bounds the improvement loop and
	// EngineBudget each warm-started exact repair (0 = engine defaults).
	// All three change the answer, so all three are part of the cache key.
	EngineOps    []string
	EngineRounds int
	EngineBudget int

	// RequestID tags every trace event this request's solve emits. The
	// HTTP layer mints it at admission; Solve assigns one when empty.
	// Deliberately excluded from the cache key — identity never changes
	// a solution.
	RequestID string

	// Advice is the advisor decision that resolved solver=auto into the
	// fields above; nil for explicit solver selections. Excluded from the
	// cache key (the resolved options already determine the answer) and
	// recorded on the archived solve, closing the advisor feedback loop.
	Advice *archive.Decision
}

// normalize fills defaults and validates, wrapping failures in
// ErrBadRequest.
func (r *SolveRequest) normalize() error {
	if r.Solver == "" {
		r.Solver = SolverHeuristic
	}
	if !ValidSolver(r.Solver) {
		return fmt.Errorf("%w: unknown solver %q", ErrBadRequest, r.Solver)
	}
	switch r.Objective {
	case "", "be":
		r.Objective = "be"
	case "me":
	default:
		return fmt.Errorf("%w: unknown objective %q (want be or me)", ErrBadRequest, r.Objective)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Solver == SolverPortfolio {
		if err := engine.ValidOperators(r.EngineOps); err != nil {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		// Canonicalize "full portfolio" so an explicit full list and an
		// empty selection share one cache entry.
		if len(r.EngineOps) == 0 {
			r.EngineOps = engine.OperatorNames()
		}
		if r.EngineRounds < 0 || r.EngineBudget < 0 {
			return fmt.Errorf("%w: engine rounds/budget must be non-negative", ErrBadRequest)
		}
	} else if len(r.EngineOps) != 0 || r.EngineRounds != 0 || r.EngineBudget != 0 {
		return fmt.Errorf("%w: engine options require solver=portfolio", ErrBadRequest)
	}
	if len(r.Instance.Graph.Tasks) == 0 {
		return fmt.Errorf("%w: instance has no tasks", ErrBadRequest)
	}
	return nil
}

func (r *SolveRequest) coreOptions(tr *obs.Trace) core.Options {
	opts := core.Options{Trace: tr}
	if r.Objective == "me" {
		opts.Objective = core.MinimizeEnergy
	}
	return opts
}

// cacheKey is the content address of the request: the canonical instance
// hash plus every solver option that changes the answer. The timeout is
// deliberately excluded — a deadline changes when a solve stops, not what
// a completed solve returns, and truncated (cancelled) results are never
// stored. The bare instance hash is returned alongside so the archive
// records it without re-hashing.
func (r *SolveRequest) cacheKey() (key, hash string, err error) {
	h, err := r.Instance.CanonicalHash()
	if err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	key = h + "|solver=" + r.Solver + "|obj=" + r.Objective + "|seed=" + strconv.FormatInt(r.Seed, 10)
	if r.Solver == SolverPortfolio {
		// Engine options select different search trajectories, hence
		// different (all valid) answers: no cross-engine cache hits.
		key += "|ops=" + strings.Join(r.EngineOps, ",") +
			"|rounds=" + strconv.Itoa(r.EngineRounds) +
			"|budget=" + strconv.Itoa(r.EngineBudget)
	}
	return key, h, nil
}

// SolveResult is the outcome of one underlying solve, as cached and as
// embedded in async job bodies.
type SolveResult struct {
	Solver     string          `json:"solver"`
	Key        string          `json:"key"`
	Deployment spec.Deployment `json:"deployment"`
	Feasible   bool            `json:"feasible"`
	Cancelled  bool            `json:"cancelled"`
	Runtime    float64         `json:"runtimeSeconds"`
}

// Service is the deployment-as-a-service engine. Create with New, serve
// via Handler, stop with Close.
type Service struct {
	cfg    Config
	met    *obs.Metrics
	pool   *runner.Pool
	cache  *cache.Cache[*SolveResult]
	jobs   *jobTable
	trace  *obs.Trace         // root of every request-scoped child trace; may be nil
	ring   *obs.RingSink      // recent-event retention for trace endpoints; may be nil
	bcast  *obs.BroadcastSink // live fan-out behind the SSE endpoints; may be nil
	alog   *accessLogger      // may be nil
	arch   *archive.Store     // persistent solve archive; may be nil
	coll   *archive.Collector // trajectory folding for the archive; may be nil
	clock  obs.Clock
	start  time.Time // service start, per clock — uptime_seconds epoch
	reqSeq atomic.Int64
	solves atomic.Int64 // underlying solver invocations (cache misses that ran)
	closed atomic.Bool
	bg     sync.WaitGroup // async job goroutines

	// solveHook replaces runSolve in tests. Guarded by being set before any
	// request is served.
	solveHook func(ctx context.Context, req SolveRequest) (*SolveResult, error)
}

// New builds a Service and starts its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		met:   cfg.Metrics,
		pool:  runner.NewPool(cfg.Workers, cfg.QueueDepth, nil),
		cache: cache.New[*SolveResult](cfg.CacheSize),
		jobs:  newJobTable(cfg.MaxJobs),
		alog:  newAccessLogger(cfg.AccessLog),
		arch:  cfg.Archive,
		clock: cfg.Clock,
	}
	s.start = s.clock.Now()
	var sinks []obs.Sink
	if cfg.TraceBuffer >= 0 {
		capacity := cfg.TraceBuffer
		if capacity == 0 {
			capacity = 4096
		}
		s.ring = obs.NewRingSink(capacity)
		s.bcast = obs.NewBroadcastSink()
		sinks = append(sinks, s.ring, s.bcast)
	}
	if s.arch != nil {
		// The collector folds each request's incumbent trajectory and
		// operator stats for its archive record. Registered as a sink so
		// folding rides the existing emission path — archiving observes
		// the solve, it never participates in it.
		s.coll = archive.NewCollector(0, 0)
		sinks = append(sinks, s.coll)
	}
	sinks = append(sinks, cfg.TraceSinks...)
	// Fold solver events into the metrics registry so per-operator engine
	// counters (and bb.*/lp.* work counters) surface through /metrics.
	sinks = append(sinks, obs.NewMetricsSink(cfg.Metrics))
	s.trace = obs.New(sinks...)
	s.arch.AttachTrace(s.trace)
	s.setBuildInfo()
	return s
}

// Close drains the service: admission stops (requests get ErrClosed),
// in-flight async jobs and every queued solve run to completion, the
// worker pool exits, and the trace sinks flush. Safe to call more than
// once.
func (s *Service) Close() {
	s.closed.Store(true)
	s.bg.Wait()
	s.pool.Close()
	// All emitters have stopped; flush file-backed trace sinks. Errors
	// have nowhere useful to go — the service is already down.
	_ = s.trace.Close()
	// Drain the archive writer last: every recorded solve is durable
	// before Close returns, so a restart recovers the full history.
	_ = s.arch.Close()
}

// SolveRuns reports how many underlying solver invocations have happened —
// the denominator of cache effectiveness (requests − SolveRuns were
// answered by coalescing or the cache).
func (s *Service) SolveRuns() int64 { return s.solves.Load() }

// CacheStats snapshots the solution cache accounting.
func (s *Service) CacheStats() cache.Stats { return s.cache.Stats() }

// QueueDepth reports solves admitted but not yet finished.
func (s *Service) QueueDepth() int { return s.pool.Pending() }

// Solve answers req through the cache/queue/pool stack: a cache hit
// returns immediately, a request identical to one in flight waits for that
// flight, and otherwise the caller becomes the leader — its solve is
// admitted to the bounded queue (runner.ErrQueueFull on overload) and runs
// on the pool under ctx. The outcome reports which path answered.
//
// Observability: the request's ID (minted here if the HTTP layer did not
// already) tags every trace event the solve emits, each serving stage is
// observed into its latency histogram, and exactly one outcome-labelled
// request counter is incremented on return.
func (s *Service) Solve(ctx context.Context, req SolveRequest) (*SolveResult, cache.Outcome, error) {
	ri := reqInfoFrom(ctx)
	if req.RequestID == "" {
		if ri != nil {
			req.RequestID = ri.id
		} else {
			req.RequestID = s.nextRequestID()
		}
	}
	res, outcome, err := s.solve(ctx, req, ri)
	oc := classifyOutcome(outcome, res, err)
	s.countOutcome(oc)
	ri.setOutcome(oc)
	return res, outcome, err
}

func (s *Service) solve(ctx context.Context, req SolveRequest, ri *reqInfo) (*SolveResult, cache.Outcome, error) {
	if s.closed.Load() {
		return nil, cache.Miss, ErrClosed
	}
	s.resolveAuto(&req) // idempotent: the HTTP layer may already have
	if err := req.normalize(); err != nil {
		return nil, cache.Miss, err
	}
	key, hash, err := req.cacheKey()
	if err != nil {
		return nil, cache.Miss, err
	}
	tr := s.trace.WithRequest(req.RequestID)
	t0 := time.Now()
	res, flight, outcome := s.cache.Acquire(key)
	s.stage(ri, tr, StageCache, time.Since(t0))
	if ri != nil {
		ri.cache = outcome.String()
	}
	switch outcome {
	case cache.Hit:
		return res, outcome, nil
	case cache.Coalesced:
		res, err := flight.Wait(ctx)
		return res, outcome, err
	}
	// Leader: run the solve on the pool; every coalesced waiter shares the
	// result. The flight must be finished on all paths or waiters hang.
	start := time.Now()
	var out *SolveResult
	var queueWait, solveDur time.Duration
	done, err := s.pool.TrySubmit(func() error {
		begun := time.Now()
		queueWait = begun.Sub(start)
		var err error
		out, err = s.runSolve(ctx, req, key, tr)
		solveDur = time.Since(begun)
		return err
	})
	if err != nil {
		s.cache.Finish(flight, nil, err, false)
		return nil, outcome, err
	}
	err = <-done // synchronizes queueWait/solveDur with the worker's writes
	s.stage(ri, tr, StageQueue, queueWait)
	s.stage(ri, tr, StageSolve, solveDur)
	// Cancelled solves are partial by definition: deliver them to waiters
	// but never store them, so a later unhurried request re-solves.
	store := err == nil && out != nil && !out.Cancelled
	s.cache.Finish(flight, out, err, store)
	s.met.Observe("solve.seconds", time.Since(start).Seconds())
	// Archive the solve after the flight is settled — recording is
	// write-only and off the waiters' path.
	s.recordSolve(req, hash, out, err, solveStages{
		queue: queueWait,
		solve: solveDur,
		e2e:   time.Since(start),
	})
	return out, outcome, err
}

// runSolve executes one solver invocation. It runs on a pool worker with
// the leader's request context; tr is the leader's request-scoped trace,
// so the solver's events carry the leader's request ID.
func (s *Service) runSolve(ctx context.Context, req SolveRequest, key string, tr *obs.Trace) (*SolveResult, error) {
	s.solves.Add(1)
	if s.solveHook != nil {
		return s.solveHook(ctx, req)
	}
	start := time.Now()
	sys, err := req.Instance.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	opts := req.coreOptions(tr)
	var (
		d    *core.Deployment
		info *core.SolveInfo
	)
	switch req.Solver {
	case SolverHeuristic:
		d, info, err = core.HeuristicCtx(ctx, sys, opts, req.Seed)
	case SolverRepair:
		d, info, err = core.HeuristicWithRepairCtx(ctx, sys, opts, req.Seed, 0)
	case SolverAnneal:
		d, info, err = core.AnnealCtx(ctx, sys, opts, core.AnnealOptions{Seed: req.Seed})
	case SolverPortfolio:
		// One pool worker already hosts this solve; the engine races its
		// batch serially-reduced on one inner worker so service throughput
		// stays governed by the service pool, not nested parallelism.
		eo := engine.Options{
			Seed:       req.Seed,
			Rounds:     req.EngineRounds,
			NodeBudget: req.EngineBudget,
			Workers:    1,
		}
		eo.Operators, err = engine.BuildOperators(req.EngineOps, eo)
		if err == nil {
			d, info, err = engine.SolveCtx(ctx, sys, opts, eo)
		}
	case SolverOptimal:
		// Warm-start branch & bound from the repaired heuristic, like
		// cmd/deploy: a seeded incumbent both prunes the tree and guarantees
		// a deadline-cancelled solve still returns a deployment.
		var hd *core.Deployment
		var hinfo *core.SolveInfo
		hd, hinfo, err = core.HeuristicWithRepairCtx(ctx, sys, opts, req.Seed, 0)
		if err == nil {
			if hinfo.Cancelled {
				d, info = hd, hinfo
				break
			}
			oo := core.OptimalOptions{RelGap: 0.01}
			if hinfo.Feasible {
				oo.WarmDeployment = hd
			}
			d, info, err = core.OptimalCtx(ctx, sys, opts, oo)
			if err == nil && d == nil && info != nil && info.Cancelled && hinfo.Feasible {
				// Cancelled before branch & bound could seed its incumbent
				// (the deadline died in model build or the warm-start LP):
				// the repaired heuristic deployment is still a valid answer.
				d = hd
				info = &core.SolveInfo{
					Feasible:  true,
					Objective: hinfo.Objective,
					Cancelled: true,
					Runtime:   time.Since(start),
				}
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if d == nil {
		if info != nil && info.Cancelled {
			// Cancelled before any incumbent existed (e.g. during model
			// build): surface the context's own error.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, context.Canceled
		}
		return nil, ErrNoSolution
	}
	res := &SolveResult{
		Solver:    req.Solver,
		Key:       key,
		Feasible:  info.Feasible,
		Cancelled: info.Cancelled,
		Runtime:   time.Since(start).Seconds(),
	}
	if m, merr := core.ComputeMetrics(sys, d); merr == nil {
		res.Deployment = spec.FromDeployment(d, m, info)
	} else if info.Cancelled {
		// A truncated partial deployment may not admit metrics; return the
		// raw decision vectors so the client sees how far the solve got.
		res.Deployment = spec.FromDeployment(d, nil, info)
	} else {
		return nil, merr
	}
	return res, nil
}

// effectiveTimeout resolves a request's solve budget against the
// configured default and clamp.
func (s *Service) effectiveTimeout(req time.Duration) time.Duration {
	d := req
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d <= 0 || d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Service) nextRequestID() string {
	return "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
}
