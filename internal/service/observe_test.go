package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nocdeploy/internal/obs"
)

// TestRequestTraceSlice is the request-ID propagation acceptance test: a
// sync solve's X-Request-ID fetches a trace slice in which every event —
// including the solver's own events — carries that ID.
func TestRequestTraceSlice(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve?solver=heuristic", body)
	_ = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("missing X-Request-ID")
	}

	traceResp, err := http.Get(srv.URL + "/v1/requests/" + reqID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, traceResp)
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", traceResp.StatusCode, raw)
	}
	if ct := traceResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type %q", ct)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("trace slice not valid JSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace slice")
	}
	kinds := map[obs.Kind]int{}
	for _, e := range events {
		if e.Req != reqID {
			t.Fatalf("event %s has req %q, want %q", e.Kind, e.Req, reqID)
		}
		kinds[e.Kind]++
	}
	for _, want := range []obs.Kind{obs.ReqAdmit, obs.ReqStage, obs.ReqDone} {
		if kinds[want] == 0 {
			t.Fatalf("trace slice missing %s event (kinds: %v)", want, kinds)
		}
	}
	// The solver itself must have emitted under the request's ID — the
	// whole point of threading the child trace through the stack.
	solverKinds := 0
	for k, n := range kinds {
		switch k {
		case obs.ReqAdmit, obs.ReqStage, obs.ReqDone:
		default:
			solverKinds += n
		}
	}
	if solverKinds == 0 {
		t.Fatalf("no solver events in trace slice (kinds: %v)", kinds)
	}

	// Unknown IDs 404.
	missResp, err := http.Get(srv.URL + "/v1/requests/no-such-request/trace")
	if err != nil {
		t.Fatal(err)
	}
	_ = readBody(t, missResp)
	if missResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown request trace status %d, want 404", missResp.StatusCode)
	}
}

// TestJobTraceSlice covers the async path: the job record carries the
// request ID and /v1/jobs/{id}/trace serves the same slice.
func TestJobTraceSlice(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve?mode=async", body)
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async solve status %d: %s", resp.StatusCode, got)
	}
	var job Job
	if err := json.Unmarshal(got, &job); err != nil {
		t.Fatal(err)
	}
	if job.Request == "" {
		t.Fatal("job record missing request ID")
	}
	if job.Request != resp.Header.Get("X-Request-ID") {
		t.Fatalf("job request %q != X-Request-ID %q", job.Request, resp.Header.Get("X-Request-ID"))
	}

	// Wait for the job to finish so the req.done event is in the ring.
	deadline := time.Now().Add(5 * time.Second)
	for {
		jr, err := http.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var j Job
		if err := json.Unmarshal(readBody(t, jr), &j); err != nil {
			t.Fatal(err)
		}
		if j.terminal() {
			if j.Status != JobDone {
				t.Fatalf("job failed: %s", j.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(10 * time.Millisecond)
	}

	tr, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, tr)
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("job trace status %d: %s", tr.StatusCode, raw)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sawDone := false
	for _, e := range events {
		if e.Req != job.Request {
			t.Fatalf("event %s has req %q, want %q", e.Kind, e.Req, job.Request)
		}
		if e.Kind == obs.ReqDone {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("async trace slice missing req.done")
	}
}

// TestMetricsPrometheus is the exposition acceptance test: Accept:
// text/plain returns parser-valid Prometheus v0.0.4 text including the
// queue-depth gauge, the cache hit ratio, the stage latency histograms
// and the outcome-labelled request counters; the default stays JSON.
func TestMetricsPrometheus(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	for i := 0; i < 3; i++ {
		resp := postSolve(t, srv.URL+"/v1/solve", body)
		_ = readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type %q, want %q", ct, obs.PromContentType)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control %q, want no-store", cc)
	}

	fams, err := obs.ParsePrometheus(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, raw)
	}
	gauge := func(name string) float64 {
		t.Helper()
		fam, ok := fams[name]
		if !ok {
			t.Fatalf("missing family %s", name)
		}
		if fam.Type != "gauge" {
			t.Fatalf("%s type %q, want gauge", name, fam.Type)
		}
		return fam.Samples[0].Value
	}
	if v := gauge("queue_depth"); v < 0 {
		t.Fatalf("queue_depth %g", v)
	}
	if v := gauge("cache_hit_ratio"); v < 0.6 || v > 0.7 {
		t.Fatalf("cache_hit_ratio %g, want ≈2/3", v)
	}
	for _, stage := range []string{StageAdmission, StageCache, StageQueue, StageSolve, StageE2E} {
		name := "stage_" + stage + "_seconds"
		fam, ok := fams[name]
		if !ok {
			t.Fatalf("missing stage histogram %s", name)
		}
		if fam.Type != "histogram" {
			t.Fatalf("%s type %q, want histogram", name, fam.Type)
		}
	}
	reqFam, ok := fams["requests_total"]
	if !ok {
		t.Fatal("missing requests_total family")
	}
	outcomes := map[string]float64{}
	for _, s := range reqFam.Samples {
		outcomes[s.Labels["outcome"]] = s.Value
	}
	if outcomes[OutcomeOK] != 1 || outcomes[OutcomeCached] != 2 {
		t.Fatalf("requests_total outcomes %v, want ok=1 cached=2", outcomes)
	}

	// The default representation is still the JSON snapshot.
	jresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jraw := readBody(t, jresp)
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default /metrics Content-Type %q, want application/json", ct)
	}
	if cc := jresp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("default /metrics Cache-Control %q, want no-store", cc)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(jraw, &snap); err != nil {
		t.Fatalf("default /metrics not JSON: %v", err)
	}
	if _, ok := snap.Hists[stageMetric(StageE2E)]; !ok {
		t.Fatal("JSON snapshot missing stage.e2e_seconds histogram")
	}

	// ?format=prom works without an Accept header (curl-friendly).
	presp, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	praw := readBody(t, presp)
	if _, err := obs.ParsePrometheus(bytes.NewReader(praw)); err != nil {
		t.Fatalf("?format=prom does not parse: %v", err)
	}
}

// TestAccessLog checks the structured access log: one JSON line per
// request with the request ID, status, outcome and stage timings.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu syncBuffer
	mu.buf = &buf
	svc := New(Config{AccessLog: &mu})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve", body)
	_ = readBody(t, resp)
	reqID := resp.Header.Get("X-Request-ID")

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = readBody(t, hresp)

	lines := strings.Split(strings.TrimSpace(mu.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d access-log lines, want 2:\n%s", len(lines), mu.String())
	}
	var solveRec accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &solveRec); err != nil {
		t.Fatalf("access log line not JSON: %v", err)
	}
	if solveRec.ID != reqID {
		t.Fatalf("access log id %q, want %q", solveRec.ID, reqID)
	}
	if solveRec.Status != http.StatusOK || solveRec.Outcome != OutcomeOK {
		t.Fatalf("access log record %+v", solveRec)
	}
	if solveRec.Cache != "miss" {
		t.Fatalf("access log cache %q, want miss", solveRec.Cache)
	}
	for _, stage := range []string{StageAdmission, StageCache, StageQueue, StageSolve} {
		if _, ok := solveRec.Stages[stage]; !ok {
			t.Fatalf("access log missing stage %q: %+v", stage, solveRec.Stages)
		}
	}
	var healthRec accessRecord
	if err := json.Unmarshal([]byte(lines[1]), &healthRec); err != nil {
		t.Fatal(err)
	}
	if healthRec.Path != "/healthz" || healthRec.Outcome != "" {
		t.Fatalf("healthz access record %+v", healthRec)
	}
}

// syncBuffer makes a bytes.Buffer safe for the concurrent writes the
// access logger may issue.
type syncBuffer struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRejectedOutcomeCounted: admission failures must settle the outcome
// counter too.
func TestRejectedOutcomeCounted(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	_ = readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	snap := svc.met.Snapshot()
	if n := snap.Counters[obs.Key("requests", "outcome", OutcomeRejected)]; n != 1 {
		t.Fatalf("rejected outcome count %d, want 1", n)
	}
}

// TestTracingDisabled: TraceBuffer<0 turns the ring off; solves still
// work and trace endpoints 404.
func TestTracingDisabled(t *testing.T) {
	svc := New(Config{TraceBuffer: -1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve", body)
	_ = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-ID")
	tr, err := http.Get(srv.URL + "/v1/requests/" + reqID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	_ = readBody(t, tr)
	if tr.StatusCode != http.StatusNotFound {
		t.Fatalf("trace status %d with tracing disabled, want 404", tr.StatusCode)
	}
}
