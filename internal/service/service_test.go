package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nocdeploy/internal/core"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/spec"
)

// chainInstance builds a 2-processor chain instance: small enough that the
// heuristic answers in milliseconds, structured enough that the exact
// solver's tree takes tens of seconds (the deadline-cancellation tests
// depend on that gap).
func chainInstance(n int, horizon float64) spec.Instance {
	inst := spec.Instance{
		Platform: spec.Platform{Levels: []spec.VFLevel{
			{Voltage: 0.85, Freq: 0.5e9},
			{Voltage: 1.10, Freq: 1.0e9},
		}},
		Mesh:    spec.Mesh{W: 2, H: 1, Seed: 1},
		Horizon: horizon,
	}
	for i := 0; i < n; i++ {
		inst.Graph.Tasks = append(inst.Graph.Tasks, spec.Task{WCEC: 5e8, Deadline: 2.0})
	}
	for i := 0; i+1 < n; i++ {
		inst.Graph.Edges = append(inst.Graph.Edges, spec.Edge{From: i, To: i + 1, Bytes: 32 << 10})
	}
	return inst
}

func instanceBody(t *testing.T, inst spec.Instance) []byte {
	t.Helper()
	b, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSolve(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSolveSyncEndToEnd(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	inst := chainInstance(3, 5.0)
	body := instanceBody(t, inst)
	resp := postSolve(t, srv.URL+"/v1/solve?solver=heuristic", body)
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("first request X-Cache %q, want miss", h)
	}
	if h := resp.Header.Get("X-Solver"); h != "heuristic" {
		t.Fatalf("X-Solver %q", h)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("missing X-Request-ID")
	}
	var dep spec.Deployment
	if err := json.Unmarshal(got, &dep); err != nil {
		t.Fatalf("decoding deployment: %v", err)
	}
	if !dep.Feasible {
		t.Fatal("heuristic deployment infeasible on the chain instance")
	}
	sys, err := inst.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Validate(sys, dep.ToDeployment()); err != nil {
		t.Fatalf("returned deployment fails validation: %v", err)
	}

	// The identical request is a cache hit with an identical body.
	resp2 := postSolve(t, srv.URL+"/v1/solve?solver=heuristic", body)
	got2 := readBody(t, resp2)
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("second request X-Cache %q, want hit", h)
	}
	if !bytes.Equal(got, got2) {
		t.Fatal("cache hit returned a different deployment")
	}
	if n := svc.SolveRuns(); n != 1 {
		t.Fatalf("%d underlying solves, want 1", n)
	}
}

// TestConcurrentCoalescing is the headline acceptance test: 100 concurrent
// identical POSTs produce identical Validate-clean deployments from
// exactly one underlying solve, everything else answered by the flight or
// the cache. Run under -race in CI.
func TestConcurrentCoalescing(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	inst := chainInstance(3, 5.0)
	body := instanceBody(t, inst)
	const n = 100
	type reply struct {
		status int
		cache  string
		body   []byte
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				replies[i] = reply{status: -1}
				return
			}
			b, err := io.ReadAll(resp.Body)
			if cerr := resp.Body.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				replies[i] = reply{status: -1}
				return
			}
			replies[i] = reply{status: resp.StatusCode, cache: resp.Header.Get("X-Cache"), body: b}
		}(i)
	}
	wg.Wait()

	counts := map[string]int{}
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, r.status, r.body)
		}
		counts[r.cache]++
		if !bytes.Equal(r.body, replies[0].body) {
			t.Fatalf("request %d returned a different deployment", i)
		}
	}
	if n := svc.SolveRuns(); n != 1 {
		t.Fatalf("%d underlying solves for %d identical requests, want exactly 1", n, 100)
	}
	if counts["miss"] != 1 {
		t.Fatalf("cache outcomes %v: want exactly 1 miss", counts)
	}
	if served := counts["hit"] + counts["coalesced"]; served != n-1 {
		t.Fatalf("cache outcomes %v: want %d hit+coalesced", counts, n-1)
	}
	var dep spec.Deployment
	if err := json.Unmarshal(replies[0].body, &dep); err != nil {
		t.Fatal(err)
	}
	sys, err := inst.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Validate(sys, dep.ToDeployment()); err != nil {
		t.Fatalf("deployment fails validation: %v", err)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	svc.solveHook = func(ctx context.Context, req SolveRequest) (*SolveResult, error) {
		started <- struct{}{}
		<-gate
		return &SolveResult{Solver: req.Solver, Feasible: true}, nil
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Distinct seeds give distinct cache keys, so nothing coalesces.
	urlFor := func(seed int) string { return fmt.Sprintf("%s/v1/solve?seed=%d", srv.URL, seed) }
	body := instanceBody(t, chainInstance(3, 5.0))

	type result struct {
		status int
	}
	results := make(chan result, 2)
	post := func(seed int) {
		resp, err := http.Post(urlFor(seed), "application/json", bytes.NewReader(body))
		if err != nil {
			results <- result{-1}
			return
		}
		_ = readBodyQuiet(resp)
		results <- result{resp.StatusCode}
	}
	go post(1) // occupies the single worker
	<-started
	go post(2) // sits in the single queue slot
	waitFor(t, func() bool { return svc.QueueDepth() == 2 })

	resp := postSolve(t, urlFor(3), body) // admission control rejects
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d (%s), want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if r := <-results; r.status != http.StatusOK {
			t.Fatalf("admitted request finished with %d", r.status)
		}
	}
}

func readBodyQuiet(resp *http.Response) []byte {
	b, _ := io.ReadAll(resp.Body) //lint:allow errdrop — best-effort read in test helper
	_ = resp.Body.Close()         //lint:allow errdrop — best-effort close in test helper
	return b
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestDeadlineCancelledOptimal: an optimal solve with a deadline far below
// the tree's needs returns promptly with the warm-started incumbent and
// the cancellation surfaced in headers — and the truncated result is NOT
// cached, so an unhurried retry gets a fresh solve.
func TestDeadlineCancelledOptimal(t *testing.T) {
	inst := chainInstance(6, 9.2)
	// Precondition: the repaired heuristic must be feasible so the exact
	// solve is warm-started (both are deterministic).
	sys, err := inst.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, hinfo, err := core.HeuristicWithRepair(sys, core.Options{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hinfo.Feasible {
		t.Fatal("test instance: repaired heuristic infeasible; pick another horizon")
	}

	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := instanceBody(t, inst)

	start := time.Now()
	resp := postSolve(t, srv.URL+"/v1/solve?solver=optimal&timeout=400ms", body)
	got := readBody(t, resp)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if h := resp.Header.Get("X-Solve-Cancelled"); h != "true" {
		t.Fatalf("X-Solve-Cancelled %q, want true (elapsed %v)", h, elapsed)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled solve took %v", elapsed)
	}
	var dep spec.Deployment
	if err := json.Unmarshal(got, &dep); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Validate(sys, dep.ToDeployment()); err != nil {
		t.Fatalf("cancelled incumbent fails validation: %v", err)
	}

	// Truncated results must not be cached.
	resp2 := postSolve(t, srv.URL+"/v1/solve?solver=optimal&timeout=400ms", body)
	_ = readBody(t, resp2)
	if h := resp2.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("retry after cancelled solve X-Cache %q, want miss", h)
	}

	// Shutdown drains cleanly: no stuck solver goroutines.
	done := make(chan struct{})
	go func() { svc.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain within 30s — leaked solver goroutine?")
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	svc := New(Config{})
	svc.solveHook = func(ctx context.Context, req SolveRequest) (*SolveResult, error) {
		return &SolveResult{Solver: req.Solver, Feasible: true}, nil
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve?mode=async", body)
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status %d: %s", resp.StatusCode, got)
	}
	var job Job
	if err := json.Unmarshal(got, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Status != JobQueued {
		t.Fatalf("job %+v", job)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Fatalf("Location %q", loc)
	}

	waitFor(t, func() bool {
		r, err := http.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			return false
		}
		b := readBodyQuiet(r)
		if r.StatusCode != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(b, &job); err != nil {
			return false
		}
		return job.Status == JobDone
	})
	if job.Result == nil || !job.Result.Feasible {
		t.Fatalf("finished job %+v missing result", job)
	}
	if job.Cache != "miss" {
		t.Fatalf("job cache outcome %q, want miss", job.Cache)
	}
	if job.Finished == nil {
		t.Fatal("finished job has no finish time")
	}

	r, err := http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	_ = readBodyQuiet(r)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", r.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	svc := New(Config{Metrics: obs.NewMetrics()})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	for i := 0; i < 3; i++ {
		resp := postSolve(t, srv.URL+"/v1/solve", body)
		_ = readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(got, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Counters["http.requests"] < 4 {
		t.Fatalf("http.requests %d, want ≥4", snap.Counters["http.requests"])
	}
	if _, ok := snap.Gauges["queue.depth"]; !ok {
		t.Fatal("metrics missing queue.depth gauge")
	}
	ratio, ok := snap.Gauges["cache.hit_ratio"]
	if !ok {
		t.Fatal("metrics missing cache.hit_ratio gauge")
	}
	// 3 identical requests: 1 miss + 2 hits.
	if ratio < 0.6 || ratio > 0.7 {
		t.Fatalf("cache.hit_ratio %g, want ≈2/3", ratio)
	}
	if snap.Gauges["solve.runs"] != 1 {
		t.Fatalf("solve.runs %g, want 1", snap.Gauges["solve.runs"])
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	svc := New(Config{})
	release := make(chan struct{})
	entered := make(chan struct{})
	svc.solveHook = func(ctx context.Context, req SolveRequest) (*SolveResult, error) {
		close(entered)
		<-release
		return &SolveResult{Solver: req.Solver, Feasible: true}, nil
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve?mode=async", body)
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status %d: %s", resp.StatusCode, got)
	}
	var job Job
	if err := json.Unmarshal(got, &job); err != nil {
		t.Fatal(err)
	}
	<-entered

	closed := make(chan struct{})
	go func() { svc.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a job was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not finish after the job released")
	}

	// The drained job completed rather than being dropped.
	j, ok := svc.jobs.get(job.ID)
	if !ok || j.Status != JobDone {
		t.Fatalf("job after drain: %+v (ok=%v)", j, ok)
	}
	// New work is rejected while closed.
	resp = postSolve(t, srv.URL+"/v1/solve", body)
	_ = readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close solve status %d, want 503", resp.StatusCode)
	}
	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = readBodyQuiet(r)
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close healthz %d, want 503", r.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"malformed json", "/v1/solve", "{", http.StatusBadRequest},
		{"unknown solver", "/v1/solve?solver=quantum", `{"graph":{"tasks":[{"wcec":1,"deadline":1}]}}`, http.StatusBadRequest},
		{"bad timeout", "/v1/solve?timeout=soon", `{"graph":{"tasks":[{"wcec":1,"deadline":1}]}}`, http.StatusBadRequest},
		{"empty instance", "/v1/solve", `{}`, http.StatusBadRequest},
		{"unbuildable instance", "/v1/solve", `{"graph":{"tasks":[{"wcec":1,"deadline":1}]},"horizon":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+tc.url, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		b := readBodyQuiet(resp)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, b, tc.want)
		}
	}
}

func TestHealthz(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b := readBodyQuiet(r)
	if r.StatusCode != http.StatusOK || !bytes.Contains(b, []byte("ok")) {
		t.Fatalf("healthz %d %s", r.StatusCode, b)
	}
}
