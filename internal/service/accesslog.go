package service

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// accessRecord is one structured access-log line: who asked for what,
// what came back, and where the time went. Stage durations are
// milliseconds keyed by stage name.
type accessRecord struct {
	Time    string             `json:"t"`
	ID      string             `json:"id"`
	Method  string             `json:"method"`
	Path    string             `json:"path"`
	Status  int                `json:"status"`
	Ms      float64            `json:"ms"`
	Outcome string             `json:"outcome,omitempty"`
	Cache   string             `json:"cache,omitempty"`
	Stages  map[string]float64 `json:"stagesMs,omitempty"`
}

// accessLogger serializes one JSON object per request onto w. Concurrent
// requests finish concurrently, so lines are written under a mutex; the
// destination (a file or stderr) is owned by the caller.
type accessLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{enc: json.NewEncoder(w)}
}

// log writes one record; a nil logger discards it. Write errors are
// swallowed — the access log must never fail a request.
func (l *accessLogger) log(rec accessRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	_ = l.enc.Encode(rec)
	l.mu.Unlock()
}

// record builds the log line for one finished request.
func (ri *reqInfo) record(method, path string, status int, elapsed time.Duration) accessRecord {
	rec := accessRecord{
		Time:    time.Now().UTC().Format(time.RFC3339Nano),
		ID:      ri.id,
		Method:  method,
		Path:    path,
		Status:  status,
		Ms:      float64(elapsed.Microseconds()) / 1e3,
		Outcome: ri.outcome,
		Cache:   ri.cache,
	}
	if len(ri.stages) > 0 {
		rec.Stages = make(map[string]float64, len(ri.stages))
		for _, st := range ri.stages {
			rec.Stages[st.name] = float64(st.dur.Microseconds()) / 1e3
		}
	}
	return rec
}
