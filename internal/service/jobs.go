package service

import (
	"strconv"
	"sync"
	"time"

	"nocdeploy/internal/obs"
)

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job is one asynchronous solve. Result is set only in state "done";
// Error only in "failed". Cache reports which path answered (hit, miss,
// coalesced) once the job finished. Request is the ID of the request
// that created the job — the handle for fetching its trace slice.
type Job struct {
	ID       string       `json:"id"`
	Status   string       `json:"status"`
	Solver   string       `json:"solver"`
	Request  string       `json:"request,omitempty"`
	Created  time.Time    `json:"created"`
	Finished *time.Time   `json:"finished,omitempty"`
	Cache    string       `json:"cache,omitempty"`
	Error    string       `json:"error,omitempty"`
	Result   *SolveResult `json:"result,omitempty"`
	// Trace is the flight recorder: the last Config.FlightRecorder trace
	// events of the solve, attached only when the job failed or was
	// cancelled — enough context to diagnose without re-running.
	Trace []obs.Event `json:"trace,omitempty"`
}

func (j *Job) terminal() bool {
	return j.Status == JobDone || j.Status == JobFailed
}

// jobTable is a bounded in-memory job registry. When full, creating a job
// evicts the oldest finished job; if every slot is a live job the create is
// rejected — async admission control, mirroring the solve queue's 429.
type jobTable struct {
	mu    sync.Mutex
	max   int
	seq   int64
	jobs  map[string]*Job
	order []string // insertion order, for oldest-finished eviction
}

func newJobTable(max int) *jobTable {
	return &jobTable{max: max, jobs: map[string]*Job{}}
}

// create registers a queued job, evicting the oldest finished job if the
// table is full. ok=false means the table is full of live jobs.
func (t *jobTable) create(solver, request string, now time.Time) (Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.jobs) >= t.max && !t.evictOldestFinished() {
		return Job{}, false
	}
	t.seq++
	j := &Job{
		ID:      "job-" + strconv.FormatInt(t.seq, 10),
		Status:  JobQueued,
		Solver:  solver,
		Request: request,
		Created: now,
	}
	t.jobs[j.ID] = j
	t.order = append(t.order, j.ID)
	return *j, true
}

// evictOldestFinished removes the first terminal job in insertion order,
// reporting whether a slot was freed. Called under t.mu.
func (t *jobTable) evictOldestFinished() bool {
	for i, id := range t.order {
		j, ok := t.jobs[id]
		if !ok {
			continue
		}
		if j.terminal() {
			delete(t.jobs, id)
			t.order = append(t.order[:i], t.order[i+1:]...)
			return true
		}
	}
	return false
}

// get returns a copy of the job.
func (t *jobTable) get(id string) (Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// update applies fn to the job under the table lock.
func (t *jobTable) update(id string, fn func(*Job)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j, ok := t.jobs[id]; ok {
		fn(j)
	}
}

// size counts all retained jobs, finished or not (a metrics gauge).
func (t *jobTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// live counts non-terminal jobs (a metrics gauge).
func (t *jobTable) live() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, j := range t.jobs {
		if !j.terminal() {
			n++
		}
	}
	return n
}
