package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nocdeploy/internal/archive"
	"nocdeploy/internal/obs"
)

func newArchivedService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	arch, err := archive.Open(archive.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Archive: arch}) // svc.Close closes the store
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func listArchive(t *testing.T, base, query string) []archive.Summary {
	t.Helper()
	resp, err := http.Get(base + "/v1/archive" + query)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/archive: %s: %s", resp.Status, body)
	}
	var recs []archive.Summary
	if err := json.Unmarshal(body, &recs); err != nil {
		t.Fatalf("archive listing: %v\n%s", err, body)
	}
	return recs
}

// TestArchiveWriteOnly is the acceptance proof that archiving never
// touches solver output: the same request against an archiving and a
// non-archiving service returns byte-identical deployments.
func TestArchiveWriteOnly(t *testing.T) {
	plain := New(Config{})
	defer plain.Close()
	plainSrv := httptest.NewServer(plain.Handler())
	defer plainSrv.Close()
	_, archSrv := newArchivedService(t)

	body := instanceBody(t, chainInstance(3, 5.0))
	for _, solver := range []string{"heuristic", "repair"} {
		url := "/v1/solve?solver=" + solver + "&seed=7"
		a := readBody(t, postSolve(t, plainSrv.URL+url, body))
		b := readBody(t, postSolve(t, archSrv.URL+url, body))
		if string(a) != string(b) {
			t.Fatalf("solver %s: archive changed the response:\n%s\nvs\n%s", solver, a, b)
		}
	}
}

func TestArchiveRecordsSolves(t *testing.T) {
	_, srv := newArchivedService(t)
	body := instanceBody(t, chainInstance(3, 5.0))

	resp := postSolve(t, srv.URL+"/v1/solve?solver=repair&seed=1", body)
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %s", resp.Status)
	}
	readBody(t, postSolve(t, srv.URL+"/v1/solve?solver=heuristic&seed=1", body))
	// Identical to the first request: a cache hit, not a solve — the
	// archive must not record it.
	readBody(t, postSolve(t, srv.URL+"/v1/solve?solver=repair&seed=1", body))

	recs := listArchive(t, srv.URL, "")
	if len(recs) != 2 {
		t.Fatalf("%d archived records, want 2 (cache hit not recorded)", len(recs))
	}
	newest := recs[0]
	if newest.Solver != "heuristic" || recs[1].Solver != "repair" {
		t.Fatalf("recorded solvers = %s, %s", newest.Solver, recs[1].Solver)
	}
	if newest.Hash == "" || newest.Hash != recs[1].Hash {
		t.Fatalf("instance hashes: %q vs %q", newest.Hash, recs[1].Hash)
	}
	if newest.Outcome != archive.OutcomeOK || !newest.Feasible {
		t.Fatalf("newest record: %+v", newest)
	}
	if newest.Tasks != 3 || newest.MeshW != 2 || newest.MeshH != 1 {
		t.Fatalf("instance signature: %+v", newest)
	}

	// Filters pass through the query layer.
	if got := listArchive(t, srv.URL, "?solver=repair"); len(got) != 1 {
		t.Fatalf("solver filter: %d, want 1", len(got))
	}
	if got := listArchive(t, srv.URL, "?limit=1"); len(got) != 1 || got[0].ID != newest.ID {
		t.Fatalf("limit filter: %+v", got)
	}

	// Full record round-trip, with the per-stage latencies attached.
	resp, err := http.Get(srv.URL + "/v1/archive/" + newest.ID)
	if err != nil {
		t.Fatal(err)
	}
	full := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET record: %s: %s", resp.Status, full)
	}
	var rec archive.Record
	if err := json.Unmarshal(full, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != newest.ID || rec.Request == "" {
		t.Fatalf("full record: %+v", rec)
	}
	if _, ok := rec.Stages[StageSolve]; !ok {
		t.Fatalf("record has no solve-stage latency: %+v", rec.Stages)
	}

	// Unknown ID and stats envelope.
	resp, err = http.Get(srv.URL + "/v1/archive/a999")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown record: %s, want 404", resp.Status)
	}
	resp, err = http.Get(srv.URL + "/v1/archive/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody := readBody(t, resp)
	var stats struct {
		Records int                            `json:"records"`
		Solvers map[string]archive.SolverStats `json:"solvers"`
		Store   struct{ Records, Pending int } `json:"store"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatalf("stats: %v\n%s", err, statsBody)
	}
	if stats.Records != 2 || stats.Solvers["repair"].Count != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestSolverAutoEndToEnd(t *testing.T) {
	_, srv := newArchivedService(t)
	body := instanceBody(t, chainInstance(3, 5.0))

	// Train: two solvers on the same instance hash.
	readBody(t, postSolve(t, srv.URL+"/v1/solve?solver=repair&seed=1", body))
	readBody(t, postSolve(t, srv.URL+"/v1/solve?solver=heuristic&seed=1", body))

	// The auto solve (distinct seed, so it is a fresh solve) must resolve
	// via the exact-hash tier and record the decision.
	resp := postSolve(t, srv.URL+"/v1/solve?solver=auto&seed=2", body)
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solver=auto: %s", resp.Status)
	}
	advised := resp.Header.Get("X-Advised-Solver")
	if advised != "repair" && advised != "heuristic" {
		t.Fatalf("X-Advised-Solver = %q", advised)
	}
	if got := resp.Header.Get("X-Advise-Basis"); got != "instance" {
		t.Fatalf("X-Advise-Basis = %q, want instance", got)
	}
	if got := resp.Header.Get("X-Solver"); got != advised {
		t.Fatalf("X-Solver = %q, want the advised %q", got, advised)
	}

	recs := listArchive(t, srv.URL, "?limit=1")
	if len(recs) != 1 || !recs[0].Advised || recs[0].Solver != advised {
		t.Fatalf("auto solve not recorded with its decision: %+v", recs)
	}

	// The standalone advise endpoint reports the same decision.
	resp, err := http.Post(srv.URL+"/v1/archive/advise", "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	adviseBody := readBody(t, resp)
	var dec archive.Decision
	if err := json.Unmarshal(adviseBody, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Basis != "instance" || dec.Candidates == 0 {
		t.Fatalf("advise endpoint: %+v", dec)
	}
}

func TestSolverAutoWithArchiveDisabled(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := instanceBody(t, chainInstance(3, 5.0))

	resp := postSolve(t, srv.URL+"/v1/solve?solver=auto", body)
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solver=auto without archive: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Advised-Solver"); got != archive.DefaultSolver {
		t.Fatalf("X-Advised-Solver = %q, want the default %q", got, archive.DefaultSolver)
	}
	if got := resp.Header.Get("X-Advise-Basis"); got != "default" {
		t.Fatalf("X-Advise-Basis = %q", got)
	}

	// Query routes 404 without an archive; advise still answers.
	resp, err := http.Get(srv.URL + "/v1/archive")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/archive without archive: %s, want 404", resp.Status)
	}
	resp, err = http.Post(srv.URL+"/v1/archive/advise", "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	adviseBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise without archive: %s", resp.Status)
	}
	var dec archive.Decision
	if err := json.Unmarshal(adviseBody, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Solver != archive.DefaultSolver || dec.Basis != "default" {
		t.Fatalf("decision without archive: %+v", dec)
	}
}

// TestArchiveRestartSurvivesHistory: a second service over the same
// directory serves the first service's records.
func TestArchiveRestartSurvivesHistory(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Service, *httptest.Server) {
		arch, err := archive.Open(archive.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		svc := New(Config{Archive: arch})
		return svc, httptest.NewServer(svc.Handler())
	}
	svc, srv := open()
	body := instanceBody(t, chainInstance(3, 5.0))
	readBody(t, postSolve(t, srv.URL+"/v1/solve?solver=repair", body))
	srv.Close()
	svc.Close() // drains the archive writer

	svc2, srv2 := open()
	defer func() { srv2.Close(); svc2.Close() }()
	recs := listArchive(t, srv2.URL, "")
	if len(recs) != 1 || recs[0].Solver != "repair" {
		t.Fatalf("history after restart: %+v", recs)
	}
	// And the full record is readable from its recovered segment.
	resp, err := http.Get(srv2.URL + "/v1/archive/" + recs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET recovered record: %s: %s", resp.Status, got)
	}
}

func TestUptimeAndBuildInfoMetrics(t *testing.T) {
	tick := int64(0)
	clock := obs.Clock(func() time.Time {
		tick++
		return time.Unix(1_700_000_000+10*tick, 0)
	})
	svc := New(Config{Clock: clock})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(readBody(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	up, ok := snap.Gauges["uptime_seconds"]
	if !ok || up <= 0 {
		t.Fatalf("uptime_seconds = %v (present %v), want a positive fake-clock delta", up, ok)
	}
	found := false
	for k, v := range snap.Gauges {
		if strings.HasPrefix(k, "build_info{") {
			if v != 1 {
				t.Fatalf("build_info = %v, want 1", v)
			}
			if !strings.Contains(k, `goversion="go`) || !strings.Contains(k, "version=") {
				t.Fatalf("build_info labels: %s", k)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no build_info gauge in %v", snap.Gauges)
	}

	// Both present in the Prometheus exposition too.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	prom := string(readBody(t, presp))
	for _, want := range []string{"\nbuild_info{", "\nuptime_seconds "} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, prom)
		}
	}
}

// TestStreamLastEventIDResume pins the server half of watch reconnect:
// a replayed stream with Last-Event-ID set skips everything the client
// already saw.
func TestStreamLastEventIDResume(t *testing.T) {
	_, srv := newArchivedService(t)
	body := instanceBody(t, chainInstance(3, 5.0))

	resp := postSolve(t, srv.URL+"/v1/solve?solver=repair&mode=async", body)
	var job Job
	if err := json.Unmarshal(readBody(t, resp), &job); err != nil {
		t.Fatal(err)
	}

	// First attach: drain to the terminal, remembering the max event id.
	maxSeq := int64(0)
	drain := func(lastID int64) (ids []int64, sawTerminal bool) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+job.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastID > 0 {
			req.Header.Set("Last-Event-ID", fmt.Sprint(lastID))
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := r.Body.Close(); err != nil {
				t.Fatal(err)
			}
		}()
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "id: ") {
				var id int64
				if _, err := fmt.Sscanf(line, "id: %d", &id); err == nil {
					ids = append(ids, id)
				}
			}
			if strings.HasPrefix(line, "event: solve.done") {
				sawTerminal = true
			}
			if sawTerminal && line == "" {
				return ids, true
			}
		}
		return ids, sawTerminal
	}

	ids, done := drain(0)
	if !done || len(ids) == 0 {
		t.Fatalf("first stream: terminal=%v ids=%d", done, len(ids))
	}
	for _, id := range ids {
		if id > maxSeq {
			maxSeq = id
		}
	}

	// Resume past everything: only the synthesized terminal remains.
	ids2, done2 := drain(maxSeq)
	if !done2 {
		t.Fatal("resumed stream never terminated")
	}
	for _, id := range ids2 {
		if id <= maxSeq {
			t.Fatalf("resumed stream replayed already-seen id %d (resume %d)", id, maxSeq)
		}
	}
}
