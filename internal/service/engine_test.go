package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nocdeploy/internal/engine"
	"nocdeploy/internal/obs"
)

// TestEngineOptionsCacheKeys: identical instances with different engine
// options (operator set / seed / budget / rounds) must produce distinct
// cache keys — no cross-engine cache hits — while the "full portfolio"
// spelling is canonical (empty selection and the explicit full list share
// one entry).
func TestEngineOptionsCacheKeys(t *testing.T) {
	inst := chainInstance(3, 5.0)
	keyOf := func(mutate func(*SolveRequest)) string {
		req := SolveRequest{Instance: inst, Solver: SolverPortfolio}
		mutate(&req)
		if err := req.normalize(); err != nil {
			t.Fatalf("normalize: %v", err)
		}
		key, _, err := req.cacheKey()
		if err != nil {
			t.Fatalf("cacheKey: %v", err)
		}
		return key
	}

	base := keyOf(func(r *SolveRequest) {})
	variants := map[string]string{
		"operator set": keyOf(func(r *SolveRequest) { r.EngineOps = []string{"repair", "region"} }),
		"seed":         keyOf(func(r *SolveRequest) { r.Seed = 2 }),
		"budget":       keyOf(func(r *SolveRequest) { r.EngineBudget = 10 }),
		"rounds":       keyOf(func(r *SolveRequest) { r.EngineRounds = 3 }),
	}
	for what, key := range variants {
		if key == base {
			t.Errorf("different %s produced identical cache key %q", what, key)
		}
	}
	full := keyOf(func(r *SolveRequest) { r.EngineOps = engine.OperatorNames() })
	if full != base {
		t.Errorf("explicit full portfolio and default portfolio keys differ:\n%q\n%q", full, base)
	}

	// The portfolio key must also never collide with another solver's.
	plain := SolveRequest{Instance: inst, Solver: SolverRepair}
	if err := plain.normalize(); err != nil {
		t.Fatal(err)
	}
	plainKey, _, err := plain.cacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if plainKey == base {
		t.Errorf("portfolio and repair share cache key %q", base)
	}
}

// TestNoCrossEngineCacheHits drives the full service stack: repeating a
// portfolio request hits the cache, while changing any engine option runs
// a fresh solve.
func TestNoCrossEngineCacheHits(t *testing.T) {
	svc := New(Config{})
	var mu sync.Mutex
	seen := make(map[string]int) // cache key → underlying solve count
	svc.solveHook = func(ctx context.Context, req SolveRequest) (*SolveResult, error) {
		key, _, err := req.cacheKey()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		seen[key]++
		mu.Unlock()
		return &SolveResult{Solver: req.Solver, Key: key, Feasible: true}, nil
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	post := func(query string) {
		t.Helper()
		resp := postSolve(t, srv.URL+"/v1/solve?solver=portfolio"+query, body)
		b := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve%s status %d (%s)", query, resp.StatusCode, b)
		}
	}

	post("")                   // leader
	post("")                   // identical → cache hit
	post("&ops=repair,region") // different operator set → new solve
	post("&seed=2")            // different seed → new solve
	post("&budget=10")         // different exact budget → new solve
	post("&rounds=3")          // different round budget → new solve

	if got := svc.SolveRuns(); got != 5 {
		t.Errorf("SolveRuns = %d, want 5 (one cache hit, four distinct engine configs)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 5 {
		t.Errorf("distinct cache keys solved = %d, want 5: %v", len(seen), seen)
	}
	for key, n := range seen {
		if n != 1 {
			t.Errorf("cache key %q solved %d times, want 1", key, n)
		}
	}
}

// TestEngineOptionsRejectedForOtherSolvers: engine options on a
// non-portfolio solver are a client mistake, not a silent no-op.
func TestEngineOptionsRejectedForOtherSolvers(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve?solver=repair&ops=region", body)
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, b)
	}

	resp = postSolve(t, srv.URL+"/v1/solve?solver=portfolio&ops=warp", body)
	b = readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown operator status %d (%s), want 400", resp.StatusCode, b)
	}
}

// TestPortfolioSolveEndToEnd runs a real (un-hooked) portfolio solve
// through the HTTP API and asserts the per-operator engine counters
// surface in both /metrics representations.
func TestPortfolioSolveEndToEnd(t *testing.T) {
	m := obs.NewMetrics()
	svc := New(Config{Metrics: m})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve?solver=portfolio&ops=heuristic,repair,improve,region&rounds=2&budget=2", body)
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("portfolio solve status %d (%s)", resp.StatusCode, b)
	}
	var res SolveResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if !res.Feasible || res.Cancelled {
		t.Fatalf("portfolio result feasible=%v cancelled=%v, want feasible", res.Feasible, res.Cancelled)
	}

	get := func(url string) []byte {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		return readBody(t, resp)
	}
	jm := get(srv.URL + "/metrics?format=json")
	// JSON object keys escape the label quotes: engine.op.applies{op=\"repair\"}.
	if !strings.Contains(string(jm), `engine.op.applies{op=`) {
		t.Errorf("JSON metrics missing engine.op.applies counters:\n%s", jm)
	}
	if !strings.Contains(string(jm), `"engine.iters"`) {
		t.Errorf("JSON metrics missing engine.iters counter")
	}
	pm := get(srv.URL + "/metrics?format=prom")
	if !strings.Contains(string(pm), `engine_op_applies_total{op="repair"}`) {
		t.Errorf("Prometheus metrics missing engine_op_applies_total:\n%s", pm)
	}
}
