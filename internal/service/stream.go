// Live solve streaming: Server-Sent Events over the request-tagged trace
// stream.
//
// GET /v1/requests/{id}/events and GET /v1/jobs/{id}/events attach an SSE
// client to one request's solve as it runs. The handler subscribes to the
// service's obs.BroadcastSink *first*, then replays the RingSink's
// retained prefix (so a late joiner sees the incumbents it missed), then
// forwards live events, deduplicating the overlap by the trace's global
// sequence number. The subscription buffer is bounded with drop-oldest
// semantics — a stalled client can never block the solver — and a drop
// surfaces in-band as a stream.gap event before the events that survived
// it. Idle streams carry comment heartbeats so intermediaries keep the
// connection open. The stream ends with a solve.done terminal event
// (Label "request") carrying the request's outcome.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"nocdeploy/internal/obs"
)

// handleRequestEvents streams one request's events by request ID (the
// X-Request-ID of any earlier response). An unknown or long-evicted ID
// yields an open stream of heartbeats — SSE clients may legitimately
// attach before the request arrives.
func (s *Service) handleRequestEvents(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	s.streamEvents(w, r, r.PathValue("id"), nil)
}

// handleJobEvents streams the solve behind an async job. Unlike the
// request route, an unknown job is a hard 404, and a job that already
// finished gets its replay prefix plus an immediate terminal event
// synthesized from the job record.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	s.streamEvents(w, r, job.Request, &job)
}

// parseKinds reads the ?kinds= filter (comma-separated event kinds).
// req.done is always included when a filter is present: without it the
// stream could never observe its own termination.
func parseKinds(r *http.Request) []obs.Kind {
	raw := r.URL.Query().Get("kinds")
	if raw == "" {
		return nil
	}
	var kinds []obs.Kind
	sawDone := false
	for _, k := range strings.Split(raw, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		kinds = append(kinds, obs.Kind(k))
		if obs.Kind(k) == obs.ReqDone {
			sawDone = true
		}
	}
	if len(kinds) > 0 && !sawDone {
		kinds = append(kinds, obs.ReqDone)
	}
	return kinds
}

// writeSSE emits one event as an SSE message: the trace sequence number
// as the message id (when the event has one — synthesized stream.gap and
// terminal events do not), the event kind as the message type, the JSON
// encoding as the data line.
func writeSSE(w io.Writer, e obs.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if e.Seq > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", e.Seq); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data)
	return err
}

// jobOutcome folds a terminal job record into the outcome label of its
// synthesized terminal event.
func jobOutcome(j *Job) string {
	switch {
	case j.Status == JobFailed:
		return OutcomeError
	case j.Result != nil && j.Result.Cancelled:
		return OutcomeCancelled
	default:
		return OutcomeOK
	}
}

// streamEvents is the shared SSE loop. job, when non-nil, is a snapshot
// of the async job record taken by the caller — used only to synthesize a
// terminal event for streams that join after the solve finished and its
// req.done event was evicted from the ring.
func (s *Service) streamEvents(w http.ResponseWriter, r *http.Request, reqID string, job *Job) {
	if s.bcast == nil || s.ring == nil {
		s.writeError(w, http.StatusNotFound, errors.New("event streaming disabled (trace buffer < 0)"))
		return
	}
	rc := http.NewResponseController(w)

	kinds := parseKinds(r)
	wantKind := func(k obs.Kind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, want := range kinds {
			if k == want {
				return true
			}
		}
		return false
	}

	// Subscribe before snapshotting the ring: every event is then either
	// in the replay prefix or in the subscription buffer (or both — the
	// overlap is deduplicated by sequence number below). Subscribing after
	// would open a window where events fall between replay and live.
	sub := s.bcast.Subscribe(obs.SubscribeOptions{
		Req:    reqID,
		Kinds:  kinds,
		Buffer: s.cfg.StreamBuffer,
	})
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	s.met.Add(obs.Key("http.status", "code", "200"), 1)
	w.WriteHeader(http.StatusOK)

	terminal := func(outcome string, dur, t float64) {
		_ = writeSSE(w, obs.Event{
			Kind:  obs.SolveDone,
			Label: "request",
			Phase: outcome,
			Req:   reqID,
			T:     t,
			Dur:   dur,
		})
		_ = rc.Flush()
	}

	// A reconnecting client (deployctl watch retries dropped streams)
	// sends the standard Last-Event-ID header with the last trace
	// sequence number it saw; the replay below skips everything at or
	// before it, so reconnects resume instead of re-playing.
	var resume int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			resume = n
		}
	}

	// Replay the retained prefix for late joiners, under the same kind
	// filter the live subscription applies.
	maxSeq := resume
	for _, e := range s.ring.ForRequest(reqID) {
		if e.Seq > 0 && e.Seq <= resume {
			continue // the client already has it from before the drop
		}
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		if !wantKind(e.Kind) {
			continue
		}
		if err := writeSSE(w, e); err != nil {
			return
		}
		if e.Kind == obs.ReqDone {
			terminal(e.Phase, e.Dur, e.T)
			return
		}
	}
	_ = rc.Flush()

	// The request finished long enough ago that its req.done was evicted:
	// the job record (snapshotted after Subscribe, and jobs turn terminal
	// only after req.done is emitted) is the fallback terminal source.
	if job != nil && job.terminal() {
		terminal(jobOutcome(job), 0, 0)
		return
	}

	// Live loop: forward events as the solve emits them, heartbeat when
	// idle, finish on the request's req.done.
	for {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Heartbeat)
		e, err := sub.Next(ctx)
		cancel()
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				// Service shutting down; the stream ends without a terminal
				// event — the client sees a clean close and may reconnect.
				return
			case r.Context().Err() != nil:
				return // client went away
			case errors.Is(err, context.DeadlineExceeded):
				if _, werr := io.WriteString(w, ": hb\n\n"); werr != nil {
					return
				}
				_ = rc.Flush()
				continue
			default:
				return
			}
		}
		if e.Seq > 0 && e.Seq <= maxSeq {
			continue // already delivered in the replay prefix
		}
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		if err := writeSSE(w, e); err != nil {
			return
		}
		_ = rc.Flush()
		if e.Kind == obs.ReqDone {
			terminal(e.Phase, e.Dur, e.T)
			return
		}
	}
}
