// Request-level observability: per-request IDs, serving-stage timings,
// and outcome accounting.
//
// Every admitted request gets an ID (minted by the HTTP middleware, or
// by Solve itself for direct API callers). The ID rides a request-scoped
// obs.Trace child through cache → queue → pool → solver, so every event
// the solve emits carries it, and the service's ring sink can serve the
// per-request trace slice back out (GET /v1/requests/{id}/trace).
// Alongside the trace, each serving stage is observed into a latency
// histogram and each finished request increments one outcome-labelled
// counter — the numbers `deployctl top` and the Prometheus scrape read.
package service

import (
	"context"
	"errors"
	"runtime"
	"time"

	"nocdeploy/internal/cache"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/runner"
)

// Request outcomes, the label values of the requests{outcome=...}
// counter. Exactly one is recorded per solve request.
const (
	// OutcomeOK: a fresh solve ran to completion.
	OutcomeOK = "ok"
	// OutcomeCached: answered from the solution cache.
	OutcomeCached = "cached"
	// OutcomeCoalesced: answered by waiting on an identical in-flight
	// solve.
	OutcomeCoalesced = "coalesced"
	// OutcomeCancelled: the request's deadline or disconnect stopped the
	// solve (a partial incumbent may still have been returned).
	OutcomeCancelled = "cancelled"
	// OutcomeRejected: admission control refused the request (bad
	// request, full queue, full job table, or a draining service).
	OutcomeRejected = "rejected"
	// OutcomeError: the solver failed or found no deployment.
	OutcomeError = "error"
)

// Serving stages, the label values used in stage histogram names
// (stage.<name>_seconds) and req.stage trace events.
const (
	StageAdmission = "admission" // decode + validate, before the cache
	StageCache     = "cache"     // cache lookup / singleflight acquire
	StageQueue     = "queue"     // admitted, waiting for a pool worker
	StageSolve     = "solve"     // solver wall time on the worker
	StageE2E       = "e2e"       // request receipt to response
)

// stageMetric maps a stage name onto its histogram key.
func stageMetric(stage string) string {
	return "stage." + stage + "_seconds"
}

// reqInfo accumulates one request's observability state as it moves
// through the handler and the solve stack. It travels via the request
// context; direct Solve callers (no middleware) run without one, which
// every method tolerates as a nil receiver.
type reqInfo struct {
	id    string
	start time.Time
	async bool // outcome settles in a background job, not the handler

	// Only ever touched from the request's own handler goroutine (the
	// async solve runs under a detached context without it), so no
	// locking is needed.
	stages  []stageSample
	outcome string
	cache   string
}

type stageSample struct {
	name string
	dur  time.Duration
}

func (ri *reqInfo) addStage(name string, d time.Duration) {
	if ri == nil {
		return
	}
	ri.stages = append(ri.stages, stageSample{name: name, dur: d})
}

func (ri *reqInfo) setOutcome(oc string) {
	if ri == nil {
		return
	}
	ri.outcome = oc
}

type reqInfoKey struct{}

func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// stage records one finished serving stage everywhere it is observable:
// the stage latency histogram, the request's access-log record, and the
// request-scoped trace.
func (s *Service) stage(ri *reqInfo, tr *obs.Trace, name string, d time.Duration) {
	s.met.Observe(stageMetric(name), d.Seconds())
	ri.addStage(name, d)
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.ReqStage, Phase: name, Dur: d.Seconds()})
	}
}

// countOutcome records the terminal outcome of one request.
func (s *Service) countOutcome(oc string) {
	s.met.Add(obs.Key("requests", "outcome", oc), 1)
}

// classifyOutcome folds a Solve result into its outcome label.
func classifyOutcome(outcome cache.Outcome, res *SolveResult, err error) string {
	if err != nil {
		switch {
		case errors.Is(err, ErrBadRequest),
			errors.Is(err, runner.ErrQueueFull),
			errors.Is(err, runner.ErrPoolClosed),
			errors.Is(err, ErrClosed):
			return OutcomeRejected
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return OutcomeCancelled
		}
		return OutcomeError
	}
	switch outcome {
	case cache.Hit:
		return OutcomeCached
	case cache.Coalesced:
		return OutcomeCoalesced
	}
	if res != nil && res.Cancelled {
		return OutcomeCancelled
	}
	return OutcomeOK
}

// refreshGauges brings the live operational gauges up to date; called on
// every metrics scrape so both exposition formats see current values.
func (s *Service) refreshGauges() {
	st := s.cache.Stats()
	s.met.Set("queue.depth", float64(s.pool.Pending()))
	s.met.Set("queue.waiting", float64(s.pool.Queued()))
	s.met.Set("solve.inflight", float64(s.pool.Running()))
	s.met.Set("jobs.live", float64(s.jobs.live()))
	s.met.Set("jobs.size", float64(s.jobs.size()))
	s.met.Set("cache.entries", float64(st.Entries))
	s.met.Set("cache.hits", float64(st.Hits))
	s.met.Set("cache.misses", float64(st.Misses))
	s.met.Set("cache.coalesced", float64(st.Coalesced))
	s.met.Set("cache.evictions", float64(st.Evictions))
	s.met.Set("cache.hit_ratio", st.HitRatio())
	s.met.Set("solve.runs", float64(s.solves.Load()))
	if s.ring != nil {
		s.met.Set("trace.ring_events", float64(s.ring.Len()))
		s.met.Set("trace.ring_dropped", float64(s.ring.Dropped()))
	}
	if s.bcast != nil {
		s.met.Set("stream.subscribers", float64(s.bcast.Subscribers()))
		s.met.Set("stream.dropped", float64(s.bcast.Dropped()))
	}
	if s.arch != nil {
		ast := s.arch.StoreStats()
		s.met.Set("archive.index_records", float64(ast.Records))
		s.met.Set("archive.pending", float64(ast.Pending))
		s.met.Set("archive.dropped", float64(ast.Dropped))
		s.met.Set("archive.disk_bytes", float64(ast.DiskBytes))
		s.met.Set("archive.segments", float64(ast.Segments))
	}
	s.met.Set("uptime_seconds", s.clock.Now().Sub(s.start).Seconds())

	// Go runtime health, so a scrape sees goroutine leaks and heap/GC
	// pressure next to the service's own gauges. ReadMemStats is a brief
	// stop-the-world; once per scrape is far below any rate that matters.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.met.Set("go.goroutines", float64(runtime.NumGoroutine()))
	s.met.Set("go.gomaxprocs", float64(runtime.GOMAXPROCS(0)))
	s.met.Set("go.heap_alloc_bytes", float64(ms.HeapAlloc))
	s.met.Set("go.heap_sys_bytes", float64(ms.HeapSys))
	s.met.Set("go.gc_pause_total_seconds", float64(ms.PauseTotalNs)/1e9)
	s.met.Set("go.gc_cycles", float64(ms.NumGC))
}
