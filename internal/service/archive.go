// Solve archive integration: recording finished solves, the
// history-driven solver=auto advisor, and the /v1/archive query API.
//
// Recording is write-only by construction: the archive observes the
// solve through the trace sinks and a post-settlement Append — it never
// holds the solve path (Append is non-blocking) and never feeds anything
// back into the solver. The one read path, solver=auto, happens before
// normalization and turns into an ordinary explicit-solver request.
package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"nocdeploy/internal/archive"
	"nocdeploy/internal/cache"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/spec"
)

// solveStages carries the leader's stage timings into the archive
// record.
type solveStages struct {
	queue, solve, e2e time.Duration
}

// recordSolve archives one settled leader solve. Cache hits and
// coalesced waits are not separate solves and are deliberately not
// recorded — the archive answers "what did solving cost", not "what did
// serving cost" (the metrics registry covers the latter).
func (s *Service) recordSolve(req SolveRequest, hash string, res *SolveResult, err error, st solveStages) {
	if s.arch == nil {
		return
	}
	traj, ops := s.coll.Take(req.RequestID)
	rec := &archive.Record{
		Summary: archive.Summary{
			Hash:      hash,
			Tasks:     len(req.Instance.Graph.Tasks),
			Edges:     len(req.Instance.Graph.Edges),
			MeshW:     req.Instance.Mesh.W,
			MeshH:     req.Instance.Mesh.H,
			Horizon:   req.Instance.Horizon,
			Alpha:     req.Instance.Alpha,
			Solver:    req.Solver,
			Objective: req.Objective,
			Outcome:   classifyOutcome(cache.Miss, res, err),
		},
		Request: req.RequestID,
		Seed:    req.Seed,
		Stages: map[string]float64{
			StageQueue: st.queue.Seconds(),
			StageSolve: st.solve.Seconds(),
			StageE2E:   st.e2e.Seconds(),
		},
		Trajectory: traj,
		Ops:        ops,
		Advice:     req.Advice,
	}
	if req.Solver == SolverPortfolio {
		rec.EngineOps = req.EngineOps
		rec.EngineRounds = req.EngineRounds
		rec.EngineBudget = req.EngineBudget
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if res != nil {
		rec.Feasible = res.Feasible
		rec.Cancelled = res.Cancelled
		rec.FinalObjective = res.Deployment.Objective
		rec.RuntimeSeconds = res.Runtime
		rec.MaxEnergy = res.Deployment.MaxEnergy
		rec.SumEnergy = res.Deployment.SumEnergy
		rec.Makespan = res.Deployment.Makespan
		rec.Dups = res.Deployment.Dups
	}
	s.arch.Append(rec)
}

// resolveAuto turns solver=auto into a concrete solver using the
// archive's history, stamping the decision on the request (it is
// archived with the solve) and emitting an archive.advise event.
// Idempotent: a request that already names a solver passes through
// untouched, so both the HTTP layer and direct Solve callers can call it.
func (s *Service) resolveAuto(req *SolveRequest) {
	if req.Solver != SolverAuto {
		return
	}
	dec := s.advise(req.Instance)
	req.Solver = dec.Solver
	req.EngineOps = dec.EngineOps
	req.EngineRounds = dec.EngineRounds
	req.EngineBudget = dec.EngineBudget
	req.Advice = &dec
	if tr := s.trace.WithRequest(req.RequestID); tr.Enabled() {
		tr.Emit(obs.Event{
			Kind:  obs.ArchiveAdvise,
			Label: dec.Solver,
			Phase: dec.Basis,
			Node:  dec.Candidates,
		})
	}
}

// advise computes the advisor decision for an instance. Works with the
// archive disabled too: no history means the default solver, so
// solver=auto degrades gracefully instead of erroring.
func (s *Service) advise(inst spec.Instance) archive.Decision {
	sig := archive.Signature{
		Tasks: len(inst.Graph.Tasks),
		MeshW: inst.Mesh.W,
		MeshH: inst.Mesh.H,
	}
	if h, err := inst.CanonicalHash(); err == nil {
		sig.Hash = h
	}
	if s.arch == nil {
		return archive.Decision{Solver: archive.DefaultSolver, Basis: "default"}
	}
	return s.arch.Advise(sig)
}

// setBuildInfo publishes the build_info gauge: constant 1, with the
// module version and Go toolchain as labels — the standard Prometheus
// idiom for joining version metadata onto any other series.
func (s *Service) setBuildInfo() {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	s.met.Set(obs.Key("build_info", "goversion", runtime.Version(), "version", version), 1)
}

// parseArchiveFilter reads the /v1/archive query parameters: instance
// (hash or prefix), solver, outcome, limit, and since/until as either
// RFC3339 timestamps or look-back durations ("1h" = the last hour).
func (s *Service) parseArchiveFilter(q url.Values) (archive.Filter, error) {
	var f archive.Filter
	f.Instance = q.Get("instance")
	f.Solver = q.Get("solver")
	f.Outcome = q.Get("outcome")
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, errors.Join(ErrBadRequest, errors.New("limit: want a non-negative integer, got "+v))
		}
		f.Limit = n
	}
	var err error
	if f.Since, err = s.parseTimeOrAgo(q.Get("since")); err != nil {
		return f, errors.Join(ErrBadRequest, err)
	}
	if f.Until, err = s.parseTimeOrAgo(q.Get("until")); err != nil {
		return f, errors.Join(ErrBadRequest, err)
	}
	return f, nil
}

// parseTimeOrAgo accepts an RFC3339 timestamp or a duration meaning
// "that long ago" (per the service clock); empty means zero time.
func (s *Service) parseTimeOrAgo(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return time.Time{}, errors.New("want RFC3339 or a duration, got " + v)
	}
	return s.clock.Now().Add(-d), nil
}

// handleArchiveList serves GET /v1/archive: matching record summaries,
// newest first.
func (s *Service) handleArchiveList(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	if s.arch == nil {
		s.writeError(w, http.StatusNotFound, errors.New("solve archive disabled (no -archive-dir)"))
		return
	}
	f, err := s.parseArchiveFilter(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.arch.List(f))
}

// handleArchiveGet serves GET /v1/archive/{id}: one full record.
func (s *Service) handleArchiveGet(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	if s.arch == nil {
		s.writeError(w, http.StatusNotFound, errors.New("solve archive disabled (no -archive-dir)"))
		return
	}
	rec, ok := s.arch.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("unknown archive record"))
		return
	}
	s.writeJSON(w, http.StatusOK, rec)
}

// archiveStatsBody is the /v1/archive/stats envelope: per-solver
// aggregates plus the store's operational accounting.
type archiveStatsBody struct {
	archive.Stats
	Store archive.StoreStats `json:"store"`
}

// handleArchiveStats serves GET /v1/archive/stats (same filters as the
// list route).
func (s *Service) handleArchiveStats(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	if s.arch == nil {
		s.writeError(w, http.StatusNotFound, errors.New("solve archive disabled (no -archive-dir)"))
		return
	}
	f, err := s.parseArchiveFilter(r.URL.Query())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, archiveStatsBody{
		Stats: s.arch.Stats(f),
		Store: s.arch.StoreStats(),
	})
}

// handleArchiveAdvise serves POST /v1/archive/advise: the advisor
// decision for an instance (body: spec.Instance JSON) without running a
// solve — what solver=auto would pick right now. Works with the archive
// disabled (default decision), unlike the query routes: advice always
// has an answer.
func (s *Service) handleArchiveAdvise(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	var inst spec.Instance
	if err := json.NewDecoder(r.Body).Decode(&inst); err != nil {
		s.writeError(w, http.StatusBadRequest, errors.Join(ErrBadRequest, err))
		return
	}
	s.writeJSON(w, http.StatusOK, s.advise(inst))
}
