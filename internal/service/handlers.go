package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"nocdeploy/internal/runner"
	"nocdeploy/internal/spec"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/solve        solve an instance (body: spec.Instance JSON)
//	GET  /v1/jobs/{id}    poll an async job
//	GET  /healthz         liveness
//	GET  /metrics         obs.Metrics snapshot (JSON)
//
// POST /v1/solve query parameters (all optional):
//
//	solver     heuristic (default) | repair | anneal | optimal
//	objective  be (default) | me
//	seed       solver tie-break seed (default 1)
//	timeout    per-request solve budget, e.g. 50ms (or X-Solve-Timeout)
//	mode       sync (default) | async — async returns 202 + a job id
//
// Sync responses carry the deployment as the body and request metadata in
// headers: X-Request-ID, X-Cache (hit|miss|coalesced), X-Solver,
// X-Solve-Feasible, X-Solve-Cancelled.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func (s *Service) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	s.met.Add("http.status."+strconv.Itoa(code), 1)
	// A failed write means the client went away; nothing useful to do.
	_ = json.NewEncoder(w).Encode(v) //lint:allow errdrop — response write errors are the client's problem
}

func (s *Service) writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, code, apiError{Error: err.Error()})
}

// errorStatus maps service errors onto HTTP status codes.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, runner.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed), errors.Is(err, runner.ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNoSolution):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// parseSolveRequest decodes the body and query into a SolveRequest.
func parseSolveRequest(r *http.Request) (SolveRequest, error) {
	var req SolveRequest
	var inst spec.Instance
	if err := json.NewDecoder(r.Body).Decode(&inst); err != nil {
		return req, errors.Join(ErrBadRequest, err)
	}
	q := r.URL.Query()
	req.Instance = inst
	req.Solver = q.Get("solver")
	req.Objective = q.Get("objective")
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, errors.Join(ErrBadRequest, err)
		}
		req.Seed = seed
	}
	if v := q.Get("timeout"); v == "" {
		v = r.Header.Get("X-Solve-Timeout")
		if v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				return req, errors.Join(ErrBadRequest, err)
			}
			req.Timeout = d
		}
	} else {
		d, err := time.ParseDuration(v)
		if err != nil {
			return req, errors.Join(ErrBadRequest, err)
		}
		req.Timeout = d
	}
	return req, nil
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	if s.closed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, ErrClosed)
		return
	}
	req, err := parseSolveRequest(r)
	if err != nil {
		s.writeError(w, errorStatus(err), err)
		return
	}
	if err := req.normalize(); err != nil {
		s.writeError(w, errorStatus(err), err)
		return
	}
	if r.URL.Query().Get("mode") == "async" {
		s.startAsync(w, req)
		return
	}

	ctx := r.Context()
	if d := s.effectiveTimeout(req.Timeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	res, outcome, err := s.Solve(ctx, req)
	if err != nil {
		s.writeError(w, errorStatus(err), err)
		return
	}
	w.Header().Set("X-Request-ID", s.nextRequestID())
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("X-Solver", res.Solver)
	w.Header().Set("X-Solve-Feasible", strconv.FormatBool(res.Feasible))
	w.Header().Set("X-Solve-Cancelled", strconv.FormatBool(res.Cancelled))
	s.writeJSON(w, http.StatusOK, res.Deployment)
}

// startAsync registers a job and answers 202 immediately; the solve runs
// in the background with its own deadline, detached from the HTTP request
// context. Close waits for these goroutines, so shutdown drains jobs.
func (s *Service) startAsync(w http.ResponseWriter, req SolveRequest) {
	job, ok := s.jobs.create(req.Solver, time.Now())
	if !ok {
		s.writeError(w, http.StatusTooManyRequests, errors.New("job table full"))
		return
	}
	budget := s.effectiveTimeout(req.Timeout)
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		ctx := context.Background()
		if budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, budget)
			defer cancel()
		}
		s.jobs.update(job.ID, func(j *Job) { j.Status = JobRunning })
		res, outcome, err := s.Solve(ctx, req)
		now := time.Now()
		s.jobs.update(job.ID, func(j *Job) {
			j.Finished = &now
			j.Cache = outcome.String()
			if err != nil {
				j.Status = JobFailed
				j.Error = err.Error()
				return
			}
			j.Status = JobDone
			j.Result = res
		})
	}()
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	s.writeJSON(w, http.StatusAccepted, job)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	s.writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.closed.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]string{"status": status})
}

// handleMetrics refreshes the service-level gauges and emits the registry
// snapshot. Counters owned elsewhere (http.requests, solve.seconds) are
// already live in the registry.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	st := s.cache.Stats()
	s.met.Set("queue.depth", float64(s.pool.Pending()))
	s.met.Set("jobs.live", float64(s.jobs.live()))
	s.met.Set("cache.entries", float64(st.Entries))
	s.met.Set("cache.hits", float64(st.Hits))
	s.met.Set("cache.misses", float64(st.Misses))
	s.met.Set("cache.coalesced", float64(st.Coalesced))
	s.met.Set("cache.evictions", float64(st.Evictions))
	s.met.Set("cache.hit_ratio", st.HitRatio())
	s.met.Set("solve.runs", float64(s.solves.Load()))
	w.Header().Set("Content-Type", "application/json")
	s.met.Add("http.status.200", 1)
	// A failed write means the client went away; nothing useful to do.
	_ = s.met.WriteJSON(w) //lint:allow errdrop — response write errors are the client's problem
}
