package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nocdeploy/internal/obs"
	"nocdeploy/internal/runner"
	"nocdeploy/internal/spec"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/solve                 solve an instance (body: spec.Instance JSON)
//	GET  /v1/jobs/{id}             poll an async job
//	GET  /v1/jobs/{id}/trace       the job's per-request trace slice (JSONL)
//	GET  /v1/jobs/{id}/events      live SSE stream of the job's solve (see stream.go)
//	GET  /v1/requests/{id}/trace   a request's trace slice by request ID (JSONL)
//	GET  /v1/requests/{id}/events  live SSE stream by request ID (?kinds= filter)
//	GET  /v1/archive               archived solve summaries (filters: instance,
//	                               solver, outcome, since, until, limit)
//	GET  /v1/archive/stats         per-solver aggregates + store accounting
//	GET  /v1/archive/{id}          one full archived solve record
//	POST /v1/archive/advise        advisor decision for an instance (no solve)
//	GET  /healthz                  liveness
//	GET  /metrics                 metrics: obs.Metrics JSON snapshot by
//	                              default; Prometheus text exposition
//	                              (v0.0.4) with Accept: text/plain or
//	                              ?format=prom
//
// POST /v1/solve query parameters (all optional):
//
//	solver     heuristic (default) | repair | anneal | optimal | portfolio |
//	           auto (archive advisor picks from this instance's history;
//	           the response carries X-Advised-Solver and X-Advise-Basis)
//	objective  be (default) | me
//	seed       solver tie-break seed (default 1)
//	timeout    per-request solve budget, e.g. 50ms (or X-Solve-Timeout)
//	mode       sync (default) | async — async returns 202 + a job id
//
// Every response carries X-Request-ID, minted at admission; the same ID
// tags every trace event the request's solve emits. Sync solve responses
// additionally carry X-Cache (hit|miss|coalesced), X-Solver,
// X-Solve-Feasible and X-Solve-Cancelled.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/requests/{id}/trace", s.handleRequestTrace)
	mux.HandleFunc("GET /v1/requests/{id}/events", s.handleRequestEvents)
	mux.HandleFunc("GET /v1/archive", s.handleArchiveList)
	mux.HandleFunc("GET /v1/archive/stats", s.handleArchiveStats)
	mux.HandleFunc("GET /v1/archive/{id}", s.handleArchiveGet)
	mux.HandleFunc("POST /v1/archive/advise", s.handleArchiveAdvise)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.observeRequests(mux)
}

// statusWriter captures the response status for metrics and the access
// log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flusher through this middleware — the SSE endpoints flush per event,
// and a wrapper that swallowed Flush would buffer the whole stream.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// observeRequests is the request-observability middleware: it mints the
// request ID, exposes it in X-Request-ID, threads a reqInfo through the
// context for stage accounting, observes the end-to-end latency of solve
// requests, emits the req.done trace event and writes the access-log
// line.
func (s *Service) observeRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &reqInfo{id: s.nextRequestID(), start: start}
		w.Header().Set("X-Request-ID", ri.id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(withReqInfo(r.Context(), ri)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		if isSolveRoute(r) && !ri.async {
			s.met.Observe(stageMetric(StageE2E), elapsed.Seconds())
			if tr := s.trace.WithRequest(ri.id); tr.Enabled() {
				tr.Emit(obs.Event{Kind: obs.ReqDone, Phase: ri.outcome, Dur: elapsed.Seconds()})
			}
		}
		s.alog.log(ri.record(r.Method, r.URL.Path, sw.status, elapsed))
	})
}

func isSolveRoute(r *http.Request) bool {
	return r.Method == http.MethodPost && r.URL.Path == "/v1/solve"
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func (s *Service) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	s.met.Add(obs.Key("http.status", "code", strconv.Itoa(code)), 1)
	// A failed write means the client went away; nothing useful to do.
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Service) writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, code, apiError{Error: err.Error()})
}

// errorStatus maps service errors onto HTTP status codes.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, runner.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed), errors.Is(err, runner.ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNoSolution):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// parseSolveRequest decodes the body and query into a SolveRequest.
func parseSolveRequest(r *http.Request) (SolveRequest, error) {
	var req SolveRequest
	var inst spec.Instance
	if err := json.NewDecoder(r.Body).Decode(&inst); err != nil {
		return req, errors.Join(ErrBadRequest, err)
	}
	q := r.URL.Query()
	req.Instance = inst
	req.Solver = q.Get("solver")
	req.Objective = q.Get("objective")
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, errors.Join(ErrBadRequest, err)
		}
		req.Seed = seed
	}
	// Portfolio engine options; normalize() rejects them for other solvers.
	if v := q.Get("ops"); v != "" {
		req.EngineOps = strings.Split(v, ",")
	}
	if v := q.Get("rounds"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, errors.Join(ErrBadRequest, err)
		}
		req.EngineRounds = n
	}
	if v := q.Get("budget"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, errors.Join(ErrBadRequest, err)
		}
		req.EngineBudget = n
	}
	if v := q.Get("timeout"); v == "" {
		v = r.Header.Get("X-Solve-Timeout")
		if v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				return req, errors.Join(ErrBadRequest, err)
			}
			req.Timeout = d
		}
	} else {
		d, err := time.ParseDuration(v)
		if err != nil {
			return req, errors.Join(ErrBadRequest, err)
		}
		req.Timeout = d
	}
	return req, nil
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	ri := reqInfoFrom(r.Context())
	if s.closed.Load() {
		s.countOutcome(OutcomeRejected)
		ri.setOutcome(OutcomeRejected)
		s.writeError(w, http.StatusServiceUnavailable, ErrClosed)
		return
	}
	admit := time.Now()
	req, err := parseSolveRequest(r)
	if err == nil {
		if ri != nil {
			req.RequestID = ri.id
		}
		// Resolve solver=auto before validation: the advisor decision is
		// part of admission, and the solve below runs a plain explicit
		// request.
		s.resolveAuto(&req)
		err = req.normalize()
	}
	if err != nil {
		s.countOutcome(OutcomeRejected)
		ri.setOutcome(OutcomeRejected)
		s.writeError(w, errorStatus(err), err)
		return
	}
	if req.Advice != nil {
		w.Header().Set("X-Advised-Solver", req.Advice.Solver)
		w.Header().Set("X-Advise-Basis", req.Advice.Basis)
	}
	mode := "sync"
	if r.URL.Query().Get("mode") == "async" {
		mode = "async"
	}
	tr := s.trace.WithRequest(req.RequestID)
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.ReqAdmit, Label: req.Solver, Phase: mode})
	}
	s.stage(ri, tr, StageAdmission, time.Since(admit))
	if mode == "async" {
		s.startAsync(w, ri, req)
		return
	}

	ctx := r.Context()
	if d := s.effectiveTimeout(req.Timeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	res, outcome, err := s.Solve(ctx, req)
	if err != nil {
		s.writeError(w, errorStatus(err), err)
		return
	}
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("X-Solver", res.Solver)
	w.Header().Set("X-Solve-Feasible", strconv.FormatBool(res.Feasible))
	w.Header().Set("X-Solve-Cancelled", strconv.FormatBool(res.Cancelled))
	s.writeJSON(w, http.StatusOK, res.Deployment)
}

// startAsync registers a job and answers 202 immediately; the solve runs
// in the background with its own deadline, detached from the HTTP request
// context. Close waits for these goroutines, so shutdown drains jobs.
func (s *Service) startAsync(w http.ResponseWriter, ri *reqInfo, req SolveRequest) {
	job, ok := s.jobs.create(req.Solver, req.RequestID, time.Now())
	if !ok {
		s.countOutcome(OutcomeRejected)
		ri.setOutcome(OutcomeRejected)
		s.writeError(w, http.StatusTooManyRequests, errors.New("job table full"))
		return
	}
	if ri != nil {
		ri.async = true // outcome settles in the background goroutine
	}
	budget := s.effectiveTimeout(req.Timeout)
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		started := time.Now()
		ctx := context.Background()
		if budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, budget)
			defer cancel()
		}
		s.jobs.update(job.ID, func(j *Job) { j.Status = JobRunning })
		res, outcome, err := s.Solve(ctx, req)
		elapsed := time.Since(started)
		s.met.Observe(stageMetric(StageE2E), elapsed.Seconds())
		if tr := s.trace.WithRequest(req.RequestID); tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.ReqDone, Phase: classifyOutcome(outcome, res, err), Dur: elapsed.Seconds()})
		}
		// Flight recorder: a job that failed or got cancelled keeps its
		// trailing trace events on the record, so the failure can be
		// diagnosed after the ring has moved on.
		var flight []obs.Event
		if n := s.cfg.FlightRecorder; n > 0 && s.ring != nil &&
			(err != nil || (res != nil && res.Cancelled)) {
			flight = s.ring.ForRequest(req.RequestID)
			if len(flight) > n {
				flight = flight[len(flight)-n:]
			}
		}
		now := time.Now()
		s.jobs.update(job.ID, func(j *Job) {
			j.Finished = &now
			j.Cache = outcome.String()
			j.Trace = flight
			if err != nil {
				j.Status = JobFailed
				j.Error = err.Error()
				return
			}
			j.Status = JobDone
			j.Result = res
		})
	}()
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	s.writeJSON(w, http.StatusAccepted, job)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	s.writeJSON(w, http.StatusOK, job)
}

// handleJobTrace serves the trace slice of the request that ran an async
// job, resolved through the job's recorded request ID.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	s.writeTraceSlice(w, job.Request)
}

// handleRequestTrace serves a request's trace slice by request ID (the
// X-Request-ID of any earlier response).
func (s *Service) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	s.writeTraceSlice(w, r.PathValue("id"))
}

// writeTraceSlice emits the retained events of one request as JSONL
// (obs.ReadJSONL is the inverse). 404 distinguishes "nothing retained"
// — tracing disabled, unknown ID, or events already evicted from the
// ring — from an empty-but-valid slice, which cannot occur: every traced
// request emits req.admit first.
func (s *Service) writeTraceSlice(w http.ResponseWriter, reqID string) {
	if s.ring == nil {
		s.writeError(w, http.StatusNotFound, errors.New("request tracing disabled (trace buffer 0)"))
		return
	}
	events := s.ring.ForRequest(reqID)
	if len(events) == 0 {
		s.writeError(w, http.StatusNotFound, errors.New("no trace retained for request "+reqID))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	s.met.Add(obs.Key("http.status", "code", "200"), 1)
	enc := json.NewEncoder(w)
	for _, e := range events {
		// A failed write means the client went away; nothing useful to do.
		if err := enc.Encode(e); err != nil {
			return
		}
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.closed.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]string{"status": status})
}

// wantsPrometheus decides the /metrics representation: an explicit
// ?format=prom|prometheus query wins; otherwise content negotiation on
// Accept — any text/plain or OpenMetrics media type selects the text
// exposition, everything else (including no Accept at all) keeps the
// JSON snapshot.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// handleMetrics refreshes the live gauges and emits the registry in the
// negotiated format. Counters owned elsewhere (http.requests,
// stage histograms, requests{outcome=...}) are already live in the
// registry. Both representations are point-in-time views and must never
// be cached by an intermediary.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.Add("http.requests", 1)
	s.refreshGauges()
	w.Header().Set("Cache-Control", "no-store")
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PromContentType)
		s.met.Add(obs.Key("http.status", "code", "200"), 1)
		// A failed write means the client went away; nothing useful to do.
		_ = obs.WritePrometheus(w, s.met.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.met.Add(obs.Key("http.status", "code", "200"), 1)
	// A failed write means the client went away; nothing useful to do.
	_ = s.met.WriteJSON(w)
}
