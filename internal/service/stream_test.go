package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nocdeploy/internal/obs"
)

// sseMessage is one parsed SSE message.
type sseMessage struct {
	name  string
	event obs.Event
}

// readSSE consumes an SSE body until it closes, returning the parsed
// messages (heartbeat comments are skipped).
func readSSE(t *testing.T, resp *http.Response) []sseMessage {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	var msgs []sseMessage
	var cur sseMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.event); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		case line == "":
			if cur.name != "" {
				msgs = append(msgs, cur)
				cur = sseMessage{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return msgs
}

// isTerminal reports whether m is the synthesized stream terminal.
func isTerminal(m sseMessage) bool {
	return m.name == string(obs.SolveDone) && m.event.Label == "request"
}

// TestStreamJobEventsMidFlight is the headline acceptance path: attach to
// a deadline-limited optimal solve while it runs and require at least one
// bb.incumbent and one bb.gap before the terminal solve.done.
func TestStreamJobEventsMidFlight(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(6, 9.2))
	resp := postSolve(t, srv.URL+"/v1/solve?solver=optimal&timeout=400ms&mode=async", body)
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async solve status %d: %s", resp.StatusCode, got)
	}
	var job Job
	if err := json.Unmarshal(got, &job); err != nil {
		t.Fatal(err)
	}

	stream, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	msgs := readSSE(t, stream)
	if len(msgs) == 0 {
		t.Fatal("empty event stream")
	}
	last := msgs[len(msgs)-1]
	if !isTerminal(last) {
		t.Fatalf("stream did not end with a terminal solve.done: last = %+v", last)
	}
	if last.event.Phase != OutcomeCancelled {
		t.Errorf("terminal outcome %q, want %q", last.event.Phase, OutcomeCancelled)
	}
	var incumbents, gaps int
	for _, m := range msgs[:len(msgs)-1] {
		switch m.name {
		case string(obs.BBIncumbent):
			incumbents++
		case string(obs.BBGap):
			gaps++
			if m.event.Gap < 0 {
				t.Errorf("negative relative gap %g", m.event.Gap)
			}
			if m.event.Bound > m.event.Obj+1e-9 {
				t.Errorf("bb.gap bound %g above incumbent %g", m.event.Bound, m.event.Obj)
			}
		}
	}
	if incumbents == 0 {
		t.Error("no bb.incumbent event before the terminal")
	}
	if gaps == 0 {
		t.Error("no bb.gap event before the terminal")
	}
	for i, m := range msgs {
		if isTerminal(m) && i != len(msgs)-1 {
			t.Errorf("terminal event at position %d of %d", i, len(msgs))
		}
	}
}

// TestStreamRequestEventsLateJoin: a stream opened after a sync solve
// finished replays the retained prefix and terminates immediately from
// the replayed req.done.
func TestStreamRequestEventsLateJoin(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve", body)
	_ = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-ID")

	stream, err := http.Get(srv.URL + "/v1/requests/" + reqID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	msgs := readSSE(t, stream)
	if len(msgs) < 2 {
		t.Fatalf("late join replayed %d messages, want admit…done at least", len(msgs))
	}
	if msgs[0].name != string(obs.ReqAdmit) {
		t.Errorf("first replayed event %q, want req.admit", msgs[0].name)
	}
	if !isTerminal(msgs[len(msgs)-1]) {
		t.Fatalf("late join did not terminate: last = %+v", msgs[len(msgs)-1])
	}
	if oc := msgs[len(msgs)-1].event.Phase; oc != OutcomeOK {
		t.Errorf("terminal outcome %q, want ok", oc)
	}
	for _, m := range msgs {
		if m.event.Req != reqID && m.name != string(obs.SolveDone) {
			t.Errorf("event for foreign request leaked: %+v", m)
		}
	}
}

// TestStreamKindsFilter: ?kinds= narrows both the replay prefix and the
// live tail, while req.done stays implicitly included so the stream can
// still terminate.
func TestStreamKindsFilter(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := instanceBody(t, chainInstance(3, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve?solver=optimal", body)
	_ = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-ID")

	stream, err := http.Get(srv.URL + "/v1/requests/" + reqID + "/events?kinds=bb.incumbent")
	if err != nil {
		t.Fatal(err)
	}
	msgs := readSSE(t, stream)
	if len(msgs) < 2 {
		t.Fatalf("filtered stream has %d messages, want incumbents + terminal", len(msgs))
	}
	for _, m := range msgs[:len(msgs)-2] {
		if m.name != string(obs.BBIncumbent) {
			t.Errorf("kind filter leaked %q", m.name)
		}
	}
	if msgs[len(msgs)-2].name != string(obs.ReqDone) {
		t.Errorf("penultimate message %q, want req.done (implicitly included)", msgs[len(msgs)-2].name)
	}
	if !isTerminal(msgs[len(msgs)-1]) {
		t.Fatalf("filtered stream did not terminate: %+v", msgs[len(msgs)-1])
	}
}

// TestStreamUnknownJob404s while an unknown request ID is a legal open
// stream (clients may attach early) — exercised via its heartbeat.
func TestStreamUnknownJob404(t *testing.T) {
	svc := New(Config{Heartbeat: 30 * time.Millisecond})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/job-999/events")
	if err != nil {
		t.Fatal(err)
	}
	_ = readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job stream status %d, want 404", resp.StatusCode)
	}

	// Unknown request: the stream stays open sending heartbeats until the
	// client hangs up.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/requests/r999/events", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf := make([]byte, 64)
	n, _ := resp2.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), ": hb") {
		t.Fatalf("idle stream sent %q, want a heartbeat comment", buf[:n])
	}
}

// TestStreamStalledSubscriberNeverBlocksSolve is the service-level
// backpressure guarantee: a subscriber that never drains cannot delay a
// solve; its overflow surfaces in the drop counter and the stream gauges.
func TestStreamStalledSubscriberNeverBlocksSolve(t *testing.T) {
	m := obs.NewMetrics()
	svc := New(Config{Metrics: m})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Attach a subscriber with a one-event buffer and never read it.
	sub := svc.bcast.Subscribe(obs.SubscribeOptions{Buffer: 1})
	defer sub.Close()

	body := instanceBody(t, chainInstance(4, 6.0))
	start := time.Now()
	resp := postSolve(t, srv.URL+"/v1/solve?solver=optimal", body)
	_ = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("solve with stalled subscriber took %v", elapsed)
	}
	if svc.bcast.Dropped() == 0 {
		t.Fatal("stalled one-event subscriber recorded no drops")
	}
	svc.refreshGauges()
	snap := m.Snapshot()
	if snap.Gauges["stream.dropped"] == 0 {
		t.Error("stream.dropped gauge is zero after drops")
	}
	if snap.Gauges["stream.subscribers"] != 1 {
		t.Errorf("stream.subscribers = %g, want 1", snap.Gauges["stream.subscribers"])
	}

	// The stalled subscriber's next read surfaces the hole in-band.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	e, err := sub.Next(ctx)
	if err != nil || e.Kind != obs.StreamGap || e.Node == 0 {
		t.Fatalf("first read after stall = %+v, %v; want stream.gap with count", e, err)
	}
}

// TestRingOccupancyGauge pins trace.ring_events to the exact ring
// occupancy at empty, partial and full.
func TestRingOccupancyGauge(t *testing.T) {
	m := obs.NewMetrics()
	svc := New(Config{Metrics: m, TraceBuffer: 8})
	defer svc.Close()
	svc.solveHook = func(ctx context.Context, req SolveRequest) (*SolveResult, error) {
		return &SolveResult{Solver: req.Solver, Feasible: true}, nil
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	gauge := func() float64 {
		svc.refreshGauges()
		return m.Snapshot().Gauges["trace.ring_events"]
	}
	if g := gauge(); g != 0 {
		t.Fatalf("empty ring gauge %g, want 0", g)
	}
	body := instanceBody(t, chainInstance(2, 5.0))
	resp := postSolve(t, srv.URL+"/v1/solve?seed=1", body)
	_ = readBody(t, resp)
	n := svc.ring.Len()
	if n == 0 || n >= 8 {
		t.Fatalf("one request retained %d events, want partial fill of 8", n)
	}
	if g := gauge(); g != float64(n) {
		t.Fatalf("partial gauge %g, want %d", gauge(), n)
	}
	for i := 2; i <= 5; i++ {
		resp := postSolve(t, srv.URL+"/v1/solve?seed="+string(rune('0'+i)), body)
		_ = readBody(t, resp)
	}
	if g := gauge(); g != 8 {
		t.Fatalf("full gauge %g, want 8 (ring capacity)", g)
	}
}

// TestFlightRecorder: failed and cancelled async jobs carry their
// trailing trace events; successful jobs stay lean.
func TestFlightRecorder(t *testing.T) {
	svc := New(Config{FlightRecorder: 3})
	defer svc.Close()
	fail := errors.New("solver exploded")
	svc.solveHook = func(ctx context.Context, req SolveRequest) (*SolveResult, error) {
		if req.Seed == 13 {
			return nil, fail
		}
		return &SolveResult{Solver: req.Solver, Feasible: true}, nil
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := instanceBody(t, chainInstance(2, 5.0))

	launch := func(seed string) Job {
		resp := postSolve(t, srv.URL+"/v1/solve?mode=async&seed="+seed, body)
		got := readBody(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async status %d: %s", resp.StatusCode, got)
		}
		var job Job
		if err := json.Unmarshal(got, &job); err != nil {
			t.Fatal(err)
		}
		var final Job
		waitFor(t, func() bool {
			j, ok := svc.jobs.get(job.ID)
			final = j
			return ok && j.terminal()
		})
		return final
	}

	failed := launch("13")
	if failed.Status != JobFailed {
		t.Fatalf("job status %q, want failed", failed.Status)
	}
	if len(failed.Trace) == 0 {
		t.Fatal("failed job carries no flight-recorder trace")
	}
	if len(failed.Trace) > 3 {
		t.Fatalf("flight recorder kept %d events, configured max 3", len(failed.Trace))
	}
	if last := failed.Trace[len(failed.Trace)-1]; last.Kind != obs.ReqDone {
		t.Errorf("flight recorder tail %q, want req.done", last.Kind)
	}

	okJob := launch("1")
	if okJob.Status != JobDone {
		t.Fatalf("job status %q, want done", okJob.Status)
	}
	if len(okJob.Trace) != 0 {
		t.Errorf("successful job carries %d flight-recorder events, want none", len(okJob.Trace))
	}
}
