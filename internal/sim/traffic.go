package sim

import (
	"sort"

	"nocdeploy/internal/core"
	"nocdeploy/internal/nocsim"
)

// NetworkTraffic extracts the NoC traffic induced by a deployment: one
// packet per inter-processor dependency edge, injected when the producer
// finishes, routed over the selected candidate path. Packet IDs are
// assigned in injection order.
func NetworkTraffic(s *core.System, d *core.Deployment) []nocsim.Packet {
	exp := s.Expanded()
	var pkts []nocsim.Packet
	for _, pair := range exp.DepEdges() {
		a, b := pair[0], pair[1]
		if !d.Exists[a] || !d.Exists[b] {
			continue
		}
		beta, gamma := d.Proc[a], d.Proc[b]
		if beta == gamma {
			continue
		}
		rho := d.PathSel[beta][gamma]
		pkts = append(pkts, nocsim.Packet{
			Bytes:  exp.Data(a, b),
			Route:  s.Mesh.PathOf(beta, gamma, rho).Nodes,
			Inject: d.End(s, a),
		})
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].Inject < pkts[j].Inject })
	for i := range pkts {
		pkts[i].ID = i
	}
	return pkts
}
