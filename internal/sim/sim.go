// Package sim executes a deployment in a discrete-event simulator,
// independently re-deriving task timing from the deployment's decisions
// (allocation, levels, paths, per-processor order) and injecting transient
// faults according to the reliability model. It provides an end-to-end
// check that a statically validated deployment actually runs: derived
// timing can never exceed the static schedule, deadlines hold, and the
// observed fault-survival rate matches the analytic reliability.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"nocdeploy/internal/core"
	"nocdeploy/internal/reliability"
)

// Event is one simulated task execution.
type Event struct {
	Slot  int // expanded slot id
	Proc  int
	Start float64
	End   float64
}

// Result is the outcome of one fault-free execution replay.
type Result struct {
	Events   []Event
	Makespan float64
	Energy   []float64 // per-processor energy actually consumed (comp+comm)
}

// Execute replays the deployment event by event: a task starts when its
// processor is free and every existing predecessor has completed and its
// data has arrived over the selected paths. Tasks on the same processor
// run in the deployment's start-time order. The derived schedule is
// returned; it is always at least as tight as the static one.
func Execute(s *core.System, d *core.Deployment) (*Result, error) {
	if _, err := core.ComputeMetrics(s, d); err != nil {
		return nil, err
	}
	exp := s.Expanded()
	var order []int
	for i := 0; i < exp.Size(); i++ {
		if d.Exists[i] {
			order = append(order, i)
		}
	}
	// Processor-local order: by static start time, ties by slot id.
	sort.Slice(order, func(a, b int) bool {
		if d.Start[order[a]] != d.Start[order[b]] { //lint:allow floateq — deterministic sort tie-break; tolerance would break transitivity
			return d.Start[order[a]] < d.Start[order[b]]
		}
		return order[a] < order[b]
	})

	procFree := make([]float64, s.Mesh.N())
	end := make(map[int]float64, len(order))
	res := &Result{Energy: make([]float64, s.Mesh.N())}
	done := map[int]bool{}
	pending := append([]int(nil), order...)
	for len(pending) > 0 {
		progressed := false
		for idx := 0; idx < len(pending); idx++ {
			i := pending[idx]
			readyOK := true
			ready := 0.0
			for _, pair := range exp.DepEdges() {
				a, b := pair[0], pair[1]
				if b != i || !d.Exists[a] {
					continue
				}
				if !done[a] {
					readyOK = false
					break
				}
				if end[a] > ready {
					ready = end[a]
				}
			}
			if !readyOK {
				continue
			}
			// Data arrival: the summed per-predecessor transfer times,
			// matching the paper's sequential-reception model.
			ready += d.CommTime(s, i)
			k := d.Proc[i]
			start := ready
			if procFree[k] > start {
				start = procFree[k]
			}
			finish := start + s.ExecTime(i, d.Level[i])
			end[i] = finish
			done[i] = true
			procFree[k] = finish
			res.Events = append(res.Events, Event{Slot: i, Proc: k, Start: start, End: finish})
			res.Energy[k] += s.ExecEnergy(i, d.Level[i])
			if finish > res.Makespan {
				res.Makespan = finish
			}
			pending = append(pending[:idx], pending[idx+1:]...)
			progressed = true
			break // restart scan to respect the processor-local order
		}
		if !progressed {
			return nil, fmt.Errorf("sim: deadlock — remaining slots %v have unmet dependencies", pending)
		}
	}
	// Communication energy is charged per transfer to the routers involved.
	for _, pair := range exp.DepEdges() {
		a, b := pair[0], pair[1]
		if !d.Exists[a] || !d.Exists[b] {
			continue
		}
		beta, gamma := d.Proc[a], d.Proc[b]
		if beta == gamma {
			continue
		}
		rho := d.PathSel[beta][gamma]
		for k := 0; k < s.Mesh.N(); k++ {
			res.Energy[k] += exp.Data(a, b) * s.Mesh.EnergyPerByte(beta, gamma, k, rho)
		}
	}
	return res, nil
}

// FaultStats aggregates a Monte-Carlo fault-injection campaign.
type FaultStats struct {
	Runs int
	// TaskSurvived[i] counts runs where original task i produced a correct
	// result (at least one copy fault-free).
	TaskSurvived []int
	// AllSurvived counts runs where every task survived.
	AllSurvived int
}

// SurvivalRate returns the observed per-task survival probability.
func (f *FaultStats) SurvivalRate(i int) float64 {
	return float64(f.TaskSurvived[i]) / float64(f.Runs)
}

// SystemRate returns the observed probability that the whole task set
// survives a hyperperiod.
func (f *FaultStats) SystemRate() float64 {
	return float64(f.AllSurvived) / float64(f.Runs)
}

// InjectFaults runs the deployment `runs` times, sampling a transient fault
// for every executed copy from the reliability model, and reports survival
// statistics. The deployment must be structurally valid.
func InjectFaults(s *core.System, d *core.Deployment, runs int, seed int64) (*FaultStats, error) {
	if _, err := core.ComputeMetrics(s, d); err != nil {
		return nil, err
	}
	if runs <= 0 {
		return nil, fmt.Errorf("sim: runs %d must be positive", runs)
	}
	M := s.Graph.M()
	rng := rand.New(rand.NewSource(seed))
	stats := &FaultStats{Runs: runs, TaskSurvived: make([]int, M)}
	for r := 0; r < runs; r++ {
		all := true
		for i := 0; i < M; i++ {
			ok := reliability.Sample(rng, s.Reliability(i, d.Level[i]))
			dup := i + M
			if !ok && d.Exists[dup] {
				ok = reliability.Sample(rng, s.Reliability(dup, d.Level[dup]))
			}
			if ok {
				stats.TaskSurvived[i]++
			} else {
				all = false
			}
		}
		if all {
			stats.AllSurvived++
		}
	}
	return stats, nil
}

// AnalyticTaskReliability returns r'_i for original task i under the
// deployment (with duplication combination when the copy exists).
func AnalyticTaskReliability(s *core.System, d *core.Deployment, i int) float64 {
	r := s.Reliability(i, d.Level[i])
	dup := i + s.Graph.M()
	if d.Exists[dup] {
		return reliability.Combined(r, s.Reliability(dup, d.Level[dup]))
	}
	return r
}
