package sim

import (
	"math"
	"testing"

	"nocdeploy/internal/core"
	"nocdeploy/internal/noc"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/taskgen"
)

func buildDeployed(t *testing.T, m int, seed int64) (*core.System, *core.Deployment) {
	t.Helper()
	plat := platform.Default(16)
	mesh := noc.Default(4, 4)
	g, err := taskgen.Layered(taskgen.DefaultParams(m, seed), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	h, err := core.Horizon(plat, mesh, g, rel, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		t.Fatal(err)
	}
	d, info, err := core.Heuristic(s, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("heuristic infeasible on loose instance")
	}
	return s, d
}

// The event-driven replay can never be slower than the static schedule,
// and must execute every existing slot exactly once on its processor.
func TestExecuteMatchesStaticSchedule(t *testing.T) {
	s, d := buildDeployed(t, 14, 3)
	res, err := Execute(s, d)
	if err != nil {
		t.Fatal(err)
	}
	met, err := core.ComputeMetrics(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > met.Makespan+1e-9 {
		t.Errorf("simulated makespan %g exceeds static %g", res.Makespan, met.Makespan)
	}
	count := 0
	for i := range d.Exists {
		if d.Exists[i] {
			count++
		}
	}
	if len(res.Events) != count {
		t.Fatalf("executed %d events, want %d", len(res.Events), count)
	}
	seen := map[int]bool{}
	for _, ev := range res.Events {
		if seen[ev.Slot] {
			t.Fatalf("slot %d executed twice", ev.Slot)
		}
		seen[ev.Slot] = true
		if ev.Proc != d.Proc[ev.Slot] {
			t.Errorf("slot %d ran on processor %d, deployed on %d", ev.Slot, ev.Proc, d.Proc[ev.Slot])
		}
		if ev.End < ev.Start {
			t.Errorf("slot %d has negative duration", ev.Slot)
		}
	}
}

// Precedences must hold in the simulated timeline: a successor starts no
// earlier than every predecessor's end plus its communication time.
func TestExecuteRespectsPrecedence(t *testing.T) {
	s, d := buildDeployed(t, 12, 5)
	res, err := Execute(s, d)
	if err != nil {
		t.Fatal(err)
	}
	end := map[int]float64{}
	start := map[int]float64{}
	for _, ev := range res.Events {
		end[ev.Slot] = ev.End
		start[ev.Slot] = ev.Start
	}
	for _, pair := range s.Expanded().DepEdges() {
		a, b := pair[0], pair[1]
		if !d.Exists[a] || !d.Exists[b] {
			continue
		}
		if start[b]+1e-9 < end[a] {
			t.Errorf("slot %d starts %g before predecessor %d ends %g", b, start[b], a, end[a])
		}
	}
	// No overlap per processor.
	type iv struct{ s, e float64 }
	per := map[int][]iv{}
	for _, ev := range res.Events {
		per[ev.Proc] = append(per[ev.Proc], iv{ev.Start, ev.End})
	}
	for k, ivs := range per {
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].s < ivs[j].e-1e-9 && ivs[j].s < ivs[i].e-1e-9 {
					t.Errorf("overlap on processor %d: %+v vs %+v", k, ivs[i], ivs[j])
				}
			}
		}
	}
}

// Replay energy must equal the analytic metrics exactly (same model).
func TestExecuteEnergyMatchesMetrics(t *testing.T) {
	s, d := buildDeployed(t, 10, 7)
	res, err := Execute(s, d)
	if err != nil {
		t.Fatal(err)
	}
	met, err := core.ComputeMetrics(s, d)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Energy {
		want := met.CompEnergy[k] + met.CommEnergy[k]
		if math.Abs(res.Energy[k]-want) > 1e-12*(1+want) {
			t.Errorf("proc %d energy %g, metrics %g", k, res.Energy[k], want)
		}
	}
}

// Observed fault survival must match the analytic reliability to Monte-
// Carlo accuracy, and every task must meet the threshold.
func TestInjectFaultsMatchesAnalytic(t *testing.T) {
	s, d := buildDeployed(t, 10, 11)
	const runs = 200000
	stats, err := InjectFaults(s, d, runs, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Graph.M(); i++ {
		want := AnalyticTaskReliability(s, d, i)
		got := stats.SurvivalRate(i)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("task %d survival %g, analytic %g", i, got, want)
		}
		if want < s.Rel.Rth {
			t.Errorf("task %d analytic reliability %g below threshold %g", i, want, s.Rel.Rth)
		}
	}
	if stats.SystemRate() <= 0 || stats.SystemRate() > 1 {
		t.Errorf("system rate %g out of range", stats.SystemRate())
	}
}

func TestInjectFaultsValidation(t *testing.T) {
	s, d := buildDeployed(t, 6, 1)
	if _, err := InjectFaults(s, d, 0, 1); err == nil {
		t.Error("expected error for zero runs")
	}
	bad := *d
	bad.Proc = append([]int(nil), d.Proc...)
	bad.Proc[0] = -5
	if _, err := InjectFaults(s, &bad, 10, 1); err == nil {
		t.Error("expected error for invalid deployment")
	}
}

// A deployment whose duplicate lets a low-frequency original pass the
// threshold: fault injection must show the duplicate actually rescuing
// failed runs (duplicated survival strictly above single-copy survival).
func TestDuplicationRescue(t *testing.T) {
	plat := platform.Default(4)
	mesh := noc.Default(2, 2)
	g, err := taskgen.Layered(taskgen.Params{
		M: 4, MinWCEC: 4e6, MaxWCEC: 6e6, MinBytes: 1024, MaxBytes: 2048,
		DeadlineSlack: 1.5, FMinRef: plat.Fmin(), Seed: 9,
	}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	h, err := core.Horizon(plat, mesh, g, rel, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := core.Heuristic(s, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.DupCount() == 0 {
		t.Skip("instance produced no duplicates; adjust parameters")
	}
	stats, err := InjectFaults(s, d, 100000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Graph.M(); i++ {
		if !d.Exists[i+s.Graph.M()] {
			continue
		}
		single := s.Reliability(i, d.Level[i])
		if got := stats.SurvivalRate(i); got <= single {
			t.Errorf("task %d: duplicated survival %g not above single-copy %g", i, got, single)
		}
	}
}
