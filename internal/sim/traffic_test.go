package sim

import (
	"testing"

	"nocdeploy/internal/nocsim"
)

// The flit-level simulation of the deployment's actual traffic must not
// exceed the store-and-forward analytic budget the schedule reserved:
// pipelined per-packet latency ≤ analytic transfer time per edge, so the
// static schedule remains feasible under the detailed network model.
func TestDeploymentTrafficFitsAnalyticBudget(t *testing.T) {
	s, d := buildDeployed(t, 16, 13)
	pkts := NetworkTraffic(s, d)
	if len(pkts) == 0 {
		t.Skip("deployment co-located all dependent tasks; no traffic")
	}
	st, err := nocsim.Simulate(s.Mesh, pkts, nocsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != len(pkts) {
		t.Fatalf("%d results for %d packets", len(st.Results), len(pkts))
	}
	for i, r := range st.Results {
		p := pkts[r.ID]
		src := p.Route[0]
		dst := p.Route[len(p.Route)-1]
		// The analytic budget for this edge: bytes × per-byte path time.
		var analytic float64
		for rho := 0; rho < 2; rho++ {
			if eq := s.Mesh.PathOf(src, dst, rho).Nodes; routeEqual(eq, p.Route) {
				analytic = p.Bytes * s.Mesh.TimePerByte(src, dst, rho)
				break
			}
		}
		if analytic == 0 {
			t.Fatalf("packet %d route not a candidate path", i)
		}
		// Contention may add delay beyond zero-load, but the aggregate
		// analytic budget is per-edge; allow congestion up to the summed
		// budget of all packets sharing time (loose but meaningful bound).
		if r.Latency > analytic*float64(len(pkts)) {
			t.Errorf("packet %d latency %g far exceeds analytic budget %g", i, r.Latency, analytic)
		}
	}
	// Zero-load check: re-simulate each packet alone; must fit its budget.
	for _, p := range pkts {
		solo, err := nocsim.Simulate(s.Mesh, []nocsim.Packet{p}, nocsim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		src, dst := p.Route[0], p.Route[len(p.Route)-1]
		var analytic float64
		for rho := 0; rho < 2; rho++ {
			if routeEqual(s.Mesh.PathOf(src, dst, rho).Nodes, p.Route) {
				a := p.Bytes * s.Mesh.TimePerByte(src, dst, rho)
				if analytic == 0 || a < analytic {
					analytic = a
				}
			}
		}
		if solo.Results[0].Latency > analytic*1.05 {
			t.Errorf("solo packet %d latency %g exceeds analytic %g", p.ID, solo.Results[0].Latency, analytic)
		}
	}
}

func routeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNetworkTrafficInjectionOrder(t *testing.T) {
	s, d := buildDeployed(t, 12, 17)
	pkts := NetworkTraffic(s, d)
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Inject < pkts[i-1].Inject {
			t.Fatal("packets not sorted by injection time")
		}
	}
	for i, p := range pkts {
		if p.ID != i {
			t.Fatalf("packet %d has ID %d", i, p.ID)
		}
		if p.Bytes <= 0 || len(p.Route) < 2 {
			t.Fatalf("malformed packet %+v", p)
		}
	}
}
