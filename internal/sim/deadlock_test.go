package sim

import (
	"strings"
	"testing"

	"nocdeploy/internal/core"
	"nocdeploy/internal/noc"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/task"
)

// Execute must report (not hang on) a structurally impossible run order.
// We force one by building a graph whose only existing predecessor edge is
// between two copies that cannot both be scheduled; easiest trigger: a
// dependency cycle cannot exist in a validated Graph, so instead exercise
// the defensive path by checking the error message shape on a healthy
// system (no deadlock) and the validation error on a broken deployment.
func TestExecuteErrorPaths(t *testing.T) {
	plat := platform.Default(4)
	mesh := noc.Default(2, 2)
	g := task.New()
	a := g.AddTask("a", 1e6, 0.01)
	b := g.AddTask("b", 1e6, 0.01)
	g.AddEdge(a, b, 1024)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	s, err := core.NewSystem(plat, mesh, g, rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := core.Heuristic(s, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(s, d); err != nil {
		t.Fatalf("healthy deployment failed to execute: %v", err)
	}
	// Broken structure must surface as a validation error from Execute.
	bad := *d
	bad.Proc = append([]int(nil), d.Proc...)
	bad.Proc[0] = 99
	if _, err := Execute(s, &bad); err == nil || !strings.Contains(err.Error(), "processor") {
		t.Errorf("expected structural error, got %v", err)
	}
}

// Replayed events respect the deployment's same-processor ordering: when
// two independent tasks share a core, the one with the earlier static
// start runs first.
func TestExecuteHonorsStaticOrdering(t *testing.T) {
	s, d := buildDeployed(t, 14, 21)
	res, err := Execute(s, d)
	if err != nil {
		t.Fatal(err)
	}
	startOf := map[int]float64{}
	for _, ev := range res.Events {
		startOf[ev.Slot] = ev.Start
	}
	for i := range d.Exists {
		for j := range d.Exists {
			if i >= j || !d.Exists[i] || !d.Exists[j] {
				continue
			}
			if d.Proc[i] != d.Proc[j] {
				continue
			}
			if d.Start[i] < d.Start[j] && startOf[i] > startOf[j]+1e-12 {
				t.Errorf("slots %d/%d on proc %d: static order violated in replay", i, j, d.Proc[i])
			}
		}
	}
}
