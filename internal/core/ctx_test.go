package core

import (
	"context"
	"testing"
	"time"
)

// TestHeuristicCtxBackgroundMatchesWrapper: with a live context the *Ctx
// entry point is the same solve as the wrapper.
func TestHeuristicCtxBackgroundMatchesWrapper(t *testing.T) {
	s := mediumSystem(t, 12, 3)
	d1, i1, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, i2, err := HeuristicCtx(context.Background(), s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if i1.Feasible != i2.Feasible || i1.Objective != i2.Objective { //lint:allow floateq — identical code path must give bit-identical results
		t.Fatalf("wrapper and Ctx solve disagree: %+v vs %+v", i1, i2)
	}
	if i2.Cancelled {
		t.Fatal("background context reported Cancelled")
	}
	for i := range d1.Proc {
		if d1.Proc[i] != d2.Proc[i] || d1.Level[i] != d2.Level[i] {
			t.Fatalf("deployments diverge at slot %d", i)
		}
	}
}

// TestHeuristicCtxPreCancelled: an already-cancelled context returns
// immediately with the Cancelled flag and no error.
func TestHeuristicCtxPreCancelled(t *testing.T) {
	s := mediumSystem(t, 12, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, info, err := HeuristicCtx(ctx, s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cancelled {
		t.Fatal("cancelled context did not set SolveInfo.Cancelled")
	}
	if info.Feasible {
		t.Fatal("cancelled partial solve must not claim feasibility")
	}
	if d == nil {
		t.Fatal("cancelled heuristic should still return the partial deployment")
	}
}

// TestHeuristicWithRepairCtxPreCancelled mirrors the heuristic test for the
// repair wrapper.
func TestHeuristicWithRepairCtxPreCancelled(t *testing.T) {
	s := mediumSystem(t, 12, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, info, err := HeuristicWithRepairCtx(ctx, s, Options{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cancelled {
		t.Fatal("cancelled context did not set SolveInfo.Cancelled")
	}
}

// TestAnnealCtxCancelMidRun: cancelling during the Metropolis loop returns
// the best-so-far deployment promptly with Cancelled set. The starting
// point (repaired heuristic) is feasible here, so the best-so-far must be a
// valid deployment even when the chain is cut short.
func TestAnnealCtxCancelMidRun(t *testing.T) {
	s := mediumSystem(t, 12, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	// A move budget far beyond what 30ms can sweep, so only cancellation
	// can end the run early.
	d, info, err := AnnealCtx(ctx, s, Options{}, AnnealOptions{Seed: 1, Iters: 50_000_000})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cancelled {
		t.Fatalf("anneal ran to completion in %v; expected cancellation", elapsed)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; expected prompt return", elapsed)
	}
	if d == nil {
		t.Fatal("cancelled anneal should return the best-so-far deployment")
	}
	if info.Feasible {
		if _, err := Validate(s, d); err != nil {
			t.Fatalf("claimed-feasible cancelled result fails validation: %v", err)
		}
	}
}

// cancelledOptimalWithIncumbent runs a deadline-cancelled warm-started
// OptimalCtx and asserts the incumbent deployment comes back with
// Cancelled set. The instance — 12 tasks on a 4×4 mesh — is sized so the
// full tree takes hours even for the sparse warm-started solver core
// (node LPs run seconds each; cancellation latency is bounded by the
// in-LP context poll, not a whole node). The deadline must outlast the
// model build (machine dependent) yet expire long before the exact solve
// would finish, so the test walks an escalating ladder: a deadline that
// dies during the build (nil deployment) steps up to the next rung.
func cancelledOptimalWithIncumbent(t *testing.T, workers int) {
	t.Helper()
	s := mediumSystem(t, 12, 3)
	opts := Options{}
	hd, hinfo, err := Heuristic(s, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !hinfo.Feasible {
		t.Skip("heuristic infeasible on this instance; warm start unavailable")
	}
	for _, budget := range []time.Duration{300 * time.Millisecond, 2 * time.Second, 10 * time.Second} {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		d, info, err := OptimalCtx(ctx, s, opts, OptimalOptions{WarmDeployment: hd, Workers: workers})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !info.Cancelled {
			// The exact solve on a 12-task, 16-processor instance is far
			// beyond any rung of the ladder; completing means cancellation
			// was ignored.
			t.Fatalf("optimal solve was not cancelled within %v (nodes %d)", budget, info.Nodes)
		}
		if d == nil {
			continue // deadline expired during model build; try a longer one
		}
		if _, err := Validate(s, d); err != nil {
			t.Fatalf("returned incumbent fails validation: %v", err)
		}
		return
	}
	t.Fatal("warm-started cancelled solve never returned the incumbent")
}

// TestOptimalCtxCancelReturnsIncumbent: a deadline far shorter than the
// exact solve cancels branch & bound; with a warm-started incumbent the
// best-so-far deployment comes back with Cancelled set.
func TestOptimalCtxCancelReturnsIncumbent(t *testing.T) {
	cancelledOptimalWithIncumbent(t, 0)
}

// TestOptimalCtxParallelCancel exercises the parallel branch & bound
// cancellation path.
func TestOptimalCtxParallelCancel(t *testing.T) {
	cancelledOptimalWithIncumbent(t, 4)
}
