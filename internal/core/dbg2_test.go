package core

import (
	"fmt"
	"os"
	"testing"

	"nocdeploy/internal/lp"
	"nocdeploy/internal/milp"
	"nocdeploy/internal/noc"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/taskgen"
)

func TestDbgEmbed2(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip()
	}
	seedRaw, mRaw, wRaw := uint16(0x4806), uint8(0x7e), uint8(0xe3)
	m := 2 + int(mRaw%8)
	w := 2 + int(wRaw%2)
	seed := int64(seedRaw)
	plat := platform.Default(w * 2)
	mesh := noc.Default(w, 2)
	g, _ := taskgen.Layered(taskgen.DefaultParams(m, seed), 3, 2)
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	h, _ := Horizon(plat, mesh, g, rel, 1.0+float64(seedRaw%16)/8)
	s, _ := NewSystem(plat, mesh, g, rel, h)
	d, _, _ := Heuristic(s, Options{}, seed)
	f := BuildFormulation(s, Options{})

	try := func(name string, fix map[milp.VarID]float64) {
		x, err := f.Model.Complete(fix, lp.Options{})
		fmt.Printf("%-12s feasible=%v err=%v\n", name, x != nil, err)
	}
	M2 := s.Expanded().Size()
	fx := map[milp.VarID]float64{}
	setB := func(v milp.VarID, on bool) {
		if on {
			fx[v] = 1
		} else {
			fx[v] = 0
		}
	}
	// h only
	for i := 0; i < M2; i++ {
		setB(f.h[i], d.Exists[i])
	}
	try("h", copyMap(fx))
	for i := 0; i < M2; i++ {
		for l := range f.y[i] {
			setB(f.y[i][l], d.Level[i] == l)
		}
	}
	try("h+y", copyMap(fx))
	for i := 0; i < M2; i++ {
		for k := range f.x[i] {
			setB(f.x[i][k], d.Exists[i] && d.Proc[i] == k)
		}
	}
	try("h+y+x", copyMap(fx))
	for b := range f.c {
		for gg := range f.c[b] {
			if b == gg || f.c[b][gg] == nil {
				continue
			}
			for rho := range f.c[b][gg] {
				setB(f.c[b][gg][rho], d.PathSel[b][gg] == rho)
			}
		}
	}
	try("h+y+x+c", copyMap(fx))
	before := func(i, j int) bool {
		if d.Start[i] != d.Start[j] {
			return d.Start[i] < d.Start[j]
		}
		return i < j
	}
	for key, v := range f.u {
		setB(v, before(key[0], key[1]))
	}
	try("all(+u)", copyMap(fx))
}

func copyMap(m map[milp.VarID]float64) map[milp.VarID]float64 {
	o := map[milp.VarID]float64{}
	for k, v := range m {
		o[k] = v
	}
	return o
}
