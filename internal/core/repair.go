package core

import (
	"context"
	"math"
	"strconv"

	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
)

// HeuristicWithRepairCtx is an extension beyond the paper: it runs the
// three-phase heuristic and, when the resulting schedule misses the
// horizon (constraint (9)), iteratively raises the V/F level of the
// latest-finishing tasks — re-applying the duplication rule (4), which may
// drop a replica that a faster original no longer needs — and redoes
// phases 2 and 3. This recovers much of the feasibility gap between the
// paper's heuristic and the exact solver (Fig. 2(h)) at negligible cost.
//
// maxRounds bounds the repair iterations; 0 picks 4·M. The context is
// checked once per repair round; a cancelled run returns the current
// best-effort deployment with SolveInfo.Cancelled set.
func HeuristicWithRepairCtx(ctx context.Context, s *System, opts Options, seed int64, maxRounds int) (*Deployment, *SolveInfo, error) {
	startT := opts.now()
	tr := opts.Trace
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.SolveStart, Label: "heuristic+repair"})
	}
	done := func(info *SolveInfo) {
		if tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.SolveDone, Label: "heuristic+repair", Obj: info.Objective, Phase: feasibilityOutcome(info.Feasible)})
		}
	}
	d, info, err := HeuristicCtx(ctx, s, opts, seed)
	if err != nil {
		return nil, nil, err
	}
	if info.Cancelled {
		info.Runtime = opts.now().Sub(startT)
		return d, info, nil
	}
	if info.Feasible {
		info.Runtime = opts.now().Sub(startT)
		done(info)
		return d, info, nil
	}
	if maxRounds <= 0 {
		maxRounds = 4 * s.Graph.M()
	}
	L := s.Plat.L()
	M := s.Graph.M()
	for round := 0; round < maxRounds; round++ {
		if ctx.Err() != nil {
			ri := cancelledInfo(opts.now().Sub(startT), tr, "heuristic+repair")
			return d, ri, nil
		}
		// Raise the level of the latest finisher that can still go faster.
		cand := -1
		candEnd := -1.0
		for i := 0; i < s.exp.Size(); i++ {
			if !d.Exists[i] || d.Level[i] >= L-1 {
				continue
			}
			if e := d.End(s, i); e > candEnd {
				cand, candEnd = i, e
			}
		}
		if cand < 0 {
			break // everything is already at the top level
		}
		if tr := opts.Trace; tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.HeurRepair, Node: round + 1, Label: "slot " + strconv.Itoa(cand)})
		}
		d.Level[cand]++
		// Re-apply the duplication rule for the affected original: a
		// faster original may clear the threshold on its own (h must drop
		// to 0 per rule (4)); a still-unreliable one keeps its replica,
		// whose level must continue to satisfy (5) — raising the original
		// only helps, so no replica change is needed there.
		orig := s.exp.Orig(cand)
		if !s.exp.IsCopy(cand) {
			dup := orig + M
			needs := s.Reliability(orig, d.Level[orig]) < s.Rel.Rth
			if needs && !d.Exists[dup] {
				// Raising a level never reduces reliability, so this can
				// only happen if the task was unreliable all along; keep
				// the replica machinery consistent anyway.
				d.Exists[dup] = true
				d.Level[dup] = L - 1
			}
			if !needs && d.Exists[dup] {
				d.Exists[dup] = false
			}
		}
		ok, _, _, err := deployGivenLevels(ctx, s, d, seed, opts)
		if err != nil {
			return nil, nil, err
		}
		if ctx.Err() != nil {
			ri := cancelledInfo(opts.now().Sub(startT), tr, "heuristic+repair")
			return d, ri, nil
		}
		if ok && CheckConstraints(s, d) == nil {
			m, err := ComputeMetrics(s, d)
			if err != nil {
				return nil, nil, err
			}
			obj := m.MaxEnergy
			if opts.Objective == MinimizeEnergy {
				obj = m.SumEnergy
			}
			ri := &SolveInfo{
				Runtime:   opts.now().Sub(startT),
				Feasible:  true,
				Objective: obj,
			}
			done(ri)
			return d, ri, nil
		}
	}
	// Repair failed; report the (infeasible) best effort.
	m, err := ComputeMetrics(s, d)
	if err != nil {
		return nil, nil, err
	}
	obj := m.MaxEnergy
	if opts.Objective == MinimizeEnergy {
		obj = m.SumEnergy
	}
	ri := &SolveInfo{Runtime: opts.now().Sub(startT), Feasible: false, Objective: obj}
	done(ri)
	return d, ri, nil
}

// Improve is an extension beyond the paper: first-improvement local search
// over a feasible deployment. Moves are (a) reassigning one task to a
// different processor and (b) flipping one pair's path selection; a move
// is accepted when the rescheduled deployment stays feasible and the
// objective strictly improves. It returns the improved deployment, its
// objective, and the number of accepted moves.
func Improve(s *System, d *Deployment, opts Options, maxMoves int) (*Deployment, float64, int) {
	if maxMoves <= 0 {
		maxMoves = 8 * s.Graph.M()
	}
	best := cloneDeploymentCore(d)
	bestObj := objectiveOf(s, best, opts)
	accepted := 0

	order, err := scheduleOrder(s, best)
	if err != nil {
		// The input deployment's existing subgraph is broken; no move can
		// fix that, so return the input unchanged.
		return best, bestObj, 0
	}
	reschedule := func(cand *Deployment) bool {
		scheduleExisting(s, cand, order, func(i int) float64 { return cand.CommTime(s, i) })
		return CheckConstraints(s, cand) == nil
	}

	for accepted < maxMoves {
		improved := false
	moves:
		for i := 0; i < s.exp.Size(); i++ {
			if !best.Exists[i] {
				continue
			}
			for k := 0; k < s.Mesh.N(); k++ {
				if k == best.Proc[i] {
					continue
				}
				cand := cloneDeploymentCore(best)
				cand.Proc[i] = k
				if !reschedule(cand) {
					continue
				}
				if obj := objectiveOf(s, cand, opts); numeric.LtTol(obj, bestObj, energyTol) {
					best, bestObj = cand, obj
					accepted++
					improved = true
					break moves
				}
			}
		}
		if !improved {
			// Path flips.
			for b := 0; b < s.Mesh.N() && !improved; b++ {
				for g := 0; g < s.Mesh.N(); g++ {
					if b == g {
						continue
					}
					cand := cloneDeploymentCore(best)
					cand.PathSel[b][g] = 1 - cand.PathSel[b][g]
					if !reschedule(cand) {
						continue
					}
					if obj := objectiveOf(s, cand, opts); numeric.LtTol(obj, bestObj, energyTol) {
						best, bestObj = cand, obj
						accepted++
						improved = true
						break
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, bestObj, accepted
}

// ImprovePaths is path-flip-only local search: starting from a feasible
// deployment (typically single-path), it greedily flips individual pairs'
// path selections while feasibility holds and the objective improves. By
// construction the result is never worse than the input, which makes it
// the fair per-instance "multi-path vs single-path" comparison.
func ImprovePaths(s *System, d *Deployment, opts Options) (*Deployment, float64) {
	best := cloneDeploymentCore(d)
	bestObj := objectiveOf(s, best, opts)
	order, err := scheduleOrder(s, best)
	if err != nil {
		return best, bestObj
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < s.Mesh.N(); b++ {
			for g := 0; g < s.Mesh.N(); g++ {
				if b == g {
					continue
				}
				cand := cloneDeploymentCore(best)
				cand.PathSel[b][g] = 1 - cand.PathSel[b][g]
				scheduleExisting(s, cand, order, func(i int) float64 { return cand.CommTime(s, i) })
				if CheckConstraints(s, cand) != nil {
					continue
				}
				if obj := objectiveOf(s, cand, opts); numeric.LtTol(obj, bestObj, energyTol) {
					best, bestObj = cand, obj
					changed = true
				}
			}
		}
	}
	return best, bestObj
}

// scheduleOrder returns a topological order of the existing slots (the
// order the list scheduler replays moves in).
func scheduleOrder(s *System, d *Deployment) ([]int, error) {
	sub, slots := s.exp.ExistingGraph(d.Exists)
	layers, err := sub.LayersErr()
	if err != nil {
		return nil, err
	}
	var order []int
	for _, layer := range layers {
		for _, t := range layer {
			order = append(order, slots[t])
		}
	}
	return order, nil
}

func objectiveOf(s *System, d *Deployment, opts Options) float64 {
	m, err := ComputeMetrics(s, d)
	if err != nil {
		return math.Inf(1)
	}
	if opts.Objective == MinimizeEnergy {
		return m.SumEnergy
	}
	return m.MaxEnergy
}

// cloneDeploymentCore deep-copies a deployment.
func cloneDeploymentCore(d *Deployment) *Deployment {
	c := &Deployment{
		Exists: append([]bool(nil), d.Exists...),
		Level:  append([]int(nil), d.Level...),
		Proc:   append([]int(nil), d.Proc...),
		Start:  append([]float64(nil), d.Start...),
	}
	for _, row := range d.PathSel {
		c.PathSel = append(c.PathSel, append([]int(nil), row...))
	}
	return c
}
