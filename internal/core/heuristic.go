package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"

	"nocdeploy/internal/noc"
	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/reliability"
)

// energyTol is the absolute tie-break tolerance for energy comparisons in
// the greedy phases: energies are joule-scale (1e-6..1e-3 for realistic
// instances), so 1e-15 separates real improvements from accumulated
// rounding noise without masking genuine ties.
const energyTol = 1e-15

// SolveInfo reports how a solve went.
type SolveInfo struct {
	Runtime   time.Duration
	Feasible  bool
	Objective float64 // value of the chosen objective (BE: max_k, ME: Σ_k)
	// Cancelled reports that the context of a *Ctx entry point was
	// cancelled before the solve finished. The returned deployment is the
	// best incumbent found so far (possibly partial for the constructive
	// heuristic); Feasible refers to that incumbent.
	Cancelled bool
	// Phases breaks Runtime into named solver phases (heuristic: P1/P2/P3;
	// exact solver: build/solve/extract). Nil when the solver does not
	// decompose (e.g. annealing).
	Phases []PhaseTiming
	// MILP-only fields; zero for the heuristic.
	Nodes int
	Iters int
	Gap   float64
	// Incumbents is the exact solver's incumbent trajectory (model-scale
	// MILP objective per improvement); nil for the heuristic.
	Incumbents []IncumbentPoint
}

// PhaseTiming is the wall-clock spent in one named solver phase.
type PhaseTiming struct {
	Name string
	D    time.Duration
}

// IncumbentPoint is one improvement of the exact solver's incumbent.
type IncumbentPoint struct {
	T     time.Duration // since the MILP solve started
	Obj   float64       // MILP objective at acceptance (model scale)
	Nodes int           // LP relaxations solved at acceptance time
}

// HeuristicCtx runs the paper's three-phase decomposition (Algorithms 1–3)
// and returns the deployment together with solve information. The returned
// error is non-nil only for malformed inputs; an infeasible outcome is
// reported via SolveInfo.Feasible with the best-effort deployment attached.
// The context is checked between phases: a cancelled solve returns the
// partial deployment with SolveInfo.Cancelled set (see Heuristic for the
// context-free wrapper).
func HeuristicCtx(ctx context.Context, s *System, opts Options, seed int64) (*Deployment, *SolveInfo, error) {
	startT := opts.now()
	tr := opts.Trace
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.SolveStart, Label: "heuristic"})
		tr.Emit(obs.Event{Kind: obs.HeurPhaseStart, Phase: "P1"})
	}
	d := NewDeployment(s)

	if ctx.Err() != nil {
		return d, cancelledInfo(opts.now().Sub(startT), tr, "heuristic"), nil
	}
	ok1 := phase1FrequencyAndDuplication(s, d)
	t1 := opts.now().Sub(startT)
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.HeurPhaseEnd, Phase: "P1", Dur: t1.Seconds()})
	}
	if ctx.Err() != nil {
		return d, cancelledInfo(opts.now().Sub(startT), tr, "heuristic"), nil
	}
	ok23, t2, t3, err := deployGivenLevels(ctx, s, d, seed, opts)
	if err != nil {
		return nil, nil, err
	}
	if ctx.Err() != nil {
		return d, cancelledInfo(opts.now().Sub(startT), tr, "heuristic"), nil
	}

	info := &SolveInfo{Phases: []PhaseTiming{{"P1", t1}, {"P2", t2}, {"P3", t3}}}
	m, err := ComputeMetrics(s, d)
	if err != nil {
		return nil, nil, err
	}
	if opts.Objective == MinimizeEnergy {
		info.Objective = m.SumEnergy
	} else {
		info.Objective = m.MaxEnergy
	}
	info.Feasible = ok1 && ok23 && CheckConstraints(s, d) == nil
	// Stamped last so Runtime covers the full solve including the metrics
	// and constraint evaluation above.
	info.Runtime = opts.now().Sub(startT)
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.SolveDone, Label: "heuristic", Obj: info.Objective, Phase: feasibilityOutcome(info.Feasible)})
	}
	return d, info, nil
}

// feasibilityOutcome names a solve outcome for telemetry.
func feasibilityOutcome(feasible bool) string {
	if feasible {
		return "feasible"
	}
	return "infeasible"
}

// cancelledInfo builds the SolveInfo for a solve abandoned on context
// cancellation and emits the closing trace event. The caller measures the
// elapsed time through its options clock.
func cancelledInfo(elapsed time.Duration, tr *obs.Trace, label string) *SolveInfo {
	info := &SolveInfo{Runtime: elapsed, Cancelled: true}
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.SolveDone, Label: label, Phase: "cancelled"})
	}
	return info
}

// deployGivenLevels runs phases 2 and 3 for a deployment whose levels and
// duplication flags are already decided, reporting horizon feasibility and
// the wall-clock spent in each phase. The context is checked between the
// phases; a cancelled run returns ok=false without touching Phase 3 (the
// caller notices ctx.Err and reports Cancelled).
func deployGivenLevels(ctx context.Context, s *System, d *Deployment, seed int64, opts Options) (ok bool, t2, t3 time.Duration, err error) {
	tr := opts.Trace
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.HeurPhaseStart, Phase: "P2"})
	}
	p2Start := opts.now()
	order, err := phase2Allocation(s, d, seed, opts)
	if err != nil {
		return false, 0, 0, err
	}
	t2 = opts.now().Sub(p2Start)
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.HeurPhaseEnd, Phase: "P2", Dur: t2.Seconds()})
		tr.Emit(obs.Event{Kind: obs.HeurPhaseStart, Phase: "P3"})
	}
	if ctx.Err() != nil {
		return false, t2, 0, nil
	}
	p3Start := opts.now()
	ok, err = phase3PathSelection(s, d, order, opts)
	t3 = opts.now().Sub(p3Start)
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.HeurPhaseEnd, Phase: "P3", Dur: t3.Seconds()})
	}
	return ok, t2, t3, err
}

// phase1FrequencyAndDuplication implements Algorithm 1: greedy V/F level
// assignment minimizing the running maximum per-task computation energy
// (problem P2), then duplication per the reliability rule (4) and level
// assignment for the copies under the combined-reliability constraint (5).
func phase1FrequencyAndDuplication(s *System, d *Deployment) bool {
	M := s.Graph.M()
	L := s.Plat.L()
	feasible := true
	var runningMax float64

	// pickLevel selects the level minimizing the increase of the running
	// maximum computation energy; admissible filters candidate levels.
	pickLevel := func(slot int, admissible func(l int) bool) int {
		best, bestMax, bestE, bestF := -1, math.Inf(1), math.Inf(1), -1.0
		for l := 0; l < L; l++ {
			if s.ExecTime(slot, l) > s.exp.Deadline(slot) {
				continue // real-time constraint (8)
			}
			if !admissible(l) {
				continue
			}
			e := s.ExecEnergy(slot, l)
			emax := math.Max(runningMax, e)
			f := s.Plat.Levels[l].Freq
			// Primary: smallest resulting maximum; secondary: cheapest;
			// tertiary: fastest (more reliable).
			if numeric.LtTol(emax, bestMax, energyTol) ||
				(numeric.LeqTol(emax, bestMax, energyTol) && (numeric.LtTol(e, bestE, energyTol) ||
					(numeric.LeqTol(e, bestE, energyTol) && f > bestF))) {
				best, bestMax, bestE, bestF = l, emax, e, f
			}
		}
		return best
	}

	for i := 0; i < M; i++ {
		l := pickLevel(i, func(int) bool { return true })
		if l < 0 {
			// No level meets the deadline: record an arbitrary level and
			// mark the whole run infeasible.
			feasible = false
			l = L - 1
		}
		d.Level[i] = l
		ri := s.Reliability(i, l)
		dup := i + M

		// Duplication rule (4): duplicate iff r_i < Rth.
		if ri >= s.Rel.Rth {
			runningMax = math.Max(runningMax, s.ExecEnergy(i, l))
			continue
		}
		d.Exists[dup] = true
		l2 := pickLevel(dup, func(cand int) bool {
			return reliability.Combined(ri, s.Reliability(dup, cand)) >= s.Rel.Rth
		})
		if l2 < 0 {
			// No copy level rescues the greedy original level: repair by
			// jointly re-picking both levels for the minimum increase of
			// the running maximum ("minimum energy increase", Alg. 1c).
			l, l2 = jointLevels(s, i, runningMax)
			if l < 0 {
				feasible = false
				l, l2 = L-1, L-1
			}
			d.Level[i] = l
			ri = s.Reliability(i, l)
			if ri >= s.Rel.Rth {
				// The repaired original is reliable on its own.
				d.Exists[dup] = false
				runningMax = math.Max(runningMax, s.ExecEnergy(i, l))
				continue
			}
		}
		d.Level[dup] = l2
		runningMax = math.Max(runningMax, s.ExecEnergy(i, l))
		runningMax = math.Max(runningMax, s.ExecEnergy(dup, l2))
	}
	return feasible
}

// jointLevels searches all (original, copy) level pairs — and the
// no-duplication options — for the reliability- and deadline-feasible
// choice minimizing the increase of the running maximum energy, breaking
// ties toward lower total energy. It returns (-1, -1) if nothing works;
// the copy level is -1 when the original alone suffices.
func jointLevels(s *System, i int, runningMax float64) (orig, copyLevel int) {
	M := s.Graph.M()
	L := s.Plat.L()
	best1, best2 := -1, -1
	bestMax, bestTot := math.Inf(1), math.Inf(1)
	consider := func(l1, l2 int) {
		e := s.ExecEnergy(i, l1)
		tot := e
		if l2 >= 0 {
			e2 := s.ExecEnergy(i+M, l2)
			tot += e2
			e = math.Max(e, e2)
		}
		emax := math.Max(runningMax, e)
		if numeric.LtTol(emax, bestMax, energyTol) ||
			(numeric.LeqTol(emax, bestMax, energyTol) && numeric.LtTol(tot, bestTot, energyTol)) {
			best1, best2, bestMax, bestTot = l1, l2, emax, tot
		}
	}
	for l1 := 0; l1 < L; l1++ {
		if s.ExecTime(i, l1) > s.exp.Deadline(i) {
			continue
		}
		r1 := s.Reliability(i, l1)
		if r1 >= s.Rel.Rth {
			consider(l1, -1)
			continue
		}
		for l2 := 0; l2 < L; l2++ {
			if s.ExecTime(i+M, l2) > s.exp.Deadline(i+M) {
				continue
			}
			if reliability.Combined(r1, s.Reliability(i+M, l2)) >= s.Rel.Rth {
				consider(l1, l2)
			}
		}
	}
	return best1, best2
}

// phase2Allocation implements Algorithm 2: existing tasks are layered by
// dependency depth, sorted within a layer by descending cycle count
// (random tie-break), then greedily allocated to the processor minimizing
// the objective increase — the maximum per-processor energy for BE, the
// total energy for ME — with communication costs estimated by the ρ-average
// of the real path matrices. It returns the slot order used, which is a
// topological order of the existing subgraph.
func phase2Allocation(s *System, d *Deployment, seed int64, opts Options) ([]int, error) {
	sub, slots := s.exp.ExistingGraph(d.Exists)
	rng := rand.New(rand.NewSource(seed))

	layers, err := sub.LayersErr()
	if err != nil {
		return nil, err
	}
	var order []int // in sub-graph ids
	for _, layer := range layers {
		layer = append([]int(nil), layer...)
		// Shuffle first so equal-cycle ties are broken randomly, then a
		// stable sort by descending WCEC preserves that random tie order.
		rng.Shuffle(len(layer), func(i, j int) { layer[i], layer[j] = layer[j], layer[i] })
		sort.SliceStable(layer, func(a, b int) bool {
			return sub.Tasks[layer[a]].WCEC > sub.Tasks[layer[b]].WCEC
		})
		order = append(order, layer...)
	}

	n := s.Mesh.N()
	comp := make([]float64, n)
	comm := make([]float64, n)
	procFree := make([]float64, n)     // estimated per-processor finish time
	estEnd := make(map[int]float64, n) // estimated end time per sub-task id
	commDelta := make([]float64, n)
	for _, ti := range order {
		slot := slots[ti]
		eComp := s.ExecEnergy(slot, d.Level[slot])
		tComp := s.ExecTime(slot, d.Level[slot])
		bestK, bestMax := -1, math.Inf(1)
		// Schedule-aware capacity filter (constraint (9) during
		// allocation): estimate the slot's end time on each candidate —
		// predecessors already have estimated ends — and skip processors
		// where the slot would overrun the horizon; if every processor
		// overruns, fall back to all of them.
		// Mirrors scheduleExisting: ready = max predecessor end + summed
		// communication time. Under the paper's constant estimate the
		// per-edge time is the global midpoint regardless of placement.
		tLo, tHi := s.Mesh.TimeBounds()
		estEndOn := func(k int) float64 {
			ready, commSum := 0.0, 0.0
			for _, pa := range sub.Pred(ti) {
				if e := estEnd[pa]; e > ready {
					ready = e
				}
				if opts.CommEstimate == EstimateConstant {
					commSum += sub.Data(pa, ti) * (tLo + tHi) / 2
					continue
				}
				if g := d.Proc[slots[pa]]; g != k {
					var avg float64
					for rho := 0; rho < noc.NumPaths; rho++ {
						avg += s.Mesh.TimePerByte(g, k, rho)
					}
					commSum += sub.Data(pa, ti) * avg / noc.NumPaths
				}
			}
			return math.Max(ready+commSum, procFree[k]) + tComp
		}
		fits := func(k int) bool { return estEndOn(k) <= s.H }
		anyFits := false
		for k := 0; k < n; k++ {
			if fits(k) {
				anyFits = true
				break
			}
		}
		for k := 0; k < n; k++ {
			if anyFits && !fits(k) {
				continue
			}
			// Communication estimate: predecessors are already placed; the
			// path is unknown at this phase, so average over ρ (zero when
			// co-located), as discussed in DESIGN.md. The paper's constant
			// estimate is allocation-independent, so it contributes no
			// delta and the allocation becomes communication-blind.
			for kp := range commDelta {
				commDelta[kp] = 0
			}
			if opts.CommEstimate == EstimateConstant {
				scoreConstant(s, d, opts, comp, comm, eComp, k, &bestK, &bestMax)
				continue
			}
			for _, pa := range sub.Pred(ti) {
				g := d.Proc[slots[pa]]
				if g == k {
					continue
				}
				bytes := sub.Data(pa, ti)
				for kp := 0; kp < n; kp++ {
					var avg float64
					for rho := 0; rho < noc.NumPaths; rho++ {
						avg += s.Mesh.EnergyPerByte(g, k, kp, rho)
					}
					commDelta[kp] += bytes * avg / noc.NumPaths
				}
			}
			score := 0.0
			for kp := 0; kp < n; kp++ {
				e := comp[kp] + comm[kp] + commDelta[kp]
				if kp == k {
					e += eComp
				}
				if opts.Objective == MinimizeEnergy {
					score += e
				} else if e > score {
					score = e
				}
			}
			if numeric.LtTol(score, bestMax, energyTol) {
				bestK, bestMax = k, score
			}
		}
		d.Proc[slot] = bestK
		comp[bestK] += eComp
		end := estEndOn(bestK)
		estEnd[ti] = end
		procFree[bestK] = end
		if opts.CommEstimate == EstimateConstant {
			continue // the paper's constant E_k^comm carries no placement info
		}
		for _, pa := range sub.Pred(ti) {
			g := d.Proc[slots[pa]]
			if g == bestK {
				continue
			}
			bytes := sub.Data(pa, ti)
			for kp := 0; kp < n; kp++ {
				var avg float64
				for rho := 0; rho < noc.NumPaths; rho++ {
					avg += s.Mesh.EnergyPerByte(g, bestK, kp, rho)
				}
				comm[kp] += bytes * avg / noc.NumPaths
			}
		}
	}

	slotOrder := make([]int, len(order))
	for i, ti := range order {
		slotOrder[i] = slots[ti]
	}
	// Initial schedule (t^s, and implicitly u) with ρ-averaged comm times.
	scheduleExisting(s, d, slotOrder, func(i int) float64 {
		return avgCommTime(s, d, i)
	})
	return slotOrder, nil
}

// scoreConstant evaluates candidate k under the paper's constant
// communication estimate: comm contributes equally everywhere, so only
// computation energy differentiates processors.
func scoreConstant(s *System, d *Deployment, opts Options, comp, comm []float64, eComp float64, k int, bestK *int, bestMax *float64) {
	score := 0.0
	for kp := range comp {
		e := comp[kp] + comm[kp]
		if kp == k {
			e += eComp
		}
		if opts.Objective == MinimizeEnergy {
			score += e
		} else if e > score {
			score = e
		}
	}
	if numeric.LtTol(score, *bestMax, energyTol) {
		*bestK, *bestMax = k, score
	}
}

// avgCommTime is t_i^comm with per-pair times averaged over the candidate
// paths (used before Phase 3 fixes the routes).
func avgCommTime(s *System, d *Deployment, i int) float64 {
	var t float64
	for _, pair := range s.exp.DepEdges() {
		a, b := pair[0], pair[1]
		if b != i || !d.Exists[a] {
			continue
		}
		beta, gamma := d.Proc[a], d.Proc[b]
		if beta == gamma {
			continue
		}
		var avg float64
		for rho := 0; rho < noc.NumPaths; rho++ {
			avg += s.Mesh.TimePerByte(beta, gamma, rho)
		}
		t += s.exp.Data(a, b) * avg / noc.NumPaths
	}
	return t
}

// scheduleExisting list-schedules existing slots in the given topological
// order on their assigned processors: a slot starts when its processor is
// free and every predecessor has finished and its input data has arrived
// (constraints (6) and (7)). It returns the makespan.
func scheduleExisting(s *System, d *Deployment, order []int, commTime func(i int) float64) float64 {
	procFree := make([]float64, s.Mesh.N())
	var makespan float64
	for _, i := range order {
		ready := 0.0
		for _, pair := range s.exp.DepEdges() {
			a, b := pair[0], pair[1]
			if b != i || !d.Exists[a] {
				continue
			}
			if e := d.End(s, a); e > ready {
				ready = e
			}
		}
		ready += commTime(i)
		k := d.Proc[i]
		start := math.Max(ready, procFree[k])
		d.Start[i] = start
		end := start + s.ExecTime(i, d.Level[i])
		procFree[k] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// phase3PathSelection implements Algorithm 3: for every processor pair with
// traffic, greedily pick the candidate path minimizing the maximum
// per-processor energy subject to the horizon (9), starting from the
// energy-oriented default. It reports whether the final schedule meets the
// horizon.
func phase3PathSelection(s *System, d *Deployment, order []int, opts Options) (bool, error) {
	realComm := func(i int) float64 { return d.CommTime(s, i) }

	if opts.SinglePath {
		// Baseline: every route pinned to the energy-oriented path.
		makespan := scheduleExisting(s, d, order, realComm)
		return numeric.LeqTol(makespan, s.H, timeTol), nil
	}

	// Collect pairs carrying traffic, in deterministic order.
	n := s.Mesh.N()
	used := make([][]bool, n)
	for b := range used {
		used[b] = make([]bool, n)
	}
	for _, pair := range s.exp.DepEdges() {
		a, b := pair[0], pair[1]
		if !d.Exists[a] || !d.Exists[b] {
			continue
		}
		if d.Proc[a] != d.Proc[b] {
			used[d.Proc[a]][d.Proc[b]] = true
		}
	}

	evaluate := func() (maxCost, makespan float64, err error) {
		makespan = scheduleExisting(s, d, order, realComm)
		m, err := ComputeMetrics(s, d)
		if err != nil {
			// Structure was validated before Phase 3, so a metrics failure
			// is an internal inconsistency worth surfacing to the caller.
			return 0, 0, err
		}
		if opts.Objective == MinimizeEnergy {
			return m.SumEnergy, makespan, nil
		}
		return m.MaxEnergy, makespan, nil
	}

	for beta := 0; beta < n; beta++ {
		for gamma := 0; gamma < n; gamma++ {
			if !used[beta][gamma] {
				continue
			}
			bestRho, bestCost := -1, math.Inf(1)
			fallbackRho, fallbackSpan := 0, math.Inf(1)
			for rho := 0; rho < noc.NumPaths; rho++ {
				d.PathSel[beta][gamma] = rho
				cost, span, err := evaluate()
				if err != nil {
					return false, err
				}
				if span < fallbackSpan {
					fallbackRho, fallbackSpan = rho, span
				}
				if numeric.GtTol(span, s.H, timeTol) {
					continue // violates (9)
				}
				if numeric.LtTol(cost, bestCost, energyTol) {
					bestRho, bestCost = rho, cost
				}
			}
			if bestRho < 0 {
				// Neither path meets the horizon: keep the faster one; the
				// run will be reported infeasible.
				bestRho = fallbackRho
			}
			d.PathSel[beta][gamma] = bestRho
		}
	}
	makespan := scheduleExisting(s, d, order, realComm)
	return numeric.LeqTol(makespan, s.H, timeTol), nil
}
