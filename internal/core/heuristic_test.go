package core

import (
	"math"
	"testing"

	"nocdeploy/internal/noc"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/task"
)

// Phase 1 must obey the duplication rule (4) exactly: a replica exists iff
// the original's chosen level is below threshold, and when it exists the
// combined reliability meets the threshold (5).
func TestPhase1DuplicationRule(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s := systemAtAlpha(t, 12, seed, 2.0)
		d := NewDeployment(s)
		phase1FrequencyAndDuplication(s, d)
		M := s.Graph.M()
		for i := 0; i < M; i++ {
			ri := s.Reliability(i, d.Level[i])
			needs := ri < s.Rel.Rth
			if needs != d.Exists[i+M] {
				t.Errorf("seed %d task %d: r=%.8f needs=%v exists=%v",
					seed, i, ri, needs, d.Exists[i+M])
			}
			if d.Exists[i+M] {
				if c := reliability.Combined(ri, s.Reliability(i+M, d.Level[i+M])); c < s.Rel.Rth {
					t.Errorf("seed %d task %d: combined %.8f < Rth", seed, i, c)
				}
			}
		}
	}
}

// Phase 1 must respect the per-task deadline (8) whenever any level does.
func TestPhase1Deadlines(t *testing.T) {
	s := systemAtAlpha(t, 14, 2, 2.0)
	d := NewDeployment(s)
	ok := phase1FrequencyAndDuplication(s, d)
	if !ok {
		t.Fatal("phase 1 infeasible on default workload")
	}
	for i := 0; i < s.exp.Size(); i++ {
		if !d.Exists[i] {
			continue
		}
		if et := s.ExecTime(i, d.Level[i]); et > s.exp.Deadline(i)+1e-12 {
			t.Errorf("slot %d: exec %g > deadline %g", i, et, s.exp.Deadline(i))
		}
	}
}

// Phase 1 reports infeasibility when no level can meet a deadline.
func TestPhase1ImpossibleDeadline(t *testing.T) {
	plat := platform.Default(4)
	mesh := noc.Default(2, 2)
	g := task.New()
	g.AddTask("hopeless", 1e9, 1e-6) // 1 Gcycle in a microsecond
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	s, err := NewSystem(plat, mesh, g, rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeployment(s)
	if phase1FrequencyAndDuplication(s, d) {
		t.Error("phase 1 claims feasibility for an impossible deadline")
	}
}

// The BE allocation must spread load: with identical independent tasks and
// enough processors, no processor should receive two tasks.
func TestPhase2SpreadsIndependentTasks(t *testing.T) {
	plat := platform.Default(16)
	mesh := noc.Default(4, 4)
	g := task.New()
	for i := 0; i < 8; i++ {
		g.AddTask("", 2e6, 0.9*2e6/0.5e9)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	// Loose horizon: capacity is not the driver, balance is.
	s, err := NewSystem(plat, mesh, g, rel, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ComputeMetrics(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.MMax != 1 {
		t.Errorf("M_max = %d with 16 processors and ≤16 existing tasks", m.MMax)
	}
}

// The ME allocation must co-locate a communicating pair when communication
// is expensive.
func TestPhase2MEClusters(t *testing.T) {
	plat := platform.Default(4)
	mesh := noc.Default(2, 2)
	mesh.ScaleEnergy(1e4) // communication dominates
	g := task.New()
	a := g.AddTask("", 1e6, 0.9*1e6/0.5e9)
	b := g.AddTask("", 1e6, 0.9*1e6/0.5e9)
	g.AddEdge(a, b, 64<<10)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	s, err := NewSystem(plat, mesh, g, rel, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := Heuristic(s, Options{Objective: MinimizeEnergy}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Proc[a] != d.Proc[b] {
		t.Errorf("ME left an expensive edge split across processors %d and %d",
			d.Proc[a], d.Proc[b])
	}
}

// Schedules produced by the heuristic are left-justified: some task starts
// at time zero.
func TestScheduleStartsAtZero(t *testing.T) {
	s := systemAtAlpha(t, 12, 4, 1.8)
	d, info, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Skip("infeasible instance")
	}
	min := math.Inf(1)
	for i := range d.Start {
		if d.Exists[i] && d.Start[i] < min {
			min = d.Start[i]
		}
	}
	if min != 0 {
		t.Errorf("earliest start %g, want 0", min)
	}
}

// Objective monotonicity across the two routing variants holds for every
// seed (phase 3 starts from the single-path default).
func TestSinglePathSkipsPhase3(t *testing.T) {
	s := systemAtAlpha(t, 12, 9, 1.6)
	d, _, err := Heuristic(s, Options{SinglePath: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for b := range d.PathSel {
		for g, rho := range d.PathSel[b] {
			if b == g {
				continue
			}
			if rho != noc.PathEnergy {
				t.Fatalf("single-path deployment selected ρ=%d for %d→%d", rho, b, g)
			}
		}
	}
}

// Under the paper's constant communication estimate, phase 2 must be
// communication-blind: with an expensive edge and the ME objective it can
// no longer see the co-location benefit the path-averaged variant exploits.
func TestCommEstimateVariantsDiffer(t *testing.T) {
	plat := platform.Default(4)
	mesh := noc.Default(2, 2)
	mesh.ScaleEnergy(1e4)
	g := task.New()
	a := g.AddTask("", 1e6, 0.9*1e6/0.5e9)
	b := g.AddTask("", 1e6, 0.9*1e6/0.5e9)
	g.AddEdge(a, b, 64<<10)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	s, err := NewSystem(plat, mesh, g, rel, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dOurs, _, err := Heuristic(s, Options{Objective: MinimizeEnergy}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dOurs.Proc[a] != dOurs.Proc[b] {
		t.Fatal("path-averaged ME should co-locate the expensive edge")
	}
	mOurs, err := ComputeMetrics(s, dOurs)
	if err != nil {
		t.Fatal(err)
	}
	dPaper, _, err := Heuristic(s, Options{Objective: MinimizeEnergy, CommEstimate: EstimateConstant}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mPaper, err := ComputeMetrics(s, dPaper)
	if err != nil {
		t.Fatal(err)
	}
	if mPaper.SumEnergy < mOurs.SumEnergy-1e-15 {
		t.Errorf("comm-blind variant beat the comm-aware one: %g < %g",
			mPaper.SumEnergy, mOurs.SumEnergy)
	}
}
