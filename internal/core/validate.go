package core

import (
	"fmt"
	"math"
	"sort"

	"nocdeploy/internal/noc"
	"nocdeploy/internal/reliability"
)

// Metrics summarizes a deployment's energy, balance and timing figures.
type Metrics struct {
	CompEnergy []float64 // E_k^comp per processor
	CommEnergy []float64 // E_k^comm per processor
	MaxEnergy  float64   // max_k (E_k^comp + E_k^comm), the BE objective
	SumEnergy  float64   // Σ_k, the ME objective
	// Phi is max_k E_k / min_k E_k over processors hosting at least one
	// task — the paper's "E_k ≠ 0" proviso interpreted as excluding
	// processors that only forward traffic, whose router-only energy would
	// otherwise dominate the ratio.
	Phi      float64
	MMax     int     // max tasks on one processor
	Dups     int     // M_d
	Makespan float64 // max_i t_i^e
}

// Energy returns E_k^comp + E_k^comm for processor k.
func (m *Metrics) Energy(k int) float64 { return m.CompEnergy[k] + m.CommEnergy[k] }

// timeTol is the slack allowed when checking timing constraints, absorbing
// floating-point drift from the MILP solver.
const timeTol = 1e-6

// Validate checks a deployment against every constraint of problem P1 and
// returns its metrics. A nil error means the deployment is feasible.
func Validate(s *System, d *Deployment) (*Metrics, error) {
	m, err := ComputeMetrics(s, d)
	if err != nil {
		return nil, err
	}
	if err := CheckConstraints(s, d); err != nil {
		return m, err
	}
	return m, nil
}

// ComputeMetrics computes energy and timing figures without judging
// feasibility (structure is still validated).
func ComputeMetrics(s *System, d *Deployment) (*Metrics, error) {
	if err := checkStructure(s, d); err != nil {
		return nil, err
	}
	n := s.Mesh.N()
	m := &Metrics{
		CompEnergy: make([]float64, n),
		CommEnergy: make([]float64, n),
		Dups:       d.DupCount(),
	}
	perProc := make([]int, n)
	for i := 0; i < s.exp.Size(); i++ {
		if !d.Exists[i] {
			continue
		}
		m.CompEnergy[d.Proc[i]] += s.ExecEnergy(i, d.Level[i])
		perProc[d.Proc[i]]++
		if e := d.End(s, i); e > m.Makespan {
			m.Makespan = e
		}
	}
	for _, pair := range s.exp.DepEdges() {
		a, b := pair[0], pair[1]
		if !d.Exists[a] || !d.Exists[b] {
			continue
		}
		beta, gamma := d.Proc[a], d.Proc[b]
		if beta == gamma {
			continue
		}
		rho := d.PathSel[beta][gamma]
		bytes := s.exp.Data(a, b)
		for k := 0; k < n; k++ {
			m.CommEnergy[k] += bytes * s.Mesh.EnergyPerByte(beta, gamma, k, rho)
		}
	}
	minE, maxLoaded := math.Inf(1), 0.0
	for k := 0; k < n; k++ {
		e := m.Energy(k)
		m.SumEnergy += e
		if e > m.MaxEnergy {
			m.MaxEnergy = e
		}
		if perProc[k] > 0 {
			if e < minE {
				minE = e
			}
			if e > maxLoaded {
				maxLoaded = e
			}
		}
		if perProc[k] > m.MMax {
			m.MMax = perProc[k]
		}
	}
	if !math.IsInf(minE, 1) && minE > 0 {
		m.Phi = maxLoaded / minE
	}
	return m, nil
}

// checkStructure validates index ranges and structural invariants
// (constraints (1), (2), (3) are structural in this representation).
func checkStructure(s *System, d *Deployment) error {
	n2 := s.exp.Size()
	if len(d.Exists) != n2 || len(d.Level) != n2 || len(d.Proc) != n2 || len(d.Start) != n2 {
		return fmt.Errorf("core: deployment sized for %d slots, want %d", len(d.Exists), n2)
	}
	for i := 0; i < s.Graph.M(); i++ {
		if !d.Exists[i] {
			return fmt.Errorf("core: original task %d marked non-existing", i)
		}
	}
	for i := 0; i < n2; i++ {
		if !d.Exists[i] {
			continue
		}
		if d.Proc[i] < 0 || d.Proc[i] >= s.Mesh.N() {
			return fmt.Errorf("core: slot %d allocated to processor %d of %d", i, d.Proc[i], s.Mesh.N())
		}
		if d.Level[i] < 0 || d.Level[i] >= s.Plat.L() {
			return fmt.Errorf("core: slot %d assigned level %d of %d", i, d.Level[i], s.Plat.L())
		}
		if d.Start[i] < -timeTol {
			return fmt.Errorf("core: slot %d starts at %g < 0", i, d.Start[i])
		}
	}
	if len(d.PathSel) != s.Mesh.N() {
		return fmt.Errorf("core: PathSel has %d rows, want %d", len(d.PathSel), s.Mesh.N())
	}
	for b := range d.PathSel {
		for g, rho := range d.PathSel[b] {
			if b == g {
				continue
			}
			if rho < 0 || rho >= noc.NumPaths {
				return fmt.Errorf("core: PathSel[%d][%d] = %d outside [0, %d)", b, g, rho, noc.NumPaths)
			}
		}
	}
	return nil
}

// CheckConstraints verifies constraints (4)–(9) for an existing-structure
// deployment.
func CheckConstraints(s *System, d *Deployment) error {
	// (4)+(5): reliability with the duplication rule.
	for i := 0; i < s.Graph.M(); i++ {
		ri := s.Reliability(i, d.Level[i])
		dup := i + s.Graph.M()
		if d.Exists[dup] {
			if c := reliability.Combined(ri, s.Reliability(dup, d.Level[dup])); c < s.Rel.Rth-1e-12 {
				return fmt.Errorf("core: task %d duplicated but combined reliability %.8f < Rth %.8f", i, c, s.Rel.Rth)
			}
		} else if ri < s.Rel.Rth-1e-12 {
			return fmt.Errorf("core: task %d reliability %.8f < Rth %.8f without duplication", i, ri, s.Rel.Rth)
		}
	}
	// (8): per-task execution time within its relative deadline.
	for i := 0; i < s.exp.Size(); i++ {
		if !d.Exists[i] {
			continue
		}
		if tc := s.ExecTime(i, d.Level[i]); tc > s.exp.Deadline(i)+timeTol {
			return fmt.Errorf("core: slot %d execution time %g exceeds deadline %g", i, tc, s.exp.Deadline(i))
		}
	}
	// (9): everything finishes within the horizon.
	for i := 0; i < s.exp.Size(); i++ {
		if !d.Exists[i] {
			continue
		}
		if e := d.End(s, i); e > s.H+timeTol {
			return fmt.Errorf("core: slot %d ends at %g beyond horizon %g", i, e, s.H)
		}
	}
	// (6): precedence with communication.
	for _, pair := range s.exp.DepEdges() {
		a, b := pair[0], pair[1]
		if !d.Exists[a] || !d.Exists[b] {
			continue
		}
		need := d.End(s, a) + d.CommTime(s, b)
		if d.Start[b]+timeTol < need {
			return fmt.Errorf("core: slot %d starts at %g before predecessor %d finishes + comm (%g)",
				b, d.Start[b], a, need)
		}
	}
	// (7): tasks on the same processor must not overlap.
	type ival struct {
		s, e float64
		id   int
	}
	perProc := map[int][]ival{}
	for i := 0; i < s.exp.Size(); i++ {
		if !d.Exists[i] {
			continue
		}
		perProc[d.Proc[i]] = append(perProc[d.Proc[i]], ival{d.Start[i], d.End(s, i), i})
	}
	for k, ivs := range perProc {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].s+timeTol < ivs[i-1].e {
				return fmt.Errorf("core: slots %d and %d overlap on processor %d ([%g,%g] vs [%g,%g])",
					ivs[i-1].id, ivs[i].id, k, ivs[i-1].s, ivs[i-1].e, ivs[i].s, ivs[i].e)
			}
		}
	}
	return nil
}
