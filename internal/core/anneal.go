package core

import (
	"context"
	"math"
	"math/rand"

	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/reliability"
)

// AnnealOptions tunes the simulated-annealing solver.
type AnnealOptions struct {
	Iters int     // move attempts; 0 means 2000·M
	T0    float64 // initial temperature (fraction of the initial objective); 0 means 0.2
	T1    float64 // final temperature fraction; 0 means 1e-4
	Seed  int64
}

func (o AnnealOptions) withDefaults(m int) AnnealOptions {
	if o.Iters == 0 {
		o.Iters = 2000 * m
	}
	if numeric.IsZero(o.T0) {
		o.T0 = 0.2
	}
	if numeric.IsZero(o.T1) {
		o.T1 = 1e-4
	}
	return o
}

// annealEval scores one candidate deployment.
type annealEval struct {
	okStruct bool // every constraint except the horizon
	okFull   bool // including the horizon (9)
	obj      float64
	makespan float64
}

// AnnealCtx is a simulated-annealing deployment solver — a metaheuristic
// baseline of the kind the paper's related-work table classifies as
// "Heur.". It searches the joint space of levels, duplication (driven by
// rule (4)), allocation and path selection with Metropolis acceptance,
// starting from the repaired three-phase heuristic. Horizon-infeasible
// states pay a large makespan-driven penalty, so a chain that starts
// infeasible first anneals toward schedulability, then optimizes the
// objective. The context is checked every few iterations of the Metropolis
// loop; a cancelled run returns the best feasible deployment found so far
// with SolveInfo.Cancelled set (see Anneal for the context-free wrapper).
func AnnealCtx(ctx context.Context, s *System, opts Options, ao AnnealOptions) (*Deployment, *SolveInfo, error) {
	startT := opts.now()
	tr := opts.Trace
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.SolveStart, Label: "anneal"})
	}
	ao = ao.withDefaults(s.Graph.M())
	rng := rand.New(rand.NewSource(ao.Seed))

	cur, hinfo, err := HeuristicWithRepairCtx(ctx, s, opts, ao.Seed, 0)
	if err != nil {
		return nil, nil, err
	}
	if hinfo.Cancelled {
		hinfo.Runtime = opts.now().Sub(startT)
		return cur, hinfo, nil
	}
	cur = cloneDeploymentCore(cur)

	// relaxed ignores the horizon so infeasible states still score.
	relaxed := *s
	relaxed.H = math.Inf(1)

	evaluate := func(d *Deployment) annealEval {
		order, err := scheduleOrder(s, d)
		if err != nil {
			// Broken existing subgraph: score as structurally infeasible.
			return annealEval{}
		}
		mk := scheduleExisting(s, d, order, func(i int) float64 { return d.CommTime(s, i) })
		if CheckConstraints(&relaxed, d) != nil {
			return annealEval{}
		}
		return annealEval{
			okStruct: true,
			okFull:   mk <= s.H+timeTol,
			obj:      objectiveOf(s, d, opts),
			makespan: mk,
		}
	}

	curEval := evaluate(cur)
	best := cloneDeploymentCore(cur)
	bestEval := curEval
	scale := math.Max(curEval.obj, 1e-12)

	// scalarEnergy maps an evaluation onto one annealed axis: feasible
	// states score by normalized objective, infeasible ones by makespan
	// plus an offset larger than any feasible score.
	scalarEnergy := func(e annealEval) float64 {
		if !e.okStruct {
			return math.Inf(1)
		}
		if !e.okFull {
			return 10 + e.makespan/math.Max(s.H, 1e-12)
		}
		return e.obj / scale
	}

	cool := math.Pow(ao.T1/ao.T0, 1/float64(ao.Iters))
	temp := ao.T0
	L := s.Plat.L()
	M := s.Graph.M()

	// propose mutates a clone of cur with one random move; nil means the
	// move was structurally inadmissible and costs nothing.
	propose := func() *Deployment {
		d := cloneDeploymentCore(cur)
		switch rng.Intn(4) {
		case 0: // reassign a random existing slot
			slot := randomExisting(rng, d)
			d.Proc[slot] = rng.Intn(s.Mesh.N())
		case 1: // flip a random pair's path selection
			b := rng.Intn(s.Mesh.N())
			g := rng.Intn(s.Mesh.N())
			if b == g {
				return nil
			}
			d.PathSel[b][g] = 1 - d.PathSel[b][g]
		case 2: // move a random original's level and re-apply rule (4)
			i := rng.Intn(M)
			l := d.Level[i] + 1 - 2*rng.Intn(2)
			if l < 0 || l >= L || s.ExecTime(i, l) > s.exp.Deadline(i) {
				return nil
			}
			d.Level[i] = l
			ri := s.Reliability(i, l)
			dup := i + M
			if ri >= s.Rel.Rth {
				d.Exists[dup] = false
				return d
			}
			// Needs a replica: cheapest level satisfying (5) and (8).
			found, bestE := -1, math.Inf(1)
			for l2 := 0; l2 < L; l2++ {
				if s.ExecTime(dup, l2) > s.exp.Deadline(dup) {
					continue
				}
				if reliability.Combined(ri, s.Reliability(dup, l2)) < s.Rel.Rth {
					continue
				}
				if e := s.ExecEnergy(dup, l2); e < bestE {
					found, bestE = l2, e
				}
			}
			if found < 0 {
				return nil
			}
			if !d.Exists[dup] {
				d.Exists[dup] = true
				d.Proc[dup] = rng.Intn(s.Mesh.N())
			}
			d.Level[dup] = found
		default: // move an existing replica's level under (5) and (8)
			dup := -1
			for attempt := 0; attempt < 4; attempt++ {
				if c := M + rng.Intn(M); d.Exists[c] {
					dup = c
					break
				}
			}
			if dup < 0 {
				return nil
			}
			l2 := d.Level[dup] + 1 - 2*rng.Intn(2)
			if l2 < 0 || l2 >= L || s.ExecTime(dup, l2) > s.exp.Deadline(dup) {
				return nil
			}
			orig := s.exp.Orig(dup)
			if reliability.Combined(s.Reliability(orig, d.Level[orig]), s.Reliability(dup, l2)) < s.Rel.Rth {
				return nil
			}
			d.Level[dup] = l2
		}
		return d
	}

	cancelled := false
	// ctxStride amortizes the context check: Err takes a lock in the
	// common WithCancel/WithDeadline implementations, so probing every
	// iteration would tax the annealing hot loop.
	const ctxStride = 64
	for it := 0; it < ao.Iters; it++ {
		if it%ctxStride == 0 && ctx.Err() != nil {
			cancelled = true
			break
		}
		temp *= cool
		cand := propose()
		if cand == nil {
			continue
		}
		ce := evaluate(cand)
		if !ce.okStruct {
			continue
		}
		dE := scalarEnergy(ce) - scalarEnergy(curEval)
		if dE <= 0 || rng.Float64() < math.Exp(-dE/math.Max(temp, 1e-12)) {
			cur, curEval = cand, ce
			if ce.okFull && (!bestEval.okFull || ce.obj < bestEval.obj) {
				best = cloneDeploymentCore(cand)
				bestEval = ce
			}
			if tr.Enabled() {
				tr.Emit(obs.Event{Kind: obs.AnnealAccept, Node: it, Obj: ce.obj})
			}
		} else if tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.AnnealReject, Node: it})
		}
	}

	info := &SolveInfo{
		Runtime:   opts.now().Sub(startT),
		Feasible:  bestEval.okFull && CheckConstraints(s, best) == nil,
		Objective: objectiveOf(s, best, opts),
		Cancelled: cancelled,
	}
	if tr.Enabled() {
		outcome := feasibilityOutcome(info.Feasible)
		if cancelled {
			outcome = "cancelled"
		}
		tr.Emit(obs.Event{Kind: obs.SolveDone, Label: "anneal", Obj: info.Objective, Phase: outcome})
	}
	return best, info, nil
}

// randomExisting rejection-samples an index of a deployed task. Anneal
// moves keep at least one task deployed, so each draw hits with p ≥ 1/len.
//
//lint:allow ctxloop — probabilistic but guaranteed termination: p ≥ 1/len per draw
func randomExisting(rng *rand.Rand, d *Deployment) int {
	for {
		if i := rng.Intn(len(d.Exists)); d.Exists[i] {
			return i
		}
	}
}
