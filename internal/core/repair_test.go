package core

import (
	"testing"

	"nocdeploy/internal/noc"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/taskgen"
)

// systemAtAlpha builds a paper-scale instance with the given horizon scale.
func systemAtAlpha(t *testing.T, m int, seed int64, alpha float64) *System {
	t.Helper()
	plat := platform.Default(16)
	mesh := noc.Default(4, 4)
	g, err := taskgen.Layered(taskgen.DefaultParams(m, seed), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	h, err := Horizon(plat, mesh, g, rel, alpha)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Repair must recover instances the plain heuristic loses to the horizon,
// and the repaired deployment must validate.
func TestRepairRecoversTightHorizons(t *testing.T) {
	recovered, attempts := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		// A horizon tight enough that the energy-greedy phase 1 often
		// overshoots, but loose enough that faster levels fit.
		s := systemAtAlpha(t, 16, seed, 0.95)
		_, plain, err := Heuristic(s, Options{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Feasible {
			continue // nothing to repair on this seed
		}
		attempts++
		d, rep, err := HeuristicWithRepair(s, Options{}, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Feasible {
			continue
		}
		recovered++
		if _, err := Validate(s, d); err != nil {
			t.Errorf("seed %d: repaired deployment invalid: %v", seed, err)
		}
	}
	if attempts == 0 {
		t.Skip("plain heuristic feasible on all seeds; tighten alpha")
	}
	if recovered == 0 {
		t.Errorf("repair recovered 0 of %d infeasible instances", attempts)
	}
}

// When the plain heuristic is already feasible, repair must return an
// equally feasible deployment with the same objective (it returns early).
func TestRepairNoopWhenFeasible(t *testing.T) {
	s := systemAtAlpha(t, 12, 3, 2.0)
	_, plain, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Feasible {
		t.Skip("instance infeasible; pick another seed")
	}
	d, rep, err := HeuristicWithRepair(s, Options{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("repair lost feasibility")
	}
	if rep.Objective != plain.Objective {
		t.Errorf("repair changed a feasible solution: %g vs %g", rep.Objective, plain.Objective)
	}
	if _, err := Validate(s, d); err != nil {
		t.Error(err)
	}
}

// An impossible horizon must still come back infeasible, not loop forever.
func TestRepairGivesUpOnImpossible(t *testing.T) {
	s := systemAtAlpha(t, 12, 3, 0.05)
	_, rep, err := HeuristicWithRepair(s, Options{}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Error("repair claims feasibility at alpha=0.05")
	}
}

// Local search must never worsen the objective and must keep feasibility.
func TestImproveMonotone(t *testing.T) {
	improvedAny := false
	for seed := int64(0); seed < 5; seed++ {
		s := systemAtAlpha(t, 14, seed, 1.5)
		d, info, err := Heuristic(s, Options{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Feasible {
			continue
		}
		better, obj, moves := Improve(s, d, Options{}, 0)
		if obj > info.Objective+1e-15 {
			t.Errorf("seed %d: Improve worsened objective %g → %g", seed, info.Objective, obj)
		}
		if moves > 0 {
			improvedAny = true
			if obj >= info.Objective {
				t.Errorf("seed %d: %d moves accepted but objective did not improve", seed, moves)
			}
		}
		if _, err := Validate(s, better); err != nil {
			t.Errorf("seed %d: improved deployment invalid: %v", seed, err)
		}
	}
	if !improvedAny {
		t.Log("note: local search found no improving move on any seed (heuristic already locally optimal)")
	}
}

// Improve must leave the input deployment untouched (it works on a clone).
func TestImproveDoesNotMutateInput(t *testing.T) {
	s := systemAtAlpha(t, 10, 2, 1.6)
	d, info, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Skip("infeasible instance")
	}
	snapshot := cloneDeploymentCore(d)
	Improve(s, d, Options{}, 0)
	for i := range d.Proc {
		if d.Proc[i] != snapshot.Proc[i] || d.Level[i] != snapshot.Level[i] ||
			d.Exists[i] != snapshot.Exists[i] || d.Start[i] != snapshot.Start[i] {
			t.Fatal("Improve mutated its input deployment")
		}
	}
}

// ImprovePaths never worsens the objective and never loses feasibility.
func TestImprovePathsMonotone(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		s := systemAtAlpha(t, 14, seed, 1.5)
		d, info, err := Heuristic(s, Options{SinglePath: true}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Feasible {
			continue
		}
		better, obj := ImprovePaths(s, d, Options{})
		if obj > info.Objective+1e-15 {
			t.Errorf("seed %d: ImprovePaths worsened %g → %g", seed, info.Objective, obj)
		}
		if _, err := Validate(s, better); err != nil {
			t.Errorf("seed %d: improved deployment invalid: %v", seed, err)
		}
	}
}
