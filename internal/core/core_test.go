package core

import (
	"math"
	"reflect"
	"testing"

	"nocdeploy/internal/noc"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/task"
	"nocdeploy/internal/taskgen"
)

// mediumSystem is a 4×4-mesh instance with a layered random DAG, sized like
// the paper's heuristic runs.
func mediumSystem(t *testing.T, m int, seed int64) *System {
	t.Helper()
	plat := platform.Default(16)
	mesh := noc.Default(4, 4)
	g, err := taskgen.Layered(taskgen.DefaultParams(m, seed), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	h, err := Horizon(plat, mesh, g, rel, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tinyLevels is a 2-level table for brute-force-checkable instances.
func tinyLevels() []platform.VFLevel {
	return []platform.VFLevel{
		{Voltage: 0.85, Freq: 0.5e9},
		{Voltage: 1.10, Freq: 1.0e9},
	}
}

// tinySystem: M tasks in a chain, 2×1 mesh, 2 levels, cycles big enough
// that the slow level violates the reliability threshold (forcing the
// duplication machinery to engage).
func tinySystem(t *testing.T, m int, horizon float64) *System {
	t.Helper()
	plat, err := platform.New(2, tinyLevels(), platform.DefaultPowerParams())
	if err != nil {
		t.Fatal(err)
	}
	mesh := noc.Default(2, 1)
	g := task.New()
	for i := 0; i < m; i++ {
		g.AddTask("", 5e8, 2.0)
	}
	for i := 0; i+1 < m; i++ {
		g.AddEdge(i, i+1, 32<<10)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	s, err := NewSystem(plat, mesh, g, rel, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHeuristicFeasibleAndValid(t *testing.T) {
	s := mediumSystem(t, 12, 3)
	d, info, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("heuristic reported infeasible on a loose-horizon instance")
	}
	m, err := Validate(s, d)
	if err != nil {
		t.Fatalf("validation failed: %v", err)
	}
	if m.MaxEnergy <= 0 || m.SumEnergy < m.MaxEnergy {
		t.Errorf("suspicious energies: max %g sum %g", m.MaxEnergy, m.SumEnergy)
	}
	if math.Abs(info.Objective-m.MaxEnergy) > 1e-12 {
		t.Errorf("info objective %g != metrics max %g", info.Objective, m.MaxEnergy)
	}
}

func TestHeuristicDeterministic(t *testing.T) {
	s := mediumSystem(t, 10, 5)
	d1, _, err := Heuristic(s, Options{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := Heuristic(s, Options{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Error("same seed produced different deployments")
	}
}

// Phase 3 starts from the single-path default and only improves, so
// multi-path can never be worse than the single-path baseline.
func TestHeuristicMultiPathNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := mediumSystem(t, 14, seed)
		_, multi, err := Heuristic(s, Options{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, single, err := Heuristic(s, Options{SinglePath: true}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if multi.Objective > single.Objective+1e-12 {
			t.Errorf("seed %d: multi-path %g worse than single-path %g",
				seed, multi.Objective, single.Objective)
		}
	}
}

func TestPhase1DuplicationRegimes(t *testing.T) {
	s := tinySystem(t, 2, 100)
	// A threshold below even the slowest level's reliability: no duplicates.
	low := s.Rel
	low.Rth = 0.3
	sLow, err := NewSystem(s.Plat, s.Mesh, s.Graph, low, s.H)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := Heuristic(sLow, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.DupCount() != 0 {
		t.Errorf("Rth=0.3: %d duplicates, want 0", d.DupCount())
	}

	high := s.Rel
	high.Rth = 0.99999999
	sHigh, err := NewSystem(s.Plat, s.Mesh, s.Graph, high, s.H)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err = Heuristic(sHigh, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.DupCount() == 0 {
		t.Error("Rth≈1: no duplicates created")
	}
	if err := CheckConstraints(sHigh, d); err != nil {
		t.Errorf("duplicated deployment invalid: %v", err)
	}
}

func TestValidatorCatchesViolations(t *testing.T) {
	s := tinySystem(t, 2, 100)
	d, info, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("expected feasible base deployment")
	}

	// Overlap violation: co-locate both originals at the same start time.
	bad := cloneDeployment(d)
	bad.Proc[0], bad.Proc[1] = 0, 0
	bad.Start[0], bad.Start[1] = 0, 0
	if err := CheckConstraints(s, bad); err == nil {
		t.Error("overlap not caught")
	}

	// Horizon violation.
	bad = cloneDeployment(d)
	bad.Start[1] = s.H + 1
	if err := CheckConstraints(s, bad); err == nil {
		t.Error("horizon violation not caught")
	}

	// Precedence violation: successor starts before predecessor ends.
	bad = cloneDeployment(d)
	bad.Start[1] = 0
	bad.Start[0] = 0
	bad.Proc[0], bad.Proc[1] = 0, 1
	if err := CheckConstraints(s, bad); err == nil {
		t.Error("precedence violation not caught")
	}

	// Reliability violation: drop a duplicate that was needed.
	if d.DupCount() > 0 {
		bad = cloneDeployment(d)
		for i := s.Graph.M(); i < s.Expanded().Size(); i++ {
			bad.Exists[i] = false
		}
		if err := CheckConstraints(s, bad); err == nil {
			t.Error("reliability violation not caught")
		}
	}

	// Structural violation: bad processor index.
	bad = cloneDeployment(d)
	bad.Proc[0] = 99
	if _, err := ComputeMetrics(s, bad); err == nil {
		t.Error("bad processor index not caught")
	}
}

func cloneDeployment(d *Deployment) *Deployment {
	c := &Deployment{
		Exists: append([]bool(nil), d.Exists...),
		Level:  append([]int(nil), d.Level...),
		Proc:   append([]int(nil), d.Proc...),
		Start:  append([]float64(nil), d.Start...),
	}
	for _, row := range d.PathSel {
		c.PathSel = append(c.PathSel, append([]int(nil), row...))
	}
	return c
}

func TestHorizonScalesWithAlpha(t *testing.T) {
	plat := platform.Default(4)
	mesh := noc.Default(2, 2)
	g, err := taskgen.Layered(taskgen.DefaultParams(8, 1), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	h1, err := Horizon(plat, mesh, g, rel, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Horizon(plat, mesh, g, rel, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if h1 <= 0 || math.Abs(h2-2*h1) > 1e-12*h1 {
		t.Errorf("horizon not linear in alpha: %g vs %g", h1, h2)
	}
}

func TestMetricsSingleTask(t *testing.T) {
	plat := platform.Default(4)
	mesh := noc.Default(2, 2)
	g := task.New()
	g.AddTask("only", 1e6, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	s, err := NewSystem(plat, mesh, g, rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeployment(s)
	d.Level[0] = 2
	d.Proc[0] = 3
	for b := range d.PathSel {
		for gg := range d.PathSel[b] {
			if b != gg {
				d.PathSel[b][gg] = 0
			}
		}
	}
	m, err := ComputeMetrics(s, d)
	if err != nil {
		t.Fatal(err)
	}
	want := s.ExecEnergy(0, 2)
	if math.Abs(m.CompEnergy[3]-want) > 1e-15 {
		t.Errorf("comp energy %g, want %g", m.CompEnergy[3], want)
	}
	if m.SumEnergy != m.MaxEnergy || m.MMax != 1 || m.Dups != 0 {
		t.Errorf("metrics: %+v", m)
	}
	if m.CommEnergy[3] != 0 {
		t.Errorf("no edges but comm energy %g", m.CommEnergy[3])
	}
}
