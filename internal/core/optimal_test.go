package core

import (
	"math"
	"testing"

	"nocdeploy/internal/reliability"
)

// bruteForceOptimal exhaustively enumerates level assignments (duplication
// forced by rule (4)), allocations, path selections and all topological
// list schedules, returning the best feasible objective. It is exact for
// the model semantics and cross-checks the MILP formulation end to end.
func bruteForceOptimal(s *System, opts Options) (float64, bool) {
	M := s.Graph.M()
	M2 := s.exp.Size()
	L := s.Plat.L()
	N := s.Mesh.N()
	best, found := math.Inf(1), false

	d := NewDeployment(s)

	// Enumerate candidate-path choices for every ordered pair.
	pairList := [][2]int{}
	for b := 0; b < N; b++ {
		for g := 0; g < N; g++ {
			if b != g {
				pairList = append(pairList, [2]int{b, g})
			}
		}
	}

	var existing []int

	// schedFeasible tries every topological permutation of the existing
	// slots with list scheduling; true if any meets the horizon.
	var schedFeasible func() bool
	schedFeasible = func() bool {
		n := len(existing)
		perm := make([]int, 0, n)
		used := make([]bool, n)
		var rec func() bool
		rec = func() bool {
			if len(perm) == n {
				if scheduleExisting(s, d, perm, func(i int) float64 { return d.CommTime(s, i) }) <= s.H+1e-12 {
					return true
				}
				return false
			}
			for idx, slot := range existing {
				if used[idx] {
					continue
				}
				// All existing predecessors must already be placed.
				ok := true
				for jdx, p := range existing {
					if !used[jdx] && s.exp.Dep(p, slot) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				used[idx] = true
				perm = append(perm, slot)
				if rec() {
					used[idx] = false
					perm = perm[:len(perm)-1]
					return true
				}
				used[idx] = false
				perm = perm[:len(perm)-1]
			}
			return false
		}
		return rec()
	}

	evaluate := func() {
		if !schedFeasible() {
			return
		}
		m, err := ComputeMetrics(s, d)
		if err != nil {
			panic(err)
		}
		obj := m.MaxEnergy
		if opts.Objective == MinimizeEnergy {
			obj = m.SumEnergy
		}
		if obj < best {
			best, found = obj, true
		}
	}

	var enumPaths func(pi int)
	enumPaths = func(pi int) {
		if pi == len(pairList) {
			evaluate()
			return
		}
		b, g := pairList[pi][0], pairList[pi][1]
		limit := 2
		if opts.SinglePath {
			limit = 1
		}
		for rho := 0; rho < limit; rho++ {
			d.PathSel[b][g] = rho
			enumPaths(pi + 1)
		}
	}

	var enumAlloc func(ei int)
	enumAlloc = func(ei int) {
		if ei == len(existing) {
			enumPaths(0)
			return
		}
		for k := 0; k < N; k++ {
			d.Proc[existing[ei]] = k
			enumAlloc(ei + 1)
		}
	}

	var enumDupLevels func(di int, dups []int)
	enumDupLevels = func(di int, dups []int) {
		if di == len(dups) {
			existing = existing[:0]
			for i := 0; i < M2; i++ {
				if d.Exists[i] {
					existing = append(existing, i)
				}
			}
			enumAlloc(0)
			return
		}
		slot := dups[di]
		orig := s.exp.Orig(slot)
		ri := s.Reliability(orig, d.Level[orig])
		for l := 0; l < L; l++ {
			if s.ExecTime(slot, l) > s.exp.Deadline(slot) {
				continue // (8)
			}
			if reliability.Combined(ri, s.Reliability(slot, l)) < s.Rel.Rth {
				continue // (5)
			}
			d.Level[slot] = l
			enumDupLevels(di+1, dups)
		}
	}

	var enumOrigLevels func(i int)
	enumOrigLevels = func(i int) {
		if i == M {
			var dups []int
			for j := 0; j < M; j++ {
				dup := j + M
				d.Exists[dup] = s.Reliability(j, d.Level[j]) < s.Rel.Rth // (4)
				if d.Exists[dup] {
					dups = append(dups, dup)
				}
			}
			enumDupLevels(0, dups)
			return
		}
		for l := 0; l < L; l++ {
			if s.ExecTime(i, l) > s.exp.Deadline(i) {
				continue // (8)
			}
			d.Level[i] = l
			enumOrigLevels(i + 1)
		}
	}
	enumOrigLevels(0)
	return best, found
}

func TestOptimalMatchesBruteForceBE(t *testing.T) {
	s := tinySystem(t, 2, 3.0)
	want, feasible := bruteForceOptimal(s, Options{})
	if !feasible {
		t.Fatal("brute force found no feasible deployment; loosen the instance")
	}
	d, info, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible || d == nil {
		t.Fatalf("optimal reported infeasible; brute force says %g", want)
	}
	if math.Abs(info.Objective-want) > 1e-5*want {
		t.Errorf("MILP optimum %g, brute force %g", info.Objective, want)
	}
	if _, err := Validate(s, d); err != nil {
		t.Errorf("MILP deployment fails validation: %v", err)
	}
}

func TestOptimalMatchesBruteForceME(t *testing.T) {
	s := tinySystem(t, 2, 3.0)
	want, feasible := bruteForceOptimal(s, Options{Objective: MinimizeEnergy})
	if !feasible {
		t.Fatal("brute force found no feasible deployment")
	}
	_, info, err := Optimal(s, Options{Objective: MinimizeEnergy}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("optimal reported infeasible")
	}
	if math.Abs(info.Objective-want) > 1e-5*want {
		t.Errorf("MILP optimum %g, brute force %g", info.Objective, want)
	}
}

func TestOptimalMatchesBruteForceSinglePath(t *testing.T) {
	s := tinySystem(t, 2, 3.0)
	want, feasible := bruteForceOptimal(s, Options{SinglePath: true})
	if !feasible {
		t.Fatal("brute force found no feasible deployment")
	}
	_, info, err := Optimal(s, Options{SinglePath: true}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("optimal reported infeasible")
	}
	if math.Abs(info.Objective-want) > 1e-5*want {
		t.Errorf("MILP optimum %g, brute force %g", info.Objective, want)
	}
	// Multi-path can never be worse than single-path at the optimum.
	multi, _ := bruteForceOptimal(s, Options{})
	if multi > want+1e-12 {
		t.Errorf("multi-path optimum %g worse than single-path %g", multi, want)
	}
}

func TestOptimalTightHorizonMatchesBruteForce(t *testing.T) {
	// A horizon just above two sequential heavy tasks: schedulability binds.
	s := tinySystem(t, 2, 1.1)
	want, feasible := bruteForceOptimal(s, Options{})
	d, info, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if feasible != info.Feasible {
		t.Fatalf("feasibility mismatch: brute force %v, MILP %v (bf obj %g)", feasible, info.Feasible, want)
	}
	if feasible {
		if math.Abs(info.Objective-want) > 1e-5*want {
			t.Errorf("MILP optimum %g, brute force %g", info.Objective, want)
		}
		if _, err := Validate(s, d); err != nil {
			t.Errorf("MILP deployment fails validation: %v", err)
		}
	}
}

func TestOptimalInfeasibleHorizon(t *testing.T) {
	// Horizon shorter than a single task execution: provably infeasible.
	s := tinySystem(t, 2, 0.3)
	_, info, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Feasible {
		t.Error("optimal claims feasible with an impossible horizon")
	}
	want, feasible := bruteForceOptimal(s, Options{})
	if feasible {
		t.Errorf("brute force disagrees: found %g", want)
	}
}

func TestOptimalNotWorseThanHeuristic(t *testing.T) {
	s := tinySystem(t, 3, 5.0)
	hd, hinfo, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !hinfo.Feasible {
		t.Fatal("heuristic infeasible on loose instance")
	}
	if _, err := Validate(s, hd); err != nil {
		t.Fatalf("heuristic deployment invalid: %v", err)
	}
	_, oinfo, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !oinfo.Feasible {
		t.Fatal("optimal infeasible where heuristic succeeded")
	}
	if oinfo.Objective > hinfo.Objective*(1+1e-9) {
		t.Errorf("optimal %g worse than heuristic %g", oinfo.Objective, hinfo.Objective)
	}
}

func TestOptimalWarmStartCutoff(t *testing.T) {
	s := tinySystem(t, 2, 3.0)
	_, href, err := Heuristic(s, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ref, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm := href.Objective
	_, warmInfo, err := Optimal(s, Options{}, OptimalOptions{WarmStart: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if warmInfo.Feasible {
		if math.Abs(warmInfo.Objective-ref.Objective) > 1e-5*ref.Objective {
			t.Errorf("warm-started optimum %g != reference %g", warmInfo.Objective, ref.Objective)
		}
	} else if ref.Objective < warm*(1-1e-9) {
		// Cutoff pruned everything although a strictly better optimum exists.
		t.Errorf("warm start missed optimum %g below cutoff %g", ref.Objective, warm)
	}
}

// TestParallelOptimalMatchesBruteForce re-runs the brute-force fixtures
// with a parallel branch & bound: the proven optimum must be unchanged by
// worker count.
func TestParallelOptimalMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"BE", Options{}},
		{"ME", Options{Objective: MinimizeEnergy}},
		{"SinglePath", Options{SinglePath: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tinySystem(t, 2, 3.0)
			want, feasible := bruteForceOptimal(s, tc.opts)
			if !feasible {
				t.Fatal("brute force found no feasible deployment")
			}
			for _, workers := range []int{2, 4} {
				d, info, err := Optimal(s, tc.opts, OptimalOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !info.Feasible || d == nil {
					t.Fatalf("workers=%d: optimal reported infeasible; brute force says %g", workers, want)
				}
				if math.Abs(info.Objective-want) > 1e-5*want {
					t.Errorf("workers=%d: MILP optimum %g, brute force %g", workers, info.Objective, want)
				}
				if _, err := Validate(s, d); err != nil {
					t.Errorf("workers=%d: deployment fails validation: %v", workers, err)
				}
			}
		})
	}
}

// TestParallelOptimalMatchesSerialObjective checks serial and parallel
// search agree on a slightly larger instance than the brute-force
// fixtures, including the proven bound.
func TestParallelOptimalMatchesSerialObjective(t *testing.T) {
	s := tinySystem(t, 3, 4.0)
	_, serial, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := Optimal(s, Options{}, OptimalOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Feasible != par.Feasible {
		t.Fatalf("feasibility differs: serial %v, parallel %v", serial.Feasible, par.Feasible)
	}
	if serial.Feasible && math.Abs(serial.Objective-par.Objective) > 1e-6*math.Max(1, serial.Objective) {
		t.Errorf("objective differs: serial %g, parallel %g", serial.Objective, par.Objective)
	}
}
