package core

import "context"

// This file keeps the historical context-free solver entry points as thin
// wrappers over the *Ctx variants. Library code that needs cancellation —
// the deployment service, CLI deadlines — calls the *Ctx entry points;
// batch code (experiments, tests) keeps the short names.

// Heuristic is HeuristicCtx with a background context.
func Heuristic(s *System, opts Options, seed int64) (*Deployment, *SolveInfo, error) {
	return HeuristicCtx(context.Background(), s, opts, seed)
}

// HeuristicWithRepair is HeuristicWithRepairCtx with a background context.
func HeuristicWithRepair(s *System, opts Options, seed int64, maxRounds int) (*Deployment, *SolveInfo, error) {
	return HeuristicWithRepairCtx(context.Background(), s, opts, seed, maxRounds)
}

// Anneal is AnnealCtx with a background context.
func Anneal(s *System, opts Options, ao AnnealOptions) (*Deployment, *SolveInfo, error) {
	return AnnealCtx(context.Background(), s, opts, ao)
}

// Optimal is OptimalCtx with a background context.
func Optimal(s *System, opts Options, oo OptimalOptions) (*Deployment, *SolveInfo, error) {
	return OptimalCtx(context.Background(), s, opts, oo)
}
