package core

// This file is the support surface for the portfolio engine
// (internal/engine): the engine composes solves out of existing deployments
// — cloning an incumbent, rescheduling after a move, scoring a candidate —
// so the primitives the in-package solvers share are exported here under
// stable names. Everything is a thin wrapper; the engine never reaches into
// solver internals.

// CloneDeployment deep-copies a deployment, including the path-selection
// matrix. Engine operators mutate clones so the shared incumbent is never
// written concurrently.
func CloneDeployment(d *Deployment) *Deployment {
	return cloneDeploymentCore(d)
}

// Reschedule recomputes the start times of every existing slot by list
// scheduling in topological order with the deployment's real (path-selected)
// communication times, and returns the makespan. It is the move-replay
// primitive: after an operator changes Proc/Level/PathSel, Reschedule
// restores a consistent schedule. The error reports a structurally broken
// existing subgraph (e.g. a dependency cycle), which no move can introduce
// on a valid deployment.
func Reschedule(s *System, d *Deployment) (float64, error) {
	order, err := scheduleOrder(s, d)
	if err != nil {
		return 0, err
	}
	mk := scheduleExisting(s, d, order, func(i int) float64 { return d.CommTime(s, i) })
	return mk, nil
}

// DeploymentObjective evaluates the configured objective (BE: max_k E_k,
// ME: Σ_k E_k) for a deployment. The error reports a structurally invalid
// deployment; feasibility of timing/reliability constraints is judged
// separately by CheckConstraints.
func DeploymentObjective(s *System, d *Deployment, opts Options) (float64, error) {
	m, err := ComputeMetrics(s, d)
	if err != nil {
		return 0, err
	}
	if opts.Objective == MinimizeEnergy {
		return m.SumEnergy, nil
	}
	return m.MaxEnergy, nil
}
