package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"nocdeploy/internal/obs"
)

// tickClock is a deterministic obs.Clock advancing by step per read,
// locked so parallel exact solves can share it.
func tickClock(step time.Duration) obs.Clock {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

// TestHeuristicFakeClock pins the heuristic's phase timings to an injected
// clock: every reported duration must be a whole number of fake-clock
// steps, and Runtime must cover the phases — proving the phase timing path
// reads the options clock, not time.Now.
func TestHeuristicFakeClock(t *testing.T) {
	s := tinySystem(t, 4, 1)
	opts := Options{Clock: tickClock(time.Millisecond)}
	_, info, err := HeuristicCtx(context.Background(), s, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(info.Phases))
	}
	var sum time.Duration
	for _, p := range info.Phases {
		if p.D%time.Millisecond != 0 {
			t.Errorf("phase %s duration %v is not a whole number of fake-clock steps", p.Name, p.D)
		}
		sum += p.D
	}
	if info.Runtime%time.Millisecond != 0 {
		t.Errorf("runtime %v is not a whole number of fake-clock steps", info.Runtime)
	}
	if info.Runtime <= 0 || info.Runtime < sum-2*time.Millisecond {
		t.Errorf("runtime %v does not cover the phases (sum %v)", info.Runtime, sum)
	}
}

// TestOptimalFakeClockDeadline drives the exact solver with a clock that
// jumps an hour per read against a 1s time limit: the branch & bound must
// stop on the (fake) deadline rather than prove optimality, showing the
// limit is testable without real waiting.
func TestOptimalFakeClockDeadline(t *testing.T) {
	s := tinySystem(t, 4, 1)
	opts := Options{Clock: tickClock(time.Hour)}
	_, info, err := OptimalCtx(context.Background(), s, opts, OptimalOptions{TimeLimit: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// The search saw the deadline already expired: it must not have
	// explored the tree (at most the root relaxation).
	if info.Nodes > 1 {
		t.Errorf("solver explored %d nodes past an already-expired fake deadline", info.Nodes)
	}
}
