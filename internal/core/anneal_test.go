package core

import (
	"reflect"
	"testing"
)

// Annealing starts from the repaired heuristic, so it must never end up
// worse, and its result must validate.
func TestAnnealNeverWorseThanHeuristic(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		s := systemAtAlpha(t, 12, seed, 1.4)
		_, href, err := HeuristicWithRepair(s, Options{}, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		d, info, err := Anneal(s, Options{}, AnnealOptions{Iters: 4000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if href.Feasible {
			if !info.Feasible {
				t.Errorf("seed %d: annealing lost feasibility", seed)
				continue
			}
			if info.Objective > href.Objective*(1+1e-12) {
				t.Errorf("seed %d: anneal %g worse than heuristic %g",
					seed, info.Objective, href.Objective)
			}
		}
		if info.Feasible {
			if _, err := Validate(s, d); err != nil {
				t.Errorf("seed %d: annealed deployment invalid: %v", seed, err)
			}
		}
	}
}

// Annealing often improves on the heuristic — verify it does so on at
// least one seed, otherwise the move set is dead.
func TestAnnealImprovesSomewhere(t *testing.T) {
	improved := false
	for seed := int64(0); seed < 5 && !improved; seed++ {
		s := systemAtAlpha(t, 14, seed, 1.4)
		_, href, err := HeuristicWithRepair(s, Options{}, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !href.Feasible {
			continue
		}
		_, info, err := Anneal(s, Options{}, AnnealOptions{Iters: 8000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if info.Feasible && info.Objective < href.Objective*(1-1e-6) {
			improved = true
		}
	}
	if !improved {
		t.Error("annealing never improved the heuristic on any seed")
	}
}

// Determinism: the same seed yields the same deployment.
func TestAnnealDeterministic(t *testing.T) {
	s := systemAtAlpha(t, 10, 3, 1.5)
	d1, _, err := Anneal(s, Options{}, AnnealOptions{Iters: 3000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := Anneal(s, Options{}, AnnealOptions{Iters: 3000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Error("same seed produced different annealed deployments")
	}
}

// The tiny-instance oracle: annealing can never beat the exact optimum.
func TestAnnealBoundedByOptimal(t *testing.T) {
	s := tinySystem(t, 2, 3.0)
	_, oinfo, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !oinfo.Feasible {
		t.Fatal("tiny instance should be feasible")
	}
	_, ainfo, err := Anneal(s, Options{}, AnnealOptions{Iters: 6000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ainfo.Feasible && ainfo.Objective < oinfo.Objective*(1-1e-6) {
		t.Errorf("anneal %g beats proven optimum %g", ainfo.Objective, oinfo.Objective)
	}
}
