// Package core implements the paper's contribution: joint task deployment
// on a NoC-based DVFS multicore — frequency assignment, task duplication,
// routing-path selection, task allocation and task scheduling — minimizing
// the maximum per-processor energy (or, as a baseline, the total energy)
// under real-time and reliability constraints.
//
// Two solvers are provided: the exact MILP formulation of problem P1
// (formulation.go, solved by package milp) and the three-phase
// decomposition heuristic of Algorithms 1–3 (heuristic.go).
package core

import (
	"fmt"
	"math"
	"time"

	"nocdeploy/internal/noc"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/task"
)

// Objective selects the optimization goal.
type Objective int

// Objectives.
const (
	// BalanceEnergy minimizes max_k E_k (the paper's BE scheme).
	BalanceEnergy Objective = iota
	// MinimizeEnergy minimizes Σ_k E_k (the paper's ME baseline).
	MinimizeEnergy
)

func (o Objective) String() string {
	if o == MinimizeEnergy {
		return "ME"
	}
	return "BE"
}

// CommEstimate selects how Algorithm 2 prices communication while paths
// are still unknown.
type CommEstimate int

// Communication-estimate variants for the heuristic's phase 2.
const (
	// EstimatePathAverage prices each placed predecessor edge with the
	// ρ-average of the real matrices (zero when co-located) — this
	// repository's default interpretation (see DESIGN.md).
	EstimatePathAverage CommEstimate = iota
	// EstimateConstant uses the paper's literal formula: fixed averages
	// independent of the candidate processor, which makes the allocation
	// communication-blind.
	EstimateConstant
)

// Options selects formulation variants.
type Options struct {
	Objective Objective
	// SinglePath pins every pair's route to the energy-oriented path,
	// the Fig. 2(a) baseline; multi-path selection is the default.
	SinglePath bool
	// CommEstimate selects the phase-2 communication pricing (heuristic
	// only; the exact solver prices communication exactly).
	CommEstimate CommEstimate
	// Trace, if non-nil, receives solver telemetry (solve spans, heuristic
	// phase transitions, anneal accept/reject) and is forwarded to the MILP
	// engine by Optimal. Observability only: the solvers never read it, so
	// results are identical with tracing on or off.
	Trace *obs.Trace
	// Clock supplies the time source behind SolveInfo.Runtime and the
	// per-phase timings, and is forwarded to the MILP engine by Optimal.
	// Nil means the wall clock; tests inject a fake clock to pin phase
	// timings and deadline behaviour deterministically.
	Clock obs.Clock
}

// now reads the configured clock. This is the core package's only
// approved wall-clock access: phase timing and deadline logic must go
// through it so solves stay testable under a fake clock.
//
//lint:fact clockseam
func (o Options) now() time.Time {
	if o.Clock != nil {
		return o.Clock()
	}
	return time.Now()
}

// System bundles one deployment problem instance.
type System struct {
	Plat  *platform.Platform
	Mesh  *noc.Mesh
	Graph *task.Graph
	Rel   reliability.Model
	H     float64 // scheduling horizon (seconds)

	exp *task.Expanded
	r   [][]float64 // r[origTask][level]: reliability table
}

// NewSystem validates and assembles a problem instance. The platform's
// processor count must match the mesh size.
func NewSystem(plat *platform.Platform, mesh *noc.Mesh, g *task.Graph, rel reliability.Model, horizon float64) (*System, error) {
	if plat.N != mesh.N() {
		return nil, fmt.Errorf("core: platform has %d processors but mesh has %d", plat.N, mesh.N())
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("core: horizon %g must be positive", horizon)
	}
	s := &System{Plat: plat, Mesh: mesh, Graph: g, Rel: rel, H: horizon}
	s.exp = task.Expand(g)
	s.r = make([][]float64, g.M())
	for i := 0; i < g.M(); i++ {
		s.r[i] = make([]float64, plat.L())
		for l := 0; l < plat.L(); l++ {
			s.r[i][l] = rel.TaskReliability(g.Tasks[i].WCEC, plat.Levels[l].Freq)
		}
	}
	return s, nil
}

// Expanded returns the 2M duplication-expanded task view.
func (s *System) Expanded() *task.Expanded { return s.exp }

// Reliability returns r_il for expanded slot i at level l.
func (s *System) Reliability(slot, l int) float64 {
	return s.r[s.exp.Orig(slot)][l]
}

// ExecTime returns C_i/f_l for expanded slot i.
func (s *System) ExecTime(slot, l int) float64 {
	return s.Plat.ExecTime(s.exp.WCEC(slot), l)
}

// ExecEnergy returns (C_i/f_l)·P_l for expanded slot i.
func (s *System) ExecEnergy(slot, l int) float64 {
	return s.Plat.ExecEnergy(s.exp.WCEC(slot), l)
}

// AvgCompTime is the paper's t_i,ave^comp: the midpoint of the fastest and
// slowest execution time of original task i.
func (s *System) AvgCompTime(i int) float64 {
	lo, hi := math.Inf(1), 0.0
	for l := 0; l < s.Plat.L(); l++ {
		t := s.Plat.ExecTime(s.Graph.Tasks[i].WCEC, l)
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return (lo + hi) / 2
}

// AvgCommTime is the paper's t_i,ave^comm: the number of predecessors of
// task i times the midpoint of the fastest and slowest per-byte path time,
// scaled by the average inbound payload.
func (s *System) AvgCommTime(i int) float64 {
	preds := s.Graph.Pred(i)
	if len(preds) == 0 {
		return 0
	}
	lo, hi := s.Mesh.TimeBounds()
	var bytes float64
	for _, p := range preds {
		bytes += s.Graph.Data(p, i)
	}
	return bytes * (lo + hi) / 2
}

// Horizon returns the paper's experiment horizon
// H = α·Σ_{i∈C}(t_i,ave^comp + t_i,ave^comm) over the critical path C.
func Horizon(plat *platform.Platform, mesh *noc.Mesh, g *task.Graph, rel reliability.Model, alpha float64) (float64, error) {
	// Build a throwaway system with a unit horizon to reuse its helpers.
	s, err := NewSystem(plat, mesh, g, rel, 1)
	if err != nil {
		return 0, err
	}
	crit, err := g.CriticalPathErr(func(i int) float64 {
		return s.AvgCompTime(i) + s.AvgCommTime(i)
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, i := range crit {
		sum += s.AvgCompTime(i) + s.AvgCommTime(i)
	}
	return alpha * sum, nil
}

// Deployment is a complete task deployment decision: the paper's variables
// h (Exists), y (Level), x (Proc), t^s (Start) and c (PathSel), over the 2M
// expanded slots.
type Deployment struct {
	Exists []bool // h_i; length 2M, true for all originals
	Level  []int  // V/F level per slot (meaningful where Exists)
	Proc   []int  // processor per slot (meaningful where Exists)
	Start  []float64
	// PathSel[β][γ] is the chosen candidate path index for data β→γ; -1 on
	// the diagonal.
	PathSel [][]int
}

// NewDeployment returns a zeroed deployment sized for the system.
func NewDeployment(s *System) *Deployment {
	n2 := s.exp.Size()
	d := &Deployment{
		Exists: make([]bool, n2),
		Level:  make([]int, n2),
		Proc:   make([]int, n2),
		Start:  make([]float64, n2),
	}
	for i := 0; i < s.Graph.M(); i++ {
		d.Exists[i] = true
	}
	n := s.Mesh.N()
	d.PathSel = make([][]int, n)
	for b := range d.PathSel {
		d.PathSel[b] = make([]int, n)
		for g := range d.PathSel[b] {
			if b == g {
				d.PathSel[b][g] = -1
			}
		}
	}
	return d
}

// End returns t_i^e = t_i^s + t_i^comp for slot i under the system's
// timing model (zero-length if the slot does not exist).
func (d *Deployment) End(s *System, i int) float64 {
	if !d.Exists[i] {
		return d.Start[i]
	}
	return d.Start[i] + s.ExecTime(i, d.Level[i])
}

// CommTime returns t_i^comm for slot i: the summed time to receive data
// from all existing predecessors over the selected paths.
func (d *Deployment) CommTime(s *System, i int) float64 {
	if !d.Exists[i] {
		return 0
	}
	var t float64
	for _, pair := range s.exp.DepEdges() {
		a, b := pair[0], pair[1]
		if b != i || !d.Exists[a] {
			continue
		}
		beta, gamma := d.Proc[a], d.Proc[b]
		if beta == gamma {
			continue
		}
		rho := d.PathSel[beta][gamma]
		t += s.exp.Data(a, b) * s.Mesh.TimePerByte(beta, gamma, rho)
	}
	return t
}

// DupCount returns M_d, the number of duplicated tasks.
func (d *Deployment) DupCount() int {
	n := 0
	for i := len(d.Exists) / 2; i < len(d.Exists); i++ {
		if d.Exists[i] {
			n++
		}
	}
	return n
}
