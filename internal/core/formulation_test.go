package core

import (
	"math"
	"testing"
	"testing/quick"

	"nocdeploy/internal/noc"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/taskgen"
)

// The MILP objective evaluated at an embedded heuristic deployment must
// equal the deployment's true metrics (up to the tiny product-pressure
// term) — this pins down the whole linearization chain: products, comm
// energy, comp energy and epigraph.
func TestFormulationObjectiveMatchesMetrics(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		s := tinySystem(t, 3, 6.0)
		d, info, err := Heuristic(s, Options{}, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Feasible {
			continue
		}
		f := BuildFormulation(s, Options{})
		x, err := f.IncumbentVector(d)
		if err != nil {
			t.Fatal(err)
		}
		if x == nil {
			t.Fatal("feasible deployment did not embed into the MILP")
		}
		m, err := ComputeMetrics(s, d)
		if err != nil {
			t.Fatal(err)
		}
		got := f.Model.Eval(x)
		if rel := math.Abs(got-m.MaxEnergy) / m.MaxEnergy; rel > 1e-4 {
			t.Errorf("seed %d: MILP objective %g vs metrics max energy %g (rel %g)",
				seed, got, m.MaxEnergy, rel)
		}
	}
}

// Same consistency for the ME objective.
func TestFormulationMEObjectiveMatchesMetrics(t *testing.T) {
	s := tinySystem(t, 3, 6.0)
	opts := Options{Objective: MinimizeEnergy}
	d, info, err := Heuristic(s, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Skip("infeasible instance")
	}
	f := BuildFormulation(s, opts)
	x, err := f.IncumbentVector(d)
	if err != nil {
		t.Fatal(err)
	}
	if x == nil {
		t.Fatal("deployment did not embed")
	}
	m, err := ComputeMetrics(s, d)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Model.Eval(x)
	if rel := math.Abs(got-m.SumEnergy) / m.SumEnergy; rel > 1e-4 {
		t.Errorf("ME objective %g vs metrics total %g", got, m.SumEnergy)
	}
}

// Extract followed by IncumbentVector must round-trip: re-embedding the
// extracted optimal deployment gives the same objective.
func TestExtractEmbedRoundTrip(t *testing.T) {
	s := tinySystem(t, 2, 3.0)
	f := BuildFormulation(s, Options{})
	d, info, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("tiny instance should be feasible")
	}
	x, err := f.IncumbentVector(d)
	if err != nil {
		t.Fatal(err)
	}
	if x == nil {
		t.Fatal("optimal deployment did not embed into a fresh formulation")
	}
	if rel := math.Abs(f.Model.Eval(x)-info.Objective) / info.Objective; rel > 1e-4 {
		t.Errorf("re-embedded objective %g vs optimal %g", f.Model.Eval(x), info.Objective)
	}
}

// Model size should scale as documented: singlepath fixes c but keeps the
// variable count, and larger M strictly grows the model.
func TestFormulationSizes(t *testing.T) {
	s3 := tinySystem(t, 3, 5.0)
	s2 := tinySystem(t, 2, 5.0)
	f3 := BuildFormulation(s3, Options{})
	f2 := BuildFormulation(s2, Options{})
	if f3.Model.NumVars() <= f2.Model.NumVars() || f3.Model.NumCons() <= f2.Model.NumCons() {
		t.Errorf("model does not grow with M: M=2 (%d,%d) vs M=3 (%d,%d)",
			f2.Model.NumVars(), f2.Model.NumCons(), f3.Model.NumVars(), f3.Model.NumCons())
	}
	fs := BuildFormulation(s2, Options{SinglePath: true})
	if fs.Model.NumVars() != f2.Model.NumVars() {
		t.Errorf("single-path changed variable count: %d vs %d",
			fs.Model.NumVars(), f2.Model.NumVars())
	}
}

// Property: over random small systems, the heuristic always produces a
// structurally valid deployment whose metrics are internally consistent,
// and the deployment embeds into the MILP whenever it passes the checker.
func TestHeuristicAlwaysStructurallyValid(t *testing.T) {
	f := func(seedRaw uint16, mRaw, wRaw uint8) bool {
		m := 2 + int(mRaw%8)
		w := 2 + int(wRaw%2) // 2x2 or 3x2 mesh
		seed := int64(seedRaw)
		plat := platform.Default(w * 2)
		mesh := noc.Default(w, 2)
		g, err := taskgen.Layered(taskgen.DefaultParams(m, seed), 3, 2)
		if err != nil {
			return false
		}
		rel := reliability.Default(plat.Fmin(), plat.Fmax())
		h, err := Horizon(plat, mesh, g, rel, 1.0+float64(seedRaw%16)/8)
		if err != nil {
			return false
		}
		s, err := NewSystem(plat, mesh, g, rel, h)
		if err != nil {
			return false
		}
		d, info, err := Heuristic(s, Options{}, seed)
		if err != nil {
			return false
		}
		met, err := ComputeMetrics(s, d)
		if err != nil {
			return false
		}
		if met.SumEnergy < met.MaxEnergy-1e-15 || met.MaxEnergy <= 0 {
			return false
		}
		if info.Feasible && CheckConstraints(s, d) != nil {
			return false
		}
		// A feasible deployment must embed into the exact formulation.
		if info.Feasible {
			form := BuildFormulation(s, Options{})
			x, err := form.IncumbentVector(d)
			if err != nil || x == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The duplication indicator (4) must hold in every optimal MILP solution:
// h_{i+M} = 1 exactly when the chosen original level is below threshold.
func TestOptimalDuplicationRuleHolds(t *testing.T) {
	s := tinySystem(t, 2, 3.0)
	d, info, err := Optimal(s, Options{}, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("expected feasible")
	}
	for i := 0; i < s.Graph.M(); i++ {
		needs := s.Reliability(i, d.Level[i]) < s.Rel.Rth
		if needs != d.Exists[i+s.Graph.M()] {
			t.Errorf("task %d: r<Rth=%v but duplicate exists=%v",
				i, needs, d.Exists[i+s.Graph.M()])
		}
	}
}
