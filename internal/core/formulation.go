package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"nocdeploy/internal/lp"
	"nocdeploy/internal/milp"
	"nocdeploy/internal/noc"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/reliability"
)

// Formulation is the MILP encoding of problem P1 plus the variable handles
// needed to extract a Deployment from a solution vector.
type Formulation struct {
	Model *milp.Model
	sys   *System
	opts  Options

	x  [][]milp.VarID // x[i][k]
	y  [][]milp.VarID // y[i][l]
	h  []milp.VarID   // h[i]; originals fixed to 1
	c  [][][]milp.VarID
	ts []milp.VarID
	u  map[[2]int]milp.VarID // ordering variables for independent pairs
}

// Product-variable down-pressure: a tiny objective weight that pins the
// lower-bounded linearization variables to their true product value in any
// optimal LP solution (see DESIGN.md). It is sized relative to the energy
// scale during model construction.
const epsRel = 1e-9

// BuildFormulation lowers a system to the MILP of problem P1 (or the ME /
// single-path variants selected by opts).
func BuildFormulation(s *System, opts Options) *Formulation {
	m := milp.NewModel()
	f := &Formulation{Model: m, sys: s, opts: opts, u: map[[2]int]milp.VarID{}}
	M := s.Graph.M()
	M2 := s.exp.Size()
	N := s.Mesh.N()
	L := s.Plat.L()
	H := s.H

	// --- decision variables -------------------------------------------
	f.x = make([][]milp.VarID, M2)
	f.y = make([][]milp.VarID, M2)
	f.h = make([]milp.VarID, M2)
	f.ts = make([]milp.VarID, M2)
	for i := 0; i < M2; i++ {
		f.x[i] = make([]milp.VarID, N)
		for k := 0; k < N; k++ {
			f.x[i][k] = m.AddBinary(fmt.Sprintf("x[%d][%d]", i, k))
			m.SetBranchPriority(f.x[i][k], 30)
		}
		f.y[i] = make([]milp.VarID, L)
		for l := 0; l < L; l++ {
			f.y[i][l] = m.AddBinary(fmt.Sprintf("y[%d][%d]", i, l))
			m.SetBranchPriority(f.y[i][l], 40)
		}
		f.h[i] = m.AddBinary(fmt.Sprintf("h[%d]", i))
		if i < M {
			m.FixVar(f.h[i], 1) // originals always exist
		} else {
			m.SetBranchPriority(f.h[i], 50)
		}
		f.ts[i] = m.AddContinuous(fmt.Sprintf("ts[%d]", i), 0, H)
	}
	f.c = make([][][]milp.VarID, N)
	for b := 0; b < N; b++ {
		f.c[b] = make([][]milp.VarID, N)
		for g := 0; g < N; g++ {
			if b == g {
				continue
			}
			f.c[b][g] = make([]milp.VarID, noc.NumPaths)
			for rho := 0; rho < noc.NumPaths; rho++ {
				f.c[b][g][rho] = m.AddBinary(fmt.Sprintf("c[%d][%d][%d]", b, g, rho))
				m.SetBranchPriority(f.c[b][g][rho], 20)
			}
			if opts.SinglePath {
				m.FixVar(f.c[b][g][noc.PathEnergy], 1)
				for rho := 1; rho < noc.NumPaths; rho++ {
					m.FixVar(f.c[b][g][rho], 0)
				}
			}
		}
	}

	// --- assignment constraints (1), (2), (3) --------------------------
	for i := 0; i < M2; i++ {
		rowX := milp.NewExpr(0)
		for k := 0; k < N; k++ {
			rowX.Add(f.x[i][k], 1)
		}
		m.AddConstr(rowX, lp.EQ, 1) // (1)
		rowY := milp.NewExpr(0)
		for l := 0; l < L; l++ {
			rowY.Add(f.y[i][l], 1)
		}
		m.AddConstr(rowY, lp.EQ, 1) // (3)
	}
	for b := 0; b < N; b++ {
		for g := 0; g < N; g++ {
			if b == g {
				continue
			}
			row := milp.NewExpr(0)
			for rho := 0; rho < noc.NumPaths; rho++ {
				row.Add(f.c[b][g][rho], 1)
			}
			m.AddConstr(row, lp.EQ, 1) // (2)
		}
	}

	// --- z[i][l] = h_i·y_il (exact for copies; y itself for originals) --
	z := make([][]milp.VarID, M2)
	for i := 0; i < M2; i++ {
		if i < M {
			z[i] = f.y[i]
			continue
		}
		z[i] = make([]milp.VarID, L)
		for l := 0; l < L; l++ {
			z[i][l] = m.Product(fmt.Sprintf("z[%d][%d]", i, l), f.h[i], f.y[i][l])
		}
	}
	// tcomp(i) = Σ_l z_il·C_i/f_l, exact at integral points.
	tcomp := func(i int) *milp.Expr {
		e := milp.NewExpr(0)
		for l := 0; l < L; l++ {
			e.Add(z[i][l], s.ExecTime(i, l))
		}
		return e
	}

	// --- reliability: duplication rule (4) and threshold (5) -----------
	var sigmaVals []float64
	for i := 0; i < M; i++ {
		for l := 0; l < L; l++ {
			sigmaVals = append(sigmaVals, s.Reliability(i, l))
		}
	}
	sigma := reliability.Sigma(s.Rel.Rth, sigmaVals)
	for i := 0; i < M; i++ {
		ri := milp.NewExpr(0)
		rmax := 0.0
		for l := 0; l < L; l++ {
			ri.Add(f.y[i][l], s.Reliability(i, l))
			rmax = math.Max(rmax, s.Reliability(i, l))
		}
		// (4): r_i ≥ Rth ⇒ h_{i+M} = 0; r_i < Rth ⇒ h_{i+M} = 1.
		m.Indicator(f.h[i+M], ri, rmax, s.Rel.Rth, sigma)
		// (5): r_i + Σ_l r_il z_{i+M,l} − Σ_{l,l'} r_il r_il' y_il z_{i+M,l'} ≥ Rth.
		row := milp.NewExpr(0).AddExpr(ri, 1)
		for l := 0; l < L; l++ {
			row.Add(z[i+M][l], s.Reliability(i, l))
		}
		for l := 0; l < L; l++ {
			for lp2 := 0; lp2 < L; lp2++ {
				yz := m.AddContinuous(fmt.Sprintf("yz[%d][%d][%d]", i, l, lp2), 0, 1)
				// Lower-bound-only product: conservative for (5), where yz
				// appears with a negative sign (see DESIGN.md).
				lb := milp.NewExpr(0).Add(f.y[i][l], 1).Add(z[i+M][lp2], 1).Add(yz, -1)
				m.AddConstr(lb, lp.LE, 1)
				row.Add(yz, -s.Reliability(i, l)*s.Reliability(i, lp2))
			}
		}
		m.AddConstr(row, lp.GE, s.Rel.Rth)
	}

	// --- communication products q = x_aβ·x_bγ·h_a·h_b·c_βγρ ------------
	// Lower-bound-only linearization: q ≥ Σ factors − (count−1). The tiny
	// objective pressure below pins q to the true product at optimality.
	edges := s.exp.DepEdges()
	// commEnergy[k] and commTime[slot] accumulate the q-linear terms.
	energyExpr := make([]*milp.Expr, N)
	for k := range energyExpr {
		energyExpr[k] = milp.NewExpr(0)
	}
	commTime := make([]*milp.Expr, M2)
	pressure := milp.NewExpr(0)
	for ei, pair := range edges {
		a, b := pair[0], pair[1]
		bytes := s.exp.Data(a, b)
		for beta := 0; beta < N; beta++ {
			for gamma := 0; gamma < N; gamma++ {
				if beta == gamma {
					continue // co-located communication is free
				}
				for rho := 0; rho < noc.NumPaths; rho++ {
					q := m.AddContinuous(
						fmt.Sprintf("q[e%d][%d][%d][%d]", ei, beta, gamma, rho), 0, 1)
					lb := milp.NewExpr(0).
						Add(f.x[a][beta], 1).
						Add(f.x[b][gamma], 1).
						Add(f.c[beta][gamma][rho], 1).
						Add(q, -1)
					count := 3
					for _, t := range []int{a, b} {
						if t >= M {
							lb.Add(f.h[t], 1)
							count++
						}
					}
					m.AddConstr(lb, lp.LE, float64(count-1))
					pressure.Add(q, 1)
					tt := bytes * s.Mesh.TimePerByte(beta, gamma, rho)
					if commTime[b] == nil {
						commTime[b] = milp.NewExpr(0)
					}
					commTime[b].Add(q, tt)
					for k := 0; k < N; k++ {
						if e := s.Mesh.EnergyPerByte(beta, gamma, k, rho); e > 0 {
							energyExpr[k].Add(q, bytes*e)
						}
					}
				}
			}
		}
	}

	// --- computation energy: e_ik ≥ Σ_l E_il z_il − (1−x_ik)·Emax_i ----
	var energyScale float64
	for i := 0; i < M2; i++ {
		emax := 0.0
		for l := 0; l < L; l++ {
			emax = math.Max(emax, s.ExecEnergy(i, l))
		}
		energyScale = math.Max(energyScale, emax)
		for k := 0; k < N; k++ {
			eik := m.AddContinuous(fmt.Sprintf("ecomp[%d][%d]", i, k), 0, emax)
			row := milp.NewExpr(-emax).Add(f.x[i][k], emax).Add(eik, -1)
			for l := 0; l < L; l++ {
				row.Add(z[i][l], s.ExecEnergy(i, l))
			}
			m.AddConstr(row, lp.LE, 0) // Σ E z − emax(1−x) − e_ik ≤ 0
			energyExpr[k].Add(eik, 1)
			pressure.Add(eik, 1)
		}
	}

	// --- timing constraints (6), (7), (8), (9) -------------------------
	for _, pair := range edges {
		a, b := pair[0], pair[1]
		// (6): ts_b + (1−h_a)H + (1−h_b)H ≥ ts_a + tcomp_a + tcomm_b.
		row := milp.NewExpr(0).
			Add(f.ts[a], 1).
			Add(f.ts[b], -1).
			AddExpr(tcomp(a), 1)
		if commTime[b] != nil {
			row.AddExpr(commTime[b], 1)
		}
		rhs := 0.0
		for _, t := range []int{a, b} {
			if t >= M {
				row.Add(f.h[t], H) // −(1−h)H moved across: +hH ≤ rhs+H
				rhs += H
			}
		}
		m.AddConstr(row, lp.LE, rhs)
	}
	// Independent pairs: ordering variables and non-overlap (7). Instead of
	// the paper's per-processor big-M rows, a same-processor indicator
	// σ_ij ≥ x_ik + x_jk − 1 (lower-bounded, so conservative-safe like q)
	// aggregates the N rows into one ordering row per direction.
	indep := func(i, j int) bool { return !s.exp.Dep(i, j) && !s.exp.Dep(j, i) }
	for i := 0; i < M2; i++ {
		for j := i + 1; j < M2; j++ {
			if !indep(i, j) {
				continue
			}
			uij := m.AddBinary(fmt.Sprintf("u[%d][%d]", i, j))
			uji := m.AddBinary(fmt.Sprintf("u[%d][%d]", j, i))
			m.SetBranchPriority(uij, 10)
			m.SetBranchPriority(uji, 10)
			f.u[[2]int{i, j}] = uij
			f.u[[2]int{j, i}] = uji
			sigma := m.AddContinuous(fmt.Sprintf("same[%d][%d]", i, j), 0, 1)
			for k := 0; k < N; k++ {
				// σ ≥ x_ik + x_jk − 1 (− (1−h) slack for copies).
				row := milp.NewExpr(0).
					Add(f.x[i][k], 1).Add(f.x[j][k], 1).Add(sigma, -1)
				rhs := 1.0
				for _, t := range []int{i, j} {
					if t >= M {
						row.Add(f.h[t], 1)
						rhs += 1
					}
				}
				m.AddConstr(row, lp.LE, rhs)
			}
			// Ordering completeness (implicit in the paper): on a shared
			// processor one of the two orders must be chosen.
			m.AddConstr(milp.NewExpr(0).Add(sigma, 1).Add(uij, -1).Add(uji, -1), lp.LE, 0)
			for _, ord := range [][2]int{{i, j}, {j, i}} {
				a, b := ord[0], ord[1]
				// (7): ts_a + tcomp_a ≤ ts_b + (1−σ)H + (1−u_ab)H.
				row := milp.NewExpr(0).
					Add(f.ts[a], 1).Add(f.ts[b], -1).
					AddExpr(tcomp(a), 1).
					Add(sigma, H).
					Add(f.u[[2]int{a, b}], H)
				m.AddConstr(row, lp.LE, 2*H)
			}
		}
	}
	for i := 0; i < M2; i++ {
		// (8): tcomp_i ≤ D_i.
		m.AddConstr(tcomp(i), lp.LE, s.exp.Deadline(i))
		// (9): ts_i + tcomp_i ≤ H.
		m.AddConstr(milp.NewExpr(0).Add(f.ts[i], 1).AddExpr(tcomp(i), 1), lp.LE, H)
	}

	// --- objective ------------------------------------------------------
	eps := epsRel * math.Max(energyScale, 1e-30)
	if opts.Objective == MinimizeEnergy {
		obj := milp.NewExpr(0)
		for k := 0; k < N; k++ {
			obj.AddExpr(energyExpr[k], 1)
		}
		obj.AddExpr(pressure, eps)
		m.SetObjective(obj)
	} else {
		zv := m.EpigraphMin("zmax", energyExpr)
		obj := milp.NewExpr(0).Add(zv, 1).AddExpr(pressure, eps)
		m.SetObjective(obj)
	}
	return f
}

// Extract converts a MILP solution vector into a Deployment.
func (f *Formulation) Extract(x []float64) *Deployment {
	s := f.sys
	d := NewDeployment(s)
	M2 := s.exp.Size()
	for i := 0; i < M2; i++ {
		d.Exists[i] = x[f.h[i]] > 0.5
		best, bestV := 0, -1.0
		for l, v := range f.y[i] {
			if x[v] > bestV {
				best, bestV = l, x[v]
			}
		}
		d.Level[i] = best
		best, bestV = 0, -1.0
		for k, v := range f.x[i] {
			if x[v] > bestV {
				best, bestV = k, x[v]
			}
		}
		d.Proc[i] = best
		d.Start[i] = x[f.ts[i]]
	}
	for b := range f.c {
		for g := range f.c[b] {
			if b == g || f.c[b][g] == nil {
				continue
			}
			best, bestV := 0, -1.0
			for rho, v := range f.c[b][g] {
				if x[v] > bestV {
					best, bestV = rho, x[v]
				}
			}
			d.PathSel[b][g] = best
		}
	}
	return d
}

// IncumbentVector lifts a feasible deployment into a full MILP solution
// vector (decision variables fixed, auxiliaries completed by one LP solve),
// for use as a branch & bound incumbent. It returns nil if the deployment
// does not embed into the formulation (e.g. it violates a constraint).
func (f *Formulation) IncumbentVector(d *Deployment) ([]float64, error) {
	return f.IncumbentVectorCtx(context.Background(), d)
}

// IncumbentVectorCtx is IncumbentVector with a cancellable completion LP:
// on large models that single solve can dominate a short deadline. A
// cancelled completion returns (nil, nil) — no incumbent, not an error.
func (f *Formulation) IncumbentVectorCtx(ctx context.Context, d *Deployment) ([]float64, error) {
	s := f.sys
	M2 := s.exp.Size()
	fixed := map[milp.VarID]float64{}
	setBin := func(v milp.VarID, on bool) {
		if on {
			fixed[v] = 1
		} else {
			fixed[v] = 0
		}
	}
	for i := 0; i < M2; i++ {
		setBin(f.h[i], d.Exists[i])
		for k := range f.x[i] {
			// Constraint (1) holds for all 2M slots, so a non-existing copy
			// still needs a (meaningless) allocation; reuse its recorded
			// processor.
			setBin(f.x[i][k], d.Proc[i] == k)
		}
		for l := range f.y[i] {
			// Non-existing slots still need Σ_l y = 1; reuse their recorded
			// level (NewDeployment zeroes it, which is fine).
			setBin(f.y[i][l], d.Level[i] == l)
		}
		// Start times are left to the completion LP: fixing them exactly
		// would reject schedules that differ from the MILP's timing rows by
		// floating-point drift, and any ordering-consistent schedule works.
	}
	for b := range f.c {
		for g := range f.c[b] {
			if b == g || f.c[b][g] == nil {
				continue
			}
			for rho := range f.c[b][g] {
				setBin(f.c[b][g][rho], d.PathSel[b][g] == rho)
			}
		}
	}
	// Ordering variables: derive a global order from start times (ties by
	// slot id); consistent with any non-overlapping schedule.
	before := func(i, j int) bool {
		if d.Start[i] != d.Start[j] { //lint:allow floateq — deterministic tie-break; tolerance would break transitivity
			return d.Start[i] < d.Start[j]
		}
		return i < j
	}
	for key, v := range f.u {
		setBin(v, before(key[0], key[1]))
	}
	return f.Model.Complete(fixed, lp.Options{Ctx: ctx})
}

// OptimalOptions tunes the exact solver.
type OptimalOptions struct {
	TimeLimit time.Duration
	MaxNodes  int
	RelGap    float64
	// Workers is the number of parallel branch & bound workers: 0 or 1
	// keeps the deterministic serial search, n > 1 searches the tree
	// concurrently (same proven optimum, run-to-run node counts vary),
	// negative uses all cores. See milp.SolveOptions.Workers.
	Workers int
	// WarmStart, if non-nil, supplies a heuristic objective value used as a
	// branch & bound cutoff (plus a small margin so an equal optimum is
	// still found).
	WarmStart *float64
	// WarmDeployment, if non-nil and feasible, seeds branch & bound with a
	// full incumbent solution (stronger than WarmStart: pruning plus
	// gap-based termination).
	WarmDeployment *Deployment
	// ColdChildren disables warm-starting child node LPs from the parent's
	// optimal basis. See milp.SolveOptions.ColdChildren.
	ColdChildren bool
}

// OptimalCtx solves problem P1 exactly (within the configured limits) and
// returns the deployment, or a nil deployment if no integral solution was
// found. SolveInfo.Feasible reports whether a feasible deployment exists
// and was found. The context cancels the branch & bound search
// cooperatively: a cancelled solve returns the best incumbent found so far
// with SolveInfo.Cancelled set, or a nil deployment if none was found (see
// Optimal for the context-free wrapper).
func OptimalCtx(ctx context.Context, s *System, opts Options, oo OptimalOptions) (*Deployment, *SolveInfo, error) {
	start := opts.now()
	tr := opts.Trace
	if tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.SolveStart, Label: "optimal"})
	}
	if ctx.Err() != nil {
		return nil, cancelledInfo(opts.now().Sub(start), tr, "optimal"), nil
	}
	f := BuildFormulation(s, opts)
	buildD := opts.now().Sub(start)
	if ctx.Err() != nil {
		return nil, cancelledInfo(opts.now().Sub(start), tr, "optimal"), nil
	}
	so := milp.SolveOptions{
		Ctx:          ctx,
		TimeLimit:    oo.TimeLimit,
		MaxNodes:     oo.MaxNodes,
		RelGap:       oo.RelGap,
		Workers:      oo.Workers,
		ColdChildren: oo.ColdChildren,
		Trace:        opts.Trace,
		Clock:        opts.Clock,
	}
	if oo.WarmStart != nil {
		so.Cutoff = *oo.WarmStart * (1 + 1e-6)
		so.CutoffSet = true
	}
	if oo.WarmDeployment != nil {
		inc, err := f.IncumbentVectorCtx(ctx, oo.WarmDeployment)
		if err != nil {
			return nil, nil, err
		}
		so.Incumbent = inc // nil (ignored) if the deployment doesn't embed
	}
	solveStart := opts.now()
	res, err := f.Model.Solve(so)
	if err != nil {
		return nil, nil, err
	}
	solveD := opts.now().Sub(solveStart)
	extractStart := opts.now()
	info := &SolveInfo{
		Nodes:     res.Nodes,
		Iters:     res.Iters,
		Cancelled: res.Cancelled,
	}
	for _, inc := range res.Incumbents {
		info.Incumbents = append(info.Incumbents, IncumbentPoint{T: inc.T, Obj: inc.Obj, Nodes: inc.Nodes})
	}
	finish := func() {
		info.Phases = []PhaseTiming{{"build", buildD}, {"solve", solveD}, {"extract", opts.now().Sub(extractStart)}}
		info.Runtime = opts.now().Sub(start)
		if tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.SolveDone, Label: "optimal", Obj: info.Objective, Phase: feasibilityOutcome(info.Feasible)})
		}
	}
	if res.X == nil {
		info.Feasible = false
		finish()
		return nil, info, nil
	}
	d := f.Extract(res.X)
	m, err := ComputeMetrics(s, d)
	if err != nil {
		return nil, nil, err
	}
	if opts.Objective == MinimizeEnergy {
		info.Objective = m.SumEnergy
	} else {
		info.Objective = m.MaxEnergy
	}
	info.Gap = res.Gap()
	info.Feasible = CheckConstraints(s, d) == nil
	finish()
	return d, info, nil
}
