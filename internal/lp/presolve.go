package lp

import (
	"math"

	"nocdeploy/internal/numeric"
)

// The presolve pass shrinks a problem before the simplex sees it:
//
//   - singleton rows (one live column) become bounds on that column,
//   - columns with equal bounds are fixed and substituted into the RHS,
//   - columns appearing in no live row are set by their cost sign,
//   - empty rows are checked for consistency and dropped,
//   - row activity bounds conservatively tighten column bounds.
//
// Every reduction is equivalence-preserving, so the reduced problem's
// status (Optimal / Infeasible / Unbounded) transfers to the original,
// and postsolve reconstructs the eliminated variables exactly.

// presolveTightenTol is the minimum improvement (with a safety margin)
// before a tightened bound replaces an original one; anything smaller is
// numerical noise not worth the risk of cutting the optimum.
const presolveTightenTol = 1e-7

type presolveRow struct {
	idx  []int
	val  []float64
	op   Op
	rhs  float64
	live bool
}

type presolver struct {
	p      *Problem
	lo, hi []float64
	rows   []presolveRow
	// fixedVal[j] holds the value of an eliminated column; fixed[j] marks
	// elimination (a column may legitimately be fixed at 0).
	fixedVal []float64
	fixed    []bool
	// colRows[j] counts live rows referencing column j.
	colRows []int
}

// solvePresolved reduces, solves the reduced problem, and maps back.
func solvePresolved(p *Problem, opt Options) (*Solution, error) {
	ps := &presolver{
		p:        p,
		lo:       append([]float64(nil), p.Lower...),
		hi:       append([]float64(nil), p.Upper...),
		fixedVal: make([]float64, p.NumCols),
		fixed:    make([]bool, p.NumCols),
		colRows:  make([]int, p.NumCols),
		rows:     make([]presolveRow, len(p.Cons)),
	}
	for r, c := range p.Cons {
		ps.rows[r] = presolveRow{
			idx:  append([]int(nil), c.Idx...),
			val:  append([]float64(nil), c.Val...),
			op:   c.Op,
			rhs:  c.RHS,
			live: true,
		}
	}

	if ps.reduce() == Infeasible {
		return &Solution{Status: Infeasible, Obj: math.Inf(1)}, nil
	}

	red, colMap, st := ps.buildReduced()
	if st == Infeasible {
		return &Solution{Status: Infeasible, Obj: math.Inf(1)}, nil
	}
	if red == nil {
		// Everything was eliminated: the fixed values are the solution.
		x := ps.postsolve(nil, nil)
		return &Solution{Status: Optimal, X: x, Obj: p.Eval(x)}, nil
	}

	sol, err := solveDirect(red, opt)
	if err != nil {
		return nil, err
	}
	if sol.Status != Optimal {
		// Infeasible/Unbounded/IterLimit transfer directly; X stays nil.
		sol.X = nil
		sol.Basis = nil
		return sol, nil
	}
	x := ps.postsolve(sol.X, colMap)
	sol.X = x
	sol.Obj = p.Eval(x)
	sol.Basis = nil // index space differs from the original problem
	return sol, nil
}

// reduce runs elimination passes to a fixed point (bounded rounds).
// Returns Infeasible when a contradiction is decidable here, Optimal
// otherwise. Unboundedness is never decided during reduction: a ray is
// only a ray if the problem is feasible, so candidate columns stay in
// the reduced problem for the simplex to judge.
func (ps *presolver) reduce() Status {
	const maxRounds = 4
	for round := 0; round < maxRounds; round++ {
		changed := false

		// Row pass: substitute fixed columns, drop empty rows, convert
		// singleton rows to bounds.
		for r := range ps.rows {
			row := &ps.rows[r]
			if !row.live {
				continue
			}
			if ps.substituteFixed(row) {
				changed = true
			}
			switch len(row.idx) {
			case 0:
				if !emptyRowFeasible(row.op, row.rhs) {
					return Infeasible
				}
				row.live = false
				changed = true
			case 1:
				if st := ps.applySingleton(row); st != Optimal {
					return st
				}
				row.live = false
				changed = true
			}
		}

		// Column pass: fix zero-width columns; decide columns that appear
		// in no live row by cost sign.
		ps.countColRows()
		for j := 0; j < ps.p.NumCols; j++ {
			if ps.fixed[j] {
				continue
			}
			if ps.lo[j] > ps.hi[j]+1e-9 {
				return Infeasible
			}
			if ps.hi[j]-ps.lo[j] <= 0 { // exact: bounds already clamped
				ps.fixColumn(j, ps.lo[j])
				changed = true
				continue
			}
			if ps.colRows[j] == 0 {
				// A no-row column whose improving direction is open is an
				// unbounded ray — but only if the rest of the problem is
				// feasible, which the reductions alone cannot decide. Leave
				// the column in the reduced problem: the simplex proves
				// feasibility in phase 1 before it may report Unbounded.
				switch {
				case ps.p.Cost[j] > 0:
					if math.IsInf(ps.lo[j], -1) {
						continue
					}
					ps.fixColumn(j, ps.lo[j])
				case ps.p.Cost[j] < 0:
					if math.IsInf(ps.hi[j], 1) {
						continue
					}
					ps.fixColumn(j, ps.hi[j])
				default:
					v := 0.0
					switch {
					case !math.IsInf(ps.lo[j], -1):
						v = ps.lo[j]
					case !math.IsInf(ps.hi[j], 1):
						v = ps.hi[j]
					}
					ps.fixColumn(j, v)
				}
				changed = true
			}
		}

		// Bound tightening from row activity ranges (conservative: only
		// strict improvements beyond presolveTightenTol, with a margin).
		if ps.tightenBounds() {
			changed = true
		}

		if !changed {
			break
		}
	}
	return Optimal
}

// substituteFixed folds eliminated columns of a row into its RHS,
// compacting idx/val in place. Reports whether anything changed.
func (ps *presolver) substituteFixed(row *presolveRow) bool {
	k := 0
	changed := false
	for i, j := range row.idx {
		if ps.fixed[j] {
			row.rhs -= row.val[i] * ps.fixedVal[j]
			changed = true
			continue
		}
		row.idx[k] = j
		row.val[k] = row.val[i]
		k++
	}
	row.idx = row.idx[:k]
	row.val = row.val[:k]
	return changed
}

// emptyRowFeasible checks 0 (op) rhs within tolerance.
func emptyRowFeasible(op Op, rhs float64) bool {
	switch op {
	case LE:
		return rhs >= -1e-9
	case GE:
		return rhs <= 1e-9
	}
	return math.Abs(rhs) <= 1e-9
}

// applySingleton converts a one-column row a·x (op) b into bounds on x.
func (ps *presolver) applySingleton(row *presolveRow) Status {
	j, a := row.idx[0], row.val[0]
	if numeric.IsZero(a) {
		if !emptyRowFeasible(row.op, row.rhs) {
			return Infeasible
		}
		return Optimal
	}
	v := row.rhs / a
	lo, hi := math.Inf(-1), math.Inf(1)
	switch row.op {
	case EQ:
		lo, hi = v, v
	case LE:
		if a > 0 {
			hi = v
		} else {
			lo = v
		}
	case GE:
		if a > 0 {
			lo = v
		} else {
			hi = v
		}
	}
	if lo > ps.lo[j] {
		ps.lo[j] = lo
	}
	if hi < ps.hi[j] {
		ps.hi[j] = hi
	}
	if ps.lo[j] > ps.hi[j] {
		if ps.lo[j] > ps.hi[j]+1e-9 {
			return Infeasible
		}
		// Within tolerance: collapse to a point.
		mid := 0.5 * (ps.lo[j] + ps.hi[j])
		ps.lo[j], ps.hi[j] = mid, mid
	}
	return Optimal
}

func (ps *presolver) fixColumn(j int, v float64) {
	ps.fixed[j] = true
	ps.fixedVal[j] = v
	ps.lo[j], ps.hi[j] = v, v
}

func (ps *presolver) countColRows() {
	for j := range ps.colRows {
		ps.colRows[j] = 0
	}
	for r := range ps.rows {
		if !ps.rows[r].live {
			continue
		}
		for _, j := range ps.rows[r].idx {
			ps.colRows[j]++
		}
	}
}

// tightenBounds derives implied column bounds from row activity ranges.
// For a row Σ aᵢxᵢ ≤ b, the partial minimum activity over the other
// columns bounds each xⱼ from above (aⱼ > 0) or below (aⱼ < 0); EQ rows
// tighten from both sides. Only clear improvements are kept, padded with
// a small margin so a tightened bound can never cut the true optimum.
func (ps *presolver) tightenBounds() bool {
	changed := false
	for r := range ps.rows {
		row := &ps.rows[r]
		if !row.live || len(row.idx) < 2 {
			continue
		}
		// Activity range of the whole row under current bounds.
		minAct, maxAct := 0.0, 0.0
		for i, j := range row.idx {
			a := row.val[i]
			if a > 0 {
				minAct += a * ps.lo[j]
				maxAct += a * ps.hi[j]
			} else {
				minAct += a * ps.hi[j]
				maxAct += a * ps.lo[j]
			}
		}
		upperSide := row.op == LE || row.op == EQ
		lowerSide := row.op == GE || row.op == EQ
		for i, j := range row.idx {
			a := row.val[i]
			if numeric.IsZero(a) {
				continue
			}
			// Partial activity excluding column j's own contribution.
			var minRest, maxRest float64
			if a > 0 {
				minRest = minAct - a*ps.lo[j]
				maxRest = maxAct - a*ps.hi[j]
			} else {
				minRest = minAct - a*ps.hi[j]
				maxRest = maxAct - a*ps.lo[j]
			}
			if upperSide && !math.IsInf(minRest, 0) {
				// a·xⱼ ≤ rhs − minRest
				v := (row.rhs - minRest) / a
				margin := 1e-9 * (1 + math.Abs(v))
				if a > 0 {
					if v+margin < ps.hi[j]-presolveTightenTol {
						ps.hi[j] = v + margin
						changed = true
					}
				} else {
					if v-margin > ps.lo[j]+presolveTightenTol {
						ps.lo[j] = v - margin
						changed = true
					}
				}
			}
			if lowerSide && !math.IsInf(maxRest, 0) {
				// a·xⱼ ≥ rhs − maxRest
				v := (row.rhs - maxRest) / a
				margin := 1e-9 * (1 + math.Abs(v))
				if a > 0 {
					if v-margin > ps.lo[j]+presolveTightenTol {
						ps.lo[j] = v - margin
						changed = true
					}
				} else {
					if v+margin < ps.hi[j]-presolveTightenTol {
						ps.hi[j] = v + margin
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// buildReduced assembles the reduced problem over the surviving columns.
// Returns a nil problem when every column was eliminated, and Infeasible
// when a late fixing emptied a row inconsistently. colMap maps reduced
// column index → original column index.
func (ps *presolver) buildReduced() (*Problem, []int, Status) {
	n := ps.p.NumCols
	keep := make([]int, n) // original → reduced, -1 when eliminated
	var colMap []int
	for j := 0; j < n; j++ {
		if ps.fixed[j] {
			keep[j] = -1
			continue
		}
		keep[j] = len(colMap)
		colMap = append(colMap, j)
	}
	if len(colMap) == 0 {
		// Rows must still hold under the fixed values.
		for r := range ps.rows {
			row := &ps.rows[r]
			if !row.live {
				continue
			}
			ps.substituteFixed(row)
			if !emptyRowFeasible(row.op, row.rhs) {
				return nil, nil, Infeasible
			}
		}
		return nil, nil, Optimal
	}
	red := &Problem{
		NumCols: len(colMap),
		Cost:    make([]float64, len(colMap)),
		Lower:   make([]float64, len(colMap)),
		Upper:   make([]float64, len(colMap)),
	}
	for rj, j := range colMap {
		red.Cost[rj] = ps.p.Cost[j]
		red.Lower[rj] = ps.lo[j]
		red.Upper[rj] = ps.hi[j]
	}
	for r := range ps.rows {
		row := &ps.rows[r]
		if !row.live {
			continue
		}
		// A final substitution pass: columns fixed after the last row pass.
		ps.substituteFixed(row)
		if len(row.idx) == 0 {
			if !emptyRowFeasible(row.op, row.rhs) {
				return nil, nil, Infeasible
			}
			continue
		}
		idx := make([]int, len(row.idx))
		for i, j := range row.idx {
			idx[i] = keep[j]
		}
		red.Cons = append(red.Cons, Constraint{
			Idx: idx,
			Val: append([]float64(nil), row.val...),
			Op:  row.op,
			RHS: row.rhs,
		})
	}
	return red, colMap, Optimal
}

// postsolve reconstructs the original variable vector from the reduced
// solution (xr may be nil when everything was eliminated).
func (ps *presolver) postsolve(xr []float64, colMap []int) []float64 {
	x := make([]float64, ps.p.NumCols)
	for j := 0; j < ps.p.NumCols; j++ {
		x[j] = ps.fixedVal[j]
	}
	for rj, j := range colMap {
		x[j] = xr[rj]
	}
	// Clamp to the original bounds: tightened bounds carry small margins.
	for j := 0; j < ps.p.NumCols; j++ {
		if x[j] < ps.p.Lower[j] {
			x[j] = ps.p.Lower[j]
		}
		if x[j] > ps.p.Upper[j] {
			x[j] = ps.p.Upper[j]
		}
	}
	return x
}
