package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !p.Feasible(sol.X, 1e-5) {
		t.Fatalf("solver returned infeasible point %v", sol.X)
	}
	return sol
}

// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 — the classic Wyndor
// problem, optimum (2, 6) with value 36.
func TestWyndor(t *testing.T) {
	p := NewProblem(2)
	p.Cost = []float64{-3, -5}
	p.AddConstraint([]int{0}, []float64{1}, LE, 4)
	p.AddConstraint([]int{1}, []float64{2}, LE, 12)
	p.AddConstraint([]int{0, 1}, []float64{3, 2}, LE, 18)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-(-36)) > 1e-6 {
		t.Errorf("obj = %g, want -36", sol.Obj)
	}
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Errorf("x = %v, want (2, 6)", sol.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x ≥ 3, y ≥ 2 → (8, 2), obj 12.
	p := NewProblem(2)
	p.Cost = []float64{1, 2}
	p.SetBounds(0, 3, math.Inf(1))
	p.SetBounds(1, 2, math.Inf(1))
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, EQ, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-12) > 1e-6 {
		t.Errorf("obj = %g, want 12", sol.Obj)
	}
	// min 2x + 3y s.t. x + y ≥ 4, x + 3y ≥ 6 → (3, 1), obj 9.
	p = NewProblem(2)
	p.Cost = []float64{2, 3}
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, GE, 4)
	p.AddConstraint([]int{0, 1}, []float64{1, 3}, GE, 6)
	sol = solveOK(t, p)
	if math.Abs(sol.Obj-9) > 1e-6 {
		t.Errorf("obj = %g, want 9 (x=%v)", sol.Obj, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]int{0}, []float64{1}, GE, 5)
	p.AddConstraint([]int{0}, []float64{1}, LE, 3)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleBoundsVsRow(t *testing.T) {
	p := NewProblem(2)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, GE, 3)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.Cost = []float64{-1, 0}
	p.AddConstraint([]int{1}, []float64{1}, LE, 5)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestBoxOnly(t *testing.T) {
	p := NewProblem(3)
	p.Cost = []float64{1, -1, 0}
	p.SetBounds(0, 2, 7)
	p.SetBounds(1, -1, 4)
	p.SetBounds(2, 0, 1)
	sol := solveOK(t, p)
	if sol.X[0] != 2 || sol.X[1] != 4 {
		t.Errorf("x = %v, want x0=2 x1=4", sol.X)
	}
}

func TestUpperBoundedOptimum(t *testing.T) {
	// max x + y with x,y ∈ [0,1], x + y ≤ 1.5 → obj -1.5 at boundary.
	p := NewProblem(2)
	p.Cost = []float64{-1, -1}
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, LE, 1.5)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+1.5) > 1e-6 {
		t.Errorf("obj = %g, want -1.5", sol.Obj)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y, x ≥ -5, y ≥ -3, x + y ≥ -6 → optimum -6.
	p := NewProblem(2)
	p.Cost = []float64{1, 1}
	p.SetBounds(0, -5, math.Inf(1))
	p.SetBounds(1, -3, math.Inf(1))
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, GE, -6)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+6) > 1e-6 {
		t.Errorf("obj = %g, want -6", sol.Obj)
	}
}

func TestFreeVariable(t *testing.T) {
	// min |style| problem: min y s.t. y ≥ x - 2, y ≥ -x + 2, x free, y free.
	// Optimum y = 0 at x = 2.
	p := NewProblem(2)
	p.Cost = []float64{0, 1}
	p.SetBounds(0, math.Inf(-1), math.Inf(1))
	p.SetBounds(1, math.Inf(-1), math.Inf(1))
	p.AddConstraint([]int{0, 1}, []float64{-1, 1}, GE, -2)
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, GE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj) > 1e-6 {
		t.Errorf("obj = %g, want 0 (x=%v)", sol.Obj, sol.X)
	}
}

func TestDegenerate(t *testing.T) {
	// A degenerate vertex: several constraints meet at the optimum.
	p := NewProblem(2)
	p.Cost = []float64{-1, -1}
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, LE, 1)
	p.AddConstraint([]int{0}, []float64{1}, LE, 1)
	p.AddConstraint([]int{1}, []float64{1}, LE, 1)
	p.AddConstraint([]int{0, 1}, []float64{2, 1}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+1) > 1e-6 {
		t.Errorf("obj = %g, want -1", sol.Obj)
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem(2)
	p.Cost = []float64{1, 1}
	p.SetBounds(0, 3, 3) // fixed
	p.SetBounds(1, 0, 10)
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, GE, 5)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-3) > 1e-9 || math.Abs(sol.X[1]-2) > 1e-6 {
		t.Errorf("x = %v, want (3, 2)", sol.X)
	}
}

func TestValidateErrors(t *testing.T) {
	p := NewProblem(2)
	p.AddConstraint([]int{0, 5}, []float64{1, 1}, LE, 1)
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("expected error for out-of-range column")
	}
	p = NewProblem(2)
	p.SetBounds(0, 2, 1)
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("expected error for empty bound interval")
	}
	p = NewProblem(2)
	p.AddConstraint([]int{0, 0}, []float64{1, 1}, LE, 1)
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("expected error for duplicate column in row")
	}
	p = NewProblem(2)
	p.AddConstraint([]int{0}, []float64{math.Inf(1)}, LE, 1)
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("expected error for infinite coefficient")
	}
}

// --- randomized cross-check against brute-force vertex enumeration ---

// bruteForce enumerates all candidate vertices of an LP whose variables all
// have finite bounds: every choice of n active constraints among rows
// (as equalities) and bounds, solved as a linear system.
type testEq struct {
	a   []float64
	rhs float64
}

func bruteForce(p *Problem) (float64, bool) {
	n := p.NumCols
	var eqs []testEq
	for _, c := range p.Cons {
		a := make([]float64, n)
		for k, j := range c.Idx {
			a[j] = c.Val[k]
		}
		eqs = append(eqs, testEq{a, c.RHS})
	}
	for j := 0; j < n; j++ {
		lo := make([]float64, n)
		lo[j] = 1
		eqs = append(eqs, testEq{lo, p.Lower[j]})
		hi := make([]float64, n)
		hi[j] = 1
		eqs = append(eqs, testEq{hi, p.Upper[j]})
	}
	best, found := math.Inf(1), false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(eqs, idx, n)
			if ok && p.Feasible(x, 1e-7) {
				if v := p.Eval(x); v < best {
					best, found = v, true
				}
			}
			return
		}
		for i := start; i < len(eqs); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

func solveSquare(eqs []testEq, idx []int, n int) ([]float64, bool) {
	a := make([][]float64, n)
	b := make([]float64, n)
	for r, i := range idx {
		a[r] = append([]float64(nil), eqs[i].a...)
		b[r] = eqs[i].rhs
	}
	for col := 0; col < n; col++ {
		piv, pv := -1, 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(a[r][col]); v > pv {
				piv, pv = r, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[piv], a[col] = a[col], a[piv]
		b[piv], b[col] = b[col], b[piv]
		d := a[col][col]
		for k := col; k < n; k++ {
			a[col][k] /= d
		}
		b[col] /= d
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	return b, true
}

func TestRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2)
		rows := 1 + rng.Intn(3)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			lo := float64(rng.Intn(5)) - 2
			p.SetBounds(j, lo, lo+1+float64(rng.Intn(4)))
			p.Cost[j] = float64(rng.Intn(11) - 5)
		}
		for r := 0; r < rows; r++ {
			idx := make([]int, 0, n)
			val := make([]float64, 0, n)
			for j := 0; j < n; j++ {
				if rng.Intn(3) > 0 {
					idx = append(idx, j)
					val = append(val, float64(rng.Intn(9)-4))
				}
			}
			if len(idx) == 0 {
				idx, val = []int{0}, []float64{1}
			}
			p.AddConstraint(idx, val, Op(rng.Intn(3)), float64(rng.Intn(13)-6))
		}
		want, feasible := bruteForce(p)
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if sol.Status == Optimal {
				t.Fatalf("trial %d: solver says optimal %v but brute force found no vertex", trial, sol.X)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: solver says %v but brute force found optimum %g", trial, sol.Status, want)
		}
		if math.Abs(sol.Obj-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: solver obj %g, brute force %g", trial, sol.Obj, want)
		}
	}
}

// Moderately sized random feasible problems must solve and verify.
func TestMediumRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n, rows := 40, 25
		p := NewProblem(n)
		x0 := make([]float64, n) // a known feasible point
		for j := 0; j < n; j++ {
			p.SetBounds(j, 0, 10)
			x0[j] = rng.Float64() * 10
			p.Cost[j] = rng.NormFloat64()
		}
		for r := 0; r < rows; r++ {
			var idx []int
			var val []float64
			var lhs float64
			for j := 0; j < n; j++ {
				if rng.Intn(4) == 0 {
					v := rng.NormFloat64()
					idx = append(idx, j)
					val = append(val, v)
					lhs += v * x0[j]
				}
			}
			if len(idx) == 0 {
				continue
			}
			// Make the row loose around the feasible point.
			p.AddConstraint(idx, val, LE, lhs+rng.Float64())
		}
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v for a feasible problem", trial, sol.Status)
		}
		if !p.Feasible(sol.X, 1e-5) {
			t.Fatalf("trial %d: returned point violates constraints", trial)
		}
		if sol.Obj > p.Eval(x0)+1e-6 {
			t.Fatalf("trial %d: optimum %g worse than known feasible %g", trial, sol.Obj, p.Eval(x0))
		}
	}
}
