// Package lp implements a bounded-variable primal simplex solver for linear
// programs
//
//	minimize    cᵀx
//	subject to  aᵢᵀx (≤ | = | ≥) bᵢ   for each row i
//	            lbⱼ ≤ xⱼ ≤ ubⱼ        for each column j
//
// Variable bounds are handled implicitly (nonbasic variables may sit at
// either bound and bound flips are free), which keeps the paper's MILP
// relaxations — dominated by [0,1]-bounded binaries — small. The solver is
// the LP engine underneath package milp's branch & bound, standing in for
// the Gurobi solver used in the paper's evaluation.
//
// The implementation is a two-phase revised simplex over a sparse LU
// factorization of the basis with product-form eta updates per pivot,
// Dantzig pricing with a Bland anti-cycling fallback, periodic
// refactorization for numerical hygiene, an optional presolve/postsolve
// reduction pass, and dual-simplex warm starts from a caller-supplied
// basis snapshot (Options.WarmBasis).
package lp

import (
	"context"
	"fmt"
	"math"

	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
)

// Op is a constraint sense.
type Op int

// Constraint senses.
const (
	LE Op = iota // aᵀx ≤ b
	GE           // aᵀx ≥ b
	EQ           // aᵀx = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Constraint is one sparse row aᵀx (op) b.
type Constraint struct {
	Idx []int     // column indices, unique
	Val []float64 // coefficients, aligned with Idx
	Op  Op
	RHS float64
}

// Problem is a linear program in minimization form.
type Problem struct {
	NumCols int
	Cost    []float64 // length NumCols
	Lower   []float64 // length NumCols; -Inf allowed
	Upper   []float64 // length NumCols; +Inf allowed
	Cons    []Constraint
}

// NewProblem returns a problem with n columns, zero costs and [0, +Inf)
// bounds.
func NewProblem(n int) *Problem {
	p := &Problem{
		NumCols: n,
		Cost:    make([]float64, n),
		Lower:   make([]float64, n),
		Upper:   make([]float64, n),
	}
	for j := range p.Upper {
		p.Upper[j] = math.Inf(1)
	}
	return p
}

// SetBounds sets the bounds of column j.
func (p *Problem) SetBounds(j int, lo, hi float64) {
	p.Lower[j] = lo
	p.Upper[j] = hi
}

// AddConstraint appends a sparse row. The index/value slices are retained.
func (p *Problem) AddConstraint(idx []int, val []float64, op Op, rhs float64) {
	p.Cons = append(p.Cons, Constraint{Idx: idx, Val: val, Op: op, RHS: rhs})
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if p.NumCols <= 0 {
		return fmt.Errorf("lp: problem has %d columns", p.NumCols)
	}
	if len(p.Cost) != p.NumCols || len(p.Lower) != p.NumCols || len(p.Upper) != p.NumCols {
		return fmt.Errorf("lp: cost/bound vectors do not match NumCols=%d", p.NumCols)
	}
	for j := 0; j < p.NumCols; j++ {
		if p.Lower[j] > p.Upper[j] {
			return fmt.Errorf("lp: column %d has empty bound interval [%g, %g]", j, p.Lower[j], p.Upper[j])
		}
		if math.IsNaN(p.Lower[j]) || math.IsNaN(p.Upper[j]) || math.IsNaN(p.Cost[j]) {
			return fmt.Errorf("lp: column %d has NaN data", j)
		}
	}
	for r, c := range p.Cons {
		if len(c.Idx) != len(c.Val) {
			return fmt.Errorf("lp: row %d has %d indices but %d values", r, len(c.Idx), len(c.Val))
		}
		seen := map[int]bool{}
		for k, j := range c.Idx {
			if j < 0 || j >= p.NumCols {
				return fmt.Errorf("lp: row %d references column %d (have %d)", r, j, p.NumCols)
			}
			if seen[j] {
				return fmt.Errorf("lp: row %d references column %d twice", r, j)
			}
			seen[j] = true
			if math.IsNaN(c.Val[k]) || math.IsInf(c.Val[k], 0) {
				return fmt.Errorf("lp: row %d has non-finite coefficient for column %d", r, j)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: row %d has non-finite rhs", r)
		}
	}
	return nil
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a solve.
type Solution struct {
	Status  Status
	X       []float64 // length NumCols; valid when Status is Optimal
	Obj     float64   // cᵀx
	Iters   int       // simplex iterations across both phases
	ItersP1 int       // iterations spent in phase 1 (feasibility search)
	// Basis is the optimal basis snapshot, attached only when
	// Options.WantBasis is set, Status is Optimal and the solve ran without
	// presolve (the reduction would change the snapshot's index space).
	// May still be nil in rare degenerate cases; callers must handle nil.
	Basis *Basis
	// Warm reports that the solve was seeded from Options.WarmBasis and
	// the warm start held (false when it fell back to a cold start).
	Warm bool
	// DualIters counts dual simplex pivots spent restoring feasibility of
	// a warm-started basis; included in Iters.
	DualIters int
	// Refactors counts mid-solve basis refactorizations (periodic cadence
	// plus stability-triggered refreshes).
	Refactors int
}

// Basis is a reusable snapshot of a simplex basis over the structural and
// slack columns of a problem. Snapshots taken from one solve
// (Options.WantBasis) can seed another solve of a problem with the same
// shape — identical columns and rows; bounds may differ — via
// Options.WarmBasis. The intended use is branch & bound, where a child
// node differs from its parent only in one variable's bounds.
type Basis struct {
	// Basic holds, per row, the column occupying the basis (structural
	// columns first, then slacks: indices in [0, NumCols+len(Cons))).
	Basic []int32
	// NonBasic records where each nonbasic column sits (internal varState
	// values); entries for basic columns are ignored by the consumer.
	NonBasic []uint8
}

// Options tunes the solver.
type Options struct {
	MaxIters   int     // total simplex iterations; 0 means a generous default
	FeasTol    float64 // bound/feasibility tolerance; 0 means 1e-7
	OptTol     float64 // reduced-cost tolerance; 0 means 1e-9
	Refactor   int     // refactorization interval (pivots between refreshes); 0 means 32
	BlandAfter int     // switch to Bland's rule after this many degenerate pivots; 0 means 64
	// Trace, if non-nil, receives one obs.LPSolve event per Solve call
	// (iteration counts and outcome). Observability only: the solver
	// never reads it, so results are identical with tracing on or off.
	Trace *obs.Trace
	// Ctx, if non-nil, cancels the solve cooperatively: the pivot loop
	// polls it every few dozen iterations and a cancelled solve returns
	// Status IterLimit. Callers that must distinguish cancellation from a
	// genuine iteration limit should inspect Ctx.Err themselves.
	Ctx context.Context
	// WarmBasis, if non-nil, seeds the solve from a previous
	// Solution.Basis of a same-shaped problem. Primal feasibility under
	// the possibly-changed bounds is restored by dual simplex pivots; a
	// stale, singular or stalled basis falls back to a cold start, so the
	// option is always safe. The snapshot is read-only and may be shared
	// across concurrent solves.
	WarmBasis *Basis
	// WantBasis asks Solve to attach Solution.Basis to optimal solutions
	// so the caller can warm-start related solves.
	WantBasis bool
	// Presolve runs a reduction pass (singleton rows to bounds, fixed and
	// unconstrained columns, empty rows, conservative bound tightening)
	// before the simplex and maps the solution back to the original
	// variables. Ignored when WarmBasis is set: the reduction would
	// invalidate the basis' index space.
	Presolve bool
}

func (o Options) withDefaults(m int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 20000 + 200*m
	}
	if numeric.IsZero(o.FeasTol) {
		o.FeasTol = 1e-7
	}
	if numeric.IsZero(o.OptTol) {
		o.OptTol = 1e-9
	}
	if o.Refactor == 0 {
		o.Refactor = 32
	}
	if o.BlandAfter == 0 {
		o.BlandAfter = 64
	}
	return o
}

// Eval returns cᵀx for this problem.
func (p *Problem) Eval(x []float64) float64 {
	var s float64
	for j, c := range p.Cost {
		if !numeric.IsZero(c) {
			s += c * x[j]
		}
	}
	return s
}

// Feasible reports whether x satisfies every bound and row within tol.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	for j := 0; j < p.NumCols; j++ {
		if x[j] < p.Lower[j]-tol || x[j] > p.Upper[j]+tol {
			return false
		}
	}
	for _, c := range p.Cons {
		var a float64
		for k, j := range c.Idx {
			a += c.Val[k] * x[j]
		}
		switch c.Op {
		case LE:
			if a > c.RHS+tol {
				return false
			}
		case GE:
			if a < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(a-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}
