package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Beale's classic cycling example: Dantzig pricing cycles without an
// anti-cycling rule; the Bland fallback must terminate with optimum -0.05.
func TestBealeCycling(t *testing.T) {
	p := NewProblem(4)
	p.Cost = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint([]int{0, 1, 2, 3}, []float64{0.25, -60, -1.0 / 25, 9}, LE, 0)
	p.AddConstraint([]int{0, 1, 2, 3}, []float64{0.5, -90, -1.0 / 50, 3}, LE, 0)
	p.AddConstraint([]int{2}, []float64{1}, LE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-(-0.05)) > 1e-9 {
		t.Errorf("Beale optimum %g, want -0.05", sol.Obj)
	}
}

// Klee-Minty-style problem (n=6): exponential for naive pivot rules but
// must still terminate well within the iteration budget.
func TestKleeMinty(t *testing.T) {
	const n = 6
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.Cost[j] = -math.Pow(2, float64(n-1-j))
	}
	for i := 0; i < n; i++ {
		idx := []int{}
		val := []float64{}
		for j := 0; j < i; j++ {
			idx = append(idx, j)
			val = append(val, math.Pow(2, float64(i-j+1)))
		}
		idx = append(idx, i)
		val = append(val, 1)
		p.AddConstraint(idx, val, LE, math.Pow(5, float64(i+1)))
	}
	sol := solveOK(t, p)
	want := -math.Pow(5, n)
	if math.Abs(sol.Obj-want) > 1e-6*math.Abs(want) {
		t.Errorf("Klee-Minty optimum %g, want %g", sol.Obj, want)
	}
	if sol.Iters > 2000 {
		t.Errorf("Klee-Minty took %d iterations", sol.Iters)
	}
}

func TestIterationLimitStatus(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewProblem(50)
	for j := 0; j < 50; j++ {
		p.SetBounds(j, 0, 100)
		p.Cost[j] = rng.NormFloat64()
	}
	for r := 0; r < 40; r++ {
		var idx []int
		var val []float64
		for j := 0; j < 50; j++ {
			if rng.Intn(2) == 0 {
				idx = append(idx, j)
				val = append(val, rng.NormFloat64())
			}
		}
		p.AddConstraint(idx, val, LE, 10+rng.Float64()*10)
	}
	sol, err := Solve(p, Options{MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Errorf("status %v with 3-iteration budget", sol.Status)
	}
}

// All-equality systems: the unique solution must be found (and infeasible
// overdetermined ones rejected).
func TestEqualityOnlySystems(t *testing.T) {
	p := NewProblem(2)
	p.SetBounds(0, math.Inf(-1), math.Inf(1))
	p.SetBounds(1, math.Inf(-1), math.Inf(1))
	p.AddConstraint([]int{0, 1}, []float64{1, 1}, EQ, 5)
	p.AddConstraint([]int{0, 1}, []float64{1, -1}, EQ, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-3) > 1e-8 || math.Abs(sol.X[1]-2) > 1e-8 {
		t.Errorf("x = %v, want (3, 2)", sol.X)
	}
	p.AddConstraint([]int{0}, []float64{1}, EQ, 0) // contradicts x0=3
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("overdetermined contradictory system: status %v", sol.Status)
	}
}

// Bound flips: an LP whose optimum requires walking several variables from
// lower to upper bound without basis changes.
func TestBoundFlipPath(t *testing.T) {
	const n = 10
	p := NewProblem(n)
	row := make([]float64, n)
	idx := make([]int, n)
	for j := 0; j < n; j++ {
		p.SetBounds(j, 0, 1)
		p.Cost[j] = -1 // maximize the sum
		idx[j] = j
		row[j] = 1
	}
	p.AddConstraint(idx, row, LE, float64(n)) // slack never binds
	sol := solveOK(t, p)
	if math.Abs(sol.Obj+float64(n)) > 1e-9 {
		t.Errorf("obj %g, want %d", sol.Obj, -n)
	}
}

// Negative RHS rows combined with GE senses exercise the artificial-sign
// logic in the crash basis.
func TestNegativeRHS(t *testing.T) {
	p := NewProblem(2)
	p.Cost = []float64{1, 1}
	p.AddConstraint([]int{0, 1}, []float64{-1, -1}, LE, -4) // x+y ≥ 4
	p.AddConstraint([]int{0}, []float64{-1}, GE, -3)        // x ≤ 3
	sol := solveOK(t, p)
	if math.Abs(sol.Obj-4) > 1e-8 {
		t.Errorf("obj %g, want 4", sol.Obj)
	}
}

// Larger randomized brute-force cross-check with n=4 and equality rows.
func TestRandomVsBruteForce4(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 4
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			lo := float64(rng.Intn(3)) - 1
			p.SetBounds(j, lo, lo+1+float64(rng.Intn(3)))
			p.Cost[j] = float64(rng.Intn(9) - 4)
		}
		for r := 0; r < 2; r++ {
			idx := []int{}
			val := []float64{}
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, j)
					val = append(val, float64(rng.Intn(7)-3))
				}
			}
			if len(idx) == 0 {
				idx, val = []int{rng.Intn(n)}, []float64{1}
			}
			p.AddConstraint(idx, val, Op(rng.Intn(3)), float64(rng.Intn(9)-4))
		}
		want, feasible := bruteForce(p)
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if sol.Status == Optimal {
				t.Fatalf("trial %d: solver optimal, brute force infeasible", trial)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (%g)", trial, sol.Status, want)
		}
		if math.Abs(sol.Obj-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: obj %g, want %g", trial, sol.Obj, want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(100)
	if o.MaxIters <= 0 || o.FeasTol <= 0 || o.OptTol <= 0 || o.Refactor <= 0 || o.BlandAfter <= 0 {
		t.Errorf("defaults not filled: %+v", o)
	}
	// Explicit values survive.
	o = Options{MaxIters: 7, FeasTol: 1e-3}.withDefaults(10)
	if o.MaxIters != 7 || o.FeasTol != 1e-3 {
		t.Errorf("explicit options overridden: %+v", o)
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q", st, st.String())
		}
	}
	for op, want := range map[Op]string{LE: "<=", GE: ">=", EQ: "="} {
		if op.String() != want {
			t.Errorf("Op.String() = %q, want %q", op.String(), want)
		}
	}
}

// A fixed (lb == ub) variable participating in every row must not destroy
// feasibility detection.
func TestManyFixedVariables(t *testing.T) {
	p := NewProblem(5)
	for j := 0; j < 4; j++ {
		p.SetBounds(j, float64(j), float64(j)) // all fixed
	}
	p.SetBounds(4, 0, 100)
	p.Cost[4] = 1
	// x4 ≥ 10 − (0+1+2+3) = 4
	p.AddConstraint([]int{0, 1, 2, 3, 4}, []float64{1, 1, 1, 1, 1}, GE, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.X[4]-4) > 1e-8 {
		t.Errorf("x4 = %g, want 4", sol.X[4])
	}
}
