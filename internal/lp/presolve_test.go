package lp

import (
	"math"
	"math/rand"
	"testing"

	"nocdeploy/internal/numeric"
)

// randomLP generates a small LP in the same family as
// TestRandomVsBruteForce: integer-ish data, a mix of senses, occasional
// fixed columns and redundant rows so the presolve reductions all fire.
func randomLP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(4)
	rows := 1 + rng.Intn(4)
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		lo := float64(rng.Intn(5)) - 2
		width := float64(rng.Intn(4)) // width 0 → fixed column
		p.SetBounds(j, lo, lo+width)
		p.Cost[j] = float64(rng.Intn(11) - 5)
	}
	for r := 0; r < rows; r++ {
		idx := make([]int, 0, n)
		val := make([]float64, 0, n)
		for j := 0; j < n; j++ {
			if rng.Intn(3) > 0 {
				idx = append(idx, j)
				val = append(val, float64(rng.Intn(9)-4))
			}
		}
		if len(idx) == 0 {
			idx, val = []int{0}, []float64{1}
		}
		p.AddConstraint(idx, val, Op(rng.Intn(3)), float64(rng.Intn(13)-6))
	}
	return p
}

// TestPresolveRoundTrip: solving with and without presolve must agree —
// same status, objectives within numeric.Eps, and the postsolved point
// feasible for the original problem. 400 random instances cover singleton
// rows, fixed columns, empty rows and tightenable bounds.
func TestPresolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		p := randomLP(rng)
		plain, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: plain solve: %v", trial, err)
		}
		pre, err := Solve(p, Options{Presolve: true})
		if err != nil {
			t.Fatalf("trial %d: presolved solve: %v", trial, err)
		}
		if plain.Status != pre.Status {
			t.Fatalf("trial %d: presolve changed status %v → %v\nproblem: %+v",
				trial, plain.Status, pre.Status, p)
		}
		if plain.Status != Optimal {
			continue
		}
		if math.Abs(plain.Obj-pre.Obj) > numeric.Eps*(1+math.Abs(plain.Obj)) {
			t.Fatalf("trial %d: objectives diverge: plain %g vs presolved %g\nproblem: %+v",
				trial, plain.Obj, pre.Obj, p)
		}
		if !p.Feasible(pre.X, 1e-6) {
			t.Fatalf("trial %d: postsolved point infeasible for the original problem\nx = %v\nproblem: %+v",
				trial, pre.X, p)
		}
		// The reported objective must be the objective of the reported
		// point (postsolve reconstructs X; the two must not drift apart).
		if math.Abs(p.Eval(pre.X)-pre.Obj) > 1e-6*(1+math.Abs(pre.Obj)) {
			t.Fatalf("trial %d: Obj %g does not match Eval(X) %g", trial, pre.Obj, p.Eval(pre.X))
		}
	}
}

// TestPresolveAllEliminated: a problem presolve can solve outright (every
// column fixed or implied) must still return a checked solution.
func TestPresolveAllEliminated(t *testing.T) {
	p := NewProblem(2)
	p.SetBounds(0, 3, 3) // fixed
	p.SetBounds(1, 0, 5)
	p.Cost[0] = 1
	p.Cost[1] = 2
	p.AddConstraint([]int{1}, []float64{1}, EQ, 4) // singleton: x1 = 4
	sol, err := Solve(p, Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", sol.Status)
	}
	if math.Abs(sol.Obj-11) > 1e-9 {
		t.Fatalf("obj = %g, want 11", sol.Obj)
	}
	if math.Abs(sol.X[0]-3) > 1e-9 || math.Abs(sol.X[1]-4) > 1e-9 {
		t.Fatalf("x = %v, want [3 4]", sol.X)
	}
}

// TestPresolveDetectsInfeasible: contradictions visible to the reductions
// (inconsistent singleton vs bounds, empty rows) report Infeasible just
// like the simplex would.
func TestPresolveDetectsInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 0, 1)
	p.AddConstraint([]int{0}, []float64{1}, GE, 2) // x0 ≥ 2 vs ub 1
	for _, presolve := range []bool{false, true} {
		sol, err := Solve(p, Options{Presolve: presolve})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Infeasible {
			t.Fatalf("presolve=%v: status = %v, want Infeasible", presolve, sol.Status)
		}
	}
}

// TestPresolveDetectsUnbounded: a column with improving cost, no rows and
// an open bound is unbounded with or without the reduction pass.
func TestPresolveDetectsUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.Cost[0] = -1 // minimize -x0, x0 ∈ [0, +Inf): unbounded
	p.SetBounds(1, 0, 1)
	p.AddConstraint([]int{1}, []float64{1}, LE, 1)
	for _, presolve := range []bool{false, true} {
		sol, err := Solve(p, Options{Presolve: presolve})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Unbounded {
			t.Fatalf("presolve=%v: status = %v, want Unbounded", presolve, sol.Status)
		}
	}
}

// TestWarmStartEquivalence mimics branch & bound: solve a parent LP with
// WantBasis, tighten one column's bounds, and re-solve warm vs cold. The
// two child solves must agree on status and objective, and the warm one
// should report Warm on instances where the snapshot installs.
func TestWarmStartEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	warmHeld := 0
	for trial := 0; trial < 300; trial++ {
		p := randomLP(rng)
		parent, err := Solve(p, Options{WantBasis: true})
		if err != nil {
			t.Fatalf("trial %d: parent solve: %v", trial, err)
		}
		if parent.Status != Optimal || parent.Basis == nil {
			continue
		}
		// Branch: tighten a random column to the floor/ceil of its value,
		// the way branch & bound fixes a fractional binary.
		child := *p
		child.Lower = append([]float64(nil), p.Lower...)
		child.Upper = append([]float64(nil), p.Upper...)
		j := rng.Intn(p.NumCols)
		if rng.Intn(2) == 0 {
			child.Upper[j] = math.Floor(parent.X[j])
		} else {
			child.Lower[j] = math.Ceil(parent.X[j])
		}
		if child.Lower[j] > child.Upper[j] {
			continue
		}
		cold, err := Solve(&child, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold child: %v", trial, err)
		}
		warm, err := Solve(&child, Options{WarmBasis: parent.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm child: %v", trial, err)
		}
		if cold.Status != warm.Status {
			t.Fatalf("trial %d: warm start changed status %v → %v\nproblem: %+v",
				trial, cold.Status, warm.Status, &child)
		}
		if cold.Status == Optimal {
			if math.Abs(cold.Obj-warm.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
				t.Fatalf("trial %d: objectives diverge: cold %g vs warm %g",
					trial, cold.Obj, warm.Obj)
			}
			if !child.Feasible(warm.X, 1e-6) {
				t.Fatalf("trial %d: warm solution infeasible", trial)
			}
		}
		if warm.Warm {
			warmHeld++
		}
	}
	// The point of the machinery: the warm path must actually engage on a
	// healthy fraction of branch-like children, not silently cold-start.
	if warmHeld < 50 {
		t.Fatalf("warm start held on only %d trials; expected ≥ 50", warmHeld)
	}
}

// TestWarmStartStaleBasisFallsBack: a snapshot from an unrelated basis
// (here: deliberately corrupted to duplicate a basic column) must fall
// back to a cold solve, not error or return garbage.
func TestWarmStartStaleBasisFallsBack(t *testing.T) {
	p := NewProblem(3)
	for j := 0; j < 3; j++ {
		p.SetBounds(j, 0, 4)
		p.Cost[j] = float64(j) - 1
	}
	p.AddConstraint([]int{0, 1, 2}, []float64{1, 1, 1}, LE, 6)
	p.AddConstraint([]int{0, 1}, []float64{1, -1}, GE, -2)
	parent, err := Solve(p, Options{WantBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	if parent.Status != Optimal || parent.Basis == nil {
		t.Fatalf("parent = %+v, want optimal with basis", parent)
	}
	bad := &Basis{
		Basic:    append([]int32(nil), parent.Basis.Basic...),
		NonBasic: append([]uint8(nil), parent.Basis.NonBasic...),
	}
	bad.Basic[1] = bad.Basic[0] // duplicate: structurally singular
	warm, err := Solve(p, Options{WarmBasis: bad})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("status = %v, want Optimal after fallback", warm.Status)
	}
	if warm.Warm {
		t.Fatal("corrupt snapshot reported Warm")
	}
	if math.Abs(warm.Obj-parent.Obj) > 1e-9 {
		t.Fatalf("fallback obj %g differs from parent %g", warm.Obj, parent.Obj)
	}
}
