package lp

import (
	"math"
	"testing"
)

// FuzzSimplexSolve drives the simplex with randomly generated small LPs
// and checks the solver's core contract: it never errors on valid input,
// any solution reported Optimal actually satisfies every bound and row,
// and the presolve reductions never change the answer.
func FuzzSimplexSolve(f *testing.F) {
	f.Add([]byte{2, 1, 10, 20, 1, 200, 3, 0, 5})
	f.Add([]byte{3, 2, 0, 50, 128, 90, 2, 1, 60, 5, 9, 1, 30, 7})
	f.Add([]byte{1, 0, 255})
	// Degenerate: two identical rows x₀+x₁ ≤ 0 with x₀ ≥ 0, x₁ ∈ [0,1] —
	// the optimum sits on a degenerate vertex where the duplicate rows tie.
	f.Add([]byte{1, 2, 144, 0, 112, 1, 128, 0, 144, 0, 144, 0, 128, 0, 144, 0, 144, 0, 128})
	// Rank-deficient: the same rows as equalities, so phase 1 must park a
	// redundant artificial at zero and the LU factors a singular-ish basis.
	f.Add([]byte{1, 2, 144, 0, 112, 1, 128, 0, 144, 2, 144, 2, 128, 0, 144, 2, 144, 2, 128})
	// A zero-width (fixed) column alongside a free-ish one under a GE row:
	// exercises the fixed-column eliminations and the crash's signed
	// artificial on a row made infeasible by its slack bound.
	f.Add([]byte{2, 1, 144, 3, 128, 128, 96, 2, 128, 128, 0, 0, 160, 0, 144, 0, 144, 1, 160})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		// Coefficients are small signed values so objectives stay O(100)
		// and infeasibility/unboundedness arise naturally.
		coef := func() float64 { return float64(int(next())-128) / 16 }

		n := 1 + int(next())%4
		m := int(next()) % 5
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.Cost[j] = coef()
			switch next() % 4 {
			case 0: // default [0, +Inf)
			case 1:
				p.SetBounds(j, 0, math.Abs(coef())+1)
			case 2:
				p.SetBounds(j, coef(), math.Inf(1))
			default:
				lo := coef()
				p.SetBounds(j, lo, lo+math.Abs(coef()))
			}
		}
		for r := 0; r < m; r++ {
			var idx []int
			var val []float64
			for j := 0; j < n; j++ {
				if next()%2 == 0 {
					idx = append(idx, j)
					val = append(val, coef())
				}
			}
			if len(idx) == 0 {
				idx, val = []int{0}, []float64{1}
			}
			p.AddConstraint(idx, val, Op(next()%3), coef())
		}

		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("Solve returned error on valid input: %v\nproblem: %+v", err, p)
		}
		// Presolve round-trip under fuzz: the reductions must agree with
		// the plain solve on status and objective (iteration-limited runs
		// excepted — the two paths pivot differently).
		pre, err := Solve(p, Options{Presolve: true})
		if err != nil {
			t.Fatalf("presolved Solve returned error on valid input: %v\nproblem: %+v", err, p)
		}
		if pre.Status != sol.Status && pre.Status != IterLimit && sol.Status != IterLimit {
			t.Fatalf("presolve changed status %v → %v\nproblem: %+v", sol.Status, pre.Status, p)
		}
		if pre.Status == Optimal && sol.Status == Optimal {
			if math.Abs(pre.Obj-sol.Obj) > 1e-5*(1+math.Abs(sol.Obj)) {
				t.Fatalf("presolve changed objective %g → %g\nproblem: %+v", sol.Obj, pre.Obj, p)
			}
			if !p.Feasible(pre.X, 1e-6) {
				t.Fatalf("presolved solution violates constraints\nx = %v\nproblem: %+v", pre.X, p)
			}
		}
		if sol.Status != Optimal {
			return // infeasible / unbounded / iteration limit are all legal outcomes
		}
		if len(sol.X) != n {
			t.Fatalf("optimal solution has %d entries, want %d", len(sol.X), n)
		}
		for j, x := range sol.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("optimal x[%d] = %v", j, x)
			}
		}
		if !p.Feasible(sol.X, 1e-6) {
			t.Fatalf("solution reported Optimal but violates constraints\nx = %v\nproblem: %+v", sol.X, p)
		}
	})
}
