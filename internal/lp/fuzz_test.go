package lp

import (
	"math"
	"testing"
)

// FuzzSimplexSolve drives the simplex with randomly generated small LPs and
// checks the solver's core contract: it never errors on valid input, and
// any solution reported Optimal actually satisfies every bound and row.
func FuzzSimplexSolve(f *testing.F) {
	f.Add([]byte{2, 1, 10, 20, 1, 200, 3, 0, 5})
	f.Add([]byte{3, 2, 0, 50, 128, 90, 2, 1, 60, 5, 9, 1, 30, 7})
	f.Add([]byte{1, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		// Coefficients are small signed values so objectives stay O(100)
		// and infeasibility/unboundedness arise naturally.
		coef := func() float64 { return float64(int(next())-128) / 16 }

		n := 1 + int(next())%4
		m := int(next()) % 5
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.Cost[j] = coef()
			switch next() % 4 {
			case 0: // default [0, +Inf)
			case 1:
				p.SetBounds(j, 0, math.Abs(coef())+1)
			case 2:
				p.SetBounds(j, coef(), math.Inf(1))
			default:
				lo := coef()
				p.SetBounds(j, lo, lo+math.Abs(coef()))
			}
		}
		for r := 0; r < m; r++ {
			var idx []int
			var val []float64
			for j := 0; j < n; j++ {
				if next()%2 == 0 {
					idx = append(idx, j)
					val = append(val, coef())
				}
			}
			if len(idx) == 0 {
				idx, val = []int{0}, []float64{1}
			}
			p.AddConstraint(idx, val, Op(next()%3), coef())
		}

		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("Solve returned error on valid input: %v\nproblem: %+v", err, p)
		}
		if sol.Status != Optimal {
			return // infeasible / unbounded / iteration limit are all legal outcomes
		}
		if len(sol.X) != n {
			t.Fatalf("optimal solution has %d entries, want %d", len(sol.X), n)
		}
		for j, x := range sol.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("optimal x[%d] = %v", j, x)
			}
		}
		if !p.Feasible(sol.X, 1e-6) {
			t.Fatalf("solution reported Optimal but violates constraints\nx = %v\nproblem: %+v", sol.X, p)
		}
	})
}
