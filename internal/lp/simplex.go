package lp

import (
	"fmt"
	"math"

	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
)

// varState describes where a column currently sits.
type varState uint8

const (
	atLower varState = iota
	atUpper
	isFree // nonbasic free variable, held at value 0
	inBasis
)

// simplex carries the working state of one solve.
type simplex struct {
	opt Options

	n, m int // structural columns, rows

	// column-major matrix over all columns: structural, slack, artificial.
	colIdx [][]int
	colVal [][]float64

	lo, hi []float64 // working bounds for all columns
	cost   []float64 // phase-dependent cost for all columns
	rhs    []float64 // row right-hand sides (rows as equalities)

	state []varState
	basis []int     // basis[i] = column basic in row i
	xB    []float64 // values of basic variables
	binv  []float64 // m×m row-major basis inverse

	iters       int
	sincePivot  int // pivots since last refactorization
	degenStreak int // consecutive (near-)degenerate pivots, drives Bland switch
}

// errSingular reports a numerically broken basis; Solve retries once with
// conservative settings before giving up.
var errSingular = fmt.Errorf("lp: basis became singular")

// Solve minimizes the problem. It returns an error only for malformed input
// or an internal numerical breakdown; infeasibility and unboundedness are
// reported through Solution.Status.
func Solve(p *Problem, opt Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sol, err := solveOnce(p, opt)
	if err == errSingular {
		// Numerical breakdown: retry with frequent refactorization and
		// early Bland pivoting, which is slower but far more stable.
		retry := opt
		retry.Refactor = 16
		retry.BlandAfter = 8
		sol, err = solveOnce(p, retry)
		if err == errSingular {
			return nil, fmt.Errorf("lp: basis singular even under conservative pivoting")
		}
	}
	if err == nil && opt.Trace.Enabled() {
		opt.Trace.Emit(obs.Event{
			Kind:    obs.LPSolve,
			Iters:   sol.Iters,
			ItersP1: sol.ItersP1,
			Phase:   sol.Status.String(),
		})
	}
	return sol, err
}

func solveOnce(p *Problem, opt Options) (*Solution, error) {
	m := len(p.Cons)
	opt = opt.withDefaults(m)
	s := &simplex{opt: opt, n: p.NumCols, m: m}
	s.build(p)

	if m == 0 {
		// Pure box problem: each column sits at its cheapest bound.
		x := make([]float64, p.NumCols)
		for j := 0; j < p.NumCols; j++ {
			switch {
			case p.Cost[j] > 0:
				if math.IsInf(p.Lower[j], -1) {
					return &Solution{Status: Unbounded}, nil
				}
				x[j] = p.Lower[j]
			case p.Cost[j] < 0:
				if math.IsInf(p.Upper[j], 1) {
					return &Solution{Status: Unbounded}, nil
				}
				x[j] = p.Upper[j]
			default:
				switch {
				case !math.IsInf(p.Lower[j], -1):
					x[j] = p.Lower[j]
				case !math.IsInf(p.Upper[j], 1):
					x[j] = p.Upper[j]
				}
			}
		}
		return &Solution{Status: Optimal, X: x, Obj: p.Eval(x)}, nil
	}

	// Phase 1: minimize the sum of artificial variables.
	phase1 := make([]float64, len(s.cost))
	for j := s.n + s.m; j < len(phase1); j++ {
		phase1[j] = 1
	}
	s.cost = phase1
	st, err := s.iterate()
	if err != nil {
		return nil, err
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iters: s.iters, ItersP1: s.iters}, nil
	}
	p1Iters := s.iters
	if infeas := s.phaseObj(); infeas > 1e-6 {
		// Obj carries the residual infeasibility (sum of artificial
		// values) to help callers distinguish numerical noise from real
		// constraint conflicts.
		return &Solution{Status: Infeasible, Iters: s.iters, ItersP1: p1Iters, Obj: infeas}, nil
	}

	// Phase 2: fix artificials at zero and optimize the real cost.
	for j := s.n + s.m; j < len(s.cost); j++ {
		s.lo[j], s.hi[j] = 0, 0
		if s.state[j] != inBasis {
			s.state[j] = atLower
		}
	}
	phase2 := make([]float64, len(s.cost))
	copy(phase2, p.Cost)
	s.cost = phase2
	s.degenStreak = 0
	st, err = s.iterate()
	if err != nil {
		return nil, err
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iters: s.iters, ItersP1: p1Iters}, nil
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iters: s.iters, ItersP1: p1Iters}, nil
	}

	// Refresh basic values once more for accuracy before extraction.
	if err := s.refactorize(); err != nil {
		return nil, err
	}
	x := make([]float64, p.NumCols)
	for j := 0; j < p.NumCols; j++ {
		x[j] = s.value(j)
	}
	for i, bj := range s.basis {
		if bj < p.NumCols {
			x[bj] = s.xB[i]
		}
	}
	// Clamp tiny bound violations from floating-point drift.
	for j := 0; j < p.NumCols; j++ {
		if x[j] < p.Lower[j] {
			x[j] = p.Lower[j]
		}
		if x[j] > p.Upper[j] {
			x[j] = p.Upper[j]
		}
	}
	return &Solution{Status: Optimal, X: x, Obj: p.Eval(x), Iters: s.iters, ItersP1: p1Iters}, nil
}

// build lays out columns (structural | slack | artificial) and the initial
// all-artificial basis.
func (s *simplex) build(p *Problem) {
	n, m := s.n, s.m
	total := n + 2*m
	s.colIdx = make([][]int, total)
	s.colVal = make([][]float64, total)
	s.lo = make([]float64, total)
	s.hi = make([]float64, total)
	s.cost = make([]float64, total)
	s.state = make([]varState, total)
	s.rhs = make([]float64, m)

	copy(s.lo, p.Lower)
	copy(s.hi, p.Upper)
	for r, c := range p.Cons {
		s.rhs[r] = c.RHS
		for k, j := range c.Idx {
			s.colIdx[j] = append(s.colIdx[j], r)
			s.colVal[j] = append(s.colVal[j], c.Val[k])
		}
		// Slack column: a·x + s = b with sense-dependent slack bounds.
		sj := n + r
		s.colIdx[sj] = []int{r}
		s.colVal[sj] = []float64{1}
		switch c.Op {
		case LE:
			s.lo[sj], s.hi[sj] = 0, math.Inf(1)
		case GE:
			s.lo[sj], s.hi[sj] = math.Inf(-1), 0
		case EQ:
			s.lo[sj], s.hi[sj] = 0, 0
		}
	}

	// Nonbasic starting point: nearest finite bound, or 0 for free columns.
	for j := 0; j < n+m; j++ {
		switch {
		case !math.IsInf(s.lo[j], -1):
			s.state[j] = atLower
		case !math.IsInf(s.hi[j], 1):
			s.state[j] = atUpper
		default:
			s.state[j] = isFree
		}
	}

	// Crash basis: rows whose residual fits inside the slack's bounds get
	// the slack as the basic variable; only violated rows need an
	// artificial. This usually leaves phase 1 with little or no work.
	res := make([]float64, m)
	copy(res, s.rhs)
	for j := 0; j < n; j++ {
		if v := s.value(j); !numeric.IsZero(v) {
			for k, r := range s.colIdx[j] {
				res[r] -= s.colVal[j][k] * v
			}
		}
	}
	s.basis = make([]int, m)
	s.xB = make([]float64, m)
	s.binv = make([]float64, m*m)
	for r := 0; r < m; r++ {
		aj := n + m + r
		sj := n + r
		if res[r] >= s.lo[sj]-1e-12 && res[r] <= s.hi[sj]+1e-12 {
			// Slack absorbs the residual; artificial fixed out of play.
			s.state[sj] = inBasis
			s.basis[r] = sj
			s.xB[r] = res[r]
			s.binv[r*m+r] = 1
			s.colIdx[aj] = []int{r}
			s.colVal[aj] = []float64{1}
			s.lo[aj], s.hi[aj] = 0, 0
			s.state[aj] = atLower
			continue
		}
		// Slack stays nonbasic at the bound nearest the residual; the
		// artificial covers the remaining violation.
		var sv float64
		if res[r] < s.lo[sj] {
			sv = s.lo[sj]
			s.state[sj] = atLower
		} else {
			sv = s.hi[sj]
			s.state[sj] = atUpper
		}
		rem := res[r] - sv
		sign := 1.0
		if rem < 0 {
			sign = -1
		}
		s.colIdx[aj] = []int{r}
		s.colVal[aj] = []float64{sign}
		s.lo[aj], s.hi[aj] = 0, math.Inf(1)
		s.state[aj] = inBasis
		s.basis[r] = aj
		s.xB[r] = math.Abs(rem)
		s.binv[r*m+r] = sign // inverse of diag(sign)
	}
}

// value returns the current value of a nonbasic column.
func (s *simplex) value(j int) float64 {
	switch s.state[j] {
	case atLower:
		return s.lo[j]
	case atUpper:
		return s.hi[j]
	}
	return 0
}

// phaseObj returns the current objective under s.cost.
func (s *simplex) phaseObj() float64 {
	var obj float64
	for j := range s.cost {
		if numeric.IsZero(s.cost[j]) {
			continue
		}
		if s.state[j] == inBasis {
			continue
		}
		obj += s.cost[j] * s.value(j)
	}
	for i, bj := range s.basis {
		obj += s.cost[bj] * s.xB[i]
	}
	return obj
}

// iterate runs simplex pivots until the current cost is optimal, the
// problem proves unbounded, or the iteration budget runs out.
func (s *simplex) iterate() (Status, error) {
	m := s.m
	y := make([]float64, m)
	w := make([]float64, m)
	for {
		if s.iters >= s.opt.MaxIters {
			return IterLimit, nil
		}
		// Poll for cancellation on a stride: Ctx.Err takes a lock, and a
		// pivot is only O(m·n), so checking every iteration would show up.
		if s.opt.Ctx != nil && s.iters%64 == 0 && s.opt.Ctx.Err() != nil {
			return IterLimit, nil
		}
		s.iters++
		bland := s.degenStreak >= s.opt.BlandAfter

		// Simplex multipliers y = c_Bᵀ B⁻¹.
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for i, bj := range s.basis {
			if cb := s.cost[bj]; !numeric.IsZero(cb) {
				row := s.binv[i*m : (i+1)*m]
				for k := 0; k < m; k++ {
					y[k] += cb * row[k]
				}
			}
		}

		// Pricing: find the entering column.
		enter, dir := -1, 1.0
		bestScore := s.opt.OptTol
		for j := range s.cost {
			st := s.state[j]
			// Fixed columns compare their bounds exactly: bounds are set, not
			// computed, and the ±Inf pairs must not trip NaN tolerance math.
			if st == inBasis || s.lo[j] == s.hi[j] { //lint:allow floateq — exact fixed-column check over assigned bounds
				continue
			}
			d := s.cost[j]
			for k, r := range s.colIdx[j] {
				d -= y[r] * s.colVal[j][k]
			}
			var improving bool
			var dj float64
			switch st {
			case atLower:
				improving, dj = d < -s.opt.OptTol, 1
			case atUpper:
				improving, dj = d > s.opt.OptTol, -1
			case isFree:
				improving = math.Abs(d) > s.opt.OptTol
				if d > 0 {
					dj = -1
				} else {
					dj = 1
				}
			}
			if !improving {
				continue
			}
			if bland {
				enter, dir = j, dj
				break
			}
			if score := math.Abs(d); score > bestScore {
				bestScore, enter, dir = score, j, dj
			}
		}
		if enter < 0 {
			return Optimal, nil
		}

		// Direction w = B⁻¹ a_enter.
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		for k, r := range s.colIdx[enter] {
			a := s.colVal[enter][k]
			for i := 0; i < m; i++ {
				w[i] += s.binv[i*m+r] * a
			}
		}

		// Ratio test: step t moves the entering column by dir·t; basic
		// values change by −dir·t·w.
		const pivotTol = 1e-9
		span := s.hi[enter] - s.lo[enter]
		tMax, leave := span, -1
		leavePivot := 0.0
		for i := 0; i < m; i++ {
			ci := dir * w[i]
			if math.Abs(ci) <= pivotTol {
				continue
			}
			bj := s.basis[i]
			var limit float64
			if ci > 0 {
				if math.IsInf(s.lo[bj], -1) {
					continue
				}
				limit = (s.xB[i] - s.lo[bj]) / ci
			} else {
				if math.IsInf(s.hi[bj], 1) {
					continue
				}
				limit = (s.hi[bj] - s.xB[i]) / (-ci)
			}
			if limit < 0 {
				limit = 0
			}
			better := limit < tMax-1e-12
			if !better && limit < tMax+1e-12 && leave >= 0 {
				// Tie-break for stability: prefer the larger pivot; under
				// Bland, prefer the smallest column index.
				if bland {
					better = bj < s.basis[leave]
				} else {
					better = math.Abs(w[i]) > math.Abs(leavePivot)
				}
			}
			if better {
				tMax, leave, leavePivot = limit, i, w[i]
			}
		}

		if math.IsInf(tMax, 1) {
			return Unbounded, nil
		}

		if leave < 0 {
			// Bound flip: the entering column traverses its whole interval.
			for i := 0; i < m; i++ {
				s.xB[i] -= dir * tMax * w[i]
			}
			if s.state[enter] == atLower {
				s.state[enter] = atUpper
			} else {
				s.state[enter] = atLower
			}
			s.degenStreak = 0
			continue
		}

		if tMax <= 1e-12 {
			s.degenStreak++
		} else {
			s.degenStreak = 0
		}

		// Pivot: enter replaces basis[leave].
		enterVal := s.value(enter) + dir*tMax
		for i := 0; i < m; i++ {
			if i != leave {
				s.xB[i] -= dir * tMax * w[i]
			}
		}
		left := s.basis[leave]
		if dir*w[leave] > 0 {
			s.state[left] = atLower
		} else {
			s.state[left] = atUpper
		}
		// Update B⁻¹ for the column swap.
		piv := w[leave]
		rowL := s.binv[leave*m : (leave+1)*m]
		inv := 1 / piv
		for k := 0; k < m; k++ {
			rowL[k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			f := w[i]
			if numeric.IsZero(f) {
				continue
			}
			row := s.binv[i*m : (i+1)*m]
			for k := 0; k < m; k++ {
				row[k] -= f * rowL[k]
			}
		}
		s.basis[leave] = enter
		s.state[enter] = inBasis
		s.xB[leave] = enterVal

		s.sincePivot++
		if s.sincePivot >= s.opt.Refactor {
			if err := s.refactorize(); err != nil {
				return Optimal, err
			}
		}
	}
}

// refactorize recomputes the basis inverse from scratch and refreshes the
// basic variable values.
func (s *simplex) refactorize() error {
	m := s.m
	b := make([]float64, m*m)
	for i, bj := range s.basis {
		for k, r := range s.colIdx[bj] {
			b[r*m+i] = s.colVal[bj][k]
		}
	}
	inv, ok := invertDense(b, m)
	if !ok {
		return errSingular
	}
	s.binv = inv
	// xB = B⁻¹ (b − N x_N).
	eff := make([]float64, m)
	copy(eff, s.rhs)
	for j := range s.cost {
		if s.state[j] == inBasis {
			continue
		}
		if v := s.value(j); !numeric.IsZero(v) {
			for k, r := range s.colIdx[j] {
				eff[r] -= s.colVal[j][k] * v
			}
		}
	}
	for i := 0; i < m; i++ {
		var v float64
		row := s.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			v += row[k] * eff[k]
		}
		s.xB[i] = v
	}
	s.sincePivot = 0
	return nil
}

// invertDense inverts an m×m row-major matrix with Gauss-Jordan elimination
// and partial pivoting. It reports failure on (near-)singular input.
func invertDense(a []float64, m int) ([]float64, bool) {
	inv := make([]float64, m*m)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	work := make([]float64, m*m)
	copy(work, a)
	for col := 0; col < m; col++ {
		// Partial pivot.
		piv, pivAbs := -1, 1e-11
		for r := col; r < m; r++ {
			if v := math.Abs(work[r*m+col]); v > pivAbs {
				piv, pivAbs = r, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		if piv != col {
			swapRows(work, m, piv, col)
			swapRows(inv, m, piv, col)
		}
		d := 1 / work[col*m+col]
		for k := 0; k < m; k++ {
			work[col*m+k] *= d
			inv[col*m+k] *= d
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := work[r*m+col]
			if numeric.IsZero(f) {
				continue
			}
			for k := 0; k < m; k++ {
				work[r*m+k] -= f * work[col*m+k]
				inv[r*m+k] -= f * inv[col*m+k]
			}
		}
	}
	return inv, true
}

func swapRows(a []float64, m, r1, r2 int) {
	for k := 0; k < m; k++ {
		a[r1*m+k], a[r2*m+k] = a[r2*m+k], a[r1*m+k]
	}
}
