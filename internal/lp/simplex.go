package lp

import (
	"fmt"
	"math"
	"sync"

	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
)

// varState describes where a column currently sits.
type varState uint8

const (
	atLower varState = iota
	atUpper
	isFree // nonbasic free variable, held at value 0
	inBasis
)

// dualStalled is the internal outcome of a dual-simplex warm start that
// made no progress (cycling or numerical trouble); the caller falls back
// to a cold start, so it never escapes the package.
const dualStalled Status = -1

// simplex carries the working state of one solve. Instances are pooled
// (see simplexPool): every slice is capacity-reused across solves, so a
// branch & bound node solve allocates almost nothing beyond its Solution.
type simplex struct {
	opt Options

	n, m int // structural columns, rows

	// Column-major (CSC) matrix over all columns, laid out
	// structural | slack | artificial in flat pooled storage.
	colStart []int32
	colRow   []int32
	colA     []float64

	lo, hi []float64 // working bounds for all columns
	cost   []float64 // phase-dependent cost for all columns
	rhs    []float64 // row right-hand sides (rows as equalities)

	state []varState
	basis []int     // basis[i] = column basic in row i
	xB    []float64 // values of basic variables

	f basisFactor // sparse LU + eta file replacing the dense inverse

	// Per-iteration work vectors (pooled with the struct).
	y       []float64 // simplex multipliers, row space
	rho     []float64 // dual pivot row BTRAN result, row space
	w       []float64 // FTRAN direction, basis-position space
	cB      []float64 // BTRAN input scratch, basis-position space
	scratch []float64 // zeroed row-space FTRAN scratch
	cnt     []int32   // CSC build cursors
	dualD   []float64 // reduced costs maintained across dual pivots, column space
	dualA   []float64 // pivot-row coefficients α_j = ρ·a_j per dual scan, column space

	iters       int
	dualIters   int
	refactors   int  // mid-solve refactorizations (periodic + stability)
	warm        bool // the current solve runs from Options.WarmBasis
	sincePivot  int  // pivots since last refactorization
	degenStreak int  // consecutive (near-)degenerate pivots, drives Bland switch
}

var simplexPool = sync.Pool{New: func() interface{} { return new(simplex) }}

// errSingular reports a numerically broken basis; Solve retries once with
// conservative settings before giving up.
var errSingular = fmt.Errorf("lp: basis became singular")

// Solve minimizes the problem. It returns an error only for malformed input
// or an internal numerical breakdown; infeasibility and unboundedness are
// reported through Solution.Status.
func Solve(p *Problem, opt Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.Presolve && opt.WarmBasis == nil && len(p.Cons) > 0 {
		return solvePresolved(p, opt)
	}
	return solveDirect(p, opt)
}

func solveDirect(p *Problem, opt Options) (*Solution, error) {
	s := simplexPool.Get().(*simplex)
	defer simplexPool.Put(s)
	sol, err := solveOnce(p, opt, s)
	if err == errSingular {
		// Numerical breakdown: retry with frequent refactorization and
		// early Bland pivoting, which is slower but far more stable.
		retry := opt
		retry.Refactor = 16
		retry.BlandAfter = 8
		retry.WarmBasis = nil
		sol, err = solveOnce(p, retry, s)
		if err == errSingular {
			return nil, fmt.Errorf("lp: basis singular even under conservative pivoting")
		}
	}
	if err == nil && opt.Trace.Enabled() {
		if opt.WarmBasis != nil {
			phase := "ok"
			if !sol.Warm {
				phase = "fallback"
			}
			opt.Trace.Emit(obs.Event{
				Kind:  obs.LPWarmStart,
				Iters: sol.DualIters,
				Phase: phase,
			})
		}
		opt.Trace.Emit(obs.Event{
			Kind:    obs.LPSolve,
			Iters:   sol.Iters,
			ItersP1: sol.ItersP1,
			Phase:   sol.Status.String(),
		})
	}
	return sol, err
}

func solveOnce(p *Problem, opt Options, s *simplex) (*Solution, error) {
	m := len(p.Cons)
	opt = opt.withDefaults(m)

	if m == 0 {
		// Pure box problem: each column sits at its cheapest bound.
		x := make([]float64, p.NumCols)
		for j := 0; j < p.NumCols; j++ {
			switch {
			case p.Cost[j] > 0:
				if math.IsInf(p.Lower[j], -1) {
					return &Solution{Status: Unbounded}, nil
				}
				x[j] = p.Lower[j]
			case p.Cost[j] < 0:
				if math.IsInf(p.Upper[j], 1) {
					return &Solution{Status: Unbounded}, nil
				}
				x[j] = p.Upper[j]
			default:
				switch {
				case !math.IsInf(p.Lower[j], -1):
					x[j] = p.Lower[j]
				case !math.IsInf(p.Upper[j], 1):
					x[j] = p.Upper[j]
				}
			}
		}
		return &Solution{Status: Optimal, X: x, Obj: p.Eval(x)}, nil
	}

	s.init(p, opt)

	// Warm path: install the caller's basis, restore primal feasibility
	// with dual simplex pivots under the real cost, then let the shared
	// primal phase below prove optimality (usually zero extra pivots).
	if wb := opt.WarmBasis; wb != nil && s.installWarm(wb) {
		s.setCost(p.Cost)
		st, err := s.dualIterate()
		switch {
		case err != nil:
			return nil, err
		case st == Infeasible:
			return &Solution{Status: Infeasible, Iters: s.iters, Obj: s.primalInfeasibility(),
				Warm: true, DualIters: s.dualIters, Refactors: s.refactors}, nil
		case st == IterLimit:
			return &Solution{Status: IterLimit, Iters: s.iters,
				Warm: true, DualIters: s.dualIters, Refactors: s.refactors}, nil
		case st == dualStalled:
			s.warm = false // fall back to a cold start below
		}
	}

	p1Iters := 0
	if !s.warm {
		// Cold path. Phase 1: minimize the sum of artificial variables.
		if err := s.crash(); err != nil {
			return nil, err
		}
		for j := range s.cost {
			s.cost[j] = 0
		}
		for j := s.n + s.m; j < len(s.cost); j++ {
			s.cost[j] = 1
		}
		st, err := s.iterate()
		if err != nil {
			return nil, err
		}
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: s.iters, ItersP1: s.iters, Refactors: s.refactors}, nil
		}
		p1Iters = s.iters
		if infeas := s.phaseObj(); infeas > 1e-6 {
			// Obj carries the residual infeasibility (sum of artificial
			// values) to help callers distinguish numerical noise from real
			// constraint conflicts.
			return &Solution{Status: Infeasible, Iters: s.iters, ItersP1: p1Iters, Obj: infeas, Refactors: s.refactors}, nil
		}
		// Phase 2: fix artificials at zero and optimize the real cost.
		for j := s.n + s.m; j < len(s.cost); j++ {
			s.lo[j], s.hi[j] = 0, 0
			if s.state[j] != inBasis {
				s.state[j] = atLower
			}
		}
		s.setCost(p.Cost)
	}

	s.degenStreak = 0
	st, err := s.iterate()
	if err != nil {
		return nil, err
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iters: s.iters, ItersP1: p1Iters,
			Warm: s.warm, DualIters: s.dualIters, Refactors: s.refactors}, nil
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iters: s.iters, ItersP1: p1Iters,
			Warm: s.warm, DualIters: s.dualIters, Refactors: s.refactors}, nil
	}

	// Refresh basic values once more for accuracy before extraction.
	if err := s.refactorize(); err != nil {
		return nil, err
	}
	x := make([]float64, p.NumCols)
	for j := 0; j < p.NumCols; j++ {
		x[j] = s.value(j)
	}
	for i, bj := range s.basis {
		if bj < p.NumCols {
			x[bj] = s.xB[i]
		}
	}
	// Clamp tiny bound violations from floating-point drift.
	for j := 0; j < p.NumCols; j++ {
		if x[j] < p.Lower[j] {
			x[j] = p.Lower[j]
		}
		if x[j] > p.Upper[j] {
			x[j] = p.Upper[j]
		}
	}
	sol := &Solution{Status: Optimal, X: x, Obj: p.Eval(x), Iters: s.iters, ItersP1: p1Iters,
		Warm: s.warm, DualIters: s.dualIters, Refactors: s.refactors}
	if opt.WantBasis {
		sol.Basis = s.snapshotBasis()
	}
	return sol, nil
}

// init lays out the CSC matrix (structural | slack | artificial columns),
// bounds and the default nonbasic starting states, reusing pooled storage.
func (s *simplex) init(p *Problem, opt Options) {
	n, m := p.NumCols, len(p.Cons)
	s.opt = opt
	s.n, s.m = n, m
	s.iters, s.dualIters, s.refactors = 0, 0, 0
	s.sincePivot, s.degenStreak = 0, 0
	s.warm = false

	total := n + 2*m
	nnz := 2 * m
	for _, c := range p.Cons {
		nnz += len(c.Idx)
	}
	s.colStart = growI32(s.colStart, total+1)
	s.colRow = growI32(s.colRow, nnz)
	s.colA = growF64(s.colA, nnz)
	s.cnt = growI32(s.cnt, total)
	for j := 0; j < total; j++ {
		s.cnt[j] = 0
	}
	for _, c := range p.Cons {
		for _, j := range c.Idx {
			s.cnt[j]++
		}
	}
	for r := 0; r < m; r++ {
		s.cnt[n+r] = 1
		s.cnt[n+m+r] = 1
	}
	s.colStart[0] = 0
	for j := 0; j < total; j++ {
		s.colStart[j+1] = s.colStart[j] + s.cnt[j]
		s.cnt[j] = s.colStart[j] // becomes the fill cursor
	}
	for r, c := range p.Cons {
		for k, j := range c.Idx {
			q := s.cnt[j]
			s.colRow[q] = int32(r)
			s.colA[q] = c.Val[k]
			s.cnt[j] = q + 1
		}
	}

	s.lo = growF64(s.lo, total)
	s.hi = growF64(s.hi, total)
	s.cost = growF64(s.cost, total)
	s.rhs = growF64(s.rhs, m)
	s.state = growState(s.state, total)
	s.basis = growInt(s.basis, m)
	s.xB = growF64(s.xB, m)
	s.y = growF64(s.y, m)
	s.rho = growF64(s.rho, m)
	s.w = growF64(s.w, m)
	s.cB = growF64(s.cB, m)
	s.scratch = growF64(s.scratch, m)
	s.dualD = growF64(s.dualD, total)
	s.dualA = growF64(s.dualA, total)
	for i := 0; i < m; i++ {
		s.scratch[i] = 0
	}

	copy(s.lo, p.Lower)
	copy(s.hi, p.Upper)
	for r, c := range p.Cons {
		s.rhs[r] = c.RHS
		// Slack column: a·x + s = b with sense-dependent slack bounds.
		sj := n + r
		q := s.colStart[sj]
		s.colRow[q] = int32(r)
		s.colA[q] = 1
		switch c.Op {
		case LE:
			s.lo[sj], s.hi[sj] = 0, math.Inf(1)
		case GE:
			s.lo[sj], s.hi[sj] = math.Inf(-1), 0
		case EQ:
			s.lo[sj], s.hi[sj] = 0, 0
		}
		// Artificial column: unit coefficient, fixed out of play until the
		// cold-start crash decides it is needed (and with which sign).
		aj := n + m + r
		q = s.colStart[aj]
		s.colRow[q] = int32(r)
		s.colA[q] = 1
		s.lo[aj], s.hi[aj] = 0, 0
		s.state[aj] = atLower
	}

	// Nonbasic starting point: nearest finite bound, or 0 for free columns.
	for j := 0; j < n+m; j++ {
		switch {
		case !math.IsInf(s.lo[j], -1):
			s.state[j] = atLower
		case !math.IsInf(s.hi[j], 1):
			s.state[j] = atUpper
		default:
			s.state[j] = isFree
		}
	}
}

// setCost installs the phase-2 objective (structural costs, zeros
// elsewhere).
func (s *simplex) setCost(structural []float64) {
	copy(s.cost[:s.n], structural)
	for j := s.n; j < len(s.cost); j++ {
		s.cost[j] = 0
	}
}

// crash builds the cold-start basis: rows whose residual fits inside the
// slack's bounds get the slack as the basic variable; only violated rows
// need an artificial. This usually leaves phase 1 with little or no work.
func (s *simplex) crash() error {
	n, m := s.n, s.m
	res := s.y // borrow a work vector for the residuals
	copy(res, s.rhs)
	for j := 0; j < n; j++ {
		if v := s.value(j); !numeric.IsZero(v) {
			for q := s.colStart[j]; q < s.colStart[j+1]; q++ {
				res[s.colRow[q]] -= s.colA[q] * v
			}
		}
	}
	for r := 0; r < m; r++ {
		aj := n + m + r
		sj := n + r
		if res[r] >= s.lo[sj]-1e-12 && res[r] <= s.hi[sj]+1e-12 {
			// Slack absorbs the residual; artificial stays fixed at zero.
			s.state[sj] = inBasis
			s.basis[r] = sj
			s.colA[s.colStart[aj]] = 1
			s.lo[aj], s.hi[aj] = 0, 0
			s.state[aj] = atLower
			continue
		}
		// Slack stays nonbasic at the bound nearest the residual; the
		// artificial covers the remaining violation.
		var sv float64
		if res[r] < s.lo[sj] {
			sv = s.lo[sj]
			s.state[sj] = atLower
		} else {
			sv = s.hi[sj]
			s.state[sj] = atUpper
		}
		sign := 1.0
		if res[r]-sv < 0 {
			sign = -1
		}
		s.colA[s.colStart[aj]] = sign
		s.lo[aj], s.hi[aj] = 0, math.Inf(1)
		s.state[aj] = inBasis
		s.basis[r] = aj
	}
	return s.refactorize()
}

// installWarm seeds the solve from a caller-supplied basis snapshot. It
// reports false — leaving the state ready for a cold start — when the
// snapshot has the wrong shape, repeats a column, or factorizes singular.
func (s *simplex) installWarm(b *Basis) bool {
	n, m := s.n, s.m
	if len(b.Basic) != m || len(b.NonBasic) != n+m {
		return false
	}
	for j := 0; j < n+m; j++ {
		st := varState(b.NonBasic[j])
		// Normalize states against the current bounds: branching may have
		// moved a bound since the snapshot, and a nonbasic column must sit
		// at a finite bound (or at zero when genuinely free).
		switch {
		case st == atLower && !math.IsInf(s.lo[j], -1):
		case st == atUpper && !math.IsInf(s.hi[j], 1):
		case !math.IsInf(s.lo[j], -1):
			st = atLower
		case !math.IsInf(s.hi[j], 1):
			st = atUpper
		default:
			st = isFree
		}
		s.state[j] = st
	}
	for i, c := range b.Basic {
		j := int(c)
		if j < 0 || j >= n+m || s.state[j] == inBasis {
			return false
		}
		s.basis[i] = j
		s.state[j] = inBasis
	}
	if err := s.refactorize(); err != nil {
		// Singular snapshot (stale bounds can do this): restore default
		// nonbasic states so the cold-start crash sees a clean slate.
		for j := 0; j < n+m; j++ {
			switch {
			case !math.IsInf(s.lo[j], -1):
				s.state[j] = atLower
			case !math.IsInf(s.hi[j], 1):
				s.state[j] = atUpper
			default:
				s.state[j] = isFree
			}
		}
		return false
	}
	s.warm = true
	return true
}

// snapshotBasis captures the current basis for reuse by a related solve.
// Basic artificials (degenerate at zero) are swapped for their row's slack
// column — same sparsity pattern up to sign, so nonsingularity is
// preserved; if the slack is itself basic elsewhere the snapshot is
// unusable and nil is returned.
func (s *simplex) snapshotBasis() *Basis {
	n, m := s.n, s.m
	b := &Basis{Basic: make([]int32, m), NonBasic: make([]uint8, n+m)}
	for j := 0; j < n+m; j++ {
		b.NonBasic[j] = uint8(s.state[j])
	}
	for i, bj := range s.basis {
		if bj >= n+m {
			sj := n + (bj - n - m)
			if s.state[sj] == inBasis {
				return nil
			}
			b.Basic[i] = int32(sj)
			b.NonBasic[sj] = uint8(inBasis)
			continue
		}
		b.Basic[i] = int32(bj)
	}
	return b
}

// value returns the current value of a nonbasic column.
func (s *simplex) value(j int) float64 {
	switch s.state[j] {
	case atLower:
		return s.lo[j]
	case atUpper:
		return s.hi[j]
	}
	return 0
}

// phaseObj returns the current objective under s.cost.
func (s *simplex) phaseObj() float64 {
	var obj float64
	for j := range s.cost {
		if numeric.IsZero(s.cost[j]) {
			continue
		}
		if s.state[j] == inBasis {
			continue
		}
		obj += s.cost[j] * s.value(j)
	}
	for i, bj := range s.basis {
		obj += s.cost[bj] * s.xB[i]
	}
	return obj
}

// primalInfeasibility sums the bound violations of the basic variables —
// the residual reported with a dual-simplex infeasibility verdict.
func (s *simplex) primalInfeasibility() float64 {
	var sum float64
	for i, bj := range s.basis {
		if d := s.lo[bj] - s.xB[i]; d > 0 {
			sum += d
		}
		if d := s.xB[i] - s.hi[bj]; d > 0 {
			sum += d
		}
	}
	return sum
}

// reducedCost prices column j against the multipliers in s.y.
func (s *simplex) reducedCost(j int) float64 {
	d := s.cost[j]
	for q := s.colStart[j]; q < s.colStart[j+1]; q++ {
		d -= s.y[s.colRow[q]] * s.colA[q]
	}
	return d
}

// ftranColumn computes w = B⁻¹·a_j for matrix column j.
func (s *simplex) ftranColumn(j int) {
	cs, ce := s.colStart[j], s.colStart[j+1]
	s.f.ftran(s.colRow[cs:ce], s.colA[cs:ce], s.w, s.scratch)
}

// multipliers refreshes y = c_Bᵀ·B⁻¹ via BTRAN of the basic costs.
func (s *simplex) multipliers() {
	for i, bj := range s.basis {
		s.cB[i] = s.cost[bj]
	}
	s.f.btran(s.cB, s.y)
}

// iterate runs primal simplex pivots until the current cost is optimal,
// the problem proves unbounded, or the iteration budget runs out.
func (s *simplex) iterate() (Status, error) {
	m := s.m
	total := s.n + 2*m
	for {
		if s.iters >= s.opt.MaxIters {
			return IterLimit, nil
		}
		// Poll for cancellation on a stride: Ctx.Err takes a lock, and a
		// pivot is only O(m + nnz), so checking every iteration would show
		// up.
		if s.opt.Ctx != nil && s.iters%64 == 0 && s.opt.Ctx.Err() != nil {
			return IterLimit, nil
		}
		s.iters++
		bland := s.degenStreak >= s.opt.BlandAfter

		s.multipliers()

		// Pricing: find the entering column.
		enter, dir := -1, 1.0
		bestScore := s.opt.OptTol
		for j := 0; j < total; j++ {
			st := s.state[j]
			// Fixed columns compare their bounds exactly: bounds are set, not
			// computed, and the ±Inf pairs must not trip NaN tolerance math.
			if st == inBasis || s.lo[j] == s.hi[j] { //lint:allow floateq — exact fixed-column check over assigned bounds
				continue
			}
			d := s.reducedCost(j)
			var improving bool
			var dj float64
			switch st {
			case atLower:
				improving, dj = d < -s.opt.OptTol, 1
			case atUpper:
				improving, dj = d > s.opt.OptTol, -1
			case isFree:
				improving = math.Abs(d) > s.opt.OptTol
				if d > 0 {
					dj = -1
				} else {
					dj = 1
				}
			}
			if !improving {
				continue
			}
			if bland {
				enter, dir = j, dj
				break
			}
			if score := math.Abs(d); score > bestScore {
				bestScore, enter, dir = score, j, dj
			}
		}
		if enter < 0 {
			return Optimal, nil
		}

		// Direction w = B⁻¹ a_enter.
		s.ftranColumn(enter)
		w := s.w

		// Ratio test: step t moves the entering column by dir·t; basic
		// values change by −dir·t·w.
		const pivotTol = 1e-9
		span := s.hi[enter] - s.lo[enter]
		tMax, leave := span, -1
		leavePivot := 0.0
		for i := 0; i < m; i++ {
			ci := dir * w[i]
			if math.Abs(ci) <= pivotTol {
				continue
			}
			bj := s.basis[i]
			var limit float64
			if ci > 0 {
				if math.IsInf(s.lo[bj], -1) {
					continue
				}
				limit = (s.xB[i] - s.lo[bj]) / ci
			} else {
				if math.IsInf(s.hi[bj], 1) {
					continue
				}
				limit = (s.hi[bj] - s.xB[i]) / (-ci)
			}
			if limit < 0 {
				limit = 0
			}
			better := limit < tMax-1e-12
			if !better && limit < tMax+1e-12 && leave >= 0 {
				// Tie-break for stability: prefer the larger pivot; under
				// Bland, prefer the smallest column index.
				if bland {
					better = bj < s.basis[leave]
				} else {
					better = math.Abs(w[i]) > math.Abs(leavePivot)
				}
			}
			if better {
				tMax, leave, leavePivot = limit, i, w[i]
			}
		}

		if math.IsInf(tMax, 1) {
			return Unbounded, nil
		}

		if leave < 0 {
			// Bound flip: the entering column traverses its whole interval.
			for i := 0; i < m; i++ {
				s.xB[i] -= dir * tMax * w[i]
			}
			if s.state[enter] == atLower {
				s.state[enter] = atUpper
			} else {
				s.state[enter] = atLower
			}
			s.degenStreak = 0
			continue
		}

		// A tiny pivot on an aged factorization is a stability hazard:
		// refresh the factors and redo the iteration rather than divide.
		if math.Abs(leavePivot) < 1e-7 && s.sincePivot > 0 {
			if err := s.refactorizeTracked(); err != nil {
				return Optimal, err
			}
			continue
		}

		if tMax <= 1e-12 {
			s.degenStreak++
		} else {
			s.degenStreak = 0
		}

		// Pivot: enter replaces basis[leave].
		enterVal := s.value(enter) + dir*tMax
		for i := 0; i < m; i++ {
			if i != leave {
				s.xB[i] -= dir * tMax * w[i]
			}
		}
		left := s.basis[leave]
		if dir*w[leave] > 0 {
			s.state[left] = atLower
		} else {
			s.state[left] = atUpper
		}
		if !s.f.update(w, leave) {
			if err := s.refactorizeTracked(); err != nil {
				return Optimal, err
			}
			continue
		}
		s.basis[leave] = enter
		s.state[enter] = inBasis
		s.xB[leave] = enterVal

		s.sincePivot++
		if s.sincePivot >= s.opt.Refactor {
			if err := s.refactorizeTracked(); err != nil {
				return Optimal, err
			}
		}
	}
}

// dualIterate restores primal feasibility of a warm-started basis with
// dual simplex pivots: repeatedly expel the most bound-violating basic
// variable, choosing the entering column by the dual ratio test. It
// returns Optimal once primal feasible (the caller then runs the primal
// phase to optimality), Infeasible when a violated row admits no entering
// column — a sound infeasibility certificate regardless of dual
// feasibility — and dualStalled when it stops making progress, in which
// case the caller falls back to a cold start.
func (s *simplex) dualIterate() (Status, error) {
	m := s.m
	total := s.n + 2*m
	budget := m + 100
	if budget > s.opt.MaxIters {
		budget = s.opt.MaxIters
	}
	// Reduced costs are maintained across dual pivots (d_j ← d_j − θ_d·α_j
	// after each basis change) instead of being recomputed from a BTRAN of
	// the basic costs every iteration; they are refreshed from scratch
	// whenever the factorization is rebuilt, which bounds drift to one
	// refactorization interval.
	d := s.dualD
	alpha := s.dualA
	dFresh := false
	for {
		if s.iters >= s.opt.MaxIters {
			return IterLimit, nil
		}
		// Same cancellation contract as the primal loop: poll every 64
		// pivots.
		if s.opt.Ctx != nil && s.iters%64 == 0 && s.opt.Ctx.Err() != nil {
			return IterLimit, nil
		}
		if s.dualIters >= budget {
			return dualStalled, nil
		}

		if !dFresh {
			s.multipliers()
			for j := 0; j < total; j++ {
				if s.state[j] == inBasis {
					d[j] = 0
					continue
				}
				d[j] = s.reducedCost(j)
			}
			dFresh = true
		}

		// Leaving choice: the most violated basic variable.
		leave, viol := -1, s.opt.FeasTol
		needUp := false
		for i := 0; i < m; i++ {
			bj := s.basis[i]
			if v := s.lo[bj] - s.xB[i]; v > viol {
				leave, viol, needUp = i, v, true
			}
			if v := s.xB[i] - s.hi[bj]; v > viol {
				leave, viol, needUp = i, v, false
			}
		}
		if leave < 0 {
			return Optimal, nil // primal feasible
		}
		s.iters++
		s.dualIters++

		// Pivot row ρ = e_leaveᵀ·B⁻¹.
		for i := 0; i < m; i++ {
			s.cB[i] = 0
		}
		s.cB[leave] = 1
		s.f.btran(s.cB, s.rho)

		// Entering choice: among columns that can push the violated basic
		// variable back toward its bound, take the smallest dual ratio
		// |d_j|/|α_j| (ties to the larger pivot) so reduced-cost signs are
		// preserved when the basis is dual feasible.
		enter := -1
		bestRatio, bestAbs := math.Inf(1), 0.0
		for j := 0; j < total; j++ {
			st := s.state[j]
			if st == inBasis || s.lo[j] == s.hi[j] { //lint:allow floateq — exact fixed-column check over assigned bounds
				alpha[j] = 0
				continue
			}
			var a float64
			for q := s.colStart[j]; q < s.colStart[j+1]; q++ {
				a += s.rho[s.colRow[q]] * s.colA[q]
			}
			alpha[j] = a
			if math.Abs(a) <= 1e-9 {
				continue
			}
			// xB[leave] changes by −α_j·δ_j. Raising it (needUp) takes
			// α < 0 for a column moving up off its lower bound, α > 0 for
			// one moving down off its upper bound; lowering it is the
			// mirror image. Free columns can move either way.
			eligible := false
			switch st {
			case atLower:
				eligible = (needUp && a < 0) || (!needUp && a > 0)
			case atUpper:
				eligible = (needUp && a > 0) || (!needUp && a < 0)
			case isFree:
				eligible = true
			}
			if !eligible {
				continue
			}
			ratio := math.Abs(d[j]) / math.Abs(a)
			if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && math.Abs(a) > bestAbs) {
				bestRatio, bestAbs, enter = ratio, math.Abs(a), j
			}
		}
		if enter < 0 {
			// The violated row is already at the extreme the nonbasic
			// columns allow: primal infeasible.
			return Infeasible, nil
		}

		// Pivot: FTRAN the entering column for the update and step.
		s.ftranColumn(enter)
		w := s.w
		piv := w[leave]
		if math.Abs(piv) <= 1e-9 {
			// ρ and the dense recomputation disagree — the factorization
			// has drifted. Refresh and retry, or give up if already fresh.
			if s.sincePivot > 0 {
				if err := s.refactorizeTracked(); err != nil {
					return Optimal, err
				}
				dFresh = false
				continue
			}
			return dualStalled, nil
		}
		bj := s.basis[leave]
		var target float64
		if needUp {
			target = s.lo[bj]
		} else {
			target = s.hi[bj]
		}
		delta := (s.xB[leave] - target) / piv
		enterVal := s.value(enter) + delta
		if !s.f.update(w, leave) {
			// Abort the pivot before touching any simplex state so the
			// refreshed factorization restarts from a consistent basis.
			if err := s.refactorizeTracked(); err != nil {
				return Optimal, err
			}
			dFresh = false
			continue
		}
		for i := 0; i < m; i++ {
			if i != leave {
				s.xB[i] -= delta * w[i]
			}
		}
		// Dual update: y moves by θ_d·ρ, so every nonbasic reduced cost
		// drops by θ_d·α_j; the leaving variable picks up d = −θ_d (its
		// pivot-row coefficient is exactly 1) and the entering one zeroes.
		thetaD := d[enter] / alpha[enter]
		if thetaD != 0 { //lint:allow floateq — exact guard: a zero dual step leaves every reduced cost untouched
			for j := 0; j < total; j++ {
				if s.state[j] == inBasis || alpha[j] == 0 { //lint:allow floateq — exact guard: α was assigned 0 for skipped columns
					continue
				}
				d[j] -= thetaD * alpha[j]
			}
		}
		if needUp {
			s.state[bj] = atLower
		} else {
			s.state[bj] = atUpper
		}
		s.basis[leave] = enter
		s.state[enter] = inBasis
		s.xB[leave] = enterVal
		d[bj] = -thetaD
		d[enter] = 0

		if math.Abs(delta) <= 1e-12 {
			s.degenStreak++
			if s.degenStreak > 4*s.opt.BlandAfter {
				return dualStalled, nil
			}
		} else {
			s.degenStreak = 0
		}
		s.sincePivot++
		if s.sincePivot >= s.opt.Refactor {
			if err := s.refactorizeTracked(); err != nil {
				return Optimal, err
			}
			dFresh = false
		}
	}
}

// refactorize rebuilds the sparse factorization from the current basis and
// refreshes the basic variable values xB = B⁻¹(b − N·x_N).
func (s *simplex) refactorize() error {
	ok := s.f.factorize(s.m, func(i int) ([]int32, []float64) {
		j := s.basis[i]
		return s.colRow[s.colStart[j]:s.colStart[j+1]], s.colA[s.colStart[j]:s.colStart[j+1]]
	})
	if !ok {
		return errSingular
	}
	eff := s.cB // borrow: same length m, overwritten by the next BTRAN anyway
	copy(eff, s.rhs)
	for j := range s.cost {
		if s.state[j] == inBasis {
			continue
		}
		if v := s.value(j); !numeric.IsZero(v) {
			for q := s.colStart[j]; q < s.colStart[j+1]; q++ {
				eff[s.colRow[q]] -= s.colA[q] * v
			}
		}
	}
	s.f.ftranDense(eff, s.xB, s.scratch)
	s.sincePivot = 0
	return nil
}

// refactorizeTracked is the mid-solve refactorization path: it counts the
// refresh and reports it to the trace (the initial and final factorization
// of a solve are bookkeeping, not events).
func (s *simplex) refactorizeTracked() error {
	pivots := s.sincePivot
	if err := s.refactorize(); err != nil {
		return err
	}
	s.refactors++
	if s.opt.Trace.Enabled() {
		s.opt.Trace.Emit(obs.Event{Kind: obs.LPRefactor, Iters: pivots})
	}
	return nil
}

func growState(s []varState, n int) []varState {
	if cap(s) < n {
		return make([]varState, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
