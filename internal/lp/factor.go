package lp

import (
	"math"

	"nocdeploy/internal/numeric"
)

// basisFactor is a sparse factorization of the simplex basis: a
// Gilbert–Peierls LU decomposition P·B·Q = L·U of the basis at the last
// refactorization, plus a product-form (PFI) eta file recording every
// pivot since. FTRAN/BTRAN solve against the factors and the eta file in
// O(m + nnz) instead of the O(m²) dense-inverse products the solver used
// before, and the per-pivot update appends one sparse eta vector instead
// of rewriting an m×m inverse.
//
// Index spaces, fixed by construction and used consistently below:
//
//   - "row" indices are original constraint rows (the scatter space of
//     column data and of BTRAN results);
//   - "position" indices are basis positions i (basis[i] = basic column);
//   - "pivot" indices p order the elimination: pivRow[p] is the original
//     row eliminated p-th, colPos[p] the basis position of the column that
//     eliminated it (the column permutation Q, chosen sparsest-first so
//     slack-heavy bases factor with almost no fill).
//
// All storage is flat and append-grown, so a pooled basisFactor reuses its
// backing arrays across refactorizations and across solves.
type basisFactor struct {
	m int

	// L: unit lower triangular by pivot column p. Entries sit on original
	// rows that are eliminated after p (rowPos[lRow] > p always).
	lStart []int32
	lRow   []int32
	lVal   []float64

	// U by factor column t (elimination order). Off-diagonal entries pair
	// (pivot position p < t, value); the diagonal is stored separately.
	uStart []int32
	uPos   []int32
	uVal   []float64
	uDiag  []float64

	pivRow []int32 // pivot order -> original row
	rowPos []int32 // original row -> pivot order; -1 while unpivoted
	colPos []int32 // factor column t -> basis position (the permutation Q)
	posCol []int32 // basis position -> factor column

	// Eta file: one entry per pivot since the last refactorization. Eta e
	// replaces basis position etaR[e] with the FTRAN direction w recorded
	// sparsely (etaPiv[e] = w[etaR[e]], off-pivot entries in etaIdx/etaVal).
	etaStart []int32
	etaIdx   []int32
	etaVal   []float64
	etaR     []int32
	etaPiv   []float64

	// Factorization scratch, kept with the factor so refactorization
	// allocates nothing once grown.
	x       []float64 // dense accumulator, row space
	order   []int32   // reverse-postorder DFS output
	stackR  []int32   // DFS stack: row
	stackC  []int32   // DFS stack: child cursor
	visited []int32   // DFS stamp per row
	stamp   int32
	nnzBuf  []int32 // column-nnz counting-sort buckets scratch
}

// pivotTolFactor rejects pivots smaller than this during elimination; a
// basis whose every candidate pivot is below it is reported singular.
const factorPivotTol = 1e-11

// reset prepares the factor for a basis of m rows, growing (never
// shrinking) its buffers.
func (f *basisFactor) reset(m int) {
	f.m = m
	f.lStart = growI32(f.lStart, m+1)[:1]
	f.lStart[0] = 0
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uStart = growI32(f.uStart, m+1)[:1]
	f.uStart[0] = 0
	f.uPos = f.uPos[:0]
	f.uVal = f.uVal[:0]
	f.uDiag = growF64(f.uDiag, m)[:0]
	f.pivRow = growI32(f.pivRow, m)[:0]
	f.rowPos = growI32(f.rowPos, m)[:m]
	f.colPos = growI32(f.colPos, m)[:0]
	f.posCol = growI32(f.posCol, m)[:m]
	f.clearEtas()
	f.x = growF64(f.x, m)[:m]
	f.order = growI32(f.order, m)[:m]
	f.stackR = growI32(f.stackR, m)[:m]
	f.stackC = growI32(f.stackC, m)[:m]
	if cap(f.visited) < m {
		f.visited = make([]int32, m)
		f.stamp = 0
	}
	f.visited = f.visited[:m]
	for i := 0; i < m; i++ {
		f.rowPos[i] = -1
		f.x[i] = 0
	}
}

// clearEtas drops the eta file (after a refactorization).
func (f *basisFactor) clearEtas() {
	f.etaStart = growI32(f.etaStart, 1)[:1]
	f.etaStart[0] = 0
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
	f.etaR = f.etaR[:0]
	f.etaPiv = f.etaPiv[:0]
}

// nEtas reports how many pivots the eta file currently carries.
func (f *basisFactor) nEtas() int { return len(f.etaR) }

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// factorize computes P·B·Q = L·U for the basis whose columns are delivered
// by col(i) (sparse, row-space indices) for basis positions i = 0..m-1.
// Columns are eliminated sparsest-first (a stable counting sort on nnz),
// which keeps fill near zero on the slack-dominated bases branch & bound
// produces. It reports false on a (near-)singular basis.
func (f *basisFactor) factorize(m int, col func(i int) ([]int32, []float64)) bool {
	f.reset(m)

	// Column order: stable counting sort by nnz ascending. Deterministic —
	// equal-nnz columns keep basis-position order — so factorization, and
	// with it every pivot the solver takes, is reproducible run to run.
	const maxBucket = 64
	buckets := growI32(f.nnzBuf, maxBucket+1)
	for b := range buckets {
		buckets[b] = 0
	}
	for i := 0; i < m; i++ {
		idx, _ := col(i)
		b := len(idx)
		if b > maxBucket {
			b = maxBucket
		}
		buckets[b]++
	}
	var sum int32
	for b := 0; b <= maxBucket; b++ {
		c := buckets[b]
		buckets[b] = sum
		sum += c
	}
	f.colPos = f.colPos[:m]
	for i := 0; i < m; i++ {
		idx, _ := col(i)
		b := len(idx)
		if b > maxBucket {
			b = maxBucket
		}
		f.colPos[buckets[b]] = int32(i)
		buckets[b]++
	}
	f.nnzBuf = buckets

	for t := 0; t < m; t++ {
		pos := f.colPos[t]
		idx, val := col(int(pos))
		if !f.eliminate(t, idx, val) {
			return false
		}
		f.posCol[pos] = int32(t)
	}
	return true
}

// eliminate performs one Gilbert–Peierls step: sparse-solve
// x = L⁻¹·(column), pick a partial pivot among unpivoted rows, and append
// the resulting L column and U column.
func (f *basisFactor) eliminate(t int, idx []int32, val []float64) bool {
	m := f.m
	f.stamp++
	stamp := f.stamp
	ordTop := m // f.order[ordTop:] is the reverse-postorder pattern

	// DFS from every nonzero row of the column through the L graph: an
	// edge leads from a pivoted row to the rows of its L column.
	for _, seed := range idx {
		if f.visited[seed] == stamp {
			continue
		}
		sp := 0
		f.stackR[0] = seed
		f.stackC[0] = 0
		f.visited[seed] = stamp
		for sp >= 0 {
			r := f.stackR[sp]
			p := f.rowPos[r]
			advanced := false
			if p >= 0 {
				for c := f.stackC[sp]; c < f.lStart[p+1]-f.lStart[p]; c++ {
					child := f.lRow[f.lStart[p]+c]
					if f.visited[child] != stamp {
						f.visited[child] = stamp
						f.stackC[sp] = c + 1
						sp++
						f.stackR[sp] = child
						f.stackC[sp] = 0
						advanced = true
						break
					}
				}
			}
			if advanced {
				continue
			}
			ordTop--
			f.order[ordTop] = r
			sp--
		}
	}

	// Numeric phase over the topological order.
	for k, r := range idx {
		f.x[r] = val[k]
	}
	for k := ordTop; k < m; k++ {
		r := f.order[k]
		p := f.rowPos[r]
		if p < 0 {
			continue
		}
		v := f.x[r]
		if numeric.IsZero(v) {
			continue
		}
		for q := f.lStart[p]; q < f.lStart[p+1]; q++ {
			f.x[f.lRow[q]] -= f.lVal[q] * v
		}
	}

	// Partial pivot among unpivoted rows of the pattern.
	pivRow, pivAbs := int32(-1), factorPivotTol
	for k := ordTop; k < m; k++ {
		r := f.order[k]
		if f.rowPos[r] >= 0 {
			continue
		}
		if a := math.Abs(f.x[r]); a > pivAbs {
			pivRow, pivAbs = r, a
		}
	}
	if pivRow < 0 {
		for k := ordTop; k < m; k++ {
			f.x[f.order[k]] = 0
		}
		return false
	}
	d := f.x[pivRow]

	// Emit U (entries on already-pivoted rows) and L (on later rows).
	for k := ordTop; k < m; k++ {
		r := f.order[k]
		v := f.x[r]
		f.x[r] = 0
		if numeric.IsZero(v) {
			continue
		}
		if p := f.rowPos[r]; p >= 0 {
			f.uPos = append(f.uPos, p)
			f.uVal = append(f.uVal, v)
		} else if r != pivRow {
			f.lRow = append(f.lRow, r)
			f.lVal = append(f.lVal, v/d)
		}
	}
	f.uDiag = append(f.uDiag, d)
	f.uStart = append(f.uStart, int32(len(f.uPos)))
	f.lStart = append(f.lStart, int32(len(f.lRow)))
	f.pivRow = append(f.pivRow, pivRow)
	f.rowPos[pivRow] = int32(t)
	return true
}

// ftran solves B·w = a for a sparse right-hand side in row space. The
// result is written densely into w (basis-position space, length m);
// scratch must be a zeroed length-m row-space buffer and is returned
// zeroed again.
func (f *basisFactor) ftran(idx []int32, val []float64, w, scratch []float64) {
	x := scratch
	for k, r := range idx {
		x[r] = val[k]
	}
	f.solveScattered(x, w)
}

// ftranDense solves B·w = b for a dense row-space right-hand side b;
// scratch obeys the same zeroed-in/zeroed-out contract as in ftran.
func (f *basisFactor) ftranDense(b, w, scratch []float64) {
	copy(scratch[:f.m], b[:f.m])
	f.solveScattered(scratch, w)
}

// solveScattered is the FTRAN body: x holds the right-hand side scattered
// in row space and is returned zeroed; w receives the dense solution in
// basis-position space.
func (f *basisFactor) solveScattered(x, w []float64) {
	m := f.m
	// L solve in pivot order; x stays in row space.
	for p := 0; p < m; p++ {
		v := x[f.pivRow[p]]
		if numeric.IsZero(v) {
			continue
		}
		for q := f.lStart[p]; q < f.lStart[p+1]; q++ {
			x[f.lRow[q]] -= f.lVal[q] * v
		}
	}
	// Gather into factor-column space and back-substitute U in place.
	for t := 0; t < m; t++ {
		w[t] = x[f.pivRow[t]]
		x[f.pivRow[t]] = 0
	}
	for t := m - 1; t >= 0; t-- {
		v := w[t]
		if numeric.IsZero(v) {
			w[t] = 0
			continue
		}
		v /= f.uDiag[t]
		w[t] = v
		for q := f.uStart[t]; q < f.uStart[t+1]; q++ {
			w[f.uPos[q]] -= f.uVal[q] * v
		}
	}
	// Permute factor columns back to basis positions, reusing x (now
	// zeroed) as the staging buffer.
	for t := 0; t < m; t++ {
		x[f.colPos[t]] = w[t]
	}
	copy(w, x[:m])
	for i := 0; i < m; i++ {
		x[i] = 0
	}
	// Eta file, oldest first: w ← E_e⁻¹ w.
	f.applyEtas(w)
}

// applyEtas applies the eta-file inverses to a basis-position vector,
// oldest eta first — the FTRAN tail shared by warm and incremental solves.
func (f *basisFactor) applyEtas(w []float64) {
	for e := 0; e < len(f.etaR); e++ {
		r := f.etaR[e]
		t := w[r] / f.etaPiv[e]
		if !numeric.IsZero(t) {
			for q := f.etaStart[e]; q < f.etaStart[e+1]; q++ {
				w[f.etaIdx[q]] -= f.etaVal[q] * t
			}
		}
		w[r] = t
	}
}

// btran solves Bᵀ·y = c. c is dense in basis-position space (length m) and
// is consumed as scratch; y (length m, row space) receives the result.
func (f *basisFactor) btran(c, y []float64) {
	m := f.m
	// Eta transposes, newest first: c ← E_eᵀ⁻¹ c.
	for e := len(f.etaR) - 1; e >= 0; e-- {
		r := f.etaR[e]
		s := c[r]
		for q := f.etaStart[e]; q < f.etaStart[e+1]; q++ {
			s -= f.etaVal[q] * c[f.etaIdx[q]]
		}
		c[r] = s / f.etaPiv[e]
	}
	// Permute basis positions to factor columns via y as staging.
	for t := 0; t < m; t++ {
		y[t] = c[f.colPos[t]]
	}
	copy(c[:m], y[:m])
	// Uᵀ forward solve in place (factor-column space).
	for t := 0; t < m; t++ {
		s := c[t]
		for q := f.uStart[t]; q < f.uStart[t+1]; q++ {
			s -= f.uVal[q] * c[f.uPos[q]]
		}
		c[t] = s / f.uDiag[t]
	}
	// Lᵀ backward solve in place (pivot-order space).
	for p := m - 1; p >= 0; p-- {
		s := c[p]
		for q := f.lStart[p]; q < f.lStart[p+1]; q++ {
			s -= f.lVal[q] * c[f.rowPos[f.lRow[q]]]
		}
		c[p] = s
	}
	// Scatter to row space.
	for p := 0; p < m; p++ {
		y[f.pivRow[p]] = c[p]
	}
}

// update appends one PFI eta for a pivot at basis position r with FTRAN
// direction w. It reports false when the pivot element is numerically too
// small to divide by — the caller must refactorize instead.
func (f *basisFactor) update(w []float64, r int) bool {
	piv := w[r]
	if math.Abs(piv) < factorPivotTol {
		return false
	}
	for i, v := range w {
		if i == r || numeric.IsZero(v) {
			continue
		}
		f.etaIdx = append(f.etaIdx, int32(i))
		f.etaVal = append(f.etaVal, v)
	}
	f.etaStart = append(f.etaStart, int32(len(f.etaIdx)))
	f.etaR = append(f.etaR, int32(r))
	f.etaPiv = append(f.etaPiv, piv)
	return true
}
