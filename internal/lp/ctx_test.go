package lp

import (
	"context"
	"math/rand"
	"testing"
)

// randomDense returns a feasible random LP big enough to need a healthy
// number of pivots.
func randomDense(seed int64, n, rows int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetBounds(j, 0, 100)
		p.Cost[j] = rng.NormFloat64()
	}
	for r := 0; r < rows; r++ {
		var idx []int
		var val []float64
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				idx = append(idx, j)
				val = append(val, rng.NormFloat64())
			}
		}
		p.AddConstraint(idx, val, LE, 10+rng.Float64()*10)
	}
	return p
}

// A context cancelled before the solve starts must stop the pivot loop on
// its first poll and surface as IterLimit.
func TestCancelledContextStopsSolve(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := Solve(randomDense(7, 50, 40), Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Errorf("status %v with a cancelled context, want IterLimit", sol.Status)
	}
	if sol.Iters > 64 {
		t.Errorf("%d iterations ran after cancellation, want at most one poll stride", sol.Iters)
	}
}

// A live context must not perturb the solve: same status, objective and
// iteration count as the context-free run.
func TestLiveContextMatchesPlainSolve(t *testing.T) {
	plain, err := Solve(randomDense(7, 50, 40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Solve(randomDense(7, 50, 40), Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != withCtx.Status || plain.Iters != withCtx.Iters {
		t.Errorf("ctx run (%v, %d iters) differs from plain run (%v, %d iters)",
			withCtx.Status, withCtx.Iters, plain.Status, plain.Iters)
	}
	if plain.Status == Optimal && plain.Obj != withCtx.Obj { //lint:allow floateq — identical pivot sequences must agree bit-for-bit
		t.Errorf("ctx run objective %g differs from plain %g", withCtx.Obj, plain.Obj)
	}
}
