package exp

import (
	"fmt"

	"nocdeploy/internal/core"
)

// RunFig2f reproduces Fig. 2(f): solver computation time vs task count —
// the exact method's time explodes with M while the heuristic's stays
// negligible.
func RunFig2f(cfg Config) (*Table, error) {
	ms := []int{2, 3, 4, 5}
	if !cfg.Quick {
		ms = append(ms, 6)
	}
	reps := cfg.reps(3)
	t := &Table{
		Title:  "Fig 2(f): computation time vs task count M",
		Note:   fmt.Sprintf("optimal capped at %v per solve (censored entries marked >)", cfg.timeLimit()),
		Header: []string{"M", "t(optimal)", "t(heuristic)", "nodes", "proven"},
	}
	type result struct {
		tOpt, tHeu float64
		nodes      int
		proven     bool
	}
	cells, err := evalGrid(cfg, len(ms), reps, func(point, rep int) (result, error) {
		var r result
		s, err := Build(smallOptimal(ms[point], 1.2, cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		_, hinfo, err := core.Heuristic(s, core.Options{}, 1)
		if err != nil {
			return r, err
		}
		r.tHeu = hinfo.Runtime.Seconds()
		_, oinfo, err := solveOptimalWarm(s, core.Options{}, cfg)
		if err != nil {
			return r, err
		}
		r.tOpt = oinfo.Runtime.Seconds()
		r.nodes = oinfo.Nodes
		r.proven = oinfo.Runtime < cfg.timeLimit()
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, m := range ms {
		var tOpt, tHeu []float64
		nodes, proven := 0, 0
		capped := false
		for _, r := range cells[point] {
			tOpt = append(tOpt, r.tOpt)
			tHeu = append(tHeu, r.tHeu)
			nodes += r.nodes
			if r.proven {
				proven++
			} else {
				capped = true
			}
		}
		optStr := fmt.Sprintf("%.3gs", mean(tOpt))
		if capped {
			optStr = ">" + optStr
		}
		t.AddRow(fmt.Sprintf("%d", m), optStr,
			fmt.Sprintf("%.3gms", 1000*mean(tHeu)),
			fmt.Sprintf("%d", nodes/reps),
			fmt.Sprintf("%d/%d", proven, reps))
	}
	return t, nil
}

// RunFig2g reproduces Fig. 2(g): energy of the heuristic vs the optimal
// solution — the heuristic is higher by an acceptable margin (the paper
// reports ~26% on average).
func RunFig2g(cfg Config) (*Table, error) {
	ms := []int{2, 3, 4}
	if !cfg.Quick {
		ms = append(ms, 5)
	}
	reps := cfg.reps(6)
	t := &Table{
		Title:  "Fig 2(g): energy of heuristic vs optimal (max per-processor energy, J)",
		Note:   "alpha=1.0, comm-heavy (6x payloads, 30x NoC energy); 'paper-est' is Algorithm 2 with the paper's constant comm estimate, 'ours' the path-averaged variant (DESIGN.md); instances where all are feasible",
		Header: []string{"M", "E(optimal)", "E(paper-est)", "gap", "E(ours)", "gap"},
	}
	type result struct {
		eOpt, ePap, eOur float64
		ok               bool
	}
	cells, err := evalGrid(cfg, len(ms), reps, func(point, rep int) (result, error) {
		var r result
		p := smallOptimal(ms[point], 1.0, cfg.instanceSeed(point, rep))
		p.BytesScale = 6
		p.MuScale = 30
		s, err := Build(p)
		if err != nil {
			return r, err
		}
		_, paperInfo, err := core.HeuristicWithRepair(s, core.Options{CommEstimate: core.EstimateConstant}, 1, 0)
		if err != nil {
			return r, err
		}
		_, oursInfo, err := core.HeuristicWithRepair(s, core.Options{}, 1, 0)
		if err != nil {
			return r, err
		}
		_, oinfo, err := solveOptimalWarm(s, core.Options{}, cfg)
		if err != nil {
			return r, err
		}
		if !paperInfo.Feasible || !oursInfo.Feasible || !oinfo.Feasible {
			return r, nil
		}
		r.eOpt, r.ePap, r.eOur, r.ok = oinfo.Objective, paperInfo.Objective, oursInfo.Objective, true
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, m := range ms {
		var eOpt, ePap, eOur []float64
		for _, r := range cells[point] {
			if r.ok {
				eOpt = append(eOpt, r.eOpt)
				ePap = append(ePap, r.ePap)
				eOur = append(eOur, r.eOur)
			}
		}
		gapP, gapO := "", ""
		if mean(eOpt) > 0 {
			gapP = pct((mean(ePap) - mean(eOpt)) / mean(eOpt))
			gapO = pct((mean(eOur) - mean(eOpt)) / mean(eOpt))
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(mean(eOpt)), f3(mean(ePap)), gapP, f3(mean(eOur)), gapO)
	}
	return t, nil
}
