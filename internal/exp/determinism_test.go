package exp

import (
	"bytes"
	"io"
	"regexp"
	"testing"
	"time"

	"nocdeploy/internal/obs"
)

// durationCell matches cells whose value is a measured wall-clock time
// (e.g. "0.123s", ">1.2s", "0.04ms", "1.2e+03ms"). These are the only
// table cells that legitimately differ between two runs of the same
// configuration: everything else — feasibility counts, energies, node
// counts, duplication counts — is a pure function of (Seed, point, trial)
// once solver termination is bounded by MaxNodes instead of wall clock.
var durationCell = regexp.MustCompile(`^>?[0-9]+(\.[0-9]+)?(e[+-]?[0-9]+)?(ns|µs|us|ms|s)$`)

// canonical renders the table with measured-runtime cells masked, so two
// renders of the same deterministic computation compare byte-identical.
// Masking happens on the Table (not the rendered text) so column widths
// cannot leak timing differences into the alignment.
func canonical(t *Table) string {
	masked := &Table{Title: t.Title, Note: t.Note, Header: t.Header}
	for _, row := range t.Rows {
		out := make([]string, len(row))
		for i, c := range row {
			if durationCell.MatchString(c) {
				c = "<time>"
			}
			out[i] = c
		}
		masked.Rows = append(masked.Rows, out)
	}
	var buf bytes.Buffer
	masked.Fprint(&buf)
	return buf.String()
}

// detCfg bounds exact solves by node count, not wall clock, so every
// figure runner terminates deterministically: the generous TimeLimit is
// never the binding limit. The budget is deliberately small enough to
// bind on the hard instances — that is what makes the sweep cheap — and
// determinism holds for any budget.
func detCfg() Config {
	return Config{Seed: 3, Quick: true, TimeLimit: time.Minute, MaxNodes: 15}
}

// TestRunnersDeterministicAcrossParallelism is the determinism contract
// of DESIGN.md: every figure table is byte-identical between a serial run
// (Parallel=1) and a heavily oversubscribed parallel run (Parallel=8),
// modulo the measured wall-clock cells masked by canonical.
func TestRunnersDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep is slow")
	}
	for _, r := range Runners() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			// The race-instrumented build checks a representative pair and
			// leaves the full 8-figure byte-identity contract to the plain
			// build: race coverage of the worker pool already comes from
			// the smoke tests (every runner at Parallel=0), and the
			// 5–10× race slowdown would blow the CI shard budget.
			if raceDetector && r.Name != "2d" && r.Name != "2g" {
				t.Skipf("race build: determinism sweep restricted to 2d/2g")
			}
			serial := detCfg()
			serial.Parallel = 1
			parallel := detCfg()
			parallel.Parallel = 8

			ts, err := r.Run(serial)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			tp, err := r.Run(parallel)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			want, got := canonical(ts), canonical(tp)
			if want != got {
				t.Errorf("table differs between Parallel=1 and Parallel=8:\n--- serial\n%s\n--- parallel\n%s", want, got)
			}
		})
	}
}

// The zero-parallelism default (all cores) must agree with serial too;
// one runner suffices since the fan-out path is shared.
func TestDefaultParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep is slow")
	}
	serial := detCfg()
	serial.Parallel = 1
	ts, err := RunFig2h(serial)
	if err != nil {
		t.Fatal(err)
	}
	def := detCfg() // Parallel: 0 → GOMAXPROCS
	td, err := RunFig2h(def)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(ts) != canonical(td) {
		t.Errorf("Parallel=0 (all cores) table differs from serial:\n%s\nvs\n%s", canonical(td), canonical(ts))
	}
}

// TestDeterminismTracingInvariance is the observability half of the
// determinism contract: attaching a live trace (JSONL sink plus metrics
// fold) must not change a single table byte, at any parallelism. Solvers
// only ever write to the trace, never read from it — this test is what
// keeps that one-way rule honest.
func TestDeterminismTracingInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep is slow")
	}
	ref := detCfg()
	ref.Parallel = 1
	tref, err := RunFig2h(ref)
	if err != nil {
		t.Fatalf("untraced reference run: %v", err)
	}
	want := canonical(tref)

	for _, par := range []int{1, 8} {
		cfg := detCfg()
		cfg.Parallel = par
		m := obs.NewMetrics()
		tr := obs.New(obs.NewJSONLSink(io.Discard), obs.NewMetricsSink(m))
		cfg.Trace = tr
		tt, err := RunFig2h(cfg)
		if err != nil {
			t.Fatalf("traced run (Parallel=%d): %v", par, err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("closing trace (Parallel=%d): %v", par, err)
		}
		if got := canonical(tt); got != want {
			t.Errorf("tracing perturbed the table at Parallel=%d:\n--- untraced\n%s\n--- traced\n%s", par, want, got)
		}
		// The trace must actually have observed the run, or the check above
		// proves nothing.
		snap := m.Snapshot()
		if snap.Counters["pool.tasks"] == 0 {
			t.Errorf("Parallel=%d: trace saw no pool tasks; instrumentation is disconnected", par)
		}
		if snap.Counters["bb.nodes"] == 0 {
			t.Errorf("Parallel=%d: trace saw no branch & bound nodes", par)
		}
	}

	// Engine path: the portfolio runner folds an entire ALNS solve into
	// each grid cell, so it is the densest source of engine.* events —
	// tracing it must be just as invisible, and the metrics fold must see
	// the engine taxonomy.
	if raceDetector {
		t.Skip("race build: engine invariance leg left to the plain build (engine worker-pool race coverage comes from internal/engine's own tests)")
	}
	eref := detCfg()
	eref.Parallel = 1
	tref2, err := RunPortfolio(eref)
	if err != nil {
		t.Fatalf("untraced portfolio reference run: %v", err)
	}
	wantEng := canonical(tref2)
	for _, par := range []int{1, 8} {
		cfg := detCfg()
		cfg.Parallel = par
		m := obs.NewMetrics()
		tr := obs.New(obs.NewJSONLSink(io.Discard), obs.NewMetricsSink(m))
		cfg.Trace = tr
		tt, err := RunPortfolio(cfg)
		if err != nil {
			t.Fatalf("traced portfolio run (Parallel=%d): %v", par, err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("closing trace (Parallel=%d): %v", par, err)
		}
		if got := canonical(tt); got != wantEng {
			t.Errorf("tracing perturbed the portfolio table at Parallel=%d:\n--- untraced\n%s\n--- traced\n%s", par, wantEng, got)
		}
		snap := m.Snapshot()
		if snap.Counters["engine.iters"] == 0 {
			t.Errorf("Parallel=%d: trace saw no engine rounds; portfolio instrumentation is disconnected", par)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero Config must validate, got %v", err)
	}
	if err := (Config{Parallel: 8, MaxNodes: 10, TimeLimit: time.Second}).Validate(); err != nil {
		t.Errorf("valid Config rejected: %v", err)
	}
	for _, bad := range []Config{{Parallel: -1}, {MaxNodes: -2}, {TimeLimit: -time.Second}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Config %+v must be rejected", bad)
		}
	}
	// Validation is enforced on the single shared path every runner uses.
	bad := Config{Seed: 1, Quick: true, Parallel: -4}
	if _, err := RunFig2h(bad); err == nil {
		t.Error("runner accepted a negative Parallel")
	}
}
