package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nocdeploy/internal/core"
)

// tinyCfg keeps smoke tests fast: tiny time limits still exercise every
// code path (solves simply come back unproven).
func tinyCfg() Config {
	return Config{Seed: 1, Quick: true, TimeLimit: 500 * time.Millisecond}
}

func TestBuildInstance(t *testing.T) {
	s, err := Build(smallOptimal(4, 1.0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Mesh.N() != 4 || s.Graph.M() != 4 || s.Plat.L() != 3 {
		t.Errorf("instance dims: N=%d M=%d L=%d", s.Mesh.N(), s.Graph.M(), s.Plat.L())
	}
	if s.H <= 0 {
		t.Errorf("horizon %g", s.H)
	}
	// Level trimming must preserve the frequency extremes.
	full, err := Build(paperScale(4, 1.0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Plat.Fmin() != full.Plat.Fmin() || s.Plat.Fmax() != full.Plat.Fmax() {
		t.Error("trimmed level table changed the frequency range")
	}
}

func TestBuildMuAndGammaKnobs(t *testing.T) {
	base, err := Build(smallOptimal(4, 1.0, 1))
	if err != nil {
		t.Fatal(err)
	}
	p := smallOptimal(4, 1.0, 1)
	p.MuScale = 10
	scaled, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Mesh.MaxEnergyPerByte() <= 5*base.Mesh.MaxEnergyPerByte() {
		t.Error("MuScale had no effect on communication energy")
	}
	p = smallOptimal(4, 1.0, 1)
	p.Gamma = 2.5
	stretched, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if stretched.Plat.Epsilon() <= base.Plat.Epsilon() {
		t.Error("Gamma had no effect on epsilon")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col", "value"},
	}
	tbl.AddRow("a", "1")
	tbl.AddRow("bb", "22")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a note", "col", "bb"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// Each runner must produce a well-formed table even at tiny budgets.
func TestRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	for _, r := range append(Runners(), ExtensionRunners()...) {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			tbl, err := r.Run(tinyCfg())
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("runner produced no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row width %d != header %d", len(row), len(tbl.Header))
				}
			}
		})
	}
}

// The heuristic-scale BE/ME comparison must show ME no worse in total
// energy (it directly minimizes that total, from the same decomposition).
func TestBEvsMEDirection(t *testing.T) {
	var be, me []float64
	for rep := int64(0); rep < 6; rep++ {
		s, err := Build(paperScale(18, 1.2, rep))
		if err != nil {
			t.Fatal(err)
		}
		dBE, iBE, err := core.Heuristic(s, core.Options{Objective: core.BalanceEnergy}, 1)
		if err != nil {
			t.Fatal(err)
		}
		dME, iME, err := core.Heuristic(s, core.Options{Objective: core.MinimizeEnergy}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !iBE.Feasible || !iME.Feasible {
			continue
		}
		mBE, err := core.ComputeMetrics(s, dBE)
		if err != nil {
			t.Fatal(err)
		}
		mME, err := core.ComputeMetrics(s, dME)
		if err != nil {
			t.Fatal(err)
		}
		be = append(be, mBE.SumEnergy)
		me = append(me, mME.SumEnergy)
	}
	if len(be) == 0 {
		t.Skip("no commonly-feasible instances at this scale")
	}
	if mean(me) > mean(be)*1.02 {
		t.Errorf("ME average total %g notably worse than BE %g", mean(me), mean(be))
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("1", "x,y")
	tbl.AddRow("2", `say "hi"`)
	got := tbl.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}
