package exp

import (
	"context"
	"fmt"

	"nocdeploy/internal/core"
	"nocdeploy/internal/engine"
)

// RunPortfolio compares the anytime ALNS portfolio engine against its own
// starting point, the repaired heuristic, at the exact-sweep scale where
// the budgeted-exact repair operators can bite. The engine is seeded per
// cell and runs a fixed round/batch schedule with the exact budget tied to
// cfg.MaxNodes, so the table is a pure function of the Config — the same
// determinism contract as every other runner. The portfolio row can never
// be worse than the repair row: the engine starts from that incumbent and
// only accepts validated improvements.
func RunPortfolio(cfg Config) (*Table, error) {
	ms := []int{6, 8}
	reps := cfg.reps(3)
	budget := cfg.MaxNodes
	if budget <= 0 {
		budget = 8
	}
	t := &Table{
		Title:  "Portfolio engine vs repaired heuristic (extension)",
		Note:   "2x2 mesh, L=3; ALNS portfolio, exact repair budget tied to MaxNodes",
		Header: []string{"M", "E(repair)", "E(portfolio)", "gain", "apps(avg)"},
	}
	type result struct {
		eR, eP float64
		apps   float64
		ok     bool
	}
	cells, err := evalGrid(cfg, len(ms), reps, func(point, rep int) (result, error) {
		var r result
		s, err := Build(smallOptimal(ms[point], 1.2, cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		opts := core.Options{Trace: cfg.Trace}
		seed := cfg.instanceSeed(point, rep)
		_, rinfo, err := core.HeuristicWithRepair(s, opts, seed, 0)
		if err != nil {
			return r, err
		}
		// Fixed rounds/batch (not worker- or budget-derived) keep the
		// operator schedule identical across Parallel settings; the
		// engine's inner pool is serial so grid cells stay the only
		// source of concurrency.
		eo := engine.Options{
			Seed:    seed,
			Rounds:  2,
			Batch:   4,
			Workers: 1,

			NodeBudget:  budget,
			AnnealIters: 120,
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.timeLimit())
		defer cancel()
		_, pinfo, err := engine.SolveCtx(ctx, s, opts, eo)
		if err != nil {
			return r, err
		}
		if !rinfo.Feasible || !pinfo.Feasible {
			return r, nil
		}
		r.eR, r.eP = rinfo.Objective, pinfo.Objective
		r.apps = float64(pinfo.Iters)
		r.ok = true
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, m := range ms {
		var eR, eP, apps []float64
		for _, r := range cells[point] {
			if r.ok {
				eR = append(eR, r.eR)
				eP = append(eP, r.eP)
				apps = append(apps, r.apps)
			}
		}
		gain := 0.0
		if len(eR) > 0 && mean(eR) > 0 {
			gain = (mean(eR) - mean(eP)) / mean(eR)
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(mean(eR)), f3(mean(eP)), pct(gain), f3(mean(apps)))
	}
	return t, nil
}
