package exp

import (
	"fmt"

	"nocdeploy/internal/core"
)

// RunFig2d reproduces Fig. 2(d): total energy of the balance-oriented (BE)
// scheme vs the minimization-oriented (ME) scheme — ME's total is lower.
func RunFig2d(cfg Config) (*Table, error) {
	return runFig2de(cfg, false)
}

// RunFig2e reproduces Fig. 2(e): the balance index φ = max E_k / min E_k of
// BE vs ME — BE's φ is lower (better balanced).
func RunFig2e(cfg Config) (*Table, error) {
	return runFig2de(cfg, true)
}

func runFig2de(cfg Config, phi bool) (*Table, error) {
	ms := []int{10, 15, 20, 25}
	reps := cfg.reps(10)
	what, col := "total energy (J)", "E_total"
	if phi {
		what, col = "balance index phi", "phi"
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig 2(%s): BE vs ME, %s vs task count", map[bool]string{false: "d", true: "e"}[phi], what),
		Note:   "repair heuristic at paper scale: 4x4 mesh, L=6, alpha=1.5 (ME needs schedule slack)",
		Header: []string{"M", col + "(BE)", col + "(ME)", "ME saving"},
	}
	type result struct {
		be, me float64
		ok     bool
	}
	cells, err := evalGrid(cfg, len(ms), reps, func(point, rep int) (result, error) {
		var r result
		s, err := Build(paperScale(ms[point], 1.5, cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		dBE, iBE, err := core.HeuristicWithRepair(s, core.Options{Objective: core.BalanceEnergy}, 1, 0)
		if err != nil {
			return r, err
		}
		dME, iME, err := core.HeuristicWithRepair(s, core.Options{Objective: core.MinimizeEnergy}, 1, 0)
		if err != nil {
			return r, err
		}
		if !iBE.Feasible || !iME.Feasible {
			return r, nil
		}
		mBE, err := core.ComputeMetrics(s, dBE)
		if err != nil {
			return r, err
		}
		mME, err := core.ComputeMetrics(s, dME)
		if err != nil {
			return r, err
		}
		if phi {
			r.be, r.me = mBE.Phi, mME.Phi
		} else {
			r.be, r.me = mBE.SumEnergy, mME.SumEnergy
		}
		r.ok = true
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, m := range ms {
		var be, me []float64
		for _, r := range cells[point] {
			if r.ok {
				be = append(be, r.be)
				me = append(me, r.me)
			}
		}
		saving := ""
		if !phi && mean(be) > 0 {
			saving = pct((mean(be) - mean(me)) / mean(be))
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(mean(be)), f3(mean(me)), saving)
	}
	return t, nil
}
