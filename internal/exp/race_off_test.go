//go:build !race

package exp

const raceDetector = false
