package exp

import (
	"fmt"

	"nocdeploy/internal/core"
)

// RunFig2b reproduces Fig. 2(b): the influence of the communication/
// computation energy ratio μ on the allocation decision — as μ grows,
// dependent tasks cluster onto fewer processors and M_max rises.
func RunFig2b(cfg Config) (*Table, error) {
	scales := []float64{1, 100, 1e3, 1e4, 1e5, 1e6}
	reps := cfg.reps(6)
	t := &Table{
		Title:  "Fig 2(b): max tasks per processor M_max vs mu = e_comm/e_comp",
		Note:   "optimal BE deployment; reduced scale 2x2 mesh, M=4, L=3, 4x payloads",
		Header: []string{"mu", "M_max(avg)", "feasible"},
	}
	m := 4
	type result struct {
		mu   float64
		mmax float64
		ok   bool
	}
	cells, err := evalGrid(cfg, len(scales), reps, func(point, rep int) (result, error) {
		var r result
		p := smallOptimal(m, 1.2, cfg.instanceSeed(point, rep))
		p.MuScale = scales[point]
		p.BytesScale = 4
		s, err := Build(p)
		if err != nil {
			return r, err
		}
		r.mu = s.Mesh.MaxEnergyPerByte() / maxExecEnergyPerTask(s)
		d, info, err := solveOptimalWarm(s, core.Options{}, cfg)
		if err != nil {
			return r, err
		}
		if !info.Feasible || d == nil {
			return r, nil
		}
		met, err := core.ComputeMetrics(s, d)
		if err != nil {
			return r, err
		}
		r.mmax, r.ok = float64(met.MMax), true
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point := range scales {
		var mmax []float64
		feas := 0
		for _, r := range cells[point] {
			if r.ok {
				feas++
				mmax = append(mmax, r.mmax)
			}
		}
		// The serial loop reported the μ computed on the last trial.
		mu := cells[point][reps-1].mu
		t.AddRow(fmt.Sprintf("%.2g", mu), f3(mean(mmax)), fmt.Sprintf("%d/%d", feas, reps))
	}
	return t, nil
}

// maxExecEnergyPerTask is the paper's e_k^comp normalizer for μ:
// max over tasks and levels of the per-byte-comparable execution energy.
// The paper divides the max per-unit communication energy by the max
// per-cycle execution energy; both are "per unit", so we normalize the
// execution side per cycle.
func maxExecEnergyPerTask(s *core.System) float64 {
	var hi float64
	for l := 0; l < s.Plat.L(); l++ {
		if e := s.Plat.EnergyPerCycle(l); e > hi {
			hi = e
		}
	}
	return hi
}

// RunFig2c reproduces Fig. 2(c): the influence of the execution-energy gap
// ε = max(P/f)/min(P/f) on duplication — a large ε makes two slow copies
// cheaper than one fast original, so M_d rises.
func RunFig2c(cfg Config) (*Table, error) {
	gammas := []float64{0.4, 0.8, 1.2, 1.8, 2.6}
	reps := cfg.reps(6)
	t := &Table{
		Title:  "Fig 2(c): duplicated tasks M_d vs epsilon = max(P/f)/min(P/f)",
		Note:   "optimal BE deployment; reduced scale 2x2 mesh, M=4, L=3; 12x cycles so the duplication boundary falls between the admissible levels",
		Header: []string{"epsilon", "M_d(optimal)", "M_d(heuristic)", "feasible"},
	}
	m := 4
	type result struct {
		eps          float64
		mdOpt, mdHeu float64
		okOpt, okHeu bool
	}
	cells, err := evalGrid(cfg, len(gammas), reps, func(point, rep int) (result, error) {
		var r result
		p := smallOptimal(m, 1.2, cfg.instanceSeed(point, rep))
		p.Gamma = gammas[point]
		p.WCECScale = 12
		s, err := Build(p)
		if err != nil {
			return r, err
		}
		r.eps = s.Plat.Epsilon()
		hd, hinfo, err := core.Heuristic(s, core.Options{}, 1)
		if err != nil {
			return r, err
		}
		if hinfo.Feasible {
			r.mdHeu, r.okHeu = float64(hd.DupCount()), true
		}
		d, info, err := solveOptimalWarm(s, core.Options{}, cfg)
		if err != nil {
			return r, err
		}
		if info.Feasible && d != nil {
			r.mdOpt, r.okOpt = float64(d.DupCount()), true
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point := range gammas {
		var mdOpt, mdHeu []float64
		feas := 0
		for _, r := range cells[point] {
			if r.okHeu {
				mdHeu = append(mdHeu, r.mdHeu)
			}
			if r.okOpt {
				feas++
				mdOpt = append(mdOpt, r.mdOpt)
			}
		}
		eps := cells[point][reps-1].eps
		t.AddRow(f3(eps), f3(mean(mdOpt)), f3(mean(mdHeu)), fmt.Sprintf("%d/%d", feas, reps))
	}
	return t, nil
}
