// Package exp regenerates the paper's evaluation (Fig. 2(a)–(h)) as tables.
// Each RunFig2x function sweeps the same parameter the paper sweeps and
// prints the same series the paper plots.
//
// Scale substitution (see DESIGN.md): the paper solves the exact MILP with
// Gurobi at N = 16, M = 20, L = 6. Our pure-Go branch & bound replaces
// Gurobi, so "optimal" sweeps run on a 2×2 mesh with M ≤ 6 and reduced
// level counts, under explicit time limits; heuristic sweeps run at the
// paper's full scale. Trends, not absolute numbers, are the reproduction
// target.
package exp

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"nocdeploy/internal/core"
	"nocdeploy/internal/noc"
	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/runner"
	"nocdeploy/internal/taskgen"
)

// Config controls experiment scale.
type Config struct {
	Seed int64
	// Quick reduces repetitions and time limits so the full suite runs in
	// benchmark time; the defaults reproduce the figures more faithfully.
	Quick bool
	// TimeLimit bounds each exact solve; 0 picks a mode-dependent default.
	TimeLimit time.Duration
	// MaxNodes bounds each exact solve by branch & bound node count;
	// 0 keeps the solver default. Unlike TimeLimit, a node budget makes
	// solver termination — and therefore every table cell except measured
	// runtimes — deterministic, which is what the determinism tests use.
	MaxNodes int
	// Parallel is the number of instance evaluations each runner fans out
	// concurrently: 0 means runtime.GOMAXPROCS(0), 1 is serial. Tables are
	// byte-identical for every value (see DESIGN.md, "Determinism
	// contract"); negative values are rejected by Validate.
	Parallel int
	// Trace, if non-nil, receives pool telemetry from the instance grid and
	// solver telemetry from the warm-started exact solves. Tracing never
	// changes a table cell — the determinism contract holds with tracing on
	// or off (see TestDeterminismTracingInvariance).
	Trace *obs.Trace
}

// Validate checks the configuration. It is the single validation point for
// Config: every runner goes through it (via evalGrid) before any instance
// is built.
func (c Config) Validate() error {
	if c.Parallel < 0 {
		return fmt.Errorf("exp: Parallel must be ≥ 0 (0 = GOMAXPROCS), got %d", c.Parallel)
	}
	if c.MaxNodes < 0 {
		return fmt.Errorf("exp: MaxNodes must be ≥ 0, got %d", c.MaxNodes)
	}
	if c.TimeLimit < 0 {
		return fmt.Errorf("exp: TimeLimit must be ≥ 0, got %v", c.TimeLimit)
	}
	return nil
}

// instanceSeed derives the RNG seed of the (point, trial) grid cell. The
// derivation is a pure function of (Seed, point, trial) — never of
// evaluation order — so results are independent of worker scheduling.
// Points deliberately share trial seeds (the point index does not enter):
// every sweep value sees the same task graphs, making each figure a paired
// comparison across its x-axis exactly as in the serial implementation.
func (c Config) instanceSeed(point, trial int) int64 {
	_ = point
	return c.Seed + int64(trial)
}

// evalGrid evaluates eval for every cell of a points×trials instance grid
// through the worker pool and returns cells[point][trial] in grid order.
// eval must be a pure function of its indices (plus the Config); it runs
// concurrently with other cells when cfg.Parallel ≠ 1.
func evalGrid[R any](cfg Config, points, trials int, eval func(point, trial int) (R, error)) ([][]R, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	flat, err := runner.MapTraced(context.Background(), cfg.Parallel, points*trials, cfg.Trace,
		func(_ context.Context, i int) (R, error) {
			return eval(i/trials, i%trials)
		})
	if err != nil {
		return nil, err
	}
	cells := make([][]R, points)
	for p := range cells {
		cells[p] = flat[p*trials : (p+1)*trials]
	}
	return cells, nil
}

func (c Config) reps(full int) int {
	if c.Quick {
		if full > 3 {
			return 3
		}
		return full
	}
	return full
}

func (c Config) timeLimit() time.Duration {
	if c.TimeLimit > 0 {
		return c.TimeLimit
	}
	if c.Quick {
		return 5 * time.Second
	}
	return 45 * time.Second
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  (%s)\n", t.Note)
	}
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", width[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed),
// for feeding plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// InstanceParams describes one generated problem instance.
type InstanceParams struct {
	MeshW, MeshH int
	M            int
	L            int     // number of V/F levels (prefix of the default table)
	Alpha        float64 // horizon scale
	Seed         int64
	MuScale      float64 // communication-energy multiplier (Fig. 2(b)); 0 = 1
	Gamma        float64 // voltage stretch driving ε (Fig. 2(c)); 0 = 1
	BytesScale   float64 // payload multiplier for comm-heavy sweeps; 0 = 1
	WCECScale    float64 // cycle-count multiplier for reliability-critical sweeps; 0 = 1
}

// smallOptimal are the instance dimensions used for exact sweeps.
func smallOptimal(m int, alpha float64, seed int64) InstanceParams {
	return InstanceParams{MeshW: 2, MeshH: 2, M: m, L: 3, Alpha: alpha, Seed: seed}
}

// paperScale are the paper's heuristic-scale dimensions (4×4, L = 6).
func paperScale(m int, alpha float64, seed int64) InstanceParams {
	return InstanceParams{MeshW: 4, MeshH: 4, M: m, L: 6, Alpha: alpha, Seed: seed}
}

// Build generates the system for the given parameters.
func Build(p InstanceParams) (*core.System, error) {
	levels := platform.DefaultLevels()
	if p.Gamma > 0 && !numeric.Eq(p.Gamma, 1) {
		levels = platform.ScaledLevels(levels, p.Gamma)
	}
	if p.L > 0 && p.L < len(levels) {
		// Keep the extremes so the frequency range (and thus the
		// reliability model) is unchanged; drop interior levels.
		kept := []platform.VFLevel{levels[0]}
		for i := 1; i < p.L-1; i++ {
			kept = append(kept, levels[i*len(levels)/p.L])
		}
		kept = append(kept, levels[len(levels)-1])
		levels = kept
	}
	plat, err := platform.New(p.MeshW*p.MeshH, levels, platform.DefaultPowerParams())
	if err != nil {
		return nil, err
	}
	mesh := noc.Default(p.MeshW, p.MeshH)
	if p.MuScale > 0 && !numeric.Eq(p.MuScale, 1) {
		mesh.ScaleEnergy(p.MuScale)
	}
	gp := taskgen.DefaultParams(p.M, p.Seed)
	if p.BytesScale > 0 && !numeric.Eq(p.BytesScale, 1) {
		gp.MinBytes *= p.BytesScale
		gp.MaxBytes *= p.BytesScale
	}
	if p.WCECScale > 0 && !numeric.Eq(p.WCECScale, 1) {
		gp.MinWCEC *= p.WCECScale
		gp.MaxWCEC *= p.WCECScale
	}
	g, err := taskgen.Layered(gp, 4, 3)
	if err != nil {
		return nil, err
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	alpha := p.Alpha
	if numeric.IsZero(alpha) {
		alpha = 1.0
	}
	h, err := core.Horizon(plat, mesh, g, rel, alpha)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(plat, mesh, g, rel, h)
}

// solveOptimalWarm runs the repair heuristic first and feeds it to branch
// & bound as the incumbent, mirroring how a practitioner would use the two
// solvers.
func solveOptimalWarm(s *core.System, opts core.Options, cfg Config) (*core.Deployment, *core.SolveInfo, error) {
	opts.Trace = cfg.Trace
	hd, hinfo, err := core.HeuristicWithRepair(s, opts, 1, 0)
	if err != nil {
		return nil, nil, err
	}
	oo := core.OptimalOptions{TimeLimit: cfg.timeLimit(), MaxNodes: cfg.MaxNodes, RelGap: 0.01}
	if hinfo.Feasible {
		oo.WarmDeployment = hd
	}
	return core.Optimal(s, opts, oo)
}

func f3(v float64) string { return fmt.Sprintf("%.3g", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// mean returns the average of xs, or 0 for an empty slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
