package exp

import (
	"fmt"
	"sort"
	"time"

	"nocdeploy/internal/archive"
	"nocdeploy/internal/core"
	"nocdeploy/internal/obs"
)

// advisorSolvers are the fixed baselines the advisor chooses between —
// the cheap deterministic trio, so the table is a pure function of the
// Config at benchmark-friendly cost.
var advisorSolvers = []string{"heuristic", "repair", "anneal"}

// runAdvisorSolver runs one named baseline on one instance.
func runAdvisorSolver(name string, s *core.System, opts core.Options, seed int64) (*core.SolveInfo, error) {
	switch name {
	case "heuristic":
		_, info, err := core.Heuristic(s, opts, seed)
		return info, err
	case "repair":
		_, info, err := core.HeuristicWithRepair(s, opts, seed, 0)
		return info, err
	case "anneal":
		_, info, err := core.Anneal(s, opts, core.AnnealOptions{Seed: seed, Iters: 800})
		return info, err
	}
	return nil, fmt.Errorf("exp: unknown advisor baseline %q", name)
}

// RunAdvisor evaluates the archive's history-driven solver advisor
// (archive.Advise, the engine behind the service's solver=auto) against
// fixed-solver baselines. Per sweep point, the trial instances are split
// into a training prefix and held-out tail: every baseline solves every
// instance, the training solves are recorded into a memory-only archive
// under a fake clock (the exp package never reads the wall clock), and
// the advisor — seeing only the held-out instance's shape signature,
// never its hash — picks a solver per held-out instance via the family
// tier. The table compares the advisor's achieved energy against the best
// and worst fixed solver (chosen per point in hindsight over the held-out
// set), with the hit count of per-instance optimal picks.
func RunAdvisor(cfg Config) (*Table, error) {
	ms := []int{6, 8}
	reps := cfg.reps(5)
	train := reps / 2
	if train < 1 {
		train = 1
	}
	if train >= reps {
		// One trial: train and test on it (degenerate, Quick-proof).
		train = reps - 1
		if train < 1 {
			train = 0
		}
	}
	t := &Table{
		Title:  "History-driven solver advice (extension)",
		Note:   fmt.Sprintf("2x2 mesh, L=3; %d training / %d held-out instances per point; family-tier advice", train, reps-train),
		Header: []string{"M", "E(best-fixed)", "E(worst-fixed)", "E(advisor)", "hits"},
	}
	type result struct {
		obj map[string]float64 // solver -> objective, feasible solves only
	}
	cells, err := evalGrid(cfg, len(ms), reps, func(point, rep int) (result, error) {
		r := result{obj: map[string]float64{}}
		s, err := Build(smallOptimal(ms[point], 1.2, cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		opts := core.Options{Trace: cfg.Trace}
		seed := cfg.instanceSeed(point, rep)
		for _, name := range advisorSolvers {
			info, err := runAdvisorSolver(name, s, opts, seed)
			if err != nil {
				return r, err
			}
			if info.Feasible {
				r.obj[name] = info.Objective
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	for point, m := range ms {
		// Fake clock: appends happen serially below, so a simple counter
		// gives every record a distinct deterministic timestamp.
		tick := int64(0)
		store, err := archive.Open(archive.Options{Clock: obs.Clock(func() time.Time {
			tick++
			return time.Unix(1_700_000_000+tick, 0)
		})})
		if err != nil {
			return nil, err
		}
		for rep := 0; rep < train; rep++ {
			for _, name := range advisorSolvers {
				obj, ok := cells[point][rep].obj[name]
				if !ok {
					continue
				}
				store.Append(&archive.Record{Summary: archive.Summary{
					Hash:           fmt.Sprintf("exp-advisor-p%d-t%d", point, rep),
					Tasks:          m,
					MeshW:          2,
					MeshH:          2,
					Solver:         name,
					Objective:      "be",
					Outcome:        archive.OutcomeOK,
					Feasible:       true,
					FinalObjective: obj,
				}})
			}
		}

		// Hindsight baselines over the held-out tail: the single fixed
		// solver with the lowest (best) / highest (worst) mean energy.
		perSolver := map[string][]float64{}
		var advised []float64
		hits, tests := 0, 0
		for rep := train; rep < reps; rep++ {
			objs := cells[point][rep].obj
			if len(objs) < len(advisorSolvers) {
				continue // a solver went infeasible; skip the pair
			}
			tests++
			for name, obj := range objs {
				perSolver[name] = append(perSolver[name], obj)
			}
			dec := store.Advise(archive.Signature{Tasks: m, MeshW: 2, MeshH: 2})
			advised = append(advised, objs[dec.Solver])
			best := ""
			for _, name := range advisorSolvers {
				if best == "" || objs[name] < objs[best] {
					best = name
				}
			}
			if dec.Solver == best {
				hits++
			}
		}
		if err := store.Close(); err != nil {
			return nil, err
		}

		names := make([]string, 0, len(perSolver))
		for name := range perSolver {
			names = append(names, name)
		}
		sort.Strings(names)
		bestE, worstE := 0.0, 0.0
		for i, name := range names {
			e := mean(perSolver[name])
			if i == 0 || e < bestE {
				bestE = e
			}
			if i == 0 || e > worstE {
				worstE = e
			}
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(bestE), f3(worstE), f3(mean(advised)),
			fmt.Sprintf("%d/%d", hits, tests))
	}
	return t, nil
}
