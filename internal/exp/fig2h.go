package exp

import "nocdeploy/internal/core"

// RunFig2h reproduces Fig. 2(h): problem feasibility ratio δ = n_f/n_a vs
// the horizon scale α, for the optimal and heuristic methods — δ rises
// with α and the optimal method dominates the heuristic.
func RunFig2h(cfg Config) (*Table, error) {
	alphas := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
	reps := cfg.reps(30)
	t := &Table{
		Title:  "Fig 2(h): feasibility ratio delta vs alpha",
		Note:   "n_a task graphs per point; reduced scale 2x2 mesh, M=4, L=3",
		Header: []string{"alpha", "delta(optimal)", "delta(heuristic)", "n_a"},
	}
	m := 4
	type result struct {
		feasO, feasH bool
	}
	cells, err := evalGrid(cfg, len(alphas), reps, func(point, rep int) (result, error) {
		var r result
		s, err := Build(smallOptimal(m, alphas[point], cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		_, hinfo, err := core.Heuristic(s, core.Options{}, 1)
		if err != nil {
			return r, err
		}
		r.feasH = hinfo.Feasible
		_, oinfo, err := solveOptimalWarm(s, core.Options{}, cfg)
		if err != nil {
			return r, err
		}
		r.feasO = oinfo.Feasible
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, alpha := range alphas {
		feasO, feasH := 0, 0
		for _, r := range cells[point] {
			if r.feasO {
				feasO++
			}
			if r.feasH {
				feasH++
			}
		}
		t.AddRow(f3(alpha),
			pct(float64(feasO)/float64(reps)),
			pct(float64(feasH)/float64(reps)),
			f3(float64(reps)))
	}
	return t, nil
}

// Runner is a named figure reproduction.
type Runner struct {
	Name string
	Run  func(Config) (*Table, error)
}

// Runners lists every figure reproduction in paper order.
func Runners() []Runner {
	return []Runner{
		{"2a", RunFig2a},
		{"2b", RunFig2b},
		{"2c", RunFig2c},
		{"2d", RunFig2d},
		{"2e", RunFig2e},
		{"2f", RunFig2f},
		{"2g", RunFig2g},
		{"2h", RunFig2h},
	}
}
