package exp

import (
	"fmt"

	"nocdeploy/internal/core"
)

// RunOptimal4x4 exercises the exact branch & bound at the paper's full
// 4×4-mesh scale (N = 16, L = 6) — the configuration the paper solves
// only heuristically. The dense solver core could not touch it; the
// sparse factorized simplex with warm-started node LPs makes a
// node-budgeted exact sweep affordable, so the table reports how far a
// fixed budget gets: the heuristic incumbent, the best exact incumbent,
// the relative gap to the tree's best bound, and whether optimality was
// proved inside the budget.
func RunOptimal4x4(cfg Config) (*Table, error) {
	ms := []int{6, 8}
	if cfg.Quick {
		ms = []int{6}
	}
	reps := cfg.reps(3)
	relGap := 0.01
	t := &Table{
		Title:  "Exact branch & bound at paper scale: 4x4 mesh, L=6 (extension)",
		Note:   "warm-started, node-budgeted; gap is incumbent vs best bound at exit",
		Header: []string{"M", "E(heur)", "E(opt)", "gap", "nodes", "time", "proved"},
	}
	type result struct {
		eH, eO, gap float64
		nodes       int
		tSec        float64
		ok, proved  bool
	}
	cells, err := evalGrid(cfg, len(ms), reps, func(point, rep int) (result, error) {
		var r result
		s, err := Build(paperScale(ms[point], 1.3, cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		opts := core.Options{Trace: cfg.Trace}
		hd, hinfo, err := core.HeuristicWithRepair(s, opts, 1, 0)
		if err != nil {
			return r, err
		}
		if !hinfo.Feasible {
			return r, nil
		}
		// An unbudgeted exact solve at this scale runs for hours; cap the
		// tree so the sweep stays inside the benchmark/CI envelope.
		budget := cfg.MaxNodes
		if budget == 0 {
			budget = 40
		}
		oo := core.OptimalOptions{
			TimeLimit:      cfg.timeLimit(),
			MaxNodes:       budget,
			RelGap:         relGap,
			WarmDeployment: hd,
		}
		_, info, err := core.Optimal(s, opts, oo)
		if err != nil {
			return r, err
		}
		r.eH = hinfo.Objective
		r.nodes = info.Nodes
		r.tSec = info.Runtime.Seconds()
		if info.Feasible {
			r.eO, r.gap, r.ok = info.Objective, info.Gap, true
			r.proved = info.Gap <= relGap
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, m := range ms {
		var eH, eO, gap, nodes, times []float64
		proved, ok := 0, 0
		for _, r := range cells[point] {
			nodes = append(nodes, float64(r.nodes))
			times = append(times, r.tSec)
			if !r.ok {
				continue
			}
			ok++
			eH = append(eH, r.eH)
			eO = append(eO, r.eO)
			gap = append(gap, r.gap)
			if r.proved {
				proved++
			}
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(mean(eH)), f3(mean(eO)), pct(mean(gap)),
			f3(mean(nodes)), fmt.Sprintf("%.3gs", mean(times)),
			fmt.Sprintf("%d/%d", proved, ok))
	}
	return t, nil
}
