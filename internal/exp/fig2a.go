package exp

import "nocdeploy/internal/core"

// RunFig2a reproduces Fig. 2(a): multi-path vs single-path routing as the
// horizon scale α grows — feasibility rises with α and multi-path routing
// never consumes more energy.
//
// Scale note: the feasibility series uses the exact solver on reduced
// instances (2×2, M=3), where our branch & bound proves optimality within
// the budget. At that size, however, the optimum simply co-locates
// communicating tasks, so path selection cannot show an energy difference;
// the energy series therefore runs at the paper's 4×4/M=16 scale through
// the heuristic in a comm-heavy regime (8× payloads, 50× NoC energy,
// matching the platform tables of the paper's reference [3]), where
// phase 3's greedy path choice makes multi ≤ single by construction.
func RunFig2a(cfg Config) (*Table, error) {
	alphas := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
	reps := cfg.reps(8)
	t := &Table{
		Title:  "Fig 2(a): multi-path vs single-path routing (sweep α)",
		Note:   "feasibility: optimal at 2x2/M=3; energy: heuristic at 4x4/M=16, comm-heavy; joules",
		Header: []string{"alpha", "feas(multi)", "feas(single)", "E(multi)", "E(single)"},
	}
	type result struct {
		feasM, feasS bool
		eM, eS       float64
		okE          bool
	}
	cells, err := evalGrid(cfg, len(alphas), reps, func(point, rep int) (result, error) {
		alpha, seed := alphas[point], cfg.instanceSeed(point, rep)
		var r result
		// Exact feasibility comparison at reduced scale.
		p := smallOptimal(3, alpha, seed)
		p.BytesScale = 8
		p.MuScale = 50
		s, err := Build(p)
		if err != nil {
			return r, err
		}
		_, multi, err := solveOptimalWarm(s, core.Options{}, cfg)
		if err != nil {
			return r, err
		}
		_, single, err := solveOptimalWarm(s, core.Options{SinglePath: true}, cfg)
		if err != nil {
			return r, err
		}
		r.feasM = multi.Feasible
		r.feasS = single.Feasible

		// Energy comparison at paper scale: a single-path deployment,
		// then multi-path refinement of the same deployment (path
		// flips only), so multi ≤ single holds per instance by
		// construction — exactly the freedom the paper's c variable
		// adds.
		pp := paperScale(16, alpha, seed)
		pp.BytesScale = 8
		pp.MuScale = 50
		sp, err := Build(pp)
		if err != nil {
			return r, err
		}
		dSingle, hSingle, err := core.HeuristicWithRepair(sp, core.Options{SinglePath: true}, 1, 0)
		if err != nil {
			return r, err
		}
		if hSingle.Feasible {
			_, multiObj := core.ImprovePaths(sp, dSingle, core.Options{})
			r.eM, r.eS, r.okE = multiObj, hSingle.Objective, true
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, alpha := range alphas {
		var feasM, feasS int
		var eM, eS []float64
		for _, r := range cells[point] {
			if r.feasM {
				feasM++
			}
			if r.feasS {
				feasS++
			}
			if r.okE {
				eM = append(eM, r.eM)
				eS = append(eS, r.eS)
			}
		}
		t.AddRow(f3(alpha),
			pct(float64(feasM)/float64(reps)),
			pct(float64(feasS)/float64(reps)),
			f3(mean(eM)), f3(mean(eS)))
	}
	return t, nil
}
