package exp

import (
	"fmt"

	"nocdeploy/internal/core"
)

// The ablation runners evaluate design choices called out in DESIGN.md
// that go beyond the paper's own figures.

// RunAblationRepair compares the plain three-phase heuristic against the
// horizon-repair extension across the α sweep: repair should close much of
// the feasibility gap to the exact solver at negligible runtime.
func RunAblationRepair(cfg Config) (*Table, error) {
	alphas := []float64{0.6, 0.8, 1.0, 1.2}
	reps := cfg.reps(12)
	t := &Table{
		Title:  "Ablation: heuristic horizon repair (extension)",
		Note:   "paper scale 4x4 mesh, L=6, M=16",
		Header: []string{"alpha", "delta(plain)", "delta(repair)", "E(plain)", "E(repair)"},
	}
	for _, alpha := range alphas {
		feasP, feasR := 0, 0
		var eP, eR []float64
		for rep := 0; rep < reps; rep++ {
			s, err := Build(paperScale(16, alpha, cfg.Seed+int64(rep)))
			if err != nil {
				return nil, err
			}
			_, plain, err := core.Heuristic(s, core.Options{}, 1)
			if err != nil {
				return nil, err
			}
			_, repaired, err := core.HeuristicWithRepair(s, core.Options{}, 1, 0)
			if err != nil {
				return nil, err
			}
			if plain.Feasible {
				feasP++
			}
			if repaired.Feasible {
				feasR++
			}
			if plain.Feasible && repaired.Feasible {
				eP = append(eP, plain.Objective)
				eR = append(eR, repaired.Objective)
			}
		}
		t.AddRow(f3(alpha),
			pct(float64(feasP)/float64(reps)),
			pct(float64(feasR)/float64(reps)),
			f3(mean(eP)), f3(mean(eR)))
	}
	return t, nil
}

// RunAblationImprove measures what first-improvement local search adds on
// top of the heuristic's objective.
func RunAblationImprove(cfg Config) (*Table, error) {
	ms := []int{12, 16, 20}
	reps := cfg.reps(10)
	t := &Table{
		Title:  "Ablation: local-search improvement on the heuristic (extension)",
		Note:   "paper scale 4x4 mesh, L=6; max per-processor energy (J)",
		Header: []string{"M", "E(heuristic)", "E(+improve)", "gain", "moves(avg)"},
	}
	for _, m := range ms {
		var eH, eI, mv []float64
		for rep := 0; rep < reps; rep++ {
			s, err := Build(paperScale(m, 1.3, cfg.Seed+int64(rep)))
			if err != nil {
				return nil, err
			}
			d, info, err := core.Heuristic(s, core.Options{}, 1)
			if err != nil {
				return nil, err
			}
			if !info.Feasible {
				continue
			}
			_, obj, moves := core.Improve(s, d, core.Options{}, 0)
			eH = append(eH, info.Objective)
			eI = append(eI, obj)
			mv = append(mv, float64(moves))
		}
		gain := ""
		if mean(eH) > 0 {
			gain = pct((mean(eH) - mean(eI)) / mean(eH))
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(mean(eH)), f3(mean(eI)), gain, f3(mean(mv)))
	}
	return t, nil
}

// RunAblationWarmStart compares branch & bound with and without the
// heuristic incumbent: the warm start should cut nodes and runtime.
func RunAblationWarmStart(cfg Config) (*Table, error) {
	reps := cfg.reps(5)
	t := &Table{
		Title:  "Ablation: branch & bound warm start from the heuristic",
		Note:   "reduced scale 2x2 mesh, M=4, L=3",
		Header: []string{"variant", "time(avg)", "nodes(avg)", "feasible"},
	}
	type row struct {
		name  string
		warm  bool
		times []float64
		nodes []float64
		feas  int
	}
	rows := []*row{{name: "cold"}, {name: "warm", warm: true}}
	for rep := 0; rep < reps; rep++ {
		s, err := Build(smallOptimal(4, 1.4, cfg.Seed+int64(rep)))
		if err != nil {
			return nil, err
		}
		// Use the repair variant so a warm incumbent exists on most seeds.
		hd, hinfo, err := core.HeuristicWithRepair(s, core.Options{}, 1, 0)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			oo := core.OptimalOptions{TimeLimit: cfg.timeLimit(), RelGap: 0.02}
			if r.warm && hinfo.Feasible {
				oo.WarmDeployment = hd
			}
			_, info, err := core.Optimal(s, core.Options{}, oo)
			if err != nil {
				return nil, err
			}
			r.times = append(r.times, info.Runtime.Seconds())
			r.nodes = append(r.nodes, float64(info.Nodes))
			if info.Feasible {
				r.feas++
			}
		}
	}
	for _, r := range rows {
		t.AddRow(r.name, fmt.Sprintf("%.3gs", mean(r.times)), f3(mean(r.nodes)),
			fmt.Sprintf("%d/%d", r.feas, reps))
	}
	return t, nil
}

// RunAblationAnneal compares the three deployment methods this library
// offers at paper scale: repaired heuristic, heuristic + local search, and
// simulated annealing.
func RunAblationAnneal(cfg Config) (*Table, error) {
	ms := []int{12, 16, 20}
	reps := cfg.reps(6)
	t := &Table{
		Title:  "Ablation: heuristic vs local search vs simulated annealing (extension)",
		Note:   "paper scale 4x4 mesh, L=6; max per-processor energy (J)",
		Header: []string{"M", "E(heur+repair)", "E(+improve)", "E(anneal)", "t(anneal)"},
	}
	for _, m := range ms {
		var eH, eI, eA, tA []float64
		for rep := 0; rep < reps; rep++ {
			s, err := Build(paperScale(m, 1.3, cfg.Seed+int64(rep)))
			if err != nil {
				return nil, err
			}
			d, info, err := core.HeuristicWithRepair(s, core.Options{}, 1, 0)
			if err != nil {
				return nil, err
			}
			if !info.Feasible {
				continue
			}
			_, objI, _ := core.Improve(s, d, core.Options{}, 0)
			iters := 2000 * m
			if cfg.Quick {
				iters = 400 * m
			}
			_, ainfo, err := core.Anneal(s, core.Options{}, core.AnnealOptions{Iters: iters, Seed: 1})
			if err != nil {
				return nil, err
			}
			eH = append(eH, info.Objective)
			eI = append(eI, objI)
			if ainfo.Feasible {
				eA = append(eA, ainfo.Objective)
				tA = append(tA, ainfo.Runtime.Seconds())
			}
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(mean(eH)), f3(mean(eI)), f3(mean(eA)),
			fmt.Sprintf("%.3gs", mean(tA)))
	}
	return t, nil
}

// ExtensionRunners lists the beyond-the-paper ablations.
func ExtensionRunners() []Runner {
	return []Runner{
		{"ext-repair", RunAblationRepair},
		{"ext-improve", RunAblationImprove},
		{"ext-warmstart", RunAblationWarmStart},
		{"ext-anneal", RunAblationAnneal},
	}
}
