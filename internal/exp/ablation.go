package exp

import (
	"fmt"

	"nocdeploy/internal/core"
)

// The ablation runners evaluate design choices called out in DESIGN.md
// that go beyond the paper's own figures.

// RunAblationRepair compares the plain three-phase heuristic against the
// horizon-repair extension across the α sweep: repair should close much of
// the feasibility gap to the exact solver at negligible runtime.
func RunAblationRepair(cfg Config) (*Table, error) {
	alphas := []float64{0.6, 0.8, 1.0, 1.2}
	reps := cfg.reps(12)
	t := &Table{
		Title:  "Ablation: heuristic horizon repair (extension)",
		Note:   "paper scale 4x4 mesh, L=6, M=16",
		Header: []string{"alpha", "delta(plain)", "delta(repair)", "E(plain)", "E(repair)"},
	}
	type result struct {
		plainFeas, repFeas bool
		eP, eR             float64
	}
	cells, err := evalGrid(cfg, len(alphas), reps, func(point, rep int) (result, error) {
		var r result
		s, err := Build(paperScale(16, alphas[point], cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		_, plain, err := core.Heuristic(s, core.Options{}, 1)
		if err != nil {
			return r, err
		}
		_, repaired, err := core.HeuristicWithRepair(s, core.Options{}, 1, 0)
		if err != nil {
			return r, err
		}
		r.plainFeas = plain.Feasible
		r.repFeas = repaired.Feasible
		r.eP, r.eR = plain.Objective, repaired.Objective
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, alpha := range alphas {
		feasP, feasR := 0, 0
		var eP, eR []float64
		for _, r := range cells[point] {
			if r.plainFeas {
				feasP++
			}
			if r.repFeas {
				feasR++
			}
			if r.plainFeas && r.repFeas {
				eP = append(eP, r.eP)
				eR = append(eR, r.eR)
			}
		}
		t.AddRow(f3(alpha),
			pct(float64(feasP)/float64(reps)),
			pct(float64(feasR)/float64(reps)),
			f3(mean(eP)), f3(mean(eR)))
	}
	return t, nil
}

// RunAblationImprove measures what first-improvement local search adds on
// top of the heuristic's objective.
func RunAblationImprove(cfg Config) (*Table, error) {
	ms := []int{12, 16, 20}
	reps := cfg.reps(10)
	t := &Table{
		Title:  "Ablation: local-search improvement on the heuristic (extension)",
		Note:   "paper scale 4x4 mesh, L=6; max per-processor energy (J)",
		Header: []string{"M", "E(heuristic)", "E(+improve)", "gain", "moves(avg)"},
	}
	type result struct {
		eH, eI, moves float64
		ok            bool
	}
	cells, err := evalGrid(cfg, len(ms), reps, func(point, rep int) (result, error) {
		var r result
		s, err := Build(paperScale(ms[point], 1.3, cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		d, info, err := core.Heuristic(s, core.Options{}, 1)
		if err != nil {
			return r, err
		}
		if !info.Feasible {
			return r, nil
		}
		_, obj, moves := core.Improve(s, d, core.Options{}, 0)
		r.eH, r.eI, r.moves, r.ok = info.Objective, obj, float64(moves), true
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, m := range ms {
		var eH, eI, mv []float64
		for _, r := range cells[point] {
			if r.ok {
				eH = append(eH, r.eH)
				eI = append(eI, r.eI)
				mv = append(mv, r.moves)
			}
		}
		gain := ""
		if mean(eH) > 0 {
			gain = pct((mean(eH) - mean(eI)) / mean(eH))
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(mean(eH)), f3(mean(eI)), gain, f3(mean(mv)))
	}
	return t, nil
}

// RunAblationWarmStart compares branch & bound with and without the
// heuristic incumbent: the warm start should cut nodes and runtime.
func RunAblationWarmStart(cfg Config) (*Table, error) {
	reps := cfg.reps(5)
	t := &Table{
		Title:  "Ablation: branch & bound warm start from the heuristic",
		Note:   "reduced scale 2x2 mesh, M=4, L=3",
		Header: []string{"variant", "time(avg)", "nodes(avg)", "feasible"},
	}
	type variant struct {
		t, nodes float64
		feas     bool
	}
	type result struct {
		cold, warm variant
	}
	cells, err := evalGrid(cfg, 1, reps, func(_, rep int) (result, error) {
		var r result
		s, err := Build(smallOptimal(4, 1.4, cfg.instanceSeed(0, rep)))
		if err != nil {
			return r, err
		}
		// Use the repair variant so a warm incumbent exists on most seeds.
		hd, hinfo, err := core.HeuristicWithRepair(s, core.Options{}, 1, 0)
		if err != nil {
			return r, err
		}
		for _, warm := range []bool{false, true} {
			oo := core.OptimalOptions{TimeLimit: cfg.timeLimit(), MaxNodes: cfg.MaxNodes, RelGap: 0.02}
			if warm && hinfo.Feasible {
				oo.WarmDeployment = hd
			}
			_, info, err := core.Optimal(s, core.Options{}, oo)
			if err != nil {
				return r, err
			}
			v := variant{t: info.Runtime.Seconds(), nodes: float64(info.Nodes), feas: info.Feasible}
			if warm {
				r.warm = v
			} else {
				r.cold = v
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"cold", "warm"} {
		var times, nodes []float64
		feas := 0
		for _, r := range cells[0] {
			v := r.cold
			if name == "warm" {
				v = r.warm
			}
			times = append(times, v.t)
			nodes = append(nodes, v.nodes)
			if v.feas {
				feas++
			}
		}
		t.AddRow(name, fmt.Sprintf("%.3gs", mean(times)), f3(mean(nodes)),
			fmt.Sprintf("%d/%d", feas, reps))
	}
	return t, nil
}

// RunAblationAnneal compares the three deployment methods this library
// offers at paper scale: repaired heuristic, heuristic + local search, and
// simulated annealing.
func RunAblationAnneal(cfg Config) (*Table, error) {
	ms := []int{12, 16, 20}
	reps := cfg.reps(6)
	t := &Table{
		Title:  "Ablation: heuristic vs local search vs simulated annealing (extension)",
		Note:   "paper scale 4x4 mesh, L=6; max per-processor energy (J)",
		Header: []string{"M", "E(heur+repair)", "E(+improve)", "E(anneal)", "t(anneal)"},
	}
	type result struct {
		eH, eI float64
		ok     bool
		eA, tA float64
		okA    bool
	}
	cells, err := evalGrid(cfg, len(ms), reps, func(point, rep int) (result, error) {
		var r result
		m := ms[point]
		s, err := Build(paperScale(m, 1.3, cfg.instanceSeed(point, rep)))
		if err != nil {
			return r, err
		}
		d, info, err := core.HeuristicWithRepair(s, core.Options{}, 1, 0)
		if err != nil {
			return r, err
		}
		if !info.Feasible {
			return r, nil
		}
		_, objI, _ := core.Improve(s, d, core.Options{}, 0)
		iters := 2000 * m
		if cfg.Quick {
			iters = 400 * m
		}
		_, ainfo, err := core.Anneal(s, core.Options{}, core.AnnealOptions{Iters: iters, Seed: 1})
		if err != nil {
			return r, err
		}
		r.eH, r.eI, r.ok = info.Objective, objI, true
		if ainfo.Feasible {
			r.eA, r.tA, r.okA = ainfo.Objective, ainfo.Runtime.Seconds(), true
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for point, m := range ms {
		var eH, eI, eA, tA []float64
		for _, r := range cells[point] {
			if r.ok {
				eH = append(eH, r.eH)
				eI = append(eI, r.eI)
			}
			if r.okA {
				eA = append(eA, r.eA)
				tA = append(tA, r.tA)
			}
		}
		t.AddRow(fmt.Sprintf("%d", m), f3(mean(eH)), f3(mean(eI)), f3(mean(eA)),
			fmt.Sprintf("%.3gs", mean(tA)))
	}
	return t, nil
}

// ExtensionRunners lists the beyond-the-paper ablations.
func ExtensionRunners() []Runner {
	return []Runner{
		{"ext-repair", RunAblationRepair},
		{"ext-improve", RunAblationImprove},
		{"ext-warmstart", RunAblationWarmStart},
		{"ext-anneal", RunAblationAnneal},
		{"ext-opt4x4", RunOptimal4x4},
		{"ext-portfolio", RunPortfolio},
		{"ext-advisor", RunAdvisor},
	}
}
