//go:build race

package exp

// raceDetector reports whether the race detector is compiled in; the
// determinism sweep restricts itself to a representative figure pair
// under race so the exp CI shard stays within its 15-minute budget.
const raceDetector = true
