package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RawLog flags library packages that write to the process streams — any use
// of os.Stderr / os.Stdout, or any reference to the standard log package.
// Solver and harness code must stay silent so its output composes (pipes,
// tests, the experiment tables) and so telemetry flows through internal/obs
// sinks the caller chose, not streams the library grabbed. Exempt:
// package main (commands own the process streams), internal/obs (the sink
// layer is exactly where stream handles are wired up) and internal/render
// (ASCII renderers whose contract is the terminal). Deliberate uses — e.g.
// "-" meaning stdout in a CLI-facing helper — must be annotated in place
// with //lint:allow rawlog and a reason.
var RawLog = &Analyzer{
	Name: "rawlog",
	Doc: "flags os.Stderr/os.Stdout and the log package in internal/ library code " +
		"(except internal/obs and internal/render); take an io.Writer or emit " +
		"through internal/obs, or annotate with //lint:allow rawlog",
	Run: runRawLog,
}

func runRawLog(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return
	}
	if !strings.Contains(pass.PkgPath, "internal/") {
		return
	}
	if strings.Contains(pass.PkgPath, "internal/obs") || strings.Contains(pass.PkgPath, "internal/render") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "os":
				if sel.Sel.Name == "Stderr" || sel.Sel.Name == "Stdout" {
					pass.Reportf(sel.Pos(),
						"library package %s uses os.%s; take an io.Writer or emit through internal/obs",
						pass.Pkg.Name(), sel.Sel.Name)
				}
			case "log":
				pass.Reportf(sel.Pos(),
					"library package %s uses log.%s; return errors or emit through internal/obs",
					pass.Pkg.Name(), sel.Sel.Name)
			}
			return true
		})
	}
}
