// Package core seeds wallclock violations: its basename places it in the
// solver scope where raw clock reads are banned outside the seam.
package core

import "time"

type opts struct {
	clock func() time.Time
}

// now is the approved per-package clock accessor.
//
//lint:fact clockseam
func (o opts) now() time.Time {
	if o.clock != nil {
		return o.clock()
	}
	return time.Now()
}

func badNow() time.Time {
	return time.Now()
}

func badSince(start time.Time) time.Duration {
	return time.Since(start)
}

func badTicker() *time.Ticker {
	return time.NewTicker(time.Second)
}

func allowed() time.Time {
	return time.Now() //lint:allow wallclock — fixture suppression
}

func cleanSeamUse(o opts, deadline time.Time) bool {
	return o.now().After(deadline)
}

func cleanDuration(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}

var (
	_ = badNow
	_ = badSince
	_ = badTicker
	_ = allowed
	_ = cleanSeamUse
	_ = cleanDuration
)
