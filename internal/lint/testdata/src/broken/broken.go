// Package broken fails to type-check on purpose: the loader-tolerance
// test asserts that this package surfaces as a LoadError while its healthy
// siblings still load and analyze.
package broken

var oops int = "not an int"
