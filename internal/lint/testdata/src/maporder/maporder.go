// Package maporder seeds maporder violations for the golden-fixture test,
// including cross-package emits resolved through the fact base.
package maporder

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"nocdeploy/internal/lint/testdata/src/maporder/emitlib"
)

func badDirectPrint(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v)
	}
}

func badCrossPackageDerived(m map[string]int) {
	for k, v := range m {
		emitlib.EmitRow(os.Stdout, k, v)
	}
}

func badCrossPackageExplicit(m map[string]int) {
	var b strings.Builder
	for k := range m {
		emitlib.Record(&b, k)
	}
}

func badUnsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func allowed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //lint:allow maporder — fixture suppression
	}
}

func cleanCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cleanAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func cleanPureCall(m map[string]int) int {
	total := 0
	for k := range m {
		total += emitlib.Pure(k)
	}
	return total
}

func cleanLoopLocal(ms []map[string]int) []string {
	var rows []string
	for _, inner := range ms {
		var local []string
		for k := range inner {
			local = append(local, k)
		}
		sort.Strings(local)
		rows = append(rows, strings.Join(local, ","))
	}
	return rows
}

var (
	_ = badDirectPrint
	_ = badCrossPackageDerived
	_ = badCrossPackageExplicit
	_ = badUnsortedAppend
	_ = allowed
	_ = cleanCollectThenSort
	_ = cleanAggregate
	_ = cleanPureCall
	_ = cleanLoopLocal
)
