// Package emitlib exports emit-faceted helpers for the maporder fixture.
package emitlib

import (
	"fmt"
	"io"
	"strings"
)

// EmitRow writes one table row; the emit fact is derived from the Fprintf.
func EmitRow(w io.Writer, k string, v int) {
	fmt.Fprintf(w, "%s=%d\n", k, v)
}

// Record appends to an internal builder without any built-in recognizer
// firing at the call site; the explicit fact is what maporder sees.
//
//lint:fact emit
func Record(b *strings.Builder, k string) {
	b.WriteString(k)
}

// Pure is a helper with no facts: calling it inside a map range is fine.
func Pure(k string) int { return len(k) }
