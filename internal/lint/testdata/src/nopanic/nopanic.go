// Package panicfix seeds nopanic violations for the golden-fixture test.
package panicfix

import "errors"

// Boom panics unconditionally — the library anti-pattern.
func Boom() {
	panic("boom")
}

func asError() error {
	return errors.New("returned, not panicked")
}

//lint:allow nopanic — documented invariant for the suppression test
func invariant() {
	panic("unreachable")
}

func inline() {
	panic("fine") //lint:allow nopanic — inline suppression
}

func notTheBuiltin() {
	panic := func(string) {}
	panic("shadowed, not the builtin")
}

var _ = asError
var _ = invariant
var _ = inline
var _ = notTheBuiltin
