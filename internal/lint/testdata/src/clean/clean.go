// Package cleanfix is free of findings for every analyzer; the golden test
// asserts the whole suite stays silent on it.
package cleanfix

import "errors"

// Tol is a local tolerance helper standing in for internal/numeric.
const Tol = 1e-9

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= Tol
}

func validated(x float64) error {
	if !near(x, 1) {
		return errors.New("off by more than Tol")
	}
	return nil
}

func useAll(xs []float64) error {
	for _, x := range xs {
		if err := validated(x); err != nil {
			return err
		}
	}
	return nil
}

var _ = useAll
