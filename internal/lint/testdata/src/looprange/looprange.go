// Package loopfix seeds looprange violations for the golden-fixture test.
package loopfix

func leaks(xs []int) {
	for _, x := range xs {
		go func() {
			_ = x
		}()
	}
	for i := 0; i < len(xs); i++ {
		defer func() {
			println(i)
		}()
	}
}

func captured(xs []int) {
	for _, x := range xs {
		x := x
		go func() {
			_ = x // rebound copy; not flagged
		}()
	}
	for _, x := range xs {
		go func(v int) {
			_ = v
		}(x) // passed as an argument; not flagged
	}
}

var _ = leaks
var _ = captured
