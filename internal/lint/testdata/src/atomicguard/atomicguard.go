// Package atomicguard seeds atomicguard violations: fields touched both
// through sync/atomic and through plain reads or writes.
package atomicguard

import "sync/atomic"

type counter struct {
	hits  uint64 // accessed atomically AND plainly: the bug
	safe  uint64 // accessed atomically only
	plain uint64 // never atomic; plain access is fine
	boxed atomic.Uint64
}

func bump(c *counter) {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.safe, 1)
	c.boxed.Add(1)
}

func badPlainRead(c *counter) uint64 {
	return c.hits
}

func badPlainWrite(c *counter) {
	c.hits = 0
}

func allowed(c *counter) uint64 {
	return c.hits //lint:allow atomicguard — fixture suppression
}

func cleanAtomicRead(c *counter) uint64 {
	return atomic.LoadUint64(&c.safe)
}

func cleanPlainField(c *counter) uint64 {
	c.plain++
	return c.plain
}

func cleanWrapper(c *counter) uint64 {
	return c.boxed.Load()
}

var (
	_ = bump
	_ = badPlainRead
	_ = badPlainWrite
	_ = allowed
	_ = cleanAtomicRead
	_ = cleanPlainField
	_ = cleanWrapper
)
