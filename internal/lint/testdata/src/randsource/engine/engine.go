// Package engine mirrors the portfolio engine's randomness hot spots for
// the randsource golden fixture: roulette selection and operator seeds
// must come from an explicitly seeded source, never the global generator
// or the wall clock.
package engine

import (
	"math/rand"
	"time"
)

// badRoulette draws from the shared global generator: two engines in one
// process would perturb each other's operator schedules.
func badRoulette(scores []float64) int {
	pick := rand.Float64() * total(scores)
	for i, s := range scores {
		pick -= s
		if pick < 0 {
			return i
		}
	}
	return len(scores) - 1
}

// badEngineSeed seeds the coordinator from the wall clock: the operator
// schedule could never replay.
func badEngineSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// goodRoulette is the engine's actual shape: the coordinator owns one
// explicitly seeded source and every selection draw comes from it.
func goodRoulette(rng *rand.Rand, scores []float64) int {
	pick := rng.Float64() * total(scores)
	for i, s := range scores {
		pick -= s
		if pick < 0 {
			return i
		}
	}
	return len(scores) - 1
}

// goodDerivedSeed mixes a per-application index into the engine seed, so
// each operator application replays identically at any worker count.
func goodDerivedSeed(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(idx+1)))
}

var (
	_ = badRoulette
	_ = badEngineSeed
	_ = goodRoulette
	_ = goodDerivedSeed
)

func total(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
