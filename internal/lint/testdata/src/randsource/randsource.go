// Package randsource seeds randsource violations for the golden-fixture
// test: global math/rand use and time-seeded sources in library code.
package randsource

import (
	"math/rand"
	"time"
)

func badGlobalInt() int {
	return rand.Intn(10)
}

func badGlobalFloat() float64 {
	return rand.Float64()
}

func badTimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

func allowed() int {
	return rand.Intn(10) //lint:allow randsource — fixture suppression
}

func cleanSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func cleanInstance(rng *rand.Rand) int {
	return rng.Intn(10)
}

var (
	_ = badGlobalInt
	_ = badGlobalFloat
	_ = badTimeSeeded
	_ = allowed
	_ = cleanSeeded
	_ = cleanInstance
)
