// Package lp seeds ctxloop violations: its basename places it in the
// solver scope where unbounded loops must poll a context.
package lp

import "context"

func badSpin(work func() bool) {
	for {
		if work() {
			return
		}
	}
}

func badNested(ctx context.Context, work func() bool) {
	// The outer loop consults ctx, the inner one cannot be cancelled.
	for {
		if ctx.Err() != nil {
			return
		}
		spin := 0
		for i := 0; ; i++ {
			spin++
			if work() {
				break
			}
		}
	}
}

//lint:allow ctxloop — fixture: termination proven by the bounded counter
func allowedCounted(work func() bool) {
	n := 0
	for {
		n++
		if n > 1000 || work() {
			return
		}
	}
}

func cleanPolling(ctx context.Context, work func() bool) {
	for {
		if ctx.Err() != nil {
			return
		}
		if work() {
			return
		}
	}
}

func cleanSelect(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

func cleanForwarded(ctx context.Context, step func(context.Context) bool) {
	for {
		if step(ctx) {
			return
		}
	}
}

func cleanBounded(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

var (
	_ = badSpin
	_ = badNested
	_ = allowedCounted
	_ = cleanPolling
	_ = cleanSelect
	_ = cleanForwarded
	_ = cleanBounded
)
