// Package rawlog seeds rawlog violations for the golden-fixture test.
package rawlog

import (
	"fmt"
	"io"
	"log"
	"os"
)

func bad() {
	fmt.Fprintln(os.Stderr, "direct stderr write")
	fmt.Fprintln(os.Stdout, "direct stdout write")
	log.Println("package log in library code")
}

func allowed() {
	fmt.Fprintln(os.Stderr, "by design") //lint:allow rawlog — fixture suppression
}

func clean(w io.Writer) {
	fmt.Fprintln(w, "an injected writer is fine")
}

var _ = bad
var _ = allowed
var _ = clean
