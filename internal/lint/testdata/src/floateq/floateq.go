// Package floatfix seeds floateq violations for the golden-fixture test.
package floatfix

func exactEq(a, b float64) bool {
	return a == b
}

func exactNeq(a, b float64) bool {
	if a != b {
		return true
	}
	return false
}

func allowedInline(a, b float64) bool {
	return a == b //lint:allow floateq — seeded suppression check
}

//lint:allow floateq — doc-comment suppression covers the whole body
func allowedByDoc(a, b float64) bool {
	return a == b
}

func intsAreFine(a, b int) bool {
	return a == b
}

const bothConst = 1.5 == 2.5

func float32Too(a, b float32) bool {
	return a == b
}

var _ = exactEq
var _ = exactNeq
var _ = allowedInline
var _ = allowedByDoc
var _ = intsAreFine
var _ = bothConst
var _ = float32Too
