// Package audit seeds suppression-hygiene violations for the allowaudit
// golden test: a reasonless directive, a stale one, and an unknown name.
package audit

import "fmt"

func reasonless(a, b float64) bool {
	return a == b //lint:allow floateq
}

func stale() int {
	//lint:allow nopanic — historical: the panic below was removed long ago
	return 1
}

func unknown() {
	//lint:allow nosuchcheck — the analyzer this suppressed was renamed
	fmt.Sprintln("x")
}

func live(a, b float64) bool {
	return a == b //lint:allow floateq — fixture: legitimate exact comparison
}

var (
	_ = reasonless
	_ = stale
	_ = unknown
	_ = live
)
