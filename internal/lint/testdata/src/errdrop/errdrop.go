// Package errfix seeds errdrop violations for the golden-fixture test.
package errfix

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

func drops() {
	mayFail()
	pair()
	defer mayFail()
	go mayFail()
}

func handles() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // explicit discard stays visible in review; not flagged
	fmt.Println("best-effort output")
	var b strings.Builder
	b.WriteString("documented to never fail")
	mayFail() //lint:allow errdrop — seeded suppression check
	return nil
}

var _ = drops
var _ = handles
