package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags loops that range over a map while feeding an ordered
// sink: printing or writing inside the body, calling a function that
// carries the cross-package emit fact (see facts.go), or appending to a
// slice declared outside the loop that is never subsequently sorted in the
// enclosing function. Go randomizes map iteration order per run, so any of
// these leaks nondeterminism straight into program output — the canonical
// way a "byte-identical tables" contract dies. The fix is mechanical:
// collect the keys, sort them, range over the sorted slice.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags ranging over a map while emitting output or appending to " +
		"an unsorted slice; sort the keys first so map iteration order " +
		"cannot leak into results",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrderFunc(pass, fd)
		}
	}
}

func checkMapOrderFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		reportMapOrderBody(pass, fd, rs)
		return true
	})
}

// reportMapOrderBody scans one map-range body for ordered-sink operations
// and reports the first of each kind.
func reportMapOrderBody(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	reportedEmit, reportedAppend := false, false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if !reportedEmit && emittingCall(pass.Info, node, pass.Facts) {
				reportedEmit = true
				pass.Reportf(node.Pos(),
					"emitting inside a range over a map leaks iteration order into output; "+
						"sort the keys and range over them")
			}
		case *ast.AssignStmt:
			if reportedAppend {
				return true
			}
			for i, rhs := range node.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(node.Lhs) {
					continue
				}
				fun, ok := call.Fun.(*ast.Ident)
				if !ok || fun.Name != "append" {
					continue
				}
				if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
					continue
				}
				target, ok := node.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[target]
				if obj == nil {
					obj = pass.Info.Defs[target]
				}
				if obj == nil {
					continue
				}
				// Only slices declared outside the loop carry order out of
				// it; a loop-local slice dies with the iteration.
				if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
					continue
				}
				if sortedAfter(pass, fd, obj, rs.End()) {
					continue
				}
				reportedAppend = true
				pass.Reportf(node.Pos(),
					"appending to %s inside a range over a map records iteration order; "+
						"sort %s afterwards or range over sorted keys", target.Name, target.Name)
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call after pos inside fd — the collect-then-sort idiom that launders map
// order back out.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if argID, ok := arg.(*ast.Ident); ok && pass.Info.Uses[argID] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
