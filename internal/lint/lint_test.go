package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadFixture loads one seeded fixture tree (the named directory and any
// subpackages) from testdata/src.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, errs := Load([]string{filepath.Join("testdata", "src", name) + "/..."})
	for _, e := range errs {
		t.Errorf("loading fixture %s: %v", name, e)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", name)
	}
	return pkgs
}

func findingLines(fs []Finding) []int {
	lines := make([]int, len(fs))
	for i, f := range fs {
		lines[i] = f.Line
	}
	return lines
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGoldenFixtures checks each analyzer against its seeded fixture: every
// planted violation is caught at the expected line, every suppressed or
// clean construct stays silent.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		fixture  string
		want     []int // finding lines, sorted
	}{
		{"floateq", "floateq", []int{5, 9, 31}},
		{"nopanic", "nopanic", []int{8}},
		{"errdrop", "errdrop", []int{15, 16, 17, 18}},
		{"looprange", "looprange", []int{7, 12}},
		{"rawlog", "rawlog", []int{12, 13, 14}},
		{"maporder", "maporder", []int{16, 22, 29, 36}},
		{"wallclock", "wallclock", []int{22, 26, 30}},
		// randsource loads two packages: the engine-shaped subfixture
		// (engine/engine.go, sorted first) then randsource.go itself.
		{"randsource", "randsource", []int{15, 28, 11, 15, 19}},
		{"atomicguard", "atomicguard", []int{21, 25}},
		{"ctxloop", "ctxloop", []int{8, 22}},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			a := ByName(tc.analyzer)
			if a == nil {
				t.Fatalf("unknown analyzer %q", tc.analyzer)
			}
			pkgs := loadFixture(t, tc.fixture)
			got := Run(pkgs, []*Analyzer{a})
			if !equalInts(findingLines(got), tc.want) {
				t.Errorf("finding lines = %v, want %v\nfindings:\n%s",
					findingLines(got), tc.want, renderFindings(got))
			}
			for _, f := range got {
				if f.Analyzer != tc.analyzer {
					t.Errorf("finding attributed to %q, want %q", f.Analyzer, tc.analyzer)
				}
				if f.Message == "" || f.Col == 0 {
					t.Errorf("finding missing message or column: %+v", f)
				}
			}
		})
	}
}

// TestSuiteSilentOnCleanFixture runs every analyzer over the clean fixture.
func TestSuiteSilentOnCleanFixture(t *testing.T) {
	pkgs := loadFixture(t, "clean")
	if got := Run(pkgs, All()); len(got) != 0 {
		t.Errorf("clean fixture produced findings:\n%s", renderFindings(got))
	}
}

// TestFactsCrossPackage pins the two fact sources the maporder fixture
// depends on: the derived emit fact (EmitRow's body prints) and the
// explicit //lint:fact emit directive (Record's body does not trip a
// built-in recognizer).
func TestFactsCrossPackage(t *testing.T) {
	pkgs := loadFixture(t, "maporder")
	facts := GatherFacts(pkgs)
	const lib = "nocdeploy/internal/lint/testdata/src/maporder/emitlib"
	for _, fn := range []string{lib + ".EmitRow", lib + ".Record"} {
		if !facts.Has(fn, FactEmit) {
			t.Errorf("fact base missing emit fact for %s; have %v", fn, facts.Funcs(FactEmit))
		}
	}
	if facts.Has(lib+".Pure", FactEmit) {
		t.Errorf("%s.Pure wrongly carries the emit fact", lib)
	}
}

// TestAuditFixture checks the suppression-hygiene sweep: a reasonless
// directive, a stale one and an unknown analyzer name are each reported;
// a live, reasoned directive is not.
func TestAuditFixture(t *testing.T) {
	pkgs := loadFixture(t, "audit")
	got := Audit(pkgs, All())
	if want := []int{8, 12, 17}; !equalInts(findingLines(got), want) {
		t.Fatalf("audit lines = %v, want %v\nfindings:\n%s", findingLines(got), want, renderFindings(got))
	}
	for i, substr := range []string{"has no reason", "stale //lint:allow nopanic", `unknown analyzer "nosuchcheck"`} {
		if got[i].Analyzer != AuditName {
			t.Errorf("finding %d attributed to %q, want %q", i, got[i].Analyzer, AuditName)
		}
		if !strings.Contains(got[i].Message, substr) {
			t.Errorf("audit finding %d = %q, want substring %q", i, got[i].Message, substr)
		}
	}
}

// TestReasonlessAllowDoesNotSuppress pins the mandatory-reason contract: a
// directive without a reason leaves the finding live.
func TestReasonlessAllowDoesNotSuppress(t *testing.T) {
	pkgs := loadFixture(t, "audit")
	got := Run(pkgs, []*Analyzer{FloatEq})
	if want := []int{8}; !equalInts(findingLines(got), want) {
		t.Errorf("floateq lines = %v, want %v (reasonless allow on line 8 must not suppress, "+
			"reasoned allow on line 22 must)", findingLines(got), want)
	}
}

// TestRunParallelDeterministic pins the engine's own determinism contract:
// findings are byte-identical at any worker count.
func TestRunParallelDeterministic(t *testing.T) {
	pkgs := loadFixture(t, "maporder")
	pkgs = append(pkgs, loadFixture(t, "randsource")...)
	serial := RunParallel(pkgs, All(), 1)
	for _, workers := range []int{2, 4, 8} {
		if got := RunParallel(pkgs, All(), workers); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d findings differ from serial run:\n%s\nvs\n%s",
				workers, renderFindings(got), renderFindings(serial))
		}
	}
}

// TestLoadTolerant pins the degraded-run contract: a package that fails to
// type-check comes back as a LoadError naming it, and the healthy sibling
// packages still load and analyze.
func TestLoadTolerant(t *testing.T) {
	pkgs, errs := Load([]string{
		filepath.Join("testdata", "src", "broken"),
		filepath.Join("testdata", "src", "rawlog"),
	})
	if len(errs) != 1 {
		t.Fatalf("got %d load errors, want 1: %v", len(errs), errs)
	}
	if want := "nocdeploy/internal/lint/testdata/src/broken"; errs[0].PkgPath != want {
		t.Errorf("LoadError.PkgPath = %q, want %q", errs[0].PkgPath, want)
	}
	if len(pkgs) != 1 || filepath.Base(pkgs[0].Dir) != "rawlog" {
		t.Fatalf("healthy sibling did not load: %v", pkgs)
	}
	if got := Run(pkgs, []*Analyzer{RawLog}); len(got) == 0 {
		t.Error("healthy package produced no findings despite seeded violations")
	}
}

// TestRepoLintsClean is the integration check behind `go run ./cmd/noclint
// ./...` exiting 0: the repository's own tree must stay free of findings.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, errs := Load([]string{filepath.Join("..", "..") + "/..."})
	for _, e := range errs {
		t.Errorf("loading repository: %v", e)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	if got := Run(pkgs, All()); len(got) != 0 {
		t.Errorf("repository is not lint-clean:\n%s", renderFindings(got))
	}
	if got := Audit(pkgs, All()); len(got) != 0 {
		t.Errorf("suppression audit is not clean:\n%s", renderFindings(got))
	}
}

// TestFindingJSONShape pins the machine-readable output format.
func TestFindingJSONShape(t *testing.T) {
	f := Finding{Analyzer: "floateq", File: "x.go", Line: 3, Col: 7, Message: "m"}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"analyzer"`, `"file"`, `"line"`, `"col"`, `"message"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON %s missing key %s", b, key)
		}
	}
	if got, want := f.String(), "x.go:3:7: floateq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestSARIFRoundTrip pins the SARIF 2.1.0 output: required top-level
// fields, one rule per analyzer (plus allowaudit), stable marshaling, and
// a lossless findings round-trip.
func TestSARIFRoundTrip(t *testing.T) {
	findings := []Finding{
		{Analyzer: "maporder", File: "internal/core/report.go", Line: 12, Col: 3, Message: "m1"},
		{Analyzer: "wallclock", File: "internal/lp/simplex.go", Line: 40, Col: 9, Message: "m2"},
	}
	log := ToSARIF(findings, All())
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("log version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "noclint" {
		t.Fatalf("unexpected runs shape: %+v", log.Runs)
	}
	if got, want := len(log.Runs[0].Tool.Driver.Rules), len(All())+1; got != want {
		t.Errorf("declared %d rules, want %d (suite + allowaudit)", got, want)
	}
	for i, r := range log.Runs[0].Tool.Driver.Rules {
		if i > 0 && log.Runs[0].Tool.Driver.Rules[i-1].ID >= r.ID {
			t.Errorf("rules not sorted at %d: %q >= %q", i, log.Runs[0].Tool.Driver.Rules[i-1].ID, r.ID)
		}
	}

	data, err := MarshalSARIF(log)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := MarshalSARIF(ToSARIF(findings, All()))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("SARIF marshaling is not byte-stable across identical runs")
	}

	var decoded SarifLog
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("emitted SARIF does not parse back: %v", err)
	}
	if got := FindingsFromSARIF(&decoded); !reflect.DeepEqual(got, findings) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, findings)
	}
}

// TestBaselineFilter pins baseline semantics: matching is line-insensitive
// (the finding moved but stays accepted) and message-sensitive (a changed
// message resurfaces).
func TestBaselineFilter(t *testing.T) {
	accepted := Finding{Analyzer: "rawlog", File: "a/b.go", Line: 10, Col: 2, Message: "m"}
	base := NewBaseline([]Finding{accepted})

	moved := accepted
	moved.Line, moved.Col = 99, 1
	changed := accepted
	changed.Message = "other"
	got := base.Filter([]Finding{moved, changed})
	if len(got) != 1 || got[0].Message != "other" {
		t.Fatalf("Filter kept %+v, want only the changed-message finding", got)
	}

	data, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Filter([]Finding{moved, changed}); len(got) != 1 || got[0].Message != "other" {
		t.Fatalf("after save/load, Filter kept %+v", got)
	}

	empty, err := NewBaseline(nil).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(empty)) != "[]" {
		t.Errorf("empty baseline marshals to %q, want []", empty)
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
