package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one seeded package from testdata/src.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load([]string{filepath.Join("testdata", "src", name)})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs
}

func findingLines(fs []Finding) []int {
	lines := make([]int, len(fs))
	for i, f := range fs {
		lines[i] = f.Line
	}
	return lines
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGoldenFixtures checks each analyzer against its seeded fixture: every
// planted violation is caught at the expected line, every suppressed or
// clean construct stays silent.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		fixture  string
		want     []int // finding lines, sorted
	}{
		{"floateq", "floateq", []int{5, 9, 31}},
		{"nopanic", "nopanic", []int{8}},
		{"errdrop", "errdrop", []int{15, 16, 17, 18}},
		{"looprange", "looprange", []int{7, 12}},
		{"rawlog", "rawlog", []int{12, 13, 14}},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			a := ByName(tc.analyzer)
			if a == nil {
				t.Fatalf("unknown analyzer %q", tc.analyzer)
			}
			pkgs := loadFixture(t, tc.fixture)
			got := Run(pkgs, []*Analyzer{a})
			if !equalInts(findingLines(got), tc.want) {
				t.Errorf("finding lines = %v, want %v\nfindings:\n%s",
					findingLines(got), tc.want, renderFindings(got))
			}
			for _, f := range got {
				if f.Analyzer != tc.analyzer {
					t.Errorf("finding attributed to %q, want %q", f.Analyzer, tc.analyzer)
				}
				if f.Message == "" || f.Col == 0 {
					t.Errorf("finding missing message or column: %+v", f)
				}
			}
		})
	}
}

// TestSuiteSilentOnCleanFixture runs every analyzer over the clean fixture.
func TestSuiteSilentOnCleanFixture(t *testing.T) {
	pkgs := loadFixture(t, "clean")
	if got := Run(pkgs, All()); len(got) != 0 {
		t.Errorf("clean fixture produced findings:\n%s", renderFindings(got))
	}
}

// TestRepoLintsClean is the integration check behind `go run ./cmd/noclint
// ./...` exiting 0: the repository's own tree must stay free of findings.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := Load([]string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	if got := Run(pkgs, All()); len(got) != 0 {
		t.Errorf("repository is not lint-clean:\n%s", renderFindings(got))
	}
}

// TestFindingJSONShape pins the machine-readable output format.
func TestFindingJSONShape(t *testing.T) {
	f := Finding{Analyzer: "floateq", File: "x.go", Line: 3, Col: 7, Message: "m"}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"analyzer"`, `"file"`, `"line"`, `"col"`, `"message"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON %s missing key %s", b, key)
		}
	}
	if got, want := f.String(), "x.go:3:7: floateq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
