package lint

import (
	"go/ast"
	"go/types"
)

// wallClockScope is the set of solver package basenames under the
// injected-clock contract: their results (deadline behaviour, phase
// timings, incumbent trajectories) must be reproducible under a fake
// clock, so raw wall-clock reads are banned outside an approved seam.
var wallClockScope = map[string]bool{"lp": true, "milp": true, "core": true, "exp": true, "engine": true}

// wallClockFuncs are the time-package entry points that read or arm the
// process clock. Pure constructors (time.Duration arithmetic, time.Unix)
// stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"NewTimer": true, "NewTicker": true, "After": true, "AfterFunc": true, "Tick": true,
}

// WallClock flags raw wall-clock access — time.Now, time.Since and timer
// constructors — in the solver packages (lp, milp, core, exp, engine).
// Solver timing must flow through an injected obs.Clock seam so deadline
// logic is testable with a fake clock and solver output never depends on
// when it ran. A function annotated //lint:fact clockseam is the
// per-package approved seam (the single place that falls back to time.Now
// when no clock is injected); everything else must call it.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/time.Since/timer constructors in solver packages " +
		"(lp, milp, core, exp, engine) outside a //lint:fact clockseam " +
		"function; route timing through the options' obs.Clock",
	Run: runWallClock,
}

func runWallClock(pass *Pass) {
	if !wallClockScope[baseName(pass.PkgPath)] {
		return
	}
	for _, file := range pass.Files {
		seams := clockSeamSpans(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pos := pass.Fset.Position(sel.Pos())
			for _, sp := range seams {
				if pos.Line >= sp[0] && pos.Line <= sp[1] {
					return true // inside the approved seam
				}
			}
			pass.Reportf(sel.Pos(),
				"raw time.%s in solver package %s; read the injected clock (opts clock seam) instead",
				sel.Sel.Name, pass.Pkg.Name())
			return true
		})
	}
}

// clockSeamSpans returns the line spans of functions in file carrying the
// clockseam fact (declared in this package; facts are keyed by qualified
// name so the lookup works identically for methods).
func clockSeamSpans(pass *Pass, file *ast.File) [][2]int {
	var spans [][2]int
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if fn == nil || !pass.Facts.HasFunc(fn, FactClockSeam) {
			continue
		}
		from := pass.Fset.Position(fd.Pos()).Line
		to := pass.Fset.Position(fd.End()).Line
		spans = append(spans, [2]int{from, to})
	}
	return spans
}

// baseName returns the last path segment of an import path.
func baseName(pkgPath string) string {
	for i := len(pkgPath) - 1; i >= 0; i-- {
		if pkgPath[i] == '/' {
			return pkgPath[i+1:]
		}
	}
	return pkgPath
}
