// Package lint is noclint's analyzer engine: a small, dependency-free
// static-analysis framework built directly on the standard library's
// go/ast, go/parser and go/types. It exists because generic linters do not
// know this repository's domain invariants — a numerical solver stack must
// not compare floats exactly, must not panic in library code, and must not
// drop errors — so we enforce them ourselves.
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Findings with precise file:line:col positions. Findings can
// be suppressed with an in-source directive:
//
//	//lint:allow <name>[,<name>...] [reason]
//
// placed on the offending line, on the line directly above it, or in the
// doc comment of the enclosing function declaration (which suppresses the
// named analyzers for the whole function). The reason text is free-form
// but expected: an allow without a why will not survive review.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one domain check.
type Analyzer struct {
	// Name identifies the analyzer in reports and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the package behind pass and reports findings.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{FloatEq, NoPanic, ErrDrop, LoopRange, RawLog}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies every analyzer to every package and returns the surviving
// findings (allow-directives already applied), sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		sup := newSuppressor(pkg.Fset, pkg.Files)
		var raw []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.PkgPath,
				Info:     pkg.Info,
				findings: &raw,
			}
			a.Run(pass)
		}
		for _, f := range raw {
			if !sup.allows(f) {
				all = append(all, f)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all
}

const allowPrefix = "lint:allow"

// suppressor indexes //lint:allow directives of one package.
type suppressor struct {
	// line[file][line] holds analyzer names allowed on that line and the
	// line below it.
	line map[string]map[int]map[string]bool
	// span holds function-scoped allows: findings inside [from, to] lines
	// of file for the named analyzers are suppressed.
	spans []allowSpan
}

type allowSpan struct {
	file     string
	from, to int
	names    map[string]bool
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{line: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := s.line[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					s.line[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = map[string]bool{}
					byLine[pos.Line] = set
				}
				for n := range names {
					set[n] = true
				}
			}
		}
		// Function-scoped allows via the declaration's doc comment.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			names := map[string]bool{}
			for _, c := range fd.Doc.List {
				for n := range parseAllow(c.Text) {
					names[n] = true
				}
			}
			if len(names) == 0 {
				continue
			}
			from := fset.Position(fd.Pos())
			to := fset.Position(fd.End())
			s.spans = append(s.spans, allowSpan{
				file:  from.Filename,
				from:  from.Line,
				to:    to.Line,
				names: names,
			})
		}
	}
	return s
}

// parseAllow extracts the analyzer names of one //lint:allow comment, or
// nil if the comment is not a directive.
func parseAllow(text string) map[string]bool {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, allowPrefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, allowPrefix))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	names := map[string]bool{}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	return names
}

func (s *suppressor) allows(f Finding) bool {
	if byLine := s.line[f.File]; byLine != nil {
		// A directive suppresses its own line and the line directly below,
		// so it can trail the statement or sit on its own line above.
		for _, l := range [2]int{f.Line, f.Line - 1} {
			if set := byLine[l]; set != nil && (set[f.Analyzer] || set["all"]) {
				return true
			}
		}
	}
	for _, sp := range s.spans {
		if sp.file == f.File && f.Line >= sp.from && f.Line <= sp.to &&
			(sp.names[f.Analyzer] || sp.names["all"]) {
			return true
		}
	}
	return false
}
