// Package lint is noclint's analyzer engine: a small, dependency-free
// static-analysis framework built directly on the standard library's
// go/ast, go/parser and go/types. It exists because generic linters do not
// know this repository's domain invariants — a numerical solver stack must
// not compare floats exactly, must not panic in library code, must not
// drop errors, and must not let map iteration order or the wall clock leak
// into solver output — so we enforce them ourselves.
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Findings with precise file:line:col positions. Analyzers
// additionally see cross-package Facts (see facts.go) gathered over every
// loaded package before any analysis runs, so properties like "this
// function emits output" or "this function is the approved clock seam"
// survive package boundaries. Findings can be suppressed with an in-source
// directive:
//
//	//lint:allow <name>[,<name>...] <reason>
//
// placed on the offending line, on the line directly above it, or in the
// doc comment of the enclosing function declaration (which suppresses the
// named analyzers for the whole function). The reason is mandatory: a
// directive without one suppresses nothing, and Audit reports it — along
// with directives that no longer suppress anything — so suppression debt
// stays visible.
package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"nocdeploy/internal/runner"
)

// Finding is one analyzer report.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one domain check.
type Analyzer struct {
	// Name identifies the analyzer in reports and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the package behind pass and reports findings.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info
	// Facts is the cross-package fact base gathered over every package of
	// the run; nil when the caller skipped fact gathering.
	Facts *Facts

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatEq, NoPanic, ErrDrop, LoopRange, RawLog,
		MapOrder, WallClock, RandSource, AtomicGuard, CtxLoop,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies every analyzer to every package and returns the surviving
// findings (allow-directives already applied), sorted by position. It is
// RunParallel with one worker per core.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunParallel(pkgs, analyzers, 0)
}

// RunParallel is Run with an explicit analysis worker count (≤ 0 means all
// cores). Packages are analyzed concurrently — each package's files, type
// info and suppressor are private to its work item, and the shared
// FileSet, Facts and analyzer set are only read — then merged and sorted,
// so the output is byte-identical at any worker count.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) []Finding {
	facts := GatherFacts(pkgs)
	perPkg, err := runner.Map(context.Background(), workers, len(pkgs),
		func(_ context.Context, i int) ([]Finding, error) {
			return analyzePackage(pkgs[i], analyzers, facts, nil), nil
		})
	if err != nil {
		// The analysis function never returns an error and the context is
		// never cancelled, so the only failure mode is a panicking
		// analyzer; re-raise it rather than silently dropping findings.
		panic(err) //lint:allow nopanic — re-raising a worker panic captured by the pool
	}
	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	sortFindings(all)
	return all
}

// analyzePackage runs the analyzers over one package and applies its
// suppression directives. When sup is non-nil the caller's suppressor is
// used (and its usage counters updated); otherwise a fresh one is built.
func analyzePackage(pkg *Package, analyzers []*Analyzer, facts *Facts, sup *suppressor) []Finding {
	if sup == nil {
		sup = newSuppressor(pkg.Fset, pkg.Files)
	}
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			PkgPath:  pkg.PkgPath,
			Info:     pkg.Info,
			Facts:    facts,
			findings: &raw,
		}
		a.Run(pass)
	}
	var kept []Finding
	for _, f := range raw {
		if !sup.allows(f) {
			kept = append(kept, f)
		}
	}
	return kept
}

func sortFindings(all []Finding) {
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		if all[i].Analyzer != all[j].Analyzer {
			return all[i].Analyzer < all[j].Analyzer
		}
		return all[i].Message < all[j].Message
	})
}

// AuditName is the pseudo-analyzer name under which Audit reports
// suppression-hygiene findings.
const AuditName = "allowaudit"

// Audit checks every //lint:allow directive of the given packages against
// the analyzers: a directive that names an unknown analyzer, carries no
// reason, or no longer suppresses any finding is itself reported as a
// finding (analyzer "allowaudit"). Run it with the full suite — a
// directive can only be proven stale against the analyzers that could
// have fired.
func Audit(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := map[string]bool{"all": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := GatherFacts(pkgs)
	var all []Finding
	for _, pkg := range pkgs {
		sup := newSuppressor(pkg.Fset, pkg.Files)
		// Running the analyzers through the shared suppressor counts, per
		// directive and per name, how many findings each one absorbs.
		analyzePackage(pkg, analyzers, facts, sup)
		for _, d := range sup.directives {
			if !d.hasReason {
				all = append(all, Finding{
					Analyzer: AuditName, File: d.file, Line: d.line, Col: d.col,
					Message: fmt.Sprintf("//lint:allow %s has no reason; a suppression without a why does not suppress", strings.Join(d.sortedNames(), ",")),
				})
			}
			for _, name := range d.sortedNames() {
				if !known[name] {
					all = append(all, Finding{
						Analyzer: AuditName, File: d.file, Line: d.line, Col: d.col,
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", name),
					})
					continue
				}
				if d.used[name] == 0 {
					all = append(all, Finding{
						Analyzer: AuditName, File: d.file, Line: d.line, Col: d.col,
						Message: fmt.Sprintf("stale //lint:allow %s: it suppresses no finding; delete it", name),
					})
				}
			}
		}
	}
	sortFindings(all)
	return all
}

const allowPrefix = "lint:allow"

// allowDirective is one parsed //lint:allow comment with its suppression
// span and per-name usage counters (filled in by suppressor.allows).
type allowDirective struct {
	file      string
	line, col int // position of the directive comment
	from, to  int // line span the directive suppresses
	names     map[string]bool
	hasReason bool
	used      map[string]int
}

func (d *allowDirective) sortedNames() []string {
	names := make([]string, 0, len(d.names))
	for n := range d.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// suppressor indexes the //lint:allow directives of one package.
type suppressor struct {
	directives []*allowDirective
	// byFile groups directives per file for the per-finding scan; package
	// directive counts are small, so a linear span check is fine.
	byFile map[string][]*allowDirective
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{byFile: map[string][]*allowDirective{}}
	add := func(d *allowDirective) {
		s.directives = append(s.directives, d)
		s.byFile[d.file] = append(s.byFile[d.file], d)
	}
	// Directive comments inside function doc comments suppress the whole
	// function body; remember them so the comment sweep below can widen
	// their span instead of double-registering them.
	span := map[*ast.Comment][2]int{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			from := fset.Position(fd.Pos()).Line
			to := fset.Position(fd.End()).Line
			for _, c := range fd.Doc.List {
				span[c] = [2]int{from, to}
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason := parseAllow(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &allowDirective{
					file: pos.Filename, line: pos.Line, col: pos.Column,
					// A line directive suppresses its own line and the line
					// directly below, so it can trail the statement or sit
					// on its own line above it.
					from: pos.Line, to: pos.Line + 1,
					names: names, hasReason: reason,
					used: map[string]int{},
				}
				if sp, ok := span[c]; ok {
					d.from, d.to = sp[0], sp[1]
				}
				add(d)
			}
		}
	}
	return s
}

// parseAllow extracts the analyzer names and reason presence of one
// //lint:allow comment; names is nil if the comment is not a directive.
func parseAllow(text string) (names map[string]bool, hasReason bool) {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, allowPrefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, allowPrefix))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	names = map[string]bool{}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	if len(names) == 0 {
		return nil, false
	}
	// Everything after the name list is the reason. Punctuation-only
	// separators ("—", "-") do not count as one.
	for _, f := range fields[1:] {
		if strings.Trim(f, "—–-:") != "" {
			return names, true
		}
	}
	return names, false
}

// allows reports whether a directive suppresses f, updating the matching
// directive's usage counters. A directive without a reason matches for
// accounting (Audit reports it) but does not suppress.
func (s *suppressor) allows(f Finding) bool {
	suppressed := false
	for _, d := range s.byFile[f.File] {
		if f.Line < d.from || f.Line > d.to {
			continue
		}
		name := ""
		switch {
		case d.names[f.Analyzer]:
			name = f.Analyzer
		case d.names["all"]:
			name = "all"
		default:
			continue
		}
		d.used[name]++
		if d.hasReason {
			suppressed = true
		}
	}
	return suppressed
}
