package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags calls whose error result is silently discarded: a call
// used as a bare statement (or behind go/defer) when its result list
// contains an error. Solver code that ignores a Validate, Solve or decode
// error continues on garbage state.
//
// A small allowlist covers stdlib calls that are conventionally
// best-effort or can never fail:
//
//   - fmt.Print / fmt.Printf / fmt.Println and the fmt.Fprint* family
//     (formatted diagnostics; CLI output is best-effort by convention)
//   - methods on *strings.Builder and *bytes.Buffer (documented to never
//     return a non-nil error)
//
// Anything else needs handling, an explicit `_ =` discard, or a
// //lint:allow errdrop annotation with a reason.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags discarded error results from calls used as statements " +
		"(including go/defer)",
	Run: runErrDrop,
}

// errdropAllowedPrefixes match against the callee's fully-qualified name
// as reported by (*types.Func).FullName.
var errdropAllowedPrefixes = []string{
	"fmt.Print",
	"fmt.Fprint",
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

func runErrDrop(pass *Pass) {
	check := func(call *ast.CallExpr, how string) {
		if call == nil || !callReturnsError(pass.Info, call) || errdropAllowed(pass.Info, call) {
			return
		}
		name := calleeName(pass.Info, call)
		pass.Reportf(call.Pos(), "%s discards the error returned by %s", how, name)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "statement")
				}
			case *ast.DeferStmt:
				check(st.Call, "defer")
			case *ast.GoStmt:
				check(st.Call, "go")
			}
			return true
		})
	}
}

// callReturnsError reports whether the call's result list contains an
// error-typed value.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "error" && obj.Pkg() == nil
}

func errdropAllowed(info *types.Info, call *ast.CallExpr) bool {
	name := calleeName(info, call)
	for _, prefix := range errdropAllowedPrefixes {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// calleeName returns the fully-qualified name of the called function, or a
// best-effort rendering for dynamic calls.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f.FullName()
		}
		return fun.Name
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f.FullName()
		}
		return fun.Sel.Name
	}
	return "function value"
}
