package lint

import (
	"go/ast"
	"go/types"
)

// LoopRange flags closures launched with go or defer from inside a loop
// body that capture the loop's iteration variables. Before Go 1.22 every
// iteration shared one variable, so such closures observed the final
// value — the classic aliasing bug. Go 1.22 gives each iteration a fresh
// variable, but the pattern stays flagged here: deferred closures in a
// loop still all run after the loop finishes (usually not what the author
// meant inside a long-running solve), and the code breaks silently when
// compiled with an older language version. Capture the value explicitly
// (pass it as an argument) or annotate with //lint:allow looprange.
var LoopRange = &Analyzer{
	Name: "looprange",
	Doc: "flags go/defer closures inside loops that capture the loop " +
		"variable; pass the value as an argument instead",
	Run: runLoopRange,
}

func runLoopRange(pass *Pass) {
	for _, file := range pass.Files {
		checkLoopRange(pass, file, map[types.Object]string{})
	}
}

// checkLoopRange walks n with the set of in-scope loop variables; loops
// push their iteration variables before descending into the body.
func checkLoopRange(pass *Pass, n ast.Node, loopVars map[types.Object]string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.RangeStmt:
			inner := addLoopVars(pass, loopVars, st.Key, st.Value)
			checkLoopRange(pass, st.Body, inner)
			return false
		case *ast.ForStmt:
			var idents []ast.Expr
			if assign, ok := st.Init.(*ast.AssignStmt); ok {
				idents = assign.Lhs
			}
			inner := addLoopVars(pass, loopVars, idents...)
			checkLoopRange(pass, st.Body, inner)
			return false
		case *ast.GoStmt:
			reportCaptures(pass, st.Call, "go", loopVars)
		case *ast.DeferStmt:
			reportCaptures(pass, st.Call, "defer", loopVars)
		}
		return true
	})
}

func addLoopVars(pass *Pass, outer map[types.Object]string, exprs ...ast.Expr) map[types.Object]string {
	inner := make(map[types.Object]string, len(outer)+2)
	for k, v := range outer {
		inner[k] = v
	}
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			inner[obj] = id.Name
		}
	}
	return inner
}

// reportCaptures flags loop variables referenced inside a go/defer closure.
func reportCaptures(pass *Pass, call *ast.CallExpr, how string, loopVars map[types.Object]string) {
	if call == nil || len(loopVars) == 0 {
		return
	}
	fn, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	seen := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		if name, isLoopVar := loopVars[obj]; isLoopVar {
			seen[obj] = true
			pass.Reportf(id.Pos(),
				"%s'd closure captures loop variable %s; pass it as an argument",
				how, name)
		}
		return true
	})
}
