package lint

import (
	"go/ast"
	"go/types"
)

// ctxLoopScope is the set of solver package basenames whose hot paths must
// stay cancellable: simplex pivoting, branch-and-bound node expansion and
// the heuristic/anneal phases all run unbounded iteration counts, and a
// deadline the loop never polls is a deadline that does not exist.
var ctxLoopScope = map[string]bool{"lp": true, "milp": true, "core": true}

// CtxLoop flags condition-less `for {` loops in solver packages whose body
// never consults a context.Context (no ctx.Err(), ctx.Done() or a call
// forwarding the context). Such a loop cannot be cancelled or deadlined;
// every solver iteration structure must poll its context — possibly
// stride-sampled, like the simplex's every-64-pivots check — or carry a
// //lint:allow ctxloop directive explaining why termination is otherwise
// guaranteed.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "flags unbounded for-loops in solver packages (lp, milp, core) " +
		"that never poll a context.Context; cancellation must reach every " +
		"hot loop",
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) {
	if !ctxLoopScope[baseName(pass.PkgPath)] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fl, ok := n.(*ast.ForStmt)
			if !ok || fl.Cond != nil {
				return true
			}
			if !loopTouchesContext(pass.Info, fl.Body) {
				pass.Reportf(fl.Pos(),
					"unbounded for-loop never polls a context; check ctx.Err() "+
						"(stride-sampled is fine) so cancellation and deadlines reach this loop")
			}
			return true
		})
	}
}

// loopTouchesContext reports whether the loop body mentions a
// context.Context-typed value at all — selecting on ctx.Done(), checking
// ctx.Err(), or passing the context to a callee (which is then responsible
// for polling it). Mentioning the context is a deliberately generous
// notion of "polls": the analyzer's job is to catch loops where
// cancellation *cannot* propagate, not to prove that it does.
func loopTouchesContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if isContextType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context (possibly behind a
// named type or pointer).
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
