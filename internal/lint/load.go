package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// LoadError is one package (or pattern) that failed to parse or
// type-check. The loader reports these alongside the packages that did
// load, so one broken package degrades the run instead of aborting it.
type LoadError struct {
	Dir     string // directory (or pattern) that failed
	PkgPath string // import path when known, "" for pattern errors
	Err     error
}

func (e *LoadError) Error() string {
	where := e.PkgPath
	if where == "" {
		where = e.Dir
	}
	return fmt.Sprintf("%s: %v", where, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// Load resolves package patterns ("./...", "dir/...", or plain directory
// paths), parses every non-test Go file and type-checks each package with
// the standard library's source importer, so the loader works inside any
// module without external dependencies. Directories named testdata or
// vendor, and hidden or underscore-prefixed directories, are skipped when
// expanding "..." patterns (matching the go tool's convention) but are
// honored when named explicitly.
//
// Loading is tolerant: a package that fails to parse or type-check is
// returned as a LoadError while every other package still loads, so the
// driver can report findings for the healthy part of the tree and name
// each failing package precisely (its exit-code contract: findings exit 1,
// load errors exit 2).
func Load(patterns []string) ([]*Package, []*LoadError) {
	dirs, errs := expandPatterns(patterns)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, dir)
		if err != nil {
			pkgPath, _ := packagePath(dir)
			errs = append(errs, &LoadError{Dir: dir, PkgPath: pkgPath, Err: err})
			continue
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, errs
}

func expandPatterns(patterns []string) ([]string, []*LoadError) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	var errs []*LoadError
	add := func(dir string) {
		clean := filepath.Clean(dir)
		if !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, pat := range patterns {
		if pat == "..." {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "/...") {
			root := filepath.Clean(strings.TrimSuffix(pat, "/..."))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				errs = append(errs, &LoadError{Dir: pat, Err: fmt.Errorf("lint: expanding %s: %w", pat, err)})
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			errs = append(errs, &LoadError{Dir: pat, Err: fmt.Errorf("lint: pattern %s: %w", pat, err)})
			continue
		}
		if !info.IsDir() {
			errs = append(errs, &LoadError{Dir: pat, Err: fmt.Errorf("lint: pattern %s is not a directory", pat)})
			continue
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, errs
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the single package in dir; it returns
// (nil, nil) when the directory holds no non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	for _, f := range files[1:] {
		if f.Name.Name != files[0].Name.Name {
			return nil, fmt.Errorf("lint: %s holds multiple packages (%s and %s)",
				dir, files[0].Name.Name, f.Name.Name)
		}
	}
	pkgPath, err := packagePath(dir)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if len(typeErrs) > 0 {
		limit := typeErrs
		if len(limit) > 5 {
			limit = limit[:5]
		}
		msgs := make([]string, len(limit))
		for i, e := range limit {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("lint: type-checking %s failed:\n  %s", pkgPath, strings.Join(msgs, "\n  "))
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// packagePath derives the import path of dir from the enclosing module's
// go.mod; directories outside any module get a synthetic path from the
// directory name.
func packagePath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			module := moduleName(string(data))
			if module == "" {
				return "", fmt.Errorf("lint: %s/go.mod has no module directive", root)
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return "", err
			}
			if rel == "." {
				return module, nil
			}
			return module + "/" + filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return filepath.Base(abs), nil
		}
		root = parent
	}
}

func moduleName(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
