package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Well-known facts. Analyzers consult these to reason about calls that
// cross package boundaries: the callee's body is not in the pass being
// analyzed, but its facts — gathered over every loaded package up front —
// are.
const (
	// FactEmit marks a function whose call contributes to ordered program
	// output (it writes to a writer, builder or trace). Ranging over a map
	// while calling an emitter leaks map iteration order into output — the
	// canonical determinism bug maporder exists to catch.
	FactEmit = "emit"
	// FactClockSeam marks a function approved to read the wall clock
	// directly. Solver packages must route every time.Now through exactly
	// one such seam (an injectable-clock accessor), which is what keeps
	// deadline logic testable; wallclock skips findings inside seams.
	FactClockSeam = "clockseam"
)

const factPrefix = "lint:fact"

// Facts is the cross-package knowledge base handed to every Pass: a map
// from a function's fully qualified name (types.Func.FullName) to the set
// of facts established for it. Facts come from two sources:
//
//   - explicit //lint:fact <name> directives in a function's doc comment,
//     the way a package exports a domain property the analyzers cannot
//     derive ("this is the approved clock seam");
//   - derivation: a function whose body directly writes through fmt.Fprint*
//     / fmt.Print*, a strings.Builder, a bytes.Buffer or an io.Writer is
//     marked FactEmit automatically.
//
// Derivation is one level deep by design: a helper that merely calls an
// emitting helper in another package is not itself marked, keeping the
// fact set small and predictable; annotate such trampolines explicitly
// when maporder should see through them.
type Facts struct {
	byFunc map[string]map[string]bool
}

// HasFunc reports whether fn carries the fact. Nil-safe on both receiver
// and fn so analyzer call sites stay unconditional.
func (f *Facts) HasFunc(fn *types.Func, fact string) bool {
	if f == nil || fn == nil {
		return false
	}
	return f.byFunc[fn.FullName()][fact]
}

// Has reports whether the function with the given fully qualified name
// (types.Func.FullName form) carries the fact.
func (f *Facts) Has(fullName, fact string) bool {
	if f == nil {
		return false
	}
	return f.byFunc[fullName][fact]
}

// Funcs returns the sorted fully qualified names carrying the fact,
// primarily for tests and -debug output.
func (f *Facts) Funcs(fact string) []string {
	if f == nil {
		return nil
	}
	var names []string
	for name, set := range f.byFunc {
		if set[fact] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func (f *Facts) add(fullName, fact string) {
	set := f.byFunc[fullName]
	if set == nil {
		set = map[string]bool{}
		f.byFunc[fullName] = set
	}
	set[fact] = true
}

// GatherFacts sweeps every loaded package once and returns the shared
// fact base. It runs before any analyzer so facts exported by one package
// are visible when any other package is analyzed, regardless of package
// order.
func GatherFacts(pkgs []*Package) *Facts {
	facts := &Facts{byFunc: map[string]map[string]bool{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				name := fn.FullName()
				for _, fact := range parseFactDirectives(fd.Doc) {
					facts.add(name, fact)
				}
				if fd.Body != nil && derivesEmit(pkg.Info, fd.Body) {
					facts.add(name, FactEmit)
				}
			}
		}
	}
	return facts
}

// parseFactDirectives extracts //lint:fact names from a doc comment.
func parseFactDirectives(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var facts []string
	for _, c := range doc.List {
		body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(body, factPrefix)
		if !ok {
			continue
		}
		if fields := strings.Fields(rest); len(fields) > 0 {
			facts = append(facts, fields[0])
		}
	}
	return facts
}

// derivesEmit reports whether a function body directly performs ordered
// output: fmt printing, or a write through strings.Builder, bytes.Buffer
// or an io.Writer-typed value.
func derivesEmit(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if emittingCall(info, call, nil) {
			found = true
			return false
		}
		return true
	})
	return found
}

// emittingCall reports whether call is an ordered-output operation. The
// built-in recognizers cover fmt printing and writer methods; when facts
// is non-nil, functions carrying FactEmit (explicit or derived in any
// loaded package) count as well.
func emittingCall(info *types.Info, call *ast.CallExpr, facts *Facts) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level function call: fmt.Fprintf(...), fmt.Println(...).
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") {
				return true
			}
			if pn.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Print") {
				return true
			}
			// Cross-package call to a function with the emit fact.
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && facts.HasFunc(fn, FactEmit) {
				return true
			}
			return false
		}
	}
	// Method call: resolve the method object and the receiver type.
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return false
	}
	if facts.HasFunc(fn, FactEmit) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	switch named := recv.(type) {
	case *types.Named:
		obj := named.Obj()
		if obj.Pkg() == nil {
			return false
		}
		path, tname := obj.Pkg().Path(), obj.Name()
		if (path == "strings" && tname == "Builder") || (path == "bytes" && tname == "Buffer") {
			return strings.HasPrefix(fn.Name(), "Write")
		}
		if path == "io" && tname == "Writer" && fn.Name() == "Write" {
			return true
		}
	case *types.Interface:
		// An interface method named Write with ([]byte) (int, error) is
		// io.Writer in spirit regardless of the declaring package.
		if fn.Name() == "Write" && sig.Params().Len() == 1 {
			if sl, ok := sig.Params().At(0).Type().(*types.Slice); ok {
				if b, ok := sl.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
					return true
				}
			}
		}
	}
	return false
}
