package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicGuard flags struct fields that are accessed through sync/atomic in
// one place and through a plain read or write somewhere else in the same
// package. Mixing the two forfeits the happens-before edges the atomic
// calls were bought for: the plain access races with every atomic one, and
// the race detector only catches it when both sides actually interleave
// under test. A field is either always atomic or never atomic.
//
// Fields of the atomic wrapper types (atomic.Uint64 and friends) are safe
// by construction — their only access path is method calls — so this
// analyzer concerns the older pattern of passing &s.field to
// atomic.LoadUint64 / atomic.StoreUint64 / atomic.AddInt64 etc.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc: "flags struct fields accessed both via sync/atomic calls and via " +
		"plain reads/writes in the same package; pick one discipline " +
		"(prefer the atomic.* wrapper types)",
	Run: runAtomicGuard,
}

func runAtomicGuard(pass *Pass) {
	// Pass 1: fields whose address is taken into a sync/atomic call.
	atomicFields := map[*types.Var]string{} // field -> atomic func name (first seen)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := atomicCallName(pass.Info, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := selectedField(pass.Info, sel); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = name
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: plain selector accesses to those fields. An access is atomic
	// only when it is the &x.f operand of a sync/atomic call.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				if _, isAtomic := atomicCallName(pass.Info, call); isAtomic {
					// Skip the sanctioned &x.f arguments but still walk any
					// nested expressions inside them.
					for _, arg := range call.Args {
						ast.Inspect(arg, func(m ast.Node) bool {
							if un, ok := m.(*ast.UnaryExpr); ok && un.Op == token.AND {
								if _, ok := un.X.(*ast.SelectorExpr); ok {
									return false
								}
							}
							reportPlainAtomicAccess(pass, m, atomicFields)
							return true
						})
					}
					return false
				}
			}
			reportPlainAtomicAccess(pass, n, atomicFields)
			return true
		})
	}
}

func reportPlainAtomicAccess(pass *Pass, n ast.Node, atomicFields map[*types.Var]string) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fld := selectedField(pass.Info, sel)
	if fld == nil {
		return
	}
	fn, tracked := atomicFields[fld]
	if !tracked {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"field %s is accessed with atomic.%s elsewhere but plainly here; "+
			"mixing atomic and plain access races", fld.Name(), fn)
}

// atomicCallName reports whether call invokes a sync/atomic package-level
// function and returns its name.
func atomicCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	return sel.Sel.Name, true
}

// selectedField returns the struct field behind a selector expression, or
// nil when the selector resolves to something else (method, package
// member, ...).
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
