package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic flags panic() in library packages. A long-running service built
// on this solver stack cannot tolerate a panic crossing a package
// boundary: library code must return errors and let the caller decide.
// Package main is exempt (a command may abort), as are test files (the
// loader never parses them). The few true invariant violations — "this
// cannot happen on validated input" — must be documented in place with
// //lint:allow nopanic and a reason.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "flags panic() in non-main, non-test packages; return errors instead, " +
		"or annotate documented invariants with //lint:allow nopanic",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a local function that happens to be named panic
			}
			pass.Reportf(call.Pos(),
				"panic in library package %s; return an error, or document the invariant with //lint:allow nopanic",
				pass.Pkg.Name())
			return true
		})
	}
}
