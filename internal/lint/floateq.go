package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point expressions. Exact float
// equality is the classic silent-correctness bug of solver code: reduced
// costs, residuals and bounds accumulate rounding error, so exact
// comparisons flip pivoting and pruning decisions nondeterministically.
// Comparisons must go through the tolerance helpers in internal/numeric
// (Eq, EqTol, IsZero, ...), which is the one package exempt from this
// check. Comparisons where both operands are compile-time constants are
// exempt too — they carry no runtime rounding.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags == / != between float expressions; route comparisons through " +
		"internal/numeric so every tolerance is explicit",
	Run: runFloatEq,
}

// floateqExemptPkg names the approved tolerance-helper package: the place
// where exact float comparisons are allowed to live, because it is the
// implementation of the policy itself.
const floateqExemptPkg = "numeric"

func runFloatEq(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == floateqExemptPkg {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.Info.Types[be.X]
			yt, yok := pass.Info.Types[be.Y]
			if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant fold, no runtime rounding involved
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use internal/numeric (Eq/EqTol/IsZero) or document the exact check with //lint:allow floateq",
				be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
