package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry identifies one accepted finding. Matching is deliberately
// line- and column-insensitive: a baseline must survive unrelated edits
// that shift code around, so an entry pins (analyzer, file, message) and
// nothing positional. Identical findings in the same file collapse to one
// entry — the baseline accepts the message wherever it appears in that
// file, which is the coarseness that makes the mechanism stable.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is a set of accepted findings, serialized as a sorted JSON
// array so the file diffs cleanly under version control.
type Baseline struct {
	entries map[BaselineEntry]bool
}

// NewBaseline builds a baseline accepting exactly the given findings.
func NewBaseline(findings []Finding) *Baseline {
	b := &Baseline{entries: map[BaselineEntry]bool{}}
	for _, f := range findings {
		b.entries[entryOf(f)] = true
	}
	return b
}

// Len returns the number of distinct accepted entries.
func (b *Baseline) Len() int {
	if b == nil {
		return 0
	}
	return len(b.entries)
}

// Filter returns the findings not covered by the baseline, preserving
// order. A nil baseline filters nothing.
func (b *Baseline) Filter(findings []Finding) []Finding {
	if b == nil || len(b.entries) == 0 {
		return findings
	}
	var kept []Finding
	for _, f := range findings {
		if !b.entries[entryOf(f)] {
			kept = append(kept, f)
		}
	}
	return kept
}

// Entries returns the accepted entries sorted by file, analyzer, message.
func (b *Baseline) Entries() []BaselineEntry {
	if b == nil {
		return nil
	}
	entries := make([]BaselineEntry, 0, len(b.entries))
	for e := range b.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].File != entries[j].File {
			return entries[i].File < entries[j].File
		}
		if entries[i].Analyzer != entries[j].Analyzer {
			return entries[i].Analyzer < entries[j].Analyzer
		}
		return entries[i].Message < entries[j].Message
	})
	return entries
}

// Marshal renders the baseline as sorted, indented JSON. An empty baseline
// marshals to "[]" — the committed .noclint-baseline.json stays a visible,
// diffable assertion that the tree owes no suppressions.
func (b *Baseline) Marshal() ([]byte, error) {
	entries := b.Entries()
	if entries == nil {
		entries = []BaselineEntry{}
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// LoadBaseline reads a baseline file written by Marshal.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	b := &Baseline{entries: map[BaselineEntry]bool{}}
	for _, e := range entries {
		// Canonicalize to the same forward-slashed form entryOf produces so
		// lookups match regardless of the OS that wrote the file.
		e.File = filepath.ToSlash(filepath.Clean(filepath.FromSlash(e.File)))
		b.entries[e] = true
	}
	return b, nil
}

func entryOf(f Finding) BaselineEntry {
	return BaselineEntry{
		Analyzer: f.Analyzer,
		File:     filepath.ToSlash(filepath.Clean(f.File)),
		Message:  f.Message,
	}
}
