package lint

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

// SARIF types: the subset of the SARIF 2.1.0 schema that code-scanning
// consumers (GitHub, VS Code SARIF viewers) need. Field order in the
// structs matches the schema's conventional serialization so emitted files
// diff cleanly run-to-run.

// SarifLog is the top-level SARIF 2.1.0 document.
type SarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SarifRun `json:"runs"`
}

// SarifRun is one tool invocation.
type SarifRun struct {
	Tool    SarifTool     `json:"tool"`
	Results []SarifResult `json:"results"`
}

// SarifTool identifies noclint and declares one rule per analyzer.
type SarifTool struct {
	Driver SarifDriver `json:"driver"`
}

// SarifDriver is the tool.driver component.
type SarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SarifRule `json:"rules"`
}

// SarifRule is one analyzer as a reporting descriptor.
type SarifRule struct {
	ID               string       `json:"id"`
	ShortDescription SarifMessage `json:"shortDescription"`
}

// SarifResult is one finding.
type SarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SarifMessage    `json:"message"`
	Locations []SarifLocation `json:"locations"`
}

// SarifMessage wraps a plain-text message.
type SarifMessage struct {
	Text string `json:"text"`
}

// SarifLocation is a physical file location.
type SarifLocation struct {
	PhysicalLocation SarifPhysicalLocation `json:"physicalLocation"`
}

// SarifPhysicalLocation names the artifact and region of a result.
type SarifPhysicalLocation struct {
	ArtifactLocation SarifArtifactLocation `json:"artifactLocation"`
	Region           SarifRegion           `json:"region"`
}

// SarifArtifactLocation is a repo-relative, forward-slashed file URI.
type SarifArtifactLocation struct {
	URI string `json:"uri"`
}

// SarifRegion is a line/column position.
type SarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ToSARIF converts sorted findings into a SARIF 2.1.0 log. Every analyzer
// in the suite is declared as a rule — including the allowaudit
// pseudo-analyzer — whether or not it fired, so consumers can render rule
// metadata for historical results. File paths are cleaned to
// forward-slashed relative URIs as the schema requires.
func ToSARIF(findings []Finding, analyzers []*Analyzer) *SarifLog {
	rules := make([]SarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, SarifRule{ID: a.Name, ShortDescription: SarifMessage{Text: a.Doc}})
	}
	rules = append(rules, SarifRule{
		ID:               AuditName,
		ShortDescription: SarifMessage{Text: "suppression hygiene: reasonless, unknown-name or stale //lint:allow directives"},
	})
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]SarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, SarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: SarifMessage{Text: f.Message},
			Locations: []SarifLocation{{
				PhysicalLocation: SarifPhysicalLocation{
					ArtifactLocation: SarifArtifactLocation{URI: sarifURI(f.File)},
					Region:           SarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	return &SarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []SarifRun{{
			Tool:    SarifTool{Driver: SarifDriver{Name: "noclint", Rules: rules}},
			Results: results,
		}},
	}
}

// MarshalSARIF renders the log as indented JSON with a trailing newline —
// the byte-stable form the CI artifact and baseline diffs rely on.
func MarshalSARIF(log *SarifLog) ([]byte, error) {
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FindingsFromSARIF recovers findings from a SARIF log, inverting ToSARIF.
// It exists for the round-trip test and for tooling that post-processes
// the CI artifact.
func FindingsFromSARIF(log *SarifLog) []Finding {
	var findings []Finding
	for _, run := range log.Runs {
		for _, r := range run.Results {
			f := Finding{Analyzer: r.RuleID, Message: r.Message.Text}
			if len(r.Locations) > 0 {
				loc := r.Locations[0].PhysicalLocation
				f.File = filepath.FromSlash(loc.ArtifactLocation.URI)
				f.Line = loc.Region.StartLine
				f.Col = loc.Region.StartColumn
			}
			findings = append(findings, f)
		}
	}
	return findings
}

// sarifURI converts a (possibly OS-specific) file path to the relative
// forward-slashed form SARIF artifact locations use.
func sarifURI(path string) string {
	return filepath.ToSlash(filepath.Clean(path))
}
