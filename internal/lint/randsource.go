package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// randSourceAllowed are the math/rand package-level entry points that do
// not touch the global, process-wide generator: constructors a caller
// seeds explicitly.
var randSourceAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// RandSource flags randomness that cannot be replayed from an instance
// seed in library code: calls to math/rand's package-level functions
// (which share the global, implicitly seeded generator) and sources seeded
// from the wall clock. The repository's determinism contract — tables
// byte-identical at any worker count — holds because every random stream
// is derived from an explicit per-instance seed (rand.New(rand.NewSource
// (seed)), as in exp's evalGrid); global or time-seeded randomness breaks
// that silently.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc: "flags global math/rand functions and time-seeded sources in " +
		"internal/ library code; derive randomness from an explicit " +
		"per-instance seed via rand.New(rand.NewSource(seed))",
	Run: runRandSource,
}

func runRandSource(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return
	}
	if !strings.Contains(pass.PkgPath, "internal/") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); !ok || fn == nil {
				return true // type references like rand.Rand, rand.Source
			}
			if !randSourceAllowed[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"global rand.%s uses the shared implicitly-seeded generator; "+
						"derive randomness from an explicit per-instance seed",
					sel.Sel.Name)
				return true
			}
			if sel.Sel.Name == "NewSource" && timeSeeded(pass, n) {
				pass.Reportf(sel.Pos(),
					"rand.NewSource seeded from the wall clock is not replayable; "+
						"use an explicit per-instance seed")
			}
			return true
		})
	}
}

// timeSeeded reports whether the rand.NewSource selector at n is called
// with an argument derived from the time package (the classic
// rand.NewSource(time.Now().UnixNano()) anti-pattern).
func timeSeeded(pass *Pass, n ast.Node) bool {
	// Find the enclosing call: n is the SelectorExpr; its parent CallExpr
	// holds the seed argument. Walk the file for the call whose Fun is n.
	var seeded bool
	for _, file := range pass.Files {
		if n.Pos() < file.Pos() || n.Pos() > file.End() {
			continue
		}
		ast.Inspect(file, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || call.Fun != n || len(call.Args) != 1 {
				return true
			}
			ast.Inspect(call.Args[0], func(a ast.Node) bool {
				id, ok := a.(*ast.Ident)
				if !ok {
					return true
				}
				if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "time" {
					seeded = true
				}
				return true
			})
			return false
		})
	}
	return seeded
}
