package milp

import (
	"sync"
	"testing"
	"time"

	"nocdeploy/internal/lp"
	"nocdeploy/internal/obs"
)

// fakeClock is a deterministic obs.Clock advancing by step per read. It
// is locked because the parallel search reads the options clock from
// every worker.
func fakeClock(step time.Duration) obs.Clock {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

// knapsackModel builds a small model with a non-trivial search tree.
func knapsackModel() *Model {
	values := []float64{10, 13, 18, 31, 7, 15}
	weights := []float64{2, 3, 4, 5, 1, 4}
	m := NewModel()
	obj := NewExpr(0)
	row := NewExpr(0)
	for i := range values {
		x := m.AddBinary("x")
		obj.Add(x, -values[i])
		row.Add(x, weights[i])
	}
	m.AddConstr(row, lp.LE, 10)
	m.SetObjective(obj)
	return m
}

// TestTimeLimitFakeClock drives the serial search with an injected clock
// that jumps one hour per read: the very first deadline check after the
// root fires, so the solve stops on the time limit deterministically —
// no wall time involved.
func TestTimeLimitFakeClock(t *testing.T) {
	m := knapsackModel()
	res, err := m.Solve(SolveOptions{
		TimeLimit: time.Second,
		Clock:     fakeClock(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal {
		t.Fatalf("status = %v; an instantly-expired fake-clock deadline must stop the search early", res.Status)
	}
	if res.Status != Limit && res.Status != Feasible {
		t.Fatalf("status = %v, want limit or feasible", res.Status)
	}
}

// TestTimeLimitFakeClockParallel is the same contract for the parallel
// search: workers read the shared options clock for the deadline.
func TestTimeLimitFakeClockParallel(t *testing.T) {
	m := knapsackModel()
	res, err := m.Solve(SolveOptions{
		TimeLimit: time.Second,
		Workers:   4,
		Clock:     fakeClock(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal {
		t.Fatalf("status = %v; an instantly-expired fake-clock deadline must stop the search early", res.Status)
	}
}

// TestIncumbentTrajectoryFakeClock pins the incumbent timestamps to the
// fake clock: with a 1ms step every Incumbent.T must be an exact multiple
// of the step, proving the trajectory is stamped through the seam and not
// through a stray time.Now.
func TestIncumbentTrajectoryFakeClock(t *testing.T) {
	m := knapsackModel()
	res, err := m.Solve(SolveOptions{Clock: fakeClock(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if len(res.Incumbents) == 0 {
		t.Fatal("no incumbent trajectory recorded")
	}
	for _, inc := range res.Incumbents {
		if inc.T%time.Millisecond != 0 {
			t.Errorf("incumbent T=%v is not a whole number of fake-clock steps", inc.T)
		}
	}
}
