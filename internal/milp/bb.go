package milp

import (
	"container/heap"
	"context"
	"math"
	"time"

	"nocdeploy/internal/lp"
	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
)

// Status is the outcome of a branch & bound run.
type Status int

// Solve outcomes.
const (
	// Optimal: an integral solution was found and proven optimal
	// (within the gap tolerance).
	Optimal Status = iota
	// Feasible: an integral solution was found but the search stopped
	// early (time or node limit) before proving optimality.
	Feasible
	// Infeasible: the problem has no integral solution.
	Infeasible
	// Unbounded: the relaxation is unbounded.
	Unbounded
	// Limit: the search stopped on a limit with no integral solution found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return "unknown"
}

// SolveOptions tunes branch & bound.
type SolveOptions struct {
	TimeLimit time.Duration // wall-clock budget; 0 means none
	MaxNodes  int           // node budget; 0 means a generous default
	IntTol    float64       // integrality tolerance; 0 means 1e-6
	RelGap    float64       // stop when (incumbent−bound)/|incumbent| ≤ RelGap; 0 means prove optimality
	Cutoff    float64       // prune nodes ≥ Cutoff (e.g. a heuristic objective); 0 disables unless CutoffSet
	CutoffSet bool
	// Incumbent, if non-nil, is a full feasible solution vector used as the
	// starting incumbent (typically built with Model.Complete from a
	// heuristic). An infeasible vector is ignored.
	Incumbent []float64
	// Ctx, if non-nil, cancels the search cooperatively: it is checked
	// between LP relaxations (the unit of work), so cancellation latency is
	// one node's LP solve. A cancelled search stops like a limit stop — the
	// best incumbent found so far is returned, Result.Cancelled is set, and
	// Status follows the usual limit semantics (Feasible with an incumbent,
	// Limit without).
	Ctx context.Context
	// Workers is the number of concurrent branch & bound workers. 0 or 1
	// runs the deterministic serial search (hybrid best-bound with
	// plunging); n > 1 runs n workers pulling subproblems from a shared
	// depth-prioritized queue with a shared incumbent. Parallel search
	// returns the same proven optimum (and respects the same limits), but
	// node counts — and, when stopped early by RelGap or a limit, which
	// incumbent is returned — can vary run to run. Negative values select
	// runtime.GOMAXPROCS(0).
	Workers int
	// Trace, if non-nil, receives branch & bound telemetry (obs.BBNode,
	// obs.BBIncumbent, obs.BBBound, obs.BBPrune) and is propagated to the
	// LP engine unless LP.Trace is already set. Observability only: the
	// search never reads it, so the solve is identical with tracing on or
	// off.
	Trace *obs.Trace
	// Clock supplies the time source behind TimeLimit deadlines and the
	// Incumbent.T trajectory stamps. Nil means the wall clock; tests inject
	// a fake clock to exercise deadline logic deterministically.
	Clock obs.Clock
	// ColdChildren disables warm-starting each child node's LP relaxation
	// from its parent's optimal basis (on by default: a child differs from
	// its parent in a single variable's bounds, so the dual simplex
	// usually restores optimality in a handful of pivots). Results are
	// identical either way — the basis only changes the pivot path — but
	// the flag gives experiments and debugging a cold-start reference.
	ColdChildren bool
	LP           lp.Options // passed through to the LP engine
}

// now reads the configured clock. This is the MILP engine's only approved
// wall-clock access: everything else in the package must go through it so
// deadline behaviour stays injectable.
//
//lint:fact clockseam
func (o SolveOptions) now() time.Time {
	if o.Clock != nil {
		return o.Clock()
	}
	return time.Now()
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if numeric.IsZero(o.IntTol) {
		o.IntTol = 1e-6
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	return o
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	X      []float64 // best integral solution; nil if none found
	Obj    float64   // objective of X (model constant included)
	Bound  float64   // best proven lower bound (model constant included)
	Nodes  int       // LP relaxations solved
	Iters  int       // total simplex iterations
	// Cancelled reports that SolveOptions.Ctx was cancelled before the
	// search finished; X still carries the best incumbent found so far.
	Cancelled bool
	// Incumbents is the trajectory of accepted integral solutions in
	// acceptance order (a caller-seeded incumbent appears at T=0). For
	// parallel searches the trajectory depends on scheduling, like the
	// node count.
	Incumbents []Incumbent
}

// Incumbent records one improvement of the best integral solution.
type Incumbent struct {
	T     time.Duration // since the solve started
	Obj   float64       // model-scale objective (constant included)
	Nodes int           // LP relaxations solved at acceptance time
}

// Gap returns the relative optimality gap of the result, zero when proven
// optimal, +Inf when no incumbent exists.
func (r *Result) Gap() float64 {
	if r.X == nil {
		return math.Inf(1)
	}
	return relGap(r.Obj, r.Bound)
}

// relGap is the shared relative-gap formula: (incumbent − bound)/|incumbent|
// with the denominator floored and the result clamped at zero (open nodes
// whose bounds all exceed the incumbent mean optimality is proven, not a
// negative gap).
func relGap(obj, bound float64) float64 {
	denom := math.Abs(obj)
	if denom < 1e-12 {
		denom = 1e-12
	}
	g := (obj - bound) / denom
	if g < 0 {
		g = 0
	}
	return g
}

// node is one branch & bound subproblem: bound overrides relative to the
// root plus the parent's LP bound used for best-first ordering and the
// parent's optimal basis (nil at the root or under ColdChildren) used to
// warm-start the node's own relaxation.
type node struct {
	overrides map[int][2]float64
	bound     float64
	depth     int
	basis     *lp.Basis
}

type nodePQ []*node

func (q nodePQ) Len() int            { return len(q) }
func (q nodePQ) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodePQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve runs branch & bound on the model. With SolveOptions.Workers > 1
// the search runs on a parallel worker pool (see solveParallel); the
// default is the deterministic serial search.
func (m *Model) Solve(opts SolveOptions) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.LP.Trace == nil {
		opts.LP.Trace = opts.Trace
	}
	if opts.LP.Ctx == nil {
		// Let cancellation reach into a running relaxation: without this the
		// search only notices the context between LPs, and a single simplex
		// solve on a large model can run for minutes.
		opts.LP.Ctx = opts.Ctx
	}
	if w := normalizeWorkers(opts.Workers); w > 1 {
		return m.solveParallel(opts, w)
	}
	return m.solveSerial(opts)
}

// seedIncumbent applies the caller-supplied cutoff and incumbent vector,
// returning the starting incumbent objective in LP scale (without the
// model constant). It fills res.X/res.Obj when the incumbent vector is
// accepted.
func seedIncumbent(m *Model, base *lp.Problem, opts SolveOptions, res *Result) float64 {
	incumbent := math.Inf(1)
	if opts.CutoffSet {
		incumbent = opts.Cutoff
	}
	if opts.Incumbent != nil && len(opts.Incumbent) == base.NumCols {
		if base.Feasible(opts.Incumbent, 1e-6) && integral(m, opts.Incumbent, opts.IntTol) {
			obj := base.Eval(opts.Incumbent)
			if obj < incumbent {
				incumbent = obj
				res.X = append([]float64(nil), opts.Incumbent...)
				roundIntegers(m, res.X, opts.IntTol)
				res.Obj = m.Eval(res.X)
			}
		}
	}
	return incumbent
}

// fractionalVar returns the branching variable of x — the integer variable
// with the highest branching priority (ties broken by distance from
// integrality) — or -1 if x is integral within tol.
func (m *Model) fractionalVar(x []float64, tol float64) int {
	bestJ, bestPrio, bestScore := -1, math.MinInt32, -1.0
	for j := range m.vtype {
		if m.vtype[j] == Continuous {
			continue
		}
		f := x[j] - math.Floor(x[j])
		if f < tol || f > 1-tol {
			continue
		}
		score := 0.5 - math.Abs(f-0.5) // distance from integrality
		if m.priority[j] > bestPrio || (m.priority[j] == bestPrio && score > bestScore) {
			bestJ, bestPrio, bestScore = j, m.priority[j], score
		}
	}
	return bestJ
}

// solveSerial is the deterministic hybrid best-bound/plunging search.
func (m *Model) solveSerial(opts SolveOptions) (*Result, error) {
	base := m.buildLP()
	res := &Result{Bound: math.Inf(-1), Obj: math.Inf(1)}
	tr := opts.Trace
	startT := opts.now()
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = startT.Add(opts.TimeLimit)
	}
	incumbent := seedIncumbent(m, base, opts, res)
	if res.X != nil {
		res.Incumbents = append(res.Incumbents, Incumbent{Obj: res.Obj})
		if tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.BBIncumbent, Obj: res.Obj})
		}
	}

	// Working bound arrays, rewritten per node.
	lo := make([]float64, base.NumCols)
	hi := make([]float64, base.NumCols)

	evalNode := func(nd *node) (*lp.Solution, error) {
		copy(lo, m.lo)
		copy(hi, m.hi)
		for j, b := range nd.overrides {
			lo[j], hi[j] = b[0], b[1]
		}
		base.Lower, base.Upper = lo, hi
		lpo := opts.LP
		if !opts.ColdChildren {
			// Warm-start from the parent's basis and snapshot this node's
			// own basis for its children. Determinism holds: the solution is
			// a pure function of the node (overrides + parent basis).
			lpo.WantBasis = true
			lpo.WarmBasis = nd.basis
		}
		sol, err := lp.Solve(base, lpo)
		if err != nil {
			return nil, err
		}
		res.Nodes++
		res.Iters += sol.Iters
		if tr.Enabled() {
			e := obs.Event{Kind: obs.BBNode, Node: res.Nodes, Depth: nd.depth}
			if sol.Status == lp.Optimal {
				e.Bound = sol.Obj + m.objConst
			}
			tr.Emit(e)
		}
		return sol, nil
	}

	root := &node{overrides: map[int][2]float64{}}
	rootSol, err := evalNode(root)
	if err != nil {
		return nil, err
	}
	switch rootSol.Status {
	case lp.Infeasible:
		res.Status = Infeasible
		return res, nil
	case lp.Unbounded:
		res.Status = Unbounded
		return res, nil
	case lp.IterLimit:
		res.Status = Limit
		res.Cancelled = opts.Ctx.Err() != nil
		return res, nil
	}
	root.bound = rootSol.Obj

	pq := &nodePQ{}
	heap.Init(pq)
	// Evaluated LP solutions are kept alongside queued nodes so each LP is
	// solved exactly once.
	solutions := map[*node]*lp.Solution{root: rootSol}
	heap.Push(pq, root)

	bestBound := func() float64 {
		if pq.Len() == 0 {
			return incumbent
		}
		return (*pq)[0].bound
	}

	gapReached := func() bool {
		if opts.RelGap <= 0 || math.IsInf(incumbent, 1) {
			return false
		}
		denom := math.Max(math.Abs(incumbent), 1e-12)
		return (incumbent-bestBound())/denom <= opts.RelGap
	}

	// emitGap publishes the convergence state — incumbent, best open
	// bound, relative gap — as one bb.gap event whenever both sides are
	// known: the first-class series live-streaming clients consume.
	// Called at incumbent acceptances and bound improvements, right after
	// the corresponding bb.incumbent / bb.bound event.
	emitGap := func() {
		if !tr.Enabled() || res.X == nil {
			return
		}
		b := bestBound()
		if math.IsInf(b, 0) {
			return
		}
		boundM := b + m.objConst
		tr.Emit(obs.Event{Kind: obs.BBGap, Obj: res.Obj, Bound: boundM, Gap: relGap(res.Obj, boundM), Node: res.Nodes})
	}

	// Hybrid search: nodes are drawn best-bound-first from the queue, but
	// after branching we plunge depth-first into the cheaper child (the
	// other child is queued). Plunging finds integral incumbents early;
	// best-first restarts keep the proven bound moving.
	lastBound := math.Inf(-1)
	for pq.Len() > 0 {
		if res.Nodes >= opts.MaxNodes {
			break
		}
		if !deadline.IsZero() && opts.now().After(deadline) {
			break
		}
		if opts.Ctx.Err() != nil {
			res.Cancelled = true
			break
		}
		if gapReached() {
			break
		}
		if tr.Enabled() {
			if b := bestBound(); !math.IsInf(b, 0) && b > lastBound {
				lastBound = b
				tr.Emit(obs.Event{Kind: obs.BBBound, Bound: b + m.objConst, Node: res.Nodes})
				emitGap()
			}
		}
		nd := heap.Pop(pq).(*node)
		sol := solutions[nd]
		delete(solutions, nd)

		// Plunge from this node until the chain dies out. On a limit or
		// cancellation stop the in-hand node is pushed back so the open
		// frontier — and therefore the reported bound and status — stays
		// exact: an abandoned node must not let an empty queue masquerade
		// as a proven optimum.
		requeue := func() {
			solutions[nd] = sol
			heap.Push(pq, nd)
		}
	plunge:
		for nd != nil {
			if res.Nodes >= opts.MaxNodes {
				requeue()
				break
			}
			if !deadline.IsZero() && opts.now().After(deadline) {
				requeue()
				break
			}
			if opts.Ctx.Err() != nil {
				res.Cancelled = true
				requeue()
				break
			}
			if numeric.GeqTol(sol.Obj, incumbent, 1e-9) {
				if tr.Enabled() {
					tr.Emit(obs.Event{Kind: obs.BBPrune, Node: res.Nodes, Depth: nd.depth})
				}
				break // pruned by bound
			}
			j := m.fractionalVar(sol.X, opts.IntTol)
			if j < 0 {
				// Integral: new incumbent.
				if sol.Obj < incumbent {
					incumbent = sol.Obj
					res.X = append([]float64(nil), sol.X...)
					roundIntegers(m, res.X, opts.IntTol)
					res.Obj = m.Eval(res.X)
					res.Incumbents = append(res.Incumbents, Incumbent{T: opts.now().Sub(startT), Obj: res.Obj, Nodes: res.Nodes})
					if tr.Enabled() {
						tr.Emit(obs.Event{Kind: obs.BBIncumbent, Obj: res.Obj, Node: res.Nodes})
						// The plunge node is consumed (an integral leaf), so
						// the open frontier is exactly the queue: bestBound()
						// is the true global dual bound here.
						emitGap()
					}
				}
				break
			}
			// Branch on x_j ≤ floor and x_j ≥ ceil.
			floorV := math.Floor(sol.X[j])
			var next *node
			var nextSol *lp.Solution
			for side := 0; side < 2; side++ {
				ov := make(map[int][2]float64, len(nd.overrides)+1)
				for k, v := range nd.overrides {
					ov[k] = v
				}
				curLo, curHi := m.lo[j], m.hi[j]
				if b, ok := nd.overrides[j]; ok {
					curLo, curHi = b[0], b[1]
				}
				if side == 0 {
					ov[j] = [2]float64{curLo, floorV}
				} else {
					ov[j] = [2]float64{floorV + 1, curHi}
				}
				if ov[j][0] > ov[j][1] {
					continue
				}
				child := &node{overrides: ov, bound: sol.Obj, depth: nd.depth + 1, basis: sol.Basis}
				csol, err := evalNode(child)
				if err != nil {
					return nil, err
				}
				if csol.Status != lp.Optimal {
					if opts.Ctx.Err() != nil {
						// The child's LP was cut short by cancellation, not
						// proven infeasible. Restore the frontier — the
						// already-evaluated sibling and the parent — so the
						// lost subtree cannot let an empty queue masquerade
						// as a proven optimum, then stop.
						res.Cancelled = true
						if next != nil {
							solutions[next] = nextSol
							heap.Push(pq, next)
						}
						requeue()
						break plunge
					}
					continue // infeasible (or iter-limit: treated as pruned)
				}
				if numeric.GeqTol(csol.Obj, incumbent, 1e-9) {
					if tr.Enabled() {
						tr.Emit(obs.Event{Kind: obs.BBPrune, Node: res.Nodes, Depth: child.depth})
					}
					continue
				}
				child.bound = csol.Obj
				if next == nil || csol.Obj < nextSol.Obj {
					if next != nil {
						solutions[next] = nextSol
						heap.Push(pq, next)
					}
					next, nextSol = child, csol
				} else {
					solutions[child] = csol
					heap.Push(pq, child)
				}
			}
			nd, sol = next, nextSol
		}
	}

	res.Bound = bestBound() + m.objConst
	if res.X != nil {
		if pq.Len() == 0 || numeric.LeqTol(res.Obj-res.Bound, 0, 1e-9*math.Max(1, math.Abs(res.Obj))) {
			res.Status = Optimal
			res.Bound = res.Obj
		} else if opts.RelGap > 0 && res.Gap() <= opts.RelGap {
			res.Status = Optimal
		} else {
			res.Status = Feasible
		}
		return res, nil
	}
	if pq.Len() == 0 {
		// Search exhausted without an incumbent: infeasible (or everything
		// was cut off by the caller's cutoff).
		if opts.CutoffSet {
			res.Status = Limit
		} else {
			res.Status = Infeasible
		}
		return res, nil
	}
	res.Status = Limit
	return res, nil
}

// integral reports whether every integer variable of x is within tol of an
// integer value.
func integral(m *Model, x []float64, tol float64) bool {
	for j := range m.vtype {
		if m.vtype[j] == Continuous {
			continue
		}
		if f := x[j] - math.Floor(x[j]); f > tol && f < 1-tol {
			return false
		}
	}
	return true
}

// roundIntegers snaps near-integral entries of x exactly.
func roundIntegers(m *Model, x []float64, tol float64) {
	for j := range m.vtype {
		if m.vtype[j] == Continuous {
			continue
		}
		r := math.Round(x[j])
		if math.Abs(x[j]-r) <= 10*tol {
			x[j] = r
		}
	}
}
