package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"nocdeploy/internal/lp"
)

func TestCompleteFillsAuxiliaries(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	z := m.Product("z", x, y)
	// Give z a tiny positive cost so completion pins it at the product.
	m.SetObjective(NewExpr(0).Add(z, 1e-6).Add(x, -1).Add(y, -1))
	full, err := m.Complete(map[VarID]float64{x: 1, y: 1}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full == nil {
		t.Fatal("completion infeasible")
	}
	if math.Abs(full[z]-1) > 1e-6 {
		t.Errorf("z = %g, want 1", full[z])
	}
	// An infeasible fixing returns nil, not an error.
	m2 := NewModel()
	a := m2.AddBinary("a")
	b := m2.AddBinary("b")
	m2.AddConstr(NewExpr(0).Add(a, 1).Add(b, 1), lp.LE, 1)
	m2.SetObjective(NewExpr(0).Add(a, 1))
	full, err = m2.Complete(map[VarID]float64{a: 1, b: 1}, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full != nil {
		t.Error("expected nil for infeasible completion")
	}
}

func TestIncumbentSeedsSearch(t *testing.T) {
	// A knapsack where the incumbent is optimal: search should confirm it.
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	z := m.AddBinary("z")
	m.AddConstr(NewExpr(0).Add(x, 3).Add(y, 4).Add(z, 5), lp.LE, 7)
	m.SetObjective(NewExpr(0).Add(x, -3).Add(y, -4).Add(z, -5))
	inc := []float64{1, 1, 0} // value 7, optimal
	r, err := m.Solve(SolveOptions{Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Obj+7) > 1e-6 {
		t.Errorf("status %v obj %g", r.Status, r.Obj)
	}
	// An infeasible incumbent must be ignored, not crash.
	bad := []float64{1, 1, 1}
	r, err = m.Solve(SolveOptions{Incumbent: bad})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Obj+7) > 1e-6 {
		t.Errorf("with bad incumbent: status %v obj %g", r.Status, r.Obj)
	}
	// A fractional incumbent must also be ignored.
	frac := []float64{0.5, 1, 0}
	r, err = m.Solve(SolveOptions{Incumbent: frac})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Obj+7) > 1e-6 {
		t.Errorf("with fractional incumbent: status %v obj %g", r.Status, r.Obj)
	}
}

func TestRelGapTermination(t *testing.T) {
	// A problem with many near-equal solutions: a 50% gap must stop early
	// yet still return a feasible solution.
	rng := rand.New(rand.NewSource(4))
	m := NewModel()
	row := NewExpr(0)
	obj := NewExpr(0)
	for i := 0; i < 24; i++ {
		x := m.AddBinary("x")
		row.Add(x, 1+rng.Float64())
		obj.Add(x, -1-rng.Float64()*0.01)
	}
	m.AddConstr(row, lp.LE, 18)
	m.SetObjective(obj)
	loose, err := m.Solve(SolveOptions{RelGap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if loose.X == nil {
		t.Fatal("no solution under loose gap")
	}
	tight, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Status != Optimal {
		t.Fatalf("tight status %v", tight.Status)
	}
	if loose.Nodes > tight.Nodes {
		t.Errorf("loose gap explored more nodes (%d) than full proof (%d)", loose.Nodes, tight.Nodes)
	}
	if loose.Obj < tight.Obj-1e-9 {
		t.Errorf("loose solution better than proven optimum?")
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewModel()
	obj := NewExpr(0)
	for r := 0; r < 6; r++ {
		row := NewExpr(0)
		for i := 0; i < 30; i++ {
			x := m.AddBinary("x")
			row.Add(x, 1+rng.Float64())
			obj.Add(x, -1-rng.Float64())
		}
		m.AddConstr(row, lp.LE, 11)
	}
	m.SetObjective(obj)
	start := time.Now()
	r, err := m.Solve(SolveOptions{TimeLimit: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("time limit ignored: ran %v", el)
	}
	if r.Status == Optimal && r.Gap() > 1e-9 {
		t.Errorf("optimal claimed with gap %g", r.Gap())
	}
}

func TestGapAndBoundConsistency(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	m.SetObjective(NewExpr(2).Add(x, -1)) // constant term exercised
	r, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Obj-1) > 1e-9 {
		t.Fatalf("obj %g, want 1 (constant folded)", r.Obj)
	}
	if math.Abs(r.Bound-r.Obj) > 1e-9 {
		t.Errorf("bound %g != obj %g at optimality", r.Bound, r.Obj)
	}
	if r.Gap() != 0 {
		t.Errorf("gap %g at optimality", r.Gap())
	}
}

func TestValidateErrors(t *testing.T) {
	m := NewModel()
	if err := m.Validate(); err == nil {
		t.Error("empty model must not validate")
	}
	x := m.AddBinary("x")
	m.SetBounds(x, -1, 2) // illegal for a binary
	if err := m.Validate(); err == nil {
		t.Error("binary with widened bounds must not validate")
	}
}

func TestFixVarAndNames(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("flag")
	m.FixVar(x, 1)
	m.SetObjective(NewExpr(0).Add(x, 5))
	r, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Obj != 5 || m.Name(x) != "flag" {
		t.Errorf("obj %g name %q", r.Obj, m.Name(x))
	}
	if m.NumVars() != 1 || m.NumCons() != 0 {
		t.Errorf("counts: %d vars %d cons", m.NumVars(), m.NumCons())
	}
}

func TestEpigraphWithConstants(t *testing.T) {
	// minimize max(x+2, 3-x) over x ∈ [0, 5]: optimum 2.5 at x = 0.5.
	m := NewModel()
	x := m.AddContinuous("x", 0, 5)
	m.EpigraphMin("t", []*Expr{
		NewExpr(2).Add(x, 1),
		NewExpr(3).Add(x, -1),
	})
	r, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Obj-2.5) > 1e-8 {
		t.Errorf("obj %g, want 2.5", r.Obj)
	}
}

// General integer variables (not binary) across several branches.
func TestGeneralIntegers(t *testing.T) {
	// max 7a + 2b s.t. 3a + b ≤ 12, a ≤ 3, a,b ∈ Z≥0, b ≤ 5.
	m := NewModel()
	a := m.AddVar("a", Integer, 0, 3)
	b := m.AddVar("b", Integer, 0, 5)
	m.AddConstr(NewExpr(0).Add(a, 3).Add(b, 1), lp.LE, 12)
	m.SetObjective(NewExpr(0).Add(a, -7).Add(b, -2))
	r, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// a=3 uses 9, b=3 → value 27. b=5 with a=2 → 24. So (3,3): -27.
	if r.Status != Optimal || math.Abs(r.Obj+27) > 1e-6 {
		t.Errorf("status %v obj %g, want -27", r.Status, r.Obj)
	}
	if r.X[a] != 3 || r.X[b] != 3 {
		t.Errorf("solution (%g, %g), want (3, 3)", r.X[a], r.X[b])
	}
}

// Property: for random product chains, the chained variable always equals
// the boolean AND at the MILP optimum when factors are fixed.
func TestProductChainProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		m := NewModel()
		vars := make([]VarID, n)
		want := 1.0
		for i := range vars {
			vars[i] = m.AddBinary("v")
			val := float64(rng.Intn(2))
			m.FixVar(vars[i], val)
			want *= val
		}
		z := m.ProductMany("z", vars...)
		// Pull z upward so the lower-bound rows are what binds.
		m.SetObjective(NewExpr(0).Add(z, -1))
		r, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Optimal || math.Abs(r.X[z]-want) > 1e-6 {
			t.Fatalf("trial %d: z = %g, want %g", trial, r.X[z], want)
		}
	}
}
