// Package milp provides a mixed-integer linear programming layer on top of
// package lp: a model builder with the paper's two linearization devices
// (Lemma 2.1 threshold indicators and Lemma 2.2 binary products) and a
// branch & bound solver. Together with package lp it replaces the Gurobi
// solver used in the paper's evaluation.
package milp

import (
	"fmt"
	"math"

	"nocdeploy/internal/lp"
	"nocdeploy/internal/numeric"
)

// VarID names a model variable.
type VarID int

// VarType distinguishes continuous from integral variables.
type VarType uint8

// Variable types.
const (
	Continuous VarType = iota
	Binary
	Integer
)

// Expr is a linear expression Σ coeffᵢ·varᵢ + Const, built incrementally.
type Expr struct {
	Idx   []VarID
	Val   []float64
	Const float64
}

// NewExpr returns an expression with the given constant term.
func NewExpr(c float64) *Expr { return &Expr{Const: c} }

// Add accumulates coeff·v and returns the expression for chaining.
func (e *Expr) Add(v VarID, coeff float64) *Expr {
	e.Idx = append(e.Idx, v)
	e.Val = append(e.Val, coeff)
	return e
}

// AddExpr accumulates scale·other (including its constant).
func (e *Expr) AddExpr(other *Expr, scale float64) *Expr {
	for k, v := range other.Idx {
		e.Add(v, scale*other.Val[k])
	}
	e.Const += scale * other.Const
	return e
}

// compact merges duplicate variable indices.
func (e *Expr) compact() ([]int, []float64) {
	seen := map[VarID]int{}
	var idx []int
	var val []float64
	for k, v := range e.Idx {
		if pos, ok := seen[v]; ok {
			val[pos] += e.Val[k]
			continue
		}
		seen[v] = len(idx)
		idx = append(idx, int(v))
		val = append(val, e.Val[k])
	}
	return idx, val
}

// Model is a minimization MILP under construction.
type Model struct {
	names    []string
	vtype    []VarType
	lo, hi   []float64
	priority []int // branching priority, larger first

	obj      []float64
	objConst float64

	cons []lp.Constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a variable and returns its id.
func (m *Model) AddVar(name string, t VarType, lo, hi float64) VarID {
	if t == Binary {
		if lo < 0 {
			lo = 0
		}
		if hi > 1 {
			hi = 1
		}
	}
	m.names = append(m.names, name)
	m.vtype = append(m.vtype, t)
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.priority = append(m.priority, 0)
	m.obj = append(m.obj, 0)
	return VarID(len(m.names) - 1)
}

// AddBinary adds a {0,1} variable.
func (m *Model) AddBinary(name string) VarID { return m.AddVar(name, Binary, 0, 1) }

// AddContinuous adds a continuous variable with the given bounds.
func (m *Model) AddContinuous(name string, lo, hi float64) VarID {
	return m.AddVar(name, Continuous, lo, hi)
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// NumCons returns the number of constraints.
func (m *Model) NumCons() int { return len(m.cons) }

// Name returns the variable's name.
func (m *Model) Name(v VarID) string { return m.names[v] }

// FixVar pins a variable to a value (presolve-style).
func (m *Model) FixVar(v VarID, value float64) {
	m.lo[v] = value
	m.hi[v] = value
}

// SetBounds adjusts a variable's bounds.
func (m *Model) SetBounds(v VarID, lo, hi float64) {
	m.lo[v] = lo
	m.hi[v] = hi
}

// SetBranchPriority marks v as a preferred branching variable; larger
// priorities are branched first.
func (m *Model) SetBranchPriority(v VarID, p int) { m.priority[v] = p }

// AddConstr adds expr (op) rhs; the expression's constant folds into rhs.
func (m *Model) AddConstr(e *Expr, op lp.Op, rhs float64) {
	idx, val := e.compact()
	m.cons = append(m.cons, lp.Constraint{Idx: idx, Val: val, Op: op, RHS: rhs - e.Const})
}

// SetObjective sets the minimization objective to expr.
func (m *Model) SetObjective(e *Expr) {
	for j := range m.obj {
		m.obj[j] = 0
	}
	idx, val := e.compact()
	for k, j := range idx {
		m.obj[j] = val[k]
	}
	m.objConst = e.Const
}

// EpigraphMin adds a fresh continuous variable z with z ≥ exprᵢ for every
// expression, sets the objective to minimize z and returns z. This is the
// standard min–max transform for the paper's balance objective.
func (m *Model) EpigraphMin(name string, exprs []*Expr) VarID {
	z := m.AddContinuous(name, math.Inf(-1), math.Inf(1))
	for _, e := range exprs {
		row := NewExpr(0).AddExpr(e, 1).Add(z, -1)
		m.AddConstr(row, lp.LE, 0) // expr − z ≤ 0
	}
	m.SetObjective(NewExpr(0).Add(z, 1))
	return z
}

// buildLP lowers the model to an lp.Problem.
func (m *Model) buildLP() *lp.Problem {
	p := lp.NewProblem(len(m.names))
	copy(p.Cost, m.obj)
	copy(p.Lower, m.lo)
	copy(p.Upper, m.hi)
	p.Cons = m.cons
	return p
}

// Validate lowers and validates the model.
func (m *Model) Validate() error {
	if len(m.names) == 0 {
		return fmt.Errorf("milp: model has no variables")
	}
	for j := range m.vtype {
		if m.vtype[j] == Binary && (m.lo[j] < 0 || m.hi[j] > 1) {
			return fmt.Errorf("milp: binary %q has bounds [%g, %g]", m.names[j], m.lo[j], m.hi[j])
		}
	}
	return m.buildLP().Validate()
}

// Complete solves the LP obtained by fixing the given variables, filling in
// every remaining (typically auxiliary) variable optimally. It returns nil
// if the completion is infeasible. This is how a heuristic deployment is
// turned into a full branch & bound incumbent vector.
func (m *Model) Complete(fixed map[VarID]float64, opts lp.Options) ([]float64, error) {
	p := m.buildLP()
	lo := append([]float64(nil), p.Lower...)
	hi := append([]float64(nil), p.Upper...)
	for v, val := range fixed {
		lo[v], hi[v] = val, val
	}
	p.Lower, p.Upper = lo, hi
	// A completion LP is a one-shot solve over a heavily fixed model —
	// exactly what the presolve reductions are good at shrinking.
	opts.Presolve = true
	sol, err := lp.Solve(p, opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, nil
	}
	return sol.X, nil
}

// Eval returns the objective value (including constant) at x.
func (m *Model) Eval(x []float64) float64 {
	s := m.objConst
	for j, c := range m.obj {
		if !numeric.IsZero(c) {
			s += c * x[j]
		}
	}
	return s
}
