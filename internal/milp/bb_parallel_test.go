package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"nocdeploy/internal/lp"
)

// randomBinaryModel builds a random pure-binary MILP (the same family as
// TestRandomBinaryVsEnumeration) for cross-checking serial vs parallel.
func randomBinaryModel(rng *rand.Rand) *Model {
	nv := 4 + rng.Intn(6) // 4..9 binaries
	rows := 2 + rng.Intn(4)
	m := NewModel()
	vars := make([]VarID, nv)
	objE := NewExpr(0)
	for i := range vars {
		vars[i] = m.AddBinary("x")
		objE.Add(vars[i], float64(rng.Intn(21)-10))
	}
	for r := 0; r < rows; r++ {
		e := NewExpr(0)
		for i := range vars {
			e.Add(vars[i], float64(rng.Intn(9)-4))
		}
		m.AddConstr(e, lp.Op(rng.Intn(3)), float64(rng.Intn(9)-3))
	}
	m.SetObjective(objE)
	return m
}

// Parallel search must prove the same optimum (and the same infeasibility
// verdicts) as the deterministic serial search.
func TestParallelSolveMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		m := randomBinaryModel(rng)
		serial, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := m.Solve(SolveOptions{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if par.Status != serial.Status {
				t.Fatalf("trial %d workers=%d: status %v, serial %v", trial, workers, par.Status, serial.Status)
			}
			if serial.Status == Optimal {
				if math.Abs(par.Obj-serial.Obj) > 1e-6 {
					t.Fatalf("trial %d workers=%d: obj %g, serial %g", trial, workers, par.Obj, serial.Obj)
				}
				if math.Abs(par.Bound-serial.Bound) > 1e-6 {
					t.Fatalf("trial %d workers=%d: bound %g, serial %g", trial, workers, par.Bound, serial.Bound)
				}
				// The returned vector must actually achieve the objective.
				if got := m.Eval(par.X); math.Abs(got-par.Obj) > 1e-6 {
					t.Fatalf("trial %d workers=%d: Eval(X) = %g, Obj = %g", trial, workers, got, par.Obj)
				}
			}
		}
	}
}

// Negative Workers means all cores; 0 and 1 stay on the serial path.
func TestWorkersConvention(t *testing.T) {
	if got := normalizeWorkers(-1); got < 1 {
		t.Errorf("normalizeWorkers(-1) = %d", got)
	}
	m := randomBinaryModel(rand.New(rand.NewSource(3)))
	for _, w := range []int{0, 1, -1} {
		if _, err := m.Solve(SolveOptions{Workers: w}); err != nil {
			t.Errorf("Workers=%d: %v", w, err)
		}
	}
}

// An incumbent seed must survive the parallel search: the result can only
// be as good or better.
func TestParallelIncumbentSeed(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	e := NewExpr(0).Add(x, 1).Add(y, 1)
	m.AddConstr(e, lp.GE, 1)
	m.SetObjective(NewExpr(0).Add(x, 2).Add(y, 3))
	inc := []float64{0, 1} // feasible, objective 3; optimum is x=1 → 2
	r, err := m.Solve(SolveOptions{Workers: 4, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Obj-2) > 1e-9 {
		t.Errorf("status %v obj %g, want optimal 2", r.Status, r.Obj)
	}
}

// The cutoff must prune the parallel search exactly as it does the serial
// one: with a cutoff below the optimum, no incumbent survives.
func TestParallelCutoff(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	m.AddConstr(NewExpr(0).Add(x, 1), lp.GE, 1)
	m.SetObjective(NewExpr(0).Add(x, 5)) // optimum 5
	r, err := m.Solve(SolveOptions{Workers: 4, Cutoff: 4, CutoffSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Limit || r.X != nil {
		t.Errorf("status %v X %v, want limit with no incumbent", r.Status, r.X)
	}
}

// Parallel infeasible and time-limited searches must terminate cleanly.
func TestParallelInfeasibleAndLimits(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	m.AddConstr(NewExpr(0).Add(x, 1), lp.GE, 2) // impossible for a binary
	m.SetObjective(NewExpr(0).Add(x, 1))
	r, err := m.Solve(SolveOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Errorf("status %v, want infeasible", r.Status)
	}

	// A one-node budget on a nontrivial model must stop with Limit (or an
	// incumbent-bearing status), never hang.
	m2 := randomBinaryModel(rand.New(rand.NewSource(21)))
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := m2.Solve(SolveOptions{Workers: 4, MaxNodes: 1}); err != nil {
			t.Errorf("MaxNodes=1: %v", err)
		}
		if _, err := m2.Solve(SolveOptions{Workers: 4, TimeLimit: time.Nanosecond}); err != nil {
			t.Errorf("TimeLimit=1ns: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallel solve with tiny limits did not terminate")
	}
}
