package milp

import (
	"math"
	"math/rand"
	"testing"

	"nocdeploy/internal/lp"
)

func solveOpt(t *testing.T, m *Model) *Result {
	t.Helper()
	r, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal {
		t.Fatalf("status = %v, want optimal", r.Status)
	}
	return r
}

// 0/1 knapsack: max Σ v x s.t. Σ w x ≤ cap. Verified against DP.
func TestKnapsack(t *testing.T) {
	values := []float64{10, 13, 18, 31, 7, 15}
	weights := []float64{2, 3, 4, 5, 1, 4}
	const capacity = 10

	m := NewModel()
	obj := NewExpr(0)
	row := NewExpr(0)
	for i := range values {
		x := m.AddBinary("x")
		obj.Add(x, -values[i]) // maximize ⇒ minimize negation
		row.Add(x, weights[i])
	}
	m.AddConstr(row, lp.LE, capacity)
	m.SetObjective(obj)
	r := solveOpt(t, m)

	// DP cross-check.
	best := make([]float64, capacity+1)
	for i := range values {
		for c := capacity; c >= int(weights[i]); c-- {
			if v := best[c-int(weights[i])] + values[i]; v > best[c] {
				best[c] = v
			}
		}
	}
	if math.Abs(-r.Obj-best[capacity]) > 1e-6 {
		t.Errorf("knapsack optimum %g, DP says %g", -r.Obj, best[capacity])
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. 2x ≤ 7, x integer → x = 3.
	m := NewModel()
	x := m.AddVar("x", Integer, 0, 100)
	m.AddConstr(NewExpr(0).Add(x, 2), lp.LE, 7)
	m.SetObjective(NewExpr(0).Add(x, -1))
	r := solveOpt(t, m)
	if r.X[x] != 3 {
		t.Errorf("x = %g, want 3", r.X[x])
	}
}

func TestInfeasibleMILP(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	m.AddConstr(NewExpr(0).Add(x, 1).Add(y, 1), lp.GE, 3)
	m.SetObjective(NewExpr(0).Add(x, 1))
	r, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", r.Status)
	}
}

func TestUnboundedMILP(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous("x", 0, math.Inf(1))
	b := m.AddBinary("b")
	m.AddConstr(NewExpr(0).Add(b, 1), lp.LE, 1)
	m.SetObjective(NewExpr(0).Add(x, -1))
	r, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", r.Status)
	}
}

// Lemma 2.2: the Product variable must equal the boolean AND at every
// binary assignment.
func TestProductTruthTable(t *testing.T) {
	for _, xv := range []float64{0, 1} {
		for _, yv := range []float64{0, 1} {
			m := NewModel()
			x := m.AddBinary("x")
			y := m.AddBinary("y")
			z := m.Product("z", x, y)
			m.FixVar(x, xv)
			m.FixVar(y, yv)
			// Maximize z, then minimize z: both must hit x·y exactly.
			m.SetObjective(NewExpr(0).Add(z, -1))
			rMax := solveOpt(t, m)
			m.SetObjective(NewExpr(0).Add(z, 1))
			rMin := solveOpt(t, m)
			want := xv * yv
			if math.Abs(rMax.X[z]-want) > 1e-6 || math.Abs(rMin.X[z]-want) > 1e-6 {
				t.Errorf("x=%g y=%g: z in [%g, %g], want %g", xv, yv, rMin.X[z], rMax.X[z], want)
			}
		}
	}
}

func TestProductManyChain(t *testing.T) {
	m := NewModel()
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	c := m.AddBinary("c")
	z := m.ProductMany("z", a, b, c)
	m.FixVar(a, 1)
	m.FixVar(b, 1)
	m.FixVar(c, 0)
	m.SetObjective(NewExpr(0).Add(z, -1))
	r := solveOpt(t, m)
	if r.X[z] > 1e-6 {
		t.Errorf("1·1·0 product = %g, want 0", r.X[z])
	}
}

// McCormick binary×expression product.
func TestProductExpr(t *testing.T) {
	for _, bv := range []float64{0, 1} {
		m := NewModel()
		b := m.AddBinary("b")
		x := m.AddContinuous("x", 2, 5)
		w := m.ProductExpr("w", b, NewExpr(0).Add(x, 1), 2, 5)
		m.FixVar(b, bv)
		m.FixVar(x, 3.5)
		m.SetObjective(NewExpr(0).Add(w, 1))
		rMin := solveOpt(t, m)
		m.SetObjective(NewExpr(0).Add(w, -1))
		rMax := solveOpt(t, m)
		want := bv * 3.5
		if math.Abs(rMin.X[w]-want) > 1e-6 || math.Abs(rMax.X[w]-want) > 1e-6 {
			t.Errorf("b=%g: w in [%g, %g], want %g", bv, rMin.X[w], rMax.X[w], want)
		}
	}
}

// Lemma 2.1: r ≥ s1 forces b = 0; r < s1 − σ forces b = 1.
func TestIndicator(t *testing.T) {
	const s, s1, sigma = 1.0, 0.6, 0.05
	for _, rv := range []float64{0.2, 0.5, 0.7, 0.95} {
		m := NewModel()
		b := m.AddBinary("b")
		r := m.AddContinuous("r", 0, s)
		m.FixVar(r, rv)
		m.Indicator(b, NewExpr(0).Add(r, 1), s, s1, sigma)
		m.SetObjective(NewExpr(0).Add(b, 1)) // any objective; b is forced
		res, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			t.Fatalf("r=%g: status %v", rv, res.Status)
		}
		want := 0.0
		if rv < s1 {
			want = 1
		}
		if math.Abs(res.X[b]-want) > 1e-6 {
			t.Errorf("r=%g: b=%g, want %g", rv, res.X[b], want)
		}
	}
}

func TestEpigraphMinMax(t *testing.T) {
	// minimize max(x, y, 4-x-y) over x,y ∈ [0,4]: optimum 4/3.
	m := NewModel()
	x := m.AddContinuous("x", 0, 4)
	y := m.AddContinuous("y", 0, 4)
	m.EpigraphMin("z", []*Expr{
		NewExpr(0).Add(x, 1),
		NewExpr(0).Add(y, 1),
		NewExpr(4).Add(x, -1).Add(y, -1),
	})
	r := solveOpt(t, m)
	if math.Abs(r.Obj-4.0/3) > 1e-6 {
		t.Errorf("min-max = %g, want %g", r.Obj, 4.0/3)
	}
}

func TestCutoffPruning(t *testing.T) {
	// Knapsack-like problem where the cutoff equals the optimum: search
	// must exhaust without finding a strictly better solution.
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	m.AddConstr(NewExpr(0).Add(x, 1).Add(y, 1), lp.LE, 1)
	m.SetObjective(NewExpr(0).Add(x, -3).Add(y, -2))
	r, err := m.Solve(SolveOptions{Cutoff: -3, CutoffSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Limit || r.X != nil {
		t.Errorf("cutoff at optimum: status %v X %v, want limit/nil", r.Status, r.X)
	}
	// A looser cutoff must still find the optimum.
	r, err = m.Solve(SolveOptions{Cutoff: -2.5, CutoffSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Obj+3) > 1e-6 {
		t.Errorf("loose cutoff: status %v obj %g", r.Status, r.Obj)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewModel()
	row := NewExpr(0)
	obj := NewExpr(0)
	for i := 0; i < 30; i++ {
		x := m.AddBinary("x")
		row.Add(x, 1+rng.Float64())
		obj.Add(x, -1-rng.Float64())
	}
	m.AddConstr(row, lp.LE, 20)
	m.SetObjective(obj)
	r, err := m.Solve(SolveOptions{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes > 5 { // root + one branching round
		t.Errorf("nodes = %d, want ≤ 5", r.Nodes)
	}
	if r.Status == Optimal && r.Gap() > 1e-9 {
		t.Errorf("claimed optimal with gap %g", r.Gap())
	}
}

// Randomized cross-check: small binary programs vs exhaustive enumeration.
func TestRandomBinaryVsEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		nv := 3 + rng.Intn(4) // 3..6 binaries
		rows := 1 + rng.Intn(3)
		m := NewModel()
		vars := make([]VarID, nv)
		cost := make([]float64, nv)
		for i := range vars {
			vars[i] = m.AddBinary("x")
			cost[i] = float64(rng.Intn(21) - 10)
		}
		type rowData struct {
			coef []float64
			op   lp.Op
			rhs  float64
		}
		var rdata []rowData
		for r := 0; r < rows; r++ {
			coef := make([]float64, nv)
			e := NewExpr(0)
			for i := range vars {
				coef[i] = float64(rng.Intn(9) - 4)
				e.Add(vars[i], coef[i])
			}
			op := lp.Op(rng.Intn(3))
			rhs := float64(rng.Intn(9) - 3)
			rdata = append(rdata, rowData{coef, op, rhs})
			m.AddConstr(e, op, rhs)
		}
		objE := NewExpr(0)
		for i := range vars {
			objE.Add(vars[i], cost[i])
		}
		m.SetObjective(objE)

		// Exhaustive enumeration.
		best, found := math.Inf(1), false
		for mask := 0; mask < 1<<nv; mask++ {
			ok := true
			for _, rd := range rdata {
				var lhs float64
				for i := 0; i < nv; i++ {
					if mask>>i&1 == 1 {
						lhs += rd.coef[i]
					}
				}
				switch rd.op {
				case lp.LE:
					ok = ok && lhs <= rd.rhs+1e-9
				case lp.GE:
					ok = ok && lhs >= rd.rhs-1e-9
				case lp.EQ:
					ok = ok && math.Abs(lhs-rd.rhs) <= 1e-9
				}
			}
			if !ok {
				continue
			}
			var v float64
			for i := 0; i < nv; i++ {
				if mask>>i&1 == 1 {
					v += cost[i]
				}
			}
			if v < best {
				best, found = v, true
			}
		}

		r, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !found {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: status %v, enumeration says infeasible", trial, r.Status)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v, enumeration optimum %g", trial, r.Status, best)
		}
		if math.Abs(r.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: obj %g, enumeration %g", trial, r.Obj, best)
		}
	}
}

// Mixed binaries + continuous, cross-checked by enumerating binaries and
// solving the continuous remainder with the LP engine directly.
func TestRandomMixedVsEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		nb, nc := 2+rng.Intn(3), 2
		m := NewModel()
		var bin []VarID
		for i := 0; i < nb; i++ {
			bin = append(bin, m.AddBinary("b"))
		}
		var cont []VarID
		for i := 0; i < nc; i++ {
			cont = append(cont, m.AddContinuous("c", 0, 5))
		}
		rows := 2 + rng.Intn(2)
		type rowData struct {
			cb, cc []float64
			op     lp.Op
			rhs    float64
		}
		var rdata []rowData
		for r := 0; r < rows; r++ {
			e := NewExpr(0)
			rd := rowData{cb: make([]float64, nb), cc: make([]float64, nc), op: lp.LE}
			for i, v := range bin {
				rd.cb[i] = float64(rng.Intn(7) - 3)
				e.Add(v, rd.cb[i])
			}
			for i, v := range cont {
				rd.cc[i] = float64(rng.Intn(7) - 3)
				e.Add(v, rd.cc[i])
			}
			rd.rhs = float64(rng.Intn(11) - 2)
			rdata = append(rdata, rd)
			m.AddConstr(e, rd.op, rd.rhs)
		}
		objB := make([]float64, nb)
		objC := make([]float64, nc)
		objE := NewExpr(0)
		for i, v := range bin {
			objB[i] = float64(rng.Intn(11) - 5)
			objE.Add(v, objB[i])
		}
		for i, v := range cont {
			objC[i] = float64(rng.Intn(5) - 2)
			objE.Add(v, objC[i])
		}
		m.SetObjective(objE)

		best, found := math.Inf(1), false
		for mask := 0; mask < 1<<nb; mask++ {
			p := lp.NewProblem(nc)
			for i := 0; i < nc; i++ {
				p.SetBounds(i, 0, 5)
				p.Cost[i] = objC[i]
			}
			fixed := 0.0
			feasibleFixed := true
			for _, rd := range rdata {
				var lhsB float64
				for i := 0; i < nb; i++ {
					if mask>>i&1 == 1 {
						lhsB += rd.cb[i]
					}
				}
				idx := []int{}
				val := []float64{}
				for i := 0; i < nc; i++ {
					if rd.cc[i] != 0 {
						idx = append(idx, i)
						val = append(val, rd.cc[i])
					}
				}
				if len(idx) == 0 {
					if lhsB > rd.rhs+1e-9 {
						feasibleFixed = false
					}
					continue
				}
				p.AddConstraint(idx, val, rd.op, rd.rhs-lhsB)
			}
			if !feasibleFixed {
				continue
			}
			for i := 0; i < nb; i++ {
				if mask>>i&1 == 1 {
					fixed += objB[i]
				}
			}
			sol, err := lp.Solve(p, lp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != lp.Optimal {
				continue
			}
			if v := fixed + sol.Obj; v < best {
				best, found = v, true
			}
		}

		r, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !found {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: status %v, enumeration says infeasible", trial, r.Status)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v, enumeration optimum %g", trial, r.Status, best)
		}
		if math.Abs(r.Obj-best) > 1e-5*(1+math.Abs(best)) {
			t.Fatalf("trial %d: obj %g, enumeration %g", trial, r.Obj, best)
		}
	}
}

func TestExprCompact(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	e := NewExpr(1).Add(x, 2).Add(x, 3)
	m.AddConstr(e, lp.LE, 10)
	c := m.cons[0]
	if len(c.Idx) != 1 || c.Val[0] != 5 || c.RHS != 9 {
		t.Errorf("compact failed: %+v", c)
	}
}

func TestBranchPriority(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x")
	y := m.AddBinary("y")
	m.SetBranchPriority(y, 10)
	m.AddConstr(NewExpr(0).Add(x, 1).Add(y, 1), lp.LE, 1)
	m.SetObjective(NewExpr(0).Add(x, -1).Add(y, -1))
	r := solveOpt(t, m)
	if math.Abs(r.Obj+1) > 1e-6 {
		t.Errorf("obj = %g, want -1", r.Obj)
	}
}
