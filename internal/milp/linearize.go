package milp

import (
	"math"

	"nocdeploy/internal/lp"
)

// Product returns a variable z representing x·y for variables x, y with
// range ⊆ [0, 1], using the paper's Lemma 2.2 rows:
//
//	z ≤ x,  z ≤ y,  z ≥ x + y − 1,  z ∈ [0, 1].
//
// z is declared continuous: whenever x and y take integral values the rows
// force z integral too, so branch & bound never needs to branch on it.
func (m *Model) Product(name string, x, y VarID) VarID {
	z := m.AddContinuous(name, 0, 1)
	m.AddConstr(NewExpr(0).Add(z, 1).Add(x, -1), lp.LE, 0)
	m.AddConstr(NewExpr(0).Add(z, 1).Add(y, -1), lp.LE, 0)
	m.AddConstr(NewExpr(0).Add(x, 1).Add(y, 1).Add(z, -1), lp.LE, 1)
	return z
}

// ProductMany chains Product over vars, returning a variable equal to the
// conjunction Π varsᵢ. It requires at least one variable and returns it
// unchanged for a singleton.
func (m *Model) ProductMany(name string, vars ...VarID) VarID {
	if len(vars) == 0 {
		panic("milp: ProductMany needs at least one variable") //lint:allow nopanic — programmer error: an empty product has no well-defined variable
	}
	acc := vars[0]
	for i := 1; i < len(vars); i++ {
		acc = m.Product(name, acc, vars[i])
	}
	return acc
}

// ProductExpr returns a variable w representing b·e for a binary (or [0,1])
// variable b and a linear expression e with known finite bounds
// lo ≤ e ≤ hi, via the McCormick rows
//
//	w ≤ hi·b,  w ≥ lo·b,  w ≤ e − lo·(1−b),  w ≥ e − hi·(1−b).
//
// At b = 0 they force w = 0; at b = 1 they force w = e.
func (m *Model) ProductExpr(name string, b VarID, e *Expr, lo, hi float64) VarID {
	w := m.AddContinuous(name, math.Min(lo, 0), math.Max(hi, 0))
	// w − hi·b ≤ 0
	m.AddConstr(NewExpr(0).Add(w, 1).Add(b, -hi), lp.LE, 0)
	// w − lo·b ≥ 0
	m.AddConstr(NewExpr(0).Add(w, 1).Add(b, -lo), lp.GE, 0)
	// w − e − lo·b ≤ −lo
	m.AddConstr(NewExpr(0).Add(w, 1).AddExpr(e, -1).Add(b, -lo), lp.LE, -lo)
	// w − e − hi·b ≥ −hi
	m.AddConstr(NewExpr(0).Add(w, 1).AddExpr(e, -1).Add(b, -hi), lp.GE, -hi)
	return w
}

// Indicator implements the paper's Lemma 2.1. Given an expression r with
// 0 ≤ r ≤ s, a threshold s1 and a small positive σ, it constrains a binary
// b so that
//
//	r ≥ s1 ⇒ b = 0   and   r < s1 ⇒ b = 1
//
// via (r − (s1 − σ))/s ≤ 1 − b ≤ r/s1.
func (m *Model) Indicator(b VarID, r *Expr, s, s1, sigma float64) {
	// r − (s1 − σ) ≤ s·(1 − b)  ⇔  r + s·b ≤ s + s1 − σ
	m.AddConstr(NewExpr(0).AddExpr(r, 1).Add(b, s), lp.LE, s+s1-sigma)
	// 1 − b ≤ r/s1  ⇔  −r + s1·(1 − b) ≤ 0  ⇔  −r − s1·b ≤ −s1
	m.AddConstr(NewExpr(0).AddExpr(r, -1).Add(b, -s1), lp.LE, -s1)
}
