package milp

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nocdeploy/internal/lp"
	"nocdeploy/internal/numeric"
	"nocdeploy/internal/obs"
)

// normalizeWorkers maps the SolveOptions.Workers convention to a concrete
// worker count: 0 and 1 are the serial search, negative means all cores.
func normalizeWorkers(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// pnode is one subproblem of the parallel search: bound overrides relative
// to the root plus the parent's LP objective, used both as the node's dual
// bound until its own LP is solved and for queue ordering, and the
// parent's optimal basis for warm-starting (shared read-only between
// siblings, so concurrent workers may consume it simultaneously).
type pnode struct {
	overrides map[int][2]float64
	bound     float64
	depth     int
	basis     *lp.Basis
}

// parPQ is a depth-prioritized queue: deeper nodes first (diving quickly
// toward integral incumbents and keeping the frontier small), ties broken
// best-bound-first so the dive follows the stronger child.
type parPQ []*pnode

func (q parPQ) Len() int { return len(q) }
func (q parPQ) Less(i, j int) bool {
	if q[i].depth != q[j].depth {
		return q[i].depth > q[j].depth
	}
	return q[i].bound < q[j].bound
}
func (q parPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *parPQ) Push(x interface{}) { *q = append(*q, x.(*pnode)) }
func (q *parPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// bbShared is the state the workers coordinate through. The incumbent and
// queue are guarded by mu; the incumbent objective is additionally
// mirrored in incBits so workers can snapshot the pruning bound atomically
// without taking the lock.
type bbShared struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pq      parPQ
	working []float64 // per-worker bound of the node being evaluated; +Inf when idle
	idle    int       // workers blocked waiting for queue items

	nodes, iters int
	incObj       float64 // best integral objective, LP scale
	incBits      atomic.Uint64
	incX         []float64
	incumbents   []Incumbent // acceptance-order trajectory, model scale

	stopped    bool   // a limit fired, the gap closed, or an error occurred
	done       bool   // frontier exhausted: queue empty and every worker idle
	limitStop  bool   // stopped by MaxNodes/TimeLimit/ctx (not by gap or error)
	cancelled  bool   // stopped because SolveOptions.Ctx was cancelled
	rootStatus Status // terminal status decided at the root; rootStatusSet guards it
	rootSet    bool
	err        error
}

// snapshotIncumbent is the lock-free pruning bound.
func (s *bbShared) snapshotIncumbent() float64 {
	return math.Float64frombits(s.incBits.Load())
}

// setIncumbent must be called with mu held.
func (s *bbShared) setIncumbent(v float64) {
	s.incObj = v
	s.incBits.Store(math.Float64bits(v))
}

// bestBound returns the weakest dual bound still open — the minimum over
// queued and in-flight nodes — or the incumbent when the search space is
// exhausted. Must be called with mu held.
func (s *bbShared) bestBound() float64 {
	best := s.incObj
	for _, nd := range s.pq {
		if nd.bound < best {
			best = nd.bound
		}
	}
	for _, b := range s.working {
		if b < best {
			best = b
		}
	}
	return best
}

// solveParallel runs branch & bound with `workers` concurrent workers.
// Each worker repeatedly pulls the deepest open subproblem, solves its LP
// relaxation on worker-local state, and either prunes it, records a new
// incumbent, or pushes its two children. Correctness does not depend on
// scheduling: a node is only ever pruned against a monotonically
// decreasing incumbent, so the proven optimum equals the serial search's.
func (m *Model) solveParallel(opts SolveOptions, workers int) (*Result, error) {
	res := &Result{Bound: math.Inf(-1), Obj: math.Inf(1)}
	seedBase := m.buildLP()
	s := &bbShared{working: make([]float64, workers)}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.working {
		s.working[i] = math.Inf(1)
	}
	s.setIncumbent(seedIncumbent(m, seedBase, opts, res))
	tr := opts.Trace
	if res.X != nil {
		s.incX = append([]float64(nil), res.X...)
		res.Incumbents = append(res.Incumbents, Incumbent{Obj: res.Obj})
		if tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.BBIncumbent, Obj: res.Obj})
		}
	}

	startT := opts.now()
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = startT.Add(opts.TimeLimit)
	}

	gapReached := func() bool { // with mu held
		if opts.RelGap <= 0 || math.IsInf(s.incObj, 1) {
			return false
		}
		denom := math.Max(math.Abs(s.incObj), 1e-12)
		return (s.incObj-s.bestBound())/denom <= opts.RelGap
	}

	s.pq = parPQ{{overrides: map[int][2]float64{}, bound: math.Inf(-1)}}
	heap.Init(&s.pq)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			// Worker-local LP problem and bound buffers: the model itself
			// is read-only during the search, so workers share it but
			// never share mutable solver state.
			base := m.buildLP()
			lo := make([]float64, base.NumCols)
			hi := make([]float64, base.NumCols)

			for {
				s.mu.Lock()
				for !s.stopped && !s.done && s.pq.Len() == 0 {
					if s.idle == workers-1 {
						// Everyone else is waiting and the queue is empty:
						// no children can ever appear again.
						s.done = true
						s.cond.Broadcast()
						break
					}
					s.idle++
					s.cond.Wait()
					s.idle--
				}
				if s.stopped || s.done {
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
				if (!deadline.IsZero() && opts.now().After(deadline)) || s.nodes >= opts.MaxNodes {
					s.stopped, s.limitStop = true, true
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
				if opts.Ctx.Err() != nil {
					s.stopped, s.limitStop, s.cancelled = true, true, true
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
				if gapReached() {
					s.stopped = true
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
				nd := heap.Pop(&s.pq).(*pnode)
				if numeric.GeqTol(nd.bound, s.incObj, 1e-9) {
					// Pruned by an incumbent found after the node was
					// queued. The pop may have emptied the queue, so wake
					// idle siblings to re-check termination.
					s.cond.Broadcast()
					s.mu.Unlock()
					if tr.Enabled() {
						tr.Emit(obs.Event{Kind: obs.BBPrune, Depth: nd.depth, Worker: id + 1})
					}
					continue
				}
				s.working[id] = nd.bound
				s.mu.Unlock()

				// Lock-free re-check against the atomic incumbent mirror:
				// a sibling may have found a better incumbent between the
				// pop and now, sparing this node's LP entirely.
				if numeric.GeqTol(nd.bound, s.snapshotIncumbent(), 1e-9) {
					s.mu.Lock()
					s.working[id] = math.Inf(1)
					s.cond.Broadcast()
					s.mu.Unlock()
					if tr.Enabled() {
						tr.Emit(obs.Event{Kind: obs.BBPrune, Depth: nd.depth, Worker: id + 1})
					}
					continue
				}

				copy(lo, m.lo)
				copy(hi, m.hi)
				for j, b := range nd.overrides {
					lo[j], hi[j] = b[0], b[1]
				}
				base.Lower, base.Upper = lo, hi
				lpo := opts.LP
				if !opts.ColdChildren {
					// Warm-start from the parent's basis; the node's LP
					// solution stays a pure function of the node itself
					// (overrides + parent basis), so the proven optimum is
					// schedule-independent exactly as in the cold search.
					lpo.WantBasis = true
					lpo.WarmBasis = nd.basis
				}
				sol, err := lp.Solve(base, lpo)

				s.mu.Lock()
				s.working[id] = math.Inf(1)
				if err != nil {
					if s.err == nil {
						s.err = err
					}
					s.stopped = true
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
				s.nodes++
				s.iters += sol.Iters
				nodeCount := s.nodes
				if nd.depth == 0 && sol.Status != lp.Optimal {
					// The root relaxation decides a terminal status, as in
					// the serial search.
					switch sol.Status {
					case lp.Infeasible:
						s.rootStatus = Infeasible
					case lp.Unbounded:
						s.rootStatus = Unbounded
					default: // lp.IterLimit
						s.rootStatus = Limit
						s.cancelled = opts.Ctx.Err() != nil
					}
					s.rootSet = true
					s.stopped = true
					s.cond.Broadcast()
					s.mu.Unlock()
					if tr.Enabled() {
						tr.Emit(obs.Event{Kind: obs.BBNode, Node: nodeCount, Depth: nd.depth, Worker: id + 1})
					}
					return
				}
				if sol.Status != lp.Optimal && opts.Ctx.Err() != nil {
					// The node's LP was cut short by cancellation, not proven
					// infeasible: requeue it so the frontier — and with it the
					// reported bound and status — stays exact, and stop.
					heap.Push(&s.pq, nd)
					s.stopped, s.limitStop, s.cancelled = true, true, true
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
				gotInc, pruned := false, false
				var incObjModel, gapBoundM, gapRel float64
				if sol.Status == lp.Optimal && !numeric.GeqTol(sol.Obj, s.incObj, 1e-9) {
					if j := m.fractionalVar(sol.X, opts.IntTol); j < 0 {
						// Integral: new incumbent (mutex-guarded, atomic
						// mirror for lock-free pruning snapshots).
						if sol.Obj < s.incObj {
							s.setIncumbent(sol.Obj)
							s.incX = append(s.incX[:0], sol.X...)
							gotInc = true
							incObjModel = sol.Obj + m.objConst
							s.incumbents = append(s.incumbents, Incumbent{T: opts.now().Sub(startT), Obj: incObjModel, Nodes: nodeCount})
							// Snapshot the convergence state under the lock
							// (bestBound walks the queue and in-flight nodes)
							// for the bb.gap event emitted after unlock.
							gapBoundM = s.bestBound() + m.objConst
							gapRel = relGap(incObjModel, gapBoundM)
						}
					} else {
						floorV := math.Floor(sol.X[j])
						curLo, curHi := m.lo[j], m.hi[j]
						if b, ok := nd.overrides[j]; ok {
							curLo, curHi = b[0], b[1]
						}
						for side := 0; side < 2; side++ {
							var b [2]float64
							if side == 0 {
								b = [2]float64{curLo, floorV}
							} else {
								b = [2]float64{floorV + 1, curHi}
							}
							if b[0] > b[1] {
								continue
							}
							ov := make(map[int][2]float64, len(nd.overrides)+1)
							for k, v := range nd.overrides {
								ov[k] = v
							}
							ov[j] = b
							heap.Push(&s.pq, &pnode{overrides: ov, bound: sol.Obj, depth: nd.depth + 1, basis: sol.Basis})
						}
					}
				} else if sol.Status == lp.Optimal {
					pruned = true // dominated by the incumbent after its LP
				}
				s.cond.Broadcast()
				s.mu.Unlock()
				if tr.Enabled() {
					e := obs.Event{Kind: obs.BBNode, Node: nodeCount, Depth: nd.depth, Worker: id + 1}
					if sol.Status == lp.Optimal {
						e.Bound = sol.Obj + m.objConst
					}
					tr.Emit(e)
					if gotInc {
						tr.Emit(obs.Event{Kind: obs.BBIncumbent, Obj: incObjModel, Node: nodeCount, Worker: id + 1})
						tr.Emit(obs.Event{Kind: obs.BBGap, Obj: incObjModel, Bound: gapBoundM, Gap: gapRel, Node: nodeCount, Worker: id + 1})
					}
					if pruned {
						tr.Emit(obs.Event{Kind: obs.BBPrune, Node: nodeCount, Depth: nd.depth, Worker: id + 1})
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if s.err != nil {
		return nil, s.err
	}
	res.Nodes, res.Iters = s.nodes, s.iters
	res.Cancelled = s.cancelled
	res.Incumbents = append(res.Incumbents, s.incumbents...)
	if s.rootSet {
		res.Status = s.rootStatus
		return res, nil
	}
	if !math.IsInf(s.incObj, 1) && s.incX != nil {
		res.X = append([]float64(nil), s.incX...)
		roundIntegers(m, res.X, opts.IntTol)
		res.Obj = m.Eval(res.X)
	}
	exhausted := s.pq.Len() == 0 && !s.limitStop
	res.Bound = s.bestBound() + m.objConst
	if res.X != nil {
		if exhausted || numeric.LeqTol(res.Obj-res.Bound, 0, 1e-9*math.Max(1, math.Abs(res.Obj))) {
			res.Status = Optimal
			res.Bound = res.Obj
		} else if opts.RelGap > 0 && res.Gap() <= opts.RelGap {
			res.Status = Optimal
		} else {
			res.Status = Feasible
		}
		return res, nil
	}
	if exhausted {
		// Search exhausted without an incumbent: infeasible (or everything
		// was cut off by the caller's cutoff).
		if opts.CutoffSet {
			res.Status = Limit
		} else {
			res.Status = Infeasible
		}
		return res, nil
	}
	res.Status = Limit
	return res, nil
}
