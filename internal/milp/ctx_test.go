package milp

import (
	"context"
	"math/rand"
	"testing"

	"nocdeploy/internal/lp"
)

// randomKnapsack builds a knapsack model large enough that branch & bound
// explores more than a handful of nodes.
func randomKnapsack(n int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	obj := NewExpr(0)
	row := NewExpr(0)
	var totalW float64
	for i := 0; i < n; i++ {
		v := 1 + rng.Float64()*99
		w := 1 + rng.Float64()*49
		x := m.AddBinary("x")
		obj.Add(x, -v)
		row.Add(x, w)
		totalW += w
	}
	m.AddConstr(row, lp.LE, totalW/3)
	m.SetObjective(obj)
	return m
}

// TestSolveCtxPreCancelledSerial: a cancelled context stops the serial
// search after the root relaxation; the result carries the Cancelled flag
// and does not claim optimality.
func TestSolveCtxPreCancelledSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := randomKnapsack(25, 1).Solve(SolveOptions{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cancelled {
		t.Fatalf("cancelled context: Cancelled = false (status %v, nodes %d)", r.Status, r.Nodes)
	}
	if r.Status == Optimal {
		t.Fatalf("cancelled search claimed optimality after %d nodes", r.Nodes)
	}
	if r.Nodes > 1 {
		t.Fatalf("pre-cancelled search still solved %d nodes", r.Nodes)
	}
}

// TestSolveCtxPreCancelledParallel mirrors the serial test on the parallel
// search.
func TestSolveCtxPreCancelledParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := randomKnapsack(25, 1).Solve(SolveOptions{Ctx: ctx, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cancelled {
		t.Fatalf("cancelled context: Cancelled = false (status %v, nodes %d)", r.Status, r.Nodes)
	}
	if r.Status == Optimal {
		t.Fatalf("cancelled search claimed optimality after %d nodes", r.Nodes)
	}
}

// TestSolveCtxBackgroundUnchanged: a nil/background context leaves the
// solve untouched — same optimum as the no-context solve.
func TestSolveCtxBackgroundUnchanged(t *testing.T) {
	plain, err := randomKnapsack(18, 7).Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := randomKnapsack(18, 7).Solve(SolveOptions{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != Optimal || withCtx.Status != Optimal {
		t.Fatalf("statuses: %v vs %v, want optimal", plain.Status, withCtx.Status)
	}
	if plain.Obj != withCtx.Obj { //lint:allow floateq — identical deterministic serial search must agree exactly
		t.Fatalf("objective drifted with a background context: %g vs %g", plain.Obj, withCtx.Obj)
	}
	if plain.Cancelled || withCtx.Cancelled {
		t.Fatal("uncancelled solves reported Cancelled")
	}
}

// TestSolveCtxIncumbentSurvivesCancel: cancelling a search that was seeded
// with a cutoff-free incumbent still returns that incumbent.
func TestSolveCtxIncumbentSurvivesCancel(t *testing.T) {
	m := randomKnapsack(25, 3)
	// First find the optimum, then re-solve with its solution vector as the
	// seeded incumbent and a cancelled context: the incumbent must come back.
	full, err := m.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("setup solve status %v", full.Status)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := randomKnapsack(25, 3).Solve(SolveOptions{Ctx: ctx, Incumbent: full.X})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cancelled {
		t.Fatal("cancelled context: Cancelled = false")
	}
	if r.X == nil {
		t.Fatal("seeded incumbent lost on cancellation")
	}
}
