// Package taskgen generates pseudo-random task graphs for the evaluation,
// mirroring the paper's protocol of repeating each experiment over many
// randomly generated task graphs. All generators are deterministic given a
// seed.
package taskgen

import (
	"fmt"
	"math/rand"

	"nocdeploy/internal/task"
)

// Params bounds the random attributes of generated tasks.
type Params struct {
	M int // number of tasks

	// WCEC is drawn uniformly from [MinWCEC, MaxWCEC] cycles.
	MinWCEC, MaxWCEC float64
	// Edge data size is drawn uniformly from [MinBytes, MaxBytes].
	MinBytes, MaxBytes float64
	// Deadline is the relative deadline applied to every task (the paper's
	// constraint (8) bounds per-task execution time). If DeadlineSlack > 0
	// the deadline is WCEC/fMinRef * DeadlineSlack with fMinRef below;
	// otherwise Deadline is used directly.
	Deadline      float64
	DeadlineSlack float64
	FMinRef       float64

	Seed int64
}

// DefaultParams returns the workload bounds used across the evaluation:
// task computation times in the low-millisecond range and payloads of
// 1-64 KiB, so that communication is non-negligible but not dominant.
// The deadline slack of 0.9 relative to the slowest default level makes
// the lowest frequency deadline-infeasible, which (as in the paper's
// setup) forces the frequency assignment to trade energy against both
// timing and reliability instead of collapsing to f_min.
func DefaultParams(m int, seed int64) Params {
	return Params{
		M:             m,
		MinWCEC:       0.5e6,
		MaxWCEC:       2.5e6,
		MinBytes:      1 << 10,
		MaxBytes:      64 << 10,
		DeadlineSlack: 0.9,
		FMinRef:       0.5e9,
		Seed:          seed,
	}
}

func (p Params) validate() error {
	if p.M <= 0 {
		return fmt.Errorf("taskgen: M = %d must be positive", p.M)
	}
	if p.MinWCEC <= 0 || p.MaxWCEC < p.MinWCEC {
		return fmt.Errorf("taskgen: bad WCEC range [%g, %g]", p.MinWCEC, p.MaxWCEC)
	}
	if p.MinBytes < 0 || p.MaxBytes < p.MinBytes {
		return fmt.Errorf("taskgen: bad byte range [%g, %g]", p.MinBytes, p.MaxBytes)
	}
	if p.Deadline <= 0 && (p.DeadlineSlack <= 0 || p.FMinRef <= 0) {
		return fmt.Errorf("taskgen: either Deadline or DeadlineSlack+FMinRef must be positive")
	}
	return nil
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}

func (p Params) newTask(g *task.Graph, rng *rand.Rand, name string) int {
	wcec := uniform(rng, p.MinWCEC, p.MaxWCEC)
	dl := p.Deadline
	if dl <= 0 {
		dl = wcec / p.FMinRef * p.DeadlineSlack
	}
	return g.AddTask(name, wcec, dl)
}

// Layered generates a layered DAG: tasks are spread over layers of random
// width in [1, maxWidth]; every task in layer d > 0 gets 1..maxFanIn
// predecessors from layer d-1. This is the generator used by default in the
// experiments (it produces the pipeline-with-parallelism structure typical
// of embedded streaming applications).
func Layered(p Params, maxWidth, maxFanIn int) (*task.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if maxWidth < 1 || maxFanIn < 1 {
		return nil, fmt.Errorf("taskgen: maxWidth %d and maxFanIn %d must be ≥ 1", maxWidth, maxFanIn)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := task.New()
	var prevLayer []int
	made := 0
	for made < p.M {
		width := 1 + rng.Intn(maxWidth)
		if width > p.M-made {
			width = p.M - made
		}
		var layer []int
		for i := 0; i < width; i++ {
			id := p.newTask(g, rng, fmt.Sprintf("t%d", made))
			made++
			layer = append(layer, id)
		}
		for _, id := range layer {
			if len(prevLayer) == 0 {
				continue
			}
			fan := 1 + rng.Intn(maxFanIn)
			if fan > len(prevLayer) {
				fan = len(prevLayer)
			}
			for _, pi := range rng.Perm(len(prevLayer))[:fan] {
				g.AddEdge(prevLayer[pi], id, uniform(rng, p.MinBytes, p.MaxBytes))
			}
		}
		prevLayer = layer
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ForkJoin generates a fork-join graph: a source task fans out to p.M-2
// parallel workers which join into a sink.
func ForkJoin(p Params) (*task.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.M < 3 {
		return nil, fmt.Errorf("taskgen: fork-join needs M ≥ 3, got %d", p.M)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := task.New()
	src := p.newTask(g, rng, "fork")
	workers := make([]int, p.M-2)
	for i := range workers {
		workers[i] = p.newTask(g, rng, fmt.Sprintf("w%d", i))
	}
	sink := p.newTask(g, rng, "join")
	for _, w := range workers {
		g.AddEdge(src, w, uniform(rng, p.MinBytes, p.MaxBytes))
		g.AddEdge(w, sink, uniform(rng, p.MinBytes, p.MaxBytes))
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SeriesParallel generates a random series-parallel DAG by recursive
// series/parallel composition over p.M tasks.
func SeriesParallel(p Params) (*task.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := task.New()
	// build returns (entry, exit) task ids for a component of size m.
	var build func(m int) (int, int)
	build = func(m int) (int, int) {
		if m == 1 {
			id := p.newTask(g, rng, fmt.Sprintf("t%d", g.M()))
			return id, id
		}
		if m == 2 || rng.Intn(2) == 0 { // series
			k := 1 + rng.Intn(m-1)
			e1, x1 := build(k)
			e2, x2 := build(m - k)
			g.AddEdge(x1, e2, uniform(rng, p.MinBytes, p.MaxBytes))
			return e1, x2
		}
		// parallel: needs an entry and exit plus two branches
		if m < 4 {
			k := 1 + rng.Intn(m-1)
			e1, x1 := build(k)
			e2, x2 := build(m - k)
			g.AddEdge(x1, e2, uniform(rng, p.MinBytes, p.MaxBytes))
			return e1, x2
		}
		entry := p.newTask(g, rng, fmt.Sprintf("t%d", g.M()))
		rest := m - 2
		k := 1 + rng.Intn(rest-1)
		e1, x1 := build(k)
		e2, x2 := build(rest - k)
		exit := p.newTask(g, rng, fmt.Sprintf("t%d", g.M()))
		g.AddEdge(entry, e1, uniform(rng, p.MinBytes, p.MaxBytes))
		g.AddEdge(entry, e2, uniform(rng, p.MinBytes, p.MaxBytes))
		g.AddEdge(x1, exit, uniform(rng, p.MinBytes, p.MaxBytes))
		g.AddEdge(x2, exit, uniform(rng, p.MinBytes, p.MaxBytes))
		return entry, exit
	}
	build(p.M)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// GNP generates a DAG by sampling each forward edge (i, j), i < j, with
// probability prob (the classic layer-free random-DAG model).
func GNP(p Params, prob float64) (*task.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if prob < 0 || prob > 1 {
		return nil, fmt.Errorf("taskgen: edge probability %g outside [0,1]", prob)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := task.New()
	for i := 0; i < p.M; i++ {
		p.newTask(g, rng, fmt.Sprintf("t%d", i))
	}
	for i := 0; i < p.M; i++ {
		for j := i + 1; j < p.M; j++ {
			if rng.Float64() < prob {
				g.AddEdge(i, j, uniform(rng, p.MinBytes, p.MaxBytes))
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
