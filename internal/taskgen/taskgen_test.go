package taskgen

import (
	"reflect"
	"testing"
	"testing/quick"

	"nocdeploy/internal/task"
)

func checkGraph(t *testing.T, g *task.Graph, wantM int, p Params) {
	t.Helper()
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatalf("generated graph not a DAG: %v", err)
	}
	for _, tk := range g.Tasks {
		if tk.WCEC < p.MinWCEC || tk.WCEC > p.MaxWCEC {
			t.Errorf("task %d WCEC %g outside [%g, %g]", tk.ID, tk.WCEC, p.MinWCEC, p.MaxWCEC)
		}
		if tk.Deadline <= 0 {
			t.Errorf("task %d deadline %g", tk.ID, tk.Deadline)
		}
	}
	for _, e := range g.Edges {
		if e.Bytes < p.MinBytes || e.Bytes > p.MaxBytes {
			t.Errorf("edge %d→%d bytes %g outside range", e.From, e.To, e.Bytes)
		}
	}
}

func TestLayered(t *testing.T) {
	p := DefaultParams(20, 7)
	g, err := Layered(p, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkGraph(t, g, 20, p)
	if len(g.Edges) == 0 {
		t.Error("layered graph has no edges")
	}
}

func TestLayeredDeterministic(t *testing.T) {
	p := DefaultParams(12, 3)
	g1, err := Layered(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Layered(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Tasks, g2.Tasks) || !reflect.DeepEqual(g1.Edges, g2.Edges) {
		t.Error("same seed produced different graphs")
	}
	p2 := p
	p2.Seed = 4
	g3, err := Layered(p2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(g1.Edges, g3.Edges) && reflect.DeepEqual(g1.Tasks, g3.Tasks) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestForkJoinShape(t *testing.T) {
	p := DefaultParams(10, 1)
	g, err := ForkJoin(p)
	if err != nil {
		t.Fatal(err)
	}
	checkGraph(t, g, 10, p)
	if got := g.Sources(); len(got) != 1 {
		t.Errorf("fork-join sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 {
		t.Errorf("fork-join sinks = %v", got)
	}
	layers := g.Layers()
	if len(layers) != 3 {
		t.Errorf("fork-join layers = %d, want 3", len(layers))
	}
	if len(layers[1]) != 8 {
		t.Errorf("middle layer width = %d, want 8", len(layers[1]))
	}
}

func TestForkJoinTooSmall(t *testing.T) {
	if _, err := ForkJoin(DefaultParams(2, 1)); err == nil {
		t.Error("expected error for M < 3")
	}
}

func TestSeriesParallelSingleSourceSink(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := DefaultParams(15, seed)
		g, err := SeriesParallel(p)
		if err != nil {
			t.Fatal(err)
		}
		checkGraph(t, g, 15, p)
	}
}

func TestGNP(t *testing.T) {
	p := DefaultParams(15, 2)
	g, err := GNP(p, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	checkGraph(t, g, 15, p)
	if _, err := GNP(p, 1.5); err == nil {
		t.Error("expected error for prob > 1")
	}
}

func TestGNPEdgeCounts(t *testing.T) {
	p := DefaultParams(10, 5)
	dense, err := GNP(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10 * 9 / 2; len(dense.Edges) != want {
		t.Errorf("GNP(1.0) edges = %d, want %d", len(dense.Edges), want)
	}
	empty, err := GNP(p, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Edges) != 0 {
		t.Errorf("GNP(0.0) edges = %d, want 0", len(empty.Edges))
	}
}

func TestValidation(t *testing.T) {
	bad := DefaultParams(0, 1)
	if _, err := Layered(bad, 3, 2); err == nil {
		t.Error("expected error for M=0")
	}
	p := DefaultParams(5, 1)
	p.MaxWCEC = p.MinWCEC / 2
	if _, err := Layered(p, 3, 2); err == nil {
		t.Error("expected error for inverted WCEC range")
	}
	p = DefaultParams(5, 1)
	p.Deadline, p.DeadlineSlack = 0, 0
	if _, err := Layered(p, 3, 2); err == nil {
		t.Error("expected error for no deadline rule")
	}
	if _, err := Layered(DefaultParams(5, 1), 0, 2); err == nil {
		t.Error("expected error for maxWidth=0")
	}
}

// Property: every generator yields a valid DAG with the requested size for
// arbitrary seeds and sizes.
func TestGeneratorsAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := 3 + int(mRaw%20)
		p := DefaultParams(m, seed)
		for _, gen := range []func() (*task.Graph, error){
			func() (*task.Graph, error) { return Layered(p, 4, 3) },
			func() (*task.Graph, error) { return ForkJoin(p) },
			func() (*task.Graph, error) { return SeriesParallel(p) },
			func() (*task.Graph, error) { return GNP(p, 0.25) },
		} {
			g, err := gen()
			if err != nil || g.M() != m {
				return false
			}
			if _, err := g.TopoOrder(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
