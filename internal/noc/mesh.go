// Package noc models the 2D-mesh Network-on-Chip of the paper: N processors,
// each attached to a router, routers connected by bidirectional link pairs.
//
// For every ordered processor pair (β, γ) the package precomputes P = 2
// candidate routing paths:
//
//	ρ = 0: the energy-oriented path (Dijkstra shortest path on link energy)
//	ρ = 1: the time-oriented path (Dijkstra shortest path on link latency)
//
// and derives the paper's two matrices:
//
//	t[β][γ][ρ]    — seconds to move one byte from β to γ over path ρ
//	e[β][γ][k][ρ] — joules consumed at processor/router k per byte when
//	                data moves from β to γ over path ρ
//
// Hop energy is attributed to the router that forwards the flit (source
// router included, destination router included for ejection), matching the
// paper's convention that router energy is folded into its processor.
package noc

import (
	"fmt"
	"math"
	"math/rand"

	"nocdeploy/internal/numeric"
)

// LinkParams describes the cost of one directed link between adjacent
// routers, and the local router traversal cost.
type LinkParams struct {
	EnergyPerByte  float64 // joules to push one byte across the link
	LatencyPerByte float64 // seconds per byte of serialization on the link
	HopLatency     float64 // fixed per-hop router pipeline latency (seconds)
	RouterEnergy   float64 // joules per byte for the router traversal itself
}

// DefaultLinkParams returns costs typical of a ~1 GHz, 32-bit-flit mesh:
// 4 bytes per cycle per link and a few pJ per byte per hop.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		EnergyPerByte:  6.0e-12, // 6 pJ/byte wire energy
		LatencyPerByte: 0.25e-9, // 4 bytes/cycle at 1 GHz
		HopLatency:     3.0e-9,  // 3-cycle router pipeline
		RouterEnergy:   4.0e-12, // 4 pJ/byte router switching
	}
}

// link is one directed edge of the mesh graph.
type link struct {
	to int
	LinkParams
}

// Path is a concrete route through the mesh, listed as the sequence of
// routers it visits, source and destination included.
type Path struct {
	Nodes []int
}

// Hops returns the number of links traversed.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// NumPaths is the paper's P: the number of candidate routing paths kept per
// ordered processor pair.
const NumPaths = 2

// PathEnergy is the index of the energy-oriented path.
const PathEnergy = 0

// PathTime is the index of the time-oriented path.
const PathTime = 1

// Mesh is a W×H 2D-mesh NoC with heterogeneous per-link costs.
type Mesh struct {
	W, H   int
	policy PathPolicy
	adj    [][]link // adjacency list per router

	paths  [][][NumPaths]Path        // paths[β][γ][ρ]
	timeM  [][][NumPaths]float64     // t[β][γ][ρ], seconds per byte
	energy [][][]([NumPaths]float64) // e[β][γ][k][ρ], joules per byte at node k
}

// PathPolicy selects how the two candidate paths per pair are derived.
type PathPolicy int

// Path policies.
const (
	// PolicyDijkstra derives candidate 0 as the minimum-energy path and
	// candidate 1 as the minimum-latency path (the paper's default).
	PolicyDijkstra PathPolicy = iota
	// PolicyXYYX derives candidate 0 as the dimension-ordered XY route and
	// candidate 1 as the YX route — the classic deadlock-free mesh pair.
	PolicyXYYX
)

// Config controls mesh construction.
type Config struct {
	W, H int
	Link LinkParams
	// Jitter, if positive, perturbs every link's energy and latency by a
	// uniform factor in [1-Jitter, 1+Jitter] so that the energy-oriented
	// and time-oriented shortest paths genuinely differ. Seed makes the
	// perturbation reproducible.
	Jitter float64
	Seed   int64
	Policy PathPolicy
}

// NewMesh builds the mesh and precomputes all candidate paths and the
// energy/time matrices.
func NewMesh(cfg Config) (*Mesh, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("noc: mesh dimensions %dx%d must be positive", cfg.W, cfg.H)
	}
	if cfg.Link.EnergyPerByte <= 0 || cfg.Link.LatencyPerByte <= 0 {
		return nil, fmt.Errorf("noc: link energy and latency must be positive")
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		return nil, fmt.Errorf("noc: jitter %g must be in [0, 1)", cfg.Jitter)
	}
	m := &Mesh{W: cfg.W, H: cfg.H, policy: cfg.Policy}
	n := cfg.W * cfg.H
	m.adj = make([][]link, n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	jitter := func() float64 {
		if numeric.IsZero(cfg.Jitter) {
			return 1
		}
		return 1 - cfg.Jitter + 2*cfg.Jitter*rng.Float64()
	}
	addLink := func(a, b int) {
		lp := cfg.Link
		lp.EnergyPerByte *= jitter()
		lp.LatencyPerByte *= jitter()
		m.adj[a] = append(m.adj[a], link{to: b, LinkParams: lp})
	}
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			id := m.ID(x, y)
			if x+1 < cfg.W {
				addLink(id, m.ID(x+1, y))
				addLink(m.ID(x+1, y), id)
			}
			if y+1 < cfg.H {
				addLink(id, m.ID(x, y+1))
				addLink(m.ID(x, y+1), id)
			}
		}
	}
	if err := m.computePaths(); err != nil {
		return nil, err
	}
	return m, nil
}

// Default returns a w×h mesh with default link parameters and a small
// deterministic jitter, so the two candidate paths differ.
func Default(w, h int) *Mesh {
	m, err := NewMesh(Config{W: w, H: h, Link: DefaultLinkParams(), Jitter: 0.25, Seed: 1})
	if err != nil {
		//lint:allow nopanic — Must-style constructor on static defaults; NewMesh is the fallible path
		panic("noc: default mesh construction failed: " + err.Error())
	}
	return m
}

// N returns the number of routers/processors.
func (m *Mesh) N() int { return m.W * m.H }

// ID maps mesh coordinates to a processor id.
func (m *Mesh) ID(x, y int) int { return y*m.W + x }

// Coord maps a processor id back to mesh coordinates.
func (m *Mesh) Coord(id int) (x, y int) { return id % m.W, id / m.W }

// ManhattanDistance returns the hop distance between two processors.
func (m *Mesh) ManhattanDistance(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// dijkstra computes shortest paths from src under the given per-link weight
// function and returns the predecessor array.
func (m *Mesh) dijkstra(src int, weight func(LinkParams) float64) []int {
	n := m.N()
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	// The mesh is tiny (N ≤ a few hundred); a linear-scan Dijkstra is fine
	// and avoids heap bookkeeping.
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, l := range m.adj[u] {
			if d := dist[u] + weight(l.LinkParams); d < dist[l.to]-1e-18 {
				dist[l.to] = d
				prev[l.to] = u
			}
		}
	}
	return prev
}

// extractPath rebuilds the path src→dst from a predecessor array.
func extractPath(prev []int, src, dst int) Path {
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	nodes := make([]int, len(rev))
	for i, v := range rev {
		nodes[len(rev)-1-i] = v
	}
	return Path{Nodes: nodes}
}

// linkBetween returns the directed link a→b, or an error if the mesh has
// no such link — which would indicate a broken path.
func (m *Mesh) linkBetween(a, b int) (LinkParams, error) {
	for _, l := range m.adj[a] {
		if l.to == b {
			return l.LinkParams, nil
		}
	}
	return LinkParams{}, fmt.Errorf("noc: no link %d→%d", a, b)
}

// computePaths fills the path, time and energy matrices.
func (m *Mesh) computePaths() error {
	n := m.N()
	m.paths = make([][][NumPaths]Path, n)
	m.timeM = make([][][NumPaths]float64, n)
	m.energy = make([][][]([NumPaths]float64), n)
	for src := 0; src < n; src++ {
		m.paths[src] = make([][NumPaths]Path, n)
		m.timeM[src] = make([][NumPaths]float64, n)
		m.energy[src] = make([][]([NumPaths]float64), n)
		var prevE, prevT []int
		if m.policy == PolicyDijkstra {
			prevE = m.dijkstra(src, func(l LinkParams) float64 { return l.EnergyPerByte + l.RouterEnergy })
			prevT = m.dijkstra(src, timeWeight)
		}
		for dst := 0; dst < n; dst++ {
			m.energy[src][dst] = make([]([NumPaths]float64), n)
			if dst == src {
				// Same-processor communication is free (paper, Sec. II-A2).
				m.paths[src][dst][PathEnergy] = Path{Nodes: []int{src}}
				m.paths[src][dst][PathTime] = Path{Nodes: []int{src}}
				continue
			}
			var pe, pt Path
			if m.policy == PolicyXYYX {
				pe = m.dimensionOrdered(src, dst, true)
				pt = m.dimensionOrdered(src, dst, false)
			} else {
				pe = extractPath(prevE, src, dst)
				pt = extractPath(prevT, src, dst)
			}
			m.paths[src][dst][PathEnergy] = pe
			m.paths[src][dst][PathTime] = pt
			for rho, p := range [NumPaths]Path{pe, pt} {
				t, err := m.pathTimePerByte(p)
				if err != nil {
					return err
				}
				m.timeM[src][dst][rho] = t
				for i := 0; i+1 < len(p.Nodes); i++ {
					a, b := p.Nodes[i], p.Nodes[i+1]
					lp, err := m.linkBetween(a, b)
					if err != nil {
						return err
					}
					// Wire energy split evenly between the two endpoints;
					// router traversal energy charged to the forwarding node.
					m.energy[src][dst][a][rho] += lp.RouterEnergy + lp.EnergyPerByte/2
					m.energy[src][dst][b][rho] += lp.EnergyPerByte / 2
				}
				// Ejection at the destination router.
				last := p.Nodes[len(p.Nodes)-1]
				m.energy[src][dst][last][rho] += m.ejectEnergyPerByte()
			}
		}
	}
	return nil
}

// ejectEnergyPerByte is the cost of moving a byte from the destination
// router into its processor; we reuse the router traversal energy.
func (m *Mesh) ejectEnergyPerByte() float64 {
	// All links share RouterEnergy up to jitter; taking the first is fine
	// because ejection cost only needs to be a consistent constant.
	for _, ls := range m.adj {
		if len(ls) > 0 {
			return ls[0].RouterEnergy
		}
	}
	return 0
}

// nominalPacket is the packet size (bytes) used to amortize fixed per-hop
// router latency into the paper's per-byte time figure.
const nominalPacket = 1024.0

// timeWeight is the additive per-link latency metric: per-byte serialization
// plus the router pipeline latency amortized over a nominal packet. Using an
// additive metric keeps the reported path time consistent with the
// Dijkstra-optimal time-oriented path. (Wormhole pipelining, which is not
// additive, is modelled by package nocsim and cross-checked in tests.)
func timeWeight(l LinkParams) float64 {
	return l.LatencyPerByte + l.HopLatency/nominalPacket
}

// pathTimePerByte returns the per-byte latency along p under timeWeight.
func (m *Mesh) pathTimePerByte(p Path) (float64, error) {
	var t float64
	for i := 0; i+1 < len(p.Nodes); i++ {
		lp, err := m.linkBetween(p.Nodes[i], p.Nodes[i+1])
		if err != nil {
			return 0, err
		}
		t += timeWeight(lp)
	}
	return t, nil
}

// dimensionOrdered returns the XY (xFirst) or YX route from src to dst.
func (m *Mesh) dimensionOrdered(src, dst int, xFirst bool) Path {
	x, y := m.Coord(src)
	dx, dy := m.Coord(dst)
	nodes := []int{src}
	stepX := func() {
		for x != dx {
			if x < dx {
				x++
			} else {
				x--
			}
			nodes = append(nodes, m.ID(x, y))
		}
	}
	stepY := func() {
		for y != dy {
			if y < dy {
				y++
			} else {
				y--
			}
			nodes = append(nodes, m.ID(x, y))
		}
	}
	if xFirst {
		stepX()
		stepY()
	} else {
		stepY()
		stepX()
	}
	return Path{Nodes: nodes}
}

// LinkLatencyPerByte returns the serialization latency of the directed
// link a→b in seconds per byte, and false if the link does not exist.
func (m *Mesh) LinkLatencyPerByte(a, b int) (float64, bool) {
	for _, l := range m.adj[a] {
		if l.to == b {
			return l.LatencyPerByte, true
		}
	}
	return 0, false
}

// PathOf returns the ρ-th candidate path from β to γ.
func (m *Mesh) PathOf(beta, gamma, rho int) Path { return m.paths[beta][gamma][rho] }

// TimePerByte returns t[β][γ][ρ]: seconds to move one byte from β to γ over
// candidate path ρ. Zero when β == γ.
func (m *Mesh) TimePerByte(beta, gamma, rho int) float64 {
	return m.timeM[beta][gamma][rho]
}

// EnergyPerByte returns e[β][γ][k][ρ]: joules consumed at node k per byte
// moved from β to γ over candidate path ρ. Zero when β == γ or when k is
// not on the path.
func (m *Mesh) EnergyPerByte(beta, gamma, k, rho int) float64 {
	return m.energy[beta][gamma][k][rho]
}

// TotalEnergyPerByte returns Σ_k e[β][γ][k][ρ], the full path cost per byte.
func (m *Mesh) TotalEnergyPerByte(beta, gamma, rho int) float64 {
	var s float64
	for k := 0; k < m.N(); k++ {
		s += m.energy[beta][gamma][k][rho]
	}
	return s
}

// TimeBounds returns min and max of t[β][γ][ρ] over all β ≠ γ and ρ; the
// paper's average-communication-time estimate uses these.
func (m *Mesh) TimeBounds() (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			if b == g {
				continue
			}
			for rho := 0; rho < NumPaths; rho++ {
				t := m.timeM[b][g][rho]
				if t < lo {
					lo = t
				}
				if t > hi {
					hi = t
				}
			}
		}
	}
	return lo, hi
}

// EnergyBoundsAt returns (min over β≠γ of e[β][γ][k][1], max over β≠γ of
// e[β][γ][k][0]) for node k, the quantities in the paper's E_k^comm
// estimate. Entries where k is off-path (zero) are ignored for the minimum.
func (m *Mesh) EnergyBoundsAt(k int) (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			if b == g {
				continue
			}
			if e := m.energy[b][g][k][PathEnergy]; e > hi {
				hi = e
			}
			if e := m.energy[b][g][k][PathTime]; e > 0 && e < lo {
				lo = e
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo = 0
	}
	return lo, hi
}

// MaxEnergyPerByte returns max over β,γ,k,ρ of e[β][γ][k][ρ], the paper's
// e_k^comm parameter used to define the μ index.
func (m *Mesh) MaxEnergyPerByte() float64 {
	var hi float64
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			for k := 0; k < m.N(); k++ {
				for rho := 0; rho < NumPaths; rho++ {
					if e := m.energy[b][g][k][rho]; e > hi {
						hi = e
					}
				}
			}
		}
	}
	return hi
}

// ScaleEnergy multiplies every communication energy entry by factor; the
// Fig. 2(b) sweep uses this to vary the μ index without rebuilding paths.
func (m *Mesh) ScaleEnergy(factor float64) {
	for b := range m.energy {
		for g := range m.energy[b] {
			for k := range m.energy[b][g] {
				for rho := 0; rho < NumPaths; rho++ {
					m.energy[b][g][k][rho] *= factor
				}
			}
		}
	}
}
