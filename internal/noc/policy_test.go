package noc

import (
	"reflect"
	"testing"
)

func xyyxMesh(t *testing.T) *Mesh {
	t.Helper()
	m, err := NewMesh(Config{
		W: 4, H: 4, Link: DefaultLinkParams(),
		Jitter: 0.25, Seed: 1, Policy: PolicyXYYX,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestXYRouteShape(t *testing.T) {
	m := xyyxMesh(t)
	src, dst := m.ID(0, 0), m.ID(2, 3)
	xy := m.PathOf(src, dst, 0)
	want := []int{m.ID(0, 0), m.ID(1, 0), m.ID(2, 0), m.ID(2, 1), m.ID(2, 2), m.ID(2, 3)}
	if !reflect.DeepEqual(xy.Nodes, want) {
		t.Errorf("XY route %v, want %v", xy.Nodes, want)
	}
	yx := m.PathOf(src, dst, 1)
	wantYX := []int{m.ID(0, 0), m.ID(0, 1), m.ID(0, 2), m.ID(0, 3), m.ID(1, 3), m.ID(2, 3)}
	if !reflect.DeepEqual(yx.Nodes, wantYX) {
		t.Errorf("YX route %v, want %v", yx.Nodes, wantYX)
	}
}

// Dimension-ordered routes are always minimal (Manhattan-length).
func TestXYYXAlwaysMinimal(t *testing.T) {
	m := xyyxMesh(t)
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			for rho := 0; rho < NumPaths; rho++ {
				if hops := m.PathOf(b, g, rho).Hops(); hops != m.ManhattanDistance(b, g) {
					t.Fatalf("%d→%d ρ=%d: %d hops, Manhattan %d", b, g, rho, hops, m.ManhattanDistance(b, g))
				}
			}
		}
	}
}

// XY and YX coincide exactly when src and dst share a row or column.
func TestXYYXDistinctness(t *testing.T) {
	m := xyyxMesh(t)
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			if b == g {
				continue
			}
			bx, by := m.Coord(b)
			gx, gy := m.Coord(g)
			same := reflect.DeepEqual(m.PathOf(b, g, 0).Nodes, m.PathOf(b, g, 1).Nodes)
			aligned := bx == gx || by == gy
			if same != aligned {
				t.Errorf("%d→%d: routes same=%v but aligned=%v", b, g, same, aligned)
			}
		}
	}
}

// The time/energy matrices must be consistent with the routes under either
// policy (spot-check: energy charged only on the route).
func TestXYYXMatricesConsistent(t *testing.T) {
	m := xyyxMesh(t)
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			if b == g {
				continue
			}
			for rho := 0; rho < NumPaths; rho++ {
				onPath := map[int]bool{}
				for _, v := range m.PathOf(b, g, rho).Nodes {
					onPath[v] = true
				}
				for k := 0; k < m.N(); k++ {
					if e := m.EnergyPerByte(b, g, k, rho); e > 0 && !onPath[k] {
						t.Fatalf("%d→%d ρ=%d: node %d charged off route", b, g, rho, k)
					}
				}
				if m.TimePerByte(b, g, rho) <= 0 {
					t.Fatalf("%d→%d ρ=%d: non-positive time", b, g, rho)
				}
			}
		}
	}
}
