package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(Config{W: 0, H: 2, Link: DefaultLinkParams()}); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := NewMesh(Config{W: 2, H: 2}); err == nil {
		t.Error("expected error for zero link costs")
	}
	if _, err := NewMesh(Config{W: 2, H: 2, Link: DefaultLinkParams(), Jitter: 1.5}); err == nil {
		t.Error("expected error for jitter >= 1")
	}
}

func TestCoordRoundTrip(t *testing.T) {
	m := Default(4, 4)
	for id := 0; id < m.N(); id++ {
		x, y := m.Coord(id)
		if got := m.ID(x, y); got != id {
			t.Errorf("ID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestManhattanDistance(t *testing.T) {
	m := Default(4, 4)
	if d := m.ManhattanDistance(m.ID(0, 0), m.ID(3, 3)); d != 6 {
		t.Errorf("corner-to-corner distance = %d, want 6", d)
	}
	if d := m.ManhattanDistance(5, 5); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

// Both candidate paths must be valid walks over mesh links from β to γ.
func TestPathsAreValidWalks(t *testing.T) {
	m := Default(3, 3)
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			for rho := 0; rho < NumPaths; rho++ {
				p := m.PathOf(b, g, rho)
				if len(p.Nodes) == 0 {
					t.Fatalf("empty path %d→%d ρ=%d", b, g, rho)
				}
				if p.Nodes[0] != b || p.Nodes[len(p.Nodes)-1] != g {
					t.Fatalf("path %d→%d ρ=%d has endpoints %v", b, g, rho, p.Nodes)
				}
				for i := 0; i+1 < len(p.Nodes); i++ {
					if m.ManhattanDistance(p.Nodes[i], p.Nodes[i+1]) != 1 {
						t.Fatalf("path %d→%d ρ=%d: %d and %d not adjacent",
							b, g, rho, p.Nodes[i], p.Nodes[i+1])
					}
				}
			}
		}
	}
}

// A shortest path in either metric never has fewer hops than the Manhattan
// distance, and with modest jitter Dijkstra should not detour arbitrarily.
func TestPathHopsAtLeastManhattan(t *testing.T) {
	m := Default(4, 4)
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			for rho := 0; rho < NumPaths; rho++ {
				hops := m.PathOf(b, g, rho).Hops()
				if hops < m.ManhattanDistance(b, g) {
					t.Fatalf("path %d→%d ρ=%d: %d hops < Manhattan %d",
						b, g, rho, hops, m.ManhattanDistance(b, g))
				}
			}
		}
	}
}

func TestSameProcessorCommFree(t *testing.T) {
	m := Default(4, 4)
	for k := 0; k < m.N(); k++ {
		for rho := 0; rho < NumPaths; rho++ {
			if m.TimePerByte(k, k, rho) != 0 {
				t.Errorf("t[%d][%d][%d] = %g, want 0", k, k, rho, m.TimePerByte(k, k, rho))
			}
			for j := 0; j < m.N(); j++ {
				if m.EnergyPerByte(k, k, j, rho) != 0 {
					t.Errorf("e[%d][%d][%d][%d] != 0", k, k, j, rho)
				}
			}
		}
	}
}

// The energy-oriented path must be no worse in total energy than the
// time-oriented path, and vice versa for latency (Dijkstra optimality).
func TestPathOrientationOptimality(t *testing.T) {
	m := Default(4, 4)
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			if b == g {
				continue
			}
			eE := m.TotalEnergyPerByte(b, g, PathEnergy)
			eT := m.TotalEnergyPerByte(b, g, PathTime)
			if eE > eT+1e-18 {
				t.Errorf("%d→%d: energy path costs more energy (%g) than time path (%g)", b, g, eE, eT)
			}
			tE := m.TimePerByte(b, g, PathEnergy)
			tT := m.TimePerByte(b, g, PathTime)
			if tT > tE+1e-15 {
				t.Errorf("%d→%d: time path slower (%g) than energy path (%g)", b, g, tT, tE)
			}
		}
	}
}

// With jitter enabled, at least some pairs must see genuinely different
// candidate paths, otherwise multi-path selection is vacuous.
func TestJitterProducesDistinctPaths(t *testing.T) {
	m := Default(4, 4)
	distinct := 0
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			if b == g {
				continue
			}
			pe := m.PathOf(b, g, PathEnergy).Nodes
			pt := m.PathOf(b, g, PathTime).Nodes
			if len(pe) != len(pt) {
				distinct++
				continue
			}
			for i := range pe {
				if pe[i] != pt[i] {
					distinct++
					break
				}
			}
		}
	}
	if distinct == 0 {
		t.Error("no pair has distinct energy/time paths; multi-path selection would be vacuous")
	}
}

// Energy attributed across nodes must sum to a positive per-path total, and
// only nodes on the path may be charged.
func TestEnergyChargedOnlyOnPath(t *testing.T) {
	m := Default(3, 3)
	for b := 0; b < m.N(); b++ {
		for g := 0; g < m.N(); g++ {
			if b == g {
				continue
			}
			for rho := 0; rho < NumPaths; rho++ {
				onPath := map[int]bool{}
				for _, v := range m.PathOf(b, g, rho).Nodes {
					onPath[v] = true
				}
				for k := 0; k < m.N(); k++ {
					e := m.EnergyPerByte(b, g, k, rho)
					if e < 0 {
						t.Fatalf("negative energy e[%d][%d][%d][%d]", b, g, k, rho)
					}
					if e > 0 && !onPath[k] {
						t.Fatalf("node %d charged but off path %d→%d ρ=%d", k, b, g, rho)
					}
				}
				if tot := m.TotalEnergyPerByte(b, g, rho); tot <= 0 {
					t.Fatalf("non-positive total energy for %d→%d ρ=%d", b, g, rho)
				}
			}
		}
	}
}

// Longer Manhattan distance must not cost less energy on the same metric
// (triangle-ish sanity under uniform links).
func TestEnergyGrowsWithDistanceUniform(t *testing.T) {
	m, err := NewMesh(Config{W: 4, H: 4, Link: DefaultLinkParams()}) // no jitter
	if err != nil {
		t.Fatal(err)
	}
	src := m.ID(0, 0)
	prev := 0.0
	for x := 1; x < 4; x++ {
		e := m.TotalEnergyPerByte(src, m.ID(x, 0), PathEnergy)
		if e <= prev {
			t.Errorf("energy to (%d,0) = %g not greater than previous %g", x, e, prev)
		}
		prev = e
	}
}

func TestTimeBoundsAndScaleEnergy(t *testing.T) {
	m := Default(3, 3)
	lo, hi := m.TimeBounds()
	if !(lo > 0 && hi >= lo) {
		t.Fatalf("TimeBounds = (%g, %g)", lo, hi)
	}
	before := m.TotalEnergyPerByte(0, 5, PathEnergy)
	m.ScaleEnergy(2.5)
	after := m.TotalEnergyPerByte(0, 5, PathEnergy)
	if math.Abs(after-2.5*before)/before > 1e-12 {
		t.Errorf("ScaleEnergy: got %g, want %g", after, 2.5*before)
	}
}

func TestEnergyBoundsAt(t *testing.T) {
	m := Default(3, 3)
	for k := 0; k < m.N(); k++ {
		lo, hi := m.EnergyBoundsAt(k)
		if lo < 0 || hi < lo {
			t.Errorf("EnergyBoundsAt(%d) = (%g, %g)", k, lo, hi)
		}
	}
	if hi := m.MaxEnergyPerByte(); hi <= 0 {
		t.Errorf("MaxEnergyPerByte = %g", hi)
	}
}

// Property: path symmetry of hop counts — the minimum-hop requirement holds
// for random meshes of random sizes.
func TestPathPropertyRandomMeshes(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := 2 + int(wRaw%4)
		h := 2 + int(hRaw%4)
		m, err := NewMesh(Config{W: w, H: h, Link: DefaultLinkParams(), Jitter: 0.3, Seed: seed})
		if err != nil {
			return false
		}
		for b := 0; b < m.N(); b++ {
			for g := 0; g < m.N(); g++ {
				for rho := 0; rho < NumPaths; rho++ {
					p := m.PathOf(b, g, rho)
					if p.Nodes[0] != b || p.Nodes[len(p.Nodes)-1] != g {
						return false
					}
					if p.Hops() < m.ManhattanDistance(b, g) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
