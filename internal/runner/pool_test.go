package runner

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(4, 16, nil)
	defer p.Close()
	var ran atomic.Int64
	var dones []<-chan error
	for i := 0; i < 10; i++ {
		done, err := p.TrySubmit(func() error { ran.Add(1); return nil })
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		dones = append(dones, done)
	}
	for i, done := range dones {
		if err := <-done; err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if n := ran.Load(); n != 10 {
		t.Fatalf("ran %d tasks, want 10", n)
	}
}

func TestPoolTaskErrorsPropagate(t *testing.T) {
	p := NewPool(1, 4, nil)
	defer p.Close()
	boom := errors.New("boom")
	done, err := p.TrySubmit(func() error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if got := <-done; !errors.Is(got, boom) {
		t.Fatalf("task error %v, want boom", got)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1, nil)
	defer p.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker…
	running, err := p.TrySubmit(func() error { close(started); <-gate; return nil })
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// …fill the single queue slot…
	queued, err := p.TrySubmit(func() error { return nil })
	if err != nil {
		t.Fatalf("queue slot rejected: %v", err)
	}
	// …and the next submit must bounce without blocking.
	if _, err := p.TrySubmit(func() error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overload submit: %v, want ErrQueueFull", err)
	}
	if d := p.Pending(); d != 2 {
		t.Fatalf("pending %d, want 2", d)
	}
	close(gate)
	if err := <-running; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	// Capacity is available again.
	done, err := p.TrySubmit(func() error { return nil })
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPoolPanicCaptured(t *testing.T) {
	p := NewPool(2, 4, nil)
	defer p.Close()
	done, err := p.TrySubmit(func() error { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	got := <-done
	var pe *PanicError
	if !errors.As(got, &pe) {
		t.Fatalf("task returned %v, want *PanicError", got)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload %v (stack %d bytes)", pe.Value, len(pe.Stack))
	}
	// The worker that recovered keeps serving.
	done, err = p.TrySubmit(func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("task after panic: %v", err)
	}
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := NewPool(1, 8, nil)
	var ran atomic.Int64
	var dones []<-chan error
	for i := 0; i < 6; i++ {
		done, err := p.TrySubmit(func() error {
			time.Sleep(time.Millisecond)
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		dones = append(dones, done)
	}
	p.Close() // must run all six queued tasks before returning
	if n := ran.Load(); n != 6 {
		t.Fatalf("close drained %d tasks, want 6", n)
	}
	for i, done := range dones {
		if err := <-done; err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if d := p.Pending(); d != 0 {
		t.Fatalf("pending after close: %d", d)
	}
	if _, err := p.TrySubmit(func() error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}
