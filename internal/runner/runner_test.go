package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

// Results must come back in index order no matter how workers interleave.
func TestMapOrdered(t *testing.T) {
	const n = 200
	got, err := Map(context.Background(), 8, n, func(_ context.Context, i int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Duration(i%3) * time.Millisecond)
		}
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// At most `workers` invocations may be in flight simultaneously.
func TestMapBoundedConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (struct{}, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent items, want ≤ %d", p, workers)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for empty input")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Errorf("Map(0 items) = %v, %v", got, err)
	}
}

// The lowest failing index must win even when a later worker fails first.
func TestMapErrorLowestIndexWins(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	_, err := Map(context.Background(), 2, 2, func(_ context.Context, i int) (int, error) {
		if i == 0 {
			time.Sleep(5 * time.Millisecond) // let index 1 fail first
			return 0, errLow
		}
		return 0, errHigh
	})
	if !errors.Is(err, errLow) {
		t.Errorf("err = %v, want %v", err, errLow)
	}
}

// An error stops dispatch of pending items.
func TestMapErrorStopsDispatch(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), 1, 1000, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s := started.Load(); s > 5 {
		t.Errorf("%d items started after the failure at index 4", s)
	}
}

func TestMapPanicCaptured(t *testing.T) {
	_, err := Map(context.Background(), 4, 32, func(_ context.Context, i int) (int, error) {
		if i == 13 {
			panic("unlucky")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 13 || pe.Value != "unlucky" {
		t.Errorf("PanicError = {Index: %d, Value: %v}", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "unlucky") {
		t.Errorf("panic stack/message not captured: %q", pe.Error())
	}
}

func TestMapPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(ctx, 4, 100, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// Workers may race one item each past the initial check, no more.
	if r := ran.Load(); r > 4 {
		t.Errorf("%d items ran under a pre-canceled context", r)
	}
}

func TestMapCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 2, 1000, func(ctx context.Context, i int) (int, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return i, nil
		})
		done <- err
	}()
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
}

// TestMapHammer drives the pool hard under the race detector: each round
// randomly mixes panicking items, failing items, and a context canceled at
// a random moment, and asserts the pool neither deadlocks nor corrupts
// successful results.
func TestMapHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 60; round++ {
		n := 1 + rng.Intn(120)
		workers := 1 + rng.Intn(12)
		panicAt, errAt := -1, -1
		if rng.Intn(2) == 0 {
			panicAt = rng.Intn(n)
		}
		if rng.Intn(2) == 0 {
			errAt = rng.Intn(n)
		}
		ctx, cancel := context.WithCancel(context.Background())
		if rng.Intn(3) == 0 {
			delay := time.Duration(rng.Intn(300)) * time.Microsecond
			go func() { time.Sleep(delay); cancel() }()
		}

		wantErr := errors.New("hammer")
		got, err := Map(ctx, workers, n, func(ctx context.Context, i int) (int, error) {
			if i == panicAt {
				panic(fmt.Sprintf("hammer panic at %d", i))
			}
			if i == errAt {
				return 0, wantErr
			}
			if i%5 == 0 {
				select {
				case <-ctx.Done():
				default:
				}
			}
			return 3*i + 1, nil
		})
		cancel()

		if err == nil {
			if panicAt >= 0 || errAt >= 0 {
				t.Fatalf("round %d: nil error despite panicAt=%d errAt=%d", round, panicAt, errAt)
			}
			for i, v := range got {
				if v != 3*i+1 {
					t.Fatalf("round %d: got[%d] = %d, want %d", round, i, v, 3*i+1)
				}
			}
			continue
		}
		var pe *PanicError
		switch {
		case errors.As(err, &pe):
			if pe.Index != panicAt {
				t.Fatalf("round %d: panic at index %d, want %d", round, pe.Index, panicAt)
			}
		case errors.Is(err, wantErr):
			if errAt < 0 {
				t.Fatalf("round %d: unexpected item error %v", round, err)
			}
		case errors.Is(err, context.Canceled):
			// cancellation won the race; fine
		default:
			t.Fatalf("round %d: unexpected error %v", round, err)
		}
	}
}
