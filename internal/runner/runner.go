// Package runner is a bounded worker pool for embarrassingly parallel
// instance evaluation with deterministic, index-ordered result collection.
//
// The experiment runners in internal/exp evaluate a (parameter point ×
// trial) grid of independent problem instances; package runner fans those
// evaluations out over a configurable number of goroutines while keeping
// the collected results — and any reported error — independent of
// goroutine scheduling:
//
//   - results are written to a slot indexed by the work item, so the
//     returned slice is always in submission order;
//   - when several items fail, the error with the lowest index wins, so
//     the reported failure does not depend on which worker ran first;
//   - a panic inside a work item is captured as a *PanicError (with the
//     item index and stack) instead of crashing sibling workers.
//
// Cancellation is cooperative: once the context is done or an item has
// failed, no further items start; items already running see the derived
// context canceled and may return early.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"nocdeploy/internal/obs"
)

// PanicError wraps a panic recovered from a work item.
type PanicError struct {
	Index int    // work-item index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: work item %d panicked: %v", e.Index, e.Value)
}

// Workers normalizes a requested parallelism: values ≤ 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged. It is the
// single place the "0 means all cores" convention is implemented.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map evaluates fn(ctx, i) for every i in [0, n) on at most
// Workers(workers) goroutines and returns the n results in index order.
//
// fn must be safe to call concurrently from multiple goroutines for
// distinct indices. If any invocation returns an error or panics, the
// remaining undispatched items are skipped, the context passed to
// in-flight invocations is canceled, and Map returns the failure with the
// lowest index (a recovered panic is returned as a *PanicError). If the
// parent context is canceled before all items complete and no item
// failed, Map returns ctx.Err().
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapTraced[T](ctx, workers, n, nil, fn)
}

// MapTraced is Map with pool telemetry: when tr is non-nil, each work item
// emits an obs.PoolTaskStart/obs.PoolTaskDone pair carrying the item index,
// the 1-based worker id and the item's wall-clock duration. Tracing is
// observability only — dispatch order, results and error selection are
// identical to Map.
func MapTraced[T any](ctx context.Context, workers, n int, tr *obs.Trace, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64 // next index to dispatch
	var failed atomic.Bool

	runOne := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		results[i], err = fn(ctx, i)
		return err
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var itemStart time.Time
				if tr.Enabled() {
					itemStart = time.Now()
					tr.Emit(obs.Event{Kind: obs.PoolTaskStart, Node: i, Worker: worker})
				}
				err := runOne(i)
				if tr.Enabled() {
					e := obs.Event{Kind: obs.PoolTaskDone, Node: i, Worker: worker, Dur: time.Since(itemStart).Seconds()}
					if err != nil {
						e.Phase = "error"
					}
					tr.Emit(e)
				}
				if err != nil {
					errs[i] = err
					failed.Store(true)
					cancel() // wake in-flight siblings
				}
			}
		}(w + 1)
	}
	wg.Wait()

	// Deterministic error selection: lowest failed index wins, regardless
	// of which worker hit it first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
