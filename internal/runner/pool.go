package runner

import (
	"errors"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"nocdeploy/internal/obs"
)

// Pool errors returned by TrySubmit.
var (
	// ErrQueueFull reports that the bounded queue rejected a task. The
	// deployment service maps this to HTTP 429 (admission control).
	ErrQueueFull = errors.New("runner: queue full")
	// ErrPoolClosed reports a submit after Close started.
	ErrPoolClosed = errors.New("runner: pool closed")
)

type poolTask struct {
	fn   func() error
	seq  int
	done chan error
}

// Pool is a long-running bounded worker pool, the service-shaped sibling of
// Map: instead of fanning a fixed grid out and collecting results, it
// accepts tasks one at a time, rejects (never blocks) when the queue is
// full, and drains gracefully on Close. Like Map, a panicking task is
// captured as a *PanicError (Index is the task's admission sequence number)
// instead of crashing the process.
type Pool struct {
	queue   chan poolTask
	tr      *obs.Trace
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	seq     int
	pending atomic.Int64
	running atomic.Int64
}

// NewPool starts Workers(workers) goroutines serving a queue of at most
// queueDepth waiting tasks (tasks already executing don't count against the
// queue). tr may be nil; when tracing is enabled each task emits the same
// pool.task.start/done event pair as MapTraced.
func NewPool(workers, queueDepth int, tr *obs.Trace) *Pool {
	if queueDepth < 0 {
		queueDepth = 0
	}
	workers = Workers(workers)
	p := &Pool{queue: make(chan poolTask, queueDepth), tr: tr}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w + 1)
	}
	return p
}

// TrySubmit offers fn to the pool without blocking. On admission it returns
// a 1-buffered channel that will receive fn's error (or a *PanicError, or
// nil) exactly once. A full queue returns ErrQueueFull and a closed pool
// ErrPoolClosed; in both cases fn will never run.
func (p *Pool) TrySubmit(fn func() error) (<-chan error, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	t := poolTask{fn: fn, seq: p.seq, done: make(chan error, 1)}
	select {
	case p.queue <- t:
		p.seq++
		p.pending.Add(1)
		return t.done, nil
	default:
		return nil, ErrQueueFull
	}
}

// Pending reports tasks admitted but not yet finished (queued plus
// executing). It is a metrics gauge, racy by nature.
func (p *Pool) Pending() int {
	return int(p.pending.Load())
}

// Running reports tasks executing on a worker right now — the pool
// occupancy gauge. Racy by nature, like Pending.
func (p *Pool) Running() int {
	return int(p.running.Load())
}

// Queued reports tasks admitted but still waiting for a worker — the
// queue-depth gauge. Derived from two independently-updated atomics, so
// transiently off by the number of concurrent dequeues; never negative.
func (p *Pool) Queued() int {
	q := int(p.pending.Load()) - int(p.running.Load())
	if q < 0 {
		q = 0
	}
	return q
}

// Close stops admission, runs every already-queued task to completion, and
// returns once all workers have exited. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for t := range p.queue {
		var start time.Time
		if p.tr.Enabled() {
			start = time.Now()
			p.tr.Emit(obs.Event{Kind: obs.PoolTaskStart, Node: t.seq, Worker: id})
		}
		p.running.Add(1)
		err := runPoolTask(t)
		p.running.Add(-1)
		if p.tr.Enabled() {
			e := obs.Event{Kind: obs.PoolTaskDone, Node: t.seq, Worker: id, Dur: time.Since(start).Seconds()}
			if err != nil {
				e.Phase = "error"
			}
			p.tr.Emit(e)
		}
		p.pending.Add(-1)
		t.done <- err
	}
}

func runPoolTask(t poolTask) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: t.seq, Value: r, Stack: debug.Stack()}
		}
	}()
	return t.fn()
}
