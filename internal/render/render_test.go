package render

import (
	"strings"
	"testing"

	"nocdeploy/internal/core"
	"nocdeploy/internal/noc"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/task"
)

func deployed(t *testing.T) (*core.System, *core.Deployment, *core.Metrics) {
	t.Helper()
	plat := platform.Default(4)
	mesh := noc.Default(2, 2)
	g := task.New()
	a := g.AddTask("alpha", 1.5e6, 0.01)
	b := g.AddTask("beta", 1.0e6, 0.01)
	g.AddEdge(a, b, 4096)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rel := reliability.Default(plat.Fmin(), plat.Fmax())
	h, err := core.Horizon(plat, mesh, g, rel, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		t.Fatal(err)
	}
	d, info, err := core.Heuristic(s, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Feasible {
		t.Fatal("expected feasible")
	}
	m, err := core.ComputeMetrics(s, d)
	if err != nil {
		t.Fatal(err)
	}
	return s, d, m
}

func TestGanttContainsTasksAndProcs(t *testing.T) {
	s, d, _ := deployed(t)
	out := Gantt(s, d, 60)
	for _, want := range []string{"alpha", "beta", "proc", "horizon"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	// Row width: every proc row must have the same bar width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	barLen := -1
	for _, ln := range lines[1:] {
		open := strings.Index(ln, "|")
		close := strings.LastIndex(ln, "|")
		if open < 0 || close <= open {
			t.Fatalf("malformed row %q", ln)
		}
		if barLen < 0 {
			barLen = close - open
		} else if close-open != barLen {
			t.Errorf("ragged bar widths: %q", ln)
		}
	}
}

func TestGanttMinimumWidth(t *testing.T) {
	s, d, _ := deployed(t)
	out := Gantt(s, d, 1) // clamped to 20
	if !strings.Contains(out, "proc") {
		t.Error("tiny width render failed")
	}
}

func TestEnergyBarsMarksMax(t *testing.T) {
	s, _, m := deployed(t)
	out := EnergyBars(s, m, 30)
	if !strings.Contains(out, "*") {
		t.Errorf("no maximum marker:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != s.Mesh.N() {
		t.Errorf("%d lines for %d processors", got, s.Mesh.N())
	}
	if !strings.Contains(out, "mJ") {
		t.Error("missing energy units")
	}
}
