// Package render produces human-readable views of a deployment: an ASCII
// Gantt chart of the per-processor schedule and a per-processor energy
// histogram. cmd/deploy uses it behind the -gantt flag.
package render

import (
	"fmt"
	"sort"
	"strings"

	"nocdeploy/internal/core"
	"nocdeploy/internal/numeric"
)

// Gantt renders the schedule as one row per (used) processor over a time
// axis of the given character width. Each task occupies its scaled time
// interval, labeled with its id (copies get a trailing ').
func Gantt(s *core.System, d *core.Deployment, width int) string {
	if width < 20 {
		width = 20
	}
	exp := s.Expanded()
	type item struct {
		slot  int
		start float64
		end   float64
	}
	perProc := map[int][]item{}
	horizon := s.H
	for i := 0; i < exp.Size(); i++ {
		if !d.Exists[i] {
			continue
		}
		it := item{slot: i, start: d.Start[i], end: d.End(s, i)}
		perProc[d.Proc[i]] = append(perProc[d.Proc[i]], it)
		if it.end > horizon {
			horizon = it.end
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	scale := func(t float64) int {
		c := int(t / horizon * float64(width))
		if c > width {
			c = width
		}
		return c
	}
	label := func(slot int) string {
		name := s.Graph.Tasks[exp.Orig(slot)].Name
		if name == "" {
			name = fmt.Sprintf("t%d", exp.Orig(slot))
		}
		if exp.IsCopy(slot) {
			name += "'"
		}
		return name
	}

	var procs []int
	for k := range perProc {
		procs = append(procs, k)
	}
	sort.Ints(procs)

	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %.4g ms (horizon %.4g ms)\n", 1000*horizon, 1000*s.H)
	for _, k := range procs {
		items := perProc[k]
		sort.Slice(items, func(i, j int) bool { return items[i].start < items[j].start })
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, it := range items {
			lo, hi := scale(it.start), scale(it.end)
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			seg := []byte(strings.Repeat("#", hi-lo))
			name := label(it.slot)
			if len(name) <= len(seg) {
				copy(seg, name)
			}
			copy(row[lo:hi], seg)
		}
		fmt.Fprintf(&b, "proc %2d |%s|\n", k, row)
	}
	return b.String()
}

// EnergyBars renders per-processor total energy as a bar chart, marking
// the maximum (the BE objective).
func EnergyBars(s *core.System, m *core.Metrics, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	for k := 0; k < s.Mesh.N(); k++ {
		e := m.Energy(k)
		frac := 0.0
		if m.MaxEnergy > 0 {
			frac = e / m.MaxEnergy
		}
		n := int(frac * float64(width))
		mark := " "
		if numeric.RelEq(e, m.MaxEnergy, numeric.Eps) && e > 0 {
			mark = "*"
		}
		fmt.Fprintf(&b, "proc %2d %s |%s%s| %.4g mJ\n",
			k, mark, strings.Repeat("=", n), strings.Repeat(" ", width-n), 1000*e)
	}
	return b.String()
}
