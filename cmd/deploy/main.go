// Command deploy solves a task deployment instance from JSON and writes
// the resulting deployment (with metrics) as JSON.
//
// Usage:
//
//	deploy -in instance.json [-method heuristic|optimal] [-objective be|me]
//	       [-single] [-timeout 30s] [-workers 1] [-seed 1] [-out deployment.json]
//	       [-cache-dir DIR] [-trace PREFIX] [-progress] [-metrics-out FILE]
//	       [-pprof FILE]
//
// The instance format is documented in internal/spec; cmd/taskgen
// generates compatible instances. -cache-dir keeps solved deployments in a
// content-addressed directory cache (keyed by the canonical instance hash
// plus the solver options), so repeated invocations on the same input are
// near-instant; the summary reports cache: hit|miss. -trace writes the
// solver event stream to PREFIX.jsonl and a Chrome trace_event view to
// PREFIX.trace.json (open in Perfetto or chrome://tracing); -progress
// prints a live ticker on stderr (-q wins: a quiet run never prints
// progress); tracing never changes the computed deployment.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"nocdeploy/internal/cache"
	"nocdeploy/internal/core"
	"nocdeploy/internal/engine"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/render"
	"nocdeploy/internal/sim"
	"nocdeploy/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("deploy: ")
	var (
		in         = flag.String("in", "-", "instance JSON file (- for stdin)")
		out        = flag.String("out", "-", "deployment JSON output (- for stdout)")
		method     = flag.String("method", "heuristic", "solver: heuristic, repair, anneal, optimal or portfolio")
		objective  = flag.String("objective", "be", "objective: be (balance) or me (minimize total)")
		single     = flag.Bool("single", false, "single-path routing baseline")
		timeout    = flag.Duration("timeout", 60*time.Second, "time limit for the optimal solver")
		workers    = flag.Int("workers", 1, "parallel branch & bound workers for -method optimal (0/1 = serial, -1 = all cores)")
		seed       = flag.Int64("seed", 1, "heuristic tie-break seed")
		engOps     = flag.String("ops", "", "portfolio operators, comma-separated (-method portfolio; empty = all)")
		engRounds  = flag.Int("rounds", 0, "portfolio improvement rounds (-method portfolio; 0 = default)")
		engBudget  = flag.Int("budget", 0, "portfolio exact-repair node budget (-method portfolio; 0 = default)")
		cacheDir   = flag.String("cache-dir", "", "cache solved deployments in this directory (repeat runs are near-instant)")
		quiet      = flag.Bool("q", false, "suppress the metrics summary (and -progress) on stderr")
		gantt      = flag.Bool("gantt", false, "render an ASCII schedule and energy chart on stderr")
		simulate   = flag.Int("simulate", 0, "run N fault-injection trials and report survival rates")
		traceOut   = flag.String("trace", "", "write the solver trace to PREFIX.jsonl and PREFIX.trace.json")
		progress   = flag.Bool("progress", false, "print a live solver progress ticker on stderr (-q wins)")
		metrics    = flag.String("metrics-out", "", "write a solver metrics snapshot (JSON) to this file")
		cpuprofile = flag.String("pprof", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	var progW io.Writer
	if *progress && !*quiet {
		progW = os.Stderr
	}
	obsSetup, err := obs.NewCLISetup(*traceOut, *metrics, progW)
	if err != nil {
		log.Fatal(err)
	}
	cleanup := func() {
		if err := obsSetup.Close(); err != nil {
			log.Print(err)
		}
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
	}

	inst, err := spec.ReadInstance(*in)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := inst.Build()
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{SinglePath: *single, Trace: obsSetup.Trace}
	switch *objective {
	case "be":
		opts.Objective = core.BalanceEnergy
	case "me":
		opts.Objective = core.MinimizeEnergy
	default:
		log.Fatalf("unknown objective %q (want be or me)", *objective)
	}

	// The directory cache is keyed by the canonical instance hash plus every
	// option that changes the answer; -timeout and -workers matter only to
	// the exact solver (a limit-hit solve depends on both), so the other
	// methods ignore them and stay cacheable across budget tweaks.
	var store *cache.DirStore
	var key string
	cacheState := ""
	if *cacheDir != "" {
		store, err = cache.NewDirStore(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		h, herr := inst.CanonicalHash()
		if herr != nil {
			log.Fatal(herr)
		}
		key = fmt.Sprintf("%s|method=%s|obj=%s|single=%v|seed=%d", h, *method, *objective, *single, *seed)
		if *method == "optimal" {
			key += fmt.Sprintf("|timeout=%s|workers=%d", *timeout, *workers)
		}
		if *method == "portfolio" {
			// Engine options steer the search, so they address distinct
			// cached answers — mirroring the service's cache-key rule.
			key += fmt.Sprintf("|ops=%s|rounds=%d|budget=%d", *engOps, *engRounds, *engBudget)
		}
	}

	var d *core.Deployment
	var info *core.SolveInfo
	if store != nil {
		data, ok, gerr := store.Get(key)
		if gerr != nil {
			log.Fatal(gerr)
		}
		if ok {
			var dep spec.Deployment
			// An undecodable or no-longer-valid entry (e.g. a stale file from
			// an older format) silently falls through to a fresh solve.
			if json.Unmarshal(data, &dep) == nil {
				cand := dep.ToDeployment()
				if _, verr := core.Validate(sys, cand); verr == nil {
					d = cand
					info = &core.SolveInfo{Feasible: dep.Feasible, Objective: dep.Objective}
					cacheState = "hit"
				}
			}
		}
		if cacheState == "" {
			cacheState = "miss"
		}
	}
	if d == nil {
		switch *method {
		case "heuristic":
			d, info, err = core.Heuristic(sys, opts, *seed)
		case "repair":
			d, info, err = core.HeuristicWithRepair(sys, opts, *seed, 0)
		case "anneal":
			d, info, err = core.Anneal(sys, opts, core.AnnealOptions{Seed: *seed})
		case "portfolio":
			eo := engine.Options{
				Seed:       *seed,
				Rounds:     *engRounds,
				NodeBudget: *engBudget,
				Workers:    *workers,
			}
			var names []string
			if *engOps != "" {
				names = strings.Split(*engOps, ",")
			}
			eo.Operators, err = engine.BuildOperators(names, eo)
			if err != nil {
				log.Fatal(err)
			}
			ctx := context.Background()
			if *timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, *timeout)
				defer cancel()
			}
			d, info, err = engine.SolveCtx(ctx, sys, opts, eo)
		case "optimal":
			// Warm-start branch & bound from the heuristic when it is feasible.
			var hd *core.Deployment
			var hinfo *core.SolveInfo
			hd, hinfo, err = core.Heuristic(sys, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			oo := core.OptimalOptions{TimeLimit: *timeout, RelGap: 0.01, Workers: *workers}
			if hinfo.Feasible {
				oo.WarmDeployment = hd
			}
			d, info, err = core.Optimal(sys, opts, oo)
		default:
			log.Fatalf("unknown method %q (want heuristic or optimal)", *method)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if d == nil {
		log.Fatal("no deployment found (infeasible or solver limits hit)")
	}
	m, err := core.ComputeMetrics(sys, d)
	if err != nil {
		log.Fatal(err)
	}
	if store != nil && cacheState == "miss" && info.Feasible && !info.Cancelled {
		// Only feasible deployments are worth replaying; infeasible runs are
		// cheap to repeat, their exit code must come from a live solve, and
		// a deadline-truncated portfolio result is partial by definition.
		data, merr := json.Marshal(spec.FromDeployment(d, m, info))
		if merr == nil {
			merr = store.Put(key, data)
		}
		if merr != nil {
			log.Printf("cache-dir: %v", merr)
		}
	}
	if !*quiet {
		printSummary(sys, d, m, info, cacheState)
	}
	if *gantt {
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, render.Gantt(sys, d, 72))
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, render.EnergyBars(sys, m, 40))
	}
	if *simulate > 0 {
		stats, err := sim.InjectFaults(sys, d, *simulate, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "\nfault injection (%d runs): system survival %.6f\n", stats.Runs, stats.SystemRate())
		for i := 0; i < sys.Graph.M(); i++ {
			fmt.Fprintf(os.Stderr, "  task %2d: observed %.6f  analytic %.6f  (threshold %.6f)\n",
				i, stats.SurvivalRate(i), sim.AnalyticTaskReliability(sys, d, i), sys.Rel.Rth)
		}
	}
	if err := spec.WriteJSON(*out, spec.FromDeployment(d, m, info)); err != nil {
		log.Fatal(err)
	}
	cleanup()
	if !info.Feasible {
		os.Exit(2)
	}
}

func printSummary(sys *core.System, d *core.Deployment, m *core.Metrics, info *core.SolveInfo, cacheState string) {
	w := os.Stderr
	if cacheState != "" {
		fmt.Fprintf(w, "cache:          %s\n", cacheState)
	}
	fmt.Fprintf(w, "feasible:       %v\n", info.Feasible)
	fmt.Fprintf(w, "objective:      %.6g J\n", info.Objective)
	fmt.Fprintf(w, "max energy:     %.6g J\n", m.MaxEnergy)
	fmt.Fprintf(w, "total energy:   %.6g J\n", m.SumEnergy)
	fmt.Fprintf(w, "balance phi:    %.4g\n", m.Phi)
	fmt.Fprintf(w, "duplicates:     %d of %d tasks\n", m.Dups, sys.Graph.M())
	fmt.Fprintf(w, "makespan:       %.6g s (horizon %.6g s)\n", m.Makespan, sys.H)
	fmt.Fprintf(w, "runtime:        %v\n", info.Runtime)
	if info.Nodes > 0 {
		fmt.Fprintf(w, "b&b nodes:      %d (gap %.2f%%)\n", info.Nodes, 100*info.Gap)
	}
	fmt.Fprintf(w, "allocation:\n")
	exp := sys.Expanded()
	for i := 0; i < exp.Size(); i++ {
		if !d.Exists[i] {
			continue
		}
		name := sys.Graph.Tasks[exp.Orig(i)].Name
		if name == "" {
			name = fmt.Sprintf("t%d", exp.Orig(i))
		}
		if exp.IsCopy(i) {
			name += "'"
		}
		fmt.Fprintf(w, "  %-10s proc %2d  level %d (%.2g GHz)  start %.4g ms\n",
			name, d.Proc[i], d.Level[i],
			sys.Plat.Levels[d.Level[i]].Freq/1e9, 1000*d.Start[i])
	}
}
