// Command benchdiff compares two cmd/benchjson reports and renders the
// per-benchmark deltas as a markdown table, exiting non-zero when a gated
// benchmark regresses beyond the tolerance. CI runs it against the
// committed baseline (BENCH_PR2.json) so solver and observability
// regressions fail the pull request instead of landing silently.
//
// Usage:
//
//	go run ./cmd/benchdiff -old BENCH_PR2.json -new bench.json \
//	    -gate BenchmarkEmitNil,BenchmarkExecuteReplay -tol 0.25
//
// Only the benchmarks named in -gate are enforced (all of them when the
// flag is empty); everything else in the intersection of the two reports
// is reported advisory-only. The enforced metrics are ns/op and B/op;
// allocs/op is always advisory, since a count change without a byte or
// time change is a refactor signal, not a regression. A gated benchmark
// missing from either report is an error: a gate that silently vanishes
// is a gate that no longer gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

// Entry mirrors cmd/benchjson's per-benchmark record.
type Entry struct {
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report mirrors cmd/benchjson's document.
type Report struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Package    string           `json:"pkg,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func load(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &r, nil
}

// delta returns (new−old)/old, or 0 when either side is missing (< 0
// marks a benchmark run without -benchmem) or the baseline is zero.
func delta(oldV, newV float64) float64 {
	if oldV <= 0 || newV < 0 {
		return 0
	}
	return (newV - oldV) / oldV
}

// pct renders a signed percentage, or "–" for an undefined delta.
func pct(oldV, newV float64) string {
	if oldV <= 0 || newV < 0 {
		return "–"
	}
	return fmt.Sprintf("%+.1f%%", 100*delta(oldV, newV))
}

// human renders a quantity with an SI-ish suffix so 21087730771 ns reads
// as 21.1G rather than a wall of digits.
func human(v float64) string {
	if v < 0 {
		return "–"
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// regression is one gated metric beyond tolerance.
type regression struct {
	bench, metric string
	d             float64
}

// Diff renders the markdown comparison of old vs new and returns the
// gated regressions. gate lists the enforced benchmark names (empty =
// enforce every common benchmark); tol is the fractional regression
// allowed on ns/op and B/op.
func Diff(oldR, newR *Report, gate []string, tol float64) (string, []regression, error) {
	gated := map[string]bool{}
	for _, g := range gate {
		if g == "" {
			continue
		}
		gated[g] = true
		if _, ok := oldR.Benchmarks[g]; !ok {
			return "", nil, fmt.Errorf("gated benchmark %s missing from baseline", g)
		}
		if _, ok := newR.Benchmarks[g]; !ok {
			return "", nil, fmt.Errorf("gated benchmark %s missing from new report", g)
		}
	}
	var names []string
	for name := range oldR.Benchmarks {
		if _, ok := newR.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | ns/op (old→new) | Δns/op | B/op (old→new) | ΔB/op | Δallocs | gate |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
	var regs []regression
	for _, name := range names {
		o, n := oldR.Benchmarks[name], newR.Benchmarks[name]
		enforced := gated[name] || len(gated) == 0
		mark := ""
		if enforced {
			mark = "✓"
			for _, m := range []struct {
				metric     string
				oldV, newV float64
			}{
				{"ns/op", o.NsPerOp, n.NsPerOp},
				{"B/op", o.BytesPerOp, n.BytesPerOp},
			} {
				if d := delta(m.oldV, m.newV); d > tol {
					regs = append(regs, regression{bench: name, metric: m.metric, d: d})
					mark = "✗"
				}
			}
		}
		fmt.Fprintf(&b, "| %s | %s→%s | %s | %s→%s | %s | %s | %s |\n",
			name,
			human(o.NsPerOp), human(n.NsPerOp), pct(o.NsPerOp, n.NsPerOp),
			human(o.BytesPerOp), human(n.BytesPerOp), pct(o.BytesPerOp, n.BytesPerOp),
			pct(o.AllocsPerOp, n.AllocsPerOp), mark)
	}
	return b.String(), regs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		oldPath = flag.String("old", "", "baseline benchjson report")
		newPath = flag.String("new", "", "candidate benchjson report")
		gateCSV = flag.String("gate", "", "comma-separated benchmarks to enforce (empty = all common)")
		tol     = flag.Float64("tol", 0.25, "allowed fractional regression on ns/op and B/op")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("both -old and -new are required")
	}
	if *tol < 0 {
		log.Fatal("-tol must be ≥ 0")
	}
	oldR, err := load(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newR, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	var gate []string
	if *gateCSV != "" {
		gate = strings.Split(*gateCSV, ",")
	}
	table, regs, err := Diff(oldR, newR, gate, *tol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)
	if len(regs) > 0 {
		fmt.Println()
		for _, r := range regs {
			fmt.Printf("REGRESSION: %s %s %+.1f%% (tolerance %.0f%%)\n",
				r.bench, r.metric, 100*r.d, 100**tol)
		}
		os.Exit(1)
	}
}
