package main

import (
	"strings"
	"testing"
)

func report(entries map[string]Entry) *Report {
	return &Report{Benchmarks: entries}
}

func TestDiffFlagsGatedRegression(t *testing.T) {
	oldR := report(map[string]Entry{
		"BenchmarkEmitNil":  {NsPerOp: 10, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkFig2a":    {NsPerOp: 1e9, BytesPerOp: 1e6, AllocsPerOp: 100},
		"BenchmarkNewOnly?": {NsPerOp: 1},
	})
	newR := report(map[string]Entry{
		"BenchmarkEmitNil": {NsPerOp: 20, BytesPerOp: 0, AllocsPerOp: 0}, // +100% ns/op
		"BenchmarkFig2a":   {NsPerOp: 5e9, BytesPerOp: 5e6, AllocsPerOp: 500},
	})
	table, regs, err := Diff(oldR, newR, []string{"BenchmarkEmitNil"}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].bench != "BenchmarkEmitNil" || regs[0].metric != "ns/op" {
		t.Fatalf("regressions = %+v, want one ns/op hit on BenchmarkEmitNil", regs)
	}
	// Fig2a regressed 5× but is not gated: advisory only.
	if !strings.Contains(table, "BenchmarkFig2a") {
		t.Error("advisory benchmark missing from table")
	}
	if !strings.Contains(table, "✗") {
		t.Error("gated regression not marked in table")
	}
}

func TestDiffWithinToleranceAndImprovementsPass(t *testing.T) {
	oldR := report(map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000},
		"BenchmarkB": {NsPerOp: 100, BytesPerOp: 1000},
	})
	newR := report(map[string]Entry{
		"BenchmarkA": {NsPerOp: 120, BytesPerOp: 900}, // +20% < 25% tol
		"BenchmarkB": {NsPerOp: 10, BytesPerOp: 10},   // big improvement
	})
	_, regs, err := Diff(oldR, newR, nil, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %+v, want none", regs)
	}
}

func TestDiffBytesRegressionCaught(t *testing.T) {
	oldR := report(map[string]Entry{"BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000}})
	newR := report(map[string]Entry{"BenchmarkA": {NsPerOp: 100, BytesPerOp: 2000}})
	_, regs, err := Diff(oldR, newR, nil, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].metric != "B/op" {
		t.Fatalf("regressions = %+v, want one B/op hit", regs)
	}
}

func TestDiffMissingGatedBenchmarkErrors(t *testing.T) {
	oldR := report(map[string]Entry{"BenchmarkA": {NsPerOp: 1}})
	newR := report(map[string]Entry{"BenchmarkA": {NsPerOp: 1}})
	if _, _, err := Diff(oldR, newR, []string{"BenchmarkGone"}, 0.25); err == nil {
		t.Fatal("missing gated benchmark did not error")
	}
}

func TestDiffNoBenchmemBaselineIsNotARegression(t *testing.T) {
	// B/op = -1 marks a run without -benchmem; the comparison must skip
	// the metric rather than treat any finite new value as ±∞.
	oldR := report(map[string]Entry{"BenchmarkA": {NsPerOp: 100, BytesPerOp: -1, AllocsPerOp: -1}})
	newR := report(map[string]Entry{"BenchmarkA": {NsPerOp: 100, BytesPerOp: 500, AllocsPerOp: 5}})
	_, regs, err := Diff(oldR, newR, nil, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %+v, want none for a no-benchmem baseline", regs)
	}
}
