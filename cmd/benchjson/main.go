// Command benchjson converts `go test -bench` output into a stable JSON
// document, so CI can archive benchmark results as machine-readable
// artifacts (BENCH_PR2.json at the repo root) and the perf trajectory can
// be diffed across commits.
//
// Usage:
//
//	go test -bench=. -benchmem -count=3 . | go run ./cmd/benchjson -out BENCH_PR2.json
//
// Repeated runs of the same benchmark (-count > 1) are averaged; the
// sample count is recorded. Output keys are sorted so the JSON diffs
// cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkFig2a-8   3   123456789 ns/op   4567 B/op   89 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the recorded name. B/op and
// allocs/op are optional (-benchmem).
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Entry is the aggregated result of one benchmark.
type Entry struct {
	Runs        int     `json:"runs"`          // samples averaged (the -count)
	Iterations  int64   `json:"iterations"`    // total b.N across samples
	NsPerOp     float64 `json:"ns_per_op"`     // mean
	BytesPerOp  float64 `json:"b_per_op"`      // mean; -1 without -benchmem
	AllocsPerOp float64 `json:"allocs_per_op"` // mean; -1 without -benchmem
}

// Report is the document benchjson emits.
type Report struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Package    string           `json:"pkg,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Parse aggregates bench output into a report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: map[string]Entry{}}
	type acc struct {
		runs            int
		iters           int64
		ns, bytes, alls float64
		hasMem          bool
	}
	accs := map[string]*acc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		}
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		name := mm[1]
		iters, err := strconv.ParseInt(mm[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
		}
		ns, err := strconv.ParseFloat(mm[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", line, err)
		}
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
		}
		a.runs++
		a.iters += iters
		a.ns += ns
		if mm[4] != "" {
			b, err := strconv.ParseFloat(mm[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %v", line, err)
			}
			al, err := strconv.ParseFloat(mm[5], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %v", line, err)
			}
			a.bytes += b
			a.alls += al
			a.hasMem = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, a := range accs {
		e := Entry{
			Runs:        a.runs,
			Iterations:  a.iters,
			NsPerOp:     a.ns / float64(a.runs),
			BytesPerOp:  -1,
			AllocsPerOp: -1,
		}
		if a.hasMem {
			e.BytesPerOp = a.bytes / float64(a.runs)
			e.AllocsPerOp = a.alls / float64(a.runs)
		}
		rep.Benchmarks[name] = e
	}
	return rep, nil
}

// Render emits the report as indented JSON with a trailing newline.
// Map keys are sorted by encoding/json, so output is deterministic.
func Render(rep *Report) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		in  = flag.String("in", "-", "bench output to read (- for stdin)")
		out = flag.String("out", "-", "JSON file to write (- for stdout)")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close() //lint:allow errdrop — file opened read-only; nothing to flush
		src = f
	}
	rep, err := Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}
	buf, err := Render(rep)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "-" {
		if _, err := os.Stdout.Write(buf); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	sorted := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	log.Printf("wrote %d benchmarks to %s (%s)", len(sorted), *out, strings.Join(sorted, ", "))
}
