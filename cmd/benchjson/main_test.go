package main

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nocdeploy
cpu: Intel(R) Xeon(R) CPU
BenchmarkFig2a-8   	       2	 500000000 ns/op	 1000 B/op	      10 allocs/op
BenchmarkFig2a-8   	       2	 700000000 ns/op	 3000 B/op	      30 allocs/op
BenchmarkHeuristicM20-8   	     100	  10000000 ns/op
PASS
ok  	nocdeploy	12.3s
`

func TestParseAveragesAndStripsSuffix(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Package != "nocdeploy" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Package)
	}
	a, ok := rep.Benchmarks["BenchmarkFig2a"]
	if !ok {
		t.Fatalf("Fig2a missing (GOMAXPROCS suffix not stripped?): %v", rep.Benchmarks)
	}
	if a.Runs != 2 || a.Iterations != 4 {
		t.Errorf("Fig2a runs/iters = %d/%d, want 2/4", a.Runs, a.Iterations)
	}
	if math.Abs(a.NsPerOp-6e8) > 1 || math.Abs(a.BytesPerOp-2000) > 1e-9 || math.Abs(a.AllocsPerOp-20) > 1e-9 {
		t.Errorf("Fig2a averages = %v", a)
	}
	h := rep.Benchmarks["BenchmarkHeuristicM20"]
	if h.Runs != 1 || h.BytesPerOp != -1 || h.AllocsPerOp != -1 {
		t.Errorf("no-benchmem entry = %v, want runs 1 and -1 memory fields", h)
	}
}

func TestRenderDeterministicJSON(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	out1, err := Render(rep)
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := Render(rep)
	if string(out1) != string(out2) {
		t.Error("Render is not deterministic")
	}
	var back Report
	if err := json.Unmarshal(out1, &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(back.Benchmarks) != 2 {
		t.Errorf("round-trip lost benchmarks: %v", back.Benchmarks)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	rep, err := Parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("parsed phantom benchmarks: %v", rep.Benchmarks)
	}
}
