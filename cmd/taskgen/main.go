// Command taskgen generates a random problem instance (task graph plus
// platform/mesh/reliability defaults) as JSON for cmd/deploy.
//
// Usage:
//
//	taskgen -m 20 -shape layered [-w 4 -h 4] [-alpha 1.0] [-seed 1] [-out inst.json]
package main

import (
	"flag"
	"log"

	"nocdeploy/internal/spec"
	"nocdeploy/internal/task"
	"nocdeploy/internal/taskgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("taskgen: ")
	var (
		m     = flag.Int("m", 20, "number of tasks")
		shape = flag.String("shape", "layered", "graph shape: layered, forkjoin, sp, gnp")
		w     = flag.Int("w", 4, "mesh width")
		h     = flag.Int("h", 4, "mesh height")
		alpha = flag.Float64("alpha", 1.0, "horizon scale (critical-path rule)")
		seed  = flag.Int64("seed", 1, "generator seed")
		prob  = flag.Float64("p", 0.25, "edge probability for -shape gnp")
		out   = flag.String("out", "-", "output JSON file (- for stdout)")
	)
	flag.Parse()

	p := taskgen.DefaultParams(*m, *seed)
	var g *task.Graph
	var err error
	switch *shape {
	case "layered":
		g, err = taskgen.Layered(p, 4, 3)
	case "forkjoin":
		g, err = taskgen.ForkJoin(p)
	case "sp":
		g, err = taskgen.SeriesParallel(p)
	case "gnp":
		g, err = taskgen.GNP(p, *prob)
	default:
		log.Fatalf("unknown shape %q", *shape)
	}
	if err != nil {
		log.Fatal(err)
	}
	inst := spec.Instance{
		Mesh:  spec.Mesh{W: *w, H: *h},
		Graph: spec.FromGraph(g),
		Alpha: *alpha,
	}
	// Sanity: the instance must build.
	if _, err := inst.Build(); err != nil {
		log.Fatalf("generated instance does not build: %v", err)
	}
	if err := spec.WriteJSON(*out, inst); err != nil {
		log.Fatal(err)
	}
}
